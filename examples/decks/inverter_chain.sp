* Three-inverter chain with RC wires, 0.18um technology.
* Run with:  build/tools/lcsf_sim examples/decks/inverter_chain.sp \
*                --tstop 2n --dt 1p --probe o1 --probe o2 --probe o3
Vdd vdd 0 DC 1.8
Vin in 0 PWL(0 0 100p 0 180p 1.8)

M1 o1 in 0  NMOS W=0.72u L=0.18u
M2 o1 in vdd PMOS W=1.44u L=0.18u
Rw1 o1 m1 150
Cw1 m1 0 8f

M3 o2 m1 0  NMOS W=0.72u L=0.18u
M4 o2 m1 vdd PMOS W=1.44u L=0.18u
Rw2 o2 m2 150
Cw2 m2 0 8f

M5 o3 m2 0  NMOS W=0.72u L=0.18u
M6 o3 m2 vdd PMOS W=1.44u L=0.18u
Cl o3 0 15f
.end
