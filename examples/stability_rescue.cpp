// The Example-1 story end to end: variational reduced-order models lose
// passivity, a conventional simulator diverges on them, and the
// linear-centric framework rescues the analysis.
//
//   1. Pre-characterize the variational PACT library of the Fig. 2 coupled
//      RC load.
//   2. Sweep the spatial parameter p: show right-half-plane poles
//      appearing from p = 0.05 (Table 3).
//   3. Feed the raw evaluated macromodel to the SPICE-substitute: watch it
//      diverge.
//   4. Filter the unstable poles (Eq. 21-23), simulate with TETA, and
//      compare against the exact-circuit golden waveform.
//
// Build & run:  build/examples/stability_rescue
#include <cstdio>

#include "circuit/technology.hpp"
#include "interconnect/example1.hpp"
#include "mor/pact.hpp"
#include "mor/poleres.hpp"
#include "mor/variational.hpp"
#include "spice/transient.hpp"
#include "teta/stage.hpp"
#include "timing/waveform.hpp"

using namespace lcsf;
using numeric::Vector;

namespace {

// The 0.6 um inverter driver of Example 1 ("a large inverter designed in
// 0.6 micron CMOS technology").
teta::StageCircuit make_driver_stage(const circuit::Technology& tech) {
  teta::StageCircuit st;
  const std::size_t out = st.add_port();
  const std::size_t in = st.add_input(circuit::SourceWaveform::ramp(
      tech.vdd, 0.0, 100e-12, 100e-12));  // falling input -> rising output
  const std::size_t vdd = st.add_rail(tech.vdd);
  const std::size_t gnd = st.add_rail(0.0);
  st.add_mosfet(tech.make_nmos(static_cast<int>(out), static_cast<int>(in),
                               static_cast<int>(gnd), 30.0));
  st.add_mosfet(tech.make_pmos(static_cast<int>(out), static_cast<int>(in),
                               static_cast<int>(vdd), 60.0));
  st.freeze_device_capacitances();
  return st;
}

}  // namespace

int main() {
  const circuit::Technology tech = circuit::technology_600nm();

  // Chord conductance of the driver (Table 1, step 1) -- folded into the
  // load before reduction so the library and the engine agree.
  const double gout =
      make_driver_stage(tech).port_chord_conductances(tech.vdd)[0];
  std::printf("driver chord conductance G_out = %.3f mS\n\n", gout * 1e3);
  auto effective_load = [gout](double p) {
    auto pencil = interconnect::example1_pencil_family()(p);
    return mor::with_port_conductance(std::move(pencil), Vector{gout});
  };

  // --- 1. Variational library (paper's full-reduction algebra) ---------
  mor::VariationalOptions vopt;
  vopt.library = mor::LibraryMode::kFullReduction;
  vopt.pact.internal_modes = 4;
  vopt.fd_step = 0.05;
  const auto rom = mor::build_variational_rom(
      mor::scalar_family(effective_load), 1, vopt);
  std::printf("variational PACT library: order %zu, 1 parameter\n\n",
              rom.order());

  // --- 2. Instability sweep (Table 3) ----------------------------------
  std::printf("%-6s %-10s %-14s\n", "p", "unstable", "max Re(pole)");
  for (double p : {0.02, 0.05, 0.06, 0.08, 0.09, 0.10}) {
    const auto pr = mor::extract_pole_residue(rom.evaluate(Vector{p}));
    std::printf("%-6.2f %-10zu %-14.3e\n", p, pr.count_unstable(),
                pr.max_unstable_real());
  }

  // --- 3. Conventional simulator on the raw macromodel -----------------
  const double p_demo = 0.1;
  {
    circuit::Netlist nl;
    const auto src = nl.add_node("src");
    const auto port = nl.add_node("port");
    nl.add_vsource(src, circuit::kGround,
                   circuit::SourceWaveform::ramp(0.0, 1.0, 0.0, 50e-12));
    nl.add_resistor(src, port, 1.0 / gout);

    const mor::ReducedModel raw = rom.evaluate(Vector{p_demo});
    spice::MacromodelStamp stamp;
    stamp.ports = {port};
    stamp.g = raw.g;
    stamp.c = raw.c;
    // The chord conductance lives inside the reduced model; remove the
    // series source resistor's duplicate by subtracting it at the port.
    stamp.g(0, 0) -= gout;

    spice::TransientSimulator sim(nl);
    sim.add_macromodel(stamp);
    spice::TransientOptions opt;
    opt.tstop = 3e-9;
    opt.dt = 1e-12;
    const auto res = sim.run(opt);
    std::printf("\nconventional simulator on the raw p=%.2f macromodel: %s",
                p_demo, res.converged ? "converged (unexpected!)\n"
                                      : "DIVERGED -- ");
    if (!res.converged) {
      std::printf("%s at t = %.0f ps\n", res.failure().c_str(),
                  res.diag.failure_time * 1e12);
    }
  }

  // --- 4. The framework's rescue ---------------------------------------
  mor::StabilizationReport rep;
  const auto z = mor::stabilize(
      mor::extract_pole_residue(rom.evaluate(Vector{p_demo})), &rep);
  std::printf("\nstability filter: dropped %zu pole(s), max Re = %.3e\n",
              rep.dropped_poles, rep.max_unstable_real);

  teta::TetaOptions topt;
  topt.tstop = 6e-9;
  topt.dt = 2e-12;
  topt.vdd = tech.vdd;
  auto stage = make_driver_stage(tech);
  const auto teta_res = teta::simulate_stage(stage, z, topt);
  if (!teta_res.converged) {
    std::printf("TETA failed: %s\n", teta_res.failure().c_str());
    return 1;
  }
  const auto teta_ramp =
      timing::measure_ramp(teta_res.waveform(0), tech.vdd, true);

  // Golden: SPICE on the exact unreduced circuit with the same driver.
  const auto ex = interconnect::example1_circuit(p_demo);
  circuit::Netlist golden = ex.netlist;
  const auto in = golden.add_node("in");
  const auto vdd = golden.add_node("vdd");
  golden.add_vsource(vdd, circuit::kGround,
                     circuit::SourceWaveform::dc(tech.vdd));
  golden.add_vsource(in, circuit::kGround,
                     circuit::SourceWaveform::ramp(tech.vdd, 0.0, 100e-12,
                                                   100e-12));
  {
    auto n = tech.make_nmos(ex.port1, in, circuit::kGround, 30.0);
    auto p = tech.make_pmos(ex.port1, in, vdd, 60.0);
    golden.add_mosfet(n);
    golden.add_mosfet(p);
  }
  golden.freeze_device_capacitances();
  spice::TransientSimulator gsim(golden);
  spice::TransientOptions gopt;
  gopt.tstop = topt.tstop;
  gopt.dt = topt.dt;
  const auto gres = gsim.run(gopt);
  const auto golden_ramp =
      timing::measure_ramp(gres.waveform(ex.port1), tech.vdd, true);

  std::printf("framework waveform vs exact circuit at p = %.2f:\n", p_demo);
  std::printf("  50%% arrival: %.1f ps (framework) vs %.1f ps (exact), "
              "error %.1f%%\n",
              teta_ramp.m * 1e12, golden_ramp.m * 1e12,
              100.0 * (teta_ramp.m - golden_ramp.m) / golden_ramp.m);
  std::printf("  slew:        %.1f ps vs %.1f ps\n", teta_ramp.s * 1e12,
              golden_ramp.s * 1e12);
  return 0;
}
