// Branching-net analysis: one driver, an RC *tree* load with two receiver
// leaves, and the skew between the two leaf arrivals -- the tree flows
// through the PACT -> pole/residue -> TETA pipeline unchanged, and the
// Elmore metric gives the classic first-order estimate for comparison.
//
// Build & run:  build/examples/rc_tree_skew
#include <cstdio>

#include "circuit/technology.hpp"
#include "interconnect/rc_tree.hpp"
#include "mor/pact.hpp"
#include "mor/poleres.hpp"
#include "mor/variational.hpp"
#include "teta/stage.hpp"
#include "timing/waveform.hpp"

using namespace lcsf;
using numeric::Vector;

int main() {
  const circuit::Technology tech = circuit::technology_180nm();

  // Trunk 80 um, then a short 40 um branch and a long 160 um branch.
  interconnect::RcTreeSpec spec;
  spec.geometry = tech.wire;
  spec.leaf_cap = 5e-15;
  spec.branches = {{-1, 80e-6}, {0, 40e-6}, {0, 160e-6}};
  const interconnect::RcTree tree = interconnect::build_rc_tree(spec);
  std::printf("RC tree: %zu linear elements, %zu leaves\n",
              tree.netlist.linear_element_count(), tree.leaves.size());

  const double elmore_near =
      interconnect::elmore_delay(tree.netlist, tree.root, tree.leaves[0]);
  const double elmore_far =
      interconnect::elmore_delay(tree.netlist, tree.root, tree.leaves[1]);
  std::printf("Elmore delays: near leaf %.1f ps, far leaf %.1f ps "
              "(skew %.1f ps)\n",
              elmore_near * 1e12, elmore_far * 1e12,
              (elmore_far - elmore_near) * 1e12);

  // Driver stage.
  teta::StageCircuit stage;
  const std::size_t out = stage.add_port();
  (void)stage.add_port();  // near leaf
  (void)stage.add_port();  // far leaf
  const std::size_t in = stage.add_input(
      circuit::SourceWaveform::ramp(tech.vdd, 0.0, 100e-12, 80e-12));
  const std::size_t vdd = stage.add_rail(tech.vdd);
  const std::size_t gnd = stage.add_rail(0.0);
  stage.add_mosfet(tech.make_nmos(static_cast<int>(out),
                                  static_cast<int>(in),
                                  static_cast<int>(gnd), 10.0));
  stage.add_mosfet(tech.make_pmos(static_cast<int>(out),
                                  static_cast<int>(in),
                                  static_cast<int>(vdd), 20.0));
  stage.freeze_device_capacitances();

  auto pencil = interconnect::build_ported_pencil(
      tree.netlist, {tree.root, tree.leaves[0], tree.leaves[1]});
  pencil = mor::with_port_conductance(
      std::move(pencil), stage.port_chord_conductances(tech.vdd));
  const auto rom = mor::pact_reduce(pencil, mor::PactOptions{8}).model;
  const auto z = mor::stabilize(mor::extract_pole_residue(rom));
  std::printf("reduced tree load: order %zu, %zu poles\n", rom.order(),
              z.num_poles());

  teta::TetaOptions opt;
  opt.tstop = 2e-9;
  opt.dt = 2e-12;
  opt.vdd = tech.vdd;
  const auto res = teta::simulate_stage(stage, z, opt);
  if (!res.converged) {
    std::printf("TETA failed: %s\n", res.failure().c_str());
    return 1;
  }
  const auto near = timing::measure_ramp(res.waveform(1), tech.vdd, true);
  const auto far = timing::measure_ramp(res.waveform(2), tech.vdd, true);
  std::printf("TETA arrivals: near leaf %.1f ps, far leaf %.1f ps "
              "(skew %.1f ps)\n",
              near.m * 1e12, far.m * 1e12, (far.m - near.m) * 1e12);
  std::printf("\nnote: Elmore is the load-only first moment; the simulated\n"
              "skew additionally includes the driver's nonlinear switching\n"
              "and the receiver slews.\n");
  return 0;
}
