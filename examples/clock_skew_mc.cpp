// Clock-skew variability under interconnect fluctuations -- the motivating
// application of the variational interconnect models (refs [2][3] of the
// paper: "impact of interconnect variations on the clock skew of a
// gigahertz microprocessor").
//
// One buffer drives two unequal clock branches; skew = difference of the
// two receiver arrival times. The branch loads are pre-characterized once
// as variational ROMs over wire width/thickness; a Monte-Carlo sweep then
// evaluates the skew distribution with the TETA engine, never re-reducing
// the interconnect. The sweep runs on every available core (LCSF_THREADS
// overrides) -- per-sample counter-based seeding keeps the distribution
// identical whatever the thread count (docs/monte_carlo.md).
//
// Build & run:  build/examples/clock_skew_mc
#include <cstdio>

#include "circuit/netlist.hpp"
#include "circuit/technology.hpp"
#include "runtime/thread_pool.hpp"
#include "interconnect/coupled_lines.hpp"
#include "mor/poleres.hpp"
#include "mor/variational.hpp"
#include "stats/descriptive.hpp"
#include "stats/runner.hpp"
#include "teta/stage.hpp"
#include "timing/waveform.hpp"

using namespace lcsf;
using numeric::Vector;

namespace {

// A clock branch: wire of given length, receiver cap at the far end.
mor::PencilFamily branch_family(const circuit::Technology& tech,
                                double length, double receiver_cap,
                                const Vector& gout) {
  return [=](const Vector& w) {
    interconnect::WireVariation wv;
    wv.width = w[0] * tech.wire_tol.width;
    wv.thickness = w[1] * tech.wire_tol.thickness;
    interconnect::CoupledLineSpec spec;
    spec.num_lines = 1;
    spec.length = length;
    spec.segment_length = 1e-6;
    spec.geometry = interconnect::apply_variation(tech.wire, wv);
    auto bundle = interconnect::build_coupled_lines(spec);
    bundle.netlist.add_capacitor(bundle.far_ends[0], circuit::kGround,
                                 receiver_cap);
    auto pencil = interconnect::build_ported_pencil(
        bundle.netlist, {bundle.near_ends[0], bundle.far_ends[0]});
    return mor::with_port_conductance(std::move(pencil), gout);
  };
}

// Arrival at the branch far end for one wire sample.
double branch_arrival(const circuit::Technology& tech,
                      const mor::VariationalRom& rom, const Vector& w,
                      double driver_wn) {
  teta::StageCircuit stage;
  const std::size_t out = stage.add_port();
  (void)stage.add_port();
  const std::size_t in = stage.add_input(
      circuit::SourceWaveform::ramp(0.0, tech.vdd, 100e-12, 80e-12));
  const std::size_t vdd = stage.add_rail(tech.vdd);
  const std::size_t gnd = stage.add_rail(0.0);
  stage.add_mosfet(tech.make_nmos(static_cast<int>(out),
                                  static_cast<int>(in),
                                  static_cast<int>(gnd), driver_wn));
  stage.add_mosfet(tech.make_pmos(static_cast<int>(out),
                                  static_cast<int>(in),
                                  static_cast<int>(vdd), 2 * driver_wn));
  stage.freeze_device_capacitances();

  const auto z = mor::stabilize(mor::extract_pole_residue(rom.evaluate(w)));
  teta::TetaOptions opt;
  opt.tstop = 2.5e-9;
  opt.dt = 2e-12;
  opt.vdd = tech.vdd;
  const auto res = teta::simulate_stage(stage, z, opt);
  if (!res.converged) throw std::runtime_error(res.failure());
  return timing::measure_ramp(res.waveform(1), tech.vdd, false).m;
}

}  // namespace

int main() {
  const circuit::Technology tech = circuit::technology_180nm();
  const double driver_wn = 20.0;
  const double receiver_cap = 8e-15;

  // Chords of the shared driver (identical for both branches).
  teta::StageCircuit probe;
  const std::size_t pout = probe.add_port();
  const std::size_t pin = probe.add_input(circuit::SourceWaveform::dc(0.0));
  const std::size_t pvdd = probe.add_rail(tech.vdd);
  const std::size_t pgnd = probe.add_rail(0.0);
  probe.add_mosfet(tech.make_nmos(static_cast<int>(pout),
                                  static_cast<int>(pin),
                                  static_cast<int>(pgnd), driver_wn));
  probe.add_mosfet(tech.make_pmos(static_cast<int>(pout),
                                  static_cast<int>(pin),
                                  static_cast<int>(pvdd), 2 * driver_wn));
  const Vector gout{probe.port_chord_conductances(tech.vdd)[0], 0.0};

  // Pre-characterize both branch loads ONCE (the framework's key saving).
  mor::VariationalOptions vopt;
  vopt.pact.internal_modes = 6;
  vopt.fd_step = 0.2;
  const auto rom_short = mor::build_variational_rom(
      branch_family(tech, 150e-6, receiver_cap, gout), 2, vopt);
  const auto rom_long = mor::build_variational_rom(
      branch_family(tech, 450e-6, receiver_cap, gout), 2, vopt);
  std::printf("branch ROMs characterized (orders %zu / %zu)\n\n",
              rom_short.order(), rom_long.order());

  // Skew under *independent* branch wire variations (different metal
  // regions), each (width, thickness) pair normal in tolerance units.
  std::vector<stats::VariationSource> sources(4);
  for (auto& s : sources) s.sigma = 0.33;
  auto skew_fn = [&](const Vector& w) {
    const double t_short =
        branch_arrival(tech, rom_short, {w[0], w[1]}, driver_wn);
    const double t_long =
        branch_arrival(tech, rom_long, {w[2], w[3]}, driver_wn);
    return t_long - t_short;
  };

  stats::RunOptions opt;
  opt.samples = 100;
  opt.seed = 2;
  opt.exec.threads = 0;  // auto-detect; results do not depend on this

  // Yield framing: fraction of dies whose skew stays under a 40 ps
  // budget, straight from the parallel estimator.
  const double skew_budget = 40e-12;
  const auto est =
      stats::Runner(opt).run_yield(skew_fn, sources, skew_budget);
  const auto& mc = est.samples();
  std::printf("clock skew over %zu samples (%zu threads):\n",
              mc.values.size(), runtime::ThreadPool::default_threads());
  std::printf("  mean  = %.2f ps\n", mc.stats.mean() * 1e12);
  std::printf("  std   = %.2f ps\n", mc.stats.stddev() * 1e12);
  std::printf("  range = [%.2f, %.2f] ps\n", mc.stats.min() * 1e12,
              mc.stats.max() * 1e12);
  std::printf("  P(skew <= %.0f ps) = %.3f +/- %.3f\n\n",
              skew_budget * 1e12, est.yield, est.std_error);
  std::printf("%s", stats::Histogram::from_data(mc.values, 10)
                        .render(40)
                        .c_str());
  return 0;
}
