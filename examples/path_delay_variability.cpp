// Statistical path-delay analysis on a generated ISCAS-89-style benchmark
// (the paper's Example 3 workload, Sec. 4.3): extract the longest
// latch-to-latch path with the unit-delay timing analyzer, then compare
// Monte-Carlo and Gradient-Analysis delay statistics under channel-length
// and threshold fluctuations.
//
// Build & run:  build/examples/path_delay_variability
#include <cstdio>

#include "core/path.hpp"
#include "stats/descriptive.hpp"

using namespace lcsf;

int main() {
  const auto& spec = timing::find_benchmark("s208");
  const timing::GateNetlist nl = timing::generate_benchmark(spec);
  const timing::TimingPath path = timing::longest_path(nl);
  std::printf("%s: %zu gates, longest path %zu stages\n", spec.name.c_str(),
              nl.gates.size(), path.length());
  std::printf("path cells:");
  for (std::size_t g : path.gates) {
    std::printf(" %s", timing::cell_library()[nl.gates[g].cell].name.c_str());
  }
  std::printf("\n\n");

  core::PathSpec pspec = core::PathSpec::from_benchmark(
      circuit::technology_180nm(), nl, path, /*linear_elements=*/10);
  pspec.stage_window = 1.0e-9;
  core::PathAnalyzer analyzer(pspec);

  core::PathVariationModel model;
  model.std_dl = 0.33;  // Table 5's std(DL), in 3-sigma-tolerance units
  model.std_vt = 0.33;

  // Monte-Carlo (Sec. 4.3.1): full stage-by-stage simulation per sample.
  stats::RunOptions opt;
  opt.samples = 100;
  opt.seed = 208;
  const auto mc = analyzer.monte_carlo(model, opt);
  std::printf("Monte-Carlo (%zu samples): mean = %.2f ps, std = %.2f ps\n",
              mc.values.size(), mc.stats.mean() * 1e12,
              mc.stats.stddev() * 1e12);

  // Gradient Analysis (Sec. 4.3.2): first-order sensitivity propagation.
  const auto ga = analyzer.gradient_analysis(model);
  std::printf("Gradient Analysis (%zu simulations): mean = %.2f ps, "
              "std = %.2f ps\n",
              ga.simulations, ga.nominal_delay * 1e12, ga.stddev * 1e12);

  std::printf("\ndelay histogram (MC):\n%s",
              stats::Histogram::from_data(mc.values, 12).render(40).c_str());
  return 0;
}
