// Quickstart: the linear-centric flow of Table 1 on a single stage.
//
//   1. Build an RC interconnect load and a CMOS inverter driver.
//   2. Fold the driver's successive-chord output conductance into the load
//      (the step that makes non-passive macromodels safe).
//   3. Reduce the effective load with PACT and convert it to stable
//      pole/residue form.
//   4. Evaluate the stage waveform with the TETA engine and report the
//      delay and slew at the far end of the wire.
//
// Build & run:  build/examples/quickstart
#include <cstdio>

#include "circuit/netlist.hpp"
#include "circuit/technology.hpp"
#include "interconnect/coupled_lines.hpp"
#include "mor/pact.hpp"
#include "mor/poleres.hpp"
#include "mor/variational.hpp"
#include "teta/stage.hpp"
#include "timing/waveform.hpp"

using namespace lcsf;

int main() {
  const circuit::Technology tech = circuit::technology_180nm();

  // --- 1. A 200 um minimum-width wire, segmented at 1 um -------------
  interconnect::CoupledLineSpec wire;
  wire.num_lines = 1;
  wire.length = 200e-6;
  wire.segment_length = 1e-6;
  wire.geometry = tech.wire;
  auto bundle = interconnect::build_coupled_lines(wire);
  std::printf("wire: %zu RC segments, %zu linear elements\n",
              bundle.segments, bundle.netlist.linear_element_count());

  // --- 2. The driver and its chord conductances ------------------------
  teta::StageCircuit stage;
  const std::size_t out = stage.add_port();  // near end of the wire
  (void)stage.add_port();                    // far end, observed only
  const std::size_t in = stage.add_input(
      circuit::SourceWaveform::ramp(0.0, tech.vdd, 100e-12, 100e-12));
  const std::size_t vdd = stage.add_rail(tech.vdd);
  const std::size_t gnd = stage.add_rail(0.0);
  stage.add_mosfet(tech.make_nmos(static_cast<int>(out),
                                  static_cast<int>(in),
                                  static_cast<int>(gnd), 8.0));
  stage.add_mosfet(tech.make_pmos(static_cast<int>(out),
                                  static_cast<int>(in),
                                  static_cast<int>(vdd), 16.0));
  stage.freeze_device_capacitances();

  // --- 3. Effective load -> PACT -> stable pole/residue ---------------
  auto pencil = interconnect::build_ported_pencil(
      bundle.netlist, {bundle.near_ends[0], bundle.far_ends[0]});
  pencil = mor::with_port_conductance(
      std::move(pencil), stage.port_chord_conductances(tech.vdd));
  std::printf("effective load: %zu nodes -> ", pencil.g.rows());

  mor::PactOptions popt;
  popt.internal_modes = 6;
  const mor::ReducedModel rom = mor::pact_reduce(pencil, popt).model;
  std::printf("reduced order %zu\n", rom.order());

  mor::StabilizationReport rep;
  const mor::PoleResidueModel z =
      mor::stabilize(mor::extract_pole_residue(rom), &rep);
  std::printf("pole/residue model: %zu poles (%zu unstable filtered)\n",
              z.num_poles(), rep.dropped_poles);

  // --- 4. TETA waveform evaluation -------------------------------------
  teta::TetaOptions topt;
  topt.tstop = 2e-9;
  topt.dt = 1e-12;
  topt.vdd = tech.vdd;
  const teta::TetaResult res = teta::simulate_stage(stage, z, topt);
  if (!res.converged) {
    std::printf("simulation failed: %s\n", res.failure().c_str());
    return 1;
  }

  const auto far = timing::measure_ramp(res.waveform(1), tech.vdd, false);
  std::printf("far-end 50%% arrival: %.1f ps  (stage delay %.1f ps)\n",
              far.m * 1e12, (far.m - 150e-12) * 1e12);
  std::printf("far-end slew: %.1f ps\n", far.s * 1e12);
  std::printf("successive-chord iterations: %ld over %zu timesteps\n",
              res.total_sc_iterations, res.time.size() - 1);
  return 0;
}
