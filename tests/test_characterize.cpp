// Tests for the cell delay/slew characterization tables.
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/technology.hpp"
#include "timing/characterize.hpp"

namespace lcsf::timing {
namespace {

using circuit::technology_180nm;

TEST(Table2d, ConstructionAndExactGridLookup) {
  Table2d t({1.0, 2.0, 4.0}, {10.0, 20.0});
  t.at(0, 0) = 5.0;
  t.at(0, 1) = 7.0;
  t.at(1, 0) = 9.0;
  t.at(1, 1) = 11.0;
  t.at(2, 0) = 13.0;
  t.at(2, 1) = 15.0;
  EXPECT_DOUBLE_EQ(t.lookup(1.0, 10.0), 5.0);
  EXPECT_DOUBLE_EQ(t.lookup(4.0, 20.0), 15.0);
  // Midpoints interpolate bilinearly.
  EXPECT_DOUBLE_EQ(t.lookup(1.5, 15.0), 8.0);
  // Clamped outside the grid.
  EXPECT_DOUBLE_EQ(t.lookup(0.1, 5.0), 5.0);
  EXPECT_DOUBLE_EQ(t.lookup(100.0, 100.0), 15.0);
  EXPECT_THROW(Table2d({}, {1.0}), std::invalid_argument);
  EXPECT_THROW(Table2d({2.0, 1.0}, {1.0}), std::invalid_argument);
}

TEST(Characterize, InverterTablesAreMonotone) {
  const auto tech = technology_180nm();
  CharacterizeOptions opt;
  opt.slews = {30e-12, 100e-12, 250e-12};
  opt.loads = {2e-15, 10e-15, 40e-15};
  const CellTiming t =
      characterize_cell(find_cell("INV"), tech, /*input_rising=*/true, opt);
  EXPECT_EQ(t.cell, "INV");

  // Delay grows with load at fixed slew; output slew grows with load.
  for (std::size_t si = 0; si < opt.slews.size(); ++si) {
    for (std::size_t li = 1; li < opt.loads.size(); ++li) {
      EXPECT_GT(t.delay.at(si, li), t.delay.at(si, li - 1))
          << "si=" << si << " li=" << li;
      EXPECT_GT(t.output_slew.at(si, li), t.output_slew.at(si, li - 1));
    }
  }
  // Sanity magnitudes: tens of ps.
  EXPECT_GT(t.delay.at(0, 0), 1e-12);
  EXPECT_LT(t.delay.at(2, 2), 500e-12);
}

TEST(Characterize, InterpolationPredictsOffGridPoints) {
  const auto tech = technology_180nm();
  const auto& cell = find_cell("NAND2");
  CharacterizeOptions opt;
  opt.slews = {40e-12, 120e-12, 240e-12};
  opt.loads = {3e-15, 12e-15, 30e-15};
  const CellTiming t = characterize_cell(cell, tech, true, opt);

  // Off-grid queries within a few percent of direct simulation.
  for (auto [slew, load] : {std::pair{70e-12, 7e-15},
                            std::pair{180e-12, 20e-15}}) {
    const auto [d_sim, s_sim] =
        evaluate_cell_point(cell, tech, true, slew, load);
    EXPECT_NEAR(t.delay.lookup(slew, load), d_sim,
                0.10 * d_sim + 1.5e-12)
        << slew << " " << load;
    EXPECT_NEAR(t.output_slew.lookup(slew, load), s_sim,
                0.15 * s_sim + 2e-12);
  }
}

TEST(Characterize, RisingAndFallingArcsDiffer) {
  // Unbalanced NOR2 (weak series PMOS): rising output is slower than
  // falling -- the two arcs must be characterized separately.
  const auto tech = technology_180nm();
  const auto& cell = find_cell("NOR2");
  CharacterizeOptions opt;
  opt.slews = {80e-12};
  opt.loads = {10e-15};
  const CellTiming rise_in = characterize_cell(cell, tech, true, opt);
  const CellTiming fall_in = characterize_cell(cell, tech, false, opt);
  // Rising input -> output falls (NMOS pulldown); falling input -> output
  // rises through the series PMOS stack, which is slower.
  EXPECT_GT(fall_in.delay.at(0, 0), rise_in.delay.at(0, 0));
}

}  // namespace
}  // namespace lcsf::timing
