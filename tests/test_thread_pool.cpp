// Tests for the parallel-execution substrate: coverage of the index
// range, exception propagation, nested calls, and the thread-count
// resolution knobs.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <mutex>
#include <stdexcept>
#include <utility>
#include <vector>

#include "runtime/thread_pool.hpp"
#include "stats/descriptive.hpp"

namespace lcsf::runtime {
namespace {

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  for (std::size_t threads : {std::size_t{1}, std::size_t{2},
                              std::size_t{4}, std::size_t{7}}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.size(), threads);
    const std::size_t n = 1000;
    std::vector<std::atomic<int>> hits(n);
    pool.parallel_for(n, [&](std::size_t begin, std::size_t end) {
      for (std::size_t k = begin; k < end; ++k) hits[k].fetch_add(1);
    });
    for (std::size_t k = 0; k < n; ++k) {
      EXPECT_EQ(hits[k].load(), 1) << "index " << k << " with " << threads
                                   << " threads";
    }
  }
}

TEST(ThreadPool, ChunkGrainRespected) {
  ThreadPool pool(4);
  std::mutex mu;
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  pool.parallel_for(
      100,
      [&](std::size_t begin, std::size_t end) {
        std::lock_guard<std::mutex> lock(mu);
        chunks.emplace_back(begin, end);
      },
      /*grain=*/7);
  std::size_t covered = 0;
  for (const auto& [b, e] : chunks) {
    EXPECT_LE(e - b, 7u);
    covered += e - b;
  }
  EXPECT_EQ(covered, 100u);
}

TEST(ThreadPool, EmptyAndSingletonRanges) {
  ThreadPool pool(3);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
  std::size_t count = 0;
  pool.parallel_for(1, [&](std::size_t begin, std::size_t end) {
    count += end - begin;
  });
  EXPECT_EQ(count, 1u);
}

TEST(ThreadPool, PropagatesFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(256,
                        [&](std::size_t begin, std::size_t) {
                          if (begin >= 128) {
                            throw std::runtime_error("sample failed");
                          }
                        }),
      std::runtime_error);

  // The pool survives a failed batch and runs the next one fully.
  std::atomic<std::size_t> done{0};
  pool.parallel_for(64, [&](std::size_t begin, std::size_t end) {
    done.fetch_add(end - begin);
  });
  EXPECT_EQ(done.load(), 64u);
}

TEST(ThreadPool, ExceptionAbandonsRemainingChunks) {
  ThreadPool pool(2);
  std::atomic<std::size_t> executed{0};
  try {
    pool.parallel_for(
        10000,
        [&](std::size_t begin, std::size_t end) {
          executed.fetch_add(end - begin);
          if (begin == 0) throw std::logic_error("early");
        },
        /*grain=*/1);
    FAIL() << "expected throw";
  } catch (const std::logic_error&) {
  }
  // Unclaimed work after the failure is skipped (not all 10000 ran).
  EXPECT_LT(executed.load(), 10000u);
}

TEST(ThreadPool, NestedParallelForRunsInline) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64 * 8);
  pool.parallel_for(64, [&](std::size_t begin, std::size_t end) {
    for (std::size_t outer = begin; outer < end; ++outer) {
      // Nested call on the same pool: must complete inline, no deadlock.
      pool.parallel_for(8, [&](std::size_t b2, std::size_t e2) {
        for (std::size_t inner = b2; inner < e2; ++inner) {
          hits[outer * 8 + inner].fetch_add(1);
        }
      });
    }
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, FreeFunctionSerialAndParallelAgree) {
  // Sum of f(k) accumulated per index slot: independent of threading.
  const std::size_t n = 512;
  auto run = [&](std::size_t threads) {
    std::vector<double> out(n);
    parallel_for(threads, n, [&](std::size_t begin, std::size_t end) {
      for (std::size_t k = begin; k < end; ++k) {
        out[k] = static_cast<double>(k * k % 97);
      }
    });
    return out;
  };
  const auto serial = run(1);
  EXPECT_EQ(serial, run(2));
  EXPECT_EQ(serial, run(8));
}

TEST(ThreadPool, DefaultThreadsOverride) {
  const std::size_t original = ThreadPool::default_threads();
  EXPECT_GE(original, 1u);
  ThreadPool::set_default_threads(3);
  EXPECT_EQ(ThreadPool::default_threads(), 3u);
  ThreadPool::set_default_threads(0);  // restore env/hardware resolution
  EXPECT_EQ(ThreadPool::default_threads(), original);
}

TEST(OnlineStatsMerge, MatchesChunkedDecomposition) {
  std::vector<double> data(1000);
  for (std::size_t k = 0; k < data.size(); ++k) {
    data[k] = std::sin(static_cast<double>(k)) * 3.0 + 1.0;
  }
  stats::OnlineStats whole;
  for (double x : data) whole.add(x);

  stats::OnlineStats merged;
  for (std::size_t begin = 0; begin < data.size(); begin += 137) {
    stats::OnlineStats chunk;
    const std::size_t end = std::min(data.size(), begin + 137);
    for (std::size_t k = begin; k < end; ++k) chunk.add(data[k]);
    merged.merge(chunk);
  }
  EXPECT_EQ(merged.count(), whole.count());
  EXPECT_NEAR(merged.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(merged.stddev(), whole.stddev(), 1e-12);
  EXPECT_DOUBLE_EQ(merged.min(), whole.min());
  EXPECT_DOUBLE_EQ(merged.max(), whole.max());
}

TEST(OnlineStatsMerge, EmptySidesAreIdentity) {
  stats::OnlineStats a, b;
  a.merge(b);
  EXPECT_EQ(a.count(), 0u);
  b.add(2.0);
  b.add(4.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 3.0);
  stats::OnlineStats c;
  b.merge(c);  // merging empty into non-empty is a no-op
  EXPECT_EQ(b.count(), 2u);
}

}  // namespace
}  // namespace lcsf::runtime
