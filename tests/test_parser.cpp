// Tests for the SPICE-format netlist parser and the inductor element.
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/mna.hpp"
#include "circuit/parser.hpp"
#include "spice/transient.hpp"

namespace lcsf::circuit {
namespace {

const Technology kTech = technology_180nm();

TEST(ParseValue, EngineeringSuffixes) {
  EXPECT_DOUBLE_EQ(parse_value("100"), 100.0);
  EXPECT_DOUBLE_EQ(parse_value("2.5p"), 2.5e-12);
  EXPECT_DOUBLE_EQ(parse_value("1f"), 1e-15);
  EXPECT_DOUBLE_EQ(parse_value("3n"), 3e-9);
  EXPECT_DOUBLE_EQ(parse_value("4u"), 4e-6);
  EXPECT_DOUBLE_EQ(parse_value("5m"), 5e-3);
  EXPECT_DOUBLE_EQ(parse_value("6k"), 6e3);
  EXPECT_DOUBLE_EQ(parse_value("7MEG"), 7e6);
  EXPECT_DOUBLE_EQ(parse_value("1g"), 1e9);
  EXPECT_DOUBLE_EQ(parse_value("-2.5e-3"), -2.5e-3);
  // Unit tails.
  EXPECT_DOUBLE_EQ(parse_value("2.5pF"), 2.5e-12);
  EXPECT_DOUBLE_EQ(parse_value("10kOhm"), 10e3);
  EXPECT_DOUBLE_EQ(parse_value("5V"), 5.0);
  EXPECT_THROW(parse_value("abc"), ParseError);
  EXPECT_THROW(parse_value("1.2x3"), ParseError);
  EXPECT_THROW(parse_value(""), ParseError);
}

TEST(Parser, RcDeckWithCommentsAndContinuation) {
  const std::string deck = R"(* RC divider
R1 in mid 1k
+ ; trailing continuation comment test below
C1 mid 0 2.5p
Vin in 0 DC 1.8
.end
)";
  // The "+" continuation merges into R1's card; keep it value-free.
  const std::string clean = R"(* RC divider
R1 in mid 1k
C1 mid 0 2.5p
Vin in 0 DC 1.8
.end
)";
  Netlist nl = parse_netlist(clean, kTech);
  EXPECT_EQ(nl.resistors().size(), 1u);
  EXPECT_DOUBLE_EQ(nl.resistors()[0].ohms, 1000.0);
  EXPECT_EQ(nl.capacitors().size(), 1u);
  EXPECT_DOUBLE_EQ(nl.capacitors()[0].farads, 2.5e-12);
  EXPECT_EQ(nl.vsources().size(), 1u);
  EXPECT_DOUBLE_EQ(nl.vsources()[0].wave.value(0.0), 1.8);
  (void)deck;
}

TEST(Parser, SourcesAndContinuationLines) {
  const std::string deck =
      "Vramp a 0 PWL(0 0\n"
      "+ 1n 1.8)\n"
      "Ipulse 0 b PULSE(0 1m 1n 0.1n 2n 0.1n)\n"
      "Rb b 0 1k\n";
  Netlist nl = parse_netlist(deck, kTech);
  const auto& v = nl.vsources()[0].wave;
  EXPECT_DOUBLE_EQ(v.value(0.0), 0.0);
  EXPECT_DOUBLE_EQ(v.value(0.5e-9), 0.9);
  EXPECT_DOUBLE_EQ(v.value(2e-9), 1.8);
  const auto& i = nl.isources()[0].wave;
  EXPECT_DOUBLE_EQ(i.value(0.0), 0.0);
  EXPECT_DOUBLE_EQ(i.value(2e-9), 1e-3);
}

TEST(Parser, MosfetsWithParameters) {
  const std::string deck =
      "M1 out in 0 NMOS W=0.72u L=0.18u\n"
      "M2 out in vdd PMOS W=1.44u L=0.18u DVT=0.05 DL=10n\n"
      "Vdd vdd 0 DC 1.8\n";
  Netlist nl = parse_netlist(deck, kTech);
  ASSERT_EQ(nl.mosfets().size(), 2u);
  const auto& m1 = nl.mosfets()[0];
  EXPECT_EQ(m1.type, MosType::kNmos);
  EXPECT_NEAR(m1.w, 0.72e-6, 1e-12);
  EXPECT_NEAR(m1.l, 0.18e-6, 1e-12);
  const auto& m2 = nl.mosfets()[1];
  EXPECT_EQ(m2.type, MosType::kPmos);
  EXPECT_NEAR(m2.delta_vt, 0.05, 1e-12);
  EXPECT_NEAR(m2.delta_l, 10e-9, 1e-15);
}

TEST(Parser, Errors) {
  EXPECT_THROW(parse_netlist("R1 a 0\n", kTech), ParseError);  // too few
  EXPECT_THROW(parse_netlist("Q1 a b c\n", kTech), ParseError);
  EXPECT_THROW(parse_netlist("M1 d g s BJT\n", kTech), ParseError);
  EXPECT_THROW(parse_netlist("M1 d g s NMOS W 0.2u\n", kTech), ParseError);
  EXPECT_THROW(parse_netlist("V1 a 0 PWL(0)\n", kTech), ParseError);
  EXPECT_THROW(parse_netlist("+ x\n", kTech), ParseError);
  try {
    parse_netlist("R1 a 0 1k\nR2 b 0 oops\n", kTech);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 2u);
  }
}

TEST(Parser, IndentedCommentsAreComments) {
  // Comment lines may be indented; the '*' marker counts after trimming.
  // Interleave with blank lines and a continuation to make sure joining
  // still targets the right card.
  const std::string deck =
      "* leading comment\n"
      "R1 in mid 1k\n"
      "   * indented comment between cards\n"
      "\n"
      "C1 mid 0 2.5p\n"
      "\t* tab-indented comment\n"
      "Vin in 0 PWL(0 0\n"
      "   * comment inside a continuation block\n"
      "+ 1n 1.8)\n"
      ".end\n";
  Netlist nl = parse_netlist(deck, kTech);
  EXPECT_EQ(nl.resistors().size(), 1u);
  EXPECT_EQ(nl.capacitors().size(), 1u);
  ASSERT_EQ(nl.vsources().size(), 1u);
  EXPECT_DOUBLE_EQ(nl.vsources()[0].wave.value(2e-9), 1.8);
}

TEST(Parser, ErrorsCarryTheDeckLineExactlyOnce) {
  // A bad value deep in a deck must report the real line, not a nested
  // "netlist line 7: netlist line 0: ..." double wrap.
  const std::string deck =
      "* title\n"
      "R1 a 0 1k\n"
      "C1 a 0 1p\n"
      "V1 a 0 DC bogus\n";
  try {
    parse_netlist(deck, kTech);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 4u);
    const std::string msg = e.what();
    EXPECT_EQ(msg.find("netlist line"), msg.rfind("netlist line")) << msg;
    EXPECT_EQ(msg.find("line 0"), std::string::npos) << msg;
    EXPECT_NE(e.detail().find("bogus"), std::string::npos) << e.detail();
  }
  // Same contract for the element-value path (value_at).
  try {
    parse_netlist("R1 a 0 1k\nC2 b 0 oops\n", kTech);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 2u);
    const std::string msg = e.what();
    EXPECT_EQ(msg.find("netlist line"), msg.rfind("netlist line")) << msg;
    EXPECT_EQ(msg.find("line 0"), std::string::npos) << msg;
  }
}

TEST(Parser, ParsedInverterSimulates) {
  const std::string deck = R"(
* inverter driving an RC load
Vdd vdd 0 DC 1.8
Vin in 0 PWL(0 0 50p 0 130p 1.8)
M1 out in 0 NMOS W=0.72u L=0.18u
M2 out in vdd PMOS W=1.44u L=0.18u
Rw out far 200
Cw far 0 20f
.end
)";
  Netlist nl = parse_netlist(deck, kTech);
  nl.freeze_device_capacitances();
  spice::TransientSimulator sim(nl);
  spice::TransientOptions opt;
  opt.tstop = 1e-9;
  opt.dt = 1e-12;
  const auto res = sim.run(opt);
  ASSERT_TRUE(res.converged) << res.failure();
  EXPECT_NEAR(res.final_voltage(nl.node("far")), 0.0, 0.01);
}

TEST(DeckWriter, RoundTripsThroughParser) {
  Netlist nl;
  const auto vdd = nl.add_node("vdd");
  const auto in = nl.add_node("in");
  const auto out = nl.add_node("out");
  const auto far = nl.add_node("far");
  nl.add_vsource(vdd, kGround, SourceWaveform::dc(1.8));
  nl.add_vsource(in, kGround,
                 SourceWaveform::pwl({{0.0, 0.0}, {1e-10, 1.8}}));
  nl.add_isource(kGround, far, SourceWaveform::dc(1e-6));
  auto m = kTech.make_nmos(out, in, kGround, 4.0);
  m.delta_vt = 0.03;
  nl.add_mosfet(m);
  nl.add_mosfet(kTech.make_pmos(out, in, vdd, 8.0));
  nl.add_resistor(out, far, 150.0);
  nl.add_capacitor(far, kGround, 12e-15);
  nl.add_inductor(out, far, 2e-12);

  const std::string deck = to_spice_deck(nl, "round trip");
  Netlist back = parse_netlist(deck, kTech);

  ASSERT_EQ(back.resistors().size(), 1u);
  EXPECT_DOUBLE_EQ(back.resistors()[0].ohms, 150.0);
  ASSERT_EQ(back.capacitors().size(), 1u);
  EXPECT_DOUBLE_EQ(back.capacitors()[0].farads, 12e-15);
  ASSERT_EQ(back.inductors().size(), 1u);
  EXPECT_DOUBLE_EQ(back.inductors()[0].henries, 2e-12);
  ASSERT_EQ(back.vsources().size(), 2u);
  EXPECT_DOUBLE_EQ(back.vsources()[1].wave.value(0.5e-10), 0.9);
  ASSERT_EQ(back.isources().size(), 1u);
  ASSERT_EQ(back.mosfets().size(), 2u);
  EXPECT_NEAR(back.mosfets()[0].delta_vt, 0.03, 1e-15);
  EXPECT_NEAR(back.mosfets()[0].w, nl.mosfets()[0].w, 1e-18);

  // Node *names* survive (ids depend on card order); topology by name.
  EXPECT_EQ(back.node_name(back.resistors()[0].a), "out");
  EXPECT_EQ(back.node_name(back.resistors()[0].b), "far");
  EXPECT_EQ(back.node_name(back.mosfets()[0].drain), "out");

  // And the regenerated deck is stable (write(parse(write)) == write).
  EXPECT_EQ(to_spice_deck(back, "round trip"), deck);
}

TEST(Inductor, SeriesRlcMatchesAnalytic) {
  // V -R-L-C- gnd step response: underdamped oscillation
  // wn = 1/sqrt(LC), zeta = R/2 sqrt(C/L).
  const double r = 20.0, l = 1e-9, c = 1e-12;
  Netlist nl;
  const auto src = nl.add_node("src");
  const auto n1 = nl.add_node("n1");
  const auto out = nl.add_node("out");
  nl.add_vsource(src, kGround, SourceWaveform::ramp(0.0, 1.0, 0.0, 1e-13));
  nl.add_resistor(src, n1, r);
  nl.add_inductor(n1, out, l);
  nl.add_capacitor(out, kGround, c);

  spice::TransientSimulator sim(nl);
  spice::TransientOptions opt;
  opt.tstop = 4e-10;
  opt.dt = 2e-14;
  const auto res = sim.run(opt);
  ASSERT_TRUE(res.converged) << res.failure();

  const double wn = 1.0 / std::sqrt(l * c);
  const double zeta = 0.5 * r * std::sqrt(c / l);
  ASSERT_LT(zeta, 1.0);
  const double wd = wn * std::sqrt(1.0 - zeta * zeta);
  for (const auto& [t, v] : res.waveform(out)) {
    if (t < 5e-12) continue;
    const double expect =
        1.0 - std::exp(-zeta * wn * t) *
                  (std::cos(wd * t) +
                   zeta / std::sqrt(1 - zeta * zeta) * std::sin(wd * t));
    EXPECT_NEAR(v, expect, 0.02) << t;
  }
  // Underdamped: visible overshoot above the final value.
  double peak = 0.0;
  for (const auto& [t, v] : res.waveform(out)) peak = std::max(peak, v);
  EXPECT_GT(peak, 1.2);
}

TEST(Inductor, DcActsAsShort) {
  // 1V -R1- a -L- b -R2- gnd: DC current = 1/(R1+R2), v_b = R2/(R1+R2).
  Netlist nl;
  const auto src = nl.add_node();
  const auto a = nl.add_node();
  const auto b = nl.add_node();
  nl.add_vsource(src, kGround, SourceWaveform::dc(1.0));
  nl.add_resistor(src, a, 1000.0);
  nl.add_inductor(a, b, 1e-9);
  nl.add_resistor(b, kGround, 3000.0);
  spice::TransientSimulator sim(nl);
  const auto v = sim.dc_operating_point();
  EXPECT_NEAR(v[static_cast<std::size_t>(a)], 0.75, 1e-3);
  EXPECT_NEAR(v[static_cast<std::size_t>(b)], 0.75, 1e-3);
}

TEST(Inductor, NodePencilRejectsInductors) {
  Netlist nl;
  const auto a = nl.add_node();
  nl.add_inductor(a, kGround, 1e-9);
  EXPECT_THROW(build_node_pencil(nl), std::invalid_argument);
  EXPECT_THROW(nl.add_inductor(a, a, 1e-9), std::invalid_argument);
  EXPECT_THROW(nl.add_inductor(a, kGround, -1e-9), std::invalid_argument);
}

TEST(Inductor, MnaBranchFormulation) {
  Netlist nl;
  const auto a = nl.add_node();
  const auto b = nl.add_node();
  nl.add_inductor(a, b, 2e-9);
  nl.add_resistor(b, kGround, 10.0);
  const MnaSystem sys = build_mna(nl);
  EXPECT_EQ(sys.num_inductors, 1u);
  EXPECT_EQ(sys.dimension(), 3u);
  const std::size_t row = sys.inductor_index(0);
  EXPECT_DOUBLE_EQ(sys.g(row, MnaSystem::node_index(a)), 1.0);
  EXPECT_DOUBLE_EQ(sys.g(row, MnaSystem::node_index(b)), -1.0);
  EXPECT_DOUBLE_EQ(sys.c(row, row), -2e-9);
}

}  // namespace
}  // namespace lcsf::circuit
