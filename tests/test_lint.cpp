// Unit tests for the lcsf_lint rule engine (tools/lint/lint_engine.*).
//
// Synthetic sources go through lint_source() and the tests assert the
// exact rule ids and line numbers -- including that suppressions work,
// that stale suppressions are themselves findings, and that violations
// hidden in comments or string literals never fire. Seeded violations
// below live inside string literals, which the engine scrubs when
// lcsf_lint scans this file, so they do not trip the tree-wide gate.
#include "lint_engine.hpp"

#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace lcsf::lint {
namespace {

using Findings = std::vector<Finding>;

Findings run(const std::string& path, const std::string& src) {
  return lint_source(path, src);
}

/// "rule@line rule@line ..." rendering for compact exact-match asserts.
std::string ids(const Findings& f) {
  std::string out;
  for (const auto& x : f) {
    if (!out.empty()) out += ' ';
    out += x.rule + "@" + std::to_string(x.line);
  }
  return out;
}

TEST(LintScrub, BlanksCommentsAndLiterals) {
  const ScrubbedSource s = scrub(
      "int a; // trailing comment\n"
      "const char* s = \"rand()\";\n"
      "/* block\n"
      "   comment */ int b;\n");
  ASSERT_EQ(s.code.size(), 5u);  // 4 lines + empty tail after final \n
  EXPECT_EQ(s.code[0], "int a; ");
  EXPECT_EQ(s.comments[0], " trailing comment");
  // The literal body is gone from the code view.
  EXPECT_EQ(s.code[1].find("rand"), std::string::npos);
  EXPECT_EQ(s.comments[2], " block");
  EXPECT_NE(s.code[3].find("int b;"), std::string::npos);
}

TEST(LintScrub, HandlesRawStringsAndDigitSeparators) {
  const ScrubbedSource s = scrub(
      "auto r = R\"(std::thread inside raw string)\";\n"
      "int big = 1'000'000;\n");
  EXPECT_EQ(s.code[0].find("thread"), std::string::npos);
  // The digit separator must not open a char literal and eat the line.
  EXPECT_NE(s.code[1].find("000"), std::string::npos);
}

TEST(LintRng, FlagsLibcAndRandomDevice) {
  const auto f = run("src/stats/foo.cpp",
                     "void f() {\n"
                     "  int x = rand();\n"
                     "  srand(42);\n"
                     "  std::random_device rd;\n"
                     "  auto t = time(nullptr);\n"
                     "}\n");
  EXPECT_EQ(ids(f),
            "nondeterministic-rng@2 nondeterministic-rng@3 "
            "nondeterministic-rng@4 nondeterministic-rng@5");
}

TEST(LintRng, FlagsDefaultSeededMt19937Only) {
  const auto f = run("bench/foo.cpp",
                     "std::mt19937 bad;\n"
                     "std::mt19937_64 bad2{};\n"
                     "std::mt19937 good(42);\n"
                     "std::mt19937_64 good2(seed);\n");
  EXPECT_EQ(ids(f), "nondeterministic-rng@1 nondeterministic-rng@2");
}

TEST(LintRng, IdentifiersContainingTimeDoNotFire) {
  const auto f = run("src/spice/foo.cpp",
                     "double failure_time(int k);\n"
                     "auto v = res.time.size();\n"
                     "double settling_time(double x) { return x; }\n");
  EXPECT_EQ(ids(f), "");
}

TEST(LintThrow, FiresOnlyInEngineDirs) {
  const std::string src =
      "void f() {\n"
      "  throw std::invalid_argument(\"bad\");\n"
      "  throw std::runtime_error(\"worse\");\n"
      "}\n";
  EXPECT_EQ(ids(run("src/spice/x.cpp", src)),
            "raw-engine-throw@2 raw-engine-throw@3");
  EXPECT_EQ(ids(run("src/teta/x.cpp", src)),
            "raw-engine-throw@2 raw-engine-throw@3");
  EXPECT_EQ(ids(run("src/stats/x.cpp", src)),
            "raw-engine-throw@2 raw-engine-throw@3");
  // circuit/ and numeric/ are API layers, not fail-soft engines.
  EXPECT_EQ(ids(run("src/circuit/x.cpp", src)), "");
  EXPECT_EQ(ids(run("src/numeric/x.cpp", src)), "");
}

TEST(LintThrow, LogicErrorAndSimulationErrorAreFine) {
  const auto f = run("src/teta/x.cpp",
                     "void f() {\n"
                     "  throw std::logic_error(\"misuse\");\n"
                     "  throw sim::SimulationError(diag);\n"
                     "  sim::throw_invalid_input(\"bad dt\");\n"
                     "}\n");
  EXPECT_EQ(ids(f), "");
}

TEST(LintFloatEq, FlagsLiteralComparisonsBothSides) {
  const auto f = run("src/mor/x.cpp",
                     "bool a = x == 0.0;\n"
                     "bool b = 1.5e-3 != y;\n"
                     "bool c = z == -2.;\n"
                     "bool d = w == 1e9;\n");
  EXPECT_EQ(ids(f),
            "float-equality@1 float-equality@2 float-equality@3 "
            "float-equality@4");
}

TEST(LintFloatEq, TolerancesAssignmentsAndIntsAreFine) {
  const auto f = run("src/mor/x.cpp",
                     "bool a = std::abs(x - y) <= 1e-12;\n"
                     "double b = 1.0;\n"
                     "bool c = n == 0;\n"
                     "x *= 2.0;\n"
                     "bool d = numeric::exact_zero(x);\n");
  EXPECT_EQ(ids(f), "");
}

TEST(LintThread, RawThreadsOutsidePoolOnly) {
  const std::string src =
      "#pragma once\n"
      "#include <thread>\n"
      "std::thread t(f);\n"
      "auto fut = std::async(g);\n"
      "std::this_thread::yield();\n";
  EXPECT_EQ(ids(run("tests/x.cpp", src)),
            "thread-outside-pool@3 thread-outside-pool@4");
  EXPECT_EQ(ids(run("src/core/thread_pool.cpp", src)), "");
  EXPECT_EQ(ids(run("src/core/thread_pool.hpp", src)), "");
}

TEST(LintHeader, PragmaOnceRequired) {
  EXPECT_EQ(ids(run("src/mor/x.hpp", "namespace a {}\n")), "include-guard@1");
  EXPECT_EQ(ids(run("src/mor/x.hpp", "#pragma once\nnamespace a {}\n")), "");
  // Implementation files need no guard.
  EXPECT_EQ(ids(run("src/mor/x.cpp", "namespace a {}\n")), "");
}

TEST(LintHeader, LegacyIfndefGuardFlagged) {
  const auto f = run("src/mor/x.hpp",
                     "#ifndef LCSF_MOR_X_HPP\n"
                     "#define LCSF_MOR_X_HPP\n"
                     "#endif\n");
  // Missing #pragma once (line 1) plus the legacy guard itself (line 1).
  EXPECT_EQ(ids(f), "include-guard@1 include-guard@1");
}

TEST(LintHeader, UsingNamespaceOnlyInHeaders) {
  EXPECT_EQ(
      ids(run("src/mor/x.hpp", "#pragma once\nusing namespace std;\n")),
      "using-namespace-header@2");
  EXPECT_EQ(ids(run("src/mor/x.cpp", "using namespace lcsf;\n")), "");
}

TEST(LintSpan, FlagsTemporaryScopedSpans) {
  const auto f = run("src/mor/x.cpp",
                     "void f() {\n"
                     "  obs::ScopedSpan{\"phase\"};\n"
                     "  obs::ScopedSpan(\"phase\");\n"
                     "  ScopedSpan {\"unqualified\"};\n"
                     "}\n");
  EXPECT_EQ(ids(f),
            "obs-span-balance@2 obs-span-balance@3 obs-span-balance@4");
}

TEST(LintSpan, NamedSpansAndLookalikesAreFine) {
  const auto f = run("src/mor/x.cpp",
                     "void f() {\n"
                     "  obs::ScopedSpan span(\"phase\");\n"
                     "  obs::ScopedSpan braced{\"phase\"};\n"
                     "  MyScopedSpan(\"not the obs type\");\n"
                     "}\n");
  EXPECT_EQ(ids(f), "");
}

TEST(LintSpan, ObsSubsystemItselfIsExempt) {
  // The declaring header's own ctor/dtor signatures must not self-flag.
  const std::string src =
      "#pragma once\n"
      "class ScopedSpan {\n"
      "  explicit ScopedSpan(const char* name);\n"
      "  ~ScopedSpan();\n"
      "};\n";
  EXPECT_EQ(ids(run("src/obs/span.hpp", src)), "");
  // Elsewhere the class-shaped and ctor-shaped lines still fire (the
  // rule is conservative outside the one sanctioned directory); the
  // destructor declaration never does.
  EXPECT_EQ(ids(run("src/mor/x.hpp", src)),
            "obs-span-balance@2 obs-span-balance@3");
}

TEST(LintScrub, ViolationsInCommentsAndStringsDoNotFire) {
  const auto f = run("src/stats/x.cpp",
                     "// call rand() then throw std::runtime_error\n"
                     "const char* doc = \"if (x == 0.0) std::thread\";\n"
                     "/* std::random_device */\n");
  EXPECT_EQ(ids(f), "");
}

TEST(LintSuppress, JustifiedSuppressionSilencesRule) {
  const auto f = run("tests/x.cpp",
                     "// lcsf-lint: allow(thread-outside-pool) -- stress "
                     "test needs a raw thread\n"
                     "std::thread t(f);\n");
  EXPECT_EQ(ids(f), "");
}

TEST(LintSuppress, MissingJustificationIsAFinding) {
  const auto f = run("tests/x.cpp",
                     "// lcsf-lint: allow(thread-outside-pool)\n"
                     "std::thread t(f);\n");
  // The violation is still silenced, but the bare directive is reported.
  EXPECT_EQ(ids(f), "suppression-missing-justification@1");
}

TEST(LintSuppress, UnknownRuleIsAFinding) {
  const auto f =
      run("tests/x.cpp", "// lcsf-lint: allow(no-such-rule) -- because\n");
  EXPECT_EQ(ids(f), "unknown-rule-suppression@1");
}

TEST(LintSuppress, StaleSuppressionIsAFinding) {
  const auto f = run("tests/x.cpp",
                     "int x;\n"
                     "// lcsf-lint: allow(float-equality) -- no longer "
                     "needed after a refactor\n");
  EXPECT_EQ(ids(f), "unused-suppression@2");
}

TEST(LintSuppress, SuppressionIsFileScopedToItsRuleOnly) {
  const auto f = run("src/spice/x.cpp",
                     "// lcsf-lint: allow(raw-engine-throw) -- exercising "
                     "the legacy path in a fixture\n"
                     "void f() { throw std::runtime_error(\"x\"); }\n"
                     "bool g(double v) { return v == 0.0; }\n");
  // raw-engine-throw is silenced file-wide; float-equality still fires.
  EXPECT_EQ(ids(f), "float-equality@3");
}

TEST(LintMeta, RuleRegistryIsConsistent) {
  EXPECT_FALSE(rules().empty());
  for (const auto& r : rules()) {
    EXPECT_TRUE(is_rule(r.id));
  }
  EXPECT_FALSE(is_rule("definitely-not-a-rule"));
}

}  // namespace
}  // namespace lcsf::lint
