// Unit tests for the lcsf_lint analyzer (tools/lint/lint_engine.* and
// tools/lint/project_analyzer.*).
//
// Synthetic sources go through lint_source() (per-file pass) or
// scan_file + analyze_project + finalize_scan (the full multi-pass
// pipeline) and the tests assert the exact rule ids, line numbers and
// edge paths -- including that suppressions work across both passes,
// that stale suppressions are themselves findings, and that violations
// hidden in comments or string literals never fire. Seeded violations
// below live inside string literals, which the engine scrubs when
// lcsf_lint scans this file, so they do not trip the tree-wide gate
// (and the quoted `#include` targets sit mid-line, so the raw-content
// include parser's line-start anchor skips them too).
#include "lint_engine.hpp"
#include "project_analyzer.hpp"

#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace lcsf::lint {
namespace {

using Findings = std::vector<Finding>;

Findings run(const std::string& path, const std::string& src) {
  return lint_source(path, src);
}

/// "rule@line rule@line ..." rendering for compact exact-match asserts.
std::string ids(const Findings& f) {
  std::string out;
  for (const auto& x : f) {
    if (!out.empty()) out += ' ';
    out += x.rule + "@" + std::to_string(x.line);
  }
  return out;
}

TEST(LintScrub, BlanksCommentsAndLiterals) {
  const ScrubbedSource s = scrub(
      "int a; // trailing comment\n"
      "const char* s = \"rand()\";\n"
      "/* block\n"
      "   comment */ int b;\n");
  ASSERT_EQ(s.code.size(), 5u);  // 4 lines + empty tail after final \n
  EXPECT_EQ(s.code[0], "int a; ");
  EXPECT_EQ(s.comments[0], " trailing comment");
  // The literal body is gone from the code view.
  EXPECT_EQ(s.code[1].find("rand"), std::string::npos);
  EXPECT_EQ(s.comments[2], " block");
  EXPECT_NE(s.code[3].find("int b;"), std::string::npos);
}

TEST(LintScrub, HandlesRawStringsAndDigitSeparators) {
  const ScrubbedSource s = scrub(
      "auto r = R\"(std::thread inside raw string)\";\n"
      "int big = 1'000'000;\n");
  EXPECT_EQ(s.code[0].find("thread"), std::string::npos);
  // The digit separator must not open a char literal and eat the line.
  EXPECT_NE(s.code[1].find("000"), std::string::npos);
}

TEST(LintRng, FlagsLibcAndRandomDevice) {
  const auto f = run("src/stats/foo.cpp",
                     "void f() {\n"
                     "  int x = rand();\n"
                     "  srand(42);\n"
                     "  std::random_device rd;\n"
                     "  auto t = time(nullptr);\n"
                     "}\n");
  EXPECT_EQ(ids(f),
            "nondeterministic-rng@2 nondeterministic-rng@3 "
            "nondeterministic-rng@4 nondeterministic-rng@5");
}

TEST(LintRng, FlagsDefaultSeededMt19937Only) {
  const auto f = run("bench/foo.cpp",
                     "std::mt19937 bad;\n"
                     "std::mt19937_64 bad2{};\n"
                     "std::mt19937 good(42);\n"
                     "std::mt19937_64 good2(seed);\n");
  EXPECT_EQ(ids(f), "nondeterministic-rng@1 nondeterministic-rng@2");
}

TEST(LintRng, IdentifiersContainingTimeDoNotFire) {
  const auto f = run("src/spice/foo.cpp",
                     "double failure_time(int k);\n"
                     "auto v = res.time.size();\n"
                     "double settling_time(double x) { return x; }\n");
  EXPECT_EQ(ids(f), "");
}

TEST(LintThrow, FiresOnlyInEngineDirs) {
  const std::string src =
      "void f() {\n"
      "  throw std::invalid_argument(\"bad\");\n"
      "  throw std::runtime_error(\"worse\");\n"
      "}\n";
  EXPECT_EQ(ids(run("src/spice/x.cpp", src)),
            "raw-engine-throw@2 raw-engine-throw@3");
  EXPECT_EQ(ids(run("src/teta/x.cpp", src)),
            "raw-engine-throw@2 raw-engine-throw@3");
  EXPECT_EQ(ids(run("src/stats/x.cpp", src)),
            "raw-engine-throw@2 raw-engine-throw@3");
  // circuit/ and numeric/ are API layers, not fail-soft engines.
  EXPECT_EQ(ids(run("src/circuit/x.cpp", src)), "");
  EXPECT_EQ(ids(run("src/numeric/x.cpp", src)), "");
}

TEST(LintThrow, LogicErrorAndSimulationErrorAreFine) {
  const auto f = run("src/teta/x.cpp",
                     "void f() {\n"
                     "  throw std::logic_error(\"misuse\");\n"
                     "  throw sim::SimulationError(diag);\n"
                     "  sim::throw_invalid_input(\"bad dt\");\n"
                     "}\n");
  EXPECT_EQ(ids(f), "");
}

TEST(LintFloatEq, FlagsLiteralComparisonsBothSides) {
  const auto f = run("src/mor/x.cpp",
                     "bool a = x == 0.0;\n"
                     "bool b = 1.5e-3 != y;\n"
                     "bool c = z == -2.;\n"
                     "bool d = w == 1e9;\n");
  EXPECT_EQ(ids(f),
            "float-equality@1 float-equality@2 float-equality@3 "
            "float-equality@4");
}

TEST(LintFloatEq, TolerancesAssignmentsAndIntsAreFine) {
  const auto f = run("src/mor/x.cpp",
                     "bool a = std::abs(x - y) <= 1e-12;\n"
                     "double b = 1.0;\n"
                     "bool c = n == 0;\n"
                     "x *= 2.0;\n"
                     "bool d = numeric::exact_zero(x);\n");
  EXPECT_EQ(ids(f), "");
}

TEST(LintThread, RawThreadsOutsidePoolOnly) {
  const std::string src =
      "#pragma once\n"
      "#include <thread>\n"
      "std::thread t(f);\n"
      "auto fut = std::async(g);\n"
      "std::this_thread::yield();\n";
  EXPECT_EQ(ids(run("tests/x.cpp", src)),
            "thread-outside-pool@3 thread-outside-pool@4");
  EXPECT_EQ(ids(run("src/runtime/thread_pool.cpp", src)), "");
  EXPECT_EQ(ids(run("src/runtime/thread_pool.hpp", src)), "");
}

TEST(LintHeader, PragmaOnceRequired) {
  EXPECT_EQ(ids(run("src/mor/x.hpp", "namespace a {}\n")), "include-guard@1");
  EXPECT_EQ(ids(run("src/mor/x.hpp", "#pragma once\nnamespace a {}\n")), "");
  // Implementation files need no guard.
  EXPECT_EQ(ids(run("src/mor/x.cpp", "namespace a {}\n")), "");
}

TEST(LintHeader, LegacyIfndefGuardFlagged) {
  const auto f = run("src/mor/x.hpp",
                     "#ifndef LCSF_MOR_X_HPP\n"
                     "#define LCSF_MOR_X_HPP\n"
                     "#endif\n");
  // Missing #pragma once (line 1) plus the legacy guard itself (line 1).
  EXPECT_EQ(ids(f), "include-guard@1 include-guard@1");
}

TEST(LintHeader, UsingNamespaceOnlyInHeaders) {
  EXPECT_EQ(
      ids(run("src/mor/x.hpp", "#pragma once\nusing namespace std;\n")),
      "using-namespace-header@2");
  EXPECT_EQ(ids(run("src/mor/x.cpp", "using namespace lcsf;\n")), "");
}

TEST(LintSpan, FlagsTemporaryScopedSpans) {
  const auto f = run("src/mor/x.cpp",
                     "void f() {\n"
                     "  obs::ScopedSpan{\"phase\"};\n"
                     "  obs::ScopedSpan(\"phase\");\n"
                     "  ScopedSpan {\"unqualified\"};\n"
                     "}\n");
  EXPECT_EQ(ids(f),
            "obs-span-balance@2 obs-span-balance@3 obs-span-balance@4");
}

TEST(LintSpan, NamedSpansAndLookalikesAreFine) {
  const auto f = run("src/mor/x.cpp",
                     "void f() {\n"
                     "  obs::ScopedSpan span(\"phase\");\n"
                     "  obs::ScopedSpan braced{\"phase\"};\n"
                     "  MyScopedSpan(\"not the obs type\");\n"
                     "}\n");
  EXPECT_EQ(ids(f), "");
}

TEST(LintSpan, ObsSubsystemItselfIsExempt) {
  // The declaring header's own ctor/dtor signatures must not self-flag.
  const std::string src =
      "#pragma once\n"
      "class ScopedSpan {\n"
      "  explicit ScopedSpan(const char* name);\n"
      "  ~ScopedSpan();\n"
      "};\n";
  EXPECT_EQ(ids(run("src/obs/span.hpp", src)), "");
  // Elsewhere the class-shaped and ctor-shaped lines still fire (the
  // rule is conservative outside the one sanctioned directory); the
  // destructor declaration never does.
  EXPECT_EQ(ids(run("src/mor/x.hpp", src)),
            "obs-span-balance@2 obs-span-balance@3");
}

TEST(LintScrub, ViolationsInCommentsAndStringsDoNotFire) {
  const auto f = run("src/stats/x.cpp",
                     "// call rand() then throw std::runtime_error\n"
                     "const char* doc = \"if (x == 0.0) std::thread\";\n"
                     "/* std::random_device */\n");
  EXPECT_EQ(ids(f), "");
}

TEST(LintSuppress, JustifiedSuppressionSilencesRule) {
  const auto f = run("tests/x.cpp",
                     "// lcsf-lint: allow(thread-outside-pool) -- stress "
                     "test needs a raw thread\n"
                     "std::thread t(f);\n");
  EXPECT_EQ(ids(f), "");
}

TEST(LintSuppress, MissingJustificationIsAFinding) {
  const auto f = run("tests/x.cpp",
                     "// lcsf-lint: allow(thread-outside-pool)\n"
                     "std::thread t(f);\n");
  // The violation is still silenced, but the bare directive is reported.
  EXPECT_EQ(ids(f), "suppression-missing-justification@1");
}

TEST(LintSuppress, UnknownRuleIsAFinding) {
  const auto f =
      run("tests/x.cpp", "// lcsf-lint: allow(no-such-rule) -- because\n");
  EXPECT_EQ(ids(f), "unknown-rule-suppression@1");
}

TEST(LintSuppress, StaleSuppressionIsAFinding) {
  const auto f = run("tests/x.cpp",
                     "int x;\n"
                     "// lcsf-lint: allow(float-equality) -- no longer "
                     "needed after a refactor\n");
  EXPECT_EQ(ids(f), "unused-suppression@2");
}

TEST(LintSuppress, SuppressionIsFileScopedToItsRuleOnly) {
  const auto f = run("src/spice/x.cpp",
                     "// lcsf-lint: allow(raw-engine-throw) -- exercising "
                     "the legacy path in a fixture\n"
                     "void f() { throw std::runtime_error(\"x\"); }\n"
                     "bool g(double v) { return v == 0.0; }\n");
  // raw-engine-throw is silenced file-wide; float-equality still fires.
  EXPECT_EQ(ids(f), "float-equality@3");
}

TEST(LintIter, FlagsRangeForAndBeginOverUnordered) {
  const auto f = run("src/obs/x.cpp",
                     "std::unordered_map<std::string, int> counts;\n"
                     "void f() {\n"
                     "  for (const auto& kv : counts) use(kv);\n"
                     "  auto it = counts.begin();\n"
                     "}\n");
  EXPECT_EQ(ids(f),
            "nondeterministic-iteration@3 nondeterministic-iteration@4");
}

TEST(LintIter, OrderedMapAndLookupOnlyUseAreFine) {
  const auto f = run("src/obs/x.cpp",
                     "std::map<std::string, int> sorted;\n"
                     "std::unordered_map<std::string, int> index;\n"
                     "void f() {\n"
                     "  for (const auto& kv : sorted) use(kv);\n"
                     "  auto hit = index.find(key);\n"
                     "  index[key] = 1;\n"
                     "}\n");
  // Iterating the ordered map is the sanctioned fix; lookup-only use of
  // the hash map never exposes element order.
  EXPECT_EQ(ids(f), "");
}

TEST(LintIter, RuleIsScopedToSrcAndTools) {
  const std::string src =
      "std::unordered_set<int> pool;\n"
      "void f() { for (int v : pool) use(v); }\n";
  EXPECT_EQ(ids(run("src/stats/x.cpp", src)),
            "nondeterministic-iteration@2");
  EXPECT_EQ(ids(run("tools/x.cpp", src)), "nondeterministic-iteration@2");
  // Benches and tests may walk hash containers; their order never
  // reaches exported results.
  EXPECT_EQ(ids(run("bench/x.cpp", src)), "");
  EXPECT_EQ(ids(run("tests/x.cpp", src)), "");
}

TEST(LintWallClock, FiresInEngineNotInObsOrBench) {
  const std::string src =
      "auto t0 = std::chrono::steady_clock::now();\n"
      "double dt = elapsed(t0);\n";
  EXPECT_EQ(ids(run("src/teta/x.cpp", src)), "wall-clock-in-engine@1");
  EXPECT_EQ(ids(run("src/stats/x.cpp", src)), "wall-clock-in-engine@1");
  // src/obs/ owns the phase timers; bench/ measures wall time by design.
  EXPECT_EQ(ids(run("src/obs/x.cpp", src)), "");
  EXPECT_EQ(ids(run("bench/x.cpp", src)), "");
}

TEST(LintWallClock, ChronoIncludeAndBareClockNamesFire) {
  const auto f = run("src/mor/x.cpp",
                     "using clock = steady_clock;\n"
                     "auto now = system_clock::now();\n");
  EXPECT_EQ(ids(f), "wall-clock-in-engine@1 wall-clock-in-engine@2");
}

TEST(LintMutStatic, FlagsMutableHeaderStatics) {
  const auto f = run("src/mor/x.hpp",
                     "#pragma once\n"
                     "static int counter = 0;\n"
                     "inline static double total;\n"
                     "static constexpr int kDim = 4;\n"
                     "static const char* kName = \"x\";\n"
                     "static int helper() { return 1; }\n");
  // constexpr/const data and static functions are fine; the two mutable
  // objects are hidden cross-TU state.
  EXPECT_EQ(ids(f),
            "mutable-static-in-header@2 mutable-static-in-header@3");
}

TEST(LintMutStatic, ImplementationFilesAreExempt) {
  EXPECT_EQ(ids(run("src/mor/x.cpp", "static int counter = 0;\n")), "");
}

// ---------------------------------------------------------------------
// Pass 2: the cross-file include-graph rules, driven end to end through
// scan_file -> analyze_project -> finalize_scan on synthetic trees.
// ---------------------------------------------------------------------

using SourceTree = std::vector<std::pair<std::string, std::string>>;

std::vector<FileScan> project(const SourceTree& files,
                              const std::string& manifest_text) {
  std::vector<FileScan> scans;
  scans.reserve(files.size());
  for (const auto& [path, src] : files) {
    scans.push_back(scan_file(path, src));
  }
  const LayerManifest manifest = parse_layers(manifest_text);
  EXPECT_TRUE(manifest.error.empty()) << manifest.error;
  analyze_project(scans, manifest);
  for (auto& s : scans) finalize_scan(s);
  return scans;
}

/// All unsuppressed findings, rendered "file:rule@line ..." in scan
/// order (scans arrive sorted by the driver; tests pass sorted trees).
std::string project_ids(const std::vector<FileScan>& scans) {
  std::string out;
  for (const auto& s : scans) {
    for (const auto& f : s.findings) {
      if (f.suppressed) continue;
      if (!out.empty()) out += ' ';
      out += f.file + ":" + f.rule + "@" + std::to_string(f.line);
    }
  }
  return out;
}

TEST(LintLayers, ManifestParsesLayersAndRejectsDuplicates) {
  const LayerManifest m = parse_layers(
      "# comment line\n"
      "alpha beta\n"
      "\n"
      "gamma  # trailing comment\n");
  EXPECT_TRUE(m.error.empty());
  EXPECT_EQ(m.layer.at("alpha"), 0);
  EXPECT_EQ(m.layer.at("beta"), 0);
  EXPECT_EQ(m.layer.at("gamma"), 1);
  EXPECT_FALSE(parse_layers("alpha\nalpha\n").error.empty());
  EXPECT_FALSE(parse_layers("# only comments\n").error.empty());
}

TEST(LintLayers, ModuleOfCollapsesDirectories) {
  EXPECT_EQ(module_of("src/mor/pact.hpp"), "mor");
  EXPECT_EQ(module_of("tools/lint/lint_engine.cpp"), "tools");
  EXPECT_EQ(module_of("bench/bench_yield.cpp"), "bench");
  EXPECT_EQ(module_of("tests/test_lint.cpp"), "tests");
}

TEST(LintLayers, UpwardEdgeAcrossModulesIsAViolation) {
  const auto scans = project(
      {
          {"src/alpha/low.hpp",
           "#pragma once\n"
           "#include \"beta/high.hpp\"\n"},
          {"src/alpha/use.cpp", "#include \"alpha/low.hpp\"\n"},
          {"src/beta/high.hpp", "#pragma once\n"},
      },
      "alpha\nbeta\n");
  EXPECT_EQ(project_ids(scans),
            "src/alpha/low.hpp:layering-violation@2");
  // The finding carries the offending edge as a path.
  const Finding& f = scans[0].findings[0];
  ASSERT_EQ(f.edge_path.size(), 2u);
  EXPECT_EQ(f.edge_path[0], "src/alpha/low.hpp");
  EXPECT_EQ(f.edge_path[1], "src/beta/high.hpp");
}

TEST(LintLayers, DownwardAndSameLayerEdgesAreFine) {
  const auto scans = project(
      {
          {"src/alpha/low.hpp", "#pragma once\n"},
          {"src/beta/high.hpp",
           "#pragma once\n"
           "#include \"alpha/low.hpp\"\n"},
          {"src/beta/use.cpp", "#include \"beta/high.hpp\"\n"},
      },
      "alpha\nbeta\n");
  EXPECT_EQ(project_ids(scans), "");
}

TEST(LintLayers, ModuleMissingFromManifestIsReportedOnce) {
  const auto scans = project(
      {
          {"src/alpha/low.hpp", "#pragma once\n"},
          {"src/mystery/a.cpp", "#include \"alpha/low.hpp\"\n"},
          {"src/mystery/b.cpp", "#include \"alpha/low.hpp\"\n"},
      },
      "alpha\n");
  // One finding for the unknown module, not one per edge.
  EXPECT_EQ(project_ids(scans),
            "src/mystery/a.cpp:layering-violation@1");
}

TEST(LintCycles, FileLevelIncludeCycleReportsTheWholePath) {
  const auto scans = project(
      {
          {"src/gamma/a.hpp",
           "#pragma once\n"
           "#include \"gamma/b.hpp\"\n"},
          {"src/gamma/b.hpp",
           "#pragma once\n"
           "#include \"gamma/a.hpp\"\n"},
          {"src/gamma/use.cpp", "#include \"gamma/a.hpp\"\n"},
      },
      "gamma\n");
  // The finding lands on the back edge's includer, at its #include.
  EXPECT_EQ(project_ids(scans), "src/gamma/b.hpp:include-cycle@2");
  const Finding& f = scans[1].findings[0];
  ASSERT_EQ(f.edge_path.size(), 3u);
  EXPECT_EQ(f.edge_path[0], "src/gamma/a.hpp");
  EXPECT_EQ(f.edge_path[1], "src/gamma/b.hpp");
  EXPECT_EQ(f.edge_path[2], "src/gamma/a.hpp");
}

TEST(LintCycles, ModuleLevelCycleFiresWithoutAFileCycle) {
  // d1 -> e -> d2: acyclic at file level, cyclic once collapsed to
  // modules (delta -> eps -> delta), which the same-layer manifest
  // cannot catch.
  const auto scans = project(
      {
          {"src/delta/d1.hpp",
           "#pragma once\n"
           "#include \"eps/e.hpp\"\n"},
          {"src/delta/d2.hpp", "#pragma once\n"},
          {"src/delta/use.cpp", "#include \"delta/d1.hpp\"\n"},
          {"src/eps/e.hpp",
           "#pragma once\n"
           "#include \"delta/d2.hpp\"\n"},
      },
      "delta eps\n");
  EXPECT_EQ(project_ids(scans), "src/eps/e.hpp:include-cycle@2");
  const Finding& f = scans[3].findings[0];
  ASSERT_EQ(f.edge_path.size(), 3u);
  EXPECT_EQ(f.edge_path[0], "delta");
  EXPECT_EQ(f.edge_path[1], "eps");
  EXPECT_EQ(f.edge_path[2], "delta");
}

TEST(LintOrphan, UnincludedHeaderIsFlaggedAtLineOne) {
  const auto scans = project(
      {
          {"src/zeta/alone.hpp", "#pragma once\n"},
          {"src/zeta/used.hpp", "#pragma once\n"},
          {"src/zeta/use.cpp", "#include \"zeta/used.hpp\"\n"},
      },
      "zeta\n");
  EXPECT_EQ(project_ids(scans), "src/zeta/alone.hpp:orphan-header@1");
}

TEST(LintProject, SuppressionsApplyToIncludeGraphRules) {
  const auto scans = project(
      {
          {"src/alpha/low.hpp",
           "#pragma once\n"
           "// lcsf-lint: allow(layering-violation) -- legacy upward "
           "edge, migration tracked in the roadmap\n"
           "#include \"beta/high.hpp\"\n"},
          {"src/alpha/use.cpp", "#include \"alpha/low.hpp\"\n"},
          {"src/beta/high.hpp", "#pragma once\n"},
      },
      "alpha\nbeta\n");
  // Silenced in the text report, carried with status in the document.
  EXPECT_EQ(project_ids(scans), "");
  ASSERT_EQ(scans[0].findings.size(), 1u);
  EXPECT_EQ(scans[0].findings[0].rule, "layering-violation");
  EXPECT_TRUE(scans[0].findings[0].suppressed);
}

TEST(LintProject, StaleSuppressionOfAGraphRuleIsAFinding) {
  const auto scans = project(
      {
          {"src/alpha/clean.cpp",
           "// lcsf-lint: allow(include-cycle) -- cycle removed, "
           "directive left behind\n"
           "int x;\n"},
      },
      "alpha\n");
  EXPECT_EQ(project_ids(scans),
            "src/alpha/clean.cpp:unused-suppression@1");
}

TEST(LintJson, DocumentCarriesFindingsAndEdgePaths) {
  const auto scans = project(
      {
          {"src/alpha/low.hpp",
           "#pragma once\n"
           "#include \"beta/high.hpp\"\n"},
          {"src/alpha/use.cpp", "#include \"alpha/low.hpp\"\n"},
          {"src/beta/high.hpp", "#pragma once\n"},
      },
      "alpha\nbeta\n");
  const std::string doc = findings_to_json(scans);
  EXPECT_NE(doc.find("\"schema\": \"lcsf-lint-v2\""), std::string::npos);
  EXPECT_NE(doc.find("\"files_scanned\": 3"), std::string::npos);
  EXPECT_NE(doc.find("\"rule\": \"layering-violation\""),
            std::string::npos);
  EXPECT_NE(doc.find("\"file\": \"src/alpha/low.hpp\""),
            std::string::npos);
  EXPECT_NE(doc.find("\"line\": 2"), std::string::npos);
  EXPECT_NE(doc.find("\"suppressed\": false"), std::string::npos);
  EXPECT_NE(doc.find("\"edge_path\": [\"src/alpha/low.hpp\", "
                     "\"src/beta/high.hpp\"]"),
            std::string::npos);
}

TEST(LintJson, CleanTreeEmitsEmptyFindingsArray) {
  const auto scans = project(
      {
          {"src/alpha/low.hpp", "#pragma once\n"},
          {"src/alpha/use.cpp", "#include \"alpha/low.hpp\"\n"},
      },
      "alpha\n");
  const std::string doc = findings_to_json(scans);
  EXPECT_NE(doc.find("\"findings\": []"), std::string::npos);
  EXPECT_NE(doc.find("\"suppression_count\": 0"), std::string::npos);
}

TEST(LintJson, EscapesQuotesBackslashesAndControlChars) {
  EXPECT_EQ(json_escape("a\"b\\c\nd\te"), "a\\\"b\\\\c\\nd\\te");
}

TEST(LintMeta, RuleRegistryIsConsistent) {
  EXPECT_FALSE(rules().empty());
  for (const auto& r : rules()) {
    EXPECT_TRUE(is_rule(r.id));
  }
  EXPECT_FALSE(is_rule("definitely-not-a-rule"));
}

}  // namespace
}  // namespace lcsf::lint
