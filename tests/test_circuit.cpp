// Unit and property tests for the netlist / device / MNA substrate.
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/mna.hpp"
#include "circuit/mosfet.hpp"
#include "circuit/netlist.hpp"
#include "circuit/source_waveform.hpp"
#include "circuit/technology.hpp"
#include "numeric/lu.hpp"

namespace lcsf::circuit {
namespace {

TEST(SourceWaveform, DcAndRamp) {
  auto d = SourceWaveform::dc(1.8);
  EXPECT_DOUBLE_EQ(d.value(-1.0), 1.8);
  EXPECT_DOUBLE_EQ(d.value(1e9), 1.8);
  EXPECT_TRUE(d.is_dc());

  auto r = SourceWaveform::ramp(0.0, 1.0, 1e-9, 2e-9);
  EXPECT_DOUBLE_EQ(r.value(0.0), 0.0);
  EXPECT_DOUBLE_EQ(r.value(2e-9), 0.5);
  EXPECT_DOUBLE_EQ(r.value(5e-9), 1.0);
  EXPECT_FALSE(r.is_dc());
}

TEST(SourceWaveform, PulseShape) {
  auto p = SourceWaveform::pulse(0.0, 1.0, 1e-9, 1e-9, 3e-9, 1e-9);
  EXPECT_DOUBLE_EQ(p.value(0.5e-9), 0.0);
  EXPECT_DOUBLE_EQ(p.value(1.5e-9), 0.5);
  EXPECT_DOUBLE_EQ(p.value(3e-9), 1.0);
  EXPECT_DOUBLE_EQ(p.value(5.5e-9), 0.5);
  EXPECT_DOUBLE_EQ(p.value(10e-9), 0.0);
}

TEST(SourceWaveform, PwlValidation) {
  EXPECT_THROW(SourceWaveform::pwl({}), std::invalid_argument);
  EXPECT_THROW(SourceWaveform::pwl({{1.0, 0.0}, {0.5, 1.0}}),
               std::invalid_argument);
  auto w = SourceWaveform::pwl({{0.0, 0.0}, {1.0, 2.0}, {2.0, 0.0}});
  EXPECT_DOUBLE_EQ(w.value(0.5), 1.0);
  EXPECT_DOUBLE_EQ(w.value(1.5), 1.0);
}

TEST(Mosfet, CutoffTriodeSaturationRegions) {
  Technology t = technology_180nm();
  Mosfet m = t.make_nmos(1, 2, 0, 2.0);

  // Cutoff: vgs < vt.
  auto cutoff = mosfet_eval(m, 0.2, 1.8, 0.0);
  EXPECT_DOUBLE_EQ(cutoff.ids, 0.0);
  EXPECT_DOUBLE_EQ(cutoff.gm, 0.0);

  // Saturation: vds > vgs - vt.
  auto sat = mosfet_eval(m, 1.8, 1.8, 0.0);
  EXPECT_GT(sat.ids, 0.0);
  EXPECT_GT(sat.gm, 0.0);
  EXPECT_GT(sat.gds, 0.0);  // lambda > 0

  // Triode: small vds.
  auto tri = mosfet_eval(m, 1.8, 0.1, 0.0);
  EXPECT_GT(tri.ids, 0.0);
  EXPECT_LT(tri.ids, sat.ids);
  EXPECT_GT(tri.gds, sat.gds);  // triode output conductance is large
}

TEST(Mosfet, PmosMirror) {
  Technology t = technology_180nm();
  Mosfet p = t.make_pmos(1, 2, 3, 4.0);
  // PMOS with source at vdd, gate at 0, drain at 0: conducting, current
  // flows out of the drain (negative into drain).
  auto op = mosfet_eval(p, 0.0, 0.0, 1.8);
  EXPECT_LT(op.ids, 0.0);
  EXPECT_GT(op.gds, 0.0);
}

TEST(Mosfet, SourceDrainSwapContinuity) {
  Technology t = technology_180nm();
  Mosfet m = t.make_nmos(1, 2, 0);
  // Current must be an odd-symmetric continuous function of vds through 0.
  auto fwd = mosfet_eval(m, 1.8, 0.05, 0.0);
  auto rev = mosfet_eval(m, 1.75, 0.0, 0.05);  // same vgs w.r.t. conducting
  EXPECT_GT(fwd.ids, 0.0);
  EXPECT_LT(rev.ids, 0.0);
  auto zero = mosfet_eval(m, 1.8, 0.0, 0.0);
  EXPECT_NEAR(zero.ids, 0.0, 1e-15);
}

// Property sweep: analytic gm/gds must match finite differences over the
// full bias plane, including the reverse-conduction region.
struct BiasPoint {
  double vg, vd, vs;
};

class MosfetDerivativeProperty : public ::testing::TestWithParam<BiasPoint> {};

TEST_P(MosfetDerivativeProperty, AnalyticMatchesFiniteDifference) {
  Technology t = technology_180nm();
  for (MosType type : {MosType::kNmos, MosType::kPmos}) {
    Mosfet m = type == MosType::kNmos ? t.make_nmos(1, 2, 3)
                                      : t.make_pmos(1, 2, 3);
    const auto [vg, vd, vs] = GetParam();
    const double h = 1e-6;
    auto op = mosfet_eval(m, vg, vd, vs);
    // gm: derivative w.r.t. gate voltage.
    const double gm_fd = (mosfet_eval(m, vg + h, vd, vs).ids -
                          mosfet_eval(m, vg - h, vd, vs).ids) /
                         (2 * h);
    // gds: derivative w.r.t. drain voltage.
    const double gds_fd = (mosfet_eval(m, vg, vd + h, vs).ids -
                           mosfet_eval(m, vg, vd - h, vs).ids) /
                          (2 * h);
    const double scale = std::abs(op.ids) * 10.0 + 1e-6;
    EXPECT_NEAR(op.gm, gm_fd, 1e-3 * scale + 1e-9)
        << to_string(type) << " at vg=" << vg << " vd=" << vd << " vs=" << vs;
    EXPECT_NEAR(op.gds, gds_fd, 1e-3 * scale + 1e-9)
        << to_string(type) << " at vg=" << vg << " vd=" << vd << " vs=" << vs;
  }
}

INSTANTIATE_TEST_SUITE_P(
    BiasPlane, MosfetDerivativeProperty,
    ::testing::Values(BiasPoint{1.8, 1.8, 0.0}, BiasPoint{1.8, 0.3, 0.0},
                      BiasPoint{0.9, 1.2, 0.0}, BiasPoint{1.2, 0.1, 0.9},
                      BiasPoint{1.8, 0.0, 1.2},  // reverse conduction
                      BiasPoint{0.0, 1.8, 0.0},  // cutoff
                      BiasPoint{1.5, 0.7, 0.7},  // vds = 0
                      BiasPoint{0.6, 1.5, 0.4}));

TEST(Mosfet, VariationShiftsCurrent) {
  Technology t = technology_180nm();
  Mosfet m = t.make_nmos(1, 2, 0);
  const double nominal = mosfet_eval(m, 1.8, 1.8, 0.0).ids;
  m.delta_vt = 0.1;  // higher threshold -> less current
  EXPECT_LT(mosfet_eval(m, 1.8, 1.8, 0.0).ids, nominal);
  m.delta_vt = 0.0;
  m.delta_l = 0.02e-6;  // shorter channel -> more current
  EXPECT_GT(mosfet_eval(m, 1.8, 1.8, 0.0).ids, nominal);
  m.delta_l = m.l;  // degenerate geometry must be rejected
  EXPECT_THROW(mosfet_eval(m, 1.8, 1.8, 0.0), std::runtime_error);
}

TEST(Mosfet, IdsatScale) {
  Technology t = technology_180nm();
  Mosfet m = t.make_nmos(1, 2, 0, 2.0);
  const double i1 = mosfet_idsat(m, t.vdd);
  EXPECT_GT(i1, 0.0);
  Mosfet wide = t.make_nmos(1, 2, 0, 4.0);
  EXPECT_NEAR(mosfet_idsat(wide, t.vdd) / i1, 2.0, 1e-9);
  EXPECT_DOUBLE_EQ(mosfet_idsat(m, 0.1), 0.0);
}

TEST(Netlist, NodeManagement) {
  Netlist nl;
  EXPECT_EQ(nl.node_count(), 1u);  // ground
  NodeId a = nl.add_node("a");
  EXPECT_EQ(a, 1);
  EXPECT_EQ(nl.node("a"), a);
  EXPECT_EQ(nl.node("gnd"), kGround);
  EXPECT_EQ(nl.node("0"), kGround);
  NodeId b = nl.node("b");
  EXPECT_EQ(b, 2);
  EXPECT_THROW(nl.add_node("a"), std::invalid_argument);
}

TEST(Netlist, ElementValidation) {
  Netlist nl;
  NodeId a = nl.add_node();
  EXPECT_THROW(nl.add_resistor(a, a, 100.0), std::invalid_argument);
  EXPECT_THROW(nl.add_resistor(a, kGround, -5.0), std::invalid_argument);
  EXPECT_THROW(nl.add_resistor(a, 99, 1.0), std::out_of_range);
  nl.add_resistor(a, kGround, 100.0);
  nl.add_capacitor(a, kGround, 1e-12);
  EXPECT_EQ(nl.linear_element_count(), 2u);
}

TEST(Netlist, FreezeDeviceCapacitances) {
  Technology t = technology_180nm();
  Netlist nl;
  NodeId in = nl.add_node("in");
  NodeId out = nl.add_node("out");
  NodeId vdd = nl.add_node("vdd");
  nl.add_mosfet(t.make_nmos(out, in, kGround));
  nl.add_mosfet(t.make_pmos(out, in, vdd));
  const std::size_t before = nl.capacitors().size();
  nl.freeze_device_capacitances();
  EXPECT_GT(nl.capacitors().size(), before);
  EXPECT_TRUE(nl.device_capacitances_frozen());
  EXPECT_THROW(nl.add_mosfet(t.make_nmos(out, in, kGround)),
               std::logic_error);
  nl.freeze_device_capacitances();  // idempotent
}

TEST(Mna, VoltageDividerDc) {
  // v1 --R1-- v2 --R2-- gnd with 1V source at v1: v2 = R2/(R1+R2).
  Netlist nl;
  NodeId v1 = nl.add_node("v1");
  NodeId v2 = nl.add_node("v2");
  nl.add_resistor(v1, v2, 1000.0);
  nl.add_resistor(v2, kGround, 3000.0);
  nl.add_vsource(v1, kGround, SourceWaveform::dc(1.0));

  MnaSystem sys = build_mna(nl);
  EXPECT_EQ(sys.dimension(), 3u);
  numeric::Vector b = source_vector(nl, sys, 0.0);
  numeric::Vector x = numeric::solve(sys.g, b);
  EXPECT_NEAR(x[MnaSystem::node_index(v1)], 1.0, 1e-12);
  EXPECT_NEAR(x[MnaSystem::node_index(v2)], 0.75, 1e-12);
  // Source current: -(1V / 4k).
  EXPECT_NEAR(x[sys.vsource_index(0)], -1.0 / 4000.0, 1e-15);
}

TEST(Mna, CurrentSourceRhs) {
  Netlist nl;
  NodeId a = nl.add_node();
  nl.add_resistor(a, kGround, 50.0);
  nl.add_isource(kGround, a, SourceWaveform::dc(1e-3));
  MnaSystem sys = build_mna(nl);
  numeric::Vector b = source_vector(nl, sys, 0.0);
  numeric::Vector x = numeric::solve(sys.g, b);
  EXPECT_NEAR(x[0], 50.0 * 1e-3, 1e-12);
}

TEST(Mna, NodePencilSymmetryAndRejection) {
  Netlist nl;
  NodeId a = nl.add_node();
  NodeId b = nl.add_node();
  nl.add_resistor(a, b, 10.0);
  nl.add_capacitor(a, kGround, 2e-12);
  nl.add_capacitor(a, b, 1e-12);
  NodePencil p = build_node_pencil(nl);
  EXPECT_EQ(p.g.rows(), 2u);
  EXPECT_DOUBLE_EQ(p.g(0, 0), 0.1);
  EXPECT_DOUBLE_EQ(p.g(0, 1), -0.1);
  EXPECT_DOUBLE_EQ(p.c(0, 0), 3e-12);
  EXPECT_DOUBLE_EQ(p.c(0, 1), -1e-12);
  EXPECT_DOUBLE_EQ(p.c(1, 1), 1e-12);

  nl.add_vsource(a, kGround, SourceWaveform::dc(1.0));
  EXPECT_THROW(build_node_pencil(nl), std::invalid_argument);
}

TEST(Technology, CardsAreConsistent) {
  for (const Technology& t : {technology_180nm(), technology_600nm()}) {
    EXPECT_GT(t.vdd, 0.0);
    EXPECT_GT(t.lmin, 0.0);
    EXPECT_GT(t.nmos.kp, t.pmos.kp);  // electron mobility > hole mobility
    EXPECT_GT(t.wire.width, 0.0);
    EXPECT_GT(t.wire_tol.width, 0.0);
    EXPECT_LT(t.wire_tol.width, 1.0);
    Mosfet n = t.make_nmos(1, 2, 0);
    EXPECT_DOUBLE_EQ(n.l, t.lmin);
    EXPECT_GT(mosfet_idsat(n, t.vdd), 0.0);
  }
}

}  // namespace
}  // namespace lcsf::circuit
