// Edge-case and failure-path coverage across modules.
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/netlist.hpp"
#include "circuit/technology.hpp"
#include "numeric/complex_matrix.hpp"
#include "numeric/eigen_real.hpp"
#include "numeric/eigen_sym.hpp"
#include "sim/diagnostics.hpp"
#include "spice/transient.hpp"
#include "stats/descriptive.hpp"
#include "timing/sta.hpp"
#include "timing/waveform.hpp"

namespace lcsf {
namespace {

using circuit::kGround;
using circuit::Netlist;
using circuit::SourceWaveform;
using numeric::Matrix;
using numeric::Vector;

TEST(EigenRealEdge, TinySizes) {
  auto e1 = numeric::eigen_real(Matrix{{3.5}});
  ASSERT_EQ(e1.values.size(), 1u);
  EXPECT_DOUBLE_EQ(e1.values[0].real(), 3.5);
  auto v = e1.vector(0);
  EXPECT_DOUBLE_EQ(v[0].real(), 1.0);

  auto e2 = numeric::eigen_real(Matrix{{2.0, 0.0}, {0.0, -1.0}});
  std::vector<double> re{e2.values[0].real(), e2.values[1].real()};
  std::sort(re.begin(), re.end());
  EXPECT_NEAR(re[0], -1.0, 1e-12);
  EXPECT_NEAR(re[1], 2.0, 1e-12);

  auto e0 = numeric::eigen_real(Matrix(0, 0));
  EXPECT_TRUE(e0.values.empty());
  EXPECT_THROW(numeric::eigen_real(Matrix(2, 3)), std::invalid_argument);
}

TEST(EigenRealEdge, RepeatedEigenvalues) {
  // Diagonalizable with repeated eigenvalue 2.
  Matrix a{{2, 0, 0}, {0, 2, 0}, {0, 0, 5}};
  auto e = numeric::eigen_real(a);
  int twos = 0;
  for (auto& v : e.values) {
    if (std::abs(v.real() - 2.0) < 1e-10) ++twos;
    EXPECT_NEAR(v.imag(), 0.0, 1e-12);
  }
  EXPECT_EQ(twos, 2);
}

TEST(EigenSymEdge, ZeroAndIdentity) {
  auto ez = numeric::eigen_symmetric(Matrix(3, 3));
  for (double v : ez.values) EXPECT_DOUBLE_EQ(v, 0.0);
  auto ei = numeric::eigen_symmetric(Matrix::identity(4));
  for (double v : ei.values) EXPECT_NEAR(v, 1.0, 1e-14);
}

TEST(ComplexLuEdge, SingularAndSolve) {
  numeric::ComplexMatrix a(2, 2);
  a(0, 0) = numeric::Complex{1.0, 1.0};
  a(0, 1) = numeric::Complex{2.0, 0.0};
  a(1, 0) = numeric::Complex{0.0, -1.0};
  a(1, 1) = numeric::Complex{1.0, 0.5};
  numeric::ComplexLu lu(a);
  numeric::CVector b{{1.0, 0.0}, {0.0, 1.0}};
  auto x = lu.solve(b);
  auto check = a * x;
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_NEAR(std::abs(check[i] - b[i]), 0.0, 1e-12);
  }
  numeric::ComplexMatrix sing(2, 2);
  sing(0, 0) = 1.0;
  sing(0, 1) = 2.0;
  sing(1, 0) = 2.0;
  sing(1, 1) = 4.0;
  EXPECT_THROW(numeric::ComplexLu{sing}, std::runtime_error);
}

TEST(SpiceEdge, StoreWaveformsOffAndBlowupDetection) {
  Netlist nl;
  const auto a = nl.add_node();
  nl.add_vsource(a, kGround, SourceWaveform::dc(1.0));
  const auto b = nl.add_node();
  nl.add_resistor(a, b, 100.0);
  nl.add_capacitor(b, kGround, 1e-12);
  spice::TransientSimulator sim(nl);
  spice::TransientOptions opt;
  opt.tstop = 0.1e-9;
  opt.dt = 1e-12;
  opt.store_waveforms = false;
  const auto res = sim.run(opt);
  EXPECT_TRUE(res.converged);
  EXPECT_TRUE(res.node_voltages.empty());
  EXPECT_THROW(res.final_voltage(b), std::runtime_error);
}

TEST(SpiceEdge, MacromodelValidation) {
  Netlist nl;
  const auto a = nl.add_node();
  nl.add_resistor(a, kGround, 100.0);
  spice::TransientSimulator sim(nl);
  spice::MacromodelStamp bad;
  bad.ports = {a};
  bad.g = Matrix(2, 3);  // non-square
  bad.c = Matrix(2, 3);
  EXPECT_THROW(sim.add_macromodel(bad), lcsf::sim::SimulationError);
}

TEST(StaEdge, UnreachableAndMissingEndpoints) {
  timing::GateNetlist nl;
  nl.name = "edge";
  nl.num_nets = 3;
  nl.primary_inputs = {0};
  // A gate whose input net 2 is never driven: output unreachable.
  std::size_t inv = 0;
  for (std::size_t k = 0; k < timing::cell_library().size(); ++k) {
    if (timing::cell_library()[k].name == "INV") inv = k;
  }
  nl.gates.push_back({inv, {2}, 1});
  const auto arrival = timing::arrival_times(nl);
  EXPECT_EQ(arrival[0], 0u);
  EXPECT_EQ(arrival[1], std::numeric_limits<std::size_t>::max());

  EXPECT_THROW(timing::longest_path(nl), std::invalid_argument);
  nl.latch_inputs = {1};  // only an unreachable endpoint
  EXPECT_THROW(timing::longest_path(nl), std::runtime_error);
}

TEST(WaveformEdge, NonMonotoneCrossings) {
  // Glitchy waveform: crossing_time returns the FIRST crossing.
  timing::Samples w{{0.0, 0.0}, {1.0, 1.0}, {2.0, 0.4}, {3.0, 1.0}};
  EXPECT_NEAR(timing::crossing_time(w, 0.5, true).value(), 0.5, 1e-12);
  // Falling crossing of the dip.
  EXPECT_NEAR(timing::crossing_time(w, 0.5, false).value(),
              1.0 + 0.5 / 0.6, 1e-9);
}

TEST(HistogramEdge, SingleValueData) {
  // All-equal data: padding keeps the range valid.
  const auto h = stats::Histogram::from_data({1.0, 1.0, 1.0}, 4);
  EXPECT_EQ(h.total(), 3u);
  std::size_t filled = 0;
  for (std::size_t k = 0; k < h.bins(); ++k) {
    filled += h.bin_count(k) > 0 ? 1 : 0;
  }
  EXPECT_EQ(filled, 1u);
}

TEST(TechnologyEdge, SixHundredNanometerDevices) {
  const auto t = circuit::technology_600nm();
  auto n = t.make_nmos(1, 2, 0, 10.0);
  EXPECT_NEAR(n.w, 6e-6, 1e-12);
  auto op = circuit::mosfet_eval(n, 5.0, 5.0, 0.0);
  EXPECT_GT(op.ids, 1e-4);
  EXPECT_GT(circuit::mosfet_idsat(n, 5.0), op.ids * 0.5);
}

TEST(NetlistEdge, NodeNameLookups) {
  Netlist nl;
  const auto a = nl.add_node("alpha");
  EXPECT_EQ(nl.node_name(a), "alpha");
  EXPECT_EQ(nl.node_name(kGround), "gnd");
  EXPECT_THROW(nl.node_name(99), std::out_of_range);
}

}  // namespace
}  // namespace lcsf
