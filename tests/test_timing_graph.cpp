// Tests for the multi-path timing DAG (timing::TimingGraph), the SSTA
// algebra (timing/ssta.hpp), and the shared-stage graph engine
// (core::GraphAnalyzer) -- see docs/timing_graph.md.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/graph_analyzer.hpp"
#include "core/path.hpp"
#include "numeric/fp_compare.hpp"
#include "sim/diagnostics.hpp"
#include "stats/random.hpp"
#include "timing/graph.hpp"
#include "timing/ssta.hpp"
#include "timing/sta.hpp"

namespace {

using namespace lcsf;
using timing::Gate;
using timing::GateNetlist;
using timing::TimingGraph;
using timing::TimingPath;
namespace ssta = timing::ssta;

std::size_t cell_index(const std::string& name) {
  const auto& lib = timing::cell_library();
  for (std::size_t k = 0; k < lib.size(); ++k) {
    if (lib[k].name == name) return k;
  }
  ADD_FAILURE() << "no cell " << name;
  return 0;
}

/// PI0 -> G(INV) -> G(NAND2, side PI1) -> latch, stored in REVERSE
/// topological order to exercise the levelization.
GateNetlist unsorted_netlist() {
  GateNetlist nl;
  nl.name = "unsorted";
  nl.num_nets = 4;  // 0=PI0 1=PI1 2=INVout 3=NANDout
  nl.primary_inputs = {0, 1};
  nl.gates.push_back({cell_index("NAND2"), {2, 1}, 3});  // consumer first
  nl.gates.push_back({cell_index("INV"), {0}, 2});
  nl.latch_inputs = {3};
  return nl;
}

TEST(TimingGraph, LevelizesGatesStoredOutOfOrder) {
  const GateNetlist nl = unsorted_netlist();
  const TimingGraph g(nl);

  // Gate 1 (the INV) must be processed before gate 0 (the NAND2).
  ASSERT_EQ(g.topo_order().size(), 2u);
  EXPECT_EQ(g.topo_order()[0], 1u);
  EXPECT_EQ(g.topo_order()[1], 0u);

  EXPECT_EQ(g.arrival()[2], 1u);
  EXPECT_EQ(g.arrival()[3], 2u);
  EXPECT_EQ(g.net_driver()[3], 0u);
  EXPECT_EQ(g.net_driver()[0], TimingGraph::kNone);

  // Regression (bugfix 2): the free function now levelizes internally
  // instead of silently mis-ordering.
  const auto arrival = timing::arrival_times(nl);
  EXPECT_EQ(arrival[2], 1u);
  EXPECT_EQ(arrival[3], 2u);
}

TEST(TimingGraph, CycleThrowsClassifiedInvalidInput) {
  GateNetlist nl;
  nl.num_nets = 3;  // 0=PI, 1<->2 cycle
  nl.primary_inputs = {0};
  nl.gates.push_back({cell_index("NAND2"), {0, 2}, 1});
  nl.gates.push_back({cell_index("INV"), {1}, 2});
  nl.latch_inputs = {1};
  try {
    TimingGraph g(nl);
    FAIL() << "cycle not detected";
  } catch (const sim::SimulationError& e) {
    EXPECT_EQ(e.diagnostics().kind, sim::FailureKind::kInvalidInput);
  }
  EXPECT_THROW(timing::arrival_times(nl), sim::SimulationError);
}

TEST(TimingGraph, MultiDriverAndOutOfRangeThrow) {
  GateNetlist two_drivers;
  two_drivers.num_nets = 2;
  two_drivers.primary_inputs = {0};
  two_drivers.gates.push_back({cell_index("INV"), {0}, 1});
  two_drivers.gates.push_back({cell_index("INV"), {0}, 1});
  two_drivers.latch_inputs = {1};
  EXPECT_THROW(TimingGraph{two_drivers}, sim::SimulationError);

  GateNetlist oob;
  oob.num_nets = 2;
  oob.primary_inputs = {0};
  oob.gates.push_back({cell_index("INV"), {5}, 1});
  oob.latch_inputs = {1};
  EXPECT_THROW(TimingGraph{oob}, sim::SimulationError);
}

/// Diamond with a shared prefix: PI0 -> G0(INV), whose output fans out
/// to a short branch (G1) and a long branch (G2 -> G3) that reconverge
/// in a NAND2 (G4) feeding the latch. The two pin-accurate paths share
/// G0 (identical arrival -> one stage memo hit per sample) and both
/// drive the merge gate G4 with different arrivals.
GateNetlist diamond_netlist() {
  GateNetlist nl;
  nl.name = "diamond";
  nl.num_nets = 6;  // 0=PI 1=common 2=short 3=long1 4=long2 5=merge
  nl.primary_inputs = {0};
  const std::size_t inv = cell_index("INV");
  const std::size_t nand2 = cell_index("NAND2");
  nl.gates.push_back({inv, {0}, 1});        // G0 shared prefix
  nl.gates.push_back({inv, {1}, 2});        // G1 short branch
  nl.gates.push_back({inv, {1}, 3});        // G2 long branch 1/2
  nl.gates.push_back({inv, {3}, 4});        // G3 long branch 2/2
  nl.gates.push_back({nand2, {2, 4}, 5});   // G4 merge
  nl.latch_inputs = {5};
  return nl;
}

TEST(TimingGraph, KMostCriticalPathsOrderedAndDeterministic) {
  const GateNetlist nl = diamond_netlist();
  const TimingGraph g(nl);
  const auto paths = g.k_most_critical_paths(8);
  ASSERT_EQ(paths.size(), 2u);  // only two distinct pin-accurate paths

  // Most critical first: the 4-stage branch through the long side, then
  // the 3-stage short side.
  EXPECT_EQ(paths[0].length(), 4u);
  EXPECT_EQ(paths[1].length(), 3u);
  EXPECT_EQ(paths[0].end_net, 5u);
  EXPECT_EQ(paths[0].gates, (std::vector<std::size_t>{0, 2, 3, 4}));
  EXPECT_EQ(paths[0].switching_pin[3], 1u);  // arrives on NAND pin 1
  EXPECT_EQ(paths[1].gates, (std::vector<std::size_t>{0, 1, 4}));

  // Deterministic: a second enumeration is identical.
  const auto again = g.k_most_critical_paths(8);
  ASSERT_EQ(again.size(), paths.size());
  for (std::size_t k = 0; k < paths.size(); ++k) {
    EXPECT_EQ(again[k].gates, paths[k].gates);
    EXPECT_EQ(again[k].switching_pin, paths[k].switching_pin);
  }

  // k truncates from the top.
  const auto top1 = g.k_most_critical_paths(1);
  ASSERT_EQ(top1.size(), 1u);
  EXPECT_EQ(top1[0].gates, paths[0].gates);
}

TEST(Ssta, SumAndVariance) {
  ssta::CanonicalForm a = ssta::CanonicalForm::constant(1.0, 2);
  a.sens = {0.3, 0.4};
  a.local = 0.5;
  ssta::CanonicalForm b = ssta::CanonicalForm::constant(2.0, 2);
  b.sens = {0.1, 0.0};
  b.local = 0.2;

  const auto s = ssta::sum(a, b);
  EXPECT_NEAR(s.mean, 3.0, 1e-15);
  EXPECT_NEAR(s.sens[0], 0.4, 1e-15);
  EXPECT_NEAR(s.sens[1], 0.4, 1e-15);
  EXPECT_NEAR(s.local * s.local, 0.25 + 0.04, 1e-15);
  EXPECT_NEAR(ssta::variance(s),
              0.4 * 0.4 + 0.4 * 0.4 + 0.25 + 0.04, 1e-15);
  EXPECT_NEAR(ssta::covariance(a, b), 0.3 * 0.1, 1e-15);
}

TEST(Ssta, ClarkMaxMatchesMonteCarlo) {
  // Two correlated forms over one shared source.
  ssta::CanonicalForm a = ssta::CanonicalForm::constant(1.0, 1);
  a.sens = {0.30};
  a.local = 0.10;
  ssta::CanonicalForm b = ssta::CanonicalForm::constant(1.15, 1);
  b.sens = {0.15};
  b.local = 0.25;
  const auto m = ssta::stat_max(a, b);

  stats::Rng rng(99);
  const std::size_t n = 200000;
  double s1 = 0.0, s2 = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    const double x = rng.normal();
    const double va = a.mean + a.sens[0] * x + a.local * rng.normal();
    const double vb = b.mean + b.sens[0] * x + b.local * rng.normal();
    const double v = std::max(va, vb);
    s1 += v;
    s2 += v * v;
  }
  const double mc_mean = s1 / static_cast<double>(n);
  const double mc_var = s2 / static_cast<double>(n) - mc_mean * mc_mean;
  EXPECT_NEAR(m.mean, mc_mean, 3e-3);
  EXPECT_NEAR(ssta::variance(m), mc_var, 3e-3);

  // With no independent residual the two arguments are perfectly
  // correlated and max(A, A) == A exactly (theta degenerates to zero).
  ssta::CanonicalForm c = a;
  c.local = 0.0;
  const auto same = ssta::stat_max(c, c);
  EXPECT_NEAR(same.mean, c.mean, 1e-12);
  EXPECT_NEAR(ssta::variance(same), ssta::variance(c), 1e-12);
}

/// Straight 3-stage chain: INV -> NAND2 -> INV into a latch. One path,
/// no sharing -- the graph engine must reproduce PathAnalyzer bitwise.
GateNetlist chain_netlist() {
  GateNetlist nl;
  nl.name = "chain3";
  nl.num_nets = 5;  // 0=PI 1..3 stage outputs, 4=tie-high side pin
  nl.primary_inputs = {0, 4};
  nl.gates.push_back({cell_index("INV"), {0}, 1});
  nl.gates.push_back({cell_index("NAND2"), {1, 4}, 2});
  nl.gates.push_back({cell_index("INV"), {2}, 3});
  nl.latch_inputs = {3};
  return nl;
}

TEST(GraphAnalyzer, OnePathChainMatchesPathAnalyzerBitwise) {
  const GateNetlist nl = chain_netlist();

  core::GraphSpec gspec;
  gspec.tech = circuit::technology_180nm();
  gspec.netlist = nl;
  gspec.top_k = 1;  // carry only the longest path (the 3-stage chain)
  const core::GraphAnalyzer graph(std::move(gspec));
  ASSERT_EQ(graph.paths().size(), 1u);
  ASSERT_EQ(graph.subgraph_gates().size(), 3u);

  const TimingPath path = timing::longest_path(nl);
  core::PathSpec pspec = core::PathSpec::from_benchmark(
      circuit::technology_180nm(), nl, path, 10);
  const core::PathAnalyzer single(pspec);

  core::PathVariationModel model;
  model.std_dl = 0.33;
  model.std_vt = 0.33;
  ASSERT_EQ(graph.sources(model).size(), single.sources(model).size());

  core::GraphAnalyzer::Workspace ws;
  auto stream = stats::sample_stream(11, 0, 0);
  for (std::size_t s = 0; s < 3; ++s) {
    numeric::Vector w(graph.sources(model).size());
    for (double& x : w) {
      x = stats::to_normal(stream.uniform_open(), 0.0, 1.0 / 3.0);
    }
    const auto r = graph.evaluate(graph.sample_from_sources(model, w), ws);
    const auto ref =
        single.framework_delay(single.sample_from_sources(model, w), ws);
    // Same stages, same sample, same engine: bitwise identical.
    EXPECT_TRUE(numeric::exact_eq(r.max_delay, ref.delay))
        << r.max_delay << " vs " << ref.delay;
    EXPECT_EQ(r.stages_simulated, 3u);
    EXPECT_EQ(r.stage_cache_hits, 0u);
    EXPECT_EQ(r.merges, 0u);

    const auto brute = graph.per_path_delays(
        graph.sample_from_sources(model, w), ws);
    ASSERT_EQ(brute.size(), 1u);
    EXPECT_TRUE(numeric::exact_eq(brute[0], r.max_delay));
  }
}

TEST(GraphAnalyzer, DiamondMergeMatchesBruteForcePerPathMax) {
  core::GraphSpec gspec;
  gspec.tech = circuit::technology_180nm();
  gspec.netlist = diamond_netlist();
  gspec.top_k = 4;
  const core::GraphAnalyzer graph(std::move(gspec));
  ASSERT_EQ(graph.paths().size(), 2u);

  core::PathVariationModel model;
  model.std_dl = 0.33;
  model.std_vt = 0.33;

  core::GraphAnalyzer::Workspace ws;
  auto stream = stats::sample_stream(13, 0, 0);
  for (std::size_t s = 0; s < 4; ++s) {
    numeric::Vector w(graph.sources(model).size());
    for (double& x : w) {
      x = stats::to_normal(stream.uniform_open(), 0.0, 1.0 / 3.0);
    }
    const auto sample = graph.sample_from_sources(model, w);
    const auto r = graph.evaluate(sample, ws);
    const auto brute = graph.per_path_delays(sample, ws);
    const double brute_max =
        *std::max_element(brute.begin(), brute.end());
    // The memoized statistical max must track the per-path max to within
    // the slew-coupling error at the merge (docs/timing_graph.md); on
    // this DAG the long branch dominates by a full gate delay, so the
    // disagreement is tiny.
    EXPECT_NEAR(r.max_delay, brute_max, 0.02 * brute_max);
    EXPECT_GT(r.stage_cache_hits, 0u);
    EXPECT_GT(r.merges, 0u);
  }
}

TEST(GraphAnalyzer, MonteCarloIsThreadCountInvariant) {
  core::GraphSpec gspec;
  gspec.tech = circuit::technology_180nm();
  gspec.netlist = diamond_netlist();
  gspec.top_k = 4;
  const core::GraphAnalyzer graph(std::move(gspec));

  core::PathVariationModel model;
  model.std_dl = 0.33;
  model.std_vt = 0.33;

  auto run = [&](std::size_t threads) {
    stats::RunOptions opt;
    opt.samples = 6;
    opt.seed = 21;
    opt.exec.threads = threads;
    return graph.monte_carlo(model, opt);
  };
  const auto t1 = run(1);
  const auto t2 = run(2);
  const auto t8 = run(8);
  ASSERT_EQ(t1.values.size(), 6u);
  for (std::size_t k = 0; k < t1.values.size(); ++k) {
    EXPECT_TRUE(numeric::exact_eq(t1.values[k], t2.values[k]));
    EXPECT_TRUE(numeric::exact_eq(t1.values[k], t8.values[k]));
  }
}

TEST(GraphAnalyzer, BlockModelsAndAnalyticEndpoints) {
  core::GraphSpec gspec;
  gspec.tech = circuit::technology_180nm();
  gspec.netlist = diamond_netlist();
  gspec.top_k = 4;
  const core::GraphAnalyzer graph(std::move(gspec));
  // Four INVs (G1 and G3 both drive one NAND2 pin, hence share a block)
  // plus the merge NAND: fewer blocks than subgraph gates proves
  // cross-instantiation reuse.
  EXPECT_EQ(graph.subgraph_gates().size(), 5u);
  EXPECT_LT(graph.num_blocks(), graph.subgraph_gates().size());

  core::PathVariationModel model;
  model.std_dl = 0.33;
  model.std_vt = 0.33;
  const auto blocks = graph.block_models(model);
  ASSERT_EQ(blocks.size(), graph.num_blocks());
  for (const auto& b : blocks) {
    EXPECT_GT(b.nominal_delay, 0.0);
    EXPECT_GT(b.nominal_slew, 0.0);
    // Finite, non-degenerate device sensitivities (dl and vt can have
    // opposite signs and nearly cancel on lightly loaded INVs).
    EXPECT_GT(std::abs(b.d_delay_dl) + std::abs(b.d_delay_vt), 0.0);
    EXPECT_TRUE(std::isfinite(b.d_delay_slew));
  }

  // The analytic composition must land near the per-sample engine at
  // nominal. The block models are characterized at the spec input slew
  // while the real chain sharpens the edge stage by stage, so this is a
  // first-order agreement, not an exact one (docs/timing_graph.md).
  core::GraphAnalyzer::Workspace ws;
  const numeric::Vector w0(graph.sources(model).size(), 0.0);
  const auto nominal =
      graph.evaluate(graph.sample_from_sources(model, w0), ws);
  const auto analytic = graph.analytic_endpoints(model);
  ASSERT_EQ(analytic.size(), 1u);
  EXPECT_EQ(analytic[0].net, 5u);
  EXPECT_NEAR(analytic[0].arrival.mean, nominal.max_delay,
              0.30 * nominal.max_delay);
  EXPECT_GT(ssta::variance(analytic[0].arrival), 0.0);
}

TEST(Benchmarks, FillerChainsTerminateAtLatches) {
  // Regression (bugfix 3): every generated gate output must be consumed
  // by a gate input or a latch input -- no dangling filler chains.
  for (const auto& spec : timing::iscas89_suite()) {
    const GateNetlist nl = timing::generate_benchmark(spec);
    std::vector<bool> consumed(nl.num_nets, false);
    for (const Gate& g : nl.gates) {
      for (std::size_t in : g.inputs) consumed[in] = true;
    }
    for (std::size_t n : nl.latch_inputs) consumed[n] = true;
    for (const Gate& g : nl.gates) {
      EXPECT_TRUE(consumed[g.output])
          << spec.name << ": dangling output net " << g.output;
    }
  }
}

}  // namespace
