// Tests for waveform measurement, the cell library, STA and the benchmark
// generator.
#include <gtest/gtest.h>

#include <set>

#include "circuit/technology.hpp"
#include "spice/transient.hpp"
#include "timing/cells.hpp"
#include "timing/sta.hpp"
#include "timing/waveform.hpp"

namespace lcsf::timing {
namespace {

using circuit::kGround;
using circuit::SourceWaveform;
using circuit::Technology;
using circuit::technology_180nm;

TEST(Waveform, RampRoundTrip) {
  RampParams p{1e-9, 200e-12, true};
  auto src = p.to_source(1.8);
  // Sample and re-measure.
  Samples w;
  for (int k = 0; k <= 400; ++k) {
    const double t = k * 5e-12;
    w.emplace_back(t, src.value(t));
  }
  RampParams q = measure_ramp(w, 1.8, true);
  EXPECT_NEAR(q.m, p.m, 1e-12);
  EXPECT_NEAR(q.s, p.s, 2e-12);
  EXPECT_TRUE(q.rising);
}

TEST(Waveform, FallingMeasurement) {
  RampParams p{0.5e-9, 100e-12, false};
  auto src = p.to_source(1.8);
  Samples w;
  for (int k = 0; k <= 300; ++k) {
    const double t = k * 5e-12;
    w.emplace_back(t, src.value(t));
  }
  RampParams q = measure_ramp(w, 1.8, false);
  EXPECT_NEAR(q.m, p.m, 1e-12);
  EXPECT_NEAR(q.s, p.s, 2e-12);
  EXPECT_FALSE(q.rising);
}

TEST(Waveform, CrossingAndFailureModes) {
  Samples flat{{0.0, 0.0}, {1e-9, 0.0}};
  EXPECT_FALSE(crossing_time(flat, 0.9, true).has_value());
  EXPECT_THROW(measure_ramp(flat, 1.8, true), std::runtime_error);
  EXPECT_NEAR(stage_delay(RampParams{1e-9, 0, true},
                          RampParams{1.5e-9, 0, false}),
              0.5e-9, 1e-18);
}

TEST(Waveform, ExactThresholdSampleIsACrossing) {
  // Regression: a sample landing exactly on the threshold used to be
  // skipped by the strict predicates, making measure_ramp throw.
  Samples w{{0.0, 0.0}, {1.0, 0.5}, {2.0, 1.0}};
  const auto t = crossing_time(w, 0.5, true);
  ASSERT_TRUE(t.has_value());
  EXPECT_NEAR(*t, 1.0, 0.0);
  // Same waveform, threshold hit exactly by the *last* sample.
  const auto t2 = crossing_time(w, 1.0, true);
  ASSERT_TRUE(t2.has_value());
  EXPECT_NEAR(*t2, 2.0, 0.0);
}

TEST(Waveform, StartAtThresholdRegistersImmediately) {
  // Regression: a waveform starting exactly at the level never used to
  // register a crossing at all.
  Samples rising{{2.0, 0.5}, {3.0, 1.0}};
  const auto tr = crossing_time(rising, 0.5, true);
  ASSERT_TRUE(tr.has_value());
  EXPECT_NEAR(*tr, 2.0, 0.0);
  Samples falling{{1.0, 0.5}, {2.0, 0.0}};
  const auto tf = crossing_time(falling, 0.5, false);
  ASSERT_TRUE(tf.has_value());
  EXPECT_NEAR(*tf, 1.0, 0.0);
  // A segment pinned flat at the level crosses at its start.
  Samples pinned{{0.0, 0.5}, {1.0, 0.5}, {2.0, 1.0}};
  const auto tp = crossing_time(pinned, 0.5, true);
  ASSERT_TRUE(tp.has_value());
  EXPECT_NEAR(*tp, 0.0, 0.0);
}

TEST(Waveform, NegativeCrossingTimesAreNotSentinels) {
  // Pre-zero ramp starts produce legitimately negative crossing times;
  // the retired -1.0 sentinel used to collide with them.
  Samples w{{-2.0, 0.0}, {-1.0, 1.0}};
  const auto t = crossing_time(w, 0.5, true);
  ASSERT_TRUE(t.has_value());
  EXPECT_NEAR(*t, -1.5, 1e-12);
  // Direction still matters: this waveform never falls through 0.5.
  EXPECT_FALSE(crossing_time(w, 0.5, false).has_value());
}

TEST(Cells, LibraryShape) {
  const auto& lib = cell_library();
  ASSERT_EQ(lib.size(), 10u);
  std::set<std::string> names;
  for (const auto& c : lib) {
    names.insert(c.name);
    EXPECT_GE(c.num_inputs, 1u);
    EXPECT_EQ(c.side_values.size(), c.num_inputs);
    EXPECT_FALSE(c.transistors.empty());
    ASSERT_TRUE(c.eval);
  }
  EXPECT_EQ(names.size(), 10u);
  EXPECT_NO_THROW(find_cell("AOI21"));
  EXPECT_THROW(find_cell("NAND4"), std::invalid_argument);
}

TEST(Cells, LogicFunctions) {
  auto ev = [](const std::string& name, std::vector<bool> in) {
    return find_cell(name).eval(in);
  };
  EXPECT_TRUE(ev("INV", {false}));
  EXPECT_FALSE(ev("NAND2", {true, true}));
  EXPECT_TRUE(ev("NAND2", {false, true}));
  EXPECT_FALSE(ev("NOR2", {true, false}));
  EXPECT_TRUE(ev("NOR3", {false, false, false}));
  EXPECT_FALSE(ev("AOI21", {true, true, false}));
  EXPECT_TRUE(ev("AOI21", {true, false, false}));
  EXPECT_FALSE(ev("OAI21", {true, false, true}));
  EXPECT_TRUE(ev("XOR2", {true, false}));
  EXPECT_FALSE(ev("XOR2", {true, true}));
  EXPECT_TRUE(ev("XNOR2", {true, true}));
}

TEST(Cells, SensitizationIsConsistent) {
  // With side inputs at their sensitizing values, toggling input 0 must
  // toggle the output, in the direction implied by `inverting`.
  for (const auto& c : cell_library()) {
    std::vector<bool> lo(c.side_values);
    std::vector<bool> hi(c.side_values);
    lo[0] = false;
    hi[0] = true;
    const bool out_lo = c.eval(lo);
    const bool out_hi = c.eval(hi);
    EXPECT_NE(out_lo, out_hi) << c.name << " not sensitized by input 0";
    EXPECT_EQ(out_hi, !c.inverting) << c.name << " inverting flag wrong";
  }
}

// Property: every cell, instantiated at transistor level with sensitizing
// side inputs, produces the correct static output levels in SPICE for
// input 0 low and high.
class CellDcProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CellDcProperty, TransistorLevelMatchesLogic) {
  const Technology tech = technology_180nm();
  const CellTemplate& cell = cell_library()[GetParam()];
  for (bool in_high : {false, true}) {
    circuit::Netlist nl;
    const auto vdd = nl.add_node("vdd");
    const auto out = nl.add_node("out");
    nl.add_vsource(vdd, kGround, SourceWaveform::dc(tech.vdd));
    std::vector<circuit::NodeId> ins;
    std::vector<bool> logic_in;
    for (std::size_t k = 0; k < cell.num_inputs; ++k) {
      const bool val = (k == 0) ? in_high : cell.side_values[k];
      logic_in.push_back(val);
      const auto n = nl.add_node("in" + std::to_string(k));
      nl.add_vsource(n, kGround,
                     SourceWaveform::dc(val ? tech.vdd : 0.0));
      ins.push_back(n);
    }
    instantiate_cell(cell, tech, nl, out, ins, vdd);
    nl.add_capacitor(out, kGround, 5e-15);
    nl.freeze_device_capacitances();
    spice::TransientSimulator sim(nl);
    const auto v = sim.dc_operating_point();
    const bool expect_high = cell.eval(logic_in);
    EXPECT_NEAR(v[static_cast<std::size_t>(out)],
                expect_high ? tech.vdd : 0.0, 5e-3)
        << cell.name << " in0=" << in_high;
  }
}

INSTANTIATE_TEST_SUITE_P(AllCells, CellDcProperty,
                         ::testing::Range(std::size_t{0}, std::size_t{10}));

TEST(Sta, ArrivalAndLongestPathOnHandBuiltCircuit) {
  // PI0 -> G0(INV) -> G1(NAND2 with side PI1) -> latch; plus a short side
  // gate G2 from PI1 to another latch input.
  GateNetlist nl;
  nl.name = "hand";
  nl.num_nets = 5;  // 0=PI0 1=PI1 2=G0out 3=G1out 4=G2out
  nl.primary_inputs = {0, 1};
  const auto& lib = cell_library();
  std::size_t inv = 0, nand2 = 0;
  for (std::size_t k = 0; k < lib.size(); ++k) {
    if (lib[k].name == "INV") inv = k;
    if (lib[k].name == "NAND2") nand2 = k;
  }
  nl.gates.push_back({inv, {0}, 2});
  nl.gates.push_back({nand2, {2, 1}, 3});
  nl.gates.push_back({inv, {1}, 4});
  nl.latch_inputs = {3, 4};

  auto arrival = arrival_times(nl);
  EXPECT_EQ(arrival[2], 1u);
  EXPECT_EQ(arrival[3], 2u);
  EXPECT_EQ(arrival[4], 1u);

  TimingPath p = longest_path(nl);
  EXPECT_EQ(p.length(), 2u);
  EXPECT_EQ(p.start_net, 0u);
  EXPECT_EQ(p.end_net, 3u);
  EXPECT_EQ(p.switching_pin[0], 0u);
  EXPECT_EQ(p.switching_pin[1], 0u);
}

TEST(Sta, SuiteHasPublishedStageCounts) {
  for (const auto& spec : iscas89_suite()) {
    GateNetlist nl = generate_benchmark(spec);
    EXPECT_EQ(nl.gates.size(), spec.total_gates) << spec.name;
    TimingPath p = longest_path(nl);
    EXPECT_EQ(p.length(), spec.longest_path_stages) << spec.name;
    // Path gates must be connected head to tail.
    for (std::size_t k = 1; k < p.gates.size(); ++k) {
      const Gate& g = nl.gates[p.gates[k]];
      EXPECT_EQ(g.inputs[p.switching_pin[k]],
                nl.gates[p.gates[k - 1]].output);
    }
  }
}

TEST(Sta, GenerationIsDeterministic) {
  const auto& spec = find_benchmark("s208");
  GateNetlist a = generate_benchmark(spec);
  GateNetlist b = generate_benchmark(spec);
  ASSERT_EQ(a.gates.size(), b.gates.size());
  for (std::size_t k = 0; k < a.gates.size(); ++k) {
    EXPECT_EQ(a.gates[k].cell, b.gates[k].cell);
    EXPECT_EQ(a.gates[k].inputs, b.gates[k].inputs);
  }
  EXPECT_THROW(find_benchmark("s99999"), std::invalid_argument);
}

TEST(Sta, NetlistIsTopologicallyOrdered) {
  GateNetlist nl = generate_benchmark(find_benchmark("s444"));
  std::vector<bool> defined(nl.num_nets, false);
  for (std::size_t n : nl.primary_inputs) defined[n] = true;
  for (std::size_t n : nl.latch_outputs) defined[n] = true;
  for (const Gate& g : nl.gates) {
    for (std::size_t in : g.inputs) EXPECT_TRUE(defined[in]);
    defined[g.output] = true;
  }
}

}  // namespace
}  // namespace lcsf::timing
