// Tests for the AWE (explicit moment matching) baseline, including the
// classic instability that motivated the projection methods (paper ref
// [8]).
#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "circuit/technology.hpp"
#include "interconnect/coupled_lines.hpp"
#include "interconnect/example1.hpp"
#include "mor/awe.hpp"
#include "mor/pact.hpp"
#include "mor/poleres.hpp"
#include "mor/variational.hpp"

namespace lcsf::mor {
namespace {

using interconnect::PortedPencil;
using numeric::Complex;
using numeric::Vector;

PortedPencil rc_line_pencil(std::size_t segments) {
  interconnect::CoupledLineSpec spec;
  spec.num_lines = 1;
  spec.length = static_cast<double>(segments) * 1e-6;
  spec.segment_length = 1e-6;
  spec.geometry = circuit::technology_180nm().wire;
  auto b = interconnect::build_coupled_lines(spec);
  auto pencil = interconnect::build_ported_pencil(
      b.netlist, {b.near_ends[0], b.far_ends[0]});
  return with_port_conductance(std::move(pencil), Vector{1e-3, 0.0});
}

TEST(Awe, MomentsMatchPencilMoments) {
  const auto pencil = rc_line_pencil(30);
  const Vector m = impedance_moments(pencil, 0, 0, 4);
  for (std::size_t k = 0; k < 4; ++k) {
    const auto mk = pencil_moment(pencil.g, pencil.c, 2, k);
    EXPECT_NEAR(m[k], mk(0, 0), 1e-9 * std::abs(mk(0, 0)) + 1e-30) << k;
  }
}

TEST(Awe, SinglePoleMatchesRcTank) {
  // Load: G at the port plus one C -> exactly one pole at -G/C.
  circuit::Netlist nl;
  const auto port = nl.add_node("p");
  nl.add_capacitor(port, circuit::kGround, 2e-12);
  auto pencil = interconnect::build_ported_pencil(nl, {port});
  pencil = with_port_conductance(std::move(pencil), Vector{1e-3});
  const auto model = awe_approximation(pencil, 0, 0, 1);
  ASSERT_EQ(model.num_poles(), 1u);
  EXPECT_NEAR(model.poles()[0].real(), -1e-3 / 2e-12,
              1e-3 * std::abs(model.poles()[0].real()));
  // DC value: Z(0) = 1/G.
  EXPECT_NEAR(model.eval(0, 0, {0, 0}).real(), 1000.0, 1e-3);
}

TEST(Awe, LowOrderMatchesDrivingPointResponse) {
  const auto pencil = rc_line_pencil(40);
  const auto model = awe_approximation(pencil, 0, 0, 3);
  for (double f : {1e6, 1e8, 1e9}) {
    const Complex s{0.0, 2 * M_PI * f};
    const Complex exact =
        pencil_port_impedance(pencil.g, pencil.c, 2, s)(0, 0);
    EXPECT_NEAR(std::abs(model.eval(0, 0, s) - exact), 0.0,
                0.03 * std::abs(exact))
        << f;
  }
}

// The historical failure mode: pushing the Pade order produces unstable or
// degenerate approximations on a plain passive RC line, while PACT at the
// same (and much higher) order stays stable. This is exactly why the
// projection methods -- and the paper's stability filter -- exist.
TEST(Awe, HighOrderBreaksWherePactDoesNot) {
  const auto pencil = rc_line_pencil(60);

  bool awe_broke = false;
  for (std::size_t q = 2; q <= 12 && !awe_broke; ++q) {
    try {
      const auto model = awe_approximation(pencil, 0, 0, q);
      if (model.count_unstable() > 0) awe_broke = true;
    } catch (const std::runtime_error&) {
      awe_broke = true;  // singular Hankel system: the AWE order wall
    }
  }
  EXPECT_TRUE(awe_broke)
      << "AWE stayed clean through order 12 -- unexpected for a 60-segment "
         "line";

  // PACT at order 12 on the same pencil: stable.
  const auto pact = pact_reduce(pencil, PactOptions{12}).model;
  EXPECT_EQ(extract_pole_residue(pact).count_unstable(), 0u);
}

TEST(Awe, InputValidation) {
  const auto pencil = rc_line_pencil(10);
  EXPECT_THROW(awe_approximation(pencil, 0, 0, 0), std::invalid_argument);
  EXPECT_THROW(impedance_moments(pencil, 5, 0, 2), std::invalid_argument);
}

}  // namespace
}  // namespace lcsf::mor
