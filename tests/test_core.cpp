// Integration tests for the framework facade: stage-by-stage path
// evaluation vs the whole-path SPICE baseline, and the MC/GA statistics.
#include <gtest/gtest.h>

#include <cmath>

#include "core/path.hpp"

namespace lcsf::core {
namespace {

using numeric::Vector;

std::size_t cell_index(const std::string& name) {
  const auto& lib = timing::cell_library();
  for (std::size_t k = 0; k < lib.size(); ++k) {
    if (lib[k].name == name) return k;
  }
  throw std::logic_error("unknown cell");
}

PathSpec small_path_spec(std::size_t linear_elements = 10) {
  PathSpec spec;
  spec.tech = circuit::technology_180nm();
  spec.cells = {cell_index("INV"), cell_index("NAND2"), cell_index("NOR2")};
  spec.linear_elements_per_stage = linear_elements;
  spec.stage_window = 1.0e-9;
  spec.dt = 2e-12;
  return spec;
}

TEST(PathAnalyzer, RejectsEmptyPath) {
  PathSpec spec;
  spec.tech = circuit::technology_180nm();
  EXPECT_THROW(PathAnalyzer{spec}, std::invalid_argument);
}

TEST(PathAnalyzer, FrameworkTracksSpiceAtNominal) {
  PathAnalyzer pa(small_path_spec());
  PathSample nominal;
  nominal.device.resize(pa.num_stages());
  const auto fw = pa.framework_delay(nominal);
  const auto sp = pa.spice_delay(nominal);
  EXPECT_GT(fw.delay, 10e-12);
  // Stage-by-stage abstraction (pin-cap receiver model) vs full coupling:
  // a few percent is the expected agreement band.
  EXPECT_NEAR(fw.delay, sp.delay, 0.06 * sp.delay);
  EXPECT_GT(fw.output_slew, 0.0);
}

TEST(PathAnalyzer, VariationsShiftBothEnginesTheSameWay) {
  PathAnalyzer pa(small_path_spec());
  PathSample nominal;
  nominal.device.resize(pa.num_stages());
  PathSample slow = nominal;
  for (auto& d : slow.device) d.delta_vt = 0.05;
  PathSample fast = nominal;
  for (auto& d : fast.device) d.delta_l = 0.15 * 0.18e-6;

  const double fw0 = pa.framework_delay(nominal).delay;
  const double sp0 = pa.spice_delay(nominal).delay;
  const double fw_slow = pa.framework_delay(slow).delay;
  const double sp_slow = pa.spice_delay(slow).delay;
  const double fw_fast = pa.framework_delay(fast).delay;
  const double sp_fast = pa.spice_delay(fast).delay;

  EXPECT_GT(fw_slow, fw0);
  EXPECT_GT(sp_slow, sp0);
  EXPECT_LT(fw_fast, fw0);
  EXPECT_LT(sp_fast, sp0);
  // Delay *shifts* agree closely (common-mode model error cancels).
  EXPECT_NEAR(fw_slow - fw0, sp_slow - sp0, 0.25 * (sp_slow - sp0));
}

TEST(PathAnalyzer, WireVariationMatters) {
  PathAnalyzer pa(small_path_spec(100));
  PathSample nominal;
  nominal.device.resize(pa.num_stages());
  PathSample narrow = nominal;
  narrow.wire.width = -0.2;  // -20% width -> more R, less C
  const double d0 = pa.framework_delay(nominal).delay;
  const double d1 = pa.framework_delay(narrow).delay;
  EXPECT_NE(d0, d1);
}

TEST(PathAnalyzer, SampleFromSourcesLayout) {
  PathAnalyzer pa(small_path_spec());
  PathVariationModel model;
  model.std_dl = 0.33;
  model.std_vt = 0.33;
  model.std_wire_w = 0.33;
  const std::size_t nsrc = 2 * pa.num_stages() + 1;
  EXPECT_EQ(pa.sources(model).size(), nsrc);

  Vector w(nsrc, 0.0);
  w[0] = 1.0;   // dl of stage 0
  w[1] = -1.0;  // vt of stage 0
  w[nsrc - 1] = 0.5;
  PathSample s = pa.sample_from_sources(model, w);
  EXPECT_NEAR(s.device[0].delta_l, 0.10 * 0.18e-6, 1e-15);
  EXPECT_NEAR(s.device[0].delta_vt, -0.10 * 0.45, 1e-12);
  EXPECT_DOUBLE_EQ(s.device[1].delta_l, 0.0);
  EXPECT_NEAR(s.wire.width, 0.5 * 0.25, 1e-12);
  EXPECT_THROW(pa.sample_from_sources(model, Vector(2, 0.0)),
               std::invalid_argument);
}

TEST(PathAnalyzer, MonteCarloAndGradientAgree) {
  PathAnalyzer pa(small_path_spec());
  PathVariationModel model;
  model.std_dl = 0.33;
  model.std_vt = 0.33;

  stats::MonteCarloOptions opt;
  opt.samples = 60;
  opt.seed = 17;
  const auto mc = pa.monte_carlo(model, opt);
  const auto ga = pa.gradient_analysis(model);

  EXPECT_GT(mc.stats.stddev(), 0.0);
  EXPECT_GT(ga.stddev, 0.0);
  // Means agree within a couple sigma-of-the-mean.
  EXPECT_NEAR(ga.nominal_delay, mc.stats.mean(),
              3.0 * mc.stats.stddev() / std::sqrt(60.0) +
                  0.05 * mc.stats.mean());
  // GA sigma is a first-order estimate: same order of magnitude as MC
  // (the paper's Table 5 shows GA tracking MC within ~10-40%).
  EXPECT_GT(ga.stddev, 0.4 * mc.stats.stddev());
  EXPECT_LT(ga.stddev, 1.8 * mc.stats.stddev());
  // GA cost: 1 + #stages*(2 slews + 2 per local source) evaluations.
  EXPECT_LT(ga.simulations, 10 * pa.num_stages());
}

TEST(PathAnalyzer, CorrelatedMonteCarloUsesFewerFactors) {
  PathAnalyzer pa(small_path_spec());
  PathVariationModel model;
  model.std_dl = 0.33;
  model.std_vt = 0.33;
  stats::MonteCarloOptions opt;
  opt.samples = 30;
  opt.seed = 9;

  // Strong spatial correlation: PCA needs far fewer factors than raw
  // sources (the Sec. 4.1.1 dimensionality reduction).
  const auto corr = pa.monte_carlo_correlated(model, 0.95, opt);
  EXPECT_EQ(corr.total_sources, 2 * pa.num_stages());
  EXPECT_LT(corr.factors_used, corr.total_sources);
  EXPECT_GT(corr.mc.stats.stddev(), 0.0);

  // Perfectly-correlated stages push the delay spread up relative to
  // independent stages (variances add linearly instead of in quadrature).
  const auto indep = pa.monte_carlo(model, opt);
  EXPECT_GT(corr.mc.stats.stddev(), indep.stats.stddev());
  EXPECT_THROW(pa.monte_carlo_correlated(PathVariationModel{}, 0.5, opt),
               std::invalid_argument);
}

TEST(PathAnalyzer, FromBenchmarkBuildsConsistentSpec) {
  const auto& bspec = timing::find_benchmark("s27");
  const auto nl = timing::generate_benchmark(bspec);
  const auto path = timing::longest_path(nl);
  PathSpec spec = PathSpec::from_benchmark(circuit::technology_180nm(), nl,
                                           path, 10);
  EXPECT_EQ(spec.cells.size(), 5u);
  spec.stage_window = 1.0e-9;
  PathAnalyzer pa(spec);
  PathSample nominal;
  nominal.device.resize(pa.num_stages());
  const auto fw = pa.framework_delay(nominal);
  EXPECT_GT(fw.delay, 0.0);
  EXPECT_GT(pa.total_linear_elements(), 5u * 5u);
}

TEST(PathAnalyzer, GradientAnalysisWithGlobalWireSources) {
  // Long wires so the wire geometry actually matters.
  PathAnalyzer pa(small_path_spec(200));
  PathVariationModel model;
  model.std_dl = 0.33;
  model.std_wire_w = 0.33;
  model.std_wire_h = 0.33;

  const auto ga = pa.gradient_analysis(model);
  const std::size_t nsrc = pa.num_stages() + 2;
  ASSERT_EQ(ga.gradient.size(), nsrc);
  // The global wire sources (last two entries) must carry nonzero
  // sensitivity on a wire-dominated path.
  EXPECT_NE(ga.gradient[nsrc - 2], 0.0);
  EXPECT_NE(ga.gradient[nsrc - 1], 0.0);

  // And GA sigma must track MC with the same mixed model.
  stats::MonteCarloOptions opt;
  opt.samples = 50;
  opt.seed = 77;
  const auto mc = pa.monte_carlo(model, opt);
  EXPECT_GT(ga.stddev, 0.3 * mc.stats.stddev());
  EXPECT_LT(ga.stddev, 2.0 * mc.stats.stddev());
  EXPECT_NEAR(ga.nominal_delay, mc.stats.mean(), 0.05 * mc.stats.mean());
}

TEST(PathAnalyzer, WorstCaseCornerExceedsNominalAndQuantile) {
  PathAnalyzer pa(small_path_spec());
  PathVariationModel model;
  model.std_dl = 0.33;
  model.std_vt = 0.33;
  const auto ga = pa.gradient_analysis(model);
  const auto corner = pa.worst_case_corner(model, 3.0);
  EXPECT_GT(corner.delay, ga.nominal_delay);
  // The all-corners point is beyond the 3-sigma Gaussian quantile.
  EXPECT_GT(corner.delay, ga.nominal_delay + 3.0 * ga.stddev);
  // Corner vector has an entry per source, each at +/- 3 sigma.
  for (double w : corner.corner) {
    EXPECT_NEAR(std::abs(w), 3.0 * 0.33, 1e-12);
  }
}

TEST(PathAnalyzer, LinearElementKnob) {
  PathAnalyzer few(small_path_spec(10));
  PathAnalyzer many(small_path_spec(500));
  EXPECT_GT(many.total_linear_elements(), 10 * few.total_linear_elements());
  // Longer wires -> longer delays.
  PathSample nominal;
  nominal.device.resize(3);
  EXPECT_GT(many.framework_delay(nominal).delay,
            few.framework_delay(nominal).delay);
}

}  // namespace
}  // namespace lcsf::core
