// Tests for Sakurai parasitics, coupled-line builders, and the Example 1
// circuit.
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/technology.hpp"
#include "interconnect/coupled_lines.hpp"
#include "interconnect/example1.hpp"
#include "interconnect/sakurai.hpp"
#include "numeric/cholesky.hpp"
#include "numeric/eigen_sym.hpp"

namespace lcsf::interconnect {
namespace {

using circuit::technology_180nm;
using circuit::WireGeometry;

TEST(Sakurai, PhysicallyReasonableValues) {
  WireGeometry g = technology_180nm().wire;
  UnitLengthParasitics p = sakurai_parasitics(g);
  // Minimum-width 0.18um metal: R ~ 100-300 ohm/mm, C ~ 100-300 fF/mm.
  EXPECT_GT(p.resistance, 1e4);   // > 10 ohm/mm
  EXPECT_LT(p.resistance, 1e7);
  EXPECT_GT(p.ground_capacitance, 1e-12);  // > 1 fF/mm
  EXPECT_LT(p.ground_capacitance, 1e-9);
  EXPECT_GT(p.coupling_capacitance, 0.0);
  EXPECT_THROW(sakurai_parasitics(WireGeometry{0, 1, 1, 1, 1, 1}),
               std::invalid_argument);
}

TEST(Sakurai, MonotonicityProperties) {
  WireGeometry g = technology_180nm().wire;
  UnitLengthParasitics base = sakurai_parasitics(g);

  WireGeometry wider = g;
  wider.width *= 1.2;
  UnitLengthParasitics w = sakurai_parasitics(wider);
  EXPECT_LT(w.resistance, base.resistance);          // wider -> less R
  EXPECT_GT(w.ground_capacitance, base.ground_capacitance);

  WireGeometry farther = g;
  farther.spacing *= 1.5;
  UnitLengthParasitics s = sakurai_parasitics(farther);
  EXPECT_LT(s.coupling_capacitance, base.coupling_capacitance);

  WireGeometry thicker = g;
  thicker.thickness *= 1.3;
  UnitLengthParasitics t = sakurai_parasitics(thicker);
  EXPECT_LT(t.resistance, base.resistance);
  EXPECT_GT(t.coupling_capacitance, base.coupling_capacitance);
}

TEST(Sakurai, VariationApplication) {
  WireGeometry g = technology_180nm().wire;
  WireVariation v;
  v.width = 0.1;
  v.resistivity = -0.05;
  WireGeometry gv = apply_variation(g, v);
  EXPECT_NEAR(gv.width, g.width * 1.1, 1e-18);
  EXPECT_NEAR(gv.resistivity, g.resistivity * 0.95, 1e-18);
  EXPECT_DOUBLE_EQ(gv.thickness, g.thickness);
}

TEST(CoupledLines, TopologyCounts) {
  CoupledLineSpec spec;
  spec.num_lines = 4;
  spec.length = 10e-6;
  spec.segment_length = 1e-6;
  spec.geometry = technology_180nm().wire;
  CoupledLineBundle b = build_coupled_lines(spec);
  EXPECT_EQ(b.segments, 10u);
  EXPECT_EQ(b.near_ends.size(), 4u);
  EXPECT_EQ(b.far_ends.size(), 4u);
  // 4 lines x 11 nodes.
  EXPECT_EQ(b.netlist.node_count(), 1u + 44u);
  // R: 4 x 10. Ground C: 4 x 11. Coupling: 3 gaps x 11 columns.
  EXPECT_EQ(b.netlist.resistors().size(), 40u);
  EXPECT_EQ(b.netlist.capacitors().size(), 44u + 33u);
  EXPECT_EQ(b.ports().size(), 8u);
}

TEST(CoupledLines, TotalCapacitanceMatchesFormulas) {
  CoupledLineSpec spec;
  spec.num_lines = 2;
  spec.length = 20e-6;
  spec.segment_length = 1e-6;
  spec.geometry = technology_180nm().wire;
  UnitLengthParasitics pul = sakurai_parasitics(spec.geometry);
  CoupledLineBundle b = build_coupled_lines(spec);

  double total_ground = 0.0;
  double total_coupling = 0.0;
  double total_r = 0.0;
  for (const auto& c : b.netlist.capacitors()) {
    if (c.a == circuit::kGround || c.b == circuit::kGround) {
      total_ground += c.farads;
    } else {
      total_coupling += c.farads;
    }
  }
  for (const auto& r : b.netlist.resistors()) total_r += r.ohms;
  EXPECT_NEAR(total_ground, 2 * pul.ground_capacitance * spec.length, 1e-20);
  EXPECT_NEAR(total_coupling, pul.coupling_capacitance * spec.length, 1e-20);
  EXPECT_NEAR(total_r, 2 * pul.resistance * spec.length, 1e-9);
}

TEST(CoupledLines, PortedPencilPermutation) {
  CoupledLineSpec spec;
  spec.num_lines = 2;
  spec.length = 3e-6;
  spec.segment_length = 1e-6;
  spec.geometry = technology_180nm().wire;
  CoupledLineBundle b = build_coupled_lines(spec);
  auto ports = b.ports();
  PortedPencil p = build_ported_pencil(b.netlist, ports);
  EXPECT_EQ(p.num_ports, 4u);
  EXPECT_EQ(p.g.rows(), b.netlist.node_count() - 1);
  // First rows map to the requested ports in order.
  for (std::size_t k = 0; k < ports.size(); ++k) {
    EXPECT_EQ(p.row_to_node[k], ports[k]);
  }
  // Permuted pencil must stay symmetric with SPD-ish G (grounded through
  // resistors? no dc path from all nodes -> G is PSD; add small shift).
  EXPECT_TRUE(numeric::is_symmetric(p.g, 1e-12));
  EXPECT_TRUE(numeric::is_symmetric(p.c, 1e-12));
  EXPECT_THROW(build_ported_pencil(b.netlist, {ports[0], ports[0]}),
               std::invalid_argument);
  EXPECT_THROW(build_ported_pencil(b.netlist, {circuit::kGround}),
               std::invalid_argument);
}

TEST(Example1, TableTwoAnchors) {
  Example1Values v0 = example1_values(0.0);
  EXPECT_DOUBLE_EQ(v0.r1, 10.0);
  EXPECT_DOUBLE_EQ(v0.r2, 2.0);
  EXPECT_DOUBLE_EQ(v0.r3, 30.0);
  EXPECT_DOUBLE_EQ(v0.c1, 2e-12);
  EXPECT_DOUBLE_EQ(v0.cc3, 2e-12);

  Example1Values v1 = example1_values(0.1);
  EXPECT_DOUBLE_EQ(v1.r1, 15.0);
  EXPECT_DOUBLE_EQ(v1.r3, 40.0);
  EXPECT_DOUBLE_EQ(v1.c1, 3e-12);
  EXPECT_DOUBLE_EQ(v1.c2, 2e-12);
  EXPECT_DOUBLE_EQ(v1.cc1, 3e-12);

  // Linearity in p.
  Example1Values vm = example1_values(0.05);
  EXPECT_DOUBLE_EQ(vm.r1, 12.5);
  EXPECT_DOUBLE_EQ(vm.c3, 2.5e-12);
}

TEST(Example1, CircuitStructure) {
  Example1Circuit c = example1_circuit(0.0);
  EXPECT_EQ(c.netlist.node_count(), 9u);  // gnd + 2 ports + 6 internal
  EXPECT_EQ(c.netlist.resistors().size(), 7u);  // 6 line R + shunt
  EXPECT_EQ(c.netlist.capacitors().size(), 9u);
}

TEST(Example1, PencilFamilyIsContinuous) {
  auto family = example1_pencil_family();
  PortedPencil p0 = family(0.0);
  PortedPencil p1 = family(0.05);
  EXPECT_EQ(p0.g.rows(), 8u);
  EXPECT_EQ(p0.num_ports, 1u);
  // Perturbation changes the matrices smoothly (no reordering).
  EXPECT_LT(numeric::relative_difference(p0.g, p1.g), 0.5);
  EXPECT_GT(numeric::relative_difference(p0.g, p1.g), 1e-6);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(p0.row_to_node[i], p1.row_to_node[i]);
  }
}

TEST(Example1, PencilIsPassivePencil) {
  // The *exact* pencil at any p is an RC network: G, C symmetric PSD.
  auto family = example1_pencil_family();
  for (double p : {0.0, 0.05, 0.1}) {
    PortedPencil pen = family(p);
    auto eg = numeric::eigen_symmetric(pen.g);
    auto ec = numeric::eigen_symmetric(pen.c);
    for (double v : eg.values) EXPECT_GE(v, -1e-9);
    for (double v : ec.values) EXPECT_GE(v, -1e-25);
  }
}

}  // namespace
}  // namespace lcsf::interconnect
