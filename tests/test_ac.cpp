// Tests for small-signal AC analysis.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "circuit/netlist.hpp"
#include "circuit/technology.hpp"
#include "interconnect/coupled_lines.hpp"
#include "mor/pact.hpp"
#include "mor/variational.hpp"
#include "sim/diagnostics.hpp"
#include "spice/ac.hpp"
#include "spice/transient.hpp"

namespace lcsf::spice {
namespace {

using circuit::kGround;
using circuit::Netlist;
using circuit::SourceWaveform;
using numeric::Complex;

TEST(AcAnalysis, LogGrid) {
  const auto f = log_frequencies(1e6, 1e9, 4);
  ASSERT_EQ(f.size(), 4u);
  EXPECT_NEAR(f[0], 1e6, 1.0);
  EXPECT_NEAR(f[1], 1e7, 1e3);
  EXPECT_NEAR(f[3], 1e9, 1e3);
  EXPECT_THROW(log_frequencies(0.0, 1e9, 4), sim::SimulationError);
  EXPECT_THROW(log_frequencies(1e6, 1e5, 4), sim::SimulationError);
}

TEST(AcAnalysis, RcLowPassMagnitudeAndPhase) {
  // R = 1k, C = 1p: f3dB = 1/(2 pi RC) ~ 159 MHz.
  Netlist nl;
  const auto in = nl.add_node("in");
  const auto out = nl.add_node("out");
  nl.add_vsource(in, kGround, SourceWaveform::dc(0.0));
  nl.add_resistor(in, out, 1000.0);
  nl.add_capacitor(out, kGround, 1e-12);

  AcOptions opt;
  opt.frequencies = {1e6, 159.1549e6, 1e10};
  const auto res = ac_analysis(nl, opt);
  // Low f: |H| ~ 1. At f3dB: 1/sqrt(2), phase -45 deg. High f: ~ 0.
  EXPECT_NEAR(std::abs(res.at(0, out)), 1.0, 1e-4);
  EXPECT_NEAR(std::abs(res.at(1, out)), 1.0 / std::sqrt(2.0), 1e-4);
  EXPECT_NEAR(std::arg(res.at(1, out)), -M_PI / 4, 1e-4);
  EXPECT_LT(std::abs(res.at(2, out)), 0.02);
}

TEST(AcAnalysis, RlcResonance) {
  // Series RLC: peak current (and inductor-cap midpoint magnification) at
  // f0 = 1/(2 pi sqrt(LC)).
  const double r = 5.0, l = 1e-9, c = 1e-12;
  Netlist nl;
  const auto in = nl.add_node();
  const auto a = nl.add_node();
  const auto out = nl.add_node();
  nl.add_vsource(in, kGround, SourceWaveform::dc(0.0));
  nl.add_resistor(in, a, r);
  nl.add_inductor(a, out, l);
  nl.add_capacitor(out, kGround, c);

  const double f0 = 1.0 / (2 * M_PI * std::sqrt(l * c));
  AcOptions opt;
  opt.frequencies = {f0 / 10, f0, f0 * 10};
  const auto res = ac_analysis(nl, opt);
  // Q = (1/R) sqrt(L/C) ~ 6.3: the cap voltage is magnified ~Q at f0.
  const double q = std::sqrt(l / c) / r;
  EXPECT_NEAR(std::abs(res.at(1, out)), q, 0.05 * q);
  EXPECT_NEAR(std::abs(res.at(0, out)), 1.0, 0.03);
  EXPECT_LT(std::abs(res.at(2, out)), 0.05);
}

TEST(AcAnalysis, CommonSourceGain) {
  // NMOS common-source amp with resistor load: Av = -gm (RL || 1/gds).
  const auto tech = circuit::technology_180nm();
  Netlist nl;
  const auto vdd = nl.add_node("vdd");
  const auto in = nl.add_node("in");
  const auto out = nl.add_node("out");
  nl.add_vsource(vdd, kGround, SourceWaveform::dc(tech.vdd));
  nl.add_vsource(in, kGround, SourceWaveform::dc(0.9));  // bias in sat
  const double rl = 5000.0;
  nl.add_resistor(vdd, out, rl);
  nl.add_mosfet(tech.make_nmos(out, in, kGround, 4.0));

  AcOptions opt;
  opt.ac_source = 1;  // the gate bias source carries the stimulus
  opt.frequencies = {1e5};
  const auto res = ac_analysis(nl, opt);

  // Expected small-signal gain from the device model at the op point.
  TransientSimulator dc(nl);
  const auto vop = dc.dc_operating_point();
  const auto op = circuit::mosfet_eval(
      nl.mosfets()[0], vop[static_cast<std::size_t>(in)],
      vop[static_cast<std::size_t>(out)], 0.0);
  const double av_expect = -op.gm / (op.gds + 1.0 / rl);
  const Complex av = res.at(0, out);
  EXPECT_NEAR(av.real(), av_expect, 0.02 * std::abs(av_expect));
  EXPECT_NEAR(av.imag(), 0.0, 1e-3 * std::abs(av_expect));
  EXPECT_LT(av_expect, -2.0);  // meaningful gain
}

TEST(AcAnalysis, MatchesReducedModelTransfer) {
  // Full RC line vs its PACT macromodel: the simulator-level AC response
  // at the far end must match the reduced model's transfer function.
  const auto tech = circuit::technology_180nm();
  interconnect::CoupledLineSpec spec;
  spec.num_lines = 1;
  spec.length = 100e-6;
  spec.segment_length = 1e-6;
  spec.geometry = tech.wire;
  auto bundle = interconnect::build_coupled_lines(spec);

  const double rdrv = 500.0;  // drive the line through a resistor
  Netlist nl = bundle.netlist;
  const auto src = nl.add_node("src");
  nl.add_vsource(src, kGround, SourceWaveform::dc(0.0));
  nl.add_resistor(src, bundle.near_ends[0], rdrv);

  AcOptions opt;
  opt.frequencies = log_frequencies(1e7, 2e10, 7);
  const auto res = ac_analysis(nl, opt);

  // Reduced model with the drive conductance folded in.
  auto pencil = interconnect::build_ported_pencil(
      bundle.netlist, {bundle.near_ends[0], bundle.far_ends[0]});
  pencil = mor::with_port_conductance(std::move(pencil),
                                      numeric::Vector{1.0 / rdrv, 0.0});
  const auto rom = mor::pact_reduce(pencil, mor::PactOptions{8}).model;

  for (std::size_t k = 0; k < opt.frequencies.size(); ++k) {
    const Complex s{0.0, 2 * M_PI * opt.frequencies[k]};
    // Voltage transfer through the reduced model: v = Z(s) i with the
    // unit source injecting i = (1 - v_near)/rdrv at port 0 --
    // equivalently v_far = Z10 / (rdrv) * (1 - v_near), solved directly:
    const auto z = rom.port_impedance(s);
    // v_near = Z00 * i, i = (1 - v_near)/r -> careful: the chord fold-in
    // already placed 1/r inside the model, so i = 1/r (source shorted
    // through rdrv into the effective load):
    const Complex v_near = z(0, 0) / rdrv;
    const Complex v_far = z(1, 0) / rdrv;
    EXPECT_NEAR(std::abs(v_near - res.at(k, bundle.near_ends[0])), 0.0,
                5e-3)
        << opt.frequencies[k];
    EXPECT_NEAR(std::abs(v_far - res.at(k, bundle.far_ends[0])), 0.0, 5e-3)
        << opt.frequencies[k];
  }
}

}  // namespace
}  // namespace lcsf::spice
