// Tests for the statistics layer: RNG, LHS, PCA, MC, GA.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "stats/analysis.hpp"
#include "stats/descriptive.hpp"
#include "stats/pca.hpp"
#include "stats/random.hpp"

namespace lcsf::stats {
namespace {

using numeric::Matrix;
using numeric::Vector;

TEST(Rng, Reproducible) {
  Rng a(42), b(42);
  for (int k = 0; k < 10; ++k) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
  Rng c(43);
  EXPECT_NE(Rng(42).uniform(), c.uniform());
}

TEST(Rng, PermutationIsBijective) {
  Rng rng(7);
  auto p = rng.permutation(20);
  std::set<std::size_t> seen(p.begin(), p.end());
  EXPECT_EQ(seen.size(), 20u);
  EXPECT_EQ(*seen.rbegin(), 19u);
}

TEST(InverseNormalCdf, MatchesKnownQuantiles) {
  EXPECT_NEAR(inverse_normal_cdf(0.5), 0.0, 1e-9);
  EXPECT_NEAR(inverse_normal_cdf(0.8413447460685429), 1.0, 1e-6);
  EXPECT_NEAR(inverse_normal_cdf(0.9772498680518208), 2.0, 1e-6);
  EXPECT_NEAR(inverse_normal_cdf(0.0013498980316301), -3.0, 1e-5);
  EXPECT_THROW(inverse_normal_cdf(0.0), std::invalid_argument);
  EXPECT_THROW(inverse_normal_cdf(1.0), std::invalid_argument);
}

TEST(InverseNormalCdf, RoundTripsCdf) {
  // Phi(Phi^{-1}(p)) == p via erfc-based CDF.
  for (double p : {0.001, 0.01, 0.1, 0.3, 0.7, 0.95, 0.999}) {
    const double x = inverse_normal_cdf(p);
    const double cdf = 0.5 * std::erfc(-x / std::sqrt(2.0));
    EXPECT_NEAR(cdf, p, 1e-8) << p;
  }
}

TEST(LatinHypercube, StratifiesEveryDimension) {
  Rng rng(11);
  const std::size_t n = 50;
  Matrix u = latin_hypercube(n, 3, rng);
  for (std::size_t d = 0; d < 3; ++d) {
    std::vector<bool> stratum(n, false);
    for (std::size_t s = 0; s < n; ++s) {
      EXPECT_GE(u(s, d), 0.0);
      EXPECT_LT(u(s, d), 1.0);
      stratum[static_cast<std::size_t>(u(s, d) * n)] = true;
    }
    // LHS guarantee: exactly one sample per stratum.
    for (std::size_t k = 0; k < n; ++k) EXPECT_TRUE(stratum[k]) << k;
  }
}

TEST(LatinHypercube, VarianceReductionVsPlainSampling) {
  // The mean of a monotone function is estimated with lower spread by LHS.
  auto spread_of = [&](bool lhs) {
    std::vector<double> means;
    for (unsigned seed = 0; seed < 30; ++seed) {
      Rng rng(seed);
      double acc = 0.0;
      if (lhs) {
        Matrix u = latin_hypercube(20, 1, rng);
        for (std::size_t s = 0; s < 20; ++s) acc += u(s, 0) * u(s, 0);
      } else {
        for (std::size_t s = 0; s < 20; ++s) {
          const double x = rng.uniform();
          acc += x * x;
        }
      }
      means.push_back(acc / 20.0);
    }
    return summarize(means).stddev();
  };
  EXPECT_LT(spread_of(true), 0.5 * spread_of(false));
}

TEST(OnlineStats, MatchesClosedForm) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Histogram, BinsAndRender) {
  Histogram h(0.0, 10.0, 5);
  for (double x : {0.5, 1.0, 3.0, 3.5, 9.9, -1.0, 11.0}) h.add(x);
  EXPECT_EQ(h.total(), 7u);
  EXPECT_EQ(h.bin_count(0), 3u);  // 0.5, 1.0, clamped -1.0
  EXPECT_EQ(h.bin_count(1), 2u);
  EXPECT_EQ(h.bin_count(4), 2u);  // 9.9, clamped 11.0
  EXPECT_NEAR(h.bin_center(0), 1.0, 1e-12);
  const std::string r = h.render(10);
  EXPECT_NE(r.find('#'), std::string::npos);
}

TEST(Pca, RecoversAxisAlignedStructure) {
  Vector sigmas{3.0, 1.0, 0.1};
  Matrix cov = equicorrelated_covariance(sigmas, 0.0);
  Pca pca(cov, Vector{1.0, 2.0, 3.0});
  EXPECT_NEAR(pca.variances()[0], 9.0, 1e-9);
  EXPECT_NEAR(pca.variances()[1], 1.0, 1e-9);
  EXPECT_NEAR(pca.variances()[2], 0.01, 1e-9);
  // 9/(10.01) = 0.899 -> one factor covers 89%, two cover 99.9%.
  EXPECT_EQ(pca.factors_for(0.89), 1u);
  EXPECT_EQ(pca.factors_for(0.999), 2u);
}

TEST(Pca, RoundTripAndDimensionalityReduction) {
  Vector sigmas{1.0, 1.0, 1.0, 1.0};
  Matrix cov = equicorrelated_covariance(sigmas, 0.9);
  Pca pca(cov, Vector(4, 0.0));
  // Strong common factor: first eigenvalue 1+3*0.9 = 3.7 of total 4.
  EXPECT_NEAR(pca.variances()[0], 3.7, 1e-9);
  EXPECT_EQ(pca.factors_for(0.9), 1u);

  // Round trip through full factor space.
  Vector x{0.3, -0.2, 0.5, 0.1};
  Vector z = pca.to_factors(x);
  Vector back = pca.from_factors(z);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(back[i], x[i], 1e-9);
}

TEST(Pca, ReverseTransformReproducesCovariance) {
  Vector sigmas{2.0, 1.0};
  Matrix cov = equicorrelated_covariance(sigmas, 0.5);
  Pca pca(cov, Vector(2, 0.0));
  Rng rng(5);
  OnlineStats s00, s01, s11;
  for (int k = 0; k < 20000; ++k) {
    Vector z{rng.normal(), rng.normal()};
    Vector x = pca.from_factors(z);
    s00.add(x[0] * x[0]);
    s01.add(x[0] * x[1]);
    s11.add(x[1] * x[1]);
  }
  EXPECT_NEAR(s00.mean(), 4.0, 0.15);
  EXPECT_NEAR(s01.mean(), 1.0, 0.1);
  EXPECT_NEAR(s11.mean(), 1.0, 0.05);
}

TEST(MonteCarlo, LinearFunctionStatistics) {
  // f(w) = 10 + 2 w0 + 3 w1, w ~ N(0,1): mean 10, sigma sqrt(13).
  std::vector<VariationSource> src(2);
  auto f = [](const Vector& w) { return 10.0 + 2 * w[0] + 3 * w[1]; };
  MonteCarloOptions opt;
  opt.samples = 2000;
  auto res = monte_carlo(f, src, opt);
  EXPECT_EQ(res.values.size(), 2000u);
  EXPECT_NEAR(res.stats.mean(), 10.0, 0.1);
  EXPECT_NEAR(res.stats.stddev(), std::sqrt(13.0), 0.15);
}

TEST(MonteCarlo, UniformSourcesAndReproducibility) {
  std::vector<VariationSource> src(1);
  src[0].kind = VariationSource::Kind::kUniform;
  src[0].sigma = 0.5;  // U(-0.5, 0.5)
  auto f = [](const Vector& w) { return w[0]; };
  MonteCarloOptions opt;
  opt.samples = 500;
  opt.seed = 99;
  auto r1 = monte_carlo(f, src, opt);
  auto r2 = monte_carlo(f, src, opt);
  EXPECT_EQ(r1.values, r2.values);
  EXPECT_NEAR(r1.stats.mean(), 0.0, 0.02);
  // Uniform(-a,a) sigma = a/sqrt(3).
  EXPECT_NEAR(r1.stats.stddev(), 0.5 / std::sqrt(3.0), 0.02);
  EXPECT_GE(r1.stats.min(), -0.5);
  EXPECT_LE(r1.stats.max(), 0.5);
}

TEST(GradientAnalysis, ExactOnLinearFunctions) {
  std::vector<VariationSource> src(3);
  src[0].sigma = 1.0;
  src[1].sigma = 2.0;
  src[2].sigma = 0.5;
  auto f = [](const Vector& w) { return 5.0 + w[0] - 4 * w[1] + 2 * w[2]; };
  auto res = gradient_analysis(f, src);
  EXPECT_DOUBLE_EQ(res.nominal, 5.0);
  EXPECT_NEAR(res.gradient[0], 1.0, 1e-9);
  EXPECT_NEAR(res.gradient[1], -4.0, 1e-9);
  EXPECT_NEAR(res.gradient[2], 2.0, 1e-9);
  // Eq. 24: sqrt(1 + 64 + 1) = sqrt(66).
  EXPECT_NEAR(res.stddev, std::sqrt(66.0), 1e-9);
  EXPECT_EQ(res.evaluations, 7u);
}

TEST(GradientAnalysis, AgreesWithMonteCarloOnMildNonlinearity) {
  std::vector<VariationSource> src(2);
  src[0].sigma = 0.1;
  src[1].sigma = 0.1;
  auto f = [](const Vector& w) {
    return std::exp(0.5 * w[0]) + 2.0 * w[1] + 0.1 * w[0] * w[1];
  };
  auto ga = gradient_analysis(f, src);
  MonteCarloOptions opt;
  opt.samples = 4000;
  auto mc = monte_carlo(f, src, opt);
  EXPECT_NEAR(ga.stddev, mc.stats.stddev(), 0.01);
}

TEST(GradientAnalysis, UniformSourceVariance) {
  std::vector<VariationSource> src(1);
  src[0].kind = VariationSource::Kind::kUniform;
  src[0].sigma = 0.3;
  auto f = [](const Vector& w) { return 7.0 * w[0]; };
  auto res = gradient_analysis(f, src);
  EXPECT_NEAR(res.stddev, 7.0 * 0.3 / std::sqrt(3.0), 1e-9);
}

}  // namespace
}  // namespace lcsf::stats
