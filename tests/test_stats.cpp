// Tests for the statistics layer: RNG, LHS, PCA, MC, GA.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/diagnostics.hpp"
#include "stats/analysis.hpp"
#include "stats/descriptive.hpp"
#include "stats/pca.hpp"
#include "stats/random.hpp"
#include "stats/runner.hpp"

namespace lcsf::stats {
namespace {

using numeric::Matrix;
using numeric::Vector;

TEST(Rng, Reproducible) {
  Rng a(42), b(42);
  for (int k = 0; k < 10; ++k) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
  Rng c(43);
  EXPECT_NE(Rng(42).uniform(), c.uniform());
}

TEST(Rng, PermutationIsBijective) {
  Rng rng(7);
  auto p = rng.permutation(20);
  std::set<std::size_t> seen(p.begin(), p.end());
  EXPECT_EQ(seen.size(), 20u);
  EXPECT_EQ(*seen.rbegin(), 19u);
}

TEST(InverseNormalCdf, MatchesKnownQuantiles) {
  EXPECT_NEAR(inverse_normal_cdf(0.5), 0.0, 1e-9);
  EXPECT_NEAR(inverse_normal_cdf(0.8413447460685429), 1.0, 1e-6);
  EXPECT_NEAR(inverse_normal_cdf(0.9772498680518208), 2.0, 1e-6);
  EXPECT_NEAR(inverse_normal_cdf(0.0013498980316301), -3.0, 1e-5);
  EXPECT_THROW(inverse_normal_cdf(0.0), sim::SimulationError);
  EXPECT_THROW(inverse_normal_cdf(1.0), sim::SimulationError);
}

TEST(InverseNormalCdf, RoundTripsCdf) {
  // Phi(Phi^{-1}(p)) == p via erfc-based CDF.
  for (double p : {0.001, 0.01, 0.1, 0.3, 0.7, 0.95, 0.999}) {
    const double x = inverse_normal_cdf(p);
    const double cdf = 0.5 * std::erfc(-x / std::sqrt(2.0));
    EXPECT_NEAR(cdf, p, 1e-8) << p;
  }
}

TEST(LatinHypercube, StratifiesEveryDimension) {
  Rng rng(11);
  const std::size_t n = 50;
  Matrix u = latin_hypercube(n, 3, rng);
  for (std::size_t d = 0; d < 3; ++d) {
    std::vector<bool> stratum(n, false);
    for (std::size_t s = 0; s < n; ++s) {
      EXPECT_GE(u(s, d), 0.0);
      EXPECT_LT(u(s, d), 1.0);
      stratum[static_cast<std::size_t>(u(s, d) * n)] = true;
    }
    // LHS guarantee: exactly one sample per stratum.
    for (std::size_t k = 0; k < n; ++k) EXPECT_TRUE(stratum[k]) << k;
  }
}

TEST(LatinHypercube, VarianceReductionVsPlainSampling) {
  // The mean of a monotone function is estimated with lower spread by LHS.
  auto spread_of = [&](bool lhs) {
    std::vector<double> means;
    for (unsigned seed = 0; seed < 30; ++seed) {
      Rng rng(seed);
      double acc = 0.0;
      if (lhs) {
        Matrix u = latin_hypercube(20, 1, rng);
        for (std::size_t s = 0; s < 20; ++s) acc += u(s, 0) * u(s, 0);
      } else {
        for (std::size_t s = 0; s < 20; ++s) {
          const double x = rng.uniform();
          acc += x * x;
        }
      }
      means.push_back(acc / 20.0);
    }
    return summarize(means).stddev();
  };
  EXPECT_LT(spread_of(true), 0.5 * spread_of(false));
}

TEST(OnlineStats, MatchesClosedForm) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Histogram, BinsAndRender) {
  Histogram h(0.0, 10.0, 5);
  for (double x : {0.5, 1.0, 3.0, 3.5, 9.9, -1.0, 11.0}) h.add(x);
  EXPECT_EQ(h.total(), 7u);
  EXPECT_EQ(h.bin_count(0), 3u);  // 0.5, 1.0, clamped -1.0
  EXPECT_EQ(h.bin_count(1), 2u);
  EXPECT_EQ(h.bin_count(4), 2u);  // 9.9, clamped 11.0
  EXPECT_NEAR(h.bin_center(0), 1.0, 1e-12);
  const std::string r = h.render(10);
  EXPECT_NE(r.find('#'), std::string::npos);
}

TEST(Pca, RecoversAxisAlignedStructure) {
  Vector sigmas{3.0, 1.0, 0.1};
  Matrix cov = equicorrelated_covariance(sigmas, 0.0);
  Pca pca(cov, Vector{1.0, 2.0, 3.0});
  EXPECT_NEAR(pca.variances()[0], 9.0, 1e-9);
  EXPECT_NEAR(pca.variances()[1], 1.0, 1e-9);
  EXPECT_NEAR(pca.variances()[2], 0.01, 1e-9);
  // 9/(10.01) = 0.899 -> one factor covers 89%, two cover 99.9%.
  EXPECT_EQ(pca.factors_for(0.89), 1u);
  EXPECT_EQ(pca.factors_for(0.999), 2u);
}

TEST(Pca, RoundTripAndDimensionalityReduction) {
  Vector sigmas{1.0, 1.0, 1.0, 1.0};
  Matrix cov = equicorrelated_covariance(sigmas, 0.9);
  Pca pca(cov, Vector(4, 0.0));
  // Strong common factor: first eigenvalue 1+3*0.9 = 3.7 of total 4.
  EXPECT_NEAR(pca.variances()[0], 3.7, 1e-9);
  EXPECT_EQ(pca.factors_for(0.9), 1u);

  // Round trip through full factor space.
  Vector x{0.3, -0.2, 0.5, 0.1};
  Vector z = pca.to_factors(x);
  Vector back = pca.from_factors(z);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(back[i], x[i], 1e-9);
}

TEST(Pca, ReverseTransformReproducesCovariance) {
  Vector sigmas{2.0, 1.0};
  Matrix cov = equicorrelated_covariance(sigmas, 0.5);
  Pca pca(cov, Vector(2, 0.0));
  Rng rng(5);
  OnlineStats s00, s01, s11;
  for (int k = 0; k < 20000; ++k) {
    Vector z{rng.normal(), rng.normal()};
    Vector x = pca.from_factors(z);
    s00.add(x[0] * x[0]);
    s01.add(x[0] * x[1]);
    s11.add(x[1] * x[1]);
  }
  EXPECT_NEAR(s00.mean(), 4.0, 0.15);
  EXPECT_NEAR(s01.mean(), 1.0, 0.1);
  EXPECT_NEAR(s11.mean(), 1.0, 0.05);
}

TEST(MonteCarlo, LinearFunctionStatistics) {
  // f(w) = 10 + 2 w0 + 3 w1, w ~ N(0,1): mean 10, sigma sqrt(13).
  std::vector<VariationSource> src(2);
  auto f = [](const Vector& w) { return 10.0 + 2 * w[0] + 3 * w[1]; };
  MonteCarloOptions opt;
  opt.samples = 2000;
  auto res = monte_carlo(f, src, opt);
  EXPECT_EQ(res.values.size(), 2000u);
  EXPECT_NEAR(res.stats.mean(), 10.0, 0.1);
  EXPECT_NEAR(res.stats.stddev(), std::sqrt(13.0), 0.15);
}

TEST(MonteCarlo, UniformSourcesAndReproducibility) {
  std::vector<VariationSource> src(1);
  src[0].kind = VariationSource::Kind::kUniform;
  src[0].sigma = 0.5;  // U(-0.5, 0.5)
  auto f = [](const Vector& w) { return w[0]; };
  MonteCarloOptions opt;
  opt.samples = 500;
  opt.seed = 99;
  auto r1 = monte_carlo(f, src, opt);
  auto r2 = monte_carlo(f, src, opt);
  EXPECT_EQ(r1.values, r2.values);
  EXPECT_NEAR(r1.stats.mean(), 0.0, 0.02);
  // Uniform(-a,a) sigma = a/sqrt(3).
  EXPECT_NEAR(r1.stats.stddev(), 0.5 / std::sqrt(3.0), 0.02);
  EXPECT_GE(r1.stats.min(), -0.5);
  EXPECT_LE(r1.stats.max(), 0.5);
}

TEST(SplitMix64, StreamsAreReproducibleAndDistinct) {
  SplitMix64 a = sample_stream(42, 7);
  SplitMix64 b = sample_stream(42, 7);
  for (int k = 0; k < 16; ++k) EXPECT_EQ(a.next(), b.next());
  SplitMix64 c = sample_stream(42, 8);
  SplitMix64 d = sample_stream(43, 7);
  SplitMix64 e = sample_stream(42, 7, 1);  // distinct tag
  SplitMix64 base = sample_stream(42, 7);
  EXPECT_NE(base.next(), c.next());
  EXPECT_NE(sample_stream(42, 7).next(), d.next());
  EXPECT_NE(sample_stream(42, 7).next(), e.next());
}

TEST(SplitMix64, UniformOpenStaysInsideUnitInterval) {
  SplitMix64 s(123);
  for (int k = 0; k < 100000; ++k) {
    const double u = s.uniform_open();
    ASSERT_GT(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
  // Values near the interval edges must still survive the normal inverse.
  EXPECT_NO_THROW(inverse_normal_cdf(0.5 * 0x1.0p-53));
}

TEST(SplitMix64, StreamPermutationIsBijective) {
  SplitMix64 s = sample_stream(9, 0);
  auto p = stream_permutation(50, s);
  std::set<std::size_t> seen(p.begin(), p.end());
  EXPECT_EQ(seen.size(), 50u);
  EXPECT_EQ(*seen.rbegin(), 49u);
  SplitMix64 s2 = sample_stream(9, 0);
  EXPECT_EQ(p, stream_permutation(50, s2));
}

TEST(MonteCarlo, BitwiseIdenticalAcrossThreadCounts) {
  std::vector<VariationSource> src(3);
  src[1].kind = VariationSource::Kind::kUniform;
  src[1].sigma = 0.4;
  auto f = [](const Vector& w) { return w[0] + 2.0 * w[1] - w[2]; };

  for (bool lhs : {false, true}) {
    MonteCarloOptions opt;
    opt.samples = 333;  // not a multiple of any thread count
    opt.seed = 5;
    opt.latin_hypercube = lhs;

    opt.threads = 1;
    const auto serial = monte_carlo(f, src, opt);
    for (std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
      opt.threads = threads;
      const auto par = monte_carlo(f, src, opt);
      // Element-wise bitwise equality: values AND the sampled w vectors.
      EXPECT_EQ(serial.values, par.values) << "lhs=" << lhs;
      ASSERT_EQ(serial.samples.size(), par.samples.size());
      for (std::size_t s = 0; s < serial.samples.size(); ++s) {
        EXPECT_EQ(serial.samples[s], par.samples[s]) << "lhs=" << lhs;
      }
      // Stats accumulate in sample order, so they match bitwise too.
      EXPECT_EQ(serial.stats.mean(), par.stats.mean());
      EXPECT_EQ(serial.stats.stddev(), par.stats.stddev());
    }
  }
}

TEST(MonteCarlo, LatinHypercubeStillStratifiesInParallel) {
  // The identity map exposes the underlying variates: with n samples and
  // U(0,1)-shaped uniform sources, LHS puts exactly one sample per
  // stratum in every dimension, whatever the thread count.
  std::vector<VariationSource> src(2);
  for (auto& s : src) {
    s.kind = VariationSource::Kind::kUniform;
    s.mean = 0.5;
    s.sigma = 0.5;  // maps the (0,1) variate to itself
  }
  MonteCarloOptions opt;
  opt.samples = 40;
  opt.seed = 17;
  opt.threads = 8;
  auto id0 = [](const Vector& w) { return w[0]; };
  const auto res = monte_carlo(id0, src, opt);
  for (std::size_t d = 0; d < 2; ++d) {
    std::vector<bool> stratum(opt.samples, false);
    for (const auto& w : res.samples) {
      ASSERT_GT(w[d], 0.0);
      ASSERT_LT(w[d], 1.0);
      stratum[static_cast<std::size_t>(w[d] * double(opt.samples))] = true;
    }
    for (std::size_t k = 0; k < opt.samples; ++k) EXPECT_TRUE(stratum[k]);
  }
}

TEST(MonteCarlo, SingleSampleLatinHypercubeIsWellDefined) {
  // samples == 1 with stratification: the lone stratum is the whole unit
  // interval, so this must behave like one plain draw, not throw.
  std::vector<VariationSource> src(2);
  MonteCarloOptions opt;
  opt.samples = 1;
  opt.latin_hypercube = true;
  auto f = [](const Vector& w) { return w[0] + w[1]; };
  const auto res = monte_carlo(f, src, opt);
  EXPECT_EQ(res.values.size(), 1u);
  EXPECT_TRUE(std::isfinite(res.values[0]));

  // ...and it equals the plain draw from the same per-sample stream.
  opt.latin_hypercube = false;
  const auto plain = monte_carlo(f, src, opt);
  EXPECT_EQ(res.values, plain.values);
}

TEST(MonteCarlo, ErrorsNameTheOffendingOption) {
  auto f = [](const Vector&) { return 0.0; };
  MonteCarloOptions opt;
  try {
    monte_carlo(f, {}, opt);
    FAIL() << "expected SimulationError(kInvalidInput)";
  } catch (const sim::SimulationError& e) {
    EXPECT_EQ(e.kind(), sim::FailureKind::kInvalidInput);
    EXPECT_NE(std::string(e.what()).find("sources"), std::string::npos)
        << e.what();
  }
  std::vector<VariationSource> src(1);
  opt.samples = 0;
  try {
    monte_carlo(f, src, opt);
    FAIL() << "expected SimulationError(kInvalidInput)";
  } catch (const sim::SimulationError& e) {
    EXPECT_NE(std::string(e.what()).find("samples"), std::string::npos)
        << e.what();
  }
}

TEST(MonteCarlo, WorkerExceptionPropagates) {
  std::vector<VariationSource> src(1);
  MonteCarloOptions opt;
  opt.samples = 64;
  opt.threads = 4;
  auto f = [](const Vector& w) {
    if (w[0] > -10.0) throw std::runtime_error("engine diverged");
    return 0.0;
  };
  EXPECT_THROW(monte_carlo(f, src, opt), std::runtime_error);
}

TEST(GradientAnalysis, ThreadCountInvariant) {
  std::vector<VariationSource> src(6);
  for (std::size_t d = 0; d < src.size(); ++d) {
    src[d].sigma = 0.1 + 0.05 * static_cast<double>(d);
  }
  auto f = [](const Vector& w) {
    double acc = 1.0;
    for (std::size_t d = 0; d < w.size(); ++d) {
      acc += std::sin(w[d]) * static_cast<double>(d + 1);
    }
    return acc;
  };
  GradientAnalysisOptions opt;
  opt.threads = 1;
  const auto serial = gradient_analysis(f, src, opt);
  opt.threads = 8;
  const auto par = gradient_analysis(f, src, opt);
  EXPECT_EQ(serial.nominal, par.nominal);
  EXPECT_EQ(serial.stddev, par.stddev);
  EXPECT_EQ(serial.evaluations, par.evaluations);
  for (std::size_t d = 0; d < src.size(); ++d) {
    EXPECT_EQ(serial.gradient[d], par.gradient[d]);
  }
}

TEST(GradientAnalysis, ExactOnLinearFunctions) {
  std::vector<VariationSource> src(3);
  src[0].sigma = 1.0;
  src[1].sigma = 2.0;
  src[2].sigma = 0.5;
  auto f = [](const Vector& w) { return 5.0 + w[0] - 4 * w[1] + 2 * w[2]; };
  auto res = gradient_analysis(f, src);
  EXPECT_DOUBLE_EQ(res.nominal, 5.0);
  EXPECT_NEAR(res.gradient[0], 1.0, 1e-9);
  EXPECT_NEAR(res.gradient[1], -4.0, 1e-9);
  EXPECT_NEAR(res.gradient[2], 2.0, 1e-9);
  // Eq. 24: sqrt(1 + 64 + 1) = sqrt(66).
  EXPECT_NEAR(res.stddev, std::sqrt(66.0), 1e-9);
  EXPECT_EQ(res.evaluations, 7u);
}

TEST(GradientAnalysis, AgreesWithMonteCarloOnMildNonlinearity) {
  std::vector<VariationSource> src(2);
  src[0].sigma = 0.1;
  src[1].sigma = 0.1;
  auto f = [](const Vector& w) {
    return std::exp(0.5 * w[0]) + 2.0 * w[1] + 0.1 * w[0] * w[1];
  };
  auto ga = gradient_analysis(f, src);
  MonteCarloOptions opt;
  opt.samples = 4000;
  auto mc = monte_carlo(f, src, opt);
  EXPECT_NEAR(ga.stddev, mc.stats.stddev(), 0.01);
}

TEST(Runner, MonteCarloMatchesFreeFunctionBitwise) {
  // The free functions are thin wrappers over Runner; both paths must
  // produce bitwise-identical results for the same options.
  std::vector<VariationSource> src(3);
  src[2].kind = VariationSource::Kind::kUniform;
  src[2].sigma = 0.4;
  auto f = [](const Vector& w) { return w[0] * w[1] + 0.5 * w[2]; };
  for (bool lhs : {false, true}) {
    MonteCarloOptions opt;
    opt.samples = 97;
    opt.seed = 23;
    opt.latin_hypercube = lhs;
    opt.threads = 4;
    const auto legacy = monte_carlo(f, src, opt);
    const auto modern = Runner(RunOptions::from(opt)).run_monte_carlo(f, src);
    EXPECT_EQ(legacy.values, modern.values) << "lhs=" << lhs;
    ASSERT_EQ(legacy.samples.size(), modern.samples.size());
    for (std::size_t s = 0; s < legacy.samples.size(); ++s) {
      EXPECT_EQ(legacy.samples[s], modern.samples[s]) << "lhs=" << lhs;
    }
    EXPECT_EQ(legacy.stats.mean(), modern.stats.mean());
    EXPECT_EQ(legacy.stats.stddev(), modern.stats.stddev());
  }
}

TEST(Runner, GradientsMatchFreeFunctionBitwise) {
  std::vector<VariationSource> src(4);
  for (std::size_t d = 0; d < src.size(); ++d) {
    src[d].sigma = 0.2 + 0.1 * static_cast<double>(d);
  }
  auto f = [](const Vector& w) {
    return std::cos(w[0]) + w[1] * w[2] - 0.3 * w[3];
  };
  GradientAnalysisOptions opt;
  opt.step_fraction = 0.05;
  opt.threads = 4;
  const auto legacy = gradient_analysis(f, src, opt);
  const auto modern = Runner(RunOptions::from(opt)).run_gradients(f, src);
  EXPECT_EQ(legacy.nominal, modern.nominal);
  EXPECT_EQ(legacy.stddev, modern.stddev);
  EXPECT_EQ(legacy.evaluations, modern.evaluations);
  EXPECT_EQ(legacy.gradient, modern.gradient);
}

TEST(Runner, OptionLiftsRoundTrip) {
  MonteCarloOptions mc;
  mc.samples = 7;
  mc.seed = 99;
  mc.latin_hypercube = false;
  mc.threads = 3;
  mc.on_failure = FailurePolicy::kSkip;
  const MonteCarloOptions back =
      RunOptions::from(mc).monte_carlo_options();
  EXPECT_EQ(back.samples, mc.samples);
  EXPECT_EQ(back.seed, mc.seed);
  EXPECT_EQ(back.latin_hypercube, mc.latin_hypercube);
  EXPECT_EQ(back.threads, mc.threads);
  EXPECT_EQ(back.on_failure, mc.on_failure);

  GradientAnalysisOptions ga;
  ga.step_fraction = 0.02;
  ga.threads = 5;
  ga.on_failure = FailurePolicy::kSkip;
  const GradientAnalysisOptions gback =
      RunOptions::from(ga).gradient_options();
  EXPECT_EQ(gback.step_fraction, ga.step_fraction);
  EXPECT_EQ(gback.threads, ga.threads);
  EXPECT_EQ(gback.on_failure, ga.on_failure);
}

TEST(GradientAnalysis, UniformSourceVariance) {
  std::vector<VariationSource> src(1);
  src[0].kind = VariationSource::Kind::kUniform;
  src[0].sigma = 0.3;
  auto f = [](const Vector& w) { return 7.0 * w[0]; };
  auto res = gradient_analysis(f, src);
  EXPECT_NEAR(res.stddev, 7.0 * 0.3 / std::sqrt(3.0), 1e-9);
}

}  // namespace
}  // namespace lcsf::stats
