// Tests for the SPICE-substitute transient simulator.
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/netlist.hpp"
#include "circuit/technology.hpp"
#include "sim/diagnostics.hpp"
#include "spice/transient.hpp"

namespace lcsf::spice {
namespace {

using circuit::kGround;
using circuit::Netlist;
using circuit::NodeId;
using circuit::SourceWaveform;
using circuit::Technology;
using circuit::technology_180nm;

// Build a standard CMOS inverter driving a load cap.
struct InverterFixture {
  Netlist nl;
  NodeId in, out, vdd;

  explicit InverterFixture(const Technology& t, double cload = 10e-15,
                           double wn = 4.0, double wp = 8.0) {
    in = nl.add_node("in");
    out = nl.add_node("out");
    vdd = nl.add_node("vdd");
    nl.add_vsource(vdd, kGround, SourceWaveform::dc(t.vdd));
    nl.add_mosfet(t.make_nmos(out, in, kGround, wn));
    nl.add_mosfet(t.make_pmos(out, in, vdd, wp));
    nl.add_capacitor(out, kGround, cload);
    nl.freeze_device_capacitances();
  }
};

TEST(Transient, RcStepMatchesAnalytic) {
  // R = 1k, C = 1p, step input: v_out(t) = V (1 - exp(-t/RC)).
  Netlist nl;
  NodeId src = nl.add_node("src");
  NodeId out = nl.add_node("out");
  nl.add_vsource(src, kGround, SourceWaveform::ramp(0.0, 1.0, 0.0, 1e-15));
  nl.add_resistor(src, out, 1000.0);
  nl.add_capacitor(out, kGround, 1e-12);

  TransientSimulator sim(nl);
  TransientOptions opt;
  opt.tstop = 5e-9;
  opt.dt = 5e-12;
  TransientResult res = sim.run(opt);
  ASSERT_TRUE(res.converged) << res.failure();

  // Trapezoidal integration sees the step as a ramp across the first
  // timestep, so the response lags the ideal step response by dt/2.
  const double tau = 1e-9;
  for (const auto& [t, v] : res.waveform(out)) {
    if (t < 2 * opt.dt) continue;
    const double expect = 1.0 - std::exp(-(t - 0.5 * opt.dt) / tau);
    EXPECT_NEAR(v, expect, 2e-4) << "t = " << t;
  }
}

TEST(Transient, CoupledCapsChargeShare) {
  // Two caps in series from a step through R: final voltages split by the
  // capacitive divider; dc final value of the middle node is V (C2 floats).
  Netlist nl;
  NodeId src = nl.add_node();
  NodeId a = nl.add_node();
  NodeId b = nl.add_node();
  nl.add_vsource(src, kGround, SourceWaveform::ramp(0.0, 1.0, 0.0, 1e-12));
  nl.add_resistor(src, a, 100.0);
  nl.add_capacitor(a, b, 2e-12);
  nl.add_resistor(b, kGround, 1e6);  // weak dc path
  nl.add_capacitor(b, kGround, 1e-12);

  TransientSimulator sim(nl);
  TransientOptions opt;
  opt.tstop = 3e-9;
  opt.dt = 1e-12;
  TransientResult res = sim.run(opt);
  ASSERT_TRUE(res.converged) << res.failure();
  // Early charge sharing: v_b jumps toward V*C1/(C1+C2) = 2/3.
  double vb_peak = 0.0;
  for (const auto& [t, v] : res.waveform(b)) vb_peak = std::max(vb_peak, v);
  EXPECT_NEAR(vb_peak, 2.0 / 3.0, 0.05);
}

TEST(Dc, InverterRails) {
  Technology t = technology_180nm();
  {
    InverterFixture f(t);
    f.nl.add_vsource(f.in, kGround, SourceWaveform::dc(0.0));
    TransientSimulator sim(f.nl);
    auto v = sim.dc_operating_point();
    EXPECT_NEAR(v[static_cast<std::size_t>(f.out)], t.vdd, 1e-3);
  }
  {
    InverterFixture f(t);
    f.nl.add_vsource(f.in, kGround, SourceWaveform::dc(t.vdd));
    TransientSimulator sim(f.nl);
    auto v = sim.dc_operating_point();
    EXPECT_NEAR(v[static_cast<std::size_t>(f.out)], 0.0, 1e-3);
  }
}

TEST(Dc, InverterMidpointIsMetastablePoint) {
  // With input at the switching threshold the output sits between rails.
  Technology t = technology_180nm();
  InverterFixture f(t, 10e-15, 4.0, 4.0 * t.nmos.kp / t.pmos.kp);
  f.nl.add_vsource(f.in, kGround, SourceWaveform::dc(0.5 * t.vdd));
  TransientSimulator sim(f.nl);
  auto v = sim.dc_operating_point();
  const double vout = v[static_cast<std::size_t>(f.out)];
  EXPECT_GT(vout, 0.2 * t.vdd);
  EXPECT_LT(vout, 0.8 * t.vdd);
}

TEST(Transient, InverterSwitches) {
  Technology t = technology_180nm();
  InverterFixture f(t, 20e-15);
  f.nl.add_vsource(f.in, kGround,
                   SourceWaveform::ramp(0.0, t.vdd, 50e-12, 50e-12));
  TransientSimulator sim(f.nl);
  TransientOptions opt;
  opt.tstop = 2e-9;
  opt.dt = 1e-12;
  TransientResult res = sim.run(opt);
  ASSERT_TRUE(res.converged) << res.failure();
  // Output starts high, ends low.
  auto w = res.waveform(f.out);
  EXPECT_NEAR(w.front().second, t.vdd, 1e-2);
  EXPECT_NEAR(w.back().second, 0.0, 1e-2);
  // Falling edge is monotone-ish and crosses vdd/2 after the input does.
  double t_cross_out = -1.0;
  for (std::size_t k = 1; k < w.size(); ++k) {
    if (w[k - 1].second >= 0.5 * t.vdd && w[k].second < 0.5 * t.vdd) {
      t_cross_out = w[k].first;
      break;
    }
  }
  ASSERT_GT(t_cross_out, 0.0);
  EXPECT_GT(t_cross_out, 75e-12);  // input 50% point
}

TEST(Transient, InverterChainPropagates) {
  Technology t = technology_180nm();
  Netlist nl;
  NodeId vdd = nl.add_node("vdd");
  nl.add_vsource(vdd, kGround, SourceWaveform::dc(t.vdd));
  NodeId in = nl.add_node("in");
  nl.add_vsource(in, kGround,
                 SourceWaveform::ramp(0.0, t.vdd, 20e-12, 40e-12));
  NodeId prev = in;
  std::vector<NodeId> outs;
  for (int k = 0; k < 3; ++k) {
    NodeId out = nl.add_node("o" + std::to_string(k));
    nl.add_mosfet(t.make_nmos(out, prev, kGround, 4.0));
    nl.add_mosfet(t.make_pmos(out, prev, vdd, 8.0));
    nl.add_capacitor(out, kGround, 5e-15);
    outs.push_back(out);
    prev = out;
  }
  nl.freeze_device_capacitances();

  TransientSimulator sim(nl);
  TransientOptions opt;
  opt.tstop = 2e-9;
  opt.dt = 1e-12;
  TransientResult res = sim.run(opt);
  ASSERT_TRUE(res.converged) << res.failure();
  // After three inversions of a rising input: o0 low, o1 high, o2 low.
  EXPECT_NEAR(res.final_voltage(outs[0]), 0.0, 1e-2);
  EXPECT_NEAR(res.final_voltage(outs[1]), t.vdd, 1e-2);
  EXPECT_NEAR(res.final_voltage(outs[2]), 0.0, 1e-2);
}

TEST(Transient, StableMacromodelMatchesDirectRc) {
  // Stamp a 1-port macromodel equivalent to R->C low-pass driven through a
  // resistor and compare with the directly-stamped equivalent.
  Netlist nl;
  NodeId src = nl.add_node();
  NodeId port = nl.add_node();
  nl.add_vsource(src, kGround, SourceWaveform::ramp(0.0, 1.0, 0.0, 1e-12));
  nl.add_resistor(src, port, 500.0);

  // Macromodel: port--R=500--internal, C=1p at internal.
  MacromodelStamp mm;
  mm.ports = {port};
  mm.g = numeric::Matrix{{1.0 / 500.0, -1.0 / 500.0},
                         {-1.0 / 500.0, 1.0 / 500.0}};
  mm.c = numeric::Matrix{{0.0, 0.0}, {0.0, 1e-12}};

  TransientSimulator sim(nl);
  sim.add_macromodel(mm);
  TransientOptions opt;
  opt.tstop = 4e-9;
  opt.dt = 2e-12;
  TransientResult res = sim.run(opt);
  ASSERT_TRUE(res.converged) << res.failure();

  // Reference: same circuit stamped natively.
  Netlist ref;
  NodeId rsrc = ref.add_node();
  NodeId rport = ref.add_node();
  NodeId rint = ref.add_node();
  ref.add_vsource(rsrc, kGround, SourceWaveform::ramp(0.0, 1.0, 0.0, 1e-12));
  ref.add_resistor(rsrc, rport, 500.0);
  ref.add_resistor(rport, rint, 500.0);
  ref.add_capacitor(rint, kGround, 1e-12);
  TransientSimulator rsim(ref);
  TransientResult rres = rsim.run(opt);
  ASSERT_TRUE(rres.converged);

  auto w = res.waveform(port);
  auto wr = rres.waveform(rport);
  ASSERT_EQ(w.size(), wr.size());
  for (std::size_t k = 0; k < w.size(); ++k) {
    EXPECT_NEAR(w[k].second, wr[k].second, 1e-9);
  }
}

TEST(Transient, UnstableMacromodelDiverges) {
  // A macromodel with a right-half-plane pole: i = G v with G < 0 on an
  // internal state fed by the port. Equivalent to a negative-R,C tank.
  Netlist nl;
  NodeId src = nl.add_node();
  NodeId port = nl.add_node();
  nl.add_vsource(src, kGround, SourceWaveform::ramp(0.0, 1.0, 0.0, 1e-12));
  nl.add_resistor(src, port, 100.0);

  MacromodelStamp mm;
  mm.ports = {port};
  // Internal node with negative conductance to ground and a cap: pole at
  // +|g|/c in the right half plane.
  mm.g = numeric::Matrix{{1e-3, -1e-3}, {-1e-3, -0.5e-3}};
  mm.c = numeric::Matrix{{0.0, 0.0}, {0.0, 1e-13}};

  TransientSimulator sim(nl);
  sim.add_macromodel(mm);
  TransientOptions opt;
  opt.tstop = 10e-9;
  opt.dt = 2e-12;
  TransientResult res = sim.run(opt);
  EXPECT_FALSE(res.converged);
  EXPECT_TRUE(res.diag.failed());
  // An unstable macromodel must classify as divergence, not misuse.
  EXPECT_TRUE(res.diag.kind == sim::FailureKind::kBlowUp ||
              res.diag.kind == sim::FailureKind::kNewtonNonConvergence)
      << res.failure();
  EXPECT_GT(res.diag.failure_time, 0.0);
}

TEST(Transient, RejectsFloatingVoltageSources) {
  Netlist nl;
  NodeId a = nl.add_node();
  NodeId b = nl.add_node();
  nl.add_resistor(b, kGround, 100.0);
  nl.add_vsource(a, b, SourceWaveform::dc(1.0));
  EXPECT_THROW(TransientSimulator{nl}, sim::SimulationError);
}

TEST(Transient, NewtonIterationsAreCounted) {
  Technology t = technology_180nm();
  InverterFixture f(t);
  f.nl.add_vsource(f.in, kGround,
                   SourceWaveform::ramp(0.0, t.vdd, 10e-12, 50e-12));
  TransientSimulator sim(f.nl);
  TransientOptions opt;
  opt.tstop = 0.5e-9;
  opt.dt = 1e-12;
  TransientResult res = sim.run(opt);
  ASSERT_TRUE(res.converged);
  EXPECT_GT(res.total_newton_iterations, 500);  // >= 1 per step
}

}  // namespace
}  // namespace lcsf::spice
