// Property sweeps on the MOR layer: order convergence, multiport
// reciprocity, and pole/residue consistency on realistic wire loads.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "circuit/technology.hpp"
#include "interconnect/coupled_lines.hpp"
#include "mor/pact.hpp"
#include "mor/poleres.hpp"
#include "mor/prima.hpp"
#include "mor/variational.hpp"

namespace lcsf::mor {
namespace {

using interconnect::PortedPencil;
using numeric::Complex;
using numeric::Vector;

PortedPencil bus_pencil(std::size_t lines, std::size_t segments) {
  interconnect::CoupledLineSpec spec;
  spec.num_lines = lines;
  spec.length = static_cast<double>(segments) * 1e-6;
  spec.segment_length = 1e-6;
  spec.geometry = circuit::technology_180nm().wire;
  auto b = interconnect::build_coupled_lines(spec);
  auto pencil = interconnect::build_ported_pencil(b.netlist, b.ports());
  Vector gout(2 * lines, 0.0);
  for (std::size_t l = 0; l < lines; ++l) gout[l] = 2e-3;
  return with_port_conductance(std::move(pencil), gout);
}

double z_error(const ReducedModel& rom, const PortedPencil& exact,
               double fmax) {
  double err = 0.0;
  for (double f : {fmax / 100, fmax / 10, fmax}) {
    const Complex s{0.0, 2 * M_PI * f};
    const auto ze =
        pencil_port_impedance(exact.g, exact.c, exact.num_ports, s);
    const auto zr = rom.port_impedance(s);
    double e = 0.0, scale = 1e-300;
    for (std::size_t i = 0; i < ze.rows(); ++i) {
      for (std::size_t j = 0; j < ze.cols(); ++j) {
        e = std::max(e, std::abs(zr(i, j) - ze(i, j)));
        scale = std::max(scale, std::abs(ze(i, j)));
      }
    }
    err = std::max(err, e / scale);
  }
  return err;
}

// PACT accuracy improves monotonically (to tolerance) with kept modes.
TEST(MorConvergence, PactErrorDecreasesWithOrder) {
  const PortedPencil pencil = bus_pencil(2, 40);
  double prev = 1e9;
  for (std::size_t q : {1u, 2u, 4u, 8u, 16u}) {
    PactOptions opt;
    opt.internal_modes = q;
    const auto rom = pact_reduce(pencil, opt).model;
    const double err = z_error(rom, pencil, 20e9);
    EXPECT_LT(err, prev * 1.5) << "q = " << q;  // allow small plateaus
    prev = std::min(prev, err);
  }
  EXPECT_LT(prev, 1e-3);
}

TEST(MorConvergence, PrimaErrorDecreasesWithMoments) {
  const PortedPencil pencil = bus_pencil(2, 40);
  double prev = 1e9;
  for (std::size_t m : {1u, 2u, 3u}) {
    PrimaOptions opt;
    opt.block_moments = m;
    const auto rom = prima_reduce(pencil, opt).model;
    const double err = z_error(rom, pencil, 20e9);
    EXPECT_LT(err, prev * 1.5) << "moments = " << m;
    prev = std::min(prev, err);
  }
  EXPECT_LT(prev, 5e-2);
}

// Reciprocal RC networks have symmetric impedance matrices; reductions
// must preserve this.
class MorReciprocity : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MorReciprocity, ReducedImpedanceIsSymmetric) {
  const PortedPencil pencil = bus_pencil(GetParam(), 30);
  const auto rom = pact_reduce(pencil, PactOptions{6}).model;
  for (double f : {1e8, 1e9, 1e10}) {
    const auto z = rom.port_impedance(Complex{0.0, 2 * M_PI * f});
    for (std::size_t i = 0; i < z.rows(); ++i) {
      for (std::size_t j = i + 1; j < z.cols(); ++j) {
        EXPECT_NEAR(std::abs(z(i, j) - z(j, i)), 0.0,
                    1e-9 * std::abs(z(i, j)) + 1e-12)
            << f;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Lines, MorReciprocity,
                         ::testing::Values(1u, 2u, 3u));

// Pole/residue extraction is exact (same rational function) regardless of
// model order, so stabilize() on an already-stable model is lossless.
class PoleResidueLossless : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PoleResidueLossless, RoundTrip) {
  const PortedPencil pencil = bus_pencil(2, 25);
  const auto rom = pact_reduce(pencil, PactOptions{GetParam()}).model;
  const auto pr = extract_pole_residue(rom);
  StabilizationReport rep;
  const auto st = stabilize(pr, &rep);
  EXPECT_EQ(rep.dropped_poles, 0u);
  for (double f : {1e7, 1e9, 5e10}) {
    const Complex s{0.0, 2 * M_PI * f};
    const auto za = rom.port_impedance(s);
    const auto zb = st.eval(s);
    for (std::size_t i = 0; i < za.rows(); ++i) {
      for (std::size_t j = 0; j < za.cols(); ++j) {
        EXPECT_NEAR(std::abs(zb(i, j) - za(i, j)), 0.0,
                    1e-7 * std::abs(za(i, j)) + 1e-13);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, PoleResidueLossless,
                         ::testing::Values(2u, 4u, 8u));

// The variational library must be exact at w = 0 for any parameter count.
TEST(MorVariational, MultiParameterNominalExactness) {
  const circuit::Technology tech = circuit::technology_180nm();
  mor::PencilFamily family = [&tech](const Vector& w) {
    interconnect::WireVariation wv;
    wv.width = w[0] * 0.25;
    wv.thickness = w[1] * 0.20;
    wv.spacing = w[2] * 0.25;
    interconnect::CoupledLineSpec spec;
    spec.num_lines = 2;
    spec.length = 30e-6;
    spec.segment_length = 1e-6;
    spec.geometry = interconnect::apply_variation(tech.wire, wv);
    auto b = interconnect::build_coupled_lines(spec);
    auto pencil = interconnect::build_ported_pencil(b.netlist, b.ports());
    return with_port_conductance(std::move(pencil),
                                 Vector{1e-3, 1e-3, 0.0, 0.0});
  };
  VariationalOptions vopt;
  vopt.pact.internal_modes = 4;
  const auto rom = build_variational_rom(family, 3, vopt);
  EXPECT_EQ(rom.num_params(), 3u);
  const auto exact = pact_reduce(family(Vector(3, 0.0)), PactOptions{4});
  EXPECT_NEAR(
      numeric::relative_difference(rom.evaluate(Vector(3, 0.0)).g,
                                   exact.model.g),
      0.0, 1e-14);
  // Single-parameter perturbations move the model in the right direction:
  // wider wire (w0 > 0) increases capacitance.
  const auto wide = rom.evaluate(Vector{0.3, 0.0, 0.0});
  EXPECT_GT(wide.c.norm(), rom.nominal().c.norm());
}

}  // namespace
}  // namespace lcsf::mor
