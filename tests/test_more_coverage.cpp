// Additional cross-cutting coverage: device symmetry sweeps, the DC
// gmin-stepping rescue, simultaneous-switching stages vs SPICE, and
// numeric odds and ends.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "circuit/mna.hpp"
#include "circuit/technology.hpp"
#include "interconnect/coupled_lines.hpp"
#include "mor/pact.hpp"
#include "mor/poleres.hpp"
#include "mor/variational.hpp"
#include "numeric/lu.hpp"
#include "numeric/orthonormal.hpp"
#include "spice/transient.hpp"
#include "teta/stage.hpp"
#include "timing/cells.hpp"
#include "timing/waveform.hpp"

namespace lcsf {
namespace {

using circuit::kGround;
using circuit::Netlist;
using circuit::SourceWaveform;
using circuit::Technology;
using circuit::technology_180nm;
using numeric::Matrix;
using numeric::Vector;

// Level-1 device symmetry: i(vg; vd, vs) == -i(vg; vs, vd) exactly, for
// both polarities, across a bias sweep.
class MosfetSymmetry : public ::testing::TestWithParam<int> {};

TEST_P(MosfetSymmetry, DrainSourceExchangeNegatesCurrent) {
  const Technology t = technology_180nm();
  std::mt19937 rng(static_cast<unsigned>(GetParam()));
  std::uniform_real_distribution<double> u(-0.2, 2.0);
  for (auto type : {circuit::MosType::kNmos, circuit::MosType::kPmos}) {
    circuit::Mosfet m = type == circuit::MosType::kNmos
                            ? t.make_nmos(1, 2, 3)
                            : t.make_pmos(1, 2, 3);
    for (int k = 0; k < 50; ++k) {
      const double vg = u(rng), vd = u(rng), vs = u(rng);
      const double fwd = circuit::mosfet_eval(m, vg, vd, vs).ids;
      const double rev = circuit::mosfet_eval(m, vg, vs, vd).ids;
      EXPECT_NEAR(fwd, -rev, 1e-12 + 1e-9 * std::abs(fwd))
          << to_string(type) << " " << vg << " " << vd << " " << vs;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MosfetSymmetry, ::testing::Values(1, 2, 3));

// The gmin-stepping homotopy rescues DC on pass-transistor-heavy chains
// that defeat plain Newton from a zero start.
TEST(SpiceDc, XnorChainConverges) {
  const Technology t = technology_180nm();
  Netlist nl;
  const auto vdd = nl.add_node("vdd");
  nl.add_vsource(vdd, kGround, SourceWaveform::dc(t.vdd));
  const auto in = nl.add_node("in");
  nl.add_vsource(in, kGround, SourceWaveform::dc(0.0));
  circuit::NodeId prev = in;
  const auto& xnor = timing::find_cell("XNOR2");
  for (int k = 0; k < 6; ++k) {
    const auto out = nl.add_node("x" + std::to_string(k));
    timing::instantiate_cell(xnor, t, nl, out, {prev, kGround}, vdd);
    prev = out;
  }
  nl.freeze_device_capacitances();
  spice::TransientSimulator sim(nl);
  const auto v = sim.dc_operating_point();
  // XNOR with b = 0 inverts: alternating rail values down the chain.
  double expect = t.vdd;  // !0 = 1
  for (int k = 0; k < 6; ++k) {
    EXPECT_NEAR(v[static_cast<std::size_t>(nl.node("x" + std::to_string(k)))],
                expect, 5e-2)
        << k;
    expect = t.vdd - expect;
  }
}

// Simultaneous switching of coupled drivers: the framework must track
// SPICE when two stages switch together in opposite directions.
TEST(StageEngine, SimultaneousOpposingSwitchingMatchesSpice) {
  const Technology t = technology_180nm();
  const auto up = SourceWaveform::ramp(t.vdd, 0.0, 100e-12, 80e-12);
  const auto down = SourceWaveform::ramp(0.0, t.vdd, 120e-12, 60e-12);
  const double dt = 2e-12, tstop = 1.2e-9;

  interconnect::CoupledLineSpec spec;
  spec.num_lines = 2;
  spec.length = 120e-6;
  spec.segment_length = 1e-6;
  spec.geometry = t.wire;
  auto bundle = interconnect::build_coupled_lines(spec);
  for (auto far : bundle.far_ends) {
    bundle.netlist.add_capacitor(far, kGround, 5e-15);
  }

  teta::StageCircuit stage;
  std::vector<std::size_t> near(2);
  for (auto& p : near) p = stage.add_port();
  for (int k = 0; k < 2; ++k) stage.add_port();
  const std::size_t vdd = stage.add_rail(t.vdd);
  const std::size_t gnd = stage.add_rail(0.0);
  for (int l = 0; l < 2; ++l) {
    const std::size_t in = stage.add_input(l == 0 ? up : down);
    stage.add_mosfet(t.make_nmos(static_cast<int>(near[l]),
                                 static_cast<int>(in),
                                 static_cast<int>(gnd), 6.0));
    stage.add_mosfet(t.make_pmos(static_cast<int>(near[l]),
                                 static_cast<int>(in),
                                 static_cast<int>(vdd), 12.0));
  }
  stage.freeze_device_capacitances();

  auto pencil = interconnect::build_ported_pencil(bundle.netlist,
                                                  bundle.ports());
  Vector gout(4, 0.0);
  const auto chords = stage.port_chord_conductances(t.vdd);
  gout[0] = chords[0];
  gout[1] = chords[1];
  pencil = mor::with_port_conductance(std::move(pencil), gout);
  const auto z = mor::stabilize(mor::extract_pole_residue(
      mor::pact_reduce(pencil, mor::PactOptions{8}).model));

  teta::TetaOptions topt;
  topt.tstop = tstop;
  topt.dt = dt;
  topt.vdd = t.vdd;
  const auto tres = teta::simulate_stage(stage, z, topt);
  ASSERT_TRUE(tres.converged) << tres.failure();

  Netlist nl = bundle.netlist;
  const auto nvdd = nl.add_node("vdd");
  nl.add_vsource(nvdd, kGround, SourceWaveform::dc(t.vdd));
  for (int l = 0; l < 2; ++l) {
    const auto in = nl.add_node("in" + std::to_string(l));
    nl.add_vsource(in, kGround, l == 0 ? up : down);
    nl.add_mosfet(t.make_nmos(bundle.near_ends[static_cast<std::size_t>(l)],
                              in, kGround, 6.0));
    nl.add_mosfet(t.make_pmos(bundle.near_ends[static_cast<std::size_t>(l)],
                              in, nvdd, 12.0));
  }
  nl.freeze_device_capacitances();
  spice::TransientSimulator sim(nl);
  spice::TransientOptions sopt;
  sopt.tstop = tstop;
  sopt.dt = dt;
  const auto sres = sim.run(sopt);
  ASSERT_TRUE(sres.converged) << sres.failure();

  for (int l = 0; l < 2; ++l) {
    const auto sw = sres.waveform(bundle.far_ends[static_cast<std::size_t>(l)]);
    double err = 0.0;
    for (std::size_t k = 0; k < tres.time.size(); ++k) {
      err = std::max(err, std::abs(sw[k].second -
                                   tres.port_voltages[k]
                                       [static_cast<std::size_t>(2 + l)]));
    }
    EXPECT_LT(err, 0.06) << "far end of line " << l;
  }
}

TEST(NumericMore, LuRcondFlagsNearSingular) {
  Matrix good = Matrix::identity(4);
  EXPECT_NEAR(numeric::LuFactorization(good).rcond_estimate(), 1.0, 1e-12);
  Matrix bad = Matrix::identity(4);
  bad(3, 3) = 1e-14;
  EXPECT_LT(numeric::LuFactorization(bad).rcond_estimate(), 1e-12);
}

TEST(NumericMore, OrthonormalizeEmptyAndSingleColumn) {
  auto res = numeric::orthonormalize(Matrix(5, 0));
  EXPECT_EQ(res.rank, 0u);
  Matrix one(4, 1);
  one(2, 0) = 3.0;
  auto r1 = numeric::orthonormalize(one);
  EXPECT_EQ(r1.rank, 1u);
  EXPECT_NEAR(r1.q(2, 0), 1.0, 1e-14);
}

TEST(SourceWaveformMore, PiecewiseLinearityProperty) {
  auto w = SourceWaveform::pwl({{0.0, 1.0}, {1.0, 3.0}, {2.5, -1.0}});
  // Midpoint of any sampled pair inside one segment is the average.
  for (double t0 : {0.1, 0.4, 1.2, 2.0}) {
    const double t1 = t0 + 0.2;
    const double mid = w.value(0.5 * (t0 + t1));
    EXPECT_NEAR(mid, 0.5 * (w.value(t0) + w.value(t1)), 1e-12);
  }
}

TEST(MnaMore, SourceVectorTracksWaveforms) {
  Netlist nl;
  const auto a = nl.add_node();
  nl.add_resistor(a, kGround, 100.0);
  nl.add_vsource(a, kGround, SourceWaveform::ramp(0.0, 2.0, 0.0, 1.0));
  const auto sys = circuit::build_mna(nl);
  const auto b0 = circuit::source_vector(nl, sys, 0.0);
  const auto b1 = circuit::source_vector(nl, sys, 0.5);
  EXPECT_DOUBLE_EQ(b0[sys.vsource_index(0)], 0.0);
  EXPECT_DOUBLE_EQ(b1[sys.vsource_index(0)], 1.0);
}

}  // namespace
}  // namespace lcsf
