// Tests for the recursive convolver and the Successive-Chords stage engine.
// The key validations compare TETA against the conventional SPICE-
// substitute on identical stages.
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/netlist.hpp"
#include "circuit/technology.hpp"
#include "interconnect/coupled_lines.hpp"
#include "mor/pact.hpp"
#include "mor/poleres.hpp"
#include "mor/variational.hpp"
#include "sim/diagnostics.hpp"
#include "spice/transient.hpp"
#include "teta/convolution.hpp"
#include "teta/stage.hpp"

namespace lcsf::teta {
namespace {

using circuit::kGround;
using circuit::SourceWaveform;
using circuit::Technology;
using circuit::technology_180nm;
using numeric::Complex;
using numeric::Matrix;
using numeric::Vector;

// One-port single-pole model: Z(s) = r/(s-p), i.e. a parallel RC with
// R = -r/p and C = 1/r.
mor::PoleResidueModel single_pole(double r, double p) {
  Matrix direct(1, 1);
  numeric::ComplexMatrix res(1, 1);
  res(0, 0) = r;
  return mor::PoleResidueModel(1, direct, {Complex{p, 0.0}}, {res});
}

TEST(Convolver, StepResponseMatchesAnalytic) {
  const double r = 1e12;  // 1/C with C = 1 pF
  const double p = -1e9;  // R = 1k
  mor::PoleResidueModel z = single_pole(r, p);
  const double dt = 10e-12;
  RecursiveConvolver conv(z, dt);

  // Current step 1 mA applied from t=0 (current ramps up over first step,
  // linear inside steps thereafter -- exact recursion, so compare against
  // the analytic response to the trapezoid-shaped current).
  const double i0 = 1e-3;
  double t = 0.0;
  for (int k = 1; k <= 1200; ++k) {
    t = k * dt;
    const Vector inow{i0};  // constant after first step
    // v = H i + hist
    Vector hist = conv.history();
    const double v = conv.step_impedance()(0, 0) * inow[0] + hist[0];
    conv.advance(inow);

    // Analytic: current ramps 0->i0 over [0, dt], then constant.
    // v(t) = r * int_0^t e^{p(t-tau)} i(tau) dtau.
    auto vexact = [&](double tt) {
      const double h = dt;
      if (tt <= h) {
        const double b = i0 / h;
        return r * b * (std::exp(p * tt) - 1.0 - p * tt) / (p * p) * 1.0;
      }
      // Ramp contribution shifted + constant tail.
      const double b = i0 / h;
      const double ramp_at_h = b * (std::exp(p * h) - 1.0 - p * h) / (p * p);
      const double decay = std::exp(p * (tt - h));
      // State after ramp propagates; constant current from h to tt:
      const double steady = i0 * (std::exp(p * (tt - h)) - 1.0) / p;
      return r * (ramp_at_h * decay + steady);
    };
    EXPECT_NEAR(v, vexact(t), 2e-4 * std::abs(vexact(t)) + 1e-9)
        << "t = " << t;
  }
  // Final value after 12 time constants: v -> Z(0) * i0 = (-r/p) i0 = 1 V.
  Vector hist = conv.history();
  const double v = conv.step_impedance()(0, 0) * i0 + hist[0];
  EXPECT_NEAR(v, 1.0, 1e-4);
}

TEST(Convolver, DcInitializationHoldsSteadyState) {
  mor::PoleResidueModel z = single_pole(5e11, -2e9);
  RecursiveConvolver conv(z, 5e-12);
  const double i0 = 2e-3;
  conv.initialize_dc(Vector{i0});
  const double vdc = conv.dc_impedance()(0, 0) * i0;
  for (int k = 0; k < 50; ++k) {
    Vector hist = conv.history();
    const double v = conv.step_impedance()(0, 0) * i0 + hist[0];
    EXPECT_NEAR(v, vdc, 1e-9 * std::abs(vdc));
    conv.advance(Vector{i0});
  }
}

TEST(Convolver, RejectsUnstableModel) {
  mor::PoleResidueModel z = single_pole(1e12, +1e9);
  EXPECT_THROW(RecursiveConvolver(z, 1e-12), sim::SimulationError);
}

TEST(Convolver, ComplexPairGivesRealRingingResponse) {
  // Conjugate pole pair -> damped oscillation, strictly real output.
  Matrix direct(1, 1);
  numeric::ComplexMatrix r1(1, 1), r2(1, 1);
  r1(0, 0) = Complex{5e11, 1e11};
  r2(0, 0) = Complex{5e11, -1e11};
  mor::PoleResidueModel z(1, direct,
                          {Complex{-1e9, 5e9}, Complex{-1e9, -5e9}},
                          {r1, r2});
  RecursiveConvolver conv(z, 10e-12);
  double vmin = 1e9, vmax = -1e9;
  for (int k = 0; k < 400; ++k) {
    Vector hist = conv.history();
    const double v = conv.step_impedance()(0, 0) * 1e-3 + hist[0];
    vmin = std::min(vmin, v);
    vmax = std::max(vmax, v);
    conv.advance(Vector{1e-3});
  }
  EXPECT_GT(vmax, 0.0);
  EXPECT_LT(vmin, vmax);  // oscillatory settle
  EXPECT_TRUE(std::isfinite(vmin));
}

TEST(CompressPwl, KeepsCornersDropsCollinear) {
  std::vector<std::pair<double, double>> samples;
  for (int k = 0; k <= 100; ++k) {
    const double t = k * 1e-12;
    samples.emplace_back(t, t < 50e-12 ? 0.0 : (t - 50e-12) * 1e10);
  }
  auto compact = compress_pwl(samples, 1e-6);
  EXPECT_LT(compact.size(), 6u);
  // Interpolating the compact form reproduces every sample.
  auto wave = circuit::SourceWaveform::pwl(compact);
  for (const auto& [t, v] : samples) {
    EXPECT_NEAR(wave.value(t), v, 2e-6);
  }
}

TEST(StageCircuit, ChordConductances) {
  Technology t = technology_180nm();
  StageCircuit s;
  const std::size_t out = s.add_port();
  const std::size_t in = s.add_input(SourceWaveform::dc(0.0));
  const std::size_t vdd = s.add_rail(t.vdd);
  const std::size_t gnd = s.add_rail(0.0);
  s.add_mosfet(t.make_nmos(static_cast<int>(out), static_cast<int>(in),
                           static_cast<int>(gnd), 4.0));
  s.add_mosfet(t.make_pmos(static_cast<int>(out), static_cast<int>(in),
                           static_cast<int>(vdd), 8.0));
  Vector g = s.port_chord_conductances(t.vdd);
  ASSERT_EQ(g.size(), 1u);
  const double gn =
      t.nmos.kp * 4.0 * (t.vdd - t.nmos.vt0);
  const double gp =
      t.pmos.kp * 8.0 * (t.vdd - t.pmos.vt0);
  EXPECT_NEAR(g[0], gn + gp, 1e-12);

  // Chords are variation-independent by construction.
  StageCircuit s2;
  const std::size_t out2 = s2.add_port();
  const std::size_t in2 = s2.add_input(SourceWaveform::dc(0.0));
  const std::size_t gnd2 = s2.add_rail(0.0);
  circuit::Mosfet m = t.make_nmos(static_cast<int>(out2),
                                  static_cast<int>(in2),
                                  static_cast<int>(gnd2), 4.0);
  m.delta_vt = 0.1;
  m.delta_l = 0.01e-6;
  s2.add_mosfet(m);
  EXPECT_NEAR(s2.port_chord_conductances(t.vdd)[0], gn, 1e-12);
}

// Build the same inverter + RC-pi load twice: as a SPICE netlist and as a
// TETA stage with an exact (untruncated) pole/residue load.
struct InverterVsSpice {
  Technology tech = technology_180nm();
  double rload = 500.0, cload1 = 20e-15, cload2 = 30e-15;
  double wn = 6.0, wp = 12.0;
  SourceWaveform input =
      SourceWaveform::ramp(0.0, 1.8, 50e-12, 80e-12);

  spice::TransientResult run_spice(double tstop, double dt) const {
    circuit::Netlist nl;
    const auto in = nl.add_node("in");
    const auto out = nl.add_node("out");
    const auto far = nl.add_node("far");
    const auto vdd = nl.add_node("vdd");
    nl.add_vsource(vdd, kGround, SourceWaveform::dc(tech.vdd));
    nl.add_vsource(in, kGround, input);
    nl.add_mosfet(tech.make_nmos(out, in, kGround, wn));
    nl.add_mosfet(tech.make_pmos(out, in, vdd, wp));
    nl.add_capacitor(out, kGround, cload1);
    nl.add_resistor(out, far, rload);
    nl.add_capacitor(far, kGround, cload2);
    nl.freeze_device_capacitances();
    spice::TransientSimulator sim(nl);
    spice::TransientOptions opt;
    opt.tstop = tstop;
    opt.dt = dt;
    return sim.run(opt);
  }

  TetaResult run_teta(double tstop, double dt) const {
    // Load: ports {out, far}; R/C elements only. The driver's own device
    // caps stay in the stage.
    circuit::Netlist load;
    const auto out = load.add_node("out");
    const auto far = load.add_node("far");
    load.add_capacitor(out, kGround, cload1);
    load.add_resistor(out, far, rload);
    load.add_capacitor(far, kGround, cload2);

    StageCircuit stage;
    const std::size_t p_out = stage.add_port();
    (void)stage.add_port();  // far port, observed only
    const std::size_t in = stage.add_input(input);
    const std::size_t vdd = stage.add_rail(tech.vdd);
    const std::size_t gnd = stage.add_rail(0.0);
    stage.add_mosfet(tech.make_nmos(static_cast<int>(p_out),
                                    static_cast<int>(in),
                                    static_cast<int>(gnd), wn));
    stage.add_mosfet(tech.make_pmos(static_cast<int>(p_out),
                                    static_cast<int>(in),
                                    static_cast<int>(vdd), wp));
    stage.freeze_device_capacitances();

    auto pencil = interconnect::build_ported_pencil(load, {out, far});
    pencil = mor::with_port_conductance(
        std::move(pencil), stage.port_chord_conductances(tech.vdd));
    // Exact (full-order) reduction -> pole/residue.
    mor::PactOptions popt;
    popt.internal_modes = pencil.g.rows();
    auto rom = mor::pact_reduce(pencil, popt).model;
    auto z = mor::extract_pole_residue(rom);

    TetaOptions topt;
    topt.tstop = tstop;
    topt.dt = dt;
    topt.vdd = tech.vdd;
    return simulate_stage(stage, z, topt);
  }
};

TEST(StageEngine, InverterMatchesSpice) {
  InverterVsSpice fix;
  const double tstop = 1.2e-9;
  const double dt = 1e-12;
  auto sres = fix.run_spice(tstop, dt);
  ASSERT_TRUE(sres.converged) << sres.failure();
  auto tres = fix.run_teta(tstop, dt);
  ASSERT_TRUE(tres.converged) << tres.failure();

  // Compare the driven port and the far node over the full waveform.
  auto sw_out = sres.waveform(2);  // "out" was second added node
  auto sw_far = sres.waveform(3);
  ASSERT_EQ(sw_out.size(), tres.time.size());
  double max_err_out = 0.0, max_err_far = 0.0;
  for (std::size_t k = 0; k < tres.time.size(); ++k) {
    max_err_out =
        std::max(max_err_out,
                 std::abs(sw_out[k].second - tres.port_voltages[k][0]));
    max_err_far =
        std::max(max_err_far,
                 std::abs(sw_far[k].second - tres.port_voltages[k][1]));
  }
  // Same device model, same timestep, both second-order integrators.
  EXPECT_LT(max_err_out, 0.02) << "driven port diverges from SPICE";
  EXPECT_LT(max_err_far, 0.02) << "far port diverges from SPICE";
}

TEST(StageEngine, NandStackWithInternalNodeMatchesSpice) {
  Technology t = technology_180nm();
  const SourceWaveform a_in =
      SourceWaveform::ramp(0.0, t.vdd, 50e-12, 80e-12);
  const double cload = 25e-15;
  const double tstop = 1.2e-9, dt = 1e-12;

  // SPICE reference: NAND2 with input B tied high, A switching.
  circuit::Netlist nl;
  const auto in_a = nl.add_node("a");
  const auto out = nl.add_node("out");
  const auto mid = nl.add_node("mid");
  const auto vdd = nl.add_node("vdd");
  nl.add_vsource(vdd, kGround, SourceWaveform::dc(t.vdd));
  nl.add_vsource(in_a, kGround, a_in);
  nl.add_mosfet(t.make_nmos(out, in_a, mid, 8.0));
  nl.add_mosfet(t.make_nmos(mid, vdd, kGround, 8.0));  // B = 1
  nl.add_mosfet(t.make_pmos(out, in_a, vdd, 8.0));
  nl.add_mosfet(t.make_pmos(out, vdd, vdd, 8.0));  // B = 1: off
  nl.add_capacitor(out, kGround, cload);
  nl.freeze_device_capacitances();
  spice::TransientSimulator sim(nl);
  spice::TransientOptions sopt;
  sopt.tstop = tstop;
  sopt.dt = dt;
  auto sres = sim.run(sopt);
  ASSERT_TRUE(sres.converged) << sres.failure();

  // TETA stage with the series stack's mid node as an internal node.
  StageCircuit stage;
  const std::size_t p_out = stage.add_port();
  const std::size_t s_a = stage.add_input(a_in);
  const std::size_t s_vdd = stage.add_rail(t.vdd);
  const std::size_t s_gnd = stage.add_rail(0.0);
  const std::size_t s_mid = stage.add_internal();
  stage.add_mosfet(t.make_nmos(static_cast<int>(p_out),
                               static_cast<int>(s_a),
                               static_cast<int>(s_mid), 8.0));
  stage.add_mosfet(t.make_nmos(static_cast<int>(s_mid),
                               static_cast<int>(s_vdd),
                               static_cast<int>(s_gnd), 8.0));
  stage.add_mosfet(t.make_pmos(static_cast<int>(p_out),
                               static_cast<int>(s_a),
                               static_cast<int>(s_vdd), 8.0));
  stage.add_mosfet(t.make_pmos(static_cast<int>(p_out),
                               static_cast<int>(s_vdd),
                               static_cast<int>(s_vdd), 8.0));
  stage.freeze_device_capacitances();

  circuit::Netlist load;
  const auto lout = load.add_node("out");
  load.add_capacitor(lout, kGround, cload);
  auto pencil = interconnect::build_ported_pencil(load, {lout});
  pencil = mor::with_port_conductance(
      std::move(pencil), stage.port_chord_conductances(t.vdd));
  auto rom = mor::pact_reduce(pencil, mor::PactOptions{4}).model;
  auto z = mor::extract_pole_residue(rom);

  TetaOptions topt;
  topt.tstop = tstop;
  topt.dt = dt;
  topt.vdd = t.vdd;
  auto tres = simulate_stage(stage, z, topt);
  ASSERT_TRUE(tres.converged) << tres.failure();

  auto sw = sres.waveform(out);
  double max_err = 0.0;
  for (std::size_t k = 0; k < tres.time.size(); ++k) {
    max_err = std::max(max_err,
                       std::abs(sw[k].second - tres.port_voltages[k][0]));
  }
  EXPECT_LT(max_err, 0.03);
}

TEST(StageEngine, ReportsIterationBudgetExhaustion) {
  InverterVsSpice fix;
  // Force failure with an absurdly small iteration budget.
  circuit::Netlist load;
  const auto out = load.add_node("out");
  load.add_capacitor(out, kGround, fix.cload1);
  load.add_resistor(out, kGround, 1e5);
  StageCircuit stage;
  const std::size_t p_out = stage.add_port();
  const std::size_t in = stage.add_input(fix.input);
  const std::size_t vdd = stage.add_rail(fix.tech.vdd);
  const std::size_t gnd = stage.add_rail(0.0);
  stage.add_mosfet(fix.tech.make_nmos(static_cast<int>(p_out),
                                      static_cast<int>(in),
                                      static_cast<int>(gnd), 6.0));
  stage.add_mosfet(fix.tech.make_pmos(static_cast<int>(p_out),
                                      static_cast<int>(in),
                                      static_cast<int>(vdd), 12.0));
  auto pencil = interconnect::build_ported_pencil(load, {out});
  pencil = mor::with_port_conductance(
      std::move(pencil), stage.port_chord_conductances(fix.tech.vdd));
  auto z = mor::extract_pole_residue(
      mor::pact_reduce(pencil, mor::PactOptions{2}).model);
  TetaOptions topt;
  topt.tstop = 0.2e-9;
  topt.dt = 1e-12;
  topt.vdd = fix.tech.vdd;
  topt.max_sc_iters = 1;
  auto res = simulate_stage(stage, z, topt);
  EXPECT_FALSE(res.converged);
  EXPECT_TRUE(res.diag.failed());
  // With a one-iteration budget the DC solve exhausts it first; either
  // classification is an iteration-budget failure, never kOther.
  EXPECT_TRUE(res.diag.kind == sim::FailureKind::kDcFailure ||
              res.diag.kind == sim::FailureKind::kNewtonNonConvergence)
      << res.failure();
}

}  // namespace
}  // namespace lcsf::teta
