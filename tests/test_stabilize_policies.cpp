// Focused tests of the stabilization policies and the variational
// library's injection-matrix sensitivity.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "interconnect/example1.hpp"
#include "mor/poleres.hpp"
#include "mor/prima.hpp"
#include "mor/variational.hpp"

namespace lcsf::mor {
namespace {

using numeric::Complex;
using numeric::Matrix;
using numeric::Vector;

PoleResidueModel with_far_unstable_pole(double pole_mag, double residue) {
  Matrix direct(1, 1);
  std::vector<Complex> poles{Complex{-1e9, 0.0}, Complex{-4e9, 0.0},
                             Complex{pole_mag, 0.0}};
  std::vector<numeric::ComplexMatrix> residues;
  for (double r : {2e9, 1e9, residue}) {
    numeric::ComplexMatrix m(1, 1);
    m(0, 0) = r;
    residues.push_back(m);
  }
  return PoleResidueModel(1, direct, poles, residues);
}

// For far-out unstable poles with small residues -- the paper's common
// case -- beta scaling and direct compensation coincide (both converge to
// "just drop it").
TEST(StabilizePolicies, CoincideForFarSmallResiduePoles) {
  const auto model = with_far_unstable_pole(1e14, 1e7);
  const auto beta = stabilize(model, nullptr, StabilizePolicy::kBetaScaling);
  const auto direct =
      stabilize(model, nullptr, StabilizePolicy::kDirectCompensation);
  for (double f : {1e6, 1e8, 1e9, 1e10}) {
    const Complex s{0.0, 2 * M_PI * f};
    const Complex zb = beta.eval(0, 0, s);
    const Complex zd = direct.eval(0, 0, s);
    EXPECT_NEAR(std::abs(zb - zd), 0.0, 1e-5 * std::abs(zd)) << f;
  }
}

// ... and diverge when the dropped pole carries weight: direct keeps the
// stable poles untouched, beta rescales them.
TEST(StabilizePolicies, DivergeForHeavyDroppedPole) {
  const auto model = with_far_unstable_pole(5e9, 3e9);
  StabilizationReport rep_b, rep_d;
  const auto beta = stabilize(model, &rep_b, StabilizePolicy::kBetaScaling);
  const auto direct =
      stabilize(model, &rep_d, StabilizePolicy::kDirectCompensation);
  EXPECT_NE(rep_b.beta(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(rep_d.beta(0, 0), 1.0);
  // Both preserve DC exactly.
  const Complex dc = model.eval(0, 0, Complex{0.0, 0.0});
  EXPECT_NEAR(beta.eval(0, 0, {0.0, 0.0}).real(), dc.real(),
              1e-9 * std::abs(dc.real()));
  EXPECT_NEAR(direct.eval(0, 0, {0.0, 0.0}).real(), dc.real(),
              1e-9 * std::abs(dc.real()));
  // But they differ well above DC.
  const Complex s{0.0, 2 * M_PI * 3e9};
  EXPECT_GT(std::abs(beta.eval(0, 0, s) - direct.eval(0, 0, s)),
            0.01 * std::abs(direct.eval(0, 0, s)));
}

TEST(StabilizePolicies, ComplexUnstablePairDropped) {
  Matrix direct(1, 1);
  std::vector<Complex> poles{Complex{-2e9, 0.0}, Complex{1e9, 6e9},
                             Complex{1e9, -6e9}};
  std::vector<numeric::ComplexMatrix> residues(3,
                                               numeric::ComplexMatrix(1, 1));
  residues[0](0, 0) = 4e9;
  residues[1](0, 0) = Complex{1e8, 5e7};
  residues[2](0, 0) = Complex{1e8, -5e7};
  PoleResidueModel model(1, direct, poles, residues);
  StabilizationReport rep;
  const auto st = stabilize(model, &rep);
  EXPECT_EQ(rep.dropped_poles, 2u);
  EXPECT_EQ(st.num_poles(), 1u);
  EXPECT_EQ(st.count_unstable(), 0u);
  // DC preserved.
  EXPECT_NEAR(st.eval(0, 0, {0, 0}).real(),
              model.eval(0, 0, {0, 0}).real(),
              1e-9 * std::abs(model.eval(0, 0, {0, 0}).real()));
}

// PRIMA's projected injection matrix Br varies with the parameter; the
// library must carry its sensitivity.
TEST(VariationalInjection, PrimaBSensitivityIsNonzero) {
  auto family = scalar_family([](double p) {
    auto pencil = interconnect::example1_pencil_family()(p);
    return with_port_conductance(std::move(pencil), Vector{1e-2});
  });
  VariationalOptions vopt;
  vopt.method = ReductionMethod::kPrima;
  vopt.library = LibraryMode::kFullReduction;
  vopt.prima.block_moments = 3;
  vopt.fd_step = 0.02;
  const auto rom = build_variational_rom(family, 1, vopt);
  EXPECT_GT(rom.sensitivity(0).b.norm(), 0.0);
  const auto shifted = rom.evaluate(Vector{0.05});
  EXPECT_GT((shifted.b - rom.nominal().b).norm(), 0.0);
}

}  // namespace
}  // namespace lcsf::mor
