// Tests for timing-yield estimation and corner-pessimism helpers.
#include <gtest/gtest.h>

#include <cmath>

#include "sim/diagnostics.hpp"
#include "stats/random.hpp"
#include "stats/yield.hpp"

namespace lcsf::stats {
namespace {

TEST(Yield, NormalCdfAnchors) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.0), 0.8413447460685429, 1e-9);
  EXPECT_NEAR(normal_cdf(-3.0), 0.0013498980316301, 1e-9);
}

TEST(Yield, EmpiricalYield) {
  std::vector<double> delays{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(empirical_yield(delays, 2.5), 0.5);
  EXPECT_DOUBLE_EQ(empirical_yield(delays, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(empirical_yield(delays, 4.0), 1.0);
  EXPECT_THROW(empirical_yield({}, 1.0), sim::SimulationError);
}

TEST(Yield, GaussianYieldAndInverse) {
  const double nominal = 300e-12;
  const double sigma = 10e-12;
  EXPECT_NEAR(gaussian_yield(nominal, sigma, nominal), 0.5, 1e-12);
  EXPECT_NEAR(gaussian_yield(nominal, sigma, nominal + 2 * sigma),
              0.9772498680518208, 1e-9);
  // Round trip.
  for (double y : {0.1, 0.5, 0.9, 0.99}) {
    const double period = gaussian_period_for_yield(nominal, sigma, y);
    EXPECT_NEAR(gaussian_yield(nominal, sigma, period), y, 1e-9);
  }
  EXPECT_DOUBLE_EQ(gaussian_yield(nominal, 0.0, nominal + 1e-15), 1.0);
  EXPECT_THROW(gaussian_yield(nominal, -1.0, nominal),
               sim::SimulationError);
}

TEST(Yield, PeriodForYieldMatchesGaussianOnLargeSample) {
  Rng rng(3);
  std::vector<double> delays;
  for (int k = 0; k < 50000; ++k) delays.push_back(rng.normal(1.0, 0.1));
  for (double y : {0.5, 0.9, 0.99}) {
    const double emp = period_for_yield(delays, y);
    const double gauss = gaussian_period_for_yield(1.0, 0.1, y);
    EXPECT_NEAR(emp, gauss, 0.01) << y;
  }
  EXPECT_THROW(period_for_yield({}, 0.5), sim::SimulationError);
  EXPECT_THROW(period_for_yield({1.0}, 1.5), sim::SimulationError);
}

TEST(Yield, EmpiricalYieldCurveMatchesPointwise) {
  std::vector<double> delays{1.0, 2.0, 3.0, 4.0};
  std::vector<double> periods{0.5, 2.5, 4.0};
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    const auto curve = empirical_yield_curve(delays, periods, threads);
    ASSERT_EQ(curve.size(), periods.size());
    for (std::size_t k = 0; k < periods.size(); ++k) {
      EXPECT_DOUBLE_EQ(curve[k], empirical_yield(delays, periods[k]));
    }
  }
  EXPECT_THROW(empirical_yield_curve({}, periods), sim::SimulationError);
}

TEST(Yield, MonteCarloYieldEstimatorIsThreadCountInvariant) {
  // f(w) = w0 with w0 ~ N(0,1): P(f <= 1) = Phi(1) ~= 0.841.
  std::vector<VariationSource> src(1);
  auto f = [](const numeric::Vector& w) { return w[0]; };
  MonteCarloOptions opt;
  opt.samples = 2000;
  opt.seed = 31;

  opt.threads = 1;
  const auto serial = monte_carlo_yield(f, src, 1.0, opt);
  EXPECT_NEAR(serial.yield, 0.8413, 0.03);
  EXPECT_NEAR(serial.std_error,
              std::sqrt(serial.yield * (1.0 - serial.yield) / 2000.0),
              1e-12);

  opt.threads = 8;
  const auto par = monte_carlo_yield(f, src, 1.0, opt);
  EXPECT_EQ(serial.yield, par.yield);
  EXPECT_EQ(serial.samples().values, par.samples().values);
}

TEST(Yield, CornerPessimism) {
  // Corner margin 30 ps vs statistical margin 10 ps -> 3x pessimistic.
  EXPECT_NEAR(corner_pessimism(330e-12, 310e-12, 300e-12), 3.0, 1e-9);
  EXPECT_THROW(corner_pessimism(330e-12, 290e-12, 300e-12),
               sim::SimulationError);
}

}  // namespace
}  // namespace lcsf::stats
