// Tests for the importance-sampled yield estimator (stats/importance.hpp
// + Runner::run_yield_is): thread-count invariance, agreement with plain
// Monte Carlo, the zero-shift degenerate identity, fail-soft parity and
// the control-variate path. The toy problems are linear or mildly
// nonlinear functions of a few sources, so exact tail probabilities are
// known in closed form.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "obs/registry.hpp"
#include "sim/diagnostics.hpp"
#include "stats/importance.hpp"
#include "stats/runner.hpp"
#include "stats/yield.hpp"

namespace lcsf::stats {
namespace {

using numeric::Vector;

/// Linear toy delay: D = 100 + sum_d w_d over n standard-normal sources,
/// so D ~ N(100, sqrt(n)) and P(D > T) = Phi(-(T - 100)/sqrt(n)) exactly.
std::vector<VariationSource> normal_sources(std::size_t n) {
  std::vector<VariationSource> src(n);
  for (auto& s : src) {
    s.kind = VariationSource::Kind::kNormal;
    s.mean = 0.0;
    s.sigma = 1.0;
  }
  return src;
}

double linear_delay(const Vector& w) {
  double d = 100.0;
  for (const double x : w) d += x;
  return d;
}

RunOptions base_options(std::size_t samples, std::size_t threads = 1) {
  RunOptions opt;
  opt.samples = samples;
  opt.seed = 7;
  opt.exec.threads = threads;
  return opt;
}

TEST(YieldIs, BitwiseThreadInvariance) {
  const auto src = normal_sources(4);
  const double T = 106.0;  // 3-sigma tail: P_f ~ 1.35e-3
  IsYieldEstimate ref;
  for (std::size_t variant = 0; variant < 2; ++variant) {
    for (const std::size_t threads : {1u, 2u, 8u}) {
      RunOptions opt = base_options(400, threads);
      opt.importance.pilot_samples = variant == 1 ? 100 : 0;
      opt.importance.mixture_nominal = variant == 1 ? 0.1 : 0.0;
      const auto est = Runner(opt).run_yield_is(
          [](const Vector& w) { return linear_delay(w); }, src, T);
      if (threads == 1) {
        ref = est;
        continue;
      }
      // Bitwise: the estimate, every weight and every value.
      EXPECT_EQ(ref.yield_loss, est.yield_loss) << threads;
      EXPECT_EQ(ref.std_error, est.std_error) << threads;
      EXPECT_EQ(ref.ess, est.ess) << threads;
      ASSERT_EQ(ref.values.size(), est.values.size());
      for (std::size_t i = 0; i < ref.values.size(); ++i) {
        EXPECT_EQ(ref.values[i], est.values[i]) << i;
        EXPECT_EQ(ref.weights[i], est.weights[i]) << i;
      }
      for (std::size_t d = 0; d < src.size(); ++d) {
        EXPECT_EQ(ref.surrogate.shift[d], est.surrogate.shift[d]) << d;
      }
    }
  }
}

TEST(YieldIs, ObsCountersMergeDeterministically) {
  const auto src = normal_sources(4);
  auto run = [&](std::size_t threads) {
    obs::Registry reg;
    RunOptions opt = base_options(300, threads);
    opt.importance.pilot_samples = 60;
    opt.registry = &reg;
    (void)Runner(opt).run_yield_is(
        [](const Vector& w) { return linear_delay(w); }, src, 106.0);
    return reg.to_json(false);  // excludes wall-clock metrics
  };
  const std::string serial = run(1);
  EXPECT_EQ(serial, run(2));
  EXPECT_EQ(serial, run(8));
  EXPECT_NE(serial.find("stats.yield_is.samples"), std::string::npos);
  EXPECT_NE(serial.find("stats.yield_is.likelihood_ratio"),
            std::string::npos);
  EXPECT_NE(serial.find("stats.yield_is.ess"), std::string::npos);
}

TEST(YieldIs, AgreesWithExactTailAndBeatsMcVariance) {
  const std::size_t n = 4;
  const auto src = normal_sources(n);
  const double T = 106.0;
  const double exact = normal_cdf(-(T - 100.0) / std::sqrt(4.0));
  RunOptions opt = base_options(2000);
  const auto est = Runner(opt).run_yield_is(
      [](const Vector& w) { return linear_delay(w); }, src, T);
  // Within 4 standard errors of the exact tail probability.
  EXPECT_GT(est.std_error, 0.0);
  EXPECT_NEAR(est.yield_loss, exact, 4.0 * est.std_error);
  EXPECT_NEAR(est.yield, 1.0 - exact, 4.0 * est.std_error);
  // The same budget of plain MC has SE sqrt(p(1-p)/n) -- IS must beat it
  // by a wide margin on a 3-sigma tail.
  const double mc_se = std::sqrt(exact * (1.0 - exact) / 2000.0);
  EXPECT_LT(est.std_error, mc_se / 2.0);
  // ESS is reported and sane.
  EXPECT_GT(est.ess, 0.0);
  EXPECT_LE(est.ess, 2000.0);
  // The surrogate of a linear f is exact: beta matches the true margin.
  EXPECT_NEAR(est.surrogate.beta, 3.0, 1e-6);
}

TEST(YieldIs, ZeroShiftScaleDegeneratesToPlainMcWeights) {
  const auto src = normal_sources(3);
  RunOptions opt = base_options(500);
  opt.importance.shift_scale = 0.0;
  const auto est = Runner(opt).run_yield_is(
      [](const Vector& w) { return linear_delay(w); }, src, 104.0);
  ASSERT_FALSE(est.weights.empty());
  for (const double w : est.weights) {
    EXPECT_EQ(w, 1.0);  // exactly, not approximately
  }
  EXPECT_EQ(est.ess, static_cast<double>(est.values.size()));
}

TEST(YieldIs, NegativeMarginDegeneratesToPlainMc) {
  // Nominal already fails the clock: margin <= 0, no shift is derived.
  const auto src = normal_sources(3);
  const auto est = Runner(base_options(300)).run_yield_is(
      [](const Vector& w) { return linear_delay(w); }, src, 90.0);
  for (const double w : est.weights) EXPECT_EQ(w, 1.0);
  EXPECT_NEAR(est.yield_loss, 1.0, 0.05);  // essentially always failing
}

TEST(YieldIs, PilotRefinementStaysUnbiased) {
  const auto src = normal_sources(4);
  const double T = 106.0;
  const double exact = normal_cdf(-3.0);
  RunOptions opt = base_options(2000);
  opt.importance.pilot_samples = 300;
  const auto est = Runner(opt).run_yield_is(
      [](const Vector& w) { return linear_delay(w); }, src, T);
  EXPECT_EQ(est.pilot_used, 300u);
  EXPECT_NEAR(est.yield_loss, exact, 4.0 * est.std_error);
}

TEST(YieldIs, ControlVariateReducesVarianceOnMildNonlinearity) {
  const auto src = normal_sources(4);
  const double T = 106.0;
  // Mild quadratic bend so the surrogate is good but not exact and the
  // CV has genuine residual noise to cancel.
  auto f = [](const Vector& w) {
    double d = linear_delay(w);
    for (const double x : w) d += 0.02 * x * x;
    return d;
  };
  RunOptions opt = base_options(2000);
  const auto plain = Runner(opt).run_yield_is(f, src, T);
  opt.importance.control_variate = true;
  const auto cv = Runner(opt).run_yield_is(f, src, T);
  EXPECT_TRUE(cv.control_variate_used);
  EXPECT_NEAR(cv.control_expectation, normal_cdf(-cv.surrogate.beta),
              1e-12);
  EXPECT_LT(cv.std_error, plain.std_error);
  // Both stay within each other's combined confidence band.
  EXPECT_NEAR(cv.yield_loss, plain.yield_loss,
              4.0 * (cv.std_error + plain.std_error));
}

TEST(YieldIs, ControlVariateRejectsUniformSources) {
  auto src = normal_sources(2);
  src[1].kind = VariationSource::Kind::kUniform;
  RunOptions opt = base_options(100);
  opt.importance.control_variate = true;
  try {
    (void)Runner(opt).run_yield_is(
        [](const Vector& w) { return linear_delay(w); }, src, 103.0);
    FAIL() << "expected kInvalidInput";
  } catch (const sim::SimulationError& e) {
    EXPECT_EQ(e.kind(), sim::FailureKind::kInvalidInput);
  }
}

TEST(YieldIs, UniformSourcesAreNeverShifted) {
  auto src = normal_sources(3);
  src[2].kind = VariationSource::Kind::kUniform;
  const auto est = Runner(base_options(500)).run_yield_is(
      [](const Vector& w) { return linear_delay(w); }, src, 104.0);
  EXPECT_EQ(est.surrogate.shift[2], 0.0);
  EXPECT_GT(std::abs(est.surrogate.shift[0]), 0.0);
}

TEST(YieldIs, FailSoftSkipsMatchMcDiscipline) {
  // A sample whose first coordinate exceeds 2 diverges; under kSkip both
  // engines must classify and exclude it, never die.
  const auto src = normal_sources(3);
  auto f = [](const Vector& w) {
    if (w[0] > 2.0) {
      throw sim::SimulationError(sim::FailureKind::kBlowUp, "toy blow-up");
    }
    return linear_delay(w);
  };
  RunOptions opt = base_options(400, 4);
  opt.exec.on_failure = FailurePolicy::kSkip;
  opt.importance.shift_scale = 0.0;  // sample the nominal distribution
  const auto is = Runner(opt).run_yield_is(f, src, 104.0);
  const auto mc = Runner(opt).run_monte_carlo(f, src);
  // Identical zero-shift streams would diverge identically -- but the IS
  // engine draws from its own stream family, so compare the *policy*:
  // attempted bookkeeping, classified kinds, and survivor counts add up.
  EXPECT_EQ(is.failures.attempted, 400u);
  EXPECT_GT(is.failures.failed(), 0u);
  EXPECT_GT(mc.failures.failed(), 0u);
  EXPECT_EQ(is.failures.failed() + is.failures.survived, 400u);
  for (const auto& rec : is.failures.failures) {
    EXPECT_EQ(rec.kind, sim::FailureKind::kBlowUp);
  }
  EXPECT_EQ(is.values.size(), is.failures.survived);
  // Thread invariance holds for the failure set too.
  opt.exec.threads = 1;
  const auto serial = Runner(opt).run_yield_is(f, src, 104.0);
  ASSERT_EQ(serial.failures.failures.size(), is.failures.failures.size());
  for (std::size_t i = 0; i < serial.failures.failures.size(); ++i) {
    EXPECT_EQ(serial.failures.failures[i].index,
              is.failures.failures[i].index);
  }
  EXPECT_EQ(serial.yield_loss, is.yield_loss);
}

TEST(YieldIs, AllSamplesFailedConvention) {
  const auto src = normal_sources(2);
  auto f = [](const Vector&) -> double {
    throw sim::SimulationError(sim::FailureKind::kBlowUp, "always");
  };
  RunOptions opt = base_options(50);
  opt.exec.on_failure = FailurePolicy::kSkip;
  opt.importance.shift_scale = 0.0;
  // run_gradients' nominal is evaluated fail-soft per-probe; an
  // always-throwing f still rethrows out of the nominal evaluation.
  EXPECT_THROW((void)Runner(opt).run_yield_is(f, src, 1.0),
               sim::SimulationError);
}

TEST(YieldIs, InvalidInputsThrow) {
  const auto src = normal_sources(2);
  auto f = [](const Vector& w) { return linear_delay(w); };
  {
    RunOptions opt = base_options(0);
    EXPECT_THROW((void)Runner(opt).run_yield_is(f, src, 1.0),
                 sim::SimulationError);
  }
  {
    RunOptions opt = base_options(10);
    EXPECT_THROW((void)Runner(opt).run_yield_is(f, {}, 1.0),
                 sim::SimulationError);
  }
  {
    RunOptions opt = base_options(10);
    opt.importance.mixture_nominal = 1.0;
    EXPECT_THROW((void)Runner(opt).run_yield_is(f, src, 1.0),
                 sim::SimulationError);
  }
  {
    RunOptions opt = base_options(10);
    opt.importance.shift_scale = -1.0;
    EXPECT_THROW((void)Runner(opt).run_yield_is(f, src, 1.0),
                 sim::SimulationError);
  }
}

TEST(YieldIs, FreeWrapperMatchesRunner) {
  const auto src = normal_sources(3);
  MonteCarloOptions mco;
  mco.samples = 300;
  mco.seed = 7;
  ImportanceOptions iso;
  const auto a = importance_yield(
      [](const Vector& w) { return linear_delay(w); }, src, 104.0, mco, iso);
  RunOptions ro = RunOptions::from(mco);
  ro.importance = iso;
  const auto b = Runner(ro).run_yield_is(
      [](const Vector& w) { return linear_delay(w); }, src, 104.0);
  EXPECT_EQ(a.yield_loss, b.yield_loss);
  EXPECT_EQ(a.ess, b.ess);
}

TEST(MixtureLikelihoodRatio, KnownValues) {
  // lambda = 0: plain exponential tilt, LR = exp(-score).
  EXPECT_NEAR(mixture_likelihood_ratio(1.0, 0.0), std::exp(-1.0), 1e-15);
  // score = 0 (zero shift): exactly 1 for lambda = 0.
  EXPECT_EQ(mixture_likelihood_ratio(0.0, 0.0), 1.0);
  // Deep in the proposal bulk the mixture bounds the weight at 1/lambda.
  EXPECT_NEAR(mixture_likelihood_ratio(-700.0, 0.25), 4.0, 1e-12);
  EXPECT_THROW(mixture_likelihood_ratio(0.0, 1.0), sim::SimulationError);
  EXPECT_THROW(mixture_likelihood_ratio(0.0, -0.1), sim::SimulationError);
}

}  // namespace
}  // namespace lcsf::stats
