// Cross-module integration tests: the framework pipeline (variational ROM
// -> stability filter -> TETA) against the SPICE baseline on every library
// cell, plus end-to-end determinism and failure-path coverage.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "circuit/technology.hpp"
#include "core/path.hpp"
#include "interconnect/coupled_lines.hpp"
#include "mor/pact.hpp"
#include "mor/poleres.hpp"
#include "mor/variational.hpp"
#include "sim/diagnostics.hpp"
#include "spice/transient.hpp"
#include "stats/random.hpp"
#include "teta/convolution.hpp"
#include "teta/stage.hpp"
#include "timing/cells.hpp"
#include "timing/waveform.hpp"

namespace lcsf {
namespace {

using circuit::kGround;
using circuit::SourceWaveform;
using circuit::Technology;
using circuit::technology_180nm;
using numeric::Vector;

// Every library cell drives a 50 um wire; the framework stage delay must
// track the full SPICE simulation.
class CellStageAccuracy : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CellStageAccuracy, FrameworkTracksSpice) {
  const Technology tech = technology_180nm();
  const auto& cell = timing::cell_library()[GetParam()];
  const bool out_rising = !cell.inverting;  // rising input flips
  const auto input = SourceWaveform::ramp(0.0, tech.vdd, 100e-12, 80e-12);
  const double dt = 2e-12;
  const double tstop = 1.5e-9;

  // Wire + receiver cap.
  interconnect::CoupledLineSpec wire;
  wire.num_lines = 1;
  wire.length = 50e-6;
  wire.segment_length = 1e-6;
  wire.geometry = tech.wire;
  auto bundle = interconnect::build_coupled_lines(wire);
  bundle.netlist.add_capacitor(bundle.far_ends[0], kGround, 4e-15);

  // --- framework -----------------------------------------------------
  teta::StageCircuit stage;
  const std::size_t out = stage.add_port();
  (void)stage.add_port();
  const std::size_t in = stage.add_input(input);
  const std::size_t vdd = stage.add_rail(tech.vdd);
  const std::size_t gnd = stage.add_rail(0.0);
  timing::instantiate_cell(cell, tech, stage, out, in, vdd, gnd);
  stage.freeze_device_capacitances();

  auto pencil = interconnect::build_ported_pencil(
      bundle.netlist, {bundle.near_ends[0], bundle.far_ends[0]});
  pencil = mor::with_port_conductance(
      std::move(pencil), stage.port_chord_conductances(tech.vdd));
  const auto z = mor::stabilize(mor::extract_pole_residue(
      mor::pact_reduce(pencil, mor::PactOptions{6}).model));

  teta::TetaOptions topt;
  topt.tstop = tstop;
  topt.dt = dt;
  topt.vdd = tech.vdd;
  const auto tres = teta::simulate_stage(stage, z, topt);
  ASSERT_TRUE(tres.converged) << cell.name << ": " << tres.failure();
  const auto fw =
      timing::measure_ramp(tres.waveform(1), tech.vdd, out_rising);

  // --- SPICE baseline --------------------------------------------------
  circuit::Netlist nl = bundle.netlist;
  const auto nvdd = nl.add_node("vdd");
  nl.add_vsource(nvdd, kGround, SourceWaveform::dc(tech.vdd));
  std::vector<circuit::NodeId> ins(cell.num_inputs);
  const auto nin = nl.add_node("in");
  nl.add_vsource(nin, kGround, input);
  ins[0] = nin;
  for (std::size_t pin = 1; pin < cell.num_inputs; ++pin) {
    ins[pin] = cell.side_values[pin] ? nvdd : kGround;
  }
  timing::instantiate_cell(cell, tech, nl, bundle.near_ends[0], ins, nvdd);
  nl.freeze_device_capacitances();
  spice::TransientSimulator sim(nl);
  spice::TransientOptions sopt;
  sopt.tstop = tstop;
  sopt.dt = dt;
  const auto sres = sim.run(sopt);
  ASSERT_TRUE(sres.converged) << cell.name << ": " << sres.failure();
  const auto sp = timing::measure_ramp(sres.waveform(bundle.far_ends[0]),
                                       tech.vdd, out_rising);

  // The ROM is 6th order and the engines share device models: arrivals
  // within a few ps, slews within ~10%.
  EXPECT_NEAR(fw.m, sp.m, 0.03 * sp.m + 2e-12) << cell.name;
  EXPECT_NEAR(fw.s, sp.s, 0.12 * sp.s + 2e-12) << cell.name;
}

INSTANTIATE_TEST_SUITE_P(AllCells, CellStageAccuracy,
                         ::testing::Range(std::size_t{0}, std::size_t{10}));

// Property: the recursive convolver reproduces brute-force numerical
// convolution for random stable pole sets under a random PWL current.
class ConvolverProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(ConvolverProperty, MatchesDirectConvolution) {
  std::mt19937 rng(GetParam());
  std::uniform_real_distribution<double> u(0.2, 3.0);

  // 2 real poles + 1 complex pair, random residues.
  std::vector<numeric::Complex> poles{
      {-1e9 * u(rng), 0.0},
      {-5e9 * u(rng), 0.0},
      {-1e9 * u(rng), 8e9 * u(rng)}};
  poles.push_back(std::conj(poles[2]));
  std::vector<numeric::ComplexMatrix> residues;
  for (std::size_t k = 0; k < poles.size(); ++k) {
    numeric::ComplexMatrix r(1, 1);
    if (k < 2) {
      r(0, 0) = 1e12 * u(rng);
    } else if (k == 2) {
      r(0, 0) = numeric::Complex{5e11 * u(rng), 3e11 * u(rng)};
    } else {
      r(0, 0) = std::conj(residues[2](0, 0));
    }
    residues.push_back(r);
  }
  mor::PoleResidueModel z(1, numeric::Matrix(1, 1), poles, residues);

  const double dt = 5e-12;
  teta::RecursiveConvolver conv(z, dt);

  // Random PWL current, changing every step.
  std::uniform_real_distribution<double> iu(-1e-3, 1e-3);
  std::vector<double> current{0.0};
  const int steps = 150;
  for (int s = 0; s < steps; ++s) current.push_back(iu(rng));

  for (int s = 1; s <= steps; ++s) {
    const Vector inow{current[static_cast<std::size_t>(s)]};
    const double v =
        conv.step_impedance()(0, 0) * inow[0] + conv.history()[0];
    conv.advance(inow);

    // Direct evaluation: v(t) = sum_k Re[r_k X_k(t)] with X_k the exact
    // piecewise integral of e^{p(t-tau)} i(tau).
    numeric::Complex vref{0.0, 0.0};
    for (std::size_t k = 0; k < poles.size(); ++k) {
      const numeric::Complex p = poles[k];
      numeric::Complex x{0.0, 0.0};
      for (int seg = 0; seg < s; ++seg) {
        const double a = current[static_cast<std::size_t>(seg)];
        const double b =
            (current[static_cast<std::size_t>(seg + 1)] - a) / dt;
        // Contribution of segment [seg dt, (seg+1) dt] observed at s dt.
        const double tl = (s - seg - 1) * dt;  // time from segment end
        const numeric::Complex e1 = std::exp(p * dt);
        const numeric::Complex seg_int =
            a * (e1 - 1.0) / p + b * (e1 - 1.0 - p * dt) / (p * p);
        x += std::exp(p * tl) * seg_int;
      }
      vref += residues[k](0, 0) * x;
    }
    ASSERT_NEAR(v, vref.real(), 1e-6 * std::max(1.0, std::abs(vref.real())))
        << "step " << s;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConvolverProperty,
                         ::testing::Values(11u, 12u, 13u, 14u));

// Property: compress_pwl never violates its tolerance on random waveforms.
class CompressProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(CompressProperty, ToleranceRespected) {
  std::mt19937 rng(GetParam());
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  std::vector<std::pair<double, double>> samples;
  double v = 0.0;
  for (int k = 0; k <= 500; ++k) {
    v += 0.05 * u(rng);
    samples.emplace_back(k * 1e-12, v);
  }
  const double tol = 0.02;
  auto compact = teta::compress_pwl(samples, tol);
  EXPECT_LT(compact.size(), samples.size());
  auto wave = SourceWaveform::pwl(compact);
  for (const auto& [t, vv] : samples) {
    EXPECT_LE(std::abs(wave.value(t) - vv), tol * 1.0001);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompressProperty,
                         ::testing::Values(21u, 22u, 23u));

TEST(Determinism, MonteCarloPathIsSeedStable) {
  core::PathSpec spec;
  spec.tech = technology_180nm();
  const auto& lib = timing::cell_library();
  for (std::size_t k = 0; k < lib.size(); ++k) {
    if (lib[k].name == "INV" || lib[k].name == "NAND2") {
      spec.cells.push_back(k);
    }
  }
  spec.stage_window = 1e-9;
  core::PathAnalyzer pa(spec);
  core::PathVariationModel model;
  model.std_dl = 0.33;
  stats::MonteCarloOptions opt;
  opt.samples = 10;
  opt.seed = 5;
  const auto a = pa.monte_carlo(model, opt);
  const auto b = pa.monte_carlo(model, opt);
  EXPECT_EQ(a.values, b.values);
}

TEST(FailureInjection, StagePortMismatchThrows) {
  const Technology tech = technology_180nm();
  teta::StageCircuit stage;
  (void)stage.add_port();
  // One-port stage vs two-port load.
  circuit::Netlist load;
  const auto a = load.add_node();
  const auto b = load.add_node();
  load.add_resistor(a, b, 100.0);
  load.add_capacitor(b, kGround, 1e-15);
  auto pencil = interconnect::build_ported_pencil(load, {a, b});
  pencil = mor::with_port_conductance(std::move(pencil),
                                      Vector{1e-3, 0.0});
  const auto z = mor::extract_pole_residue(
      mor::pact_reduce(pencil, mor::PactOptions{1}).model);
  teta::TetaOptions opt;
  EXPECT_THROW(teta::simulate_stage(stage, z, opt), sim::SimulationError);
}

TEST(FailureInjection, VariationalRomRejectsInconsistentLibrary) {
  mor::ReducedModel nominal;
  nominal.g = numeric::Matrix::identity(3);
  nominal.c = numeric::Matrix::identity(3);
  nominal.b = numeric::Matrix(3, 1);
  nominal.num_ports = 1;
  mor::ReducedModel bad = nominal;
  bad.g = numeric::Matrix::identity(4);
  bad.c = numeric::Matrix::identity(4);
  bad.b = numeric::Matrix(4, 1);
  EXPECT_THROW(mor::VariationalRom(nominal, {bad}), std::invalid_argument);
  mor::VariationalRom rom(nominal, {nominal});
  EXPECT_THROW(rom.evaluate(Vector{1.0, 2.0}), std::invalid_argument);
}

TEST(FailureInjection, ExampleTwoReceiverlessMeasurementFails) {
  // A waveform that never crosses the thresholds must throw, and the
  // retry machinery must surface the error rather than hang.
  const Technology tech = technology_180nm();
  core::PathSpec spec;
  spec.tech = tech;
  spec.cells = {0};  // INV
  spec.stage_window = 1e-12;  // absurdly small window
  spec.dt = 1e-12;
  core::PathAnalyzer pa(spec);
  core::PathSample s;
  s.device.resize(1);
  EXPECT_THROW(pa.framework_delay(s), std::runtime_error);
}

}  // namespace
}  // namespace lcsf
