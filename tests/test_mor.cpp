// Tests for PACT, PRIMA, variational ROM library, pole/residue transform
// and the stability filter.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "circuit/technology.hpp"
#include "interconnect/coupled_lines.hpp"
#include "interconnect/example1.hpp"
#include "mor/pact.hpp"
#include "mor/poleres.hpp"
#include "mor/prima.hpp"
#include "mor/reduced_model.hpp"
#include "mor/variational.hpp"
#include "numeric/eigen_sym.hpp"

namespace lcsf::mor {
namespace {

using interconnect::PortedPencil;
using numeric::Complex;
using numeric::Matrix;
using numeric::Vector;

// The Example 1 one-port load with a driver conductance folded in, which is
// the "effective load" the framework reduces (Table 1). gout = 10 mS.
PortedPencil effective_example1(double p, double gout = 1e-2) {
  PortedPencil pen = interconnect::example1_pencil_family()(p);
  return with_port_conductance(std::move(pen), Vector{gout});
}

double zerr(const numeric::ComplexMatrix& a, const numeric::ComplexMatrix& b) {
  double e = 0.0;
  double scale = 1e-300;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      e = std::max(e, std::abs(a(i, j) - b(i, j)));
      scale = std::max(scale, std::abs(b(i, j)));
    }
  }
  return e / scale;
}

TEST(Pact, FullOrderIsExact) {
  PortedPencil pen = effective_example1(0.0);
  PactOptions opt;
  opt.internal_modes = pen.g.rows() - 1;  // keep all internal modes
  PactResult r = pact_reduce(pen, opt);
  EXPECT_EQ(r.model.order(), pen.g.rows());
  for (double f : {1e6, 1e8, 1e10}) {
    const Complex s{0.0, 2 * M_PI * f};
    auto z_full = pencil_port_impedance(pen.g, pen.c, 1, s);
    auto z_red = r.model.port_impedance(s);
    EXPECT_LT(zerr(z_red, z_full), 1e-8) << "f = " << f;
  }
}

TEST(Pact, TruncatedModelMatchesDcExactly) {
  PortedPencil pen = effective_example1(0.0);
  PactOptions opt;
  opt.internal_modes = 2;
  PactResult r = pact_reduce(pen, opt);
  EXPECT_EQ(r.model.order(), 3u);  // 1 port + 2 modes
  const Matrix m0_full = pencil_moment(pen.g, pen.c, 1, 0);
  const Matrix m0_red = r.model.moment(0);
  EXPECT_NEAR(m0_red(0, 0), m0_full(0, 0), 1e-9 * std::abs(m0_full(0, 0)));
}

TEST(Pact, ReducedStructureMatchesEquationFive) {
  PortedPencil pen = effective_example1(0.0);
  PactOptions opt;
  opt.internal_modes = 4;
  PactResult r = pact_reduce(pen, opt);
  const std::size_t np = 1;
  // Gr = [A 0; 0 D] with D = I; Cr = [B R; R^T E] with E diagonal.
  for (std::size_t i = np; i < r.model.order(); ++i) {
    for (std::size_t j = 0; j < np; ++j) {
      EXPECT_NEAR(r.model.g(i, j), 0.0, 1e-12);
      EXPECT_NEAR(r.model.g(j, i), 0.0, 1e-12);
    }
    for (std::size_t j = np; j < r.model.order(); ++j) {
      const double expected = (i == j) ? 1.0 : 0.0;
      EXPECT_NEAR(r.model.g(i, j), expected, 1e-9);
      if (i != j) {
        EXPECT_NEAR(r.model.c(i, j), 0.0, 1e-9);
      }
    }
  }
}

TEST(Pact, NominalReductionIsPassive) {
  PortedPencil pen = effective_example1(0.0);
  PactOptions opt;
  opt.internal_modes = 4;
  PactResult r = pact_reduce(pen, opt);
  // Congruence of PSD matrices stays PSD: no unstable poles.
  PoleResidueModel pr = extract_pole_residue(r.model);
  EXPECT_EQ(pr.count_unstable(), 0u);
}

TEST(Pact, ResidueWeightedSelectionAlsoExactAtDc) {
  PortedPencil pen = effective_example1(0.0);
  PactOptions opt;
  opt.internal_modes = 3;
  opt.selection = PactModeSelection::kResidueWeighted;
  PactResult r = pact_reduce(pen, opt);
  const Matrix m0_full = pencil_moment(pen.g, pen.c, 1, 0);
  EXPECT_NEAR(r.model.moment(0)(0, 0), m0_full(0, 0),
              1e-9 * std::abs(m0_full(0, 0)));
}

TEST(Prima, MomentMatching) {
  PortedPencil pen = effective_example1(0.0);
  PrimaOptions opt;
  opt.block_moments = 3;
  PrimaResult r = prima_reduce(pen, opt);
  // PRIMA with m block moments matches at least moments 0..m-1.
  for (std::size_t k = 0; k < 3; ++k) {
    const Matrix mf = pencil_moment(pen.g, pen.c, 1, k);
    const Matrix mr = r.model.moment(k);
    EXPECT_NEAR(mr(0, 0), mf(0, 0), 1e-7 * std::abs(mf(0, 0))) << "k=" << k;
  }
}

TEST(Prima, ReductionIsPassive) {
  // Multi-port: 2 coupled lines, 4 ports.
  interconnect::CoupledLineSpec spec;
  spec.num_lines = 2;
  spec.length = 50e-6;
  spec.segment_length = 1e-6;
  spec.geometry = circuit::technology_180nm().wire;
  auto bundle = interconnect::build_coupled_lines(spec);
  PortedPencil pen =
      interconnect::build_ported_pencil(bundle.netlist, bundle.ports());
  pen = with_port_conductance(std::move(pen), Vector(4, 1e-3));

  PrimaOptions opt;
  opt.block_moments = 2;
  PrimaResult r = prima_reduce(pen, opt);
  auto eg = numeric::eigen_symmetric(r.model.g);
  auto ec = numeric::eigen_symmetric(r.model.c);
  for (double v : eg.values) EXPECT_GE(v, -1e-9);
  for (double v : ec.values) EXPECT_GE(v, -1e-20);
  PoleResidueModel pr = extract_pole_residue(r.model);
  EXPECT_EQ(pr.count_unstable(), 0u);
}

TEST(PoleResidue, MatchesReducedModelTransferFunction) {
  PortedPencil pen = effective_example1(0.03);
  PactOptions opt;
  opt.internal_modes = 4;
  PactResult r = pact_reduce(pen, opt);
  PoleResidueModel pr = extract_pole_residue(r.model);
  for (double f : {1e5, 1e7, 1e9, 3e10}) {
    const Complex s{0.0, 2 * M_PI * f};
    EXPECT_LT(zerr(pr.eval(s), r.model.port_impedance(s)), 1e-7)
        << "f = " << f;
  }
}

TEST(PoleResidue, RcPolesAreRealNegative) {
  PortedPencil pen = effective_example1(0.0);
  PactResult r = pact_reduce(pen, PactOptions{4});
  PoleResidueModel pr = extract_pole_residue(r.model);
  ASSERT_GT(pr.num_poles(), 0u);
  for (const auto& p : pr.poles()) {
    EXPECT_LT(p.real(), 0.0);
    EXPECT_NEAR(p.imag(), 0.0, 1e-3 * std::abs(p.real()));
  }
  EXPECT_DOUBLE_EQ(pr.max_unstable_real(), 0.0);
}

TEST(Variational, EvaluateAtZeroIsNominal) {
  auto family = scalar_family(
      [](double p) { return effective_example1(p); });
  VariationalOptions opt;
  opt.pact.internal_modes = 4;
  VariationalRom rom = build_variational_rom(family, 1, opt);
  ReducedModel m = rom.evaluate(Vector{0.0});
  EXPECT_NEAR(numeric::relative_difference(m.g, rom.nominal().g), 0.0, 1e-15);
  EXPECT_NEAR(numeric::relative_difference(m.c, rom.nominal().c), 0.0, 1e-15);
}

TEST(Variational, FirstOrderAccuracy) {
  auto family = scalar_family(
      [](double p) { return effective_example1(p); });
  VariationalOptions opt;
  opt.pact.internal_modes = 4;
  opt.library = LibraryMode::kFrozenProjection;
  VariationalRom rom = build_variational_rom(family, 1, opt);

  // Compare variational evaluation against the exact frozen-basis
  // reduction: error must shrink quadratically in p.
  PactResult nominal = pact_reduce(effective_example1(0.0), PactOptions{4});
  auto exact_at = [&](double p) {
    return pact_reduce_with_basis(effective_example1(p), nominal.basis);
  };
  const Complex s{0.0, 2 * M_PI * 1e9};
  auto err_at = [&](double p) {
    return zerr(rom.evaluate(Vector{p}).port_impedance(s),
                exact_at(p).port_impedance(s));
  };
  const double e1 = err_at(0.04);
  const double e2 = err_at(0.02);
  EXPECT_GT(e1, 0.0);
  // Quadratic convergence: halving p should cut the error ~4x; accept 2.5x
  // to allow higher-order contamination.
  EXPECT_GT(e1 / e2, 2.5);
}

TEST(Variational, PrimaLibraryAlsoWorks) {
  auto family = scalar_family(
      [](double p) { return effective_example1(p); });
  VariationalOptions opt;
  opt.method = ReductionMethod::kPrima;
  opt.prima.block_moments = 3;
  VariationalRom rom = build_variational_rom(family, 1, opt);
  // Nominal DC must match the full pencil.
  const Matrix m0_full =
      pencil_moment(effective_example1(0.0).g, effective_example1(0.0).c, 1, 0);
  EXPECT_NEAR(rom.nominal().moment(0)(0, 0), m0_full(0, 0),
              1e-7 * std::abs(m0_full(0, 0)));
}

TEST(Variational, PortConductanceValidation) {
  PortedPencil pen = interconnect::example1_pencil_family()(0.0);
  EXPECT_THROW(with_port_conductance(pen, Vector{1.0, 1.0}),
               std::invalid_argument);
  EXPECT_THROW(with_port_conductance(pen, Vector{-1.0}),
               std::invalid_argument);
}

// The headline phenomenon of Example 1 / Table 3: the first-order
// variational model develops right-half-plane poles from p = 0.05 onward
// even though every exact reduction is passive, and the unstable pole
// magnitude decreases as p grows.
TEST(Variational, InstabilityAppearsFromTableThreeThreshold) {
  auto family = scalar_family(
      [](double p) { return effective_example1(p); });
  VariationalOptions opt;
  opt.pact.internal_modes = 4;
  opt.library = LibraryMode::kFullReduction;
  opt.fd_step = 0.05;  // the DOE spacing of the pre-characterization
  VariationalRom rom = build_variational_rom(family, 1, opt);

  std::vector<double> max_unstable;
  for (double p : {0.05, 0.06, 0.08, 0.09, 0.1}) {
    PoleResidueModel pr = extract_pole_residue(rom.evaluate(Vector{p}));
    EXPECT_GT(pr.count_unstable(), 0u) << "p = " << p;
    max_unstable.push_back(pr.max_unstable_real());
  }
  // Table 3 trend: the unstable pole magnitude decreases with p.
  for (std::size_t k = 1; k < max_unstable.size(); ++k) {
    EXPECT_LT(max_unstable[k], max_unstable[k - 1]);
  }
  // Small p stays stable.
  PoleResidueModel pr0 = extract_pole_residue(rom.evaluate(Vector{0.02}));
  EXPECT_EQ(pr0.count_unstable(), 0u);
}

// The frozen-projection library (the robust ablation variant) stays stable
// far beyond the paper's parameter range.
TEST(Variational, FrozenProjectionIsMoreRobust) {
  auto family = scalar_family(
      [](double p) { return effective_example1(p); });
  VariationalOptions opt;
  opt.pact.internal_modes = 4;
  opt.library = LibraryMode::kFrozenProjection;
  VariationalRom rom = build_variational_rom(family, 1, opt);
  for (double p : {0.05, 0.08, 0.1}) {
    PoleResidueModel pr = extract_pole_residue(rom.evaluate(Vector{p}));
    EXPECT_EQ(pr.count_unstable(), 0u) << "p = " << p;
  }
}

TEST(Variational, LinearMatrixFamilyInterpolatesAnchors) {
  auto base = scalar_family(
      [](double p) { return effective_example1(p); });
  PencilFamily lin = linear_matrix_family(base, Vector{0.1});
  // Exact at the anchors by construction.
  const auto exact0 = base(Vector{0.0});
  const auto exact1 = base(Vector{0.1});
  EXPECT_NEAR(numeric::relative_difference(lin(Vector{0.0}).g, exact0.g), 0,
              1e-14);
  EXPECT_NEAR(numeric::relative_difference(lin(Vector{0.1}).g, exact1.g), 0,
              1e-12);
  EXPECT_NEAR(numeric::relative_difference(lin(Vector{0.1}).c, exact1.c), 0,
              1e-12);
  // Capacitances are linear in p, so C matches everywhere; G differs in
  // between (1/R is convex in p).
  const auto mid_exact = base(Vector{0.05});
  const auto mid_lin = lin(Vector{0.05});
  EXPECT_NEAR(numeric::relative_difference(mid_lin.c, mid_exact.c), 0, 1e-12);
  EXPECT_GT(numeric::relative_difference(mid_lin.g, mid_exact.g), 1e-5);
  EXPECT_THROW(linear_matrix_family(base, Vector{0.0}),
               std::invalid_argument);
}

TEST(Stabilize, DropsUnstablePolesAndPreservesDc) {
  // Construct a synthetic model: two stable poles, one unstable.
  Matrix direct(1, 1);
  std::vector<Complex> poles{Complex{-1e9, 0}, Complex{-5e9, 0},
                             Complex{2e12, 0}};
  std::vector<numeric::ComplexMatrix> residues;
  for (double rv : {3e9, 1e9, 0.2e9}) {
    numeric::ComplexMatrix r(1, 1);
    r(0, 0) = rv;
    residues.push_back(r);
  }
  PoleResidueModel model(1, direct, poles, residues);
  const Complex dc = model.eval(0, 0, Complex{0.0, 0.0});

  for (StabilizePolicy policy : {StabilizePolicy::kBetaScaling,
                                 StabilizePolicy::kDirectCompensation}) {
    StabilizationReport rep;
    PoleResidueModel stable = stabilize(model, &rep, policy);
    EXPECT_EQ(rep.dropped_poles, 1u);
    EXPECT_NEAR(rep.max_unstable_real, 2e12, 1.0);
    EXPECT_EQ(stable.num_poles(), 2u);
    EXPECT_EQ(stable.count_unstable(), 0u);
    // DC behaviour preserved by either correction (Eq. 22-23).
    const Complex dc2 = stable.eval(0, 0, Complex{0.0, 0.0});
    EXPECT_NEAR(dc2.real(), dc.real(), 1e-9 * std::abs(dc.real()));
  }
}

TEST(Stabilize, NoOpOnStableModel) {
  PortedPencil pen = effective_example1(0.0);
  PactResult r = pact_reduce(pen, PactOptions{4});
  PoleResidueModel pr = extract_pole_residue(r.model);
  StabilizationReport rep;
  PoleResidueModel st = stabilize(pr, &rep);
  EXPECT_EQ(rep.dropped_poles, 0u);
  EXPECT_EQ(st.num_poles(), pr.num_poles());
  for (std::size_t i = 0; i < 1; ++i) {
    EXPECT_NEAR(rep.beta(0, 0), 1.0, 1e-12);
  }
}

// Property sweep: across the stable parameter range, the stabilized
// variational macromodel must track the exact pencil's frequency response.
class VariationalAccuracy : public ::testing::TestWithParam<double> {};

TEST_P(VariationalAccuracy, StabilizedModelTracksExactResponse) {
  const double p = GetParam();
  auto family = scalar_family(
      [](double q) { return effective_example1(q); });
  VariationalOptions opt;
  opt.pact.internal_modes = 4;
  opt.library = LibraryMode::kFullReduction;
  opt.fd_step = 0.05;
  VariationalRom rom = build_variational_rom(family, 1, opt);

  PoleResidueModel pr = extract_pole_residue(rom.evaluate(Vector{p}));
  PoleResidueModel st = stabilize(pr);
  PortedPencil exact = effective_example1(p);
  // Compare over the band that matters for the waveforms (up to ~10 GHz).
  for (double f : {1e6, 1e8, 1e9, 1e10}) {
    const Complex s{0.0, 2 * M_PI * f};
    auto z_exact = pencil_port_impedance(exact.g, exact.c, 1, s);
    auto z_model = st.eval(s);
    EXPECT_LT(zerr(z_model, z_exact), 0.08) << "p=" << p << " f=" << f;
  }
}

INSTANTIATE_TEST_SUITE_P(ParameterSweep, VariationalAccuracy,
                         ::testing::Values(0.0, 0.02, 0.04, 0.06, 0.08, 0.1));

}  // namespace
}  // namespace lcsf::mor
