// Tests for the observability subsystem (src/obs/): deterministic lane
// merge, null-registry no-ops, span path construction, the wall-clock
// exclusion convention, and driver-level metric invariance across thread
// counts. The concurrent-lanes test doubles as the TSan witness for the
// unsynchronized per-lane recording design.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "runtime/thread_pool.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "stats/runner.hpp"

namespace lcsf::obs {
namespace {

TEST(ObsMerge, CountersSumAcrossLanesOrderIndependent) {
  Registry a;
  a.lane_sink(0).add_counter("x", 10);
  a.lane_sink(0).add_counter("y", 1);
  a.lane_sink(0).add_counter("x", 5);

  Registry b;  // same logical totals, different lane layout and order
  b.lane_sink(2).add_counter("y", 1);
  b.lane_sink(1).add_counter("x", 5);
  b.lane_sink(3).add_counter("x", 10);

  const Snapshot sa = a.snapshot();
  EXPECT_EQ(sa.counters.at("x"), 15u);
  EXPECT_EQ(sa.counters.at("y"), 1u);
  EXPECT_EQ(a.to_json(false), b.to_json(false));
}

TEST(ObsMerge, DistributionStatsMatchClosedForm) {
  Registry r;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    r.lane_sink(0).record_value("d", v);
  }
  const auto d = r.snapshot().distributions.at("d");
  EXPECT_EQ(d.count, 8u);
  EXPECT_DOUBLE_EQ(d.min, 2.0);
  EXPECT_DOUBLE_EQ(d.max, 9.0);
  EXPECT_DOUBLE_EQ(d.mean, 5.0);
  // Nearest-rank quantiles on the sorted values.
  EXPECT_DOUBLE_EQ(d.p50, 5.0);
  EXPECT_DOUBLE_EQ(d.p95, 9.0);
}

TEST(ObsMerge, DistributionsAreLaneLayoutInvariant) {
  // The same multiset of observations, recorded in different orders on
  // different lanes, must export bitwise identically: the merge sorts
  // into canonical order before any floating-point accumulation.
  const std::vector<double> values = {0.3, 1e-9, 7.25, -2.5, 0.3, 42.0};
  Registry a;
  for (double v : values) a.lane_sink(0).record_value("d", v);
  Registry b;
  for (std::size_t i = values.size(); i-- > 0;) {
    b.lane_sink(i % 3).record_value("d", values[i]);
  }
  EXPECT_EQ(a.to_json(false), b.to_json(false));
}

TEST(ObsMerge, WallClockMetricsExcludedFromDeterministicExport) {
  EXPECT_TRUE(is_wall_clock_metric("stats.mc.sample_seconds"));
  EXPECT_TRUE(is_wall_clock_metric("x_ms"));
  EXPECT_TRUE(is_wall_clock_metric("x_us"));
  EXPECT_TRUE(is_wall_clock_metric("x_ns"));
  EXPECT_FALSE(is_wall_clock_metric("seconds_total"));
  EXPECT_FALSE(is_wall_clock_metric("teta.transients"));

  Registry r;
  r.lane_sink(0).record_value("work_seconds", 0.25);
  r.lane_sink(0).record_value("iterations", 12.0);
  r.lane_sink(0).record_span("phase", 0, 1000, 0);
  const std::string det = r.to_json(false);
  const std::string full = r.to_json(true);
  EXPECT_EQ(det.find("work_seconds"), std::string::npos);
  EXPECT_EQ(det.find("\"timers\""), std::string::npos);
  EXPECT_NE(det.find("iterations"), std::string::npos);
  EXPECT_NE(det.find("\"deterministic\": true"), std::string::npos);
  EXPECT_NE(full.find("work_seconds"), std::string::npos);
  EXPECT_NE(full.find("\"timers\""), std::string::npos);
  EXPECT_NE(full.find("\"phase\""), std::string::npos);
}

// Everything below exercises live recording through the thread-local
// context, which compiles to no-ops under cmake -DLCSF_OBS=OFF; the
// merge/export tests above use the Registry directly and hold in both
// configurations.
#if LCSF_OBS_ENABLED

TEST(ObsContext, NullRegistryIsANoOp) {
  // Nothing installed: every recording entry point must be safe.
  ASSERT_FALSE(enabled());
  add_counter("ghost");
  record_value("ghost", 1.0);
  EXPECT_EQ(now_ns(), 0u);
  { ScopedSpan span("ghost"); }

  // Installing a null registry inside an active scope disables recording.
  Registry r;
  {
    ScopedContext on(&r, 0);
    add_counter("seen");
    {
      ScopedContext off(nullptr, 0);
      EXPECT_FALSE(enabled());
      add_counter("ghost");
      ScopedSpan span("ghost");
    }
    EXPECT_TRUE(enabled());  // restored
    add_counter("seen");
  }
  const Snapshot s = r.snapshot();
  EXPECT_EQ(s.counters.at("seen"), 2u);
  EXPECT_EQ(s.counters.count("ghost"), 0u);
  EXPECT_TRUE(s.timers.empty());
}

TEST(ObsSpan, NestedSpansJoinPathsAndFeedTimers) {
  Registry r;
  {
    ScopedContext ctx(&r, 0);
    ScopedSpan outer("outer");
    {
      ScopedSpan inner("inner");
      ScopedSpan inner2("leaf");
    }
    { ScopedSpan inner("inner"); }
  }
  const Snapshot s = r.snapshot();
  EXPECT_EQ(s.timers.at("outer").count, 1u);
  EXPECT_EQ(s.timers.at("outer/inner").count, 2u);
  EXPECT_EQ(s.timers.at("outer/inner/leaf").count, 1u);
  // Inclusive timing: the parent covers at least its children.
  EXPECT_GE(s.timers.at("outer").total_ns,
            s.timers.at("outer/inner").total_ns);
  ASSERT_EQ(s.spans.size(), 4u);  // leaf, inner, inner, outer (dtor order)
}

TEST(ObsConcurrent, DistinctLanesRecordRaceFree) {
  // One ScopedContext per chunk, unsynchronized recording from every
  // worker. Run under TSan (tools/ci.sh tsan) this is the witness that
  // the lane-exclusivity contract makes the design race-free.
  Registry r;
  const std::size_t n = 10000;
  runtime::parallel_for_lanes(
      4, n,
      [&](std::size_t begin, std::size_t end, std::size_t lane) {
        ScopedContext ctx(&r, lane);
        ScopedSpan span("chunk");
        for (std::size_t i = begin; i < end; ++i) {
          add_counter("items");
          record_value("value", static_cast<double>(i % 7));
        }
      });
  const Snapshot s = r.snapshot();
  EXPECT_EQ(s.counters.at("items"), n);
  EXPECT_EQ(s.distributions.at("value").count, n);
  EXPECT_GE(s.timers.at("chunk").count, 1u);
}

TEST(ObsDriver, MonteCarloMetricsBitwiseInvariantAcrossThreads) {
  std::vector<stats::VariationSource> src(3);
  auto f = [](const numeric::Vector& w) { return w[0] + 2.0 * w[1] - w[2]; };

  auto metrics_at = [&](std::size_t threads) {
    Registry reg;
    stats::RunOptions opt;
    opt.samples = 257;  // not a multiple of any thread count
    opt.seed = 11;
    opt.exec.threads = threads;
    opt.registry = &reg;
    stats::Runner runner(opt);
    const auto res = runner.run_monte_carlo(f, src);
    EXPECT_EQ(res.values.size(), 257u);
    return reg.to_json(false);
  };

  const std::string serial = metrics_at(1);
  EXPECT_EQ(serial, metrics_at(2));
  EXPECT_EQ(serial, metrics_at(8));
  EXPECT_NE(serial.find("\"stats.mc.samples\": 257"), std::string::npos)
      << serial;
}

TEST(ObsDriver, AmbientRegistryIsInheritedByRunner) {
  // A CLI installs the registry on the main thread; a Runner whose
  // options carry no registry must still record into it.
  Registry reg;
  ScopedContext ctx(&reg, 0);
  std::vector<stats::VariationSource> src(1);
  auto f = [](const numeric::Vector& w) { return w[0]; };
  stats::RunOptions opt;
  opt.samples = 16;
  opt.exec.threads = 2;
  stats::Runner(opt).run_monte_carlo(f, src);
  EXPECT_EQ(reg.snapshot().counters.at("stats.mc.samples"), 16u);
}

TEST(ObsExport, TimingReportAndChromeTraceSmoke) {
  Registry r;
  {
    ScopedContext ctx(&r, 0);
    ScopedSpan outer("alpha");
    ScopedSpan inner("beta");
  }
  const std::string report = r.timing_report();
  EXPECT_NE(report.find("alpha"), std::string::npos);
  EXPECT_NE(report.find("beta"), std::string::npos);

  const std::string trace = r.chrome_trace_json();
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(trace.find("\"alpha/beta\""), std::string::npos);
}

#endif  // LCSF_OBS_ENABLED

}  // namespace
}  // namespace lcsf::obs
