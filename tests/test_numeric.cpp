// Unit and property tests for the dense linear-algebra substrate.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <random>

#include "numeric/cholesky.hpp"
#include "numeric/eigen_real.hpp"
#include "numeric/eigen_sym.hpp"
#include "numeric/lu.hpp"
#include "numeric/matrix.hpp"
#include "numeric/orthonormal.hpp"

namespace lcsf::numeric {
namespace {

Matrix random_matrix(std::size_t n, std::size_t m, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  Matrix a(n, m);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < m; ++j) a(i, j) = u(rng);
  }
  return a;
}

Matrix random_spd(std::size_t n, unsigned seed) {
  Matrix a = random_matrix(n, n, seed);
  Matrix s = a.transposed() * a;
  for (std::size_t i = 0; i < n; ++i) s(i, i) += static_cast<double>(n);
  return s;
}

TEST(Matrix, InitializerListAndAccess) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m.at(1, 0), 3.0);
  EXPECT_THROW(m.at(2, 0), std::out_of_range);
  EXPECT_THROW((Matrix{{1.0}, {1.0, 2.0}}), std::invalid_argument);
}

TEST(Matrix, ArithmeticAndTranspose) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{5, 6}, {7, 8}};
  Matrix c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
  Matrix t = a.transposed();
  EXPECT_DOUBLE_EQ(t(0, 1), 3.0);
  Matrix s = a + b - b;
  EXPECT_NEAR(relative_difference(s, a), 0.0, 1e-15);
  EXPECT_THROW(a * Matrix(3, 3), std::invalid_argument);
}

TEST(Matrix, BlockOps) {
  Matrix a = random_matrix(5, 5, 1);
  Matrix b = a.block(1, 2, 3, 2);
  EXPECT_DOUBLE_EQ(b(0, 0), a(1, 2));
  EXPECT_DOUBLE_EQ(b(2, 1), a(3, 3));
  Matrix z(5, 5);
  z.set_block(1, 2, b);
  EXPECT_DOUBLE_EQ(z(3, 3), a(3, 3));
  EXPECT_THROW(a.block(3, 3, 4, 1), std::out_of_range);
}

TEST(Matrix, VectorOps) {
  Vector x{1, 2, 3};
  Vector y{4, 5, 6};
  EXPECT_DOUBLE_EQ(dot(x, y), 32.0);
  EXPECT_DOUBLE_EQ(norm(Vector{3, 4}), 5.0);
  axpy(2.0, x, y);
  EXPECT_DOUBLE_EQ(y[2], 12.0);
  Matrix a{{1, 0}, {0, 2}, {3, 0}};
  Vector z = transposed_times(a, Vector{1, 1, 1});
  EXPECT_DOUBLE_EQ(z[0], 4.0);
  EXPECT_DOUBLE_EQ(z[1], 2.0);
}

TEST(Lu, SolvesRandomSystems) {
  for (unsigned seed : {2u, 3u, 4u}) {
    const std::size_t n = 8;
    Matrix a = random_matrix(n, n, seed);
    for (std::size_t i = 0; i < n; ++i) a(i, i) += 3.0;
    Vector x_true(n);
    for (std::size_t i = 0; i < n; ++i) x_true[i] = static_cast<double>(i) - 2;
    Vector b = a * x_true;
    Vector x = solve(a, b);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-10);
  }
}

TEST(Lu, TransposedSolve) {
  Matrix a = random_matrix(6, 6, 7);
  for (std::size_t i = 0; i < 6; ++i) a(i, i) += 4.0;
  LuFactorization lu(a);
  Vector b{1, -1, 2, 0.5, -3, 1};
  Vector x = lu.solve_transposed(b);
  Vector check = transposed_times(a, x);
  for (std::size_t i = 0; i < 6; ++i) EXPECT_NEAR(check[i], b[i], 1e-10);
}

TEST(Lu, DeterminantAndSingularity) {
  Matrix a{{2, 0}, {0, 3}};
  EXPECT_NEAR(LuFactorization(a).determinant(), 6.0, 1e-12);
  Matrix swap_rows{{0, 1}, {1, 0}};
  EXPECT_NEAR(LuFactorization(swap_rows).determinant(), -1.0, 1e-12);
  Matrix sing{{1, 2}, {2, 4}};
  EXPECT_THROW(LuFactorization{sing}, std::runtime_error);
}

TEST(Lu, InverseRoundTrip) {
  Matrix a = random_spd(5, 11);
  Matrix ainv = inverse(a);
  EXPECT_NEAR(relative_difference(a * ainv, Matrix::identity(5)), 0.0, 1e-9);
}

TEST(Cholesky, FactorAndSolve) {
  Matrix a = random_spd(7, 21);
  CholeskyFactorization chol(a);
  const Matrix& l = chol.lower();
  EXPECT_NEAR(relative_difference(l * l.transposed(), a), 0.0, 1e-10);
  Vector b(7, 1.0);
  Vector x = chol.solve(b);
  Vector check = a * x;
  for (std::size_t i = 0; i < 7; ++i) EXPECT_NEAR(check[i], 1.0, 1e-9);
}

TEST(Cholesky, RejectsIndefinite) {
  Matrix a{{1, 0}, {0, -1}};
  EXPECT_THROW(CholeskyFactorization{a}, std::runtime_error);
}

TEST(Cholesky, SymmetryPredicate) {
  Matrix a{{1, 2}, {2, 1}};
  EXPECT_TRUE(is_symmetric(a));
  a(0, 1) = 2.5;
  EXPECT_FALSE(is_symmetric(a));
}

TEST(EigenSym, DiagonalizesKnownMatrix) {
  // Eigenvalues of [[2,1],[1,2]] are 1 and 3.
  SymmetricEigen e = eigen_symmetric(Matrix{{2, 1}, {1, 2}});
  ASSERT_EQ(e.values.size(), 2u);
  EXPECT_NEAR(e.values[0], 1.0, 1e-12);
  EXPECT_NEAR(e.values[1], 3.0, 1e-12);
}

TEST(EigenSym, ReconstructsRandomSpd) {
  Matrix a = random_spd(9, 33);
  SymmetricEigen e = eigen_symmetric(a);
  Matrix lam = Matrix::diagonal(e.values);
  Matrix recon = e.vectors * lam * e.vectors.transposed();
  EXPECT_NEAR(relative_difference(recon, a), 0.0, 1e-9);
  EXPECT_LT(orthogonality_defect(e.vectors), 1e-9);
  for (double v : e.values) EXPECT_GT(v, 0.0);
}

TEST(EigenSym, JacobiAndTridiagonalAgree) {
  for (std::size_t n : {3u, 10u, 40u, 90u}) {
    Matrix a = random_spd(n, 77u + static_cast<unsigned>(n));
    SymmetricEigen ej = eigen_symmetric_jacobi(a);
    SymmetricEigen et = eigen_symmetric_tridiagonal(a);
    for (std::size_t k = 0; k < n; ++k) {
      EXPECT_NEAR(ej.values[k], et.values[k],
                  1e-9 * std::max(1.0, std::abs(ej.values[k])))
          << "n=" << n << " k=" << k;
    }
    // Both reconstruct A.
    Matrix recon =
        et.vectors * Matrix::diagonal(et.values) * et.vectors.transposed();
    EXPECT_NEAR(relative_difference(recon, a), 0.0, 1e-9);
    EXPECT_LT(orthogonality_defect(et.vectors), 1e-9);
  }
}

TEST(EigenSym, TridiagonalHandlesLargeRcLikeMatrix) {
  // Tridiagonal SPD (discretized RC line): known eigenvalues
  // 2 - 2 cos(k pi / (n+1)).
  const std::size_t n = 200;
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    a(i, i) = 2.0;
    if (i + 1 < n) {
      a(i, i + 1) = -1.0;
      a(i + 1, i) = -1.0;
    }
  }
  SymmetricEigen e = eigen_symmetric(a);
  for (std::size_t k = 0; k < n; ++k) {
    const double expect =
        2.0 - 2.0 * std::cos((double(k) + 1.0) * M_PI / (double(n) + 1.0));
    EXPECT_NEAR(e.values[k], expect, 1e-10) << k;
  }
}

TEST(EigenSym, GeneralizedProblem) {
  Matrix a = random_spd(6, 44);
  Matrix b = random_spd(6, 45);
  SymmetricEigen e = eigen_symmetric_generalized(a, b);
  for (std::size_t k = 0; k < 6; ++k) {
    Vector x = e.vectors.col(k);
    Vector ax = a * x;
    Vector bx = b * x;
    for (std::size_t i = 0; i < 6; ++i) {
      EXPECT_NEAR(ax[i], e.values[k] * bx[i], 1e-8 * (1.0 + std::abs(ax[i])));
    }
  }
  // B-orthonormality.
  Matrix xtbx = congruence(e.vectors, b);
  EXPECT_NEAR(relative_difference(xtbx, Matrix::identity(6)), 0.0, 1e-8);
}

TEST(EigenReal, KnownRealEigenvalues) {
  // Upper triangular: eigenvalues on the diagonal.
  Matrix a{{1, 5, 0}, {0, 2, 1}, {0, 0, 3}};
  auto vals = eigenvalues_real(a);
  std::vector<double> re;
  for (auto v : vals) {
    EXPECT_NEAR(v.imag(), 0.0, 1e-10);
    re.push_back(v.real());
  }
  std::sort(re.begin(), re.end());
  EXPECT_NEAR(re[0], 1.0, 1e-10);
  EXPECT_NEAR(re[1], 2.0, 1e-10);
  EXPECT_NEAR(re[2], 3.0, 1e-10);
}

TEST(EigenReal, ComplexPair) {
  // Rotation-like matrix has eigenvalues a +- bi.
  Matrix a{{1, -2}, {2, 1}};
  auto vals = eigenvalues_real(a);
  ASSERT_EQ(vals.size(), 2u);
  EXPECT_NEAR(vals[0].real(), 1.0, 1e-12);
  EXPECT_NEAR(std::abs(vals[0].imag()), 2.0, 1e-12);
  EXPECT_NEAR(vals[1].real(), 1.0, 1e-12);
  EXPECT_NEAR(vals[0].imag() + vals[1].imag(), 0.0, 1e-12);
}

// Property: A v = lambda v for every eigenpair of random matrices.
class EigenRealProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(EigenRealProperty, EigenpairsSatisfyDefinition) {
  const std::size_t n = 10;
  Matrix a = random_matrix(n, n, GetParam());
  RealEigen e = eigen_real(a);
  ASSERT_EQ(e.values.size(), n);
  for (std::size_t k = 0; k < n; ++k) {
    auto v = e.vector(k);
    // Skip near-zero vectors (should not happen, guard division).
    double vnorm = 0.0;
    for (auto c : v) vnorm += std::norm(c);
    vnorm = std::sqrt(vnorm);
    ASSERT_GT(vnorm, 1e-12);
    // Compute ||A v - lambda v|| / ||v||.
    double resid = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      std::complex<double> av = 0.0;
      for (std::size_t j = 0; j < n; ++j) av += a(i, j) * v[j];
      resid += std::norm(av - e.values[k] * v[i]);
    }
    EXPECT_LT(std::sqrt(resid) / vnorm, 1e-8)
        << "eigenpair " << k << " seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EigenRealProperty,
                         ::testing::Values(101u, 102u, 103u, 104u, 105u));

// Property: eigenvalues of -G^{-1}C for an RC-like (SPD G, PSD C) pencil are
// real and non-positive -- this is the stability property the paper's
// variational models lose.
class RcPencilProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(RcPencilProperty, PassivePencilHasStablePoles) {
  const std::size_t n = 8;
  Matrix g = random_spd(n, GetParam());
  Matrix csqrt = random_matrix(n, n, GetParam() + 1000);
  Matrix c = csqrt.transposed() * csqrt;  // PSD
  Matrix t = inverse(g) * c;
  t *= -1.0;
  auto vals = eigenvalues_real(t);
  for (auto v : vals) {
    EXPECT_LE(v.real(), 1e-9);
    EXPECT_NEAR(v.imag(), 0.0, 1e-7);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RcPencilProperty,
                         ::testing::Values(7u, 8u, 9u, 10u));

TEST(Orthonormal, BasisSpansInput) {
  Matrix a = random_matrix(10, 4, 55);
  auto res = orthonormalize(a);
  EXPECT_EQ(res.rank, 4u);
  EXPECT_EQ(res.deflated, 0u);
  EXPECT_LT(orthogonality_defect(res.q), 1e-12);
  // Each input column must be reproduced by Q Q^T a_j.
  for (std::size_t j = 0; j < 4; ++j) {
    Vector aj = a.col(j);
    Vector proj = res.q * transposed_times(res.q, aj);
    for (std::size_t i = 0; i < 10; ++i) EXPECT_NEAR(proj[i], aj[i], 1e-10);
  }
}

TEST(Orthonormal, DeflatesDependentColumns) {
  Matrix a(6, 3);
  for (std::size_t i = 0; i < 6; ++i) {
    a(i, 0) = static_cast<double>(i + 1);
    a(i, 1) = 2.0 * static_cast<double>(i + 1);  // dependent
    a(i, 2) = (i == 0) ? 1.0 : 0.0;
  }
  auto res = orthonormalize(a);
  EXPECT_EQ(res.rank, 2u);
  EXPECT_EQ(res.deflated, 1u);
}

TEST(Orthonormal, AgainstExistingBasis) {
  Matrix q0 = orthonormalize(random_matrix(8, 3, 66)).q;
  Matrix a = random_matrix(8, 3, 67);
  auto res = orthonormalize(a, &q0);
  // New basis orthogonal to old one.
  Matrix cross = q0.transposed() * res.q;
  EXPECT_LT(cross.max_abs(), 1e-10);
}

}  // namespace
}  // namespace lcsf::numeric
