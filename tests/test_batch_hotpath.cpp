// Batched (SoA) Monte-Carlo hot path: bitwise equivalence against the
// scalar engine across batch widths and thread counts, the dispatch
// counters, fail-soft parity of the batch dispatcher, and the
// strided-batch numeric kernels. See docs/performance.md.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

#include "core/path.hpp"
#include "numeric/lu.hpp"
#include "numeric/matrix.hpp"
#include "obs/registry.hpp"
#include "stats/runner.hpp"

namespace lcsf::core {
namespace {

using numeric::Matrix;
using numeric::Vector;

std::size_t cell_index(const std::string& name) {
  const auto& lib = timing::cell_library();
  for (std::size_t k = 0; k < lib.size(); ++k) {
    if (lib[k].name == name) return k;
  }
  throw std::logic_error("unknown cell");
}

PathSpec small_path_spec() {
  PathSpec spec;
  spec.tech = circuit::technology_180nm();
  spec.cells = {cell_index("INV"), cell_index("NAND2"), cell_index("NOR2")};
  spec.linear_elements_per_stage = 10;
  spec.stage_window = 1.0e-9;
  spec.dt = 2e-12;
  return spec;
}

PathVariationModel small_model() {
  PathVariationModel model;
  model.std_dl = 0.33;
  model.std_vt = 0.33;
  // Wire variation exercises the batched ROM evaluation in front of the
  // lockstep transient, not just the per-device stamps.
  model.std_wire_w = 0.33;
  return model;
}

// Every batch width must reproduce the scalar (batch = 1) run bitwise:
// same survivors, same per-sample delays, same draws. samples = 10 is
// deliberately not a multiple of any tested width, so each run also
// covers the scalar remainder loop (K = 8: one block + 2 singletons).
TEST(BatchHotpath, BatchWidthInvariantBitwise) {
  PathAnalyzer pa(small_path_spec());
  const PathVariationModel model = small_model();
  stats::RunOptions opt;
  opt.samples = 10;
  opt.seed = 17;
  opt.exec.threads = 1;
  opt.exec.batch = 1;
  const auto ref = pa.monte_carlo(model, opt);
  ASSERT_EQ(ref.values.size(), 10u);

  for (const std::size_t k : {std::size_t{2}, std::size_t{4},
                              std::size_t{8}}) {
    opt.exec.batch = k;
    const auto got = pa.monte_carlo(model, opt);
    ASSERT_EQ(got.values.size(), ref.values.size()) << "batch " << k;
    for (std::size_t s = 0; s < ref.values.size(); ++s) {
      EXPECT_EQ(got.values[s], ref.values[s])
          << "batch " << k << " sample " << s;
    }
    ASSERT_EQ(got.samples.size(), ref.samples.size());
    for (std::size_t s = 0; s < ref.samples.size(); ++s) {
      EXPECT_EQ(got.samples[s], ref.samples[s]);
    }
    EXPECT_EQ(got.stats.mean(), ref.stats.mean()) << "batch " << k;
  }
}

// At a fixed batch width the thread-count determinism contract of the
// scalar driver carries over: full blocks and remainder singletons go
// through one work queue, so any worker interleaving yields the same
// per-sample values.
TEST(BatchHotpath, ThreadCountInvariantAtFixedBatch) {
  PathAnalyzer pa(small_path_spec());
  const PathVariationModel model = small_model();
  stats::RunOptions opt;
  opt.samples = 10;
  opt.seed = 23;
  opt.exec.batch = 4;
  opt.exec.threads = 1;
  const auto ref = pa.monte_carlo(model, opt);

  for (const std::size_t t : {std::size_t{2}, std::size_t{8}}) {
    opt.exec.threads = t;
    const auto got = pa.monte_carlo(model, opt);
    ASSERT_EQ(got.values.size(), ref.values.size()) << "threads " << t;
    for (std::size_t s = 0; s < ref.values.size(); ++s) {
      EXPECT_EQ(got.values[s], ref.values[s])
          << "threads " << t << " sample " << s;
    }
  }
}

// 11 samples at batch 4 dispatch as 2 full blocks + 3 singletons; the
// counters and the batch_fill distribution pinned in
// tools/metrics_schema.json must say exactly that.
TEST(BatchHotpath, DispatchCountersAndFillDistribution) {
  PathAnalyzer pa(small_path_spec());
  const PathVariationModel model = small_model();
  obs::Registry reg;
  stats::RunOptions opt;
  opt.samples = 11;
  opt.seed = 5;
  opt.exec.threads = 1;
  opt.exec.batch = 4;
  opt.registry = &reg;
  const auto res = pa.monte_carlo(model, opt);
  EXPECT_EQ(res.values.size(), 11u);

  const obs::Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("stats.mc.batches"), 2u);
  EXPECT_EQ(snap.counters.at("stats.mc.batch_remainder_samples"), 3u);
  const auto& fill = snap.distributions.at("stats.mc.batch_fill");
  EXPECT_EQ(fill.count, 5u);
  EXPECT_EQ(fill.min, 1.0);
  EXPECT_EQ(fill.max, 4.0);
  EXPECT_NEAR(fill.mean, (2.0 * 4.0 + 3.0 * 1.0) / 5.0, 1e-12);
}

// Synthetic evaluators isolate the Runner's batch dispatcher from the
// transient engine: the batched overload must reproduce the scalar
// fail-soft behaviour exactly -- same survivor values, same classified
// failure records -- and a failed slot must not perturb its neighbours.
TEST(BatchHotpath, FailSoftSkipParity) {
  const std::vector<stats::VariationSource> sources(2);
  auto value_of = [](const Vector& w) { return 3.0 * w[0] - 0.5 * w[1]; };
  auto fails = [](const Vector& w) { return w[0] > 0.4; };

  const stats::LanedPerformanceFn f = [&](const Vector& w, std::size_t) {
    if (fails(w)) {
      throw sim::SimulationError(sim::FailureKind::kNewtonNonConvergence,
                                 "synthetic divergence");
    }
    return value_of(w);
  };
  const stats::BatchPerformanceFn fb =
      [&](const std::vector<Vector>& w, std::size_t,
          std::vector<stats::BatchSlot>& out) {
        for (std::size_t b = 0; b < w.size(); ++b) {
          if (fails(w[b])) {
            out[b].failed = true;
            out[b].diag.kind = sim::FailureKind::kNewtonNonConvergence;
            out[b].diag.detail = "synthetic divergence";
          } else {
            out[b].value = value_of(w[b]);
          }
        }
      };

  stats::RunOptions opt;
  opt.samples = 37;
  opt.seed = 11;
  opt.exec.threads = 1;
  opt.exec.on_failure = stats::FailurePolicy::kSkip;

  opt.exec.batch = 1;
  const auto ref = stats::Runner(opt).run_monte_carlo(f, fb, sources);
  ASSERT_GT(ref.failures.failed(), 0u);
  ASSERT_GT(ref.failures.survived, 0u);

  opt.exec.batch = 8;
  const auto got = stats::Runner(opt).run_monte_carlo(f, fb, sources);
  EXPECT_EQ(got.values, ref.values);
  EXPECT_EQ(got.failures.attempted, ref.failures.attempted);
  EXPECT_EQ(got.failures.survived, ref.failures.survived);
  ASSERT_EQ(got.failures.failures.size(), ref.failures.failures.size());
  for (std::size_t i = 0; i < ref.failures.failures.size(); ++i) {
    EXPECT_EQ(got.failures.failures[i].index, ref.failures.failures[i].index);
    EXPECT_EQ(got.failures.failures[i].kind, ref.failures.failures[i].kind);
    EXPECT_EQ(got.failures.failures[i].detail,
              ref.failures.failures[i].detail);
  }

  // Under kAbort the first failed slot surfaces as the classified
  // exception, exactly like the scalar path.
  opt.exec.on_failure = stats::FailurePolicy::kAbort;
  EXPECT_THROW(stats::Runner(opt).run_monte_carlo(f, fb, sources),
               sim::SimulationError);
}

// The strided-batch numeric kernels must match their scalar counterparts
// bitwise, lane by lane, for the SoA layout soa[i * lanes + l].
TEST(BatchHotpath, NumericKernelsMatchScalarBitwise) {
  constexpr std::size_t kLanes = 8;
  constexpr std::size_t kRows = 3;
  constexpr std::size_t kCols = 4;
  std::uint64_t lcg = 0x243f6a8885a308d3ull;
  auto rnd = [&]() {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<double>(lcg >> 11) / 9.007199254740992e15 - 0.5;
  };

  // axpy_batch over a flat SoA block == scalar axpy on each lane slice.
  {
    std::vector<double> x(kCols * kLanes), y(kCols * kLanes);
    for (auto& v : x) v = rnd();
    for (auto& v : y) v = rnd();
    std::vector<double> y_ref = y;
    const double a = rnd();
    numeric::axpy_batch(a, x.data(), y.data(), x.size());
    for (std::size_t i = 0; i < y_ref.size(); ++i) y_ref[i] += a * x[i];
    EXPECT_EQ(y, y_ref);
  }

  // mul_into_batch with per-lane matrices == mul_into per lane.
  {
    std::vector<Matrix> mats(kLanes, Matrix(kRows, kCols));
    std::vector<const Matrix*> mp(kLanes);
    for (std::size_t l = 0; l < kLanes; ++l) {
      for (std::size_t i = 0; i < kRows; ++i) {
        for (std::size_t j = 0; j < kCols; ++j) mats[l](i, j) = rnd();
      }
      mp[l] = &mats[l];
    }
    std::vector<double> x(kCols * kLanes), y(kRows * kLanes, 0.0);
    for (auto& v : x) v = rnd();
    numeric::mul_into_batch(mp.data(), kRows, kCols, x.data(), y.data(),
                            kLanes);
    Vector xl(kCols), yl(kRows);
    for (std::size_t l = 0; l < kLanes; ++l) {
      for (std::size_t j = 0; j < kCols; ++j) xl[j] = x[j * kLanes + l];
      numeric::mul_into(mats[l], xl, yl);
      for (std::size_t i = 0; i < kRows; ++i) {
        EXPECT_EQ(y[i * kLanes + l], yl[i]) << "lane " << l << " row " << i;
      }
    }
  }

  // solve_into_strided scatters the exact solve_into solution.
  {
    Matrix a(kRows, kRows);
    for (std::size_t i = 0; i < kRows; ++i) {
      for (std::size_t j = 0; j < kRows; ++j) a(i, j) = rnd();
      a(i, i) += 4.0;  // keep it comfortably nonsingular
    }
    const numeric::LuFactorization lu(a);
    std::vector<double> b(kRows * kLanes), x(kRows * kLanes, 0.0);
    for (auto& v : b) v = rnd();
    Vector sb(kRows), sx(kRows), bl(kRows), xl(kRows);
    for (std::size_t l = 0; l < kLanes; ++l) {
      lu.solve_into_strided(&b[l], &x[l], kLanes, sb, sx);
      for (std::size_t i = 0; i < kRows; ++i) bl[i] = b[i * kLanes + l];
      lu.solve_into(bl, xl);
      for (std::size_t i = 0; i < kRows; ++i) {
        EXPECT_EQ(x[i * kLanes + l], xl[i]) << "lane " << l << " row " << i;
      }
    }
  }
}

// --batch / LCSF_BATCH plumbing: strict parsing, classified errors, and
// the override-then-env-then-default resolution order.
TEST(BatchHotpath, BatchParsingAndDefaultResolution) {
  EXPECT_EQ(stats::parse_batch("8", "--batch"), 8u);
  EXPECT_EQ(stats::parse_batch("1", "--batch"), 1u);
  for (const char* bad : {"0", "-3", "0x8", "4q", "", "+2", "3.5"}) {
    try {
      stats::parse_batch(bad, "--batch");
      FAIL() << "parse_batch accepted `" << bad << "`";
    } catch (const sim::SimulationError& e) {
      EXPECT_EQ(e.kind(), sim::FailureKind::kInvalidInput) << bad;
    }
  }

  // Resolution order: set_default_batch override > LCSF_BATCH > compiled
  // default. Restore process state on every exit path.
  stats::set_default_batch(0);
  ASSERT_EQ(setenv("LCSF_BATCH", "6", 1), 0);
  EXPECT_EQ(stats::default_batch(), 6u);
  stats::set_default_batch(3);
  EXPECT_EQ(stats::default_batch(), 3u);
  stats::set_default_batch(0);
  ASSERT_EQ(setenv("LCSF_BATCH", "nope", 1), 0);
  EXPECT_THROW(stats::default_batch(), sim::SimulationError);
  ASSERT_EQ(unsetenv("LCSF_BATCH"), 0);
  EXPECT_EQ(stats::default_batch(), stats::kDefaultBatch);
}

}  // namespace
}  // namespace lcsf::core
