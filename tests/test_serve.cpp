// Tests for the analysis service stack (docs/serving.md): the strict
// serve::Json codec, the coalescing LRU serve::DesignCache, the
// lcsf-serve-v1 dispatcher (determinism, error classification) and the
// TCP server end to end. Concurrency tests use runtime::ThreadPool, the
// project's only sanctioned thread source.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/session.hpp"
#include "core/path.hpp"
#include "runtime/thread_pool.hpp"
#include "serve/cache.hpp"
#include "serve/json.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "sim/diagnostics.hpp"
#include "timing/sta.hpp"

namespace lcsf {
namespace {

// ---- serve::Json ------------------------------------------------------

TEST(ServeJson, RoundTripsCanonically) {
  const std::string text =
      R"({"a":1,"b":-2.5,"c":"x\n\"y","d":[true,false,null],"e":{}})";
  const serve::Json v = serve::Json::parse(text);
  EXPECT_EQ(v.dump(), text);
  // Canonical: re-parsing the dump reproduces the same bytes.
  EXPECT_EQ(serve::Json::parse(v.dump()).dump(), text);
}

TEST(ServeJson, PreservesIntegerTokens) {
  const serve::Json v = serve::Json::parse(R"({"n":9007199254740993})");
  EXPECT_EQ(v.dump(), R"({"n":9007199254740993})");  // not 9.00720e+15
}

TEST(ServeJson, RejectsMalformedInput) {
  const auto kind = [](const std::string& text) {
    try {
      (void)serve::Json::parse(text);
    } catch (const sim::SimulationError& e) {
      return e.kind();
    }
    return sim::FailureKind::kNone;
  };
  EXPECT_EQ(kind("{"), sim::FailureKind::kInvalidInput);
  EXPECT_EQ(kind("{} trailing"), sim::FailureKind::kInvalidInput);
  EXPECT_EQ(kind(R"({"a":1,"a":2})"), sim::FailureKind::kInvalidInput);
  EXPECT_EQ(kind("nul"), sim::FailureKind::kInvalidInput);
  EXPECT_EQ(kind(R"(["unterminated)"), sim::FailureKind::kInvalidInput);
  EXPECT_EQ(kind("[1,]"), sim::FailureKind::kInvalidInput);
  EXPECT_EQ(kind(""), sim::FailureKind::kInvalidInput);
}

// ---- api::Session -----------------------------------------------------

TEST(ApiSession, MatchesDirectAnalyzerBitwise) {
  api::DesignSpec spec;
  spec.circuit = "s27";
  const auto session = api::Session::load(spec);

  // The CLI-equivalence contract: a Session analysis and a hand-built
  // analyzer over the same inputs agree bitwise.
  const auto& nl = session->netlist();
  const auto path = timing::longest_path(nl);
  core::PathSpec pspec = core::PathSpec::from_benchmark(
      session->tech(), nl, path, spec.elements);
  pspec.stage_window = spec.stage_window;
  core::PathAnalyzer direct(pspec);

  core::PathVariationModel model;
  model.std_dl = 0.33;
  model.std_vt = 0.33;
  stats::RunOptions opt;
  opt.samples = 8;
  opt.seed = 7;
  const auto a = session->run_monte_carlo(model, opt);
  const auto b = direct.monte_carlo(model, opt);
  ASSERT_EQ(a.values.size(), b.values.size());
  for (std::size_t i = 0; i < a.values.size(); ++i) {
    EXPECT_EQ(a.values[i], b.values[i]);
  }
}

TEST(ApiSession, CacheKeyIsContentSensitive) {
  api::DesignSpec a;
  a.circuit = "s27";
  api::DesignSpec b = a;
  EXPECT_EQ(a.cache_key(), b.cache_key());
  b.elements = 12;
  EXPECT_NE(a.cache_key(), b.cache_key());
  b = a;
  b.graph = true;
  EXPECT_NE(a.cache_key(), b.cache_key());
  b = a;
  b.retry = true;
  EXPECT_NE(a.cache_key(), b.cache_key());
  b = a;
  b.circuit = "s208";
  EXPECT_NE(a.cache_key(), b.cache_key());
}

TEST(ApiSession, ClassifiesBadSpecs) {
  const auto kind_of_load = [](const api::DesignSpec& spec) {
    try {
      (void)api::Session::load(spec);
    } catch (const sim::SimulationError& e) {
      return e.kind();
    }
    return sim::FailureKind::kNone;
  };
  api::DesignSpec unknown;
  unknown.circuit = "does-not-exist";
  EXPECT_EQ(kind_of_load(unknown), sim::FailureKind::kInvalidInput);
  api::DesignSpec badtech;
  badtech.circuit = "s27";
  badtech.tech = "90nm";
  EXPECT_EQ(kind_of_load(badtech), sim::FailureKind::kInvalidInput);
  api::DesignSpec neither;
  EXPECT_EQ(kind_of_load(neither), sim::FailureKind::kInvalidInput);
  api::DesignSpec baddeck;
  baddeck.deck = "R1 a b not-a-number\n";
  EXPECT_EQ(kind_of_load(baddeck), sim::FailureKind::kInvalidInput);
}

TEST(ApiSession, ReportsPositiveMemoryFootprint) {
  api::DesignSpec spec;
  spec.circuit = "s27";
  EXPECT_GT(api::Session::load(spec)->memory_bytes(), sizeof(api::Session));
  spec.graph = true;
  spec.top_k = 4;
  EXPECT_GT(api::Session::load(spec)->memory_bytes(), sizeof(api::Session));
}

// ---- serve::DesignCache -----------------------------------------------

api::DesignSpec spec_for(const std::string& circuit) {
  api::DesignSpec spec;
  spec.circuit = circuit;
  return spec;
}

TEST(DesignCache, HitsReturnTheSameSession) {
  serve::DesignCache cache;
  const auto a = cache.get(spec_for("s27"));
  const auto b = cache.get(spec_for("s27"));
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(cache.resident_bytes(), a->memory_bytes());
}

TEST(DesignCache, EvictsLruUnderByteBudget) {
  serve::DesignCache::Config cfg;
  cfg.max_bytes = 1;  // nothing fits; only the just-touched entry stays
  serve::DesignCache cache(cfg);
  const auto a = cache.get(spec_for("s27"));
  EXPECT_EQ(cache.entries(), 1u);  // a single over-budget entry is kept
  (void)cache.get(spec_for("s208"));
  EXPECT_EQ(cache.entries(), 1u);  // s27 evicted to admit s208
  EXPECT_EQ(cache.stats().evictions, 1u);
  // The evicted design is still usable by holders of the shared_ptr.
  EXPECT_GT(a->memory_bytes(), 0u);
  // Re-requesting the evicted key is a miss that re-characterizes.
  (void)cache.get(spec_for("s27"));
  EXPECT_EQ(cache.stats().misses, 3u);
  EXPECT_EQ(cache.stats().evictions, 2u);
}

TEST(DesignCache, FailedLoadsAreNotCached) {
  serve::DesignCache cache;
  EXPECT_THROW((void)cache.get(spec_for("nope")), sim::SimulationError);
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_THROW((void)cache.get(spec_for("nope")), sim::SimulationError);
}

TEST(DesignCache, CoalescesConcurrentLoadsOfOneKey) {
  serve::DesignCache cache;
  constexpr std::size_t kLanes = 4;
  std::vector<std::shared_ptr<api::Session>> got(kLanes);
  runtime::ThreadPool pool(kLanes);
  pool.parallel_for_lanes(
      kLanes,
      [&](std::size_t begin, std::size_t end, std::size_t) {
        for (std::size_t i = begin; i < end; ++i) {
          got[i] = cache.get(spec_for("s27"));
        }
      },
      1);
  for (std::size_t i = 1; i < kLanes; ++i) {
    EXPECT_EQ(got[0].get(), got[i].get());
  }
  // Exactly one characterization happened no matter the interleaving.
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, kLanes - 1);
}

// ---- dispatcher -------------------------------------------------------

struct DispatchFixture {
  serve::DesignCache cache;
  obs::Registry registry;
  std::shared_mutex gate;
  serve::ServeContext ctx;

  DispatchFixture() {
    ctx.cache = &cache;
    ctx.registry = &registry;
    ctx.metrics_gate = &gate;
  }

  std::string dispatch(const std::string& line) {
    return serve::dispatch_request(line, ctx).response;
  }
};

TEST(Dispatch, ColdAndWarmResponsesAreByteIdentical) {
  DispatchFixture f;
  const std::string req =
      R"({"id":"r1","type":"monte_carlo","circuit":"s27","samples":6,"seed":3})";
  const std::string cold = f.dispatch(req);
  const std::string warm = f.dispatch(req);
  EXPECT_EQ(cold, warm);
  EXPECT_EQ(f.cache.stats().misses, 1u);
  EXPECT_EQ(f.cache.stats().hits, 1u);
  EXPECT_NE(cold.find("\"ok\":true"), std::string::npos);
}

TEST(Dispatch, ThreadCountDoesNotChangeResponseBytes) {
  DispatchFixture f;
  const auto req = [](std::size_t threads) {
    return std::string(R"({"id":"t","type":"monte_carlo","circuit":"s27",)") +
           R"("samples":12,"seed":5,"threads":)" + std::to_string(threads) +
           "}";
  };
  const std::string t1 = f.dispatch(req(1));
  const std::string t2 = f.dispatch(req(2));
  const std::string t8 = f.dispatch(req(8));
  // The thread count is part of the request line but not of the design
  // or the sampling contract: all three must carry identical numbers.
  const auto payload = [](const std::string& r) {
    return r.substr(r.find("\"monte_carlo\""));
  };
  EXPECT_EQ(payload(t1), payload(t2));
  EXPECT_EQ(payload(t1), payload(t8));
}

TEST(Dispatch, ConcurrentAndSerialResponsesAgree) {
  // The same request mix dispatched from concurrent lanes and serially
  // must produce identical per-request bytes (responses are a pure
  // function of the request line).
  std::vector<std::string> requests;
  for (int i = 0; i < 8; ++i) {
    requests.push_back(
        R"({"id":)" + std::to_string(i) +
        R"(,"type":"monte_carlo","circuit":)" +
        (i % 2 == 0 ? R"("s27")" : R"("s208")") +
        R"(,"samples":5,"seed":)" + std::to_string(2 + i % 3) + "}");
  }

  DispatchFixture serial;
  std::vector<std::string> expect;
  for (const auto& r : requests) expect.push_back(serial.dispatch(r));

  DispatchFixture shared;
  std::vector<std::string> got(requests.size());
  runtime::ThreadPool pool(4);
  pool.parallel_for_lanes(
      requests.size(),
      [&](std::size_t begin, std::size_t end, std::size_t lane) {
        serve::ServeContext ctx = shared.ctx;
        ctx.lane = lane;
        for (std::size_t i = begin; i < end; ++i) {
          got[i] = serve::dispatch_request(requests[i], ctx).response;
        }
      },
      1);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(got[i], expect[i]) << requests[i];
  }
  // Two designs, eight requests: everything after the two cold loads hit.
  EXPECT_EQ(shared.cache.stats().misses, 2u);
  EXPECT_EQ(shared.cache.stats().hits, 6u);
}

TEST(Dispatch, ClassifiesProtocolErrors) {
  DispatchFixture f;
  const auto expect_error = [&](const std::string& line,
                                const std::string& kind) {
    const std::string resp = f.dispatch(line);
    const serve::Json v = serve::Json::parse(resp);
    ASSERT_NE(v.find("error"), nullptr) << resp;
    EXPECT_EQ(v.find("error")->find("kind")->as_string(), kind) << resp;
    EXPECT_FALSE(v.find("ok")->as_bool());
  };
  expect_error("not json at all", "invalid-input");
  expect_error("[1,2,3]", "invalid-input");
  expect_error(R"({"type":"load","circuit":"s27"})", "invalid-input");
  expect_error(R"({"id":1,"type":"frobnicate"})", "invalid-input");
  expect_error(R"({"id":1,"type":"load"})", "invalid-input");
  expect_error(R"({"id":1,"type":"load","circuit":"bogus"})",
               "invalid-input");
  expect_error(R"({"id":1,"type":"load","circuit":"s27","bogus":1})",
               "invalid-input");
  expect_error(R"({"id":1,"type":"monte_carlo","circuit":"s27","samples":0})",
               "invalid-input");
  expect_error(
      R"({"id":1,"type":"monte_carlo","circuit":"s27","on_failure":"x"})",
      "invalid-input");
  // Error responses echo the id when it was parseable.
  const std::string resp = f.dispatch(R"({"id":"e9","type":"nope"})");
  EXPECT_NE(resp.find(R"("id":"e9")"), std::string::npos);
}

TEST(Dispatch, MetricsReportsServeCounters) {
  DispatchFixture f;
  (void)f.dispatch(
      R"({"id":1,"type":"monte_carlo","circuit":"s27","samples":4})");
  (void)f.dispatch(R"({"id":2,"type":"bad-type"})");
  const std::string resp = f.dispatch(R"({"id":3,"type":"metrics"})");
  const serve::Json v = serve::Json::parse(resp);
  const serve::Json* counters = v.find("metrics")->find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->find("serve.requests")->as_int(), 3);
  EXPECT_EQ(counters->find("serve.errors")->as_int(), 1);
  EXPECT_EQ(counters->find("serve.requests.monte_carlo")->as_int(), 1);
  const serve::Json* cache = v.find("cache");
  ASSERT_NE(cache, nullptr);
  EXPECT_EQ(cache->find("misses")->as_int(), 1);
  EXPECT_EQ(cache->find("entries")->as_int(), 1);
  // Engine counters from the per-request registry were merged in.
  EXPECT_GT(counters->find("stats.mc.samples")->as_int(), 0);
}

TEST(Dispatch, ShutdownSetsTheFlag) {
  DispatchFixture f;
  const auto out =
      serve::dispatch_request(R"({"id":1,"type":"shutdown"})", f.ctx);
  EXPECT_TRUE(out.shutdown);
  EXPECT_NE(out.response.find("\"ok\":true"), std::string::npos);
  const auto bad = serve::dispatch_request(
      R"({"id":1,"type":"shutdown","extra":1})", f.ctx);
  EXPECT_FALSE(bad.shutdown);  // strict validation applies here too
}

// ---- TCP server end to end --------------------------------------------

/// Minimal blocking NDJSON client for the tests: connect to the
/// loopback port, send each request line, read one response line each.
std::vector<std::string> exchange(int port,
                                  const std::vector<std::string>& requests) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  std::vector<std::string> responses;
  std::string buffer;
  for (const std::string& req : requests) {
    const std::string line = req + "\n";
    EXPECT_EQ(::send(fd, line.data(), line.size(), 0),
              static_cast<ssize_t>(line.size()));
    for (;;) {
      const std::size_t nl = buffer.find('\n');
      if (nl != std::string::npos) {
        responses.push_back(buffer.substr(0, nl));
        buffer.erase(0, nl + 1);
        break;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n <= 0) {
        ADD_FAILURE() << "connection closed mid-response";
        ::close(fd);
        return responses;
      }
      buffer.append(chunk, static_cast<std::size_t>(n));
    }
  }
  ::close(fd);
  return responses;
}

TEST(Server, ServesRequestsOverTcpAndShutsDown) {
  obs::Registry registry;
  serve::ServerOptions opt;
  opt.workers = 2;
  opt.registry = &registry;
  serve::Server server(opt);
  server.bind_and_listen();
  ASSERT_GT(server.port(), 0);

  const std::string mc_req =
      R"({"id":"w1","type":"monte_carlo","circuit":"s27","samples":6,"seed":3})";

  // In-process dispatch must equal the over-the-wire bytes: compute the
  // expected response through a private context first.
  serve::DesignCache expected_cache;
  serve::ServeContext expected_ctx;
  expected_ctx.cache = &expected_cache;
  const std::string expected =
      serve::dispatch_request(mc_req, expected_ctx).response;

  std::vector<std::string> responses;
  runtime::ThreadPool pool(2);
  pool.parallel_for_lanes(
      2,
      [&](std::size_t begin, std::size_t, std::size_t) {
        if (begin == 0) {
          server.run();  // blocks until the client sends shutdown
        } else {
          responses = exchange(
              server.port(),
              {mc_req, mc_req, R"({"id":"w3","type":"shutdown"})"});
        }
      },
      1);

  ASSERT_EQ(responses.size(), 3u);
  EXPECT_EQ(responses[0], expected);  // wire == in-process, cold
  EXPECT_EQ(responses[1], expected);  // and cached
  EXPECT_NE(responses[2].find("\"type\":\"shutdown\""), std::string::npos);
  EXPECT_EQ(server.cache().stats().hits, 1u);
}

}  // namespace
}  // namespace lcsf
