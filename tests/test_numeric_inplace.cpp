// Bitwise-equivalence tests for the PR 4 in-place/workspace kernels: every
// pooled variant must reproduce its allocating counterpart bit for bit
// (the invariant the zero-allocation Monte-Carlo hot path rests on), and
// the workspace-pooled statistical drivers must stay thread-count
// invariant.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <random>

#include "circuit/technology.hpp"
#include "core/path.hpp"
#include "interconnect/coupled_lines.hpp"
#include "mor/pact.hpp"
#include "mor/poleres.hpp"
#include "mor/variational.hpp"
#include "numeric/complex_matrix.hpp"
#include "numeric/eigen_real.hpp"
#include "numeric/fp_compare.hpp"
#include "numeric/lu.hpp"
#include "numeric/matrix.hpp"
#include "numeric/sparse.hpp"
#include "spice/transient.hpp"
#include "stats/analysis.hpp"
#include "teta/convolution.hpp"
#include "teta/stage.hpp"
#include "timing/cells.hpp"

namespace lcsf {
namespace {

using numeric::ComplexMatrix;
using numeric::CVector;
using numeric::Matrix;
using numeric::Vector;
using numeric::exact_eq;

Matrix random_matrix(std::size_t n, std::size_t m, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  Matrix a(n, m);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < m; ++j) a(i, j) = u(rng);
  }
  return a;
}

Matrix random_spd(std::size_t n, unsigned seed) {
  Matrix a = random_matrix(n, n, seed);
  Matrix s = a.transposed() * a;
  for (std::size_t i = 0; i < n; ++i) s(i, i) += static_cast<double>(n);
  return s;
}

Vector random_vector(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  Vector v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = u(rng);
  return v;
}

void expect_bitwise(const Matrix& a, const Matrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      EXPECT_TRUE(exact_eq(a(i, j), b(i, j))) << "(" << i << "," << j << ")";
    }
  }
}

void expect_bitwise(const Vector& a, const Vector& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(exact_eq(a[i], b[i])) << "[" << i << "]";
  }
}

void expect_bitwise(const ComplexMatrix& a, const ComplexMatrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      EXPECT_TRUE(exact_eq(a(i, j).real(), b(i, j).real()) &&
                  exact_eq(a(i, j).imag(), b(i, j).imag()))
          << "(" << i << "," << j << ")";
    }
  }
}

TEST(InPlace, MatrixAxpyMatchesOperatorPath) {
  const Matrix x = random_matrix(7, 5, 11);
  const Matrix y0 = random_matrix(7, 5, 12);
  const double a = 0.37;

  Matrix via_ops = y0;
  via_ops += x * a;

  Matrix via_axpy = y0;
  via_axpy.axpy(a, x);
  expect_bitwise(via_axpy, via_ops);
}

TEST(InPlace, VectorAxpyMatchesElementwise) {
  const Vector x = random_vector(9, 21);
  const Vector y0 = random_vector(9, 22);
  const double a = -1.75;

  Vector expected = y0;
  for (std::size_t i = 0; i < expected.size(); ++i) expected[i] += a * x[i];

  Vector y = y0;
  numeric::axpy(a, x, y);
  expect_bitwise(y, expected);
}

TEST(InPlace, GemmIntoMatchesOperatorProduct) {
  const Matrix a = random_matrix(6, 4, 31);
  const Matrix b = random_matrix(4, 5, 32);
  const Matrix expected = a * b;

  Matrix c = random_matrix(2, 9, 33);  // wrong shape + garbage: must reset
  numeric::gemm_into(a, b, c);
  expect_bitwise(c, expected);

  // Reuse with another product of the same shape (the pooled pattern).
  const Matrix a2 = random_matrix(6, 4, 34);
  numeric::gemm_into(a2, b, c);
  expect_bitwise(c, a2 * b);
}

TEST(InPlace, MulIntoMatchesOperatorProduct) {
  const Matrix a = random_matrix(6, 6, 41);
  const Vector x = random_vector(6, 42);
  Vector y = random_vector(3, 43);  // wrong size: must resize
  numeric::mul_into(a, x, y);
  expect_bitwise(y, a * x);
}

TEST(InPlace, DenseLuRefactorMatchesFreshFactorization) {
  const Matrix a = random_spd(8, 51);
  const Vector b = random_vector(8, 52);

  const numeric::LuFactorization fresh(a);
  numeric::LuFactorization pooled;
  pooled.refactor(a);
  Vector x;
  pooled.solve_into(b, x);
  expect_bitwise(x, fresh.solve(b));

  // Same-shape refactor reusing pivot/storage.
  const Matrix a2 = random_spd(8, 53);
  pooled.refactor(a2);
  pooled.solve_into(b, x);
  expect_bitwise(x, numeric::LuFactorization(a2).solve(b));

  // Matrix right-hand side via the column-scratch overload.
  const Matrix rhs = random_matrix(8, 3, 54);
  Matrix xm;
  Vector col_b, col_x;
  pooled.solve_into(rhs, xm, col_b, col_x);
  expect_bitwise(xm, numeric::LuFactorization(a2).solve(rhs));
}

numeric::SparseMatrix banded(std::size_t n, double diag, double off) {
  numeric::SparseMatrix a(n);
  for (std::size_t i = 0; i < n; ++i) {
    a.add(i, i, diag);
    if (i + 1 < n) {
      a.add(i, i + 1, off);
      a.add(i + 1, i, off);
    }
    if (i + 3 < n) {
      a.add(i, i + 3, 0.5 * off);
      a.add(i + 3, i, 0.5 * off);
    }
  }
  return a;
}

TEST(InPlace, SparseLuRefactorValueChangeMatchesFresh) {
  const std::size_t n = 40;
  const auto a1 = banded(n, 4.0, -1.0);
  const auto a2 = banded(n, 5.0, -1.25);  // same pattern, new values
  const Vector b = random_vector(n, 61);

  numeric::SparseLu lu(a1);
  lu.refactor(a2);  // numeric fast path against the frozen pattern
  Vector x;
  lu.solve_into(b, x);
  expect_bitwise(x, numeric::SparseLu(a2).solve(b));
}

TEST(InPlace, SparseLuRefactorPatternSubsetMatchesFresh) {
  const std::size_t n = 30;
  const auto full = banded(n, 4.0, -1.0);
  // Subset pattern: the long-range band vanishes (structural zeros in the
  // frozen pattern participate as explicit zeros; every nonzero of the
  // solution must still match the from-scratch factorization bitwise).
  const auto subset = banded(n, 4.0 + 1e-3, 0.0);
  numeric::SparseMatrix sparse_subset(n);
  for (std::size_t i = 0; i < n; ++i) {
    sparse_subset.add(i, i, 4.0 + 1e-3);
    if (i + 1 < n) {
      sparse_subset.add(i, i + 1, -0.5);
      sparse_subset.add(i + 1, i, -0.5);
    }
  }
  const Vector b = random_vector(n, 62);

  numeric::SparseLu lu(full);
  lu.refactor(sparse_subset);
  Vector x;
  lu.solve_into(b, x);
  const Vector expected = numeric::SparseLu(sparse_subset).solve(b);
  ASSERT_EQ(x.size(), expected.size());
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_TRUE(exact_eq(x[i], expected[i]) ||
                (numeric::exact_zero(x[i]) && numeric::exact_zero(expected[i])))
        << i;
  }
}

TEST(InPlace, SparseLuRefactorMismatchFallsBackToFull) {
  const std::size_t n = 25;
  const auto a1 = banded(n, 4.0, -1.0);
  // New structural entries outside the frozen pattern: silent full refactor.
  numeric::SparseMatrix a2 = banded(n, 4.0, -1.0);
  a2.add(0, n - 1, -0.25);
  a2.add(n - 1, 0, -0.25);
  const Vector b = random_vector(n, 63);

  numeric::SparseLu lu(a1);
  lu.refactor(a2);
  Vector x;
  lu.solve_into(b, x);
  expect_bitwise(x, numeric::SparseLu(a2).solve(b));
}

TEST(InPlace, ComplexLuRefactorMatchesFresh) {
  const std::size_t n = 6;
  std::mt19937 rng(71);
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  ComplexMatrix a(n, n);
  CVector b(n);
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = {u(rng), u(rng)};
    for (std::size_t j = 0; j < n; ++j) {
      a(i, j) = {u(rng), u(rng)};
      if (i == j) a(i, j) += 4.0;
    }
  }
  const numeric::ComplexLu fresh(a);
  numeric::ComplexLu pooled;
  pooled.refactor(a);
  CVector x;
  pooled.solve_into(b, x);
  const CVector expected = fresh.solve(b);
  ASSERT_EQ(x.size(), expected.size());
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_TRUE(exact_eq(x[i].real(), expected[i].real()) &&
                exact_eq(x[i].imag(), expected[i].imag()))
        << i;
  }
}

TEST(InPlace, EigenRealIntoMatchesEigenReal) {
  numeric::RealEigenScratch scratch;
  numeric::RealEigen pooled;
  for (unsigned seed : {81u, 82u}) {  // second round reuses warm scratch
    const Matrix a = random_matrix(9, 9, seed);
    const numeric::RealEigen fresh = numeric::eigen_real(a);
    numeric::eigen_real_into(a, scratch, pooled);
    ASSERT_EQ(pooled.values.size(), fresh.values.size());
    for (std::size_t k = 0; k < fresh.values.size(); ++k) {
      EXPECT_TRUE(exact_eq(pooled.values[k].real(), fresh.values[k].real()));
      EXPECT_TRUE(exact_eq(pooled.values[k].imag(), fresh.values[k].imag()));
    }
    expect_bitwise(pooled.packed_vectors, fresh.packed_vectors);
  }
}

/// One-port two-pole test load for the convolver / TETA round trips.
mor::PoleResidueModel test_load() {
  Matrix direct(1, 1);
  direct(0, 0) = 5.0;
  ComplexMatrix r1(1, 1), r2(1, 1);
  r1(0, 0) = 8e11;
  r2(0, 0) = 3e11;
  return mor::PoleResidueModel(1, direct, {{-1e9, 0.0}, {-4e9, 0.0}},
                               {r1, r2});
}

TEST(InPlace, ConvolverResetAndHistoryIntoMatchCtorAndHistory) {
  const double dt = 5e-12;
  const mor::PoleResidueModel z = test_load();
  teta::RecursiveConvolver fresh(z, dt);
  teta::RecursiveConvolver pooled;
  pooled.reset(test_load(), 2 * dt);  // different shape first: must re-form
  pooled.reset(z, dt);

  Vector hist_buf;
  std::mt19937 rng(91);
  std::uniform_real_distribution<double> u(-1e-3, 1e-3);
  for (int k = 0; k < 50; ++k) {
    const Vector i{u(rng)};
    pooled.history_into(hist_buf);
    expect_bitwise(hist_buf, fresh.history());
    fresh.advance(i);
    pooled.advance(i);
  }
}

/// Small variational stage load, built like PathAnalyzer characterizes one.
mor::VariationalRom small_rom() {
  const circuit::Technology tech = circuit::technology_180nm();
  mor::PencilFamily family = [tech](const Vector& w) {
    interconnect::WireVariation wv;
    wv.width = w[0] * tech.wire_tol.width;
    wv.ild_thickness = w[1] * tech.wire_tol.ild_thickness;
    interconnect::CoupledLineSpec spec;
    spec.num_lines = 1;
    spec.segment_length = 1e-6;
    spec.length = 3e-6;
    spec.geometry = interconnect::apply_variation(tech.wire, wv);
    auto bundle = interconnect::build_coupled_lines(spec);
    bundle.netlist.add_capacitor(bundle.far_ends[0], circuit::kGround,
                                 2e-15);
    auto pencil = interconnect::build_ported_pencil(
        bundle.netlist, {bundle.near_ends[0], bundle.far_ends[0]});
    return mor::with_port_conductance(std::move(pencil),
                                      Vector{1e-3, 0.0});
  };
  mor::VariationalOptions vopt;
  vopt.method = mor::ReductionMethod::kPact;
  vopt.pact.internal_modes = 4;
  vopt.fd_step = 0.2;
  return mor::build_variational_rom(family, 2, vopt);
}

TEST(InPlace, EvaluateIntoMatchesEvaluate) {
  const mor::VariationalRom rom = small_rom();
  mor::ReducedModel pooled;
  for (const Vector& w :
       {Vector{0.4, -0.7}, Vector{-1.2, 0.3}, Vector{0.0, 0.0}}) {
    const mor::ReducedModel fresh = rom.evaluate(w);
    rom.evaluate_into(w, pooled);  // storage reused across iterations
    EXPECT_EQ(pooled.num_ports, fresh.num_ports);
    expect_bitwise(pooled.g, fresh.g);
    expect_bitwise(pooled.c, fresh.c);
    expect_bitwise(pooled.b, fresh.b);
  }
  // The all-zero fast path must be an exact copy of the nominal model.
  rom.evaluate_into(Vector{0.0, 0.0}, pooled);
  expect_bitwise(pooled.g, rom.nominal().g);
  expect_bitwise(pooled.c, rom.nominal().c);
  expect_bitwise(pooled.b, rom.nominal().b);
}

void expect_same_model(const mor::PoleResidueModel& a,
                       const mor::PoleResidueModel& b) {
  ASSERT_EQ(a.num_ports(), b.num_ports());
  ASSERT_EQ(a.num_poles(), b.num_poles());
  expect_bitwise(a.direct(), b.direct());
  for (std::size_t k = 0; k < a.num_poles(); ++k) {
    EXPECT_TRUE(exact_eq(a.poles()[k].real(), b.poles()[k].real()) &&
                exact_eq(a.poles()[k].imag(), b.poles()[k].imag()))
        << k;
    expect_bitwise(a.residue(k), b.residue(k));
  }
}

TEST(InPlace, ExtractPoleResidueWorkspaceMatchesPlain) {
  const mor::VariationalRom rom = small_rom();
  mor::PoleResidueWorkspace ws;
  for (const Vector& w : {Vector{0.5, 0.5}, Vector{-0.5, 1.0}}) {
    const mor::ReducedModel m = rom.evaluate(w);
    expect_same_model(mor::extract_pole_residue(m, ws),
                      mor::extract_pole_residue(m));
  }
}

teta::StageCircuit inverter_stage(const circuit::Technology& tech,
                                  const timing::DeviceVariation& dev) {
  teta::StageCircuit stage;
  const std::size_t out = stage.add_port();
  (void)stage.add_port();  // far port
  const std::size_t in = stage.add_input(
      circuit::SourceWaveform::ramp(0.0, tech.vdd, 0.2e-9, 0.1e-9));
  const std::size_t vdd = stage.add_rail(tech.vdd);
  const std::size_t gnd = stage.add_rail(0.0);
  timing::instantiate_cell(timing::find_cell("INV"), tech, stage, out, in,
                           vdd, gnd, dev);
  stage.freeze_device_capacitances();
  return stage;
}

void expect_same_teta(const teta::TetaResult& a, const teta::TetaResult& b) {
  ASSERT_EQ(a.converged, b.converged);
  EXPECT_EQ(a.total_sc_iterations, b.total_sc_iterations);
  ASSERT_EQ(a.time.size(), b.time.size());
  ASSERT_EQ(a.port_voltages.size(), b.port_voltages.size());
  ASSERT_EQ(a.port_voltages.size(), a.time.size());
  for (std::size_t k = 0; k < a.time.size(); ++k) {
    EXPECT_TRUE(exact_eq(a.time[k], b.time[k]));
    expect_bitwise(a.port_voltages[k], b.port_voltages[k]);
  }
}

TEST(InPlace, TetaWorkspaceOverloadsMatchPlainSimulateStage) {
  const circuit::Technology tech = circuit::technology_180nm();
  const mor::VariationalRom rom = small_rom();

  teta::TetaOptions opt;
  opt.dt = 2e-12;
  opt.tstop = 1.0e-9;
  opt.vdd = tech.vdd;

  teta::TetaWorkspace ws;
  teta::TetaResult pooled;
  // Two different samples through one workspace + result: every run must
  // match the fresh 3-arg evaluation bitwise.
  const timing::DeviceVariation devs[] = {{0.0, 0.0}, {4e-9, 0.015}};
  const Vector ws_samples[] = {Vector{0.6, -0.2}, Vector{-0.8, 0.9}};
  for (std::size_t s = 0; s < 2; ++s) {
    const teta::StageCircuit stage = inverter_stage(tech, devs[s]);
    const auto z = mor::stabilize(
        mor::extract_pole_residue(rom.evaluate(ws_samples[s])), nullptr,
        mor::StabilizePolicy::kDirectCompensation);
    const teta::TetaResult fresh = teta::simulate_stage(stage, z, opt);
    ASSERT_TRUE(fresh.converged) << fresh.failure();

    expect_same_teta(teta::simulate_stage(stage, z, opt, ws), fresh);
    teta::simulate_stage(stage, z, opt, ws, pooled);
    expect_same_teta(pooled, fresh);
  }
}

TEST(InPlace, SpiceTransientScratchReuseIsDeterministic) {
  const circuit::Technology tech = circuit::technology_180nm();
  circuit::Netlist nl;
  const auto in = nl.add_node("in");
  const auto out = nl.add_node("out");
  const auto vdd = nl.add_node("vdd");
  nl.add_vsource(vdd, circuit::kGround,
                 circuit::SourceWaveform::dc(tech.vdd));
  nl.add_vsource(in, circuit::kGround,
                 circuit::SourceWaveform::ramp(0.0, tech.vdd, 0.2e-9,
                                               0.1e-9));
  nl.add_mosfet(tech.make_nmos(out, in, circuit::kGround, 4.0));
  nl.add_mosfet(tech.make_pmos(out, in, vdd, 8.0));
  nl.add_capacitor(out, circuit::kGround, 10e-15);
  nl.freeze_device_capacitances();

  spice::TransientOptions opt;
  opt.dt = 2e-12;
  opt.tstop = 1.0e-9;

  // The Newton scratch (matrix, LU, vectors) lives in the simulator and is
  // refactored in place; back-to-back runs and a fresh simulator must agree
  // bitwise.
  spice::TransientSimulator sim(nl);
  const spice::TransientResult r1 = sim.run(opt);
  const spice::TransientResult r2 = sim.run(opt);
  spice::TransientSimulator sim2(nl);
  const spice::TransientResult r3 = sim2.run(opt);
  ASSERT_TRUE(r1.converged) << r1.failure();
  ASSERT_TRUE(r2.converged);
  ASSERT_TRUE(r3.converged);
  const auto w1 = r1.waveform(out);
  const auto w2 = r2.waveform(out);
  const auto w3 = r3.waveform(out);
  ASSERT_EQ(w1.size(), w2.size());
  ASSERT_EQ(w1.size(), w3.size());
  for (std::size_t k = 0; k < w1.size(); ++k) {
    EXPECT_TRUE(exact_eq(w1[k].second, w2[k].second)) << k;
    EXPECT_TRUE(exact_eq(w1[k].second, w3[k].second)) << k;
  }
}

TEST(InPlace, PooledMonteCarloIsThreadCountInvariant) {
  core::PathSpec spec;
  spec.tech = circuit::technology_180nm();
  const auto& lib = timing::cell_library();
  for (std::size_t k = 0; k < lib.size(); ++k) {
    if (lib[k].name == "INV") spec.cells = {k};
  }
  ASSERT_EQ(spec.cells.size(), 1u);
  spec.linear_elements_per_stage = 6;
  spec.stage_window = 1.0e-9;
  spec.dt = 2e-12;
  const core::PathAnalyzer analyzer(spec);

  core::PathVariationModel model;
  model.std_dl = 1.0 / 3.0;
  model.std_vt = 1.0 / 3.0;
  model.std_wire_w = 1.0 / 3.0;

  stats::MonteCarloOptions opt;
  opt.samples = 4;
  opt.seed = 7;

  opt.threads = 1;
  const stats::MonteCarloResult serial = analyzer.monte_carlo(model, opt);
  opt.threads = 3;
  const stats::MonteCarloResult parallel = analyzer.monte_carlo(model, opt);

  ASSERT_EQ(serial.values.size(), parallel.values.size());
  for (std::size_t s = 0; s < serial.values.size(); ++s) {
    EXPECT_TRUE(exact_eq(serial.values[s], parallel.values[s])) << s;
    expect_bitwise(serial.samples[s], parallel.samples[s]);
  }
  EXPECT_TRUE(exact_eq(serial.stats.mean(), parallel.stats.mean()));
}

}  // namespace
}  // namespace lcsf
