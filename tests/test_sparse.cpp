// Tests for the sparse matrix / sparse LU used by the SPICE baseline.
#include <gtest/gtest.h>

#include <random>

#include "numeric/lu.hpp"
#include "numeric/matrix.hpp"
#include "numeric/sparse.hpp"

namespace lcsf::numeric {
namespace {

TEST(SparseMatrix, AccumulatesAndMultiplies) {
  SparseMatrix a(3);
  a.add(0, 0, 2.0);
  a.add(0, 0, 1.0);  // accumulate
  a.add(0, 2, -1.0);
  a.add(1, 1, 4.0);
  a.add(2, 0, -1.0);
  a.add(2, 2, 3.0);
  EXPECT_EQ(a.nonzeros(), 5u);
  Vector y = a.multiply({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(y[0], 0.0);   // 3*1 - 1*3
  EXPECT_DOUBLE_EQ(y[1], 8.0);
  EXPECT_DOUBLE_EQ(y[2], 8.0);   // -1 + 9
  EXPECT_THROW(a.add(3, 0, 1.0), std::out_of_range);
}

TEST(SparseLu, MatchesDenseOnBandedSystem) {
  // Tridiagonal diagonally-dominant system (RC-line-like).
  const std::size_t n = 50;
  SparseMatrix a(n);
  Matrix d(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    a.add(i, i, 4.0);
    d(i, i) = 4.0;
    if (i + 1 < n) {
      a.add(i, i + 1, -1.5);
      a.add(i + 1, i, -1.0);
      d(i, i + 1) = -1.5;
      d(i + 1, i) = -1.0;
    }
  }
  Vector b(n);
  for (std::size_t i = 0; i < n; ++i) b[i] = std::sin(0.3 * double(i));
  Vector xs = SparseLu(a).solve(b);
  Vector xd = solve(d, b);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(xs[i], xd[i], 1e-10);
}

TEST(SparseLu, HandlesFillIn) {
  // Arrow matrix: dense last row/col forces fill.
  const std::size_t n = 20;
  SparseMatrix a(n);
  for (std::size_t i = 0; i < n; ++i) a.add(i, i, 5.0);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    a.add(i, n - 1, 1.0);
    a.add(n - 1, i, 1.0);
  }
  Vector b(n, 1.0);
  Vector x = SparseLu(a).solve(b);
  Vector r = a.multiply(x);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(r[i], 1.0, 1e-10);
}

TEST(SparseLu, ReportsZeroPivot) {
  SparseMatrix a(2);
  a.add(0, 1, 1.0);
  a.add(1, 0, 1.0);  // zero diagonal, natural order fails by design
  EXPECT_THROW(SparseLu{a}, std::runtime_error);
}

class SparseRandomProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(SparseRandomProperty, RandomDominantSystemsSolve) {
  std::mt19937 rng(GetParam());
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  std::uniform_int_distribution<std::size_t> pick(0, 39);
  const std::size_t n = 40;
  SparseMatrix a(n);
  Matrix d(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    a.add(i, i, 10.0);
    d(i, i) += 10.0;
    for (int k = 0; k < 4; ++k) {
      const std::size_t j = pick(rng);
      const double v = u(rng);
      a.add(i, j, v);
      d(i, j) += v;
    }
  }
  Vector b(n);
  for (std::size_t i = 0; i < n; ++i) b[i] = u(rng);
  Vector xs = SparseLu(a).solve(b);
  Vector xd = solve(d, b);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(xs[i], xd[i], 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SparseRandomProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

}  // namespace
}  // namespace lcsf::numeric
