// Tests for the RC-tree builder and Elmore delay, including the
// cross-check against the MNA first moment (Elmore == m1 of the transfer
// to the observation node for RC trees driven at the root).
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/technology.hpp"
#include "interconnect/coupled_lines.hpp"
#include "interconnect/rc_tree.hpp"
#include "mor/pact.hpp"
#include "mor/reduced_model.hpp"
#include "mor/variational.hpp"
#include "numeric/lu.hpp"

namespace lcsf::interconnect {
namespace {

using circuit::kGround;
using numeric::Vector;

TEST(ElmoreDelay, HandComputedLadder) {
  // root -R1- a -R2- b with C_a, C_b: T(b) = R1 C_a + (R1+R2) C_b.
  circuit::Netlist nl;
  const auto root = nl.add_node("root");
  const auto a = nl.add_node("a");
  const auto b = nl.add_node("b");
  nl.add_resistor(root, a, 100.0);
  nl.add_resistor(a, b, 200.0);
  nl.add_capacitor(a, kGround, 1e-12);
  nl.add_capacitor(b, kGround, 2e-12);
  EXPECT_NEAR(elmore_delay(nl, root, b), 100e-12 + 300.0 * 2e-12, 1e-16);
  // Observation at a: side branch b's cap sees only the shared R1.
  EXPECT_NEAR(elmore_delay(nl, root, a), 100.0 * 3e-12, 1e-16);
}

TEST(ElmoreDelay, BranchingSharedResistance) {
  // root -R- s; s -Ra- a (Ca); s -Rb- b (Cb). T(a) = R(Ca+Cb) + Ra Ca.
  circuit::Netlist nl;
  const auto root = nl.add_node("root");
  const auto s = nl.add_node("s");
  const auto a = nl.add_node("a");
  const auto b = nl.add_node("b");
  nl.add_resistor(root, s, 50.0);
  nl.add_resistor(s, a, 100.0);
  nl.add_resistor(s, b, 300.0);
  nl.add_capacitor(a, kGround, 1e-12);
  nl.add_capacitor(b, kGround, 4e-12);
  EXPECT_NEAR(elmore_delay(nl, root, a), 50.0 * 5e-12 + 100.0 * 1e-12,
              1e-16);
  EXPECT_NEAR(elmore_delay(nl, root, b), 50.0 * 5e-12 + 300.0 * 4e-12,
              1e-16);
}

TEST(ElmoreDelay, RejectsNonTreesAndUnreachable) {
  circuit::Netlist nl;
  const auto root = nl.add_node();
  const auto a = nl.add_node();
  const auto b = nl.add_node();
  nl.add_resistor(root, a, 10.0);
  nl.add_resistor(a, b, 10.0);
  nl.add_resistor(root, b, 10.0);  // cycle
  EXPECT_THROW(elmore_delay(nl, root, b), std::invalid_argument);

  circuit::Netlist nl2;
  const auto r2 = nl2.add_node();
  const auto lone = nl2.add_node();
  nl2.add_resistor(r2, kGround, 5.0);
  EXPECT_THROW(elmore_delay(nl2, r2, lone), std::invalid_argument);
}

TEST(RcTree, BuilderTopology) {
  RcTreeSpec spec;
  spec.geometry = circuit::technology_180nm().wire;
  spec.leaf_cap = 3e-15;
  // Trunk (branch 0), two children off its end.
  spec.branches = {{-1, 10e-6}, {0, 5e-6}, {0, 7e-6}};
  const RcTree tree = build_rc_tree(spec);
  EXPECT_EQ(tree.branch_ends.size(), 3u);
  EXPECT_EQ(tree.leaves.size(), 2u);
  // 10 + 5 + 7 segments of R.
  EXPECT_EQ(tree.netlist.resistors().size(), 22u);
  // Parent-first ordering enforced.
  RcTreeSpec bad = spec;
  bad.branches[1].parent = 2;
  EXPECT_THROW(build_rc_tree(bad), std::invalid_argument);
}

// Property: for any tree, the MNA first moment of the voltage transfer to
// a leaf (driven at the root through the port) equals the Elmore delay.
class ElmoreVsMoment : public ::testing::TestWithParam<int> {};

TEST_P(ElmoreVsMoment, FirstMomentMatchesElmore) {
  RcTreeSpec spec;
  spec.geometry = circuit::technology_180nm().wire;
  spec.leaf_cap = 2e-15;
  switch (GetParam()) {
    case 0:
      spec.branches = {{-1, 20e-6}};
      break;
    case 1:
      spec.branches = {{-1, 15e-6}, {0, 10e-6}, {0, 25e-6}};
      break;
    default:
      spec.branches = {{-1, 10e-6}, {0, 10e-6}, {0, 5e-6},
                       {1, 8e-6},   {1, 12e-6}};
      break;
  }
  const RcTree tree = build_rc_tree(spec);
  const circuit::NodeId leaf = tree.leaves.back();

  // Voltage-transfer moments: with the root voltage-driven, the m1 of
  // H(s) = V_leaf / V_root is -T_elmore. Compute via the G-pencil with
  // the root eliminated: G x1 = -C x0 where x0 is the DC solution
  // (all ones) -- standard moment recursion specialized here.
  auto pencil = build_ported_pencil(tree.netlist,
                                    {tree.root, leaf});
  const std::size_t n = pencil.g.rows();
  // Partition: row 0 = root (driven), rest unknown.
  numeric::Matrix gii(n - 1, n - 1), cii(n - 1, n - 1);
  numeric::Vector gi0(n - 1), ci0(n - 1);
  for (std::size_t i = 1; i < n; ++i) {
    gi0[i - 1] = pencil.g(i, 0);
    ci0[i - 1] = pencil.c(i, 0);
    for (std::size_t j = 1; j < n; ++j) {
      gii(i - 1, j - 1) = pencil.g(i, j);
      cii(i - 1, j - 1) = pencil.c(i, j);
    }
  }
  numeric::LuFactorization lu(gii);
  // x0: DC transfer = 1 everywhere (no DC path to ground).
  Vector x0(n - 1, 1.0);
  // m1: G x1 = -(C x0 + c_i0 * 1).
  Vector rhs = cii * x0;
  numeric::axpy(1.0, ci0, rhs);
  for (double& v : rhs) v = -v;
  Vector x1 = lu.solve(rhs);
  // Row 1 of the pencil is the leaf (port order: root, leaf).
  const double m1_leaf = x1[0];

  const double elmore = elmore_delay(tree.netlist, tree.root, leaf);
  EXPECT_NEAR(-m1_leaf, elmore, 1e-9 * elmore + 1e-18)
      << "topology " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Topologies, ElmoreVsMoment,
                         ::testing::Values(0, 1, 2));

// The MOR flow consumes tree loads unchanged: reduced DC + first moment
// match the tree's exact values.
TEST(RcTree, PactReducesTreeLoads) {
  RcTreeSpec spec;
  spec.geometry = circuit::technology_180nm().wire;
  spec.leaf_cap = 4e-15;
  spec.branches = {{-1, 20e-6}, {0, 15e-6}, {0, 10e-6}};
  const RcTree tree = build_rc_tree(spec);
  auto pencil = build_ported_pencil(
      tree.netlist, {tree.root, tree.leaves[0], tree.leaves[1]});
  pencil = mor::with_port_conductance(std::move(pencil),
                                      Vector{5e-3, 0.0, 0.0});
  const auto rom = mor::pact_reduce(pencil, mor::PactOptions{6}).model;
  const auto m0_full = mor::pencil_moment(pencil.g, pencil.c, 3, 0);
  const auto m0_red = rom.moment(0);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_NEAR(m0_red(i, j), m0_full(i, j),
                  1e-8 * std::abs(m0_full(i, j)) + 1e-12);
    }
  }
}

}  // namespace
}  // namespace lcsf::interconnect
