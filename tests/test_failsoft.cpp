// Fail-soft behaviour: failure classification in both engines, bounded
// dt-halving recovery, and per-sample skip/record semantics in the
// statistical drivers (docs/robustness.md).
#include <gtest/gtest.h>

#include <stdexcept>

#include "circuit/netlist.hpp"
#include "circuit/technology.hpp"
#include "mor/poleres.hpp"
#include "numeric/complex_matrix.hpp"
#include "numeric/fp_compare.hpp"
#include "sim/diagnostics.hpp"
#include "spice/transient.hpp"
#include "stats/analysis.hpp"
#include "stats/yield.hpp"
#include "teta/stage.hpp"

namespace lcsf {
namespace {

using circuit::kGround;
using circuit::Netlist;
using circuit::NodeId;
using circuit::SourceWaveform;
using circuit::Technology;
using circuit::technology_180nm;
using numeric::Vector;

// ---------------------------------------------------------------------
// SimDiagnostics basics.

TEST(Diagnostics, MessageFormatsKindTimeAndRetries) {
  sim::SimDiagnostics d;
  EXPECT_FALSE(d.failed());
  EXPECT_EQ(d.message(), "converged");

  d.kind = sim::FailureKind::kBlowUp;
  d.detail = "|v| exceeded 1e4";
  d.failure_time = 1e-9;
  d.retries_used = 2;
  EXPECT_TRUE(d.failed());
  const std::string msg = d.message();
  EXPECT_NE(msg.find("blow-up"), std::string::npos) << msg;
  EXPECT_NE(msg.find("|v| exceeded"), std::string::npos) << msg;
  EXPECT_NE(msg.find("2 retries"), std::string::npos) << msg;
}

TEST(Diagnostics, SimulationErrorCarriesDiagnostics) {
  sim::SimDiagnostics d;
  d.kind = sim::FailureKind::kNewtonNonConvergence;
  d.detail = "iteration limit";
  try {
    throw sim::SimulationError(d);
  } catch (const sim::SimulationError& e) {
    EXPECT_EQ(e.kind(), sim::FailureKind::kNewtonNonConvergence);
    EXPECT_EQ(e.diagnostics().detail, "iteration limit");
  }
}

// ---------------------------------------------------------------------
// SPICE engine classification.

// Linear circuit with an unstable macromodel: Newton has nothing to fail
// on (the system is linear), so the exponential growth must be caught by
// the blow-up guard and classified as such.
spice::TransientResult run_unstable_linear(const spice::TransientOptions&
                                               opt) {
  Netlist nl;
  const NodeId src = nl.add_node("src");
  const NodeId port = nl.add_node("port");
  nl.add_vsource(src, kGround, SourceWaveform::ramp(0.0, 1.0, 0.0, 1e-12));
  nl.add_resistor(src, port, 100.0);
  spice::MacromodelStamp mm;
  mm.ports = {port};
  mm.g = numeric::Matrix{{1e-3, -1e-3}, {-1e-3, -0.5e-3}};
  mm.c = numeric::Matrix{{0.0, 0.0}, {0.0, 1e-13}};
  spice::TransientSimulator sim(nl);
  sim.add_macromodel(mm);
  return sim.run(opt);
}

TEST(FailSoft, SpiceClassifiesBlowUp) {
  spice::TransientOptions opt;
  opt.tstop = 10e-9;
  opt.dt = 2e-12;
  // Keep the threshold below the point where the per-step voltage change
  // outruns the damped Newton budget, so the blow-up guard fires first.
  opt.vblowup = 100.0;
  const auto res = run_unstable_linear(opt);
  ASSERT_FALSE(res.converged);
  EXPECT_EQ(res.diag.kind, sim::FailureKind::kBlowUp) << res.failure();
  EXPECT_GT(res.diag.failure_time, 0.0);
  EXPECT_GE(res.diag.max_abs_v, opt.vblowup);
  EXPECT_EQ(res.diag.retries_used, 0);
}

TEST(FailSoft, SpiceBlowUpRetriesAreBoundedAndCounted) {
  // dt halving cannot save a genuinely unstable model: the budget must be
  // spent, counted, and the classification preserved.
  spice::TransientOptions opt;
  opt.tstop = 10e-9;
  opt.dt = 2e-12;
  opt.vblowup = 100.0;
  opt.recovery.max_dt_retries = 3;
  const auto res = run_unstable_linear(opt);
  ASSERT_FALSE(res.converged);
  EXPECT_EQ(res.diag.kind, sim::FailureKind::kBlowUp) << res.failure();
  EXPECT_GT(res.diag.retries_used, 0);
}

TEST(FailSoft, SpiceClassifiesDcFailure) {
  // A one-iteration Newton budget cannot solve the inverter DC point.
  Technology t = technology_180nm();
  Netlist nl;
  const NodeId in = nl.add_node("in");
  const NodeId out = nl.add_node("out");
  const NodeId vdd = nl.add_node("vdd");
  nl.add_vsource(vdd, kGround, SourceWaveform::dc(t.vdd));
  nl.add_vsource(in, kGround, SourceWaveform::dc(0.5 * t.vdd));
  nl.add_mosfet(t.make_nmos(out, in, kGround, 4.0));
  nl.add_mosfet(t.make_pmos(out, in, vdd, 8.0));
  nl.add_capacitor(out, kGround, 10e-15);
  nl.freeze_device_capacitances();

  spice::TransientSimulator sim(nl);
  spice::TransientOptions opt;
  opt.tstop = 0.1e-9;
  opt.dt = 1e-12;
  opt.max_newton = 1;
  const auto res = sim.run(opt);
  ASSERT_FALSE(res.converged);
  EXPECT_EQ(res.diag.kind, sim::FailureKind::kDcFailure) << res.failure();
}

TEST(FailSoft, SpiceDtHalvingRecoversTightIterationBudget) {
  // RC step response with a hard damping clamp: the damped Newton needs
  // about (dv per step / damping) iterations, so the first coarse step
  // exceeds the budget while halved sub-steps fit. DC is trivial (source
  // starts at 0), isolating the transient retry path. The same deck must
  // fail without the retry budget and converge with it.
  Netlist nl;
  const NodeId src = nl.add_node("src");
  const NodeId out = nl.add_node("out");
  nl.add_vsource(src, kGround,
                 SourceWaveform::ramp(0.0, 1.8, 0.0, 100e-12));
  nl.add_resistor(src, out, 1000.0);
  nl.add_capacitor(out, kGround, 0.05e-12);

  spice::TransientOptions opt;
  opt.tstop = 0.4e-9;
  opt.dt = 100e-12;
  opt.max_newton = 8;
  opt.damping = 0.1;                  // max 0.1 V per Newton iteration
  opt.recovery.damping_factor = 1.0;  // isolate the dt effect

  spice::TransientSimulator sim(nl);
  const auto plain = sim.run(opt);
  ASSERT_FALSE(plain.converged) << "fixture no longer stresses Newton";
  EXPECT_EQ(plain.diag.kind, sim::FailureKind::kNewtonNonConvergence)
      << plain.failure();
  EXPECT_GT(plain.diag.failure_time, 0.0);
  EXPECT_GT(plain.diag.iterations, 0);

  opt.recovery.max_dt_retries = 3;
  spice::TransientSimulator rsim(nl);
  const auto recovered = rsim.run(opt);
  ASSERT_TRUE(recovered.converged) << recovered.failure();
  EXPECT_EQ(recovered.diag.kind, sim::FailureKind::kNone);
  EXPECT_GT(recovered.diag.retries_used, 0);
  // Recovery keeps the stored time axis at the top-level dt: sub-steps
  // stay internal to the retried interval.
  EXPECT_EQ(recovered.time.size(),
            static_cast<std::size_t>(opt.tstop / opt.dt) + 1);
  EXPECT_NEAR(recovered.final_voltage(out), 1.8, 0.05);
}

TEST(FailSoft, WaveformWithoutStorageThrowsInsteadOfReadingOob) {
  Netlist nl;
  const NodeId src = nl.add_node("src");
  const NodeId out = nl.add_node("out");
  nl.add_vsource(src, kGround, SourceWaveform::ramp(0.0, 1.0, 0.0, 1e-12));
  nl.add_resistor(src, out, 1000.0);
  nl.add_capacitor(out, kGround, 1e-12);

  spice::TransientSimulator sim(nl);
  spice::TransientOptions opt;
  opt.tstop = 1e-9;
  opt.dt = 10e-12;
  opt.store_waveforms = false;
  const auto res = sim.run(opt);
  ASSERT_TRUE(res.converged) << res.failure();
  EXPECT_FALSE(res.time.empty());
  EXPECT_TRUE(res.node_voltages.empty());
  EXPECT_THROW((void)res.waveform(out), std::runtime_error);
}

// ---------------------------------------------------------------------
// TETA engine classification.

teta::StageCircuit make_inverter_stage(const Technology& t) {
  teta::StageCircuit st;
  const std::size_t out = st.add_port();
  const std::size_t in = st.add_input(
      SourceWaveform::ramp(0.0, t.vdd, 20e-12, 40e-12));
  const std::size_t vdd = st.add_rail(t.vdd);
  const std::size_t gnd = st.add_rail(0.0);
  st.add_mosfet(t.make_nmos(static_cast<int>(out), static_cast<int>(in),
                            static_cast<int>(gnd), 4.0));
  st.add_mosfet(t.make_pmos(static_cast<int>(out), static_cast<int>(in),
                            static_cast<int>(vdd), 8.0));
  st.freeze_device_capacitances();
  return st;
}

mor::PoleResidueModel one_port_load(double pole_re) {
  numeric::ComplexMatrix r(1, 1);
  r(0, 0) = numeric::Complex(1e9, 0.0);  // residue scale ~ 1/C
  return mor::PoleResidueModel(1, numeric::Matrix{{0.0}},
                               {numeric::Complex(pole_re, 0.0)}, {r});
}

TEST(FailSoft, TetaRejectsUnstableLoadWhenAsked) {
  Technology t = technology_180nm();
  const auto stage = make_inverter_stage(t);
  const auto load = one_port_load(+2e9);  // right-half-plane pole
  ASSERT_GT(load.count_unstable(), 0u);

  teta::TetaOptions opt;
  opt.tstop = 0.5e-9;
  opt.dt = 1e-12;
  opt.vdd = t.vdd;
  opt.reject_unstable_load = true;
  const auto res = teta::simulate_stage(stage, load, opt);
  ASSERT_FALSE(res.converged);
  EXPECT_EQ(res.diag.kind, sim::FailureKind::kUnstableMacromodel)
      << res.failure();
  // Rejected up front: no transient was attempted.
  EXPECT_TRUE(res.time.empty());
}

TEST(FailSoft, TetaClassifiesUnstableLoadInsteadOfThrowing) {
  // Without the policy flag an unstable load must still come back as a
  // classified diagnostic, never as the convolver's invalid_argument.
  Technology t = technology_180nm();
  const auto stage = make_inverter_stage(t);
  const auto load = one_port_load(+2e7);  // mildly unstable

  teta::TetaOptions opt;
  opt.tstop = 0.2e-9;
  opt.dt = 1e-12;
  opt.vdd = t.vdd;
  const auto res = teta::simulate_stage(stage, load, opt);
  ASSERT_FALSE(res.converged);
  EXPECT_EQ(res.diag.kind, sim::FailureKind::kUnstableMacromodel)
      << res.failure();
  EXPECT_NE(res.diag.detail.find("stabilize"), std::string::npos)
      << res.diag.detail;
}

TEST(FailSoft, TetaRetryBudgetIsSpentAndCounted) {
  // A one-iteration SC budget fails at any dt; the whole-run retry loop
  // must spend its budget, count it, and keep the classification.
  Technology t = technology_180nm();
  const auto stage = make_inverter_stage(t);
  const auto load = one_port_load(-1e9);  // stable load

  teta::TetaOptions opt;
  opt.tstop = 0.2e-9;
  opt.dt = 1e-12;
  opt.vdd = t.vdd;
  opt.max_sc_iters = 1;
  opt.recovery.max_dt_retries = 2;
  const auto res = teta::simulate_stage(stage, load, opt);
  ASSERT_FALSE(res.converged);
  EXPECT_TRUE(res.diag.kind == sim::FailureKind::kDcFailure ||
              res.diag.kind == sim::FailureKind::kNewtonNonConvergence)
      << res.failure();
  EXPECT_EQ(res.diag.retries_used, 2);
}

// ---------------------------------------------------------------------
// Monte-Carlo fail-soft.

// Deterministic performance function that fails for a subset of samples:
// classified SimulationError when w[0] > 0.8, foreign runtime_error when
// w[0] < -1.2, otherwise returns w[0].
double flaky_metric(const Vector& w) {
  if (w[0] > 0.8) {
    sim::SimDiagnostics d;
    d.kind = sim::FailureKind::kBlowUp;
    d.detail = "synthetic blow-up";
    d.failure_time = 1e-10;
    throw sim::SimulationError(d);
  }
  if (w[0] < -1.2) throw std::runtime_error("foreign engine error");
  return w[0];
}

TEST(FailSoft, MonteCarloAbortPolicyRethrows) {
  stats::MonteCarloOptions opt;
  opt.samples = 200;
  opt.seed = 7;
  opt.threads = 1;
  EXPECT_THROW(stats::monte_carlo(flaky_metric, {{}}, opt),
               sim::SimulationError);
}

TEST(FailSoft, MonteCarloSkipPolicyComputesSurvivorStats) {
  stats::MonteCarloOptions opt;
  opt.samples = 200;
  opt.seed = 7;
  opt.threads = 1;
  opt.on_failure = stats::FailurePolicy::kSkip;
  const auto res = stats::monte_carlo(flaky_metric, {{}}, opt);

  EXPECT_EQ(res.failures.attempted, 200u);
  EXPECT_TRUE(res.failures.any());
  EXPECT_EQ(res.failures.survived, res.values.size());
  EXPECT_EQ(res.values.size() + res.failures.failed(), 200u);
  EXPECT_EQ(res.values.size(), res.samples.size());
  EXPECT_EQ(res.stats.count(), res.values.size());
  // Both failure routes classified.
  EXPECT_GT(res.failures.count(sim::FailureKind::kBlowUp), 0u);
  EXPECT_GT(res.failures.count(sim::FailureKind::kOther), 0u);
  // Survivor values obey the failure predicate.
  for (double v : res.values) {
    EXPECT_LE(v, 0.8);
    EXPECT_GE(v, -1.2);
  }
  // Failures ordered by sample index, each with a detail.
  for (std::size_t k = 1; k < res.failures.failures.size(); ++k) {
    EXPECT_LT(res.failures.failures[k - 1].index,
              res.failures.failures[k].index);
  }
  EXPECT_FALSE(res.failures.table().empty());
}

TEST(FailSoft, MonteCarloFailureSummaryIsThreadCountInvariant) {
  stats::MonteCarloOptions base;
  base.samples = 100;
  base.seed = 42;
  base.on_failure = stats::FailurePolicy::kSkip;

  auto run = [&](std::size_t threads) {
    auto o = base;
    o.threads = threads;
    return stats::monte_carlo(flaky_metric, {{}}, o);
  };
  const auto serial = run(1);
  ASSERT_TRUE(serial.failures.any()) << "fixture stopped injecting failures";
  for (std::size_t threads : {2u, 8u}) {
    const auto par = run(threads);
    ASSERT_EQ(par.values.size(), serial.values.size());
    for (std::size_t k = 0; k < serial.values.size(); ++k) {
      EXPECT_EQ(par.values[k], serial.values[k]) << "sample " << k;
    }
    EXPECT_EQ(par.stats.mean(), serial.stats.mean());
    EXPECT_EQ(par.failures.attempted, serial.failures.attempted);
    EXPECT_EQ(par.failures.survived, serial.failures.survived);
    EXPECT_EQ(par.failures.counts, serial.failures.counts);
    ASSERT_EQ(par.failures.failures.size(), serial.failures.failures.size());
    for (std::size_t k = 0; k < serial.failures.failures.size(); ++k) {
      EXPECT_EQ(par.failures.failures[k].index,
                serial.failures.failures[k].index);
      EXPECT_EQ(par.failures.failures[k].kind,
                serial.failures.failures[k].kind);
      EXPECT_EQ(par.failures.failures[k].detail,
                serial.failures.failures[k].detail);
    }
    EXPECT_EQ(par.failures.table(), serial.failures.table());
  }
}

TEST(FailSoft, MonteCarloSkipStillPropagatesLogicErrors) {
  // Misuse is not a simulation outcome: logic_error must escape kSkip.
  stats::MonteCarloOptions opt;
  opt.samples = 4;
  opt.threads = 1;
  opt.on_failure = stats::FailurePolicy::kSkip;
  const stats::PerformanceFn misuse = [](const Vector&) -> double {
    throw std::logic_error("bad call");
  };
  EXPECT_THROW(stats::monte_carlo(misuse, {{}}, opt), std::logic_error);
}

TEST(FailSoft, YieldOfFullyFailedRunIsZeroNotAThrow) {
  stats::MonteCarloOptions opt;
  opt.samples = 16;
  opt.threads = 1;
  opt.on_failure = stats::FailurePolicy::kSkip;
  const stats::PerformanceFn dead = [](const Vector&) -> double {
    sim::SimDiagnostics d;
    d.kind = sim::FailureKind::kNewtonNonConvergence;
    throw sim::SimulationError(d);
  };
  const auto est = stats::monte_carlo_yield(dead, {{}}, 1e-9, opt);
  EXPECT_EQ(est.yield, 0.0);
  EXPECT_EQ(est.std_error, 0.0);
  EXPECT_EQ(est.samples().failures.failed(), 16u);
}

// ---------------------------------------------------------------------
// Gradient-analysis fail-soft.

TEST(FailSoft, GradientAnalysisSkipsFailedProbes) {
  // f = 2 w0 + 3 w1, but any probe touching w1 dies.
  const stats::PerformanceFn f = [](const Vector& w) -> double {
    if (!numeric::exact_zero(w[1])) {
      sim::SimDiagnostics d;
      d.kind = sim::FailureKind::kBlowUp;
      d.detail = "probe died";
      throw sim::SimulationError(d);
    }
    return 2.0 * w[0] + 3.0 * w[1];
  };
  std::vector<stats::VariationSource> sources(2);
  stats::GradientAnalysisOptions opt;
  opt.threads = 1;
  opt.on_failure = stats::FailurePolicy::kSkip;
  const auto res = stats::gradient_analysis(f, sources, opt);
  EXPECT_NEAR(res.gradient[0], 2.0, 1e-9);
  EXPECT_EQ(res.gradient[1], 0.0);  // dead probe excluded
  EXPECT_NEAR(res.stddev, 2.0, 1e-9);  // RSS over surviving sources only
  EXPECT_EQ(res.failures.failed(), 1u);
  EXPECT_EQ(res.failures.failures[0].index, 1u);
  EXPECT_EQ(res.failures.failures[0].kind, sim::FailureKind::kBlowUp);
}

TEST(FailSoft, GradientAnalysisFailedNominalAlwaysRethrows) {
  const stats::PerformanceFn dead = [](const Vector&) -> double {
    sim::SimDiagnostics d;
    d.kind = sim::FailureKind::kDcFailure;
    throw sim::SimulationError(d);
  };
  stats::GradientAnalysisOptions opt;
  opt.threads = 1;
  opt.on_failure = stats::FailurePolicy::kSkip;
  EXPECT_THROW(stats::gradient_analysis(dead, {{}}, opt),
               sim::SimulationError);
}

}  // namespace
}  // namespace lcsf
