// Dedicated race-detection workload for LCSF_SANITIZE=thread builds.
//
// The ordinary suite exercises the parallel engine, but each test uses
// one pool at a time with mostly-idle workers; data races with narrow
// windows (pool teardown vs. late grabs, concurrent pools sharing
// process-wide state, exception propagation racing result writes) need
// a workload designed to collide. This file hammers runtime::ThreadPool
// and the parallel statistical drivers from many directions at once so
// `tools/sanitize.sh thread` has real interleavings to inspect. The
// assertions double as determinism checks: whatever the interleaving,
// the numbers must be bitwise identical to the serial run.
//
// lcsf-lint: allow(thread-outside-pool) -- the point of this stress
// test is to drive *several* pools and drivers concurrently, which by
// construction needs raw threads above the pool layer; production code
// must still route all parallelism through runtime::ThreadPool.
#include <atomic>
#include <cmath>
#include <cstddef>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "runtime/thread_pool.hpp"
#include "sim/diagnostics.hpp"
#include "stats/analysis.hpp"
#include "stats/random.hpp"

namespace lcsf {
namespace {

TEST(TsanStress, RepeatedParallelForBursts) {
  // Many short parallel_for rounds maximize startup/teardown races
  // between the cursor, the batch state and the worker wakeups.
  runtime::ThreadPool pool(4);
  std::atomic<std::uint64_t> sum{0};
  for (int round = 0; round < 200; ++round) {
    pool.parallel_for(
        257,
        [&](std::size_t b, std::size_t e) {
          std::uint64_t local = 0;
          for (std::size_t i = b; i < e; ++i) local += i;
          sum.fetch_add(local, std::memory_order_relaxed);
        },
        /*grain=*/8);
  }
  EXPECT_EQ(sum.load(), 200ull * (257ull * 256ull / 2ull));
}

TEST(TsanStress, ConcurrentPoolsDoNotShareMutableState) {
  // Two pools driven from two raw threads: collides worker startup,
  // the pools' internal state and default_threads() resolution.
  auto hammer = [](std::uint64_t* out) {
    runtime::ThreadPool pool(3);
    std::atomic<std::uint64_t> acc{0};
    for (int round = 0; round < 50; ++round) {
      pool.parallel_for(1000, [&](std::size_t b, std::size_t e) {
        std::uint64_t local = 0;
        for (std::size_t i = b; i < e; ++i) {
          local += stats::mix64(i + 1);
        }
        acc.fetch_add(local, std::memory_order_relaxed);
      });
    }
    *out = acc.load();
  };
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::thread ta(hammer, &a);
  std::thread tb(hammer, &b);
  ta.join();
  tb.join();
  EXPECT_EQ(a, b);  // identical deterministic workloads
  EXPECT_NE(a, 0u);
}

TEST(TsanStress, PoolOutlivesManyConstructionCycles) {
  // Construction/destruction churn: a worker still parked in its wait
  // loop while the pool dies is the classic teardown race.
  for (int cycle = 0; cycle < 100; ++cycle) {
    runtime::ThreadPool pool(4);
    std::atomic<int> hits{0};
    pool.parallel_for(16, [&](std::size_t b, std::size_t e) {
      hits.fetch_add(static_cast<int>(e - b), std::memory_order_relaxed);
    });
    ASSERT_EQ(hits.load(), 16);
  }
}

TEST(TsanStress, ParallelMonteCarloMatchesSerialBitwise) {
  // The determinism contract under maximum thread pressure: per-sample
  // counter-based streams must make the parallel run bitwise equal to
  // the serial one even while TSan perturbs every interleaving.
  const std::vector<stats::VariationSource> sources(
      3, stats::VariationSource{});
  auto metric = [](const numeric::Vector& w) {
    double acc = 0.0;
    for (std::size_t i = 0; i < w.size(); ++i) {
      acc += std::sin(w[i]) * static_cast<double>(i + 1);
    }
    return acc;
  };
  stats::MonteCarloOptions serial;
  serial.samples = 500;
  serial.seed = 11;
  serial.threads = 1;
  const auto base = stats::monte_carlo(metric, sources, serial);

  stats::MonteCarloOptions par = serial;
  par.threads = 8;
  for (int round = 0; round < 5; ++round) {
    const auto got = stats::monte_carlo(metric, sources, par);
    ASSERT_EQ(got.values, base.values);
    ASSERT_EQ(got.stats.mean(), base.stats.mean());
  }
}

TEST(TsanStress, FailSoftSkipUnderContention) {
  // Concurrent failure recording: ~half the samples throw classified
  // errors from worker threads while survivors write values; the
  // failure summary is assembled serially and must be thread-count
  // invariant.
  const std::vector<stats::VariationSource> sources(
      2, stats::VariationSource{});
  auto flaky = [](const numeric::Vector& w) {
    if (w[0] > 0.0) {
      throw sim::SimulationError(sim::FailureKind::kBlowUp, "stress");
    }
    return w[1];
  };
  stats::MonteCarloOptions serial;
  serial.samples = 400;
  serial.seed = 5;
  serial.threads = 1;
  serial.on_failure = stats::FailurePolicy::kSkip;
  const auto base = stats::monte_carlo(flaky, sources, serial);
  ASSERT_GT(base.failures.failed(), 0u);

  stats::MonteCarloOptions par = serial;
  par.threads = 8;
  const auto got = stats::monte_carlo(flaky, sources, par);
  EXPECT_EQ(got.values, base.values);
  EXPECT_EQ(got.failures.attempted, base.failures.attempted);
  EXPECT_EQ(got.failures.survived, base.failures.survived);
  EXPECT_EQ(got.failures.counts, base.failures.counts);
}

TEST(TsanStress, GradientAnalysisParallelProbes) {
  const std::vector<stats::VariationSource> sources(
      6, stats::VariationSource{});
  auto metric = [](const numeric::Vector& w) {
    double acc = 1.0;
    for (std::size_t i = 0; i < w.size(); ++i) acc += w[i] * w[i];
    return acc;
  };
  stats::GradientAnalysisOptions serial;
  serial.threads = 1;
  const auto base = stats::gradient_analysis(metric, sources, serial);

  stats::GradientAnalysisOptions par;
  par.threads = 8;
  for (int round = 0; round < 10; ++round) {
    const auto got = stats::gradient_analysis(metric, sources, par);
    ASSERT_EQ(got.gradient, base.gradient);
    ASSERT_EQ(got.stddev, base.stddev);
  }
}

}  // namespace
}  // namespace lcsf
