// Ablation: Principal Component Analysis ahead of sampling (Sec. 4.1.1).
//
// Per-stage device parameters are spatially correlated in reality; PCA
// finds the few independent factors that explain the variation, shrinking
// the sampling dimensionality (the paper's motivating example: 60 BSIM3
// parameters -> 10 factors). Sweeps the correlation and reports the number
// of factors needed for 95% of the variance plus the resulting path-delay
// spread vs the independent-source assumption.
#include <cstdio>

#include "bench_common.hpp"
#include "core/path.hpp"

using namespace lcsf;

int main() {
  bench::print_header("Ablation: PCA factor reduction (Sec. 4.1.1)");
  const bool quick = bench::quick_mode();

  const auto& bspec = timing::find_benchmark("s208");
  const auto nl = timing::generate_benchmark(bspec);
  const auto path = timing::longest_path(nl);
  core::PathSpec spec = core::PathSpec::from_benchmark(
      circuit::technology_180nm(), nl, path, 10);
  spec.stage_window = 1.0e-9;
  core::PathAnalyzer analyzer(spec);

  core::PathVariationModel model;
  model.std_dl = 0.33;
  model.std_vt = 0.33;

  stats::RunOptions opt;
  opt.samples = quick ? 20 : 100;
  opt.seed = 41;

  const auto indep = analyzer.monte_carlo(model, opt);
  std::printf("\n%s longest path, %zu stages, %zu raw variation sources\n",
              bspec.name.c_str(), analyzer.num_stages(),
              2 * analyzer.num_stages());
  std::printf("independent sources:    mean %.2f ps, std %.2f ps\n\n",
              indep.stats.mean() * 1e12, indep.stats.stddev() * 1e12);

  std::printf("%-8s %-16s %-12s %-12s\n", "rho", "factors (95%)",
              "mean [ps]", "std [ps]");
  for (double rho : {0.0, 0.3, 0.6, 0.9, 0.99}) {
    const auto res = analyzer.monte_carlo_correlated(model, rho, opt);
    std::printf("%-8.2f %zu of %-12zu %-12.2f %-12.2f\n", rho,
                res.factors_used, res.total_sources,
                res.mc.stats.mean() * 1e12, res.mc.stats.stddev() * 1e12);
  }
  std::printf(
      "\nreading: correlation concentrates the variance in a few common\n"
      "factors (fewer PCA dimensions to sample) and widens the path-delay\n"
      "spread because per-stage contributions stop averaging out.\n");
  return 0;
}
