// Per-sample Monte-Carlo hot-path throughput. A single logic stage is set
// up exactly like PathAnalyzer builds one (INV driver, chord-folded
// variational wire ROM, PACT order 6), and the same deterministic sample
// set is then evaluated twice through the full per-sample pipeline
// (variational ROM evaluation -> pole/residue extraction -> stabilize ->
// TETA transient):
//
//   baseline : the pre-PR-4 engine, reproduced verbatim below from the
//              tree at the start of this PR (namespace prepr). It rebuilds
//              the convolver, both SC factorizations and every per-step
//              vector from scratch -- roughly a dozen heap round-trips per
//              timestep -- exactly as the shipped code did.
//   pooled   : the workspace-pooled engine (the Monte-Carlo lane path:
//              evaluate_into + workspace extraction + TetaWorkspace),
//              which is allocation-free after warm-up.
//   batched  : the lockstep SoA engine (core::measure_stage_batch): blocks
//              of K samples march through the TETA timestep loop together,
//              every per-step kernel vectorizing across samples
//              (docs/performance.md).
//
// All legs perform the same per-sample floating-point operation sequence,
// so the results must be bitwise identical (the PR 1 invariant, extended
// to the batched path); the bench fails if they are not. It emits a
// machine-readable BENCH_hotpath.json consumed by tools/bench_compare.py
// and the ci.sh bench stage.
//
// Usage: bench_hotpath [output.json]   (default BENCH_hotpath.json)
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "circuit/technology.hpp"
#include "core/path.hpp"
#include "interconnect/coupled_lines.hpp"
#include "mor/poleres.hpp"
#include "mor/variational.hpp"
#include "numeric/fp_compare.hpp"
#include "numeric/lu.hpp"
#include "stats/random.hpp"
#include "teta/convolution.hpp"
#include "teta/stage.hpp"
#include "timing/cells.hpp"
#include "timing/waveform.hpp"

namespace {

using namespace lcsf;
using numeric::Vector;

// ---------------------------------------------------------------------
// The pre-PR TETA engine, copied verbatim from src/teta/stage.cpp as it
// stood before the workspace rewrite. This is the frozen baseline the
// acceptance speedup is measured against; keep it untouched.
// ---------------------------------------------------------------------
namespace prepr {

using circuit::Mosfet;
using numeric::LuFactorization;
using numeric::Matrix;
using teta::RecursiveConvolver;
using teta::StageCircuit;
using teta::StageNodeKind;
using teta::TetaOptions;
using teta::TetaResult;

struct Indexer {
  std::vector<int> node_to_unknown;  // -1 when known (input/rail)
  std::size_t num_unknowns = 0;
  std::size_t num_ports = 0;

  explicit Indexer(const StageCircuit& s) {
    node_to_unknown.assign(s.num_nodes(), -1);
    num_ports = s.num_ports();
    std::size_t next_internal = num_ports;
    for (std::size_t n = 0; n < s.num_nodes(); ++n) {
      switch (s.kind(n)) {
        case StageNodeKind::kPort:
          node_to_unknown[n] = static_cast<int>(s.kind_index(n));
          break;
        case StageNodeKind::kInternal:
          node_to_unknown[n] = static_cast<int>(next_internal++);
          break;
        default:
          break;
      }
    }
    num_unknowns = next_internal;
  }
};

TetaResult simulate_stage_once(const StageCircuit& stage,
                               const mor::PoleResidueModel& load,
                               const TetaOptions& opt) {
  TetaResult res;
  const Indexer idx(stage);
  const std::size_t n = idx.num_unknowns;
  const std::size_t np = idx.num_ports;

  RecursiveConvolver conv(load, opt.dt);
  const double clamp = opt.damping_frac * opt.vdd;

  auto known_voltage = [&](std::size_t node, double t) {
    switch (stage.kind(node)) {
      case StageNodeKind::kInput:
        return stage.input_wave(node).value(t);
      case StageNodeKind::kRail:
        return stage.rail_voltage(node);
      default:
        throw std::logic_error("known_voltage: unknown node");
    }
  };

  const Vector gsc = stage.port_chord_conductances(opt.vdd);

  Matrix a_dc(n, n);
  Matrix a_tr(n, n);
  struct KnownCoupling {
    std::size_t row;
    std::size_t node;
    double g;
  };
  std::vector<KnownCoupling> chord_known;

  std::vector<double> chords(stage.mosfets().size());
  for (std::size_t d = 0; d < stage.mosfets().size(); ++d) {
    const Mosfet& m = stage.mosfets()[d];
    const double g = StageCircuit::chord_conductance(m, opt.vdd);
    chords[d] = g;
    const int ud = idx.node_to_unknown[static_cast<std::size_t>(m.drain)];
    const int us = idx.node_to_unknown[static_cast<std::size_t>(m.source)];
    auto stamp = [&](Matrix& a) {
      if (ud >= 0) a(ud, ud) += g;
      if (us >= 0) a(us, us) += g;
      if (ud >= 0 && us >= 0) {
        a(ud, us) -= g;
        a(us, ud) -= g;
      }
    };
    stamp(a_dc);
    stamp(a_tr);
    if (ud >= 0 && us < 0) {
      chord_known.push_back({static_cast<std::size_t>(ud),
                             static_cast<std::size_t>(m.source), g});
    }
    if (us >= 0 && ud < 0) {
      chord_known.push_back({static_cast<std::size_t>(us),
                             static_cast<std::size_t>(m.drain), g});
    }
  }

  Matrix y_h;
  Matrix y_dc;
  try {
    y_h = numeric::inverse(conv.step_impedance());
    y_dc = numeric::inverse(conv.dc_impedance());
  } catch (const std::runtime_error&) {
    res.diag.kind = sim::FailureKind::kSingularSystem;
    res.diag.detail = "singular load impedance";
    return res;
  }
  for (std::size_t i = 0; i < np; ++i) {
    for (std::size_t j = 0; j < np; ++j) {
      a_dc(i, j) += y_dc(i, j);
      a_tr(i, j) += y_h(i, j);
    }
    a_dc(i, i) -= gsc[i];
    a_tr(i, i) -= gsc[i];
  }

  const double ceff = 2.0 / opt.dt;
  struct CapState {
    int ua, ub;          // unknown indices or -1
    std::size_t na, nb;  // node ids
    double geq;
    double u_prev = 0.0;
    double i_prev = 0.0;
  };
  std::vector<CapState> caps;
  for (const auto& c : stage.capacitors()) {
    CapState cs;
    cs.na = static_cast<std::size_t>(c.a);
    cs.nb = static_cast<std::size_t>(c.b);
    cs.ua = idx.node_to_unknown[cs.na];
    cs.ub = idx.node_to_unknown[cs.nb];
    cs.geq = ceff * c.farads;
    if (cs.ua >= 0) a_tr(cs.ua, cs.ua) += cs.geq;
    if (cs.ub >= 0) a_tr(cs.ub, cs.ub) += cs.geq;
    if (cs.ua >= 0 && cs.ub >= 0) {
      a_tr(cs.ua, cs.ub) -= cs.geq;
      a_tr(cs.ub, cs.ua) -= cs.geq;
    }
    caps.push_back(cs);
  }

  std::unique_ptr<LuFactorization> lu_dc;
  std::unique_ptr<LuFactorization> lu_tr;
  try {
    lu_dc = std::make_unique<LuFactorization>(a_dc);
    lu_tr = std::make_unique<LuFactorization>(a_tr);
  } catch (const std::runtime_error& e) {
    res.diag.kind = sim::FailureKind::kSingularSystem;
    res.diag.detail = std::string("singular SC system: ") + e.what();
    return res;
  }

  auto node_voltages = [&](const Vector& x, double t) {
    Vector v(stage.num_nodes(), 0.0);
    for (std::size_t nn = 0; nn < stage.num_nodes(); ++nn) {
      const int u = idx.node_to_unknown[nn];
      v[nn] = (u >= 0) ? x[static_cast<std::size_t>(u)]
                       : known_voltage(nn, t);
    }
    return v;
  };

  auto add_device_norton = [&](const Vector& vnode, Vector& rhs) {
    for (std::size_t d = 0; d < stage.mosfets().size(); ++d) {
      const Mosfet& m = stage.mosfets()[d];
      const double vg = vnode[static_cast<std::size_t>(m.gate)];
      const double vd = vnode[static_cast<std::size_t>(m.drain)];
      const double vs = vnode[static_cast<std::size_t>(m.source)];
      const double ids = circuit::mosfet_eval(m, vg, vd, vs).ids;
      const double j = ids - chords[d] * (vd - vs);
      const int ud = idx.node_to_unknown[static_cast<std::size_t>(m.drain)];
      const int us = idx.node_to_unknown[static_cast<std::size_t>(m.source)];
      if (ud >= 0) rhs[static_cast<std::size_t>(ud)] -= j;
      if (us >= 0) rhs[static_cast<std::size_t>(us)] += j;
    }
  };

  Vector x(n, 0.0);
  {
    Matrix base(n, n);
    for (std::size_t i = 0; i < np; ++i) {
      for (std::size_t j = 0; j < np; ++j) base(i, j) = y_dc(i, j);
      base(i, i) -= gsc[i];
    }
    constexpr double kGminDc = 1e-9;
    for (std::size_t i = 0; i < n; ++i) base(i, i) += kGminDc;

    bool ok = false;
    for (int it = 0; it < opt.max_sc_iters; ++it) {
      Matrix a = base;
      Vector rhs(n, 0.0);
      const Vector vnode = node_voltages(x, 0.0);
      for (const Mosfet& m : stage.mosfets()) {
        const double vg = vnode[static_cast<std::size_t>(m.gate)];
        const double vd = vnode[static_cast<std::size_t>(m.drain)];
        const double vs = vnode[static_cast<std::size_t>(m.source)];
        const auto op = circuit::mosfet_eval(m, vg, vd, vs);
        const double ieq = op.ids - op.gm * (vg - vs) - op.gds * (vd - vs);
        const int rd = idx.node_to_unknown[static_cast<std::size_t>(m.drain)];
        const int rs =
            idx.node_to_unknown[static_cast<std::size_t>(m.source)];
        const struct {
          int node;
          double coeff;
        } cols[3] = {{m.gate, op.gm},
                     {m.drain, op.gds},
                     {m.source, -(op.gm + op.gds)}};
        for (int sign : {+1, -1}) {
          const int row = (sign > 0) ? rd : rs;
          if (row < 0) continue;
          const auto r = static_cast<std::size_t>(row);
          for (const auto& cc : cols) {
            const int col =
                idx.node_to_unknown[static_cast<std::size_t>(cc.node)];
            const double val = sign * cc.coeff;
            if (numeric::exact_zero(val)) continue;
            if (col >= 0) {
              a(r, static_cast<std::size_t>(col)) += val;
            } else {
              rhs[r] -= val *
                        vnode[static_cast<std::size_t>(cc.node)];
            }
          }
          rhs[r] -= sign * ieq;
        }
      }
      Vector xn = LuFactorization(std::move(a)).solve(rhs);
      double dmax = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        double d = xn[i] - x[i];
        dmax = std::max(dmax, std::abs(d));
        x[i] += std::clamp(d, -clamp, clamp);
      }
      ++res.total_sc_iterations;
      if (dmax < opt.vtol) {
        ok = true;
        break;
      }
    }
    if (!ok) {
      res.diag.kind = sim::FailureKind::kDcFailure;
      res.diag.detail = "Newton failed at DC";
      res.diag.iterations = res.total_sc_iterations;
      return res;
    }
  }

  {
    Vector vp(np);
    for (std::size_t p = 0; p < np; ++p) vp[p] = x[p];
    conv.initialize_dc(y_dc * vp);
  }
  {
    const Vector vn = node_voltages(x, 0.0);
    for (auto& cs : caps) {
      cs.u_prev = vn[cs.na] - vn[cs.nb];
      cs.i_prev = 0.0;
    }
  }

  auto store = [&](double t) {
    res.time.push_back(t);
    Vector vp(np);
    for (std::size_t p = 0; p < np; ++p) vp[p] = x[p];
    res.port_voltages.push_back(std::move(vp));
  };
  store(0.0);

  const auto nsteps =
      static_cast<std::size_t>(std::ceil(opt.tstop / opt.dt - 1e-9));
  for (std::size_t step = 1; step <= nsteps; ++step) {
    const double t = static_cast<double>(step) * opt.dt;

    Vector rhs_const(n, 0.0);
    for (const auto& kc : chord_known) {
      rhs_const[kc.row] += kc.g * known_voltage(kc.node, t);
    }
    for (const auto& cs : caps) {
      const double h = cs.geq * cs.u_prev + cs.i_prev;
      const double ka =
          cs.ua < 0 ? cs.geq * known_voltage(cs.na, t) : 0.0;
      const double kb =
          cs.ub < 0 ? cs.geq * known_voltage(cs.nb, t) : 0.0;
      if (cs.ua >= 0) rhs_const[cs.ua] += h + kb;
      if (cs.ub >= 0) rhs_const[cs.ub] += -h + ka;
    }
    const Vector hist = conv.history();
    const Vector yhist = y_h * hist;
    for (std::size_t p = 0; p < np; ++p) rhs_const[p] += yhist[p];

    bool ok = false;
    for (int it = 0; it < opt.max_sc_iters; ++it) {
      Vector rhs = rhs_const;
      add_device_norton(node_voltages(x, t), rhs);
      Vector xn = lu_tr->solve(rhs);
      double dmax = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        double d = xn[i] - x[i];
        dmax = std::max(dmax, std::abs(d));
        x[i] += std::clamp(d, -clamp, clamp);
      }
      ++res.total_sc_iterations;
      if (dmax < opt.vtol) {
        ok = true;
        break;
      }
    }
    if (!ok) {
      res.diag.kind = sim::FailureKind::kNewtonNonConvergence;
      res.diag.failure_time = t;
      res.diag.detail =
          "SC iteration limit " + std::to_string(opt.max_sc_iters) + " hit";
      res.diag.iterations = res.total_sc_iterations;
      res.diag.max_abs_v = numeric::max_abs(x);
      return res;
    }
    if (const double mv = numeric::max_abs(x); mv > opt.vblowup) {
      res.diag.kind = sim::FailureKind::kBlowUp;
      res.diag.failure_time = t;
      res.diag.detail = "port/internal voltage blew up (unstable load?)";
      res.diag.iterations = res.total_sc_iterations;
      res.diag.max_abs_v = mv;
      return res;
    }

    {
      Vector vp(np);
      for (std::size_t p = 0; p < np; ++p) vp[p] = x[p];
      Vector i_load = y_h * vp;
      for (std::size_t p = 0; p < np; ++p) i_load[p] -= yhist[p];
      conv.advance(i_load);
    }
    const Vector vn = node_voltages(x, t);
    for (auto& cs : caps) {
      const double u_new = vn[cs.na] - vn[cs.nb];
      const double i_new = cs.geq * (u_new - cs.u_prev) - cs.i_prev;
      cs.u_prev = u_new;
      cs.i_prev = i_new;
    }
    store(t);
  }

  res.converged = true;
  res.diag.iterations = res.total_sc_iterations;
  return res;
}

TetaResult simulate_stage(const StageCircuit& stage,
                          const mor::PoleResidueModel& load,
                          const TetaOptions& opt) {
  if (load.num_ports() != stage.num_ports()) {
    sim::throw_invalid_input("simulate_stage: port count mismatch");
  }
  if (load.count_unstable() > 0) {
    TetaResult res;
    res.diag.kind = sim::FailureKind::kUnstableMacromodel;
    res.diag.detail = std::to_string(load.count_unstable()) +
                      " right-half-plane pole(s), max Re = " +
                      std::to_string(load.max_unstable_real()) +
                      (opt.reject_unstable_load ? " (rejected by policy)"
                                                : "; stabilize() the load");
    return res;
  }

  TetaOptions attempt = opt;
  long iterations = 0;
  for (int retry = 0;; ++retry) {
    TetaResult res = simulate_stage_once(stage, load, attempt);
    iterations += res.total_sc_iterations;
    res.total_sc_iterations = iterations;
    res.diag.iterations = iterations;
    res.diag.retries_used = retry;
    if (res.converged || retry >= opt.recovery.max_dt_retries ||
        res.diag.kind == sim::FailureKind::kSingularSystem) {
      return res;
    }
    attempt.dt *= 0.5;
    attempt.damping_frac *= opt.recovery.damping_factor;
  }
}

}  // namespace prepr

// ---------------------------------------------------------------------
// Stage harness: one INV stage built exactly like PathAnalyzer builds it
// (chord-folded 1-line wire pencil, receiver pin cap, PACT order 6,
// variational over normalized wire W/H).
// ---------------------------------------------------------------------

/// Gate capacitance of the receiver's switching input pin (the
/// PathAnalyzer::input_pin_cap rule).
double receiver_pin_cap(const timing::CellTemplate& cell,
                        const circuit::Technology& tech) {
  double cap = 0.0;
  for (const auto& t : cell.transistors) {
    if (t.gate.kind == timing::CellNode::Kind::kInput && t.gate.index == 0) {
      const circuit::Mosfet m =
          t.type == circuit::MosType::kNmos
              ? tech.make_nmos(0, 0, 0, t.w_over_l)
              : tech.make_pmos(0, 0, 0, t.w_over_l);
      cap += m.cgs() + 1.5 * m.cgd();
    }
  }
  return cap;
}

mor::VariationalRom characterize_stage_load(
    const timing::CellTemplate& cell, const circuit::Technology& tech,
    std::size_t segments, double receiver_cap) {
  const Vector chords = [&] {
    teta::StageCircuit probe;
    const std::size_t out = probe.add_port();
    const std::size_t in =
        probe.add_input(circuit::SourceWaveform::dc(0.0));
    const std::size_t vdd = probe.add_rail(tech.vdd);
    const std::size_t gnd = probe.add_rail(0.0);
    timing::instantiate_cell(cell, tech, probe, out, in, vdd, gnd);
    return probe.port_chord_conductances(tech.vdd);
  }();
  const Vector gout{chords[0], 0.0};
  mor::PencilFamily family = [tech, receiver_cap, segments,
                              gout](const Vector& w) {
    interconnect::WireVariation wv;
    wv.width = w[0] * tech.wire_tol.width;
    wv.ild_thickness = w[1] * tech.wire_tol.ild_thickness;
    interconnect::CoupledLineSpec spec;
    spec.num_lines = 1;
    spec.segment_length = 1e-6;
    spec.length = static_cast<double>(segments) * 1e-6;
    spec.geometry = interconnect::apply_variation(tech.wire, wv);
    auto bundle = interconnect::build_coupled_lines(spec);
    bundle.netlist.add_capacitor(bundle.far_ends[0], circuit::kGround,
                                 receiver_cap);
    return mor::with_port_conductance(
        interconnect::build_ported_pencil(
            bundle.netlist, {bundle.near_ends[0], bundle.far_ends[0]}),
        gout);
  };
  mor::VariationalOptions vopt;
  vopt.method = mor::ReductionMethod::kPact;
  vopt.library = mor::LibraryMode::kFullReduction;
  vopt.pact.internal_modes = 6;
  vopt.fd_step = 0.2;
  return mor::build_variational_rom(family, 2, vopt);
}

teta::StageCircuit make_stage(const timing::CellTemplate& cell,
                              const circuit::Technology& tech,
                              const circuit::SourceWaveform& input,
                              const timing::DeviceVariation& dev) {
  teta::StageCircuit stage;
  const std::size_t out = stage.add_port();
  (void)stage.add_port();  // far port (receiver side), observed
  const std::size_t in = stage.add_input(input);
  const std::size_t vdd = stage.add_rail(tech.vdd);
  const std::size_t gnd = stage.add_rail(0.0);
  timing::instantiate_cell(cell, tech, stage, out, in, vdd, gnd, dev);
  stage.freeze_device_capacitances();
  return stage;
}

double far_delay(const teta::TetaResult& res, double vdd) {
  if (!res.converged) {
    throw std::runtime_error("bench_hotpath TETA: " + res.failure());
  }
  return timing::measure_ramp(res.waveform(1), vdd, /*rising=*/false).m;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_hotpath.json";
  const bool quick = bench::quick_mode();
  const std::size_t nsamples = quick ? 8 : 64;

  bench::print_header(
      "Hot-path per-sample throughput (pre-PR vs pooled vs batched)");

  const circuit::Technology tech = circuit::technology_180nm();
  const timing::CellTemplate& cell = timing::find_cell("INV");
  const std::size_t segments = 4;  // PathSpec linear_elements_per_stage=10
  const double rcap = receiver_pin_cap(cell, tech);
  const mor::VariationalRom rom =
      characterize_stage_load(cell, tech, segments, rcap);
  const circuit::SourceWaveform input =
      circuit::SourceWaveform::ramp(0.0, tech.vdd, 0.2e-9, 0.1e-9);

  teta::TetaOptions opt;
  opt.dt = 0.5e-12;  // fine-resolution waveform propagation
  // Quick mode scales the transient length along with the sample count,
  // so a quick run is genuinely cheap; the transition (input ramp at
  // 0.2 ns) still completes well inside the shorter window.
  opt.tstop = quick ? 1.0e-9 : 2.0e-9;
  opt.vdd = tech.vdd;
  const auto nsteps =
      static_cast<std::size_t>(std::ceil(opt.tstop / opt.dt - 1e-9));

  // The deterministic variate set all pipelines consume (counter-based
  // streams, exactly like stats::monte_carlo): per-sample device dl/vt
  // plus global wire W/H, each at sigma = 1/3 in 3-sigma units, mapped to
  // physical units with the sample_from_sources rules. The wire draw is
  // physical (what a PathSample carries); the normalized ROM coordinates
  // are derived from it with the simulate_stage_model rule, so the scalar
  // and batched legs consume bitwise-identical ROM inputs.
  struct Draw {
    timing::DeviceVariation dev;
    interconnect::WireVariation wire;  // physical global wire variation
    Vector w;  // normalized wire (W, H) for the ROM library
  };
  std::vector<Draw> samples;
  samples.reserve(nsamples);
  for (std::size_t s = 0; s < nsamples; ++s) {
    stats::SplitMix64 stream = stats::sample_stream(97, s);
    auto normal = [&stream] {
      return stats::to_normal(stream.uniform_open(), 0.0, 1.0 / 3.0);
    };
    Draw d;
    d.dev.delta_l = normal() * tech.sigma3_dl_frac * tech.lmin;
    d.dev.delta_vt = normal() * tech.sigma3_vt_frac * tech.nmos.vt0;
    d.wire.width = normal() * tech.wire_tol.width;
    d.wire.ild_thickness = normal() * tech.wire_tol.ild_thickness;
    d.w = Vector{tech.wire_tol.width > 0.0
                     ? d.wire.width / tech.wire_tol.width
                     : 0.0,
                 tech.wire_tol.ild_thickness > 0.0
                     ? d.wire.ild_thickness / tech.wire_tol.ild_thickness
                     : 0.0};
    samples.push_back(std::move(d));
  }

  // Baseline: the pre-PR pipeline. Fresh ReducedModel per evaluate, fresh
  // extraction intermediates, and the frozen pre-PR TETA engine above.
  auto run_baseline = [&](const Draw& d) {
    const teta::StageCircuit stage = make_stage(cell, tech, input, d.dev);
    const auto z = mor::stabilize(
        mor::extract_pole_residue(rom.evaluate(d.w)), nullptr,
        mor::StabilizePolicy::kDirectCompensation);
    return far_delay(prepr::simulate_stage(stage, z, opt), tech.vdd);
  };
  std::vector<double> base_d(nsamples);
  (void)run_baseline(samples[0]);  // warm caches fairly
  bench::Stopwatch sw_base;
  for (std::size_t s = 0; s < nsamples; ++s) {
    base_d[s] = run_baseline(samples[s]);
  }
  const double t_base = sw_base.seconds();

  // Pooled: the Monte-Carlo lane pipeline -- one SampleWorkspace reused
  // across all samples, exactly as PathAnalyzer hands each thread lane.
  core::PathAnalyzer::SampleWorkspace ws;
  auto run_pooled = [&](const Draw& d) {
    const teta::StageCircuit stage = make_stage(cell, tech, input, d.dev);
    rom.evaluate_into(d.w, ws.rom);
    const auto z =
        mor::stabilize(mor::extract_pole_residue(ws.rom, ws.poleres),
                       nullptr, mor::StabilizePolicy::kDirectCompensation);
    teta::simulate_stage(stage, z, opt, ws.teta, ws.teta_result);
    return far_delay(ws.teta_result, tech.vdd);
  };
  std::vector<double> pooled_d(nsamples);
  (void)run_pooled(samples[0]);  // warm-up fills the pools
  bench::Stopwatch sw_pooled;
  for (std::size_t s = 0; s < nsamples; ++s) {
    pooled_d[s] = run_pooled(samples[s]);
  }
  const double t_pooled = sw_pooled.seconds();

  // Batched: the lockstep SoA pipeline, exactly as the batch-dispatched
  // Monte-Carlo drivers call it (core::measure_stage_batch over K-sample
  // blocks, one BatchWorkspace reused across blocks).
  const std::size_t kbatch = 8;
  core::StageModel smodel;
  smodel.cell = &cell;
  smodel.load = rom;
  smodel.receiver_cap = rcap;
  core::StageSimOptions sopt;
  sopt.dt = opt.dt;
  sopt.stage_window = opt.tstop;
  core::BatchWorkspace bws;
  std::vector<const circuit::SourceWaveform*> binputs;
  std::vector<double> bshifts;
  std::vector<const timing::DeviceVariation*> bdevs;
  std::vector<const interconnect::WireVariation*> bwires;
  std::vector<core::StageMeasurement> meas;
  std::vector<double> batched_d(nsamples);
  auto run_batched_block = [&](std::size_t s0, std::size_t cnt) {
    binputs.assign(cnt, &input);
    bshifts.assign(cnt, 0.0);
    bdevs.clear();
    bwires.clear();
    for (std::size_t b = 0; b < cnt; ++b) {
      bdevs.push_back(&samples[s0 + b].dev);
      bwires.push_back(&samples[s0 + b].wire);
    }
    core::measure_stage_batch(smodel, tech, sopt, 0, binputs, bshifts,
                              bdevs, bwires, /*out_rising=*/false, nullptr,
                              meas, bws);
    for (std::size_t b = 0; b < cnt; ++b) {
      if (meas[b].failed) {
        throw std::runtime_error("bench_hotpath batched: " +
                                 meas[b].diag.message());
      }
      batched_d[s0 + b] = meas[b].params.m;
    }
  };
  run_batched_block(0, std::min(kbatch, nsamples));  // warm-up fills SoA
  bench::Stopwatch sw_batched;
  for (std::size_t s0 = 0; s0 < nsamples; s0 += kbatch) {
    run_batched_block(s0, std::min(kbatch, nsamples - s0));
  }
  const double t_batched = sw_batched.seconds();

  bool identical = true;
  for (std::size_t s = 0; s < nsamples; ++s) {
    if (numeric::exact_eq(base_d[s], pooled_d[s]) &&
        numeric::exact_eq(base_d[s], batched_d[s])) {
      continue;
    }
    identical = false;
    std::printf("MISMATCH sample %zu: baseline %.17g pooled %.17g "
                "batched %.17g\n",
                s, base_d[s], pooled_d[s], batched_d[s]);
  }

  const double n = static_cast<double>(nsamples);
  const double rate_base = n / t_base;
  const double rate_pooled = n / t_pooled;
  const double rate_batched = n / t_batched;
  const double speedup = rate_pooled / rate_base;
  const double batched_speedup = rate_batched / rate_pooled;

  std::printf("samples            : %zu (%s), %zu transient steps each\n",
              nsamples, quick ? "quick" : "full", nsteps);
  std::printf("baseline (pre-PR)  : %8.3f ms/sample  (%7.2f samples/s)\n",
              1e3 * t_base / n, rate_base);
  std::printf("pooled workspace   : %8.3f ms/sample  (%7.2f samples/s)\n",
              1e3 * t_pooled / n, rate_pooled);
  std::printf("batched SoA (K=%zu) : %8.3f ms/sample  (%7.2f samples/s)\n",
              kbatch, 1e3 * t_batched / n, rate_batched);
  std::printf("speedup            : %.2fx (pooled vs baseline)\n", speedup);
  std::printf("batched speedup    : %.2fx (batched vs pooled)\n",
              batched_speedup);
  std::printf("bitwise identical  : %s\n", identical ? "yes" : "NO");

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_hotpath: cannot write %s\n",
                 out_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"hotpath\",\n"
               "  \"quick\": %s,\n"
               "  \"config\": {\n"
               "    \"wire_segments\": %zu,\n"
               "    \"samples\": %zu,\n"
               "    \"dt\": %g,\n"
               "    \"transient_steps\": %zu,\n"
               "    \"batch\": %zu\n"
               "  },\n"
               "  \"metrics\": {\n"
               "    \"baseline_ms_per_sample\": %.6f,\n"
               "    \"baseline_samples_per_sec\": %.6f,\n"
               "    \"pooled_ms_per_sample\": %.6f,\n"
               "    \"pooled_samples_per_sec\": %.6f,\n"
               "    \"speedup\": %.6f,\n"
               "    \"batched_ms_per_sample\": %.6f,\n"
               "    \"batched_samples_per_sec\": %.6f,\n"
               "    \"batched_speedup_vs_pooled\": %.6f\n"
               "  },\n"
               "  \"bitwise_identical\": %s\n"
               "}\n",
               quick ? "true" : "false", segments, nsamples, opt.dt, nsteps,
               kbatch, 1e3 * t_base / n, rate_base, 1e3 * t_pooled / n,
               rate_pooled, speedup, 1e3 * t_batched / n, rate_batched,
               batched_speedup, identical ? "true" : "false");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return identical ? 0 : 1;
}
