// Reproduces Figure 6: "Delay histograms (Example 2)" -- 100 Latin
// Hypercube samples over the five global wire parameters (W, T, S, H, rho)
// with uniform distributions at the technology tolerances; the
// variational-ROM framework's delay distribution is compared against the
// full conventional simulation. The paper reports mean and standard
// deviation agreeing "in the order of numerical precision error".
//
// Both sweeps run through the parallel stats::monte_carlo engine; the
// framework sweep is additionally run serially to demonstrate the
// determinism contract (bitwise-equal values) and report the threading
// speed-up on this host.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "runtime/thread_pool.hpp"
#include "example2_stage.hpp"
#include "stats/descriptive.hpp"
#include "stats/runner.hpp"

using namespace lcsf;
using numeric::Vector;

int main() {
  bench::print_header("Figure 6: Example 2 delay histograms");
  const bool quick = bench::quick_mode();
  const std::size_t samples = quick ? 20 : 100;
  const double length = 100e-6;

  bench::Example2Stage stage(circuit::technology_180nm(), length);
  const std::size_t threads = runtime::ThreadPool::default_threads();
  std::printf("\nwirelength %.0f um, %zu linear elements, %zu LHS samples, "
              "%zu threads\n",
              length * 1e6, stage.linear_elements(), samples, threads);

  bench::Stopwatch char_sw;
  const auto rom = stage.characterize();
  std::printf("variational library characterized in %.2f s\n\n",
              char_sw.seconds());

  // Latin Hypercube over 5 parameters; uniform in [-1, 1] tolerance units
  // ("uniform distributions with tolerances specified in [14]").
  std::vector<stats::VariationSource> sources(5);
  for (auto& s : sources) {
    s.kind = stats::VariationSource::Kind::kUniform;
    s.sigma = 1.0;  // half-width: the +-1 tolerance box
  }
  stats::RunOptions mco;
  mco.samples = samples;
  mco.seed = 1402;
  mco.latin_hypercube = true;

  auto fw_fn = [&](const Vector& w) { return stage.framework_delay(rom, w); };
  auto sp_fn = [&](const Vector& w) { return stage.spice_delay(w); };

  bench::Stopwatch fw_sw;
  mco.exec.threads = 0;  // auto
  const auto fw_mc = stats::Runner(mco).run_monte_carlo(fw_fn, sources);
  const double fw_time = fw_sw.seconds();

  bench::Stopwatch fw1_sw;
  mco.exec.threads = 1;  // serial reference
  const auto fw_serial = stats::Runner(mco).run_monte_carlo(fw_fn, sources);
  const double fw1_time = fw1_sw.seconds();
  const bool identical = fw_mc.values == fw_serial.values;

  bench::Stopwatch sp_sw;
  mco.exec.threads = 0;
  const auto sp_mc = stats::Runner(mco).run_monte_carlo(sp_fn, sources);
  const double sp_time = sp_sw.seconds();

  const auto& fw_stats = fw_mc.stats;
  const auto& sp_stats = sp_mc.stats;
  std::printf("%-22s %-14s %-14s\n", "", "framework", "full simulation");
  std::printf("%-22s %-14.2f %-14.2f\n", "mean [ps]",
              fw_stats.mean() * 1e12, sp_stats.mean() * 1e12);
  std::printf("%-22s %-14.2f %-14.2f\n", "std [ps]",
              fw_stats.stddev() * 1e12, sp_stats.stddev() * 1e12);
  std::printf("%-22s %-14.2f %-14.2f\n", "analysis time [s]", fw_time,
              sp_time);
  std::printf("mean error %.3f%%, std error %.2f%%\n",
              100.0 * (fw_stats.mean() - sp_stats.mean()) / sp_stats.mean(),
              100.0 * (fw_stats.stddev() - sp_stats.stddev()) /
                  sp_stats.stddev());
  std::printf("threading: %zu-thread run %s serial (%.2f s vs %.2f s, "
              "%.2fx)\n\n",
              threads, identical ? "bitwise-equals" : "DIFFERS FROM",
              fw_time, fw1_time, fw1_time / fw_time);

  std::printf("framework delay histogram:\n%s\n",
              stats::Histogram::from_data(fw_mc.values, 10)
                  .render(40)
                  .c_str());
  std::printf("full-simulation delay histogram:\n%s",
              stats::Histogram::from_data(sp_mc.values, 10)
                  .render(40)
                  .c_str());
  return identical ? 0 : 1;
}
