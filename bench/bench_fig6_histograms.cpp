// Reproduces Figure 6: "Delay histograms (Example 2)" -- 100 Latin
// Hypercube samples over the five global wire parameters (W, T, S, H, rho)
// with uniform distributions at the technology tolerances; the
// variational-ROM framework's delay distribution is compared against the
// full conventional simulation. The paper reports mean and standard
// deviation agreeing "in the order of numerical precision error".
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "example2_stage.hpp"
#include "stats/descriptive.hpp"
#include "stats/random.hpp"

using namespace lcsf;
using numeric::Vector;

int main() {
  bench::print_header("Figure 6: Example 2 delay histograms");
  const bool quick = bench::quick_mode();
  const std::size_t samples = quick ? 20 : 100;
  const double length = 100e-6;

  bench::Example2Stage stage(circuit::technology_180nm(), length);
  std::printf("\nwirelength %.0f um, %zu linear elements, %zu LHS samples\n",
              length * 1e6, stage.linear_elements(), samples);

  bench::Stopwatch char_sw;
  const auto rom = stage.characterize();
  std::printf("variational library characterized in %.2f s\n\n",
              char_sw.seconds());

  // Latin Hypercube over 5 parameters; uniform in [-1, 1] tolerance units
  // ("uniform distributions with tolerances specified in [14]").
  stats::Rng rng(1402);
  const numeric::Matrix u = stats::latin_hypercube(samples, 5, rng);

  std::vector<double> fw;
  std::vector<double> sp;
  bench::Stopwatch fw_sw;
  for (std::size_t s = 0; s < samples; ++s) {
    Vector w(5);
    for (std::size_t d = 0; d < 5; ++d) {
      w[d] = stats::to_uniform(u(s, d), -1.0, 1.0);
    }
    fw.push_back(stage.framework_delay(rom, w));
  }
  const double fw_time = fw_sw.seconds();
  bench::Stopwatch sp_sw;
  for (std::size_t s = 0; s < samples; ++s) {
    Vector w(5);
    for (std::size_t d = 0; d < 5; ++d) {
      w[d] = stats::to_uniform(u(s, d), -1.0, 1.0);
    }
    sp.push_back(stage.spice_delay(w));
  }
  const double sp_time = sp_sw.seconds();

  const auto fw_stats = stats::summarize(fw);
  const auto sp_stats = stats::summarize(sp);
  std::printf("%-22s %-14s %-14s\n", "", "framework", "full simulation");
  std::printf("%-22s %-14.2f %-14.2f\n", "mean [ps]",
              fw_stats.mean() * 1e12, sp_stats.mean() * 1e12);
  std::printf("%-22s %-14.2f %-14.2f\n", "std [ps]",
              fw_stats.stddev() * 1e12, sp_stats.stddev() * 1e12);
  std::printf("%-22s %-14.2f %-14.2f\n", "analysis time [s]", fw_time,
              sp_time);
  std::printf("mean error %.3f%%, std error %.2f%%\n\n",
              100.0 * (fw_stats.mean() - sp_stats.mean()) / sp_stats.mean(),
              100.0 * (fw_stats.stddev() - sp_stats.stddev()) /
                  sp_stats.stddev());

  std::printf("framework delay histogram:\n%s\n",
              stats::Histogram::from_data(fw, 10).render(40).c_str());
  std::printf("full-simulation delay histogram:\n%s",
              stats::Histogram::from_data(sp, 10).render(40).c_str());
  return 0;
}
