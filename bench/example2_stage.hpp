// The 4-port coupled-line stage of the paper's Example 2 (Fig. 4): four
// identical minimum-width parallel wires, each driven by a 0.18 um
// inverter; the victim line 0 rises while its neighbours fall; the delay
// is measured at the victim's far end. Wire electricals come from
// Sakurai's formulas; the five global parameters (W, T, S, H, rho) vary
// with uniform distributions at the technology tolerances.
#pragma once

#include <stdexcept>

#include "circuit/netlist.hpp"
#include "circuit/technology.hpp"
#include "interconnect/coupled_lines.hpp"
#include "mor/poleres.hpp"
#include "mor/prima.hpp"
#include "mor/variational.hpp"
#include "spice/transient.hpp"
#include "teta/stage.hpp"
#include "timing/waveform.hpp"

namespace lcsf::bench {

class Example2Stage {
 public:
  static constexpr std::size_t kLines = 4;
  static constexpr double kDriverWn = 8.0;
  static constexpr double kDriverWp = 16.0;
  static constexpr double kReceiverCap = 5e-15;
  static constexpr double kDt = 2e-12;

  Example2Stage(circuit::Technology tech, double length)
      : tech_(std::move(tech)), length_(length) {
    // Drivers are inverters: a falling gate input makes the victim line 0
    // rise while rising gate inputs make the aggressors fall (worst-case
    // coupling direction).
    for (std::size_t l = 0; l < kLines; ++l) {
      inputs_.push_back(l == 0
                            ? circuit::SourceWaveform::ramp(tech_.vdd, 0.0,
                                                            100e-12, 80e-12)
                            : circuit::SourceWaveform::ramp(0.0, tech_.vdd,
                                                            100e-12,
                                                            80e-12));
    }
  }

  double length() const { return length_; }

  /// Geometry at a normalized 5-parameter sample (W, T, S, H, rho in
  /// 3-sigma-tolerance units).
  circuit::WireGeometry geometry(const numeric::Vector& w) const {
    if (w.size() != 5) throw std::invalid_argument("Example2Stage: w size");
    interconnect::WireVariation wv;
    wv.width = w[0] * tech_.wire_tol.width;
    wv.thickness = w[1] * tech_.wire_tol.thickness;
    wv.spacing = w[2] * tech_.wire_tol.spacing;
    wv.ild_thickness = w[3] * tech_.wire_tol.ild_thickness;
    wv.resistivity = w[4] * tech_.wire_tol.resistivity;
    return interconnect::apply_variation(tech_.wire, wv);
  }

  interconnect::CoupledLineBundle bundle(const numeric::Vector& w) const {
    interconnect::CoupledLineSpec spec;
    spec.num_lines = kLines;
    spec.length = length_;
    spec.segment_length = 1e-6;
    spec.geometry = geometry(w);
    auto b = interconnect::build_coupled_lines(spec);
    for (circuit::NodeId far : b.far_ends) {
      b.netlist.add_capacitor(far, circuit::kGround, kReceiverCap);
    }
    return b;
  }

  std::size_t linear_elements() const {
    return bundle(numeric::Vector(5, 0.0)).netlist.linear_element_count();
  }

  teta::StageCircuit make_stage() const {
    teta::StageCircuit st;
    std::vector<std::size_t> ports(kLines);
    for (std::size_t l = 0; l < kLines; ++l) ports[l] = st.add_port();
    for (std::size_t l = 0; l < kLines; ++l) st.add_port();  // far ports
    const std::size_t vdd = st.add_rail(tech_.vdd);
    const std::size_t gnd = st.add_rail(0.0);
    for (std::size_t l = 0; l < kLines; ++l) {
      const std::size_t in = st.add_input(inputs_[l]);
      st.add_mosfet(tech_.make_nmos(static_cast<int>(ports[l]),
                                    static_cast<int>(in),
                                    static_cast<int>(gnd), kDriverWn));
      st.add_mosfet(tech_.make_pmos(static_cast<int>(ports[l]),
                                    static_cast<int>(in),
                                    static_cast<int>(vdd), kDriverWp));
    }
    st.freeze_device_capacitances();
    return st;
  }

  /// Variational PRIMA library over the 5 wire parameters, chords folded
  /// in (Table 1 construction). Done ONCE per wirelength.
  mor::VariationalRom characterize() const {
    const numeric::Vector gsc_ports = [&] {
      numeric::Vector g(2 * kLines, 0.0);
      const auto near = make_stage().port_chord_conductances(tech_.vdd);
      for (std::size_t l = 0; l < kLines; ++l) g[l] = near[l];
      return g;
    }();
    mor::PencilFamily family = [this, gsc_ports](const numeric::Vector& w) {
      auto b = bundle(w);
      auto pencil = interconnect::build_ported_pencil(b.netlist, b.ports());
      return mor::with_port_conductance(std::move(pencil), gsc_ports);
    };
    mor::VariationalOptions vopt;
    vopt.method = mor::ReductionMethod::kPrima;
    vopt.library = mor::LibraryMode::kFullReduction;
    vopt.prima.block_moments = 2;
    vopt.fd_step = 0.2;
    return mor::build_variational_rom(family, 5, vopt);
  }

  double sim_window() const {
    // Wire delay grows quadratically with length; size the window
    // generously (the engine costs are measured per-step anyway).
    return 1.0e-9 + 8.0e-9 * (length_ / 400e-6) * (length_ / 400e-6);
  }

  /// Framework evaluation at a sample (library evaluate -> stabilize ->
  /// TETA). Returns the victim far-end 50% arrival.
  double framework_delay(const mor::VariationalRom& rom,
                         const numeric::Vector& w) const {
    const auto z = mor::stabilize(mor::extract_pole_residue(rom.evaluate(w)),
                                  nullptr,
                                  mor::StabilizePolicy::kDirectCompensation);
    auto stage = make_stage();
    teta::TetaOptions opt;
    opt.dt = kDt;
    opt.tstop = sim_window();
    opt.vdd = tech_.vdd;
    const auto res = teta::simulate_stage(stage, z, opt);
    if (!res.converged) {
      throw std::runtime_error("Example2Stage TETA: " + res.failure());
    }
    return timing::measure_ramp(res.waveform(kLines), tech_.vdd, true).m;
  }

  /// Conventional full simulation at a sample.
  double spice_delay(const numeric::Vector& w) const {
    auto b = bundle(w);
    circuit::Netlist& nl = b.netlist;
    const auto vdd = nl.add_node("vdd");
    nl.add_vsource(vdd, circuit::kGround,
                   circuit::SourceWaveform::dc(tech_.vdd));
    for (std::size_t l = 0; l < kLines; ++l) {
      const auto in = nl.add_node("in" + std::to_string(l));
      nl.add_vsource(in, circuit::kGround, inputs_[l]);
      nl.add_mosfet(
          tech_.make_nmos(b.near_ends[l], in, circuit::kGround, kDriverWn));
      nl.add_mosfet(tech_.make_pmos(b.near_ends[l], in, vdd, kDriverWp));
    }
    nl.freeze_device_capacitances();
    spice::TransientSimulator sim(nl);
    spice::TransientOptions opt;
    opt.dt = kDt;
    opt.tstop = sim_window();
    const auto res = sim.run(opt);
    if (!res.converged) {
      throw std::runtime_error("Example2Stage SPICE: " + res.failure());
    }
    return timing::measure_ramp(res.waveform(b.far_ends[0]), tech_.vdd,
                                true)
        .m;
  }

  const circuit::Technology& tech() const { return tech_; }

 private:
  circuit::Technology tech_;
  double length_;
  std::vector<circuit::SourceWaveform> inputs_;
};

}  // namespace lcsf::bench
