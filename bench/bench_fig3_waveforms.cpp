// Reproduces Figure 3: "Result for nominal (p=0), extreme (p=0.1) and the
// reconstructed macromodel" -- plus the divergence the paper reports when
// the raw (non-passive) macromodel is handed to a conventional simulator.
//
// Series printed:
//   t, v_nominal(p=0, exact circuit), v_extreme(p=0.1, exact circuit),
//   v_macromodel(p=0.1, stabilized variational ROM in the TETA engine)
// followed by the SPICE-on-raw-macromodel convergence report for each p.
#include <cstdio>

#include "bench_common.hpp"
#include "circuit/technology.hpp"
#include "interconnect/example1.hpp"
#include "mor/pact.hpp"
#include "mor/poleres.hpp"
#include "mor/variational.hpp"
#include "sim/diagnostics.hpp"
#include "spice/transient.hpp"
#include "teta/stage.hpp"
#include "timing/waveform.hpp"

using namespace lcsf;
using numeric::Vector;

namespace {

constexpr double kDt = 2e-12;
constexpr double kTstop = 5e-9;

teta::StageCircuit make_driver(const circuit::Technology& tech) {
  teta::StageCircuit st;
  const std::size_t out = st.add_port();
  const std::size_t in = st.add_input(circuit::SourceWaveform::ramp(
      tech.vdd, 0.0, 100e-12, 100e-12));
  const std::size_t vdd = st.add_rail(tech.vdd);
  const std::size_t gnd = st.add_rail(0.0);
  st.add_mosfet(tech.make_nmos(static_cast<int>(out), static_cast<int>(in),
                               static_cast<int>(gnd), 30.0));
  st.add_mosfet(tech.make_pmos(static_cast<int>(out), static_cast<int>(in),
                               static_cast<int>(vdd), 60.0));
  st.freeze_device_capacitances();
  return st;
}

// Exact circuit golden waveform via the SPICE baseline.
timing::Samples golden_waveform(const circuit::Technology& tech, double p) {
  const auto ex = interconnect::example1_circuit(p);
  circuit::Netlist nl = ex.netlist;
  const auto in = nl.add_node("in");
  const auto vdd = nl.add_node("vdd");
  nl.add_vsource(vdd, circuit::kGround,
                 circuit::SourceWaveform::dc(tech.vdd));
  nl.add_vsource(in, circuit::kGround,
                 circuit::SourceWaveform::ramp(tech.vdd, 0.0, 100e-12,
                                               100e-12));
  nl.add_mosfet(tech.make_nmos(ex.port1, in, circuit::kGround, 30.0));
  nl.add_mosfet(tech.make_pmos(ex.port1, in, vdd, 60.0));
  nl.freeze_device_capacitances();
  spice::TransientSimulator sim(nl);
  spice::TransientOptions opt;
  opt.tstop = kTstop;
  opt.dt = kDt;
  const auto res = sim.run(opt);
  if (!res.converged) throw std::runtime_error(res.failure());
  return res.waveform(ex.port1);
}

}  // namespace

int main() {
  bench::print_header("Figure 3: Example 1 waveforms (port 1, rising)");
  const circuit::Technology tech = circuit::technology_600nm();
  const double gout =
      make_driver(tech).port_chord_conductances(tech.vdd)[0];

  mor::VariationalOptions vopt;
  vopt.library = mor::LibraryMode::kFullReduction;
  vopt.pact.internal_modes = 4;
  vopt.fd_step = 0.05;
  const auto rom = mor::build_variational_rom(
      mor::scalar_family([gout](double p) {
        auto pencil = interconnect::example1_pencil_family()(p);
        return mor::with_port_conductance(std::move(pencil), Vector{gout});
      }),
      1, vopt);

  // Framework waveform from the stabilized macromodel at p = 0.1.
  mor::StabilizationReport rep;
  const auto z = mor::stabilize(
      mor::extract_pole_residue(rom.evaluate(Vector{0.1})), &rep);
  auto stage = make_driver(tech);
  teta::TetaOptions topt;
  topt.tstop = kTstop;
  topt.dt = kDt;
  topt.vdd = tech.vdd;
  const auto teta_res = teta::simulate_stage(stage, z, topt);
  if (!teta_res.converged) {
    std::printf("TETA failed: %s\n", teta_res.failure().c_str());
    return 1;
  }
  const auto macro = teta_res.waveform(0);

  const auto nominal = golden_waveform(tech, 0.0);
  const auto extreme = golden_waveform(tech, 0.1);

  std::printf("\nfiltered %zu unstable pole(s) from the evaluated ROM\n\n",
              rep.dropped_poles);
  std::printf("%-10s %-12s %-12s %-12s\n", "t [ps]", "nominal",
              "extreme", "macromodel");
  for (std::size_t k = 0; k < macro.size(); k += 100) {
    std::printf("%-10.0f %-12.4f %-12.4f %-12.4f\n", macro[k].first * 1e12,
                nominal[k].second, extreme[k].second, macro[k].second);
  }

  const auto mn = timing::measure_ramp(nominal, tech.vdd, true);
  const auto me = timing::measure_ramp(extreme, tech.vdd, true);
  const auto mm = timing::measure_ramp(macro, tech.vdd, true);
  std::printf("\n50%% arrivals: nominal %.1f ps, extreme %.1f ps, "
              "macromodel %.1f ps\n",
              mn.m * 1e12, me.m * 1e12, mm.m * 1e12);
  std::printf("macromodel vs extreme error: %.2f%% (paper: \"agree well\")\n",
              100.0 * (mm.m - me.m) / me.m);

  // The paper's negative result: conventional simulation of the raw ROM.
  // The sweep deliberately runs well past the paper's p = 0.05 breakdown
  // point; divergence comes back as classified diagnostics (with a small
  // dt-halving retry budget spent first), never as a thrown exception.
  std::printf("\nconventional simulator on the RAW variational macromodel:\n");
  for (double p : {0.02, 0.05, 0.06, 0.08, 0.10, 0.15, 0.20}) {
    circuit::Netlist nl;
    const auto src = nl.add_node("src");
    const auto port = nl.add_node("port");
    nl.add_vsource(src, circuit::kGround,
                   circuit::SourceWaveform::ramp(0.0, 1.0, 0.0, 50e-12));
    nl.add_resistor(src, port, 1.0 / gout);
    const mor::ReducedModel raw = rom.evaluate(Vector{p});
    spice::MacromodelStamp stamp;
    stamp.ports = {port};
    stamp.g = raw.g;
    stamp.c = raw.c;
    stamp.g(0, 0) -= gout;  // chord lives inside the ROM already
    spice::TransientSimulator sim(nl);
    sim.add_macromodel(stamp);
    spice::TransientOptions opt;
    opt.tstop = 3e-9;
    opt.dt = 1e-12;
    opt.recovery.max_dt_retries = 2;
    const auto res = sim.run(opt);
    if (res.converged) {
      std::printf("  p = %.2f : converged (%d dt-halving retries used)\n",
                  p, res.diag.retries_used);
    } else {
      std::printf("  p = %.2f : FAILED [%s] at t = %.0f ps after %d "
                  "dt-halving retries\n",
                  p, sim::failure_kind_name(res.diag.kind),
                  res.diag.failure_time * 1e12, res.diag.retries_used);
    }
  }
  std::printf("(paper: \"SPICE couldn't converge and reported error when "
              "p > 0.05\")\n");
  return 0;
}
