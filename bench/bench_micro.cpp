// Google-benchmark micro benchmarks for the numeric and MOR kernels that
// dominate the framework's cost profile.
#include <benchmark/benchmark.h>

#include <random>

#include "circuit/technology.hpp"
#include "interconnect/coupled_lines.hpp"
#include "mor/pact.hpp"
#include "mor/poleres.hpp"
#include "mor/prima.hpp"
#include "mor/variational.hpp"
#include "numeric/eigen_real.hpp"
#include "numeric/eigen_sym.hpp"
#include "numeric/lu.hpp"
#include "numeric/sparse.hpp"
#include "teta/convolution.hpp"

namespace {

using namespace lcsf;
using numeric::Matrix;
using numeric::Vector;

Matrix random_spd(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) a(i, j) = u(rng);
  }
  Matrix s = a.transposed() * a;
  for (std::size_t i = 0; i < n; ++i) s(i, i) += double(n);
  return s;
}

void BM_DenseLu(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Matrix a = random_spd(n, 1);
  const Vector b(n, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(numeric::LuFactorization(a).solve(b));
  }
}
BENCHMARK(BM_DenseLu)->Arg(8)->Arg(32)->Arg(128);

void BM_DenseLuRefactor(benchmark::State& state) {
  // The pooled hot-path variant: same factorization + solve, but storage
  // and pivoting scratch are reused across iterations (Matrix shapes are
  // per-sample invariant in the Monte-Carlo loop).
  const auto n = static_cast<std::size_t>(state.range(0));
  const Matrix a = random_spd(n, 1);
  const Vector b(n, 1.0);
  numeric::LuFactorization lu;
  Vector x;
  for (auto _ : state) {
    lu.refactor(a);
    lu.solve_into(b, x);
    benchmark::DoNotOptimize(x.data());
  }
}
BENCHMARK(BM_DenseLuRefactor)->Arg(8)->Arg(32)->Arg(128);

void BM_SparseLuBanded(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  numeric::SparseMatrix a(n);
  for (std::size_t i = 0; i < n; ++i) {
    a.add(i, i, 4.0);
    if (i + 1 < n) {
      a.add(i, i + 1, -1.0);
      a.add(i + 1, i, -1.0);
    }
    if (i + 4 < n) {
      a.add(i, i + 4, -0.5);
      a.add(i + 4, i, -0.5);
    }
  }
  const Vector b(n, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(numeric::SparseLu(a).solve(b));
  }
}
BENCHMARK(BM_SparseLuBanded)->Arg(256)->Arg(1024)->Arg(4096);

void BM_SparseLuRefactor(benchmark::State& state) {
  // Numeric-only refactorization against the frozen fill pattern -- the
  // per-Newton-iteration cost of the SPICE baseline after PR 4.
  const auto n = static_cast<std::size_t>(state.range(0));
  numeric::SparseMatrix a(n);
  for (std::size_t i = 0; i < n; ++i) {
    a.add(i, i, 4.0);
    if (i + 1 < n) {
      a.add(i, i + 1, -1.0);
      a.add(i + 1, i, -1.0);
    }
    if (i + 4 < n) {
      a.add(i, i + 4, -0.5);
      a.add(i + 4, i, -0.5);
    }
  }
  const Vector b(n, 1.0);
  numeric::SparseLu lu(a);
  Vector x;
  for (auto _ : state) {
    lu.refactor(a);
    lu.solve_into(b, x);
    benchmark::DoNotOptimize(x.data());
  }
}
BENCHMARK(BM_SparseLuRefactor)->Arg(256)->Arg(1024)->Arg(4096);

void BM_EigenSymJacobi(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Matrix a = random_spd(n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(numeric::eigen_symmetric_jacobi(a));
  }
}
BENCHMARK(BM_EigenSymJacobi)->Arg(16)->Arg(64);

void BM_EigenSymTridiagonal(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Matrix a = random_spd(n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(numeric::eigen_symmetric_tridiagonal(a));
  }
}
BENCHMARK(BM_EigenSymTridiagonal)->Arg(16)->Arg(64)->Arg(256);

void BM_EigenRealNonsymmetric(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::mt19937 rng(3);
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) a(i, j) = u(rng);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(numeric::eigen_real(a));
  }
}
BENCHMARK(BM_EigenRealNonsymmetric)->Arg(8)->Arg(16)->Arg(32);

void BM_EigenRealInto(benchmark::State& state) {
  // Scratch-pooled Hessenberg + hqr2: the per-sample eigen solve of the
  // pole/residue extraction without its allocations.
  const auto n = static_cast<std::size_t>(state.range(0));
  std::mt19937 rng(3);
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) a(i, j) = u(rng);
  }
  numeric::RealEigenScratch scratch;
  numeric::RealEigen eig;
  for (auto _ : state) {
    numeric::eigen_real_into(a, scratch, eig);
    benchmark::DoNotOptimize(eig.values.data());
  }
}
BENCHMARK(BM_EigenRealInto)->Arg(8)->Arg(16)->Arg(32);

interconnect::PortedPencil wire_pencil(std::size_t segments) {
  interconnect::CoupledLineSpec spec;
  spec.num_lines = 2;
  spec.length = double(segments) * 1e-6;
  spec.segment_length = 1e-6;
  spec.geometry = circuit::technology_180nm().wire;
  auto b = interconnect::build_coupled_lines(spec);
  auto pencil = interconnect::build_ported_pencil(b.netlist, b.ports());
  return mor::with_port_conductance(std::move(pencil),
                                    Vector{1e-3, 1e-3, 0.0, 0.0});
}

void BM_PactReduce(benchmark::State& state) {
  const auto pencil = wire_pencil(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(mor::pact_reduce(pencil, mor::PactOptions{6}));
  }
}
BENCHMARK(BM_PactReduce)->Arg(25)->Arg(100)->Arg(250);

void BM_PrimaReduce(benchmark::State& state) {
  const auto pencil = wire_pencil(static_cast<std::size_t>(state.range(0)));
  mor::PrimaOptions opt;
  opt.block_moments = 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mor::prima_reduce(pencil, opt));
  }
}
BENCHMARK(BM_PrimaReduce)->Arg(25)->Arg(100)->Arg(250);

void BM_PoleResidueExtraction(benchmark::State& state) {
  const auto pencil = wire_pencil(100);
  const auto rom = mor::pact_reduce(
      pencil,
      mor::PactOptions{static_cast<std::size_t>(state.range(0))}).model;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mor::extract_pole_residue(rom));
  }
}
BENCHMARK(BM_PoleResidueExtraction)->Arg(4)->Arg(8)->Arg(16);

void BM_PoleResidueExtractionPooled(benchmark::State& state) {
  // Workspace overload: the big-ticket intermediates (LU, eigen scratch,
  // complex solves) come from the pooled workspace.
  const auto pencil = wire_pencil(100);
  const auto rom = mor::pact_reduce(
      pencil,
      mor::PactOptions{static_cast<std::size_t>(state.range(0))}).model;
  mor::PoleResidueWorkspace ws;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mor::extract_pole_residue(rom, ws));
  }
}
BENCHMARK(BM_PoleResidueExtractionPooled)->Arg(4)->Arg(8)->Arg(16);

void BM_RecursiveConvolutionStep(benchmark::State& state) {
  const auto pencil = wire_pencil(100);
  const auto z = mor::stabilize(mor::extract_pole_residue(
      mor::pact_reduce(pencil, mor::PactOptions{8}).model));
  teta::RecursiveConvolver conv(z, 1e-12);
  const Vector i(4, 1e-4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.history());
    conv.advance(i);
  }
}
BENCHMARK(BM_RecursiveConvolutionStep);

void BM_RecursiveConvolutionStepPooled(benchmark::State& state) {
  // history_into() against a caller-owned buffer: the TETA transient-loop
  // form (one of the two allocations the legacy step paid per timestep).
  const auto pencil = wire_pencil(100);
  const auto z = mor::stabilize(mor::extract_pole_residue(
      mor::pact_reduce(pencil, mor::PactOptions{8}).model));
  teta::RecursiveConvolver conv(z, 1e-12);
  const Vector i(4, 1e-4);
  Vector hist;
  for (auto _ : state) {
    conv.history_into(hist);
    benchmark::DoNotOptimize(hist.data());
    conv.advance(i);
  }
}
BENCHMARK(BM_RecursiveConvolutionStepPooled);

}  // namespace

BENCHMARK_MAIN();
