// Ablation: Successive Chords vs per-iteration Newton (paper Sec. 3.1-3.2).
//
// The same inverter + coupled-wire stage is evaluated by (a) the TETA
// engine, whose chord models keep the system matrix constant (one LU per
// transient), and (b) the conventional simulator, which re-linearizes and
// refactors at every Newton iteration. Reported: wall time, factorization
// counts, and iteration counts, as the load size grows.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "circuit/technology.hpp"
#include "interconnect/coupled_lines.hpp"
#include "mor/pact.hpp"
#include "mor/poleres.hpp"
#include "mor/variational.hpp"
#include "spice/transient.hpp"
#include "teta/stage.hpp"

using namespace lcsf;
using numeric::Vector;

int main() {
  bench::print_header("Ablation: successive chords vs Newton");
  const circuit::Technology tech = circuit::technology_180nm();
  const auto input =
      circuit::SourceWaveform::ramp(tech.vdd, 0.0, 100e-12, 80e-12);
  const bool quick = bench::quick_mode();
  const std::vector<double> lengths =
      quick ? std::vector<double>{25e-6, 100e-6}
            : std::vector<double>{25e-6, 50e-6, 100e-6, 200e-6};

  std::printf("\n%-10s %-10s %-14s %-16s %-14s %-16s\n", "len [um]",
              "elements", "TETA [s]", "SC iters/step", "SPICE [s]",
              "Newton iters/step");
  for (double len : lengths) {
    interconnect::CoupledLineSpec wire;
    wire.num_lines = 1;
    wire.length = len;
    wire.segment_length = 1e-6;
    wire.geometry = tech.wire;
    auto bundle = interconnect::build_coupled_lines(wire);
    const std::size_t elements = bundle.netlist.linear_element_count();

    // TETA stage.
    teta::StageCircuit stage;
    const std::size_t out = stage.add_port();
    (void)stage.add_port();
    const std::size_t in = stage.add_input(input);
    const std::size_t vdd = stage.add_rail(tech.vdd);
    const std::size_t gnd = stage.add_rail(0.0);
    stage.add_mosfet(tech.make_nmos(static_cast<int>(out),
                                    static_cast<int>(in),
                                    static_cast<int>(gnd), 8.0));
    stage.add_mosfet(tech.make_pmos(static_cast<int>(out),
                                    static_cast<int>(in),
                                    static_cast<int>(vdd), 16.0));
    stage.freeze_device_capacitances();

    auto pencil = interconnect::build_ported_pencil(
        bundle.netlist, {bundle.near_ends[0], bundle.far_ends[0]});
    pencil = mor::with_port_conductance(
        std::move(pencil), stage.port_chord_conductances(tech.vdd));
    const auto z = mor::extract_pole_residue(
        mor::pact_reduce(pencil, mor::PactOptions{6}).model);

    teta::TetaOptions topt;
    topt.tstop = 1.5e-9;
    topt.dt = 2e-12;
    topt.vdd = tech.vdd;
    bench::Stopwatch teta_sw;
    const auto tres = teta::simulate_stage(stage, z, topt);
    const double teta_s = teta_sw.seconds();

    // Conventional Newton on the full circuit.
    circuit::Netlist nl = bundle.netlist;
    const auto nvdd = nl.add_node("vdd");
    nl.add_vsource(nvdd, circuit::kGround,
                   circuit::SourceWaveform::dc(tech.vdd));
    const auto nin = nl.add_node("in");
    nl.add_vsource(nin, circuit::kGround, input);
    nl.add_mosfet(tech.make_nmos(bundle.near_ends[0], nin, circuit::kGround,
                                 8.0));
    nl.add_mosfet(tech.make_pmos(bundle.near_ends[0], nin, nvdd, 16.0));
    nl.freeze_device_capacitances();
    spice::TransientSimulator sim(nl);
    spice::TransientOptions sopt;
    sopt.tstop = topt.tstop;
    sopt.dt = topt.dt;
    bench::Stopwatch sp_sw;
    const auto sres = sim.run(sopt);
    const double sp_s = sp_sw.seconds();

    const double steps = topt.tstop / topt.dt;
    std::printf("%-10.0f %-10zu %-14.4f %-16.2f %-14.4f %-16.2f\n",
                len * 1e6, elements, teta_s,
                double(tres.total_sc_iterations) / steps, sp_s,
                double(sres.total_newton_iterations) / steps);
  }
  std::printf(
      "\nreading: both methods take a similar number of iterations per\n"
      "step, but every SC iteration is a pair of triangular solves on the\n"
      "small reduced system (one LU for the whole transient), while every\n"
      "Newton iteration refactors the full-size matrix.\n");
  return 0;
}
