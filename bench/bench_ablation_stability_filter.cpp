// Ablation: the two-step stability filter (paper Eq. 21-23).
//
// Compares, across the Example-1 parameter sweep:
//   raw      -- the evaluated variational ROM, no filtering (frequency
//               response only; the time-domain engine rejects it);
//   beta     -- drop unstable poles + common residue rescaling (the
//               paper's literal Eq. 22-23);
//   direct   -- drop unstable poles + fold their below-band constant
//               -r/p into the direct term (this library's default);
//   none     -- what happens if the unstable poles are simply deleted
//               with no DC correction.
// Metric: max relative Z(jw) error vs the exact pencil over the signal
// band, plus the DC error that each policy leaves behind.
#include <cmath>
#include <complex>
#include <cstdio>

#include "bench_common.hpp"
#include "interconnect/example1.hpp"
#include "mor/pact.hpp"
#include "mor/poleres.hpp"
#include "mor/variational.hpp"

using namespace lcsf;
using numeric::Complex;
using numeric::Vector;

namespace {

constexpr double kGout = 25.26e-3;  // Example-1 driver chords

double band_error(const mor::PoleResidueModel& model,
                  const interconnect::PortedPencil& exact) {
  double err = 0.0;
  for (double f : {1e7, 1e8, 3e8, 1e9, 3e9, 1e10}) {
    const Complex s{0.0, 2 * M_PI * f};
    const Complex ze =
        mor::pencil_port_impedance(exact.g, exact.c, 1, s)(0, 0);
    err = std::max(err, std::abs(model.eval(0, 0, s) - ze) / std::abs(ze));
  }
  return err;
}

double dc_error(const mor::PoleResidueModel& model,
                const interconnect::PortedPencil& exact) {
  const double ze = mor::pencil_moment(exact.g, exact.c, 1, 0)(0, 0);
  return std::abs(model.eval(0, 0, Complex{0, 0}).real() - ze) /
         std::abs(ze);
}

// "none": drop unstable poles without any correction.
mor::PoleResidueModel drop_only(const mor::PoleResidueModel& m) {
  std::vector<Complex> poles;
  std::vector<numeric::ComplexMatrix> residues;
  for (std::size_t k = 0; k < m.num_poles(); ++k) {
    if (m.poles()[k].real() <= 0.0) {
      poles.push_back(m.poles()[k]);
      residues.push_back(m.residue(k));
    }
  }
  return mor::PoleResidueModel(1, m.direct(), std::move(poles),
                               std::move(residues));
}

}  // namespace

int main() {
  bench::print_header("Ablation: stability filter policies (Eq. 21-23)");

  auto family = mor::scalar_family([](double p) {
    auto pencil = interconnect::example1_pencil_family()(p);
    return mor::with_port_conductance(std::move(pencil), Vector{kGout});
  });
  mor::VariationalOptions vopt;
  vopt.library = mor::LibraryMode::kFullReduction;
  vopt.pact.internal_modes = 4;
  vopt.fd_step = 0.05;
  const auto rom = mor::build_variational_rom(family, 1, vopt);

  std::printf("\nmax relative |Z(jw)| error over 10 MHz - 10 GHz "
              "(and DC error):\n\n");
  std::printf("%-6s %-9s %-18s %-18s %-18s %-18s\n", "p", "unstable",
              "raw", "beta (Eq.23)", "direct comp.", "drop only");
  for (double p : {0.02, 0.05, 0.06, 0.08, 0.10}) {
    const auto exact = family(Vector{p});
    const auto raw = mor::extract_pole_residue(rom.evaluate(Vector{p}));
    const auto beta =
        mor::stabilize(raw, nullptr, mor::StabilizePolicy::kBetaScaling);
    const auto direct = mor::stabilize(
        raw, nullptr, mor::StabilizePolicy::kDirectCompensation);
    const auto none = drop_only(raw);
    std::printf("%-6.2f %-9zu %6.2f%% (%5.2f%%)  %6.2f%% (%5.2f%%)  "
                "%6.2f%% (%5.2f%%)  %6.2f%% (%5.2f%%)\n",
                p, raw.count_unstable(), 100 * band_error(raw, exact),
                100 * dc_error(raw, exact), 100 * band_error(beta, exact),
                100 * dc_error(beta, exact),
                100 * band_error(direct, exact),
                100 * dc_error(direct, exact),
                100 * band_error(none, exact), 100 * dc_error(none, exact));
  }
  std::printf(
      "\nreading: both filter policies restore DC exactly. When the\n"
      "flipped pole carries real band weight (this circuit), the direct\n"
      "compensation keeps the mid-band response while beta scaling\n"
      "distorts it; for far-out tiny-residue unstable poles (the paper's\n"
      "common case) the two coincide.\n");
  return 0;
}
