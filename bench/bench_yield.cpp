// Extension bench: timing yield and worst-case-corner pessimism.
//
// The paper's introduction motivates the statistical framework by arguing
// that worst-case corner methods "create overly pessimistic results and
// sub-optimal designs", and Sec. 4 frames the goal as predicting "the
// timing yield of the critical path delay". This bench quantifies both on
// the s208 longest path: yield-vs-clock-period curves from the MC sample
// and from the GA Gaussian, and the pessimism of the +/-3-sigma corner
// relative to the statistical 99.87% (3-sigma) quantile.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/path.hpp"
#include "runtime/thread_pool.hpp"
#include "stats/yield.hpp"

using namespace lcsf;

int main() {
  bench::print_header("Extension: timing yield & corner pessimism");
  const bool quick = bench::quick_mode();
  const std::size_t threads = runtime::ThreadPool::default_threads();

  const auto& bspec = timing::find_benchmark("s208");
  const auto nl = timing::generate_benchmark(bspec);
  const auto path = timing::longest_path(nl);
  core::PathSpec spec = core::PathSpec::from_benchmark(
      circuit::technology_180nm(), nl, path, 10);
  spec.stage_window = 1.0e-9;
  core::PathAnalyzer analyzer(spec);

  core::PathVariationModel model;
  model.std_dl = 0.33;
  model.std_vt = 0.33;

  stats::RunOptions opt;
  opt.samples = quick ? 30 : 200;
  opt.seed = 88;

  // Parallel MC run plus a serial rerun: the engine's determinism
  // contract says they agree bitwise; the timing ratio is this host's
  // threading speed-up for the yield sweep.
  opt.exec.threads = threads;
  bench::Stopwatch mt_sw;
  const auto mc = analyzer.monte_carlo(model, opt);
  const double mt_time = mt_sw.seconds();
  opt.exec.threads = 1;
  bench::Stopwatch serial_sw;
  const auto mc_serial = analyzer.monte_carlo(model, opt);
  const double serial_time = serial_sw.seconds();
  const bool identical = mc.values == mc_serial.values;
  const auto ga = analyzer.gradient_analysis(model);

  std::printf("\n%s longest path (%zu stages), %zu MC samples\n",
              bspec.name.c_str(), analyzer.num_stages(), mc.values.size());
  std::printf("MC mean %.2f ps std %.2f | GA mean %.2f ps std %.2f\n",
              mc.stats.mean() * 1e12, mc.stats.stddev() * 1e12,
              ga.nominal_delay * 1e12, ga.stddev * 1e12);
  std::printf("%zu threads: %.2f s vs %.2f s serial (%.2fx), values %s\n\n",
              threads, mt_time, serial_time, serial_time / mt_time,
              identical ? "bitwise identical" : "DIFFER");

  std::printf("%-18s %-14s %-14s\n", "clock period [ps]", "MC yield",
              "GA yield");
  const double lo = mc.stats.mean() - 2.5 * mc.stats.stddev();
  const double hi = mc.stats.mean() + 3.5 * mc.stats.stddev();
  std::vector<double> periods;
  for (int k = 0; k <= 6; ++k) periods.push_back(lo + (hi - lo) * k / 6.0);
  const auto mc_yield = stats::empirical_yield_curve(mc.values, periods);
  for (std::size_t k = 0; k < periods.size(); ++k) {
    std::printf("%-18.2f %-14.4f %-14.4f\n", periods[k] * 1e12, mc_yield[k],
                stats::gaussian_yield(ga.nominal_delay, ga.stddev,
                                      periods[k]));
  }

  const double q3s = stats::gaussian_period_for_yield(
      ga.nominal_delay, ga.stddev, 0.99865);
  const auto corner = analyzer.worst_case_corner(model, 3.0);
  std::printf("\n3-sigma statistical quantile: %.2f ps\n", q3s * 1e12);
  std::printf("+/-3-sigma worst-case corner: %.2f ps\n",
              corner.delay * 1e12);
  std::printf("corner pessimism (margin ratio): %.2fx\n",
              stats::corner_pessimism(corner.delay, q3s,
                                      ga.nominal_delay));
  std::printf(
      "\nreading: the simultaneous all-corners delay overstates the margin\n"
      "needed for 3-sigma yield -- the pessimism the paper's statistical\n"
      "methodology removes.\n");
  return identical ? 0 : 1;
}
