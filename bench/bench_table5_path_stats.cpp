// Reproduces Table 5: "Statistics of longest path delays (Example 3)" --
// GA vs MC mean/std of the longest-path delay for the benchmark suite
// under (a) channel-length variation only (std(DL) = 0.33) and (b) DL plus
// threshold variation (std(VT) = 0.33).
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/path.hpp"

using namespace lcsf;

int main() {
  bench::print_header("Table 5: longest-path delay statistics (Example 3)");
  const bool quick = bench::quick_mode();
  const std::vector<const char*> circuits =
      quick ? std::vector<const char*>{"s27", "s208"}
            : std::vector<const char*>{"s27", "s208", "s832", "s444",
                                       "s1423"};
  const std::size_t mc_samples = quick ? 20 : 100;

  std::printf("\n%-10s %-8s %-9s %-9s %-8s %-11s %-10s %-8s\n", "circuit",
              "stages", "std(DL)", "std(VT)", "method", "mean [ps]",
              "std [ps]", "sims");

  for (const char* name : circuits) {
    const auto& bspec = timing::find_benchmark(name);
    const auto nl = timing::generate_benchmark(bspec);
    const auto path = timing::longest_path(nl);
    core::PathSpec spec = core::PathSpec::from_benchmark(
        circuit::technology_180nm(), nl, path, 10);
    spec.stage_window = 1.0e-9;
    core::PathAnalyzer analyzer(spec);

    for (double std_vt : {0.0, 0.33}) {
      core::PathVariationModel model;
      model.std_dl = 0.33;
      model.std_vt = std_vt;

      const auto ga = analyzer.gradient_analysis(model);
      std::printf("%-10s %-8zu %-9.2f %-9.2f %-8s %-11.2f %-10.2f %-8zu\n",
                  name, analyzer.num_stages(), model.std_dl, std_vt, "GA",
                  ga.nominal_delay * 1e12, ga.stddev * 1e12,
                  ga.simulations);

      stats::RunOptions mco;
      mco.samples = mc_samples;
      mco.seed = 1000 + bspec.seed;
      const auto mc = analyzer.monte_carlo(model, mco);
      std::printf("%-10s %-8zu %-9.2f %-9.2f %-8s %-11.2f %-10.2f %-8zu\n",
                  name, analyzer.num_stages(), model.std_dl, std_vt, "MC",
                  mc.stats.mean() * 1e12, mc.stats.stddev() * 1e12,
                  mc.values.size());
    }
  }
  std::printf(
      "\nshape check (paper Table 5): GA and MC means coincide; GA's\n"
      "first-order std tracks MC, degrading for longer paths (more\n"
      "accumulated nonlinearity); adding VT variation raises the spread.\n"
      "GA needs far fewer simulations than the 100-sample MC.\n");
  return 0;
}
