// Reproduces Figure 7: "Histograms for the longest path delays obtained by
// the MC and GA analysis (under DL and VT variations)" for s27 and s208.
// The GA histogram is the Gaussian implied by (nominal, sigma) from
// Eq. 24, sampled on the same grid as the MC histogram.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/path.hpp"
#include "runtime/thread_pool.hpp"

using namespace lcsf;

int main() {
  bench::print_header("Figure 7: MC vs GA path-delay histograms");
  const bool quick = bench::quick_mode();
  const std::size_t mc_samples = quick ? 20 : 100;
  std::printf("MC engine threads: %zu (set LCSF_THREADS to override)\n",
              runtime::ThreadPool::default_threads());

  for (const char* name : {"s27", "s208"}) {
    const auto& bspec = timing::find_benchmark(name);
    const auto nl = timing::generate_benchmark(bspec);
    const auto path = timing::longest_path(nl);
    core::PathSpec spec = core::PathSpec::from_benchmark(
        circuit::technology_180nm(), nl, path, 10);
    spec.stage_window = 1.0e-9;
    core::PathAnalyzer analyzer(spec);

    core::PathVariationModel model;
    model.std_dl = 0.33;
    model.std_vt = 0.33;

    stats::RunOptions mco;
    mco.samples = mc_samples;
    mco.seed = 7000 + bspec.seed;
    mco.exec.threads = 0;  // auto: parallel across samples, deterministic
    const auto mc = analyzer.monte_carlo(model, mco);
    const auto ga = analyzer.gradient_analysis(model);

    std::printf("\n--- %s (%zu stages) ---\n", name, analyzer.num_stages());
    std::printf("MC: mean %.2f ps, std %.2f ps | GA: mean %.2f ps, std "
                "%.2f ps\n\n",
                mc.stats.mean() * 1e12, mc.stats.stddev() * 1e12,
                ga.nominal_delay * 1e12, ga.stddev * 1e12);

    std::printf("MC histogram:\n%s\n",
                stats::Histogram::from_data(mc.values, 11)
                    .render(40)
                    .c_str());

    // GA: Gaussian with (nominal, stddev) over the same support.
    std::printf("GA (Gaussian from Eq. 24):\n");
    const auto s = stats::summarize(mc.values);
    const double lo = s.min() - 0.05 * (s.max() - s.min());
    const double hi = s.max() + 0.05 * (s.max() - s.min());
    const std::size_t bins = 11;
    std::vector<double> density(bins);
    double peak = 0.0;
    for (std::size_t b = 0; b < bins; ++b) {
      const double c = lo + (double(b) + 0.5) * (hi - lo) / double(bins);
      const double zz = (c - ga.nominal_delay) / ga.stddev;
      density[b] = std::exp(-0.5 * zz * zz);
      peak = std::max(peak, density[b]);
    }
    for (std::size_t b = 0; b < bins; ++b) {
      const double c = lo + (double(b) + 0.5) * (hi - lo) / double(bins);
      const auto expected = static_cast<std::size_t>(
          std::round(density[b] / peak *
                     double(mc_samples) * 0.35));
      std::printf("%.3e | %4zu | ", c, expected);
      for (std::size_t k = 0; k < expected; ++k) std::printf("#");
      std::printf("\n");
    }
  }
  std::printf(
      "\nshape check (paper Fig. 7): the GA Gaussian is centred on the MC\n"
      "histogram with a slightly narrower spread.\n");
  return 0;
}
