// Ablation: variational library pre-characterization mode.
//
// kFullReduction differences complete reductions (the paper's variational
// algebra with dX terms, Eq. 8-11) -- it reproduces the instability but
// carries eigen-derivative noise. kFrozenProjection re-projects perturbed
// pencils through the nominal basis -- every sample is an exact congruence,
// so instability appears only far outside the characterized range.
// Also sweeps the reduction method (PACT vs PRIMA) and the DOE step.
#include <cmath>
#include <complex>
#include <cstdio>

#include "bench_common.hpp"
#include "interconnect/example1.hpp"
#include "mor/poleres.hpp"
#include "mor/variational.hpp"

using namespace lcsf;
using numeric::Complex;
using numeric::Vector;

namespace {

constexpr double kGout = 25.26e-3;

double band_error(const mor::PoleResidueModel& model,
                  const interconnect::PortedPencil& exact) {
  double err = 0.0;
  for (double f : {1e7, 1e8, 1e9, 1e10}) {
    const Complex s{0.0, 2 * M_PI * f};
    const Complex ze =
        mor::pencil_port_impedance(exact.g, exact.c, 1, s)(0, 0);
    err = std::max(err, std::abs(model.eval(0, 0, s) - ze) / std::abs(ze));
  }
  return err;
}

}  // namespace

int main() {
  bench::print_header("Ablation: variational library modes");

  auto family = mor::scalar_family([](double p) {
    auto pencil = interconnect::example1_pencil_family()(p);
    return mor::with_port_conductance(std::move(pencil), Vector{kGout});
  });

  struct Config {
    const char* name;
    mor::ReductionMethod method;
    mor::LibraryMode mode;
    double h;
  };
  const Config configs[] = {
      {"PACT  full-reduction h=0.05", mor::ReductionMethod::kPact,
       mor::LibraryMode::kFullReduction, 0.05},
      {"PACT  full-reduction h=0.01", mor::ReductionMethod::kPact,
       mor::LibraryMode::kFullReduction, 0.01},
      {"PACT  frozen-projection     ", mor::ReductionMethod::kPact,
       mor::LibraryMode::kFrozenProjection, 0.05},
      {"PRIMA full-reduction h=0.05", mor::ReductionMethod::kPrima,
       mor::LibraryMode::kFullReduction, 0.05},
      {"PRIMA frozen-projection     ", mor::ReductionMethod::kPrima,
       mor::LibraryMode::kFrozenProjection, 0.05},
  };

  std::printf("\nper config: unstable-pole count / stabilized band error "
              "at each p\n\n");
  std::printf("%-30s %-12s %-12s %-12s\n", "library", "p=0.05", "p=0.08",
              "p=0.10");
  for (const Config& cfg : configs) {
    mor::VariationalOptions vopt;
    vopt.method = cfg.method;
    vopt.library = cfg.mode;
    vopt.pact.internal_modes = 4;
    vopt.prima.block_moments = 4;
    vopt.fd_step = cfg.h;
    const auto rom = mor::build_variational_rom(family, 1, vopt);
    std::printf("%-30s ", cfg.name);
    for (double p : {0.05, 0.08, 0.10}) {
      const auto raw = mor::extract_pole_residue(rom.evaluate(Vector{p}));
      const auto st = mor::stabilize(raw);
      std::printf("%zu / %-7.2f%% ", raw.count_unstable(),
                  100 * band_error(st, family(Vector{p})));
    }
    std::printf("\n");
  }
  std::printf(
      "\nreading: the paper-literal full-reduction library shows the\n"
      "Table-3 instability; the frozen-projection ablation stays passive\n"
      "over the characterized range at comparable accuracy, at the cost\n"
      "of not reproducing the paper's phenomenon (and of requiring the\n"
      "projection basis to be stored).\n");
  return 0;
}
