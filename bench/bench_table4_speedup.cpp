// Reproduces Table 4: "Speedup obtained with the framework" -- Monte-Carlo
// longest-path analysis of the ISCAS-89 benchmarks with 10 and 500 linear
// elements between stages; the framework's stage-by-stage TETA evaluation
// vs the conventional whole-path simulation.
//
// Per-sample costs are measured directly (the per-sample cost of either
// engine is sample-independent), so the SPICE column uses fewer probe
// samples on the large circuits; speedup = SPICE-per-sample /
// (framework-per-sample + amortized characterization over 100 samples).
//
// The framework probe runs through the parallel Monte-Carlo engine, once
// serially and once on all cores: the "MT" column reports the extra
// wall-clock speed-up threading adds on this host on top of the
// algorithmic speed-up the paper measures.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/path.hpp"
#include "runtime/thread_pool.hpp"

using namespace lcsf;

int main() {
  bench::print_header("Table 4: framework speedup vs SPICE (Example 3)");
  const bool quick = bench::quick_mode();
  const std::size_t threads = runtime::ThreadPool::default_threads();
  std::printf("host threads for the MT column: %zu\n", threads);

  struct Row {
    const char* circuit;
    std::size_t elements;
  };
  std::vector<Row> rows;
  const std::vector<const char*> circuits =
      quick ? std::vector<const char*>{"s27", "s208"}
            : std::vector<const char*>{"s27", "s208", "s444", "s1423d",
                                       "s9234"};
  for (const char* c : circuits) {
    rows.push_back({c, 10});
    rows.push_back({c, 500});
  }

  std::printf("\npaper rows: s27 8.12/74.2, s208 18.59/78.76, s444 "
              "12.47/84.62,\n            s1423 25.25/120.42, s9234 "
              "20.3/100.6  (10/500 elements)\n\n");
  std::printf("%-10s %-8s %-10s %-14s %-14s %-10s %-6s\n", "circuit",
              "stages", "elements", "SPICE", "framework", "speedup", "MT");
  std::printf("%-10s %-8s %-10s %-14s %-14s %-10s %-6s\n", "", "", "",
              "[s/sample]", "[s/sample]", "", "[x]");

  for (const Row& row : rows) {
    const auto& bspec = timing::find_benchmark(row.circuit);
    const auto nl = timing::generate_benchmark(bspec);
    const auto path = timing::longest_path(nl);

    core::PathSpec spec = core::PathSpec::from_benchmark(
        circuit::technology_180nm(), nl, path, row.elements);
    spec.stage_window = 1.0e-9;
    spec.dt = 2e-12;

    bench::Stopwatch char_sw;
    core::PathAnalyzer analyzer(spec);
    const double char_s = char_sw.seconds();

    core::PathSample nominal;
    nominal.device.resize(analyzer.num_stages());

    // Framework probe: a small MC through the parallel engine, serial
    // first (the per-sample cost the paper's Table 4 compares), then on
    // all threads for the wall-clock MT ratio.
    core::PathVariationModel probe_model;
    probe_model.std_vt = 0.01;
    stats::RunOptions probe_mco;
    probe_mco.samples = quick ? 3 : 10;
    probe_mco.seed = 4;
    probe_mco.exec.threads = 1;
    // Fail-soft: a divergent sample is recorded and excluded instead of
    // aborting the whole timing row.
    probe_mco.exec.on_failure = stats::FailurePolicy::kSkip;
    bench::Stopwatch fw_sw;
    const auto probe_mc = analyzer.monte_carlo(probe_model, probe_mco);
    const double fw_serial = fw_sw.seconds();
    if (probe_mc.failures.any()) {
      std::printf("%-10s framework sample failures: %zu of %zu\n%s",
                  row.circuit, probe_mc.failures.failed(),
                  probe_mc.failures.attempted,
                  probe_mc.failures.table().c_str());
    }
    probe_mco.exec.threads = threads;
    bench::Stopwatch fw_mt_sw;
    (void)analyzer.monte_carlo(probe_model, probe_mco);
    const double fw_mt = fw_mt_sw.seconds();
    // Amortize characterization over the 100-sample MC the paper runs.
    const double fw_per =
        fw_serial / double(probe_mco.samples) + char_s / 100.0;

    const std::size_t sp_probe =
        (path.length() > 20 || row.elements > 100) ? 1 : (quick ? 1 : 3);
    double sp_per = 0.0;
    try {
      bench::Stopwatch sp_sw;
      for (std::size_t s = 0; s < sp_probe; ++s) {
        (void)analyzer.spice_delay(nominal);
      }
      sp_per = sp_sw.seconds() / double(sp_probe);
    } catch (const sim::SimulationError& e) {
      std::printf("%-10s %-8zu %-10zu SPICE failed [%s]: %s\n",
                  row.circuit, analyzer.num_stages(), row.elements,
                  sim::failure_kind_name(e.kind()), e.what());
      std::fflush(stdout);
      continue;
    } catch (const std::exception& e) {
      std::printf("%-10s %-8zu %-10zu SPICE failed: %s\n", row.circuit,
                  analyzer.num_stages(), row.elements, e.what());
      std::fflush(stdout);
      continue;
    }

    std::printf("%-10s %-8zu %-10zu %-14.4f %-14.4f %-10.2f %-6.2f\n",
                row.circuit, analyzer.num_stages(), row.elements, sp_per,
                fw_per, sp_per / fw_per, fw_serial / fw_mt);
    std::fflush(stdout);
  }
  std::printf(
      "\nshape check (paper Table 4): speedup grows with the linear-element\n"
      "count (the ROM hides interconnect complexity from the nonlinear\n"
      "solve) and with path length.\n");
  return 0;
}
