// Importance-sampled yield estimator vs brute-force Monte Carlo on a
// known-tail toy problem (docs/yield_estimation.md).
//
// The performance function is a mildly nonlinear delay over 8 normal
// sources -- linear ramp plus a small quadratic bend, so the linear
// surrogate that steers the proposal is good but not exact (the honest
// regime for the estimator). The clock period is placed ~3 sigma out,
// where plain MC needs ~10^5 samples to resolve the failure rate and the
// IS run spends a few thousand.
//
// Three estimators run on the same problem:
//   mc     : brute-force Monte Carlo at a large reference budget. Its
//            estimate and 95% CI are the ground truth the IS runs must
//            agree with.
//   is     : Runner::run_yield_is with the analytic boundary shift.
//   is-cv  : the same plus the linear-surrogate control variate.
//
// The headline metric is ess_speedup: how many plain-MC samples one IS
// sample is worth at matched estimator variance, p(1-p)/SE_is^2 / n_is.
// The ci.sh bench-quick stage gates ess_speedup >= 5 and
// is_within_mc_ci == 1 on the committed BENCH_yield_is.json.
//
// Usage: bench_yield_is [output.json]   (default BENCH_yield_is.json)
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "numeric/fp_compare.hpp"
#include "stats/importance.hpp"
#include "stats/runner.hpp"
#include "stats/yield.hpp"

namespace {

using namespace lcsf;
using numeric::Vector;

constexpr std::size_t kDims = 8;

/// Mildly nonlinear toy delay (picoseconds): the quadratic term keeps the
/// linear surrogate honest without moving the tail far from Gaussian.
double toy_delay(const Vector& w) {
  double d = 100.0;
  for (const double x : w) d += 1.5 * x + 0.03 * x * x;
  return d;
}

std::vector<stats::VariationSource> toy_sources() {
  std::vector<stats::VariationSource> src(kDims);
  for (auto& s : src) {
    s.kind = stats::VariationSource::Kind::kNormal;
    s.mean = 0.0;
    s.sigma = 1.0;
  }
  return src;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_yield_is.json";
  const bool quick = bench::quick_mode();
  bench::print_header("importance-sampled yield vs brute-force MC");

  const auto src = toy_sources();
  // ~3 sigma of the surrogate spread (1.5 * sqrt(8) ~ 4.24/sigma).
  const double T = 100.0 + 3.0 * 1.5 * std::sqrt(static_cast<double>(kDims));
  const std::size_t n_mc = quick ? 20000 : 400000;
  const std::size_t n_is = quick ? 1000 : 4000;

  stats::RunOptions mc_opt;
  mc_opt.samples = n_mc;
  mc_opt.seed = 404;
  mc_opt.exec.threads = 0;  // auto

  // ---- Brute-force reference.
  bench::Stopwatch mc_sw;
  const auto mc = stats::Runner(mc_opt).run_monte_carlo(
      [](const Vector& w) { return toy_delay(w); }, src);
  const double mc_time = mc_sw.seconds();
  std::size_t mc_fail = 0;
  for (const double v : mc.values) {
    if (v > T) ++mc_fail;
  }
  const double n_mc_d = static_cast<double>(n_mc);
  const double p_mc = static_cast<double>(mc_fail) / n_mc_d;
  const double se_mc = std::sqrt(p_mc * (1.0 - p_mc) / n_mc_d);

  // ---- Importance-sampled runs (identical budget, same seed base).
  stats::RunOptions is_opt = mc_opt;
  is_opt.samples = n_is;
  bench::Stopwatch is_sw;
  const auto is = stats::Runner(is_opt).run_yield_is(
      [](const Vector& w) { return toy_delay(w); }, src, T);
  const double is_time = is_sw.seconds();

  stats::RunOptions cv_opt = is_opt;
  cv_opt.importance.control_variate = true;
  const auto cv = stats::Runner(cv_opt).run_yield_is(
      [](const Vector& w) { return toy_delay(w); }, src, T);

  // Bitwise thread-invariance spot check (serial rerun of the IS leg).
  stats::RunOptions serial_opt = is_opt;
  serial_opt.exec.threads = 1;
  const auto is_serial = stats::Runner(serial_opt).run_yield_is(
      [](const Vector& w) { return toy_delay(w); }, src, T);
  const bool identical = is.weights == is_serial.weights &&
                         is.values == is_serial.values &&
                         numeric::exact_eq(is.yield_loss,
                                           is_serial.yield_loss);

  // MC samples worth one IS sample at matched variance.
  const double n_is_d = static_cast<double>(n_is);
  const double mc_equiv =
      is.yield_loss * (1.0 - is.yield_loss) /
      (is.std_error * is.std_error);
  const double ess_speedup = mc_equiv / n_is_d;
  const double cv_equiv =
      cv.yield_loss * (1.0 - cv.yield_loss) /
      (cv.std_error * cv.std_error);
  const double cv_speedup = cv_equiv / n_is_d;
  // 95% agreement band of the two independent estimators.
  const double band =
      1.96 * std::sqrt(se_mc * se_mc + is.std_error * is.std_error);
  const bool within = std::abs(is.yield_loss - p_mc) <= band;

  std::printf("clock period %.2f ps (surrogate beta %.2f)\n", T,
              is.surrogate.beta);
  std::printf("%-8s %-12s %-12s %-10s %-10s\n", "est", "yield loss",
              "std err", "samples", "speedup");
  std::printf("%-8s %-12.4e %-12.4e %-10zu %-10s\n", "mc", p_mc, se_mc,
              n_mc, "1.0x");
  std::printf("%-8s %-12.4e %-12.4e %-10zu %.1fx\n", "is",
              is.yield_loss, is.std_error, n_is, ess_speedup);
  std::printf("%-8s %-12.4e %-12.4e %-10zu %.1fx\n", "is-cv",
              cv.yield_loss, cv.std_error, n_is, cv_speedup);
  std::printf("IS ESS %.1f of %zu; |is - mc| = %.3e vs 95%% band %.3e "
              "(%s)\n",
              is.ess, n_is, std::abs(is.yield_loss - p_mc), band,
              within ? "within" : "OUTSIDE");
  std::printf("serial rerun %s\n",
              identical ? "bitwise identical" : "DIFFERS");

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "bench_yield_is: cannot write %s\n",
                 out_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"yield_is\",\n"
               "  \"quick\": %s,\n"
               "  \"config\": {\n"
               "    \"dims\": %zu,\n"
               "    \"clock_period\": %.6f,\n"
               "    \"mc_samples\": %zu,\n"
               "    \"is_samples\": %zu\n"
               "  },\n"
               "  \"metrics\": {\n"
               "    \"mc_yield_loss\": %.8e,\n"
               "    \"is_yield_loss\": %.8e,\n"
               "    \"is_std_error\": %.8e,\n"
               "    \"cv_yield_loss\": %.8e,\n"
               "    \"cv_std_error\": %.8e,\n"
               "    \"ess\": %.4f,\n"
               "    \"ess_speedup\": %.4f,\n"
               "    \"cv_ess_speedup\": %.4f,\n"
               "    \"is_within_mc_ci\": %d,\n"
               "    \"mc_seconds\": %.6f,\n"
               "    \"is_seconds\": %.6f\n"
               "  },\n"
               "  \"bitwise_identical\": %s\n"
               "}\n",
               quick ? "true" : "false", kDims, T, n_mc, n_is, p_mc,
               is.yield_loss, is.std_error, cv.yield_loss, cv.std_error,
               is.ess, ess_speedup, cv_speedup, within ? 1 : 0, mc_time,
               is_time, identical ? "true" : "false");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());
  return (identical && within) ? 0 : 1;
}
