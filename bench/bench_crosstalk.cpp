// Extension bench: crosstalk noise on a quiet victim (signal integrity).
//
// Sec. 4 of the paper argues that "the inclusion of the electrical
// activity in the local vicinity of the signal path into timing analysis
// (signal integrity) can be imperative". This bench holds the victim line
// quiet while its neighbours switch and measures the coupled noise peak at
// the victim's far end -- with the variational library evaluated across
// the wire-spacing tolerance, and cross-checked against the full
// conventional simulation.
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "circuit/technology.hpp"
#include "interconnect/coupled_lines.hpp"
#include "mor/poleres.hpp"
#include "mor/prima.hpp"
#include "mor/variational.hpp"
#include "spice/transient.hpp"
#include "teta/stage.hpp"

using namespace lcsf;
using numeric::Vector;

namespace {

constexpr double kLen = 200e-6;
constexpr std::size_t kLines = 3;  // victim in the middle
constexpr double kDt = 2e-12;
constexpr double kTstop = 1.2e-9;

struct Setup {
  circuit::Technology tech = circuit::technology_180nm();
  // Victim (line 1) input held low -> its driver holds the line high;
  // aggressors fall -> lines rise... choose: victim high and quiet,
  // aggressors rise from low.
  circuit::SourceWaveform victim_in = circuit::SourceWaveform::dc(0.0);
  circuit::SourceWaveform aggressor_in =
      circuit::SourceWaveform::ramp(1.8, 0.0, 100e-12, 80e-12);

  teta::StageCircuit make_stage() const {
    teta::StageCircuit st;
    std::vector<std::size_t> near(kLines);
    for (std::size_t l = 0; l < kLines; ++l) near[l] = st.add_port();
    for (std::size_t l = 0; l < kLines; ++l) st.add_port();
    const std::size_t vdd = st.add_rail(tech.vdd);
    const std::size_t gnd = st.add_rail(0.0);
    for (std::size_t l = 0; l < kLines; ++l) {
      const std::size_t in =
          st.add_input(l == 1 ? victim_in : aggressor_in);
      st.add_mosfet(tech.make_nmos(static_cast<int>(near[l]),
                                   static_cast<int>(in),
                                   static_cast<int>(gnd), 6.0));
      st.add_mosfet(tech.make_pmos(static_cast<int>(near[l]),
                                   static_cast<int>(in),
                                   static_cast<int>(vdd), 12.0));
    }
    st.freeze_device_capacitances();
    return st;
  }

  interconnect::CoupledLineBundle bundle(double spacing_norm) const {
    interconnect::WireVariation wv;
    wv.spacing = spacing_norm * tech.wire_tol.spacing;
    interconnect::CoupledLineSpec spec;
    spec.num_lines = kLines;
    spec.length = kLen;
    spec.segment_length = 1e-6;
    spec.geometry = interconnect::apply_variation(tech.wire, wv);
    auto b = interconnect::build_coupled_lines(spec);
    for (auto far : b.far_ends) {
      b.netlist.add_capacitor(far, circuit::kGround, 4e-15);
    }
    return b;
  }
};

double noise_peak(const std::vector<std::pair<double, double>>& w,
                  double quiet_level) {
  double peak = 0.0;
  for (const auto& [t, v] : w) {
    peak = std::max(peak, std::abs(v - quiet_level));
  }
  return peak;
}

}  // namespace

int main() {
  bench::print_header("Extension: crosstalk noise on a quiet victim");
  const Setup setup;
  const double vdd = setup.tech.vdd;

  // Variational library over the spacing parameter only.
  auto stage0 = setup.make_stage();
  Vector gout(2 * kLines, 0.0);
  {
    const auto near = stage0.port_chord_conductances(vdd);
    for (std::size_t l = 0; l < kLines; ++l) gout[l] = near[l];
  }
  mor::PencilFamily family = [&setup, &gout](const Vector& w) {
    auto b = setup.bundle(w[0]);
    auto pencil = interconnect::build_ported_pencil(b.netlist, b.ports());
    return mor::with_port_conductance(std::move(pencil), gout);
  };
  mor::VariationalOptions vopt;
  vopt.method = mor::ReductionMethod::kPrima;
  vopt.prima.block_moments = 2;
  vopt.fd_step = 0.2;
  const auto rom = mor::build_variational_rom(family, 1, vopt);

  std::printf("\nvictim quiet-high, both neighbours rising; %g um lines\n\n",
              kLen * 1e6);
  std::printf("%-16s %-22s %-22s\n", "spacing", "framework noise [mV]",
              "full sim noise [mV]");
  for (double w : {-1.0, -0.5, 0.0, 0.5, 1.0}) {
    // Framework.
    const auto z = mor::stabilize(
        mor::extract_pole_residue(rom.evaluate(Vector{w})));
    auto stage = setup.make_stage();
    teta::TetaOptions topt;
    topt.tstop = kTstop;
    topt.dt = kDt;
    topt.vdd = vdd;
    const auto tres = teta::simulate_stage(stage, z, topt);
    if (!tres.converged) {
      std::printf("TETA failed: %s\n", tres.failure().c_str());
      return 1;
    }
    const double fw =
        noise_peak(tres.waveform(kLines + 1), vdd);  // victim far end

    // Full simulation.
    auto b = setup.bundle(w);
    circuit::Netlist nl = b.netlist;
    const auto nvdd = nl.add_node("vdd");
    nl.add_vsource(nvdd, circuit::kGround,
                   circuit::SourceWaveform::dc(vdd));
    for (std::size_t l = 0; l < kLines; ++l) {
      const auto in = nl.add_node("in" + std::to_string(l));
      nl.add_vsource(in, circuit::kGround,
                     l == 1 ? setup.victim_in : setup.aggressor_in);
      nl.add_mosfet(
          setup.tech.make_nmos(b.near_ends[l], in, circuit::kGround, 6.0));
      nl.add_mosfet(setup.tech.make_pmos(b.near_ends[l], in, nvdd, 12.0));
    }
    nl.freeze_device_capacitances();
    spice::TransientSimulator sim(nl);
    spice::TransientOptions sopt;
    sopt.tstop = kTstop;
    sopt.dt = kDt;
    const auto sres = sim.run(sopt);
    if (!sres.converged) {
      std::printf("SPICE failed: %s\n", sres.failure().c_str());
      return 1;
    }
    const double sp = noise_peak(sres.waveform(b.far_ends[1]), vdd);

    std::printf("%+.1f tol (%4.0f nm) %-22.1f %-22.1f\n", w,
                (1.0 + w * setup.tech.wire_tol.spacing) *
                    setup.tech.wire.spacing * 1e9,
                fw * 1e3, sp * 1e3);
  }
  std::printf(
      "\nreading: tighter spacing raises the coupled noise; the variational\n"
      "library tracks the full simulation across the spacing tolerance\n"
      "without re-reducing the interconnect.\n");
  return 0;
}
