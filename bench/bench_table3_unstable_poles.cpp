// Reproduces Table 3: "The unstable poles during construction of the
// variational reduced order model for the circuit in Example 1."
//
// The Fig. 2 / Table 2 coupled RC line (second port shunted with 100 ohm)
// is pre-characterized as a 4th-order variational PACT library with the
// driver chord conductance folded in. Evaluating the first-order library
// at increasing p produces right-half-plane poles from p = 0.05 onward --
// the same threshold at which the paper reports SPICE failing -- with the
// unstable-pole magnitude decreasing as p grows, as in the paper's row.
#include <cstdio>

#include "bench_common.hpp"
#include "circuit/technology.hpp"
#include "interconnect/example1.hpp"
#include "mor/pact.hpp"
#include "mor/poleres.hpp"
#include "mor/variational.hpp"
#include "teta/stage.hpp"

using namespace lcsf;
using numeric::Vector;

int main() {
  bench::print_header(
      "Table 3: unstable poles of the variational ROM (Example 1)");

  // Driver: the 0.6 um inverter of Example 1; its chord conductance is
  // part of the effective load (Table 1, steps 1-2).
  const circuit::Technology tech = circuit::technology_600nm();
  teta::StageCircuit probe;
  const std::size_t out = probe.add_port();
  const std::size_t in = probe.add_input(circuit::SourceWaveform::dc(0.0));
  const std::size_t vdd = probe.add_rail(tech.vdd);
  const std::size_t gnd = probe.add_rail(0.0);
  probe.add_mosfet(tech.make_nmos(static_cast<int>(out),
                                  static_cast<int>(in),
                                  static_cast<int>(gnd), 30.0));
  probe.add_mosfet(tech.make_pmos(static_cast<int>(out),
                                  static_cast<int>(in),
                                  static_cast<int>(vdd), 60.0));
  const double gout = probe.port_chord_conductances(tech.vdd)[0];

  mor::VariationalOptions vopt;
  vopt.library = mor::LibraryMode::kFullReduction;  // the paper's algebra
  vopt.pact.internal_modes = 4;                     // "fourth order"
  vopt.fd_step = 0.05;                              // DOE spacing
  const auto rom = mor::build_variational_rom(
      mor::scalar_family([gout](double p) {
        auto pencil = interconnect::example1_pencil_family()(p);
        return mor::with_port_conductance(std::move(pencil), Vector{gout});
      }),
      1, vopt);

  std::printf("\npaper row:   p:             0.05      0.06      0.08     "
              " 0.09      0.1\n");
  std::printf("paper row:   unstable pole: 2.93e15   3.54e13   8.43e12   "
              "5.41e12   3.75e12\n\n");

  std::printf("%-8s %-16s %-16s\n", "p", "unstable poles", "max Re(pole) "
                                                           "[rad/s]");
  for (double p : {0.02, 0.04, 0.05, 0.06, 0.08, 0.09, 0.10}) {
    const auto pr = mor::extract_pole_residue(rom.evaluate(Vector{p}));
    if (pr.count_unstable() == 0) {
      std::printf("%-8.2f %-16zu %-16s\n", p, pr.count_unstable(), "-");
    } else {
      std::printf("%-8.2f %-16zu %-16.3e\n", p, pr.count_unstable(),
                  pr.max_unstable_real());
    }
  }
  std::printf(
      "\nshape check: instability onset at p = 0.05 (paper: SPICE failed\n"
      "for p > 0.05) and the unstable-pole magnitude decreases with p,\n"
      "matching the paper's trend. Absolute magnitudes differ (the paper's\n"
      "pre-characterization noise depends on its eigen-solver details).\n");
  return 0;
}
