// Analysis-server throughput and characterization-cache benchmark
// (docs/serving.md). A real serve::Server is started on an ephemeral
// loopback port and driven over TCP, exactly like production clients:
//
//   cold load  : the first `load` of the circuit -- pays netlist
//                generation plus the full variational stage-load
//                pre-characterization inside api::Session::load.
//   warm load  : the same `load` again -- a serve::DesignCache hit; the
//                round-trip is parse + cache lookup + serialize. The
//                cold/warm ratio is the headline `warm_speedup` gated by
//                the ci.sh bench stage (>= 5x).
//   fleet      : N concurrent client connections each issue a stream of
//                monte_carlo requests against the warm design; the bench
//                reports aggregate requests/sec and the p50/p95 of the
//                per-request round-trip latency.
//
// Protocol determinism is asserted along the way: the cold and warm
// load responses must be byte-identical (a response never reveals
// whether it was served from cache), and every fleet response must
// equal the first -- `bitwise_identical` in the JSON records both.
//
// Emits BENCH_serve.json for tools/bench_compare.py and the ci.sh
// bench stage. Usage: bench_serve [output.json]
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "obs/registry.hpp"
#include "runtime/thread_pool.hpp"
#include "serve/server.hpp"

namespace {

using namespace lcsf;

/// Minimal blocking NDJSON client: one connection, send a line, read a
/// line. Throws on any socket hiccup -- a bench run must be clean.
class Client {
 public:
  explicit Client(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) throw std::runtime_error("socket() failed");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      throw std::runtime_error("connect() failed");
    }
  }
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  std::string request(const std::string& line) {
    const std::string out = line + "\n";
    std::size_t sent = 0;
    while (sent < out.size()) {
      const ssize_t n = ::send(fd_, out.data() + sent, out.size() - sent, 0);
      if (n <= 0) throw std::runtime_error("send() failed");
      sent += static_cast<std::size_t>(n);
    }
    for (;;) {
      const std::size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        const std::string resp = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return resp;
      }
      char chunk[65536];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) throw std::runtime_error("connection closed");
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t idx = static_cast<std::size_t>(
      p * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_serve.json";
  const bool quick = bench::quick_mode();

  const std::string circuit = quick ? "s27" : "s832";
  const std::size_t clients = quick ? 2 : 8;
  const std::size_t requests_per_client = quick ? 4 : 25;
  const std::size_t mc_samples = 8;
  const std::size_t warm_loads = quick ? 5 : 20;

  bench::print_header("analysis server: cache warm-up + request throughput"
                      " (" + circuit + ")");

  obs::Registry registry;
  serve::ServerOptions sopt;
  sopt.workers = clients + 1;
  sopt.registry = &registry;
  serve::Server server(sopt);
  server.bind_and_listen();

  const std::string load_req =
      R"({"id":"L","type":"load","circuit":")" + circuit + R"("})";
  const std::string mc_req =
      R"({"id":"M","type":"monte_carlo","circuit":")" + circuit +
      R"(","samples":)" + std::to_string(mc_samples) + R"(,"seed":42})";

  double cold_load_ms = 0.0;
  double warm_load_ms = 0.0;
  bool bitwise_identical = true;
  double fleet_seconds = 0.0;
  std::vector<double> latencies_ms;

  runtime::ThreadPool outer(2);
  outer.parallel_for_lanes(
      2,
      [&](std::size_t begin, std::size_t, std::size_t) {
        if (begin == 0) {
          server.run();
          return;
        }
        // The driver lane orchestrates every phase sequentially and is a
        // fresh nesting root, so the client fleet below really fans out.
        runtime::TaskRootScope root;

        // Phase 1: cold vs warm characterization, one connection.
        Client probe(server.port());
        bench::Stopwatch cold;
        const std::string cold_resp = probe.request(load_req);
        cold_load_ms = cold.seconds() * 1e3;
        if (cold_resp.find("\"ok\":true") == std::string::npos) {
          throw std::runtime_error("cold load failed: " + cold_resp);
        }
        std::vector<double> warm_ms;
        for (std::size_t i = 0; i < warm_loads; ++i) {
          bench::Stopwatch warm;
          const std::string warm_resp = probe.request(load_req);
          warm_ms.push_back(warm.seconds() * 1e3);
          bitwise_identical = bitwise_identical && warm_resp == cold_resp;
        }
        warm_load_ms = percentile(warm_ms, 0.5);

        // Phase 2: N concurrent connections stream monte_carlo requests
        // against the warm design.
        std::vector<std::vector<double>> per_lane(clients);
        std::vector<std::string> first_resp(clients);
        bench::Stopwatch fleet;
        runtime::ThreadPool fleet_pool(clients);
        fleet_pool.parallel_for_lanes(
            clients,
            [&](std::size_t b, std::size_t, std::size_t) {
              Client c(server.port());
              for (std::size_t r = 0; r < requests_per_client; ++r) {
                bench::Stopwatch sw;
                const std::string resp = c.request(mc_req);
                per_lane[b].push_back(sw.seconds() * 1e3);
                if (r == 0) {
                  first_resp[b] = resp;
                } else if (resp != first_resp[b]) {
                  first_resp[b] = "MISMATCH";
                }
              }
            },
            1);
        fleet_seconds = fleet.seconds();
        for (std::size_t c = 1; c < clients; ++c) {
          bitwise_identical =
              bitwise_identical && first_resp[c] == first_resp[0] &&
              first_resp[c] != "MISMATCH";
        }
        for (const auto& lane : per_lane) {
          latencies_ms.insert(latencies_ms.end(), lane.begin(), lane.end());
        }

        probe.request(R"({"id":"S","type":"shutdown"})");
      },
      1);

  const double total_requests =
      static_cast<double>(clients * requests_per_client);
  const double rps = total_requests / fleet_seconds;
  const double warm_speedup = cold_load_ms / warm_load_ms;
  const double p50 = percentile(latencies_ms, 0.5);
  const double p95 = percentile(latencies_ms, 0.95);

  std::printf("cold load        : %10.3f ms (characterization)\n",
              cold_load_ms);
  std::printf("warm load (p50)  : %10.3f ms (cache hit)\n", warm_load_ms);
  std::printf("warm speedup     : %10.1fx\n", warm_speedup);
  std::printf("fleet            : %zu clients x %zu monte_carlo(%zu)\n",
              clients, requests_per_client, mc_samples);
  std::printf("throughput       : %10.1f req/s\n", rps);
  std::printf("latency p50/p95  : %.3f / %.3f ms\n", p50, p95);
  std::printf("bitwise identical: %s\n", bitwise_identical ? "yes" : "NO");

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"serve\",\n"
               "  \"quick\": %s,\n"
               "  \"config\": {\n"
               "    \"circuit\": \"%s\",\n"
               "    \"clients\": %zu,\n"
               "    \"requests_per_client\": %zu,\n"
               "    \"mc_samples\": %zu,\n"
               "    \"workers\": %zu\n"
               "  },\n"
               "  \"metrics\": {\n"
               "    \"cold_load_ms\": %.6f,\n"
               "    \"warm_load_ms\": %.6f,\n"
               "    \"warm_speedup\": %.6f,\n"
               "    \"requests_per_sec\": %.6f,\n"
               "    \"latency_p50_ms\": %.6f,\n"
               "    \"latency_p95_ms\": %.6f\n"
               "  },\n"
               "  \"bitwise_identical\": %s\n"
               "}\n",
               quick ? "true" : "false", circuit.c_str(), clients,
               requests_per_client, mc_samples, sopt.workers, cold_load_ms,
               warm_load_ms, warm_speedup, rps, p50, p95,
               bitwise_identical ? "true" : "false");
  std::fclose(out);
  std::printf("\nwrote %s\n", out_path.c_str());
  return bitwise_identical ? 0 : 1;
}
