// Multi-path graph engine vs path-by-path re-simulation.
//
// The K most-critical latch-to-latch paths of a benchmark circuit share
// long prefixes (they fan out of the same launching latches) and common
// reconvergence suffixes. GraphAnalyzer::evaluate() exploits that: every
// (gate, input-ramp bucket) is transistor-level-simulated once per
// sample and memoized in the pooled workspace, with the statistical max
// taken where paths merge. The brute-force baseline
// (GraphAnalyzer::per_path_delays) re-simulates every stage of every
// path independently -- exactly what K separate PathAnalyzer runs would
// cost.
//
// Both legs run the same deterministic sample set drawn from the
// counter-based streams; the bench reports per-sample wall-clock for
// each leg, the shared-stage simulation counts, and the worst-endpoint
// disagreement between the two engines (the memoized statistical max
// must track the brute-force per-path max closely -- see
// docs/timing_graph.md for the slew-coupling caveat).
//
// Emits BENCH_sta_graph.json for tools/bench_compare.py; the ci.sh
// bench-quick stage floors `speedup` at 1.5x (the full-mode acceptance
// floor, comfortably cleared because the simulation-count ratio, not
// timer jitter, dominates).
//
// Usage: bench_sta_graph [output.json]   (default BENCH_sta_graph.json)
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "circuit/technology.hpp"
#include "core/graph_analyzer.hpp"
#include "numeric/matrix.hpp"
#include "stats/random.hpp"
#include "timing/sta.hpp"

using namespace lcsf;
using numeric::Vector;

int main(int argc, char** argv) {
  const std::string out_path =
      argc > 1 ? argv[1] : "BENCH_sta_graph.json";
  const bool quick = bench::quick_mode();
  const std::string circuit = quick ? "s27" : "s208";
  const std::size_t nsamples = quick ? 4 : 20;
  const std::size_t top_k = 8;

  bench::print_header("multi-path graph engine vs per-path re-simulation (" +
                      circuit + ", top-" + std::to_string(top_k) + ")");

  const auto nl = timing::generate_benchmark(timing::find_benchmark(circuit));
  core::GraphSpec spec;
  spec.tech = circuit::technology_180nm();
  spec.netlist = nl;
  spec.top_k = top_k;
  spec.stage_window = 1.0e-9;
  const core::GraphAnalyzer analyzer(std::move(spec));

  core::PathVariationModel model;
  model.std_dl = 0.33;
  model.std_vt = 0.33;

  // Deterministic sample set from the counter-based streams (same draws
  // regardless of build or thread count).
  const std::size_t nsrc = analyzer.sources(model).size();
  std::vector<core::GraphSample> samples;
  for (std::size_t s = 0; s < nsamples; ++s) {
    auto stream = stats::sample_stream(7, s, 0);
    Vector w(nsrc);
    for (double& x : w) {
      x = stats::to_normal(stream.uniform_open(), 0.0, 1.0 / 3.0);
    }
    samples.push_back(analyzer.sample_from_sources(model, w));
  }

  std::size_t path_stages = 0;
  for (const auto& p : analyzer.paths()) path_stages += p.length();
  std::printf("paths %zu, path-stages %zu, subgraph gates %zu, blocks %zu\n",
              analyzer.paths().size(), path_stages,
              analyzer.subgraph_gates().size(), analyzer.num_blocks());

  core::GraphAnalyzer::Workspace ws;
  // Warm-up fills the pooled engine scratch for both legs.
  (void)analyzer.per_path_delays(samples[0], ws);
  (void)analyzer.evaluate(samples[0], ws);

  // Baseline: every path independently, no memoization.
  std::vector<double> base_max(nsamples);
  bench::Stopwatch sw_base;
  for (std::size_t s = 0; s < nsamples; ++s) {
    const auto delays = analyzer.per_path_delays(samples[s], ws);
    double worst = delays[0];
    for (double d : delays) worst = std::max(worst, d);
    base_max[s] = worst;
  }
  const double t_base = sw_base.seconds();

  // Graph engine: shared stages simulated once, statistical max at
  // merges.
  std::vector<double> graph_max(nsamples);
  std::size_t sims = 0;
  std::size_t hits = 0;
  bench::Stopwatch sw_graph;
  for (std::size_t s = 0; s < nsamples; ++s) {
    const auto r = analyzer.evaluate(samples[s], ws);
    graph_max[s] = r.max_delay;
    sims += r.stages_simulated;
    hits += r.stage_cache_hits;
  }
  const double t_graph = sw_graph.seconds();

  double max_rel_diff = 0.0;
  for (std::size_t s = 0; s < nsamples; ++s) {
    max_rel_diff = std::max(
        max_rel_diff, std::abs(graph_max[s] - base_max[s]) / base_max[s]);
  }

  const double n = static_cast<double>(nsamples);
  const double speedup = t_base / t_graph;
  std::printf("samples              : %zu (%s)\n", nsamples,
              quick ? "quick" : "full");
  std::printf("per-path baseline    : %8.3f ms/sample (%zu stage sims "
              "each)\n",
              1e3 * t_base / n, path_stages);
  std::printf("graph engine         : %8.3f ms/sample (%.1f sims + %.1f "
              "cache hits each)\n",
              1e3 * t_graph / n, static_cast<double>(sims) / n,
              static_cast<double>(hits) / n);
  std::printf("shared-stage speedup : %.2fx\n", speedup);
  std::printf("max endpoint diff    : %.3f%% of delay\n",
              100.0 * max_rel_diff);

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_sta_graph: cannot write %s\n",
                 out_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"sta_graph\",\n"
               "  \"quick\": %s,\n"
               "  \"config\": {\n"
               "    \"circuit\": \"%s\",\n"
               "    \"top_k\": %zu,\n"
               "    \"samples\": %zu,\n"
               "    \"paths\": %zu,\n"
               "    \"path_stages\": %zu,\n"
               "    \"subgraph_gates\": %zu,\n"
               "    \"blocks\": %zu\n"
               "  },\n"
               "  \"metrics\": {\n"
               "    \"baseline_ms_per_sample\": %.6f,\n"
               "    \"graph_ms_per_sample\": %.6f,\n"
               "    \"stages_simulated_per_sample\": %.6f,\n"
               "    \"stage_cache_hits_per_sample\": %.6f,\n"
               "    \"speedup\": %.6f,\n"
               "    \"max_endpoint_rel_diff\": %.6e\n"
               "  }\n"
               "}\n",
               quick ? "true" : "false", circuit.c_str(), top_k, nsamples,
               analyzer.paths().size(), path_stages,
               analyzer.subgraph_gates().size(), analyzer.num_blocks(),
               1e3 * t_base / n, 1e3 * t_graph / n,
               static_cast<double>(sims) / n, static_cast<double>(hits) / n,
               speedup, max_rel_diff);
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
