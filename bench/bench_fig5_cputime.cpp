// Reproduces Figure 5: "CPU time comparison with different wirelengths
// (Example 2)" -- the conventional simulator's cost grows rapidly with the
// number of linear circuit elements while the framework's per-sample cost
// stays nearly flat (the reduced model hides the element count), so the
// speedup grows with wirelength.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "example2_stage.hpp"

using namespace lcsf;
using numeric::Vector;

int main() {
  bench::print_header("Figure 5: CPU time vs wirelength (Example 2)");
  const bool quick = bench::quick_mode();
  const std::vector<double> lengths =
      quick ? std::vector<double>{25e-6, 50e-6, 100e-6}
            : std::vector<double>{25e-6, 50e-6, 100e-6, 200e-6, 400e-6};
  const std::size_t fw_samples = quick ? 5 : 20;
  const std::size_t sp_samples = quick ? 1 : 3;

  std::printf("\n%-10s %-10s %-12s %-12s %-12s %-10s\n", "len [um]",
              "elements", "SPICE", "framework", "char once", "speedup");
  std::printf("%-10s %-10s %-12s %-12s %-12s %-10s\n", "", "",
              "[s/sample]", "[s/sample]", "[s]", "");

  for (double len : lengths) {
    bench::Example2Stage stage(circuit::technology_180nm(), len);
    const std::size_t elements = stage.linear_elements();

    bench::Stopwatch char_sw;
    const auto rom = stage.characterize();
    const double char_s = char_sw.seconds();

    // Framework per-sample cost (single-parameter jitter so each sample
    // does the full evaluate + stabilize + simulate work).
    bench::Stopwatch fw_sw;
    for (std::size_t s = 0; s < fw_samples; ++s) {
      Vector w(5, 0.0);
      w[0] = 0.2 * (static_cast<double>(s % 5) - 2.0);
      (void)stage.framework_delay(rom, w);
    }
    const double fw_per = fw_sw.seconds() / static_cast<double>(fw_samples);

    bench::Stopwatch sp_sw;
    for (std::size_t s = 0; s < sp_samples; ++s) {
      Vector w(5, 0.0);
      w[0] = 0.2 * (static_cast<double>(s % 5) - 2.0);
      (void)stage.spice_delay(w);
    }
    const double sp_per = sp_sw.seconds() / static_cast<double>(sp_samples);

    std::printf("%-10.0f %-10zu %-12.4f %-12.4f %-12.3f %-10.1f\n",
                len * 1e6, elements, sp_per, fw_per, char_s, sp_per / fw_per);
  }
  std::printf(
      "\nshape check (paper Fig. 5): significant speedup vs SPICE that\n"
      "grows with the number of linear circuit elements; the one-time\n"
      "characterization is amortized over the Monte-Carlo samples.\n");
  return 0;
}
