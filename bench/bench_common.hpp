// Shared helpers for the table/figure reproduction benches.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace lcsf::bench {

/// Wall-clock stopwatch in seconds.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }
  void reset() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Benches honour LCSF_BENCH_QUICK=1 to shrink sample counts and circuit
/// sizes for smoke runs; the recorded outputs use the full settings.
inline bool quick_mode() {
  const char* env = std::getenv("LCSF_BENCH_QUICK");
  return env != nullptr && std::strcmp(env, "0") != 0;
}

inline void print_header(const std::string& title) {
  std::printf("==============================================================="
              "=\n%s\n"
              "==============================================================="
              "=\n",
              title.c_str());
}

}  // namespace lcsf::bench
