#!/usr/bin/env python3
"""Gate a lcsf-lint-v2 findings document against schema and baseline.

`lcsf_lint --json` always exits 0; this tool owns the verdict. Three
gates, all of which must hold:

  1. Schema: the document must validate against tools/lint_schema.json
     (a stdlib validator covering the subset the schema uses -- no
     third-party jsonschema dependency).
  2. Baseline diff: findings are counted per (rule, file) key and
     compared against the checked-in tools/lint_baseline.json. A key
     whose count grew -- or a key absent from the baseline -- is a NEW
     finding and fails the gate. Fixing findings only prints a nudge to
     refresh the baseline, so improvements never block.
  3. Suppression budget: the total number of `lcsf-lint: allow(...)`
     directives in the tree may not exceed the baseline's recorded
     budget. Adding a suppression therefore requires a deliberate,
     reviewable edit of tools/lint_baseline.json (or fixing the code).

Usage:
  tools/lint_compare.py CANDIDATE.json \
      --schema tools/lint_schema.json --baseline tools/lint_baseline.json
  tools/lint_compare.py CANDIDATE.json --schema tools/lint_schema.json \
      --write-baseline tools/lint_baseline.json

Exit status: 0 = clean, 1 = gate violated, 2 = usage / malformed input.
"""

import argparse
import json
import sys

BASELINE_SCHEMA = "lcsf-lint-baseline-v1"


def fail_usage(msg):
    print(f"lint_compare: {msg}", file=sys.stderr)
    sys.exit(2)


def load_json(path, what):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
    except FileNotFoundError:
        fail_usage(
            f"{what} {path} not found"
            + (
                "; regenerate it with `lcsf_lint --json | "
                "tools/lint_compare.py - --schema tools/lint_schema.json "
                f"--write-baseline {path}`"
                if what == "baseline"
                else ""
            )
        )
    except (OSError, json.JSONDecodeError) as err:
        fail_usage(f"cannot read {what} {path}: {err}")


# ----------------------------------------------------------------------
# Minimal JSON Schema validator: exactly the subset lint_schema.json
# uses (type, const, required, properties, additionalProperties, items,
# minimum). Returns a list of "path: problem" strings.
# ----------------------------------------------------------------------
_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "boolean": bool,
    "integer": int,
    "number": (int, float),
}


def validate(instance, schema, path="$"):
    errors = []
    if "const" in schema and instance != schema["const"]:
        errors.append(f"{path}: expected {schema['const']!r}, "
                      f"got {instance!r}")
        return errors
    expected = schema.get("type")
    if expected is not None:
        py = _TYPES[expected]
        ok = isinstance(instance, py)
        # bool is an int subclass in Python; keep integer strict.
        if expected in ("integer", "number") and isinstance(instance, bool):
            ok = False
        if not ok:
            errors.append(f"{path}: expected {expected}, "
                          f"got {type(instance).__name__}")
            return errors
    if "minimum" in schema and isinstance(instance, (int, float)):
        if instance < schema["minimum"]:
            errors.append(f"{path}: {instance} < minimum "
                          f"{schema['minimum']}")
    if isinstance(instance, dict):
        for key in schema.get("required", []):
            if key not in instance:
                errors.append(f"{path}: missing required key {key!r}")
        props = schema.get("properties", {})
        for key, value in instance.items():
            if key in props:
                errors.extend(validate(value, props[key], f"{path}.{key}"))
            elif schema.get("additionalProperties") is False:
                errors.append(f"{path}: unexpected key {key!r}")
    if isinstance(instance, list) and "items" in schema:
        for i, item in enumerate(instance):
            errors.extend(validate(item, schema["items"], f"{path}[{i}]"))
    return errors


def finding_counts(doc):
    """(rule, file) -> finding count, suppressed included: a suppressed
    finding still marks real debt and must stay baseline-visible."""
    counts = {}
    for f in doc["findings"]:
        key = (f["rule"], f["file"])
        counts[key] = counts.get(key, 0) + 1
    return counts


def write_baseline(doc, path):
    counts = finding_counts(doc)
    out = {
        "schema": BASELINE_SCHEMA,
        "suppression_count": doc["suppression_count"],
        "findings": [
            {"rule": rule, "file": file, "count": counts[(rule, file)]}
            for rule, file in sorted(counts)
        ],
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(out, fh, indent=2)
        fh.write("\n")
    print(f"lint_compare: wrote baseline {path} "
          f"({len(out['findings'])} keys, "
          f"suppression budget {out['suppression_count']})")


def compare(doc, baseline):
    if baseline.get("schema") != BASELINE_SCHEMA:
        fail_usage(f"baseline schema is {baseline.get('schema')!r}, "
                   f"expected {BASELINE_SCHEMA!r}")
    base = {
        (f["rule"], f["file"]): f["count"]
        for f in baseline.get("findings", [])
    }
    cand = finding_counts(doc)

    violations = 0
    for key in sorted(set(base) | set(cand)):
        rule, file = key
        b, c = base.get(key, 0), cand.get(key, 0)
        if c > b:
            print(f"  NEW  {rule} in {file}: {b} -> {c} finding(s)")
            violations += 1
        elif c < b:
            print(f"  stale baseline: {rule} in {file}: {b} -> {c}; "
                  "refresh with --write-baseline")

    budget = baseline.get("suppression_count", 0)
    got = doc["suppression_count"]
    if got > budget:
        print(f"  SUPPRESSION BUDGET: {got} directives > budget {budget}; "
              "fix the finding instead, or grow the budget with a "
              "deliberate edit of the baseline")
        violations += 1

    if violations:
        print(f"lint_compare: {violations} gate violation(s); new findings "
              "must be fixed, not baselined (see docs/static_analysis.md)")
        return 1
    print(f"lint_compare: clean ({len(cand)} baseline key(s), "
          f"suppressions {got}/{budget})")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(
        description="Validate and baseline-gate a lcsf-lint-v2 document.")
    parser.add_argument("candidate",
                        help="findings JSON from `lcsf_lint --json` "
                             "('-' reads stdin)")
    parser.add_argument("--schema", required=True,
                        help="tools/lint_schema.json")
    parser.add_argument("--baseline",
                        help="checked-in baseline to diff against")
    parser.add_argument("--write-baseline", metavar="PATH",
                        help="write a fresh baseline instead of gating")
    args = parser.parse_args(argv)
    if not args.baseline and not args.write_baseline:
        parser.error("need --baseline (gate) or --write-baseline (refresh)")

    if args.candidate == "-":
        try:
            doc = json.load(sys.stdin)
        except json.JSONDecodeError as err:
            fail_usage(f"cannot parse stdin: {err}")
    else:
        doc = load_json(args.candidate, "candidate")
    schema = load_json(args.schema, "schema")

    errors = validate(doc, schema)
    if errors:
        for e in errors:
            print(f"  SCHEMA  {e}")
        print(f"lint_compare: {len(errors)} schema violation(s) in "
              f"{args.candidate}")
        return 1

    if args.write_baseline:
        write_baseline(doc, args.write_baseline)
        return 0
    return compare(doc, load_json(args.baseline, "baseline"))


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
