#!/usr/bin/env python3
"""Compare two BENCH_*.json result files and flag perf regressions.

Every bench that emits machine-readable results writes a flat JSON object
with a "metrics" section (see docs/performance.md). This tool diffs the
metrics of a candidate run against a baseline run and fails when a
throughput-style metric drops -- or a cost-style metric rises -- by more
than the allowed fraction.

Metric direction is inferred from the name: anything matching
*_per_sec / speedup / throughput is higher-is-better; anything matching
*_ms_* / *_us_* / *_seconds / _time is lower-is-better. Unknown metrics
are reported but never gate.

Usage:
  tools/bench_compare.py BASELINE.json CANDIDATE.json [--threshold 0.10]
  tools/bench_compare.py BASELINE.json CANDIDATE.json --only speedup
  tools/bench_compare.py --check CANDIDATE.json --min speedup=1.5

--only restricts the two-file diff to the named metrics (repeatable).
The CI obs stage uses it to gate the disabled-observability overhead on
the machine-independent speedup ratio alone, ignoring the absolute
wall-clock metrics that vary from host to host.

Exit status: 0 = no regression, 1 = regression (or floor violated),
2 = usage / malformed input.
"""

import argparse
import json
import sys

HIGHER_IS_BETTER = ("per_sec", "speedup", "throughput", "samples_per")
LOWER_IS_BETTER = ("_ms", "_us", "_ns", "seconds", "_time")


def metric_direction(name):
    """+1 higher-is-better, -1 lower-is-better, 0 unknown (never gates)."""
    low = name.lower()
    if any(tag in low for tag in HIGHER_IS_BETTER):
        return 1
    if any(tag in low for tag in LOWER_IS_BETTER):
        return -1
    return 0


def load_metrics(path):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except FileNotFoundError:
        sys.exit(
            f"bench_compare: {path} does not exist; regenerate it by "
            "running the corresponding bench_* binary with the output "
            "path as its argument (see docs/performance.md), or pass "
            "the checked-in BENCH_*.json baseline from the repo root")
    except (OSError, json.JSONDecodeError) as err:
        sys.exit(f"bench_compare: cannot read {path}: {err}")
    if not isinstance(doc, dict):
        sys.exit(f"bench_compare: {path} is not a JSON object "
                 "(expected a BENCH_*.json result file)")
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        sys.exit(
            f"bench_compare: {path} has no 'metrics' object; every "
            "BENCH_*.json result carries one (keys present: "
            f"{sorted(doc)})")
    return doc, {
        k: float(v) for k, v in metrics.items() if isinstance(v, (int, float))
    }


def compare(base_path, cand_path, threshold, only=None):
    """Diff candidate vs baseline; return the number of regressions."""
    base_doc, base = load_metrics(base_path)
    cand_doc, cand = load_metrics(cand_path)
    if only:
        missing = [m for m in only if m not in base and m not in cand]
        if missing:
            sys.exit(f"bench_compare: --only metric(s) {missing} "
                     "absent from both files")
        base = {k: v for k, v in base.items() if k in only}
        cand = {k: v for k, v in cand.items() if k in only}
    if base_doc.get("bench") != cand_doc.get("bench"):
        print(
            f"bench_compare: warning: comparing different benches "
            f"({base_doc.get('bench')!r} vs {cand_doc.get('bench')!r})",
            file=sys.stderr,
        )

    regressions = 0
    width = max((len(k) for k in sorted(set(base) | set(cand))), default=0)
    for name in sorted(set(base) | set(cand)):
        if name not in base or name not in cand:
            print(f"  {name:<{width}}  (only in one file, skipped)")
            continue
        b, c = base[name], cand[name]
        direction = metric_direction(name)
        if b == 0.0 or direction == 0:
            verdict = "info"
        else:
            # Positive delta = candidate better, in the metric's own sense.
            delta = (c - b) / b * direction
            if delta < -threshold:
                verdict = "REGRESSION"
                regressions += 1
            else:
                verdict = "ok"
        rel = (c - b) / b * 100.0 if b else float("nan")
        print(f"  {name:<{width}}  {b:>12.6g} -> {c:>12.6g}  "
              f"({rel:+7.2f}%)  {verdict}")
    return regressions


def check_floors(cand_path, floors):
    """Assert absolute metric floors (metric=value) on a single file."""
    _, cand = load_metrics(cand_path)
    violations = 0
    for spec in floors:
        name, _, value = spec.partition("=")
        if not value:
            sys.exit(f"bench_compare: bad --min spec {spec!r} "
                     "(expected metric=value)")
        try:
            floor = float(value)
        except ValueError:
            sys.exit(f"bench_compare: bad --min spec {spec!r} "
                     f"({value!r} is not a number)")
        got = cand.get(name)
        if got is None:
            print(f"  {name}: MISSING (floor {floor:g}); metrics present: "
                  f"{sorted(cand)}")
            violations += 1
        elif got < floor:
            print(f"  {name}: {got:g} < floor {floor:g}  VIOLATION")
            violations += 1
        else:
            print(f"  {name}: {got:g} >= floor {floor:g}  ok")
    return violations


def main(argv):
    parser = argparse.ArgumentParser(
        description="Diff two BENCH_*.json files for perf regressions.")
    parser.add_argument("baseline", nargs="?",
                        help="baseline BENCH_*.json")
    parser.add_argument("candidate", nargs="?",
                        help="candidate BENCH_*.json")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="allowed fractional regression per metric "
                             "(default 0.10 = 10%%)")
    parser.add_argument("--check", metavar="CANDIDATE.json",
                        help="single-file mode: check absolute floors only")
    parser.add_argument("--min", action="append", default=[],
                        metavar="METRIC=VALUE",
                        help="absolute floor for a metric (repeatable; "
                             "used with --check)")
    parser.add_argument("--only", action="append", default=[],
                        metavar="METRIC",
                        help="restrict the two-file diff to this metric "
                             "(repeatable)")
    args = parser.parse_args(argv)

    if args.check:
        if not args.min:
            parser.error("--check requires at least one --min metric=value")
        bad = check_floors(args.check, args.min)
        return 1 if bad else 0

    if not args.baseline or not args.candidate:
        parser.error("need BASELINE.json and CANDIDATE.json "
                     "(or --check mode)")
    bad = compare(args.baseline, args.candidate, args.threshold,
                  only=set(args.only) or None)
    if bad:
        print(f"bench_compare: {bad} metric(s) regressed beyond "
              f"{args.threshold:.0%}")
        return 1
    print("bench_compare: no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
