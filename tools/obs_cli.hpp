// Shared observability plumbing for the CLI tools: parses the
// --metrics/--trace/--report-timing flags, owns the obs::Registry for the
// run, installs it as the ambient recording context on the main thread,
// and writes the requested exports at exit (docs/observability.md).
#pragma once

#include <cstdio>
#include <fstream>
#include <memory>
#include <optional>
#include <string>

#include "obs/registry.hpp"

namespace lcsf::tools {

class ObsCli {
 public:
  /// Consume one obs flag; returns true when `arg` was handled.
  /// `next` yields the flag's value argument (exits on missing value).
  template <class NextFn>
  bool parse_flag(const std::string& arg, NextFn&& next) {
    if (arg == "--metrics") {
      metrics_path_ = next();
    } else if (arg == "--trace") {
      trace_path_ = next();
    } else if (arg == "--report-timing") {
      report_timing_ = true;
    } else {
      return false;
    }
    return true;
  }

  static const char* usage_line() {
    return "[--metrics out.json] [--trace out.trace.json] "
           "[--report-timing]";
  }

  /// Create the registry and install it on the calling thread. Call once
  /// after argument parsing, before the instrumented work. No-op when no
  /// obs flag was given -- recording then stays disabled (null registry).
  void install() {
    if (!enabled()) return;
    registry_ = std::make_unique<obs::Registry>();
    ctx_.emplace(registry_.get(), 0);
  }

  bool enabled() const {
    return !metrics_path_.empty() || !trace_path_.empty() || report_timing_;
  }

  obs::Registry* registry() const { return registry_.get(); }

  /// Write the requested exports. Returns false (after a diagnostic on
  /// stderr) when an output file cannot be written.
  bool finish(const char* tool_name) {
    if (registry_ == nullptr) return true;
    bool ok = true;
    auto write_file = [&](const std::string& path,
                          const std::string& content) {
      std::ofstream out(path);
      out << content;
      if (!out) {
        std::fprintf(stderr, "%s: cannot write %s\n", tool_name,
                     path.c_str());
        ok = false;
      }
    };
    if (!metrics_path_.empty()) {
      write_file(metrics_path_, registry_->to_json(true));
    }
    if (!trace_path_.empty()) {
      write_file(trace_path_, registry_->chrome_trace_json());
    }
    if (report_timing_) {
      std::fprintf(stderr, "\n%s", registry_->timing_report().c_str());
    }
    return ok;
  }

 private:
  std::string metrics_path_;
  std::string trace_path_;
  bool report_timing_ = false;
  std::unique_ptr<obs::Registry> registry_;
  std::optional<obs::ScopedContext> ctx_;
};

}  // namespace lcsf::tools
