// lcsf_sim: transient simulation of a SPICE-format deck.
//
//   lcsf_sim <deck.sp> --tstop 2n [--dt 1p] [--probe node]...
//            [--tech 180nm|600nm] [--points 40] [--threads n]
//            [--on-failure abort|skip|retry]
//            [--metrics out.json] [--trace out.trace.json]
//            [--report-timing]
//
// --metrics/--trace/--report-timing enable the observability subsystem
// (docs/observability.md): engine counters (Newton iterations, LU
// refactor vs full-factor counts, committed steps) and phase spans for
// the parse and transient phases.
//
// The deck loads through api::Session (docs/serving.md), the same
// facade behind lcsf_sta and the lcsf_serve analysis server: the parse
// happens once at load, a bogus --tech or a malformed deck is a
// classified sim::SimulationError (kind printed in brackets, exit 1),
// and the transient runs on the cached parsed netlist. The tool then
// prints the probed node waveforms as a TSV table.
//
// --on-failure controls divergence handling (docs/robustness.md): abort
// exits 1 with the classified diagnostic (default); skip prints the
// partial waveform up to the failure point and exits 0; retry grants a
// 3-deep per-step dt-halving budget, then behaves like skip if the run
// still diverges.
//
// --threads (or LCSF_THREADS) sets the process-wide default worker count
// for any parallel library section reached from this tool; the transient
// engine itself is serial today, so the flag exists for CLI uniformity
// with lcsf_sta and for library features that pick up the default.
// --batch (or LCSF_BATCH) likewise sets the process-wide default
// Monte-Carlo sample-block width for library features that batch (see
// docs/performance.md); an invalid value is a classified error (exit 1),
// and neither flag nor env changes any numerical result.
//
// An unknown option or a stray extra positional argument is rejected
// with a diagnostic + usage and exit status 1; a malformed invocation
// (missing deck or --tstop) exits 2.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "api/session.hpp"
#include "circuit/parser.hpp"
#include "obs_cli.hpp"
#include "runtime/thread_pool.hpp"
#include "stats/analysis.hpp"

using namespace lcsf;

namespace {

void print_usage(std::FILE* to) {
  std::fprintf(to,
               "usage: lcsf_sim <deck.sp> --tstop <t> [--dt <t>] "
               "[--probe <node>]... [--tech 180nm|600nm] [--points n] "
               "[--threads n] [--batch n] "
               "[--on-failure abort|skip|retry] %s\n",
               tools::ObsCli::usage_line());
}

[[noreturn]] void usage() {
  print_usage(stderr);
  std::exit(2);
}

[[noreturn]] void bad_option(const std::string& arg) {
  std::fprintf(stderr, "lcsf_sim: unknown option '%s'\n", arg.c_str());
  print_usage(stderr);
  std::exit(1);
}

int classified_failure(const sim::SimulationError& e) {
  std::fprintf(stderr, "lcsf_sim: %s [%s]\n",
               e.diagnostics().message().c_str(),
               sim::failure_kind_name(e.kind()));
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  std::string deck_path;
  double tstop = 0.0;
  double dt = 1e-12;
  std::size_t points = 40;
  std::string tech_name = "180nm";
  std::string on_failure = "abort";
  std::vector<std::string> probes;
  tools::ObsCli obs_cli;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (++i >= argc) usage();
      return argv[i];
    };
    if (arg == "--tstop") {
      tstop = circuit::parse_value(next());
    } else if (arg == "--dt") {
      dt = circuit::parse_value(next());
    } else if (arg == "--probe") {
      probes.push_back(next());
    } else if (arg == "--tech") {
      tech_name = next();
    } else if (arg == "--points") {
      points = static_cast<std::size_t>(std::stoul(next()));
    } else if (arg == "--threads") {
      runtime::ThreadPool::set_default_threads(
          static_cast<std::size_t>(std::stoul(next())));
    } else if (arg == "--batch") {
      try {
        stats::set_default_batch(stats::parse_batch(next(), "--batch"));
      } catch (const sim::SimulationError& e) {
        return classified_failure(e);
      }
    } else if (arg == "--on-failure") {
      on_failure = next();
    } else if (arg.rfind("--on-failure=", 0) == 0) {
      on_failure = arg.substr(std::strlen("--on-failure="));
    } else if (obs_cli.parse_flag(arg, next)) {
      // handled
    } else if (arg.rfind("-", 0) == 0) {
      bad_option(arg);
    } else if (!deck_path.empty()) {
      // A second positional used to silently replace the deck path --
      // reject it so a typo'd flag value can't be mistaken for the deck.
      std::fprintf(stderr, "lcsf_sim: unexpected argument '%s'\n",
                   arg.c_str());
      print_usage(stderr);
      return 1;
    } else {
      deck_path = arg;
    }
  }
  if (deck_path.empty() || tstop <= 0.0) usage();
  if (on_failure != "abort" && on_failure != "skip" &&
      on_failure != "retry") {
    usage();
  }

  obs_cli.install();

  std::ifstream in(deck_path);
  if (!in) {
    std::fprintf(stderr, "lcsf_sim: cannot open %s\n", deck_path.c_str());
    return 1;
  }
  std::ostringstream deck_text;
  deck_text << in.rdbuf();

  api::DesignSpec dspec;
  dspec.deck = deck_text.str();
  dspec.tech = tech_name;
  std::shared_ptr<api::Session> session;
  try {
    session = api::Session::load(dspec);
  } catch (const sim::SimulationError& e) {
    return classified_failure(e);
  }
  const circuit::Netlist& nl = session->deck_netlist();

  // Default probes: every named (non-auto) node.
  if (probes.empty()) {
    for (std::size_t n = 1; n < nl.node_count(); ++n) {
      const std::string& name = nl.node_name(static_cast<int>(n));
      if (name.rfind("n", 0) != 0 || name.size() > 4) probes.push_back(name);
    }
  }

  spice::TransientOptions opt;
  opt.tstop = tstop;
  opt.dt = dt;
  if (on_failure == "retry") opt.recovery.max_dt_retries = 3;
  const auto res = session->run_transient(opt);
  if (!res.converged) {
    std::fprintf(stderr,
                 "lcsf_sim: simulation failed: %s [%s] (t = %g, "
                 "%d retries used)\n",
                 res.failure().c_str(),
                 sim::failure_kind_name(res.diag.kind),
                 res.diag.failure_time, res.diag.retries_used);
    if (on_failure == "abort") return 1;
    std::fprintf(stderr,
                 "lcsf_sim: printing partial waveform up to t = %g\n",
                 res.time.empty() ? 0.0 : res.time.back());
  }

  std::vector<std::size_t> probe_nodes;
  for (const auto& p : probes) {
    const circuit::NodeId node = nl.find_node(p);
    if (node < 0) {
      std::fprintf(stderr, "lcsf_sim: unknown probe node '%s'\n", p.c_str());
      return 1;
    }
    probe_nodes.push_back(static_cast<std::size_t>(node));
  }

  std::printf("# t");
  for (const auto& p : probes) std::printf("\t%s", p.c_str());
  std::printf("\n");
  const std::size_t stride =
      std::max<std::size_t>(1, res.time.size() / points);
  for (std::size_t k = 0; k < res.time.size(); k += stride) {
    std::printf("%.6e", res.time[k]);
    for (const std::size_t node : probe_nodes) {
      std::printf("\t%.6f", res.node_voltages[k][node]);
    }
    std::printf("\n");
  }
  std::fprintf(stderr, "lcsf_sim: %zu steps, %ld Newton iterations\n",
               res.time.empty() ? 0 : res.time.size() - 1,
               res.total_newton_iterations);
  return obs_cli.finish("lcsf_sim") ? 0 : 1;
}
