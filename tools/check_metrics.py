#!/usr/bin/env python3
"""Validate lcsf-metrics-v1 JSON (obs::Registry::to_json output).

Stdlib-only: implements the small JSON-Schema subset used by
tools/metrics_schema.json (type, required, properties,
additionalProperties-as-schema, enum, minimum) rather than depending on
an external jsonschema package. On top of the structural schema it
checks the semantic invariants of the format: distribution order
statistics are ordered (min <= p50 <= p95 <= max, mean inside
[min, max]) and the deterministic flag matches the content (a
deterministic export carries no timers section and no wall-clock
distribution).

Usage:
  tools/check_metrics.py --schema tools/metrics_schema.json out.json
  tools/check_metrics.py --schema ... out.json --require stats.mc.samples
  tools/check_metrics.py --diff-deterministic a.json b.json

--require asserts a counter name is present (repeatable; CI uses it to
prove the engine instrumentation actually fired). --diff-deterministic
strips the wall-clock content (timers, *_seconds/_ms/_us/_ns
distributions) from two exports and fails when the remainders differ --
the CLI-level witness of the thread-count-invariance contract.

Exit status: 0 = valid, 1 = violation, 2 = usage / unreadable input.
"""

import argparse
import json
import sys

WALL_CLOCK_SUFFIXES = ("_seconds", "_ms", "_us", "_ns")


def is_wall_clock(name):
    return name.endswith(WALL_CLOCK_SUFFIXES)


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        sys.exit(f"check_metrics: cannot read {path}: {err}")


def type_ok(value, name):
    return {
        "object": lambda v: isinstance(v, dict),
        "string": lambda v: isinstance(v, str),
        "boolean": lambda v: isinstance(v, bool),
        # bool is an int subclass in Python; exclude it explicitly.
        "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
        "number": lambda v: isinstance(v, (int, float))
        and not isinstance(v, bool),
    }[name](value)


def validate(doc, schema, where, errors):
    """Check `doc` against the supported schema subset; append messages."""
    stype = schema.get("type")
    if stype and not type_ok(doc, stype):
        errors.append(f"{where}: expected {stype}, "
                      f"got {type(doc).__name__}")
        return
    if "enum" in schema and doc not in schema["enum"]:
        errors.append(f"{where}: {doc!r} not in {schema['enum']}")
    if "minimum" in schema and isinstance(doc, (int, float)) \
            and not isinstance(doc, bool) and doc < schema["minimum"]:
        errors.append(f"{where}: {doc} < minimum {schema['minimum']}")
    if not isinstance(doc, dict):
        return
    for key in schema.get("required", []):
        if key not in doc:
            errors.append(f"{where}: missing required key '{key}'")
    props = schema.get("properties", {})
    extra = schema.get("additionalProperties")
    for key, value in doc.items():
        if key in props:
            validate(value, props[key], f"{where}.{key}", errors)
        elif isinstance(extra, dict):
            validate(value, extra, f"{where}.{key}", errors)


def semantic_checks(doc, errors):
    for name, d in doc.get("distributions", {}).items():
        if not isinstance(d, dict):
            continue
        try:
            lo, p50, p95, hi = d["min"], d["p50"], d["p95"], d["max"]
            if not (lo <= p50 <= p95 <= hi):
                errors.append(f"distribution {name}: quantiles out of "
                              f"order ({lo} / {p50} / {p95} / {hi})")
            if not (lo <= d["mean"] <= hi):
                errors.append(f"distribution {name}: mean {d['mean']} "
                              f"outside [{lo}, {hi}]")
        except (KeyError, TypeError):
            pass  # structural validation already reported it
    if doc.get("deterministic") is True:
        if "timers" in doc:
            errors.append("deterministic export must not contain timers")
        for name in doc.get("distributions", {}):
            if is_wall_clock(name):
                errors.append(f"deterministic export contains wall-clock "
                              f"distribution '{name}'")


def deterministic_view(doc):
    """The thread-count-invariant projection of one metrics export."""
    return {
        "schema": doc.get("schema"),
        "counters": doc.get("counters", {}),
        "distributions": {
            k: v for k, v in doc.get("distributions", {}).items()
            if not is_wall_clock(k)
        },
    }


def main(argv):
    parser = argparse.ArgumentParser(
        description="Validate lcsf-metrics-v1 JSON exports.")
    parser.add_argument("files", nargs="*", help="metrics JSON file(s)")
    parser.add_argument("--schema", help="schema file "
                        "(tools/metrics_schema.json)")
    parser.add_argument("--require", action="append", default=[],
                        metavar="COUNTER",
                        help="fail unless this counter is present "
                             "(repeatable)")
    parser.add_argument("--diff-deterministic", nargs=2,
                        metavar=("A.json", "B.json"),
                        help="compare the deterministic projections of "
                             "two exports")
    args = parser.parse_args(argv)

    if args.diff_deterministic:
        a_path, b_path = args.diff_deterministic
        a = deterministic_view(load(a_path))
        b = deterministic_view(load(b_path))
        if a != b:
            print(f"check_metrics: deterministic content differs between "
                  f"{a_path} and {b_path}", file=sys.stderr)
            for section in ("schema", "counters", "distributions"):
                if a[section] != b[section]:
                    print(f"  {section}: {a[section]!r}\n"
                          f"        != {b[section]!r}", file=sys.stderr)
            return 1
        print(f"check_metrics: deterministic content identical "
              f"({a_path} vs {b_path})")
        return 0

    if not args.schema or not args.files:
        parser.error("need --schema and at least one metrics file "
                     "(or --diff-deterministic)")
    schema = load(args.schema)
    status = 0
    for path in args.files:
        doc = load(path)
        errors = []
        validate(doc, schema, "$", errors)
        semantic_checks(doc, errors)
        counters = doc.get("counters", {})
        for name in args.require:
            if name not in counters:
                errors.append(f"required counter '{name}' missing")
        if errors:
            status = 1
            print(f"check_metrics: {path}: INVALID", file=sys.stderr)
            for e in errors:
                print(f"  {e}", file=sys.stderr)
        else:
            print(f"check_metrics: {path}: ok "
                  f"({len(counters)} counters, "
                  f"{len(doc.get('distributions', {}))} distributions, "
                  f"{len(doc.get('timers', {}))} timers)")
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
