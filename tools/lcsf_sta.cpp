// lcsf_sta: statistical path-delay report for a benchmark circuit.
//
//   lcsf_sta --circuit s208 [--elements 10] [--samples 100] [--seed 1]
//            [--std-dl 0.33] [--std-vt 0.33] [--rho r] [--corner]
//            [--yield-target 0.9987] [--threads n] [--batch n]
//            [--yield-estimator mc|is|is-cv] [--clock-period t]
//            [--is-pilot n]
//            [--graph] [--top-k n]
//            [--on-failure abort|skip|retry]
//            [--metrics out.json] [--trace out.trace.json]
//            [--report-timing]
//
// The tool is a thin client of api::Session (docs/serving.md): the
// design loads once (netlist generation + variational stage-load
// pre-characterization) and every analysis below runs through the same
// facade the analysis server uses, so a server response over the same
// design and options carries bitwise-identical numbers.
//
// --graph switches from single-path to multi-path analysis
// (docs/timing_graph.md): the K most-critical latch-to-latch paths
// (--top-k, default 8) are carried simultaneously by core::GraphAnalyzer,
// stages shared between paths are simulated once per sample (memoized in
// the pooled workspace), and the per-sample metric is the statistical-max
// worst endpoint delay. The report adds per-endpoint delays, the stage
// reuse counters (also exported as stats.graph.* metrics), and the
// analytic SSTA endpoint forms composed from the compact per-block
// variational delay models.
//
// --yield-estimator selects how the timing yield at --clock-period is
// estimated (docs/yield_estimation.md): mc reuses the Monte-Carlo sweep
// (default), is runs the importance-sampled estimator of
// stats::Runner::run_yield_is, is-cv additionally applies the
// linear-surrogate control variate. --clock-period is in seconds and
// defaults to the Gradient-Analysis period for --yield-target, so the
// IS run probes exactly the tail the report quotes. --is-pilot spends n
// pilot samples refining the proposal shift (cross-entropy update)
// before the main run.
//
// The last three flags enable the observability subsystem
// (docs/observability.md): --metrics writes the merged counters, value
// distributions and phase timers as JSON; --trace writes Chrome
// trace_event spans (load in about:tracing or Perfetto); --report-timing
// prints a human-readable phase-time tree to stderr.
//
// --threads (or the LCSF_THREADS environment variable) sets the worker
// count for the Monte-Carlo sweep; results are bitwise identical for any
// value (see docs/monte_carlo.md). 0 = auto-detect.
//
// --batch (or the LCSF_BATCH environment variable) sets the lockstep
// sample-block width of the batched Monte-Carlo hot path
// (docs/performance.md): full blocks of n samples run through the SoA
// TETA engine, a scalar remainder loop covers the rest. Results are
// bitwise identical for every value (1 = force the scalar path); an
// invalid value is a classified error (exit 1).
//
// --on-failure picks the fail-soft policy (docs/robustness.md): abort
// rethrows the first divergent sample (default), skip records and
// excludes divergent samples, retry additionally grants each sample a
// 3-deep dt-halving budget before it may fail. With skip/retry a
// classified failure table is printed after the statistics.
//
// An unknown option is rejected with a diagnostic + usage and exit
// status 1; a malformed invocation (missing required values) exits 2.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "api/session.hpp"
#include "obs_cli.hpp"
#include "stats/yield.hpp"

using namespace lcsf;

namespace {

void print_usage(std::FILE* to) {
  std::fprintf(
      to,
      "usage: lcsf_sta --circuit <name> [--elements n] [--samples n]\n"
      "                [--seed n] [--std-dl s] [--std-vt s] [--rho r]\n"
      "                [--corner] [--yield-target y] [--threads n]\n"
      "                [--batch n]\n"
      "                [--yield-estimator mc|is|is-cv] [--clock-period t]\n"
      "                [--is-pilot n] [--graph] [--top-k n]\n"
      "                [--on-failure abort|skip|retry]\n"
      "                %s\n"
      "circuits: s27 s208 s832 s444 s1423 s1423d s9234\n",
      tools::ObsCli::usage_line());
}

[[noreturn]] void usage() {
  print_usage(stderr);
  std::exit(2);
}

[[noreturn]] void bad_option(const std::string& arg) {
  std::fprintf(stderr, "lcsf_sta: unknown option '%s'\n", arg.c_str());
  print_usage(stderr);
  std::exit(1);
}

int classified_failure(const sim::SimulationError& e) {
  std::fprintf(stderr, "lcsf_sta: %s [%s]\n",
               e.diagnostics().message().c_str(),
               sim::failure_kind_name(e.kind()));
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string circuit_name;
  std::size_t elements = 10;
  std::size_t samples = 100;
  std::uint64_t seed = 1;
  double std_dl = 0.33;
  double std_vt = 0.33;
  double rho = -1.0;
  bool corner = false;
  double yield_target = 0.9987;
  std::size_t threads = 0;  // 0 = auto (LCSF_THREADS env / hardware)
  std::size_t batch = 0;    // 0 = ambient default (LCSF_BATCH env / K=8)
  std::string on_failure = "abort";
  std::string yield_estimator = "mc";
  double clock_period = 0.0;  // 0 = GA period for --yield-target
  std::size_t is_pilot = 0;
  bool graph_mode = false;
  std::size_t top_k = 8;
  tools::ObsCli obs_cli;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (++i >= argc) usage();
      return argv[i];
    };
    if (arg == "--circuit") {
      circuit_name = next();
    } else if (arg == "--elements") {
      elements = std::stoul(next());
    } else if (arg == "--samples") {
      samples = std::stoul(next());
    } else if (arg == "--seed") {
      seed = std::stoull(next());
    } else if (arg == "--std-dl") {
      std_dl = std::stod(next());
    } else if (arg == "--std-vt") {
      std_vt = std::stod(next());
    } else if (arg == "--rho") {
      rho = std::stod(next());
    } else if (arg == "--corner") {
      corner = true;
    } else if (arg == "--yield-target") {
      yield_target = std::stod(next());
    } else if (arg == "--threads") {
      threads = std::stoul(next());
    } else if (arg == "--batch") {
      try {
        batch = stats::parse_batch(next(), "--batch");
      } catch (const sim::SimulationError& e) {
        return classified_failure(e);
      }
    } else if (arg == "--yield-estimator") {
      yield_estimator = next();
    } else if (arg == "--clock-period") {
      clock_period = std::stod(next());
    } else if (arg == "--is-pilot") {
      is_pilot = std::stoul(next());
    } else if (arg == "--graph") {
      graph_mode = true;
    } else if (arg == "--top-k") {
      top_k = std::stoul(next());
    } else if (arg == "--on-failure") {
      on_failure = next();
    } else if (arg.rfind("--on-failure=", 0) == 0) {
      on_failure = arg.substr(std::strlen("--on-failure="));
    } else if (obs_cli.parse_flag(arg, next)) {
      // handled
    } else {
      bad_option(arg);
    }
  }
  if (circuit_name.empty()) usage();
  if (on_failure != "abort" && on_failure != "skip" &&
      on_failure != "retry") {
    usage();
  }
  if (yield_estimator != "mc" && yield_estimator != "is" &&
      yield_estimator != "is-cv") {
    usage();
  }

  obs_cli.install();

  api::DesignSpec dspec;
  dspec.circuit = circuit_name;
  dspec.elements = elements;
  dspec.graph = graph_mode;
  dspec.top_k = top_k;
  dspec.retry = on_failure == "retry";

  std::shared_ptr<api::Session> session;
  try {
    session = api::Session::load(dspec);
  } catch (const sim::SimulationError& e) {
    return classified_failure(e);
  }
  const auto& bspec = session->benchmark();
  const auto& nl = session->netlist();

  core::PathVariationModel model;
  model.std_dl = std_dl;
  model.std_vt = std_vt;

  stats::RunOptions run_opt;
  run_opt.samples = samples;
  run_opt.seed = seed;
  run_opt.exec.threads = threads;
  run_opt.exec.batch = batch;
  run_opt.exec.on_failure = on_failure == "abort"
                                ? stats::FailurePolicy::kAbort
                                : stats::FailurePolicy::kSkip;
  run_opt.registry = obs_cli.registry();

  if (graph_mode) {
    const core::GraphAnalyzer& analyzer = *session->graph_analyzer();

    std::printf("circuit %s: %zu gates, %zu latches; %zu most-critical "
                "paths\n",
                bspec.name.c_str(), nl.gates.size(), bspec.num_latches,
                analyzer.paths().size());
    for (const auto& p : analyzer.paths()) {
      std::printf("  path (%zu stages -> net %zu):", p.length(), p.end_net);
      for (std::size_t g : p.gates) {
        std::printf(" %s",
                    timing::cell_library()[nl.gates[g].cell].name.c_str());
      }
      std::printf("\n");
    }
    std::printf("subgraph: %zu gates, %zu characterized blocks, %zu "
                "endpoints\n\n",
                analyzer.subgraph_gates().size(), analyzer.num_blocks(),
                analyzer.endpoint_nets().size());

    stats::MonteCarloResult mc;
    try {
      mc = session->run_monte_carlo(model, run_opt);
    } catch (const sim::SimulationError& e) {
      obs_cli.finish("lcsf_sta");
      return classified_failure(e);
    }
    if (mc.failures.any()) {
      std::printf("sample failures: %zu of %zu attempted\n%s\n",
                  mc.failures.failed(), mc.failures.attempted,
                  mc.failures.table().c_str());
    }
    if (mc.values.empty()) {
      std::fprintf(stderr, "lcsf_sta: every Monte-Carlo sample failed\n");
      obs_cli.finish("lcsf_sta");
      return 1;
    }
    std::printf("Monte-Carlo max endpoint delay (%zu samples): mean %.2f "
                "ps, std %.2f ps\n",
                mc.values.size(), mc.stats.mean() * 1e12,
                mc.stats.stddev() * 1e12);
    const double t_mc = stats::period_for_yield(mc.values, yield_target);
    std::printf("clock period for %.2f%% yield: %.2f ps (MC)\n\n",
                100 * yield_target, t_mc * 1e12);

    // Nominal-sample endpoint report + the stage-reuse counters (the same
    // numbers accumulate into stats.graph.* for --metrics).
    core::GraphAnalyzer::Workspace ws;
    const numeric::Vector w0(analyzer.sources(model).size(), 0.0);
    const auto nominal =
        analyzer.evaluate(analyzer.sample_from_sources(model, w0), ws);
    const auto analytic = analyzer.analytic_endpoints(model);
    std::printf("endpoints (nominal sample | analytic SSTA):\n");
    for (std::size_t k = 0; k < nominal.endpoints.size(); ++k) {
      const auto& e = nominal.endpoints[k];
      const auto& a = analytic[k].arrival;
      std::printf("  net %4zu: %.2f ps slew %.2f ps | mean %.2f ps "
                  "std %.2f ps\n",
                  e.net, e.delay * 1e12, e.slew * 1e12, a.mean * 1e12,
                  std::sqrt(timing::ssta::variance(a)) * 1e12);
    }
    std::printf("stage reuse per sample: %zu simulated, %zu cache hits, "
                "%zu merges (%zu path-stages)\n",
                nominal.stages_simulated, nominal.stage_cache_hits,
                nominal.merges,
                nominal.stages_simulated + nominal.stage_cache_hits);

    std::printf("\ndelay histogram:\n%s",
                stats::Histogram::from_data(mc.values, 12).render(40).c_str());
    return obs_cli.finish("lcsf_sta") ? 0 : 1;
  }

  const auto& path = session->longest_path();
  const core::PathAnalyzer& analyzer = *session->path_analyzer();

  std::printf("circuit %s: %zu gates, %zu latches; longest path %zu "
              "stages\n",
              bspec.name.c_str(), nl.gates.size(), bspec.num_latches,
              path.length());
  std::printf("path:");
  for (std::size_t g : path.gates) {
    std::printf(" %s",
                timing::cell_library()[nl.gates[g].cell].name.c_str());
  }
  std::printf("\n\n");

  try {
    stats::MonteCarloResult mc;
    if (rho > 0.0) {
      const auto corr =
          session->run_monte_carlo_correlated(model, rho, run_opt);
      std::printf("correlated MC (rho = %.2f): %zu sources -> %zu PCA "
                  "factors\n",
                  rho, corr.total_sources, corr.factors_used);
      mc = corr.mc;
    } else {
      mc = session->run_monte_carlo(model, run_opt);
    }
    const auto ga = session->run_gradients(model);

    if (mc.failures.any()) {
      std::printf("sample failures: %zu of %zu attempted\n%s\n",
                  mc.failures.failed(), mc.failures.attempted,
                  mc.failures.table().c_str());
    }
    if (mc.values.empty()) {
      std::fprintf(stderr, "lcsf_sta: every Monte-Carlo sample failed\n");
      obs_cli.finish("lcsf_sta");  // the metrics tell the failure story
      return 1;
    }
    std::printf("Monte-Carlo (%zu samples): mean %.2f ps, std %.2f ps\n",
                mc.values.size(), mc.stats.mean() * 1e12,
                mc.stats.stddev() * 1e12);
    std::printf("Gradient Analysis (%zu sims): mean %.2f ps, std %.2f "
                "ps\n\n",
                ga.simulations, ga.nominal_delay * 1e12, ga.stddev * 1e12);

    const double t_mc = stats::period_for_yield(mc.values, yield_target);
    const double t_ga = stats::gaussian_period_for_yield(
        ga.nominal_delay, ga.stddev, yield_target);
    std::printf("clock period for %.2f%% yield: %.2f ps (MC), %.2f ps "
                "(GA)\n",
                100 * yield_target, t_mc * 1e12, t_ga * 1e12);

    if (yield_estimator != "mc") {
      // Probe the tail at --clock-period (default: the GA period computed
      // above, so the IS report quantifies exactly the quoted target).
      const double t_clk = clock_period > 0.0 ? clock_period : t_ga;
      stats::RunOptions is_opt = run_opt;
      is_opt.importance.pilot_samples = is_pilot;
      const auto yres = session->run_yield(model, t_clk, yield_estimator,
                                           yield_target, is_opt);
      const stats::IsYieldEstimate& is = *yres.is;
      double shift_norm = 0.0;
      for (const double th : is.surrogate.shift) shift_norm += th * th;
      shift_norm = std::sqrt(shift_norm);
      std::printf("\nimportance-sampled yield @ %.2f ps (%s%s):\n",
                  t_clk * 1e12, yield_estimator.c_str(),
                  is_pilot > 0 ? ", pilot-refined" : "");
      std::printf("  yield loss %.3e +/- %.3e (yield %.6f)\n",
                  is.yield_loss, is.std_error, is.yield);
      std::printf("  surrogate beta %.2f, proposal shift |theta| %.2f\n",
                  is.surrogate.beta, shift_norm);
      // Brute-force MC needs p(1-p)/SE^2 samples for the same standard
      // error; the ratio to the IS budget is the headline speedup.
      if (is.std_error > 0.0) {
        const double mc_equiv = is.yield_loss * (1.0 - is.yield_loss) /
                                (is.std_error * is.std_error);
        std::printf("  ESS %.1f of %zu samples; MC-equivalent budget %.0f "
                    "(%.1fx)\n",
                    is.ess, is.main_samples, mc_equiv,
                    mc_equiv / static_cast<double>(is.main_samples));
      }
      if (is.control_variate_used) {
        std::printf("  control variate: c* %.3f, exact E[C] %.3e\n",
                    is.control_coefficient, is.control_expectation);
      }
      if (is.failures.any() || is.pilot_failures.any()) {
        std::printf("  skipped samples: %zu main, %zu pilot\n",
                    is.failures.failed(), is.pilot_failures.failed());
      }
    }

    if (corner) {
      const auto wc = analyzer.worst_case_corner(model, 3.0);
      std::printf("worst-case +/-3-sigma corner: %.2f ps (pessimism %.2fx "
                  "vs GA quantile)\n",
                  wc.delay * 1e12,
                  stats::corner_pessimism(wc.delay, t_ga, ga.nominal_delay));
    }
    std::printf("\ndelay histogram:\n%s",
                stats::Histogram::from_data(mc.values, 12).render(40).c_str());
  } catch (const sim::SimulationError& e) {
    obs_cli.finish("lcsf_sta");
    return classified_failure(e);
  }
  return obs_cli.finish("lcsf_sta") ? 0 : 1;
}
