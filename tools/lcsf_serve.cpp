// lcsf_serve: persistent statistical-timing analysis service.
//
//   lcsf_serve [--port n] [--workers n] [--cache-mb n]
//              [--metrics out.json]
//
// Speaks the lcsf-serve-v1 protocol (docs/serving.md): newline-
// delimited JSON requests over TCP on the loopback interface, one
// response line per request. Request types: load, monte_carlo,
// gradients, yield, graph, metrics, shutdown. Designs are characterized
// once and cached by netlist content hash (serve::DesignCache) under a
// --cache-mb byte budget with LRU eviction, so repeated analyses over
// the same design skip the expensive pre-characterization.
//
// --port 0 (the default) binds a kernel-assigned ephemeral port; the
// actual endpoint is announced on stdout as
//   lcsf_serve: listening on 127.0.0.1:<port>
// before the server starts accepting, so scripts can parse it.
//
// The server runs until a client sends {"type":"shutdown"}. --metrics
// writes the server-wide observability export (request counters and
// latency distribution, cache hit/miss/eviction counters, cumulative
// engine counters) on exit; the same data is available live through
// the `metrics` request.
//
// Responses are bitwise identical to the equivalent CLI (lcsf_sta)
// analyses: both are thin clients of api::Session and all analyses are
// deterministic for every thread count and batch width.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "obs/registry.hpp"
#include "serve/server.hpp"
#include "sim/diagnostics.hpp"

using namespace lcsf;

namespace {

void print_usage(std::FILE* to) {
  std::fprintf(to,
               "usage: lcsf_serve [--port n] [--workers n] [--cache-mb n] "
               "[--metrics out.json]\n");
}

[[noreturn]] void bad_option(const std::string& arg) {
  std::fprintf(stderr, "lcsf_serve: unknown option '%s'\n", arg.c_str());
  print_usage(stderr);
  std::exit(1);
}

[[noreturn]] void missing_value(const std::string& arg) {
  std::fprintf(stderr, "lcsf_serve: option '%s' needs a value\n",
               arg.c_str());
  print_usage(stderr);
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  serve::ServerOptions opt;
  std::string metrics_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (++i >= argc) missing_value(arg);
      return argv[i];
    };
    if (arg == "--port") {
      opt.port = std::atoi(next().c_str());
    } else if (arg == "--workers") {
      opt.workers = static_cast<std::size_t>(std::stoul(next()));
    } else if (arg == "--cache-mb") {
      opt.cache_bytes = static_cast<std::size_t>(std::stoul(next())) << 20;
    } else if (arg == "--metrics") {
      metrics_path = next();
    } else {
      bad_option(arg);
    }
  }

  obs::Registry registry;
  opt.registry = &registry;
  serve::Server server(opt);
  try {
    server.bind_and_listen();
  } catch (const sim::SimulationError& e) {
    std::fprintf(stderr, "lcsf_serve: %s\n",
                 e.diagnostics().message().c_str());
    return 1;
  }
  std::printf("lcsf_serve: listening on 127.0.0.1:%d\n", server.port());
  std::fflush(stdout);
  server.run();

  if (!metrics_path.empty()) {
    std::ofstream out(metrics_path);
    out << registry.to_json(true);
    if (!out) {
      std::fprintf(stderr, "lcsf_serve: cannot write %s\n",
                   metrics_path.c_str());
      return 1;
    }
  }
  return 0;
}
