// Project-invariant lint engine behind the lcsf_lint driver.
//
// The framework's correctness rests on invariants the C++ toolchain
// cannot check: deterministic counter-based RNG streams (the
// thread-count-invariance contract of docs/monte_carlo.md), classified
// sim::SimDiagnostics failure paths instead of naked throws
// (docs/robustness.md), no exact floating-point comparison on computed
// quantities, and all parallelism routed through core::ThreadPool. This
// engine scans source text for violations of those invariants; the
// rules are deliberately textual (a scrubber removes comments and
// string literals first) so the tool builds with zero dependencies and
// runs in milliseconds as a ctest. docs/static_analysis.md documents
// every rule, its paper invariant, and the suppression syntax.
//
// Split from the driver so tests/test_lint.cpp can feed synthetic
// sources through lint_source() and assert exact rule ids and lines.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace lcsf::lint {

/// One rule violation (or suppression problem) in one file.
struct Finding {
  std::string rule;     ///< stable rule id (see rules())
  std::size_t line = 0; ///< 1-based line number
  std::string message;  ///< human-readable explanation
};

/// Static description of one rule, for --list-rules and the docs.
struct RuleInfo {
  const char* id;
  const char* summary;
};

/// Every enforced rule, in reporting order. The meta-findings emitted by
/// the suppression checker (unknown-rule-suppression,
/// suppression-missing-justification, unused-suppression) are not listed
/// here and cannot themselves be suppressed.
const std::vector<RuleInfo>& rules();

/// True when `id` names an entry of rules().
bool is_rule(const std::string& id);

/// Source text split into parallel per-line views: `code` has comments,
/// string literals and char literals blanked out (line structure kept),
/// `comments` has only the comment text. Rules scan `code`; the
/// suppression parser scans `comments`. Exposed for direct testing.
struct ScrubbedSource {
  std::vector<std::string> code;
  std::vector<std::string> comments;
};
ScrubbedSource scrub(const std::string& content);

/// Lint one file. `path` must be the repo-relative path with forward
/// slashes (e.g. "src/spice/transient.cpp"): several rules scope on it.
/// Returns all findings, in line order, suppressions already applied.
std::vector<Finding> lint_source(const std::string& path,
                                 const std::string& content);

}  // namespace lcsf::lint
