// Project-invariant lint engine behind the lcsf_lint driver.
//
// The framework's correctness rests on invariants the C++ toolchain
// cannot check: deterministic counter-based RNG streams (the
// thread-count-invariance contract of docs/monte_carlo.md), classified
// sim::SimDiagnostics failure paths instead of naked throws
// (docs/robustness.md), no exact floating-point comparison on computed
// quantities, all parallelism routed through runtime::ThreadPool, no
// hash-order iteration or wall-clock reads where results or serialized
// output could observe them. This engine scans source text for
// violations of those invariants; the rules are deliberately textual (a
// scrubber removes comments and string literals first) so the tool
// builds with zero dependencies and runs in milliseconds as a ctest.
// docs/static_analysis.md documents every rule, its paper invariant,
// and the suppression syntax.
//
// v2 is a multi-pass architecture:
//   pass 1 (this file): per-file scan -- scrub, parse suppressions and
//     `#include "..."` edges, run the line rules.
//   pass 2 (project_analyzer.hpp): cross-file analysis over all scans --
//     include graph, module layering manifest, cycles, orphan headers.
//   finalize: unused-suppression auditing once BOTH passes have had the
//     chance to consume a directive, then canonical ordering.
//
// Split from the driver so tests/test_lint.cpp can feed synthetic
// sources through scan_file()/analyze_project()/lint_source() and
// assert exact rule ids and lines.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace lcsf::lint {

/// One rule violation (or suppression problem) in one file.
struct Finding {
  std::string rule;     ///< stable rule id (see rules())
  std::size_t line = 0; ///< 1-based line number
  std::string message;  ///< human-readable explanation
  std::string file;     ///< repo-relative path (set by scan_file)
  /// For include-graph findings: the offending edge or cycle as a path
  /// of repo-relative files (or module names for module-level cycles).
  std::vector<std::string> edge_path;
  /// True when a file-scope directive silenced this finding. Suppressed
  /// findings are dropped from the text report but carried in the
  /// lcsf-lint-v2 JSON document with their status.
  bool suppressed = false;
};

/// Static description of one rule, for --list-rules and the docs.
struct RuleInfo {
  const char* id;
  const char* summary;
};

/// Every enforced rule, in reporting order. The meta-findings emitted by
/// the suppression checker (unknown-rule-suppression,
/// suppression-missing-justification, unused-suppression) are not listed
/// here and cannot themselves be suppressed.
const std::vector<RuleInfo>& rules();

/// True when `id` names an entry of rules().
bool is_rule(const std::string& id);

/// Source text split into parallel per-line views: `code` has comments,
/// string literals and char literals blanked out (line structure kept),
/// `comments` has only the comment text. Rules scan `code`; the
/// suppression parser scans `comments`. Exposed for direct testing.
struct ScrubbedSource {
  std::vector<std::string> code;
  std::vector<std::string> comments;
};
ScrubbedSource scrub(const std::string& content);

/// File-scope suppression directive parsed out of the comment stream.
struct Suppression {
  std::string rule;
  std::size_t line = 0;  ///< where the directive lives
  bool justified = false;
  bool used = false;
};

/// A quoted `#include "target"` directive (project include edge).
struct Include {
  std::string target;    ///< verbatim include path between the quotes
  std::size_t line = 0;  ///< 1-based line of the directive
};

/// Pass-1 result for one file: per-file findings (suppressed ones kept
/// and flagged), the parsed suppressions (with use-tracking state the
/// project pass continues), and the outgoing include edges the project
/// pass consumes.
struct FileScan {
  std::string path;  ///< repo-relative, forward slashes
  std::vector<Finding> findings;
  std::vector<Suppression> suppressions;
  std::vector<Include> includes;
};

/// Run pass 1 on one file. `path` must be the repo-relative path with
/// forward slashes (e.g. "src/spice/transient.cpp"): several rules
/// scope on it. Findings are not yet sorted and unused-suppression has
/// not run -- call finalize_scan() after any project-level pass.
FileScan scan_file(const std::string& path, const std::string& content);

/// Append `finding` to `scan`, marking it suppressed (and the directive
/// used) when the file carries a matching justified-or-not directive.
/// The project pass routes its findings through this so file-scope
/// suppressions apply uniformly across both passes.
void attach_finding(FileScan& scan, Finding finding);

/// Emit unused-suppression meta-findings and sort the findings into the
/// canonical (line, rule) order. Call exactly once per scan, after every
/// pass that could consume a suppression.
void finalize_scan(FileScan& scan);

/// One-shot per-file convenience used by the unit tests and subset
/// scans: scan + finalize, returning only the active (non-suppressed)
/// findings in canonical order. Cross-file rules never fire here.
std::vector<Finding> lint_source(const std::string& path,
                                 const std::string& content);

/// Serialize scans into the versioned machine-readable findings
/// document (schema id "lcsf-lint-v2", see tools/lint_schema.json):
/// every finding -- suppressed ones included, status flagged -- plus
/// files_scanned and the total suppression-directive count the CI
/// suppression-budget gate rides on. Scans must already be finalized;
/// findings appear in scan order (the driver scans paths sorted).
std::string findings_to_json(const std::vector<FileScan>& scans);

/// JSON string escaping used by findings_to_json (exposed for tests).
std::string json_escape(const std::string& s);

}  // namespace lcsf::lint
