#include "lint_engine.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <regex>
#include <set>

namespace lcsf::lint {

namespace {

// ---------------------------------------------------------------------
// Scrubber: blank out comments and literals, collect comment text.
// ---------------------------------------------------------------------

enum class ScrubState {
  kCode,
  kLineComment,
  kBlockComment,
  kString,
  kChar,
  kRawString,
};

bool is_ident_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

}  // namespace

ScrubbedSource scrub(const std::string& content) {
  ScrubbedSource out;
  std::string code;
  std::string comment;
  ScrubState state = ScrubState::kCode;
  std::string raw_delim;  // ")delim" terminator of an active raw string
  char prev_code = '\0';  // last code char, to tell 'c' from digit sep.

  auto flush_line = [&] {
    out.code.push_back(code);
    out.comments.push_back(comment);
    code.clear();
    comment.clear();
  };

  const std::size_t n = content.size();
  for (std::size_t i = 0; i < n; ++i) {
    const char c = content[i];
    const char next = (i + 1 < n) ? content[i + 1] : '\0';
    if (c == '\n') {
      // Newline ends line comments; strings/blocks continue (a dangling
      // unterminated string just scrubs to end of file, fail-safe).
      if (state == ScrubState::kLineComment) state = ScrubState::kCode;
      flush_line();
      continue;
    }
    if (c == '\r') continue;
    switch (state) {
      case ScrubState::kCode:
        if (c == '/' && next == '/') {
          state = ScrubState::kLineComment;
          ++i;
        } else if (c == '/' && next == '*') {
          state = ScrubState::kBlockComment;
          ++i;
        } else if (c == '"') {
          // R"delim( opens a raw string; the R must not be glued to a
          // preceding identifier (operator""_x, LR"..." are not used).
          if (prev_code == 'R' &&
              (code.size() < 2 || !is_ident_char(code[code.size() - 2]))) {
            std::size_t j = i + 1;
            while (j < n && content[j] != '(' && content[j] != '\n') ++j;
            if (j < n && content[j] == '(') {
              raw_delim = ")" + content.substr(i + 1, j - i - 1) + "\"";
              state = ScrubState::kRawString;
              code += ' ';
              i = j;  // skip past the opening '('
              break;
            }
          }
          state = ScrubState::kString;
          code += ' ';
          prev_code = '\0';
        } else if (c == '\'' && !is_ident_char(prev_code)) {
          // A quote after an identifier/digit is a digit separator
          // (1'000) -- only a bare quote opens a char literal.
          state = ScrubState::kChar;
          code += ' ';
          prev_code = '\0';
        } else {
          code += c;
          prev_code = c;
        }
        break;
      case ScrubState::kLineComment:
        comment += c;
        break;
      case ScrubState::kBlockComment:
        if (c == '*' && next == '/') {
          state = ScrubState::kCode;
          code += ' ';
          ++i;
        } else {
          comment += c;
        }
        break;
      case ScrubState::kString:
      case ScrubState::kChar:
        if (c == '\\') {
          ++i;  // skip the escaped char (never a newline in valid C++)
        } else if ((state == ScrubState::kString && c == '"') ||
                   (state == ScrubState::kChar && c == '\'')) {
          state = ScrubState::kCode;
        }
        break;
      case ScrubState::kRawString:
        if (c == ')' && content.compare(i, raw_delim.size(), raw_delim) == 0) {
          i += raw_delim.size() - 1;
          state = ScrubState::kCode;
        }
        break;
    }
  }
  flush_line();
  return out;
}

namespace {

// ---------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------

const char* const kRngRule = "nondeterministic-rng";
const char* const kThrowRule = "raw-engine-throw";
const char* const kFloatEqRule = "float-equality";
const char* const kThreadRule = "thread-outside-pool";
const char* const kGuardRule = "include-guard";
const char* const kUsingRule = "using-namespace-header";
const char* const kSpanRule = "obs-span-balance";
const char* const kIterRule = "nondeterministic-iteration";
const char* const kWallClockRule = "wall-clock-in-engine";
const char* const kMutStaticRule = "mutable-static-in-header";

bool starts_with(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool ends_with(const std::string& s, const char* suffix) {
  const std::string suf(suffix);
  return s.size() >= suf.size() &&
         s.compare(s.size() - suf.size(), suf.size(), suf) == 0;
}

bool is_header(const std::string& path) { return ends_with(path, ".hpp"); }

/// Engine directories whose failure paths must speak SimDiagnostics.
bool in_engine_dir(const std::string& path) {
  return starts_with(path, "src/spice/") || starts_with(path, "src/teta/") ||
         starts_with(path, "src/stats/");
}

/// The one sanctioned home for raw std::thread / std::async.
bool is_thread_pool_file(const std::string& path) {
  return path == "src/runtime/thread_pool.hpp" ||
         path == "src/runtime/thread_pool.cpp";
}

/// The obs subsystem itself declares/defines ScopedSpan, so the
/// span-balance rule must not scan it (its ctor/dtor signatures would
/// self-flag).
bool outside_obs_dir(const std::string& path) {
  return !starts_with(path, "src/obs/");
}

/// Engine + tooling sources whose iteration order can reach numeric
/// results, merged metrics, or serialized output. Tests and benches may
/// iterate hash containers for their own bookkeeping.
bool in_src_or_tools(const std::string& path) {
  return starts_with(path, "src/") || starts_with(path, "tools/");
}

/// Wall-clock reads are sanctioned only in the observability substrate
/// (phase timers) and the benches; engine results must be a pure
/// function of their inputs.
bool in_engine_wall_clock_scope(const std::string& path) {
  return starts_with(path, "src/") && !starts_with(path, "src/obs/");
}

struct Rule {
  const char* id;
  std::regex pattern;
  const char* message;
  bool (*applies)(const std::string& path);
};

const std::vector<Rule>& line_rules() {
  // Patterns run on scrubbed code, so string literals and comments can
  // never trigger them.
  static const std::vector<Rule> rules = {
      {kRngRule,
       std::regex(R"(\b(s?rand|time|clock)\s*\()"),
       "non-deterministic source: libc rand()/srand()/time()/clock() break "
       "the bitwise-reproducibility contract; derive variates from "
       "stats::sample_stream (counter-based SplitMix64)",
       [](const std::string&) { return true; }},
      {kRngRule,
       std::regex(R"(\brandom_device\b)"),
       "std::random_device is non-deterministic; seed explicitly and draw "
       "from stats::sample_stream (counter-based SplitMix64)",
       [](const std::string&) { return true; }},
      {kRngRule,
       std::regex(R"(\bmt19937(_64)?\s+[A-Za-z_]\w*\s*(;|\{\s*\}|\(\s*\)))"),
       "default-constructed mt19937 uses the fixed default seed and hides "
       "the seeding decision; construct with an explicit seed, or use "
       "stats::sample_stream for per-sample determinism",
       [](const std::string&) { return true; }},
      {kThrowRule,
       std::regex(R"(\bthrow\s+std\s*::\s*(runtime_error|invalid_argument)\b)"),
       "engine code must not throw naked std::runtime_error/"
       "invalid_argument: route failures through sim::SimulationError "
       "(sim::throw_invalid_input for precondition checks) so fail-soft "
       "drivers can classify them (docs/robustness.md)",
       in_engine_dir},
      {kFloatEqRule,
       std::regex(
           R"(((\d+\.\d*|\.\d+)([eE][-+]?\d+)?|\d+[eE][-+]?\d+)[fFlL]?\s*[=!]=)"
           R"(|[=!]=\s*[-+]?((\d+\.\d*|\.\d+)([eE][-+]?\d+)?|\d+[eE][-+]?\d+))"),
       "exact ==/!= against a floating-point literal: use "
       "numeric::exact_eq/exact_zero when bitwise comparison is intended, "
       "or an explicit |a-b| <= tol otherwise",
       [](const std::string&) { return true; }},
      {kThreadRule,
       std::regex(R"(\bstd\s*::\s*(thread|jthread|async)\b)"),
       "raw std::thread/std::async outside runtime::ThreadPool: all "
       "parallelism must go through the pool so LCSF_THREADS, nesting "
       "rules and the determinism contract hold",
       [](const std::string& p) { return !is_thread_pool_file(p); }},
      {kUsingRule,
       std::regex(R"(\busing\s+namespace\b)"),
       "`using namespace` in a header pollutes every includer",
       is_header},
      {kSpanRule,
       // `ScopedSpan(...)` / `ScopedSpan{...}` with no variable name in
       // between is a temporary: it is destroyed at the end of the full
       // expression, so the span it records covers nothing. The leading
       // class excludes destructor calls (~ScopedSpan) and identifiers
       // that merely end in ScopedSpan.
       std::regex(R"((^|[^~\w])ScopedSpan\s*[({])"),
       "temporary obs::ScopedSpan dies at the end of the statement and "
       "records a zero-length span; bind it to a named stack object "
       "(`obs::ScopedSpan span(\"phase\");`) so it covers the scope",
       outside_obs_dir},
      {kWallClockRule,
       std::regex(R"(\bstd\s*::\s*chrono\b)"
                  R"(|\b(steady_clock|system_clock|high_resolution_clock)\b)"
                  R"(|#\s*include\s*<chrono>)"),
       "wall-clock read in engine code: results must be a pure function "
       "of inputs; std::chrono is sanctioned only in src/obs/ (phase "
       "timers, excluded from the deterministic export) and bench/",
       in_engine_wall_clock_scope},
  };
  return rules;
}

// ---------------------------------------------------------------------
// nondeterministic-iteration: track variables declared (or passed) with
// an unordered container type, then flag loops that walk them. Element
// order in a hash container depends on insertion history, hash seeding
// and load factor, so any walk whose visit order can reach results or
// serialized/merged output breaks the reproducibility contract.
// ---------------------------------------------------------------------

/// The trailing identifier of an expression like `lane->counters_`,
/// `sink.values_`, `obs::registry().names` or plain `m`; empty when the
/// expression ends in something else (a call, an index, a literal).
std::string trailing_identifier(const std::string& expr) {
  std::size_t end = expr.size();
  while (end > 0 && std::isspace(static_cast<unsigned char>(expr[end - 1]))) {
    --end;
  }
  std::size_t begin = end;
  while (begin > 0 && is_ident_char(expr[begin - 1])) --begin;
  if (begin == end) return {};
  return expr.substr(begin, end - begin);
}

/// Names declared with unordered_map/unordered_set type in this file
/// (members, locals, parameters). A declaration whose name is followed
/// by '(' is a function returning the container and is not tracked.
std::set<std::string> unordered_container_names(
    const std::vector<std::string>& code) {
  static const std::regex decl(R"(\bunordered_(?:map|set|multimap|multiset)\s*<)");
  std::set<std::string> names;
  for (std::size_t i = 0; i < code.size(); ++i) {
    for (std::sregex_iterator it(code[i].begin(), code[i].end(), decl), end;
         it != end; ++it) {
      // Balance the template angle brackets, spilling over at most a few
      // lines (every in-tree declaration is single-line; the slack keeps
      // clang-formatted wrapping from hiding a declaration).
      std::size_t line = i;
      std::size_t pos = static_cast<std::size_t>(it->position()) +
                        static_cast<std::size_t>(it->length());
      int depth = 1;
      std::size_t scanned_lines = 0;
      std::string tail;
      while (depth > 0 && line < code.size() && scanned_lines < 6) {
        const std::string& text = code[line];
        for (; pos < text.size(); ++pos) {
          if (text[pos] == '<') ++depth;
          if (text[pos] == '>' && --depth == 0) {
            tail = text.substr(pos + 1);
            break;
          }
        }
        if (depth > 0) {
          ++line;
          pos = 0;
          ++scanned_lines;
        }
      }
      if (depth > 0) continue;  // unbalanced; give up on this one
      // Skip references/pointers/cv in `const unordered_map<..>& name`.
      std::size_t j = 0;
      while (j < tail.size() &&
             (std::isspace(static_cast<unsigned char>(tail[j])) ||
              tail[j] == '&' || tail[j] == '*')) {
        ++j;
      }
      std::size_t k = j;
      while (k < tail.size() && is_ident_char(tail[k])) ++k;
      if (k == j) continue;
      std::size_t after = k;
      while (after < tail.size() &&
             std::isspace(static_cast<unsigned char>(tail[after]))) {
        ++after;
      }
      if (after < tail.size() && tail[after] == '(') continue;  // function
      names.insert(tail.substr(j, k - j));
    }
  }
  return names;
}

/// Extract the range expression of a range-for on this line, if any:
/// the text between the top-level ':' and the matching ')'.
std::string range_for_expression(const std::string& line) {
  const std::size_t f = line.find("for");
  if (f == std::string::npos) return {};
  if (f > 0 && is_ident_char(line[f - 1])) return {};
  if (f + 3 < line.size() && is_ident_char(line[f + 3])) return {};
  std::size_t open = line.find('(', f);
  if (open == std::string::npos) return {};
  int depth = 0;
  std::size_t colon = std::string::npos;
  for (std::size_t i = open; i < line.size(); ++i) {
    const char c = line[i];
    if (c == '(' || c == '[' || c == '{') ++depth;
    if (c == ')' || c == ']' || c == '}') {
      --depth;
      if (depth == 0) {
        if (colon == std::string::npos) return {};
        return line.substr(colon + 1, i - colon - 1);
      }
    }
    if (c == ':' && depth == 1) {
      const bool double_colon = (i > 0 && line[i - 1] == ':') ||
                                (i + 1 < line.size() && line[i + 1] == ':');
      if (!double_colon && colon == std::string::npos) colon = i;
    }
  }
  return {};  // spans lines; out of scope for the textual rule
}

void run_iteration_rule(const std::string& path, const ScrubbedSource& src,
                        FileScan& scan) {
  if (!in_src_or_tools(path)) return;
  const std::set<std::string> names = unordered_container_names(src.code);
  if (names.empty()) return;
  static const std::regex begin_call(
      R"((\w+)\s*(?:\.|->)\s*c?begin\s*\()");
  for (std::size_t i = 0; i < src.code.size(); ++i) {
    const std::string& line = src.code[i];
    if (line.empty()) continue;
    std::string hit;
    const std::string range = range_for_expression(line);
    const std::string range_id = trailing_identifier(range);
    if (!range_id.empty() && names.count(range_id)) hit = range_id;
    if (hit.empty()) {
      std::smatch m;
      if (std::regex_search(line, m, begin_call) && names.count(m[1])) {
        hit = m[1];
      }
    }
    if (hit.empty()) continue;
    attach_finding(
        scan,
        {kIterRule, i + 1,
         "iteration over unordered container '" + hit +
             "': element order depends on hashing and insertion history, "
             "so any order-sensitive use (export, merge, fp accumulation) "
             "is nondeterministic; use std::map/std::set or copy out and "
             "sort before iterating",
         path,
         {},
         false});
  }
}

// ---------------------------------------------------------------------
// mutable-static-in-header: a non-const static variable in a header is
// one mutable object per TU (pre-C++17) or a shared mutable global
// (inline) -- either way hidden cross-TU state that breaks reproducible
// runs and thread-safety audits. Static member *functions* and
// constexpr/const data are fine.
// ---------------------------------------------------------------------

void run_mutable_static_rule(const std::string& path,
                             const ScrubbedSource& src, FileScan& scan) {
  if (!is_header(path)) return;
  static const std::regex static_kw(R"(\bstatic\b)");
  for (std::size_t i = 0; i < src.code.size(); ++i) {
    const std::string& line = src.code[i];
    if (line.empty()) continue;
    for (std::sregex_iterator it(line.begin(), line.end(), static_kw), end;
         it != end; ++it) {
      // The declaration tail: rest of this line plus a couple more, to
      // survive clang-format wrapping of long declarations.
      std::string tail =
          line.substr(static_cast<std::size_t>(it->position()) +
                      static_cast<std::size_t>(it->length()));
      for (std::size_t extra = 1; extra <= 2 && i + extra < src.code.size();
           ++extra) {
        tail += ' ';
        tail += src.code[i + extra];
      }
      // Swallow storage/qualifier keywords; const/constexpr make the
      // object immutable and exempt.
      static const std::set<std::string> passthrough = {"inline",
                                                        "thread_local"};
      bool immutable = false;
      std::size_t pos = 0;
      for (;;) {
        while (pos < tail.size() &&
               std::isspace(static_cast<unsigned char>(tail[pos]))) {
          ++pos;
        }
        std::size_t e = pos;
        while (e < tail.size() && is_ident_char(tail[e])) ++e;
        const std::string word = tail.substr(pos, e - pos);
        if (word == "const" || word == "constexpr" || word == "constinit") {
          immutable = true;
          break;
        }
        if (passthrough.count(word)) {
          pos = e;
          continue;
        }
        break;
      }
      if (immutable) continue;
      // Function declaration vs variable: the first structural token
      // decides. '(' first = function; '=', ';' or '{' first = variable
      // (brace or equals initialization). Angle brackets are skipped so
      // template arguments cannot fool the scan.
      int angle = 0;
      char decided = '\0';
      for (std::size_t j = pos; j < tail.size(); ++j) {
        const char c = tail[j];
        if (c == '<') ++angle;
        if (c == '>' && angle > 0) --angle;
        if (angle > 0) continue;
        if (c == '(' || c == '=' || c == ';' || c == '{') {
          decided = c;
          break;
        }
      }
      if (decided == '\0' || decided == '(') continue;
      attach_finding(
          scan,
          {kMutStaticRule, i + 1,
           "mutable static in a header: every includer shares (or "
           "duplicates, pre-C++17) this writable state, invisible to the "
           "determinism audit; move it behind a function in a .cpp or "
           "make it constexpr/const",
           path,
           {},
           false});
      break;  // one finding per line is plenty
    }
  }
}

std::vector<Suppression> parse_suppressions(
    const std::vector<std::string>& comments,
    std::vector<Finding>& meta_findings) {
  // File-scope directive: the rule is silenced for the whole file, and
  // a justification after ` -- ` is mandatory. (The directive string is
  // assembled here so this file's own comment stream never contains it.)
  static const std::regex dir(
      std::string("lcsf-lint\\s*:\\s*") +
      "allow\\(([A-Za-z0-9_-]+)\\)[ \t]*(?:--)?[ \t]*(.*)");
  std::vector<Suppression> sup;
  for (std::size_t i = 0; i < comments.size(); ++i) {
    std::smatch m;
    if (!std::regex_search(comments[i], m, dir)) continue;
    Suppression s;
    s.rule = m[1];
    s.line = i + 1;
    if (!is_rule(s.rule)) {
      meta_findings.push_back(
          {"unknown-rule-suppression", s.line,
           "suppression names unknown rule '" + s.rule + "'", {}, {}, false});
      continue;
    }
    // Count multi-line justifications: a directive whose own line has no
    // text still counts as justified when the next comment line carries
    // the explanation.
    std::string just = m[2];
    if (just.empty() && i + 1 < comments.size()) just = comments[i + 1];
    s.justified =
        std::count_if(just.begin(), just.end(),
                      [](unsigned char c) { return std::isalpha(c); }) >= 3;
    if (!s.justified) {
      meta_findings.push_back(
          {"suppression-missing-justification", s.line,
           "suppression of '" + s.rule +
               "' has no justification; write `-- <why this file is "
               "allowed to break the rule>`",
           {},
           {},
           false});
    }
    sup.push_back(std::move(s));
  }
  return sup;
}

/// Quoted project includes, parsed from the raw content (the scrubber
/// blanks string literals, which is exactly where the target lives).
/// Anchoring on a line-leading '#' keeps commented-out includes and
/// includes quoted inside string literals from matching.
std::vector<Include> parse_includes(const std::string& content) {
  static const std::regex inc(R"re(^[ \t]*#[ \t]*include[ \t]*"([^"]+)")re");
  std::vector<Include> out;
  std::size_t line = 1;
  std::size_t begin = 0;
  while (begin <= content.size()) {
    std::size_t end = content.find('\n', begin);
    if (end == std::string::npos) end = content.size();
    const std::string text = content.substr(begin, end - begin);
    std::smatch m;
    if (std::regex_search(text, m, inc)) {
      out.push_back({m[1], line});
    }
    begin = end + 1;
    ++line;
  }
  return out;
}

}  // namespace

const std::vector<RuleInfo>& rules() {
  static const std::vector<RuleInfo> info = {
      {kRngRule,
       "no rand()/srand()/time()/clock()/std::random_device/default-seeded "
       "mt19937; deterministic paths draw from counter-based SplitMix64 "
       "streams"},
      {kThrowRule,
       "src/{spice,teta,stats} must not throw naked std::runtime_error/"
       "invalid_argument; failures route through sim::SimulationError"},
      {kFloatEqRule,
       "no raw ==/!= against floating-point literals; use "
       "numeric::exact_eq/exact_zero or an explicit tolerance"},
      {kThreadRule,
       "no std::thread/std::jthread/std::async outside "
       "src/runtime/thread_pool.*"},
      {kGuardRule,
       "headers use #pragma once (before any code, no legacy #ifndef "
       "guards)"},
      {kUsingRule, "no `using namespace` in headers"},
      {kSpanRule,
       "obs::ScopedSpan must be a named stack object, never a discarded "
       "temporary (outside src/obs/ itself)"},
      {kIterRule,
       "no iteration over unordered_map/unordered_set in src/ or tools/; "
       "hash order can reach results, merges and serialized output"},
      {kWallClockRule,
       "no std::chrono/steady_clock wall-clock reads in src/ outside "
       "src/obs/; engine results are a pure function of inputs"},
      {kMutStaticRule,
       "no mutable static data in headers; shared writable cross-TU state "
       "evades the determinism audit"},
      {"layering-violation",
       "module include edges must point downward in the layering manifest "
       "(tools/lint/layers.txt)"},
      {"include-cycle",
       "the project include graph (files and collapsed modules) must stay "
       "acyclic"},
      {"orphan-header",
       "every src/ and tools/ header must be included by at least one "
       "scanned file"},
  };
  return info;
}

bool is_rule(const std::string& id) {
  const auto& r = rules();
  return std::any_of(r.begin(), r.end(),
                     [&](const RuleInfo& i) { return id == i.id; });
}

void attach_finding(FileScan& scan, Finding finding) {
  finding.file = scan.path;
  for (auto& s : scan.suppressions) {
    if (s.rule == finding.rule) {
      s.used = true;
      finding.suppressed = true;
      break;
    }
  }
  scan.findings.push_back(std::move(finding));
}

FileScan scan_file(const std::string& path, const std::string& content) {
  FileScan scan;
  scan.path = path;
  scan.includes = parse_includes(content);
  const ScrubbedSource src = scrub(content);

  std::vector<Finding> meta;
  scan.suppressions = parse_suppressions(src.comments, meta);

  for (std::size_t i = 0; i < src.code.size(); ++i) {
    const std::string& line = src.code[i];
    if (line.empty()) continue;
    for (const Rule& rule : line_rules()) {
      if (!rule.applies(path)) continue;
      if (!std::regex_search(line, rule.pattern)) continue;
      attach_finding(scan, {rule.id, i + 1, rule.message, path, {}, false});
    }
  }

  run_iteration_rule(path, src, scan);
  run_mutable_static_rule(path, src, scan);

  // Header hygiene: #pragma once present, and no legacy #ifndef guard.
  if (is_header(path)) {
    static const std::regex pragma_once(R"(^\s*#\s*pragma\s+once\b)");
    static const std::regex ifndef_guard(R"(^\s*#\s*ifndef\s+\w*_(HPP|H)_?\b)");
    bool has_pragma = false;
    for (const auto& line : src.code) {
      if (std::regex_search(line, pragma_once)) {
        has_pragma = true;
        break;
      }
    }
    if (!has_pragma) {
      attach_finding(
          scan, {kGuardRule, 1,
                 "header has no #pragma once (the project's one guard style)",
                 path,
                 {},
                 false});
    }
    for (std::size_t i = 0; i < src.code.size(); ++i) {
      if (std::regex_search(src.code[i], ifndef_guard)) {
        attach_finding(scan,
                       {kGuardRule, i + 1,
                        "legacy #ifndef include guard; the project "
                        "convention is #pragma once",
                        path,
                        {},
                        false});
        break;
      }
    }
  }

  // Meta-findings about the suppression directives themselves are never
  // suppressible; append them directly.
  for (Finding& f : meta) {
    f.file = path;
    scan.findings.push_back(std::move(f));
  }
  return scan;
}

void finalize_scan(FileScan& scan) {
  // A suppression that silenced nothing is itself a finding: stale
  // directives rot into blanket licenses to reintroduce the bug.
  for (const auto& s : scan.suppressions) {
    if (!s.used) {
      scan.findings.push_back(
          {"unused-suppression", s.line,
           "suppression of '" + s.rule +
               "' matched no finding; delete the stale directive",
           scan.path,
           {},
           false});
    }
  }
  std::sort(scan.findings.begin(), scan.findings.end(),
            [](const Finding& a, const Finding& b) {
              return a.line != b.line ? a.line < b.line : a.rule < b.rule;
            });
}

std::vector<Finding> lint_source(const std::string& path,
                                 const std::string& content) {
  FileScan scan = scan_file(path, content);
  finalize_scan(scan);
  std::vector<Finding> active;
  for (Finding& f : scan.findings) {
    if (!f.suppressed) active.push_back(std::move(f));
  }
  return active;
}

// ---------------------------------------------------------------------
// lcsf-lint-v2 JSON document
// ---------------------------------------------------------------------

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          const char* hex = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xf];
          out += hex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string findings_to_json(const std::vector<FileScan>& scans) {
  std::size_t suppression_count = 0;
  for (const FileScan& s : scans) suppression_count += s.suppressions.size();

  std::string out;
  out += "{\n";
  out += "  \"schema\": \"lcsf-lint-v2\",\n";
  out += "  \"files_scanned\": " + std::to_string(scans.size()) + ",\n";
  out +=
      "  \"suppression_count\": " + std::to_string(suppression_count) + ",\n";
  out += "  \"findings\": [";
  bool first = true;
  for (const FileScan& s : scans) {
    for (const Finding& f : s.findings) {
      if (!first) out += ",";
      first = false;
      out += "\n    {\"rule\": \"" + json_escape(f.rule) + "\", ";
      out += "\"file\": \"" + json_escape(f.file) + "\", ";
      out += "\"line\": " + std::to_string(f.line) + ", ";
      out += "\"suppressed\": " + std::string(f.suppressed ? "true" : "false");
      if (!f.edge_path.empty()) {
        out += ", \"edge_path\": [";
        for (std::size_t k = 0; k < f.edge_path.size(); ++k) {
          if (k) out += ", ";
          out += "\"" + json_escape(f.edge_path[k]) + "\"";
        }
        out += "]";
      }
      out += ", \"message\": \"" + json_escape(f.message) + "\"}";
    }
  }
  out += first ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

}  // namespace lcsf::lint
