#include "lint_engine.hpp"

#include <algorithm>
#include <map>
#include <regex>

namespace lcsf::lint {

namespace {

// ---------------------------------------------------------------------
// Scrubber: blank out comments and literals, collect comment text.
// ---------------------------------------------------------------------

enum class ScrubState {
  kCode,
  kLineComment,
  kBlockComment,
  kString,
  kChar,
  kRawString,
};

bool is_ident_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

}  // namespace

ScrubbedSource scrub(const std::string& content) {
  ScrubbedSource out;
  std::string code;
  std::string comment;
  ScrubState state = ScrubState::kCode;
  std::string raw_delim;  // ")delim" terminator of an active raw string
  char prev_code = '\0';  // last code char, to tell 'c' from digit sep.

  auto flush_line = [&] {
    out.code.push_back(code);
    out.comments.push_back(comment);
    code.clear();
    comment.clear();
  };

  const std::size_t n = content.size();
  for (std::size_t i = 0; i < n; ++i) {
    const char c = content[i];
    const char next = (i + 1 < n) ? content[i + 1] : '\0';
    if (c == '\n') {
      // Newline ends line comments; strings/blocks continue (a dangling
      // unterminated string just scrubs to end of file, fail-safe).
      if (state == ScrubState::kLineComment) state = ScrubState::kCode;
      flush_line();
      continue;
    }
    if (c == '\r') continue;
    switch (state) {
      case ScrubState::kCode:
        if (c == '/' && next == '/') {
          state = ScrubState::kLineComment;
          ++i;
        } else if (c == '/' && next == '*') {
          state = ScrubState::kBlockComment;
          ++i;
        } else if (c == '"') {
          // R"delim( opens a raw string; the R must not be glued to a
          // preceding identifier (operator""_x, LR"..." are not used).
          if (prev_code == 'R' &&
              (code.size() < 2 || !is_ident_char(code[code.size() - 2]))) {
            std::size_t j = i + 1;
            while (j < n && content[j] != '(' && content[j] != '\n') ++j;
            if (j < n && content[j] == '(') {
              raw_delim = ")" + content.substr(i + 1, j - i - 1) + "\"";
              state = ScrubState::kRawString;
              code += ' ';
              i = j;  // skip past the opening '('
              break;
            }
          }
          state = ScrubState::kString;
          code += ' ';
          prev_code = '\0';
        } else if (c == '\'' && !is_ident_char(prev_code)) {
          // A quote after an identifier/digit is a digit separator
          // (1'000) -- only a bare quote opens a char literal.
          state = ScrubState::kChar;
          code += ' ';
          prev_code = '\0';
        } else {
          code += c;
          prev_code = c;
        }
        break;
      case ScrubState::kLineComment:
        comment += c;
        break;
      case ScrubState::kBlockComment:
        if (c == '*' && next == '/') {
          state = ScrubState::kCode;
          code += ' ';
          ++i;
        } else {
          comment += c;
        }
        break;
      case ScrubState::kString:
      case ScrubState::kChar:
        if (c == '\\') {
          ++i;  // skip the escaped char (never a newline in valid C++)
        } else if ((state == ScrubState::kString && c == '"') ||
                   (state == ScrubState::kChar && c == '\'')) {
          state = ScrubState::kCode;
        }
        break;
      case ScrubState::kRawString:
        if (c == ')' && content.compare(i, raw_delim.size(), raw_delim) == 0) {
          i += raw_delim.size() - 1;
          state = ScrubState::kCode;
        }
        break;
    }
  }
  flush_line();
  return out;
}

namespace {

// ---------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------

const char* const kRngRule = "nondeterministic-rng";
const char* const kThrowRule = "raw-engine-throw";
const char* const kFloatEqRule = "float-equality";
const char* const kThreadRule = "thread-outside-pool";
const char* const kGuardRule = "include-guard";
const char* const kUsingRule = "using-namespace-header";
const char* const kSpanRule = "obs-span-balance";

bool starts_with(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool ends_with(const std::string& s, const char* suffix) {
  const std::string suf(suffix);
  return s.size() >= suf.size() &&
         s.compare(s.size() - suf.size(), suf.size(), suf) == 0;
}

bool is_header(const std::string& path) { return ends_with(path, ".hpp"); }

/// Engine directories whose failure paths must speak SimDiagnostics.
bool in_engine_dir(const std::string& path) {
  return starts_with(path, "src/spice/") || starts_with(path, "src/teta/") ||
         starts_with(path, "src/stats/");
}

/// The one sanctioned home for raw std::thread / std::async.
bool is_thread_pool_file(const std::string& path) {
  return path == "src/core/thread_pool.hpp" ||
         path == "src/core/thread_pool.cpp";
}

/// The obs subsystem itself declares/defines ScopedSpan, so the
/// span-balance rule must not scan it (its ctor/dtor signatures would
/// self-flag).
bool outside_obs_dir(const std::string& path) {
  return !starts_with(path, "src/obs/");
}

struct Rule {
  const char* id;
  std::regex pattern;
  const char* message;
  bool (*applies)(const std::string& path);
};

const std::vector<Rule>& line_rules() {
  // Patterns run on scrubbed code, so string literals and comments can
  // never trigger them.
  static const std::vector<Rule> rules = {
      {kRngRule,
       std::regex(R"(\b(s?rand|time|clock)\s*\()"),
       "non-deterministic source: libc rand()/srand()/time()/clock() break "
       "the bitwise-reproducibility contract; derive variates from "
       "stats::sample_stream (counter-based SplitMix64)",
       [](const std::string&) { return true; }},
      {kRngRule,
       std::regex(R"(\brandom_device\b)"),
       "std::random_device is non-deterministic; seed explicitly and draw "
       "from stats::sample_stream (counter-based SplitMix64)",
       [](const std::string&) { return true; }},
      {kRngRule,
       std::regex(R"(\bmt19937(_64)?\s+[A-Za-z_]\w*\s*(;|\{\s*\}|\(\s*\)))"),
       "default-constructed mt19937 uses the fixed default seed and hides "
       "the seeding decision; construct with an explicit seed, or use "
       "stats::sample_stream for per-sample determinism",
       [](const std::string&) { return true; }},
      {kThrowRule,
       std::regex(R"(\bthrow\s+std\s*::\s*(runtime_error|invalid_argument)\b)"),
       "engine code must not throw naked std::runtime_error/"
       "invalid_argument: route failures through sim::SimulationError "
       "(sim::throw_invalid_input for precondition checks) so fail-soft "
       "drivers can classify them (docs/robustness.md)",
       in_engine_dir},
      {kFloatEqRule,
       std::regex(
           R"(((\d+\.\d*|\.\d+)([eE][-+]?\d+)?|\d+[eE][-+]?\d+)[fFlL]?\s*[=!]=)"
           R"(|[=!]=\s*[-+]?((\d+\.\d*|\.\d+)([eE][-+]?\d+)?|\d+[eE][-+]?\d+))"),
       "exact ==/!= against a floating-point literal: use "
       "numeric::exact_eq/exact_zero when bitwise comparison is intended, "
       "or an explicit |a-b| <= tol otherwise",
       [](const std::string&) { return true; }},
      {kThreadRule,
       std::regex(R"(\bstd\s*::\s*(thread|jthread|async)\b)"),
       "raw std::thread/std::async outside core::ThreadPool: all "
       "parallelism must go through the pool so LCSF_THREADS, nesting "
       "rules and the determinism contract hold",
       [](const std::string& p) { return !is_thread_pool_file(p); }},
      {kUsingRule,
       std::regex(R"(\busing\s+namespace\b)"),
       "`using namespace` in a header pollutes every includer",
       is_header},
      {kSpanRule,
       // `ScopedSpan(...)` / `ScopedSpan{...}` with no variable name in
       // between is a temporary: it is destroyed at the end of the full
       // expression, so the span it records covers nothing. The leading
       // class excludes destructor calls (~ScopedSpan) and identifiers
       // that merely end in ScopedSpan.
       std::regex(R"((^|[^~\w])ScopedSpan\s*[({])"),
       "temporary obs::ScopedSpan dies at the end of the statement and "
       "records a zero-length span; bind it to a named stack object "
       "(`obs::ScopedSpan span(\"phase\");`) so it covers the scope",
       outside_obs_dir},
  };
  return rules;
}

/// Suppression directive parsed out of the comment stream.
struct Suppression {
  std::string rule;
  std::size_t line = 0;  ///< where the directive lives
  bool justified = false;
  bool used = false;
};

std::vector<Suppression> parse_suppressions(
    const std::vector<std::string>& comments,
    std::vector<Finding>& meta_findings) {
  // File-scope directive: the rule is silenced for the whole file, and
  // a justification after ` -- ` is mandatory. (The directive string is
  // assembled here so this file's own comment stream never contains it.)
  static const std::regex dir(
      std::string("lcsf-lint\\s*:\\s*") +
      "allow\\(([A-Za-z0-9_-]+)\\)[ \t]*(?:--)?[ \t]*(.*)");
  std::vector<Suppression> sup;
  for (std::size_t i = 0; i < comments.size(); ++i) {
    std::smatch m;
    if (!std::regex_search(comments[i], m, dir)) continue;
    Suppression s;
    s.rule = m[1];
    s.line = i + 1;
    if (!is_rule(s.rule)) {
      meta_findings.push_back(
          {"unknown-rule-suppression", s.line,
           "suppression names unknown rule '" + s.rule + "'"});
      continue;
    }
    // Count multi-line justifications: a directive whose own line has no
    // text still counts as justified when the next comment line carries
    // the explanation.
    std::string just = m[2];
    if (just.empty() && i + 1 < comments.size()) just = comments[i + 1];
    s.justified =
        std::count_if(just.begin(), just.end(),
                      [](unsigned char c) { return std::isalpha(c); }) >= 3;
    if (!s.justified) {
      meta_findings.push_back(
          {"suppression-missing-justification", s.line,
           "suppression of '" + s.rule +
               "' has no justification; write `-- <why this file is "
               "allowed to break the rule>`"});
    }
    sup.push_back(std::move(s));
  }
  return sup;
}

}  // namespace

const std::vector<RuleInfo>& rules() {
  static const std::vector<RuleInfo> info = {
      {kRngRule,
       "no rand()/srand()/time()/clock()/std::random_device/default-seeded "
       "mt19937; deterministic paths draw from counter-based SplitMix64 "
       "streams"},
      {kThrowRule,
       "src/{spice,teta,stats} must not throw naked std::runtime_error/"
       "invalid_argument; failures route through sim::SimulationError"},
      {kFloatEqRule,
       "no raw ==/!= against floating-point literals; use "
       "numeric::exact_eq/exact_zero or an explicit tolerance"},
      {kThreadRule,
       "no std::thread/std::jthread/std::async outside "
       "src/core/thread_pool.*"},
      {kGuardRule,
       "headers use #pragma once (before any code, no legacy #ifndef "
       "guards)"},
      {kUsingRule, "no `using namespace` in headers"},
      {kSpanRule,
       "obs::ScopedSpan must be a named stack object, never a discarded "
       "temporary (outside src/obs/ itself)"},
  };
  return info;
}

bool is_rule(const std::string& id) {
  const auto& r = rules();
  return std::any_of(r.begin(), r.end(),
                     [&](const RuleInfo& i) { return id == i.id; });
}

std::vector<Finding> lint_source(const std::string& path,
                                 const std::string& content) {
  const ScrubbedSource src = scrub(content);
  std::vector<Finding> meta;
  std::vector<Suppression> suppressions = parse_suppressions(src.comments, meta);

  auto suppressed = [&](const std::string& rule) -> bool {
    for (auto& s : suppressions) {
      if (s.rule == rule) {
        s.used = true;
        return true;
      }
    }
    return false;
  };

  std::vector<Finding> findings;
  for (std::size_t i = 0; i < src.code.size(); ++i) {
    const std::string& line = src.code[i];
    if (line.empty()) continue;
    for (const Rule& rule : line_rules()) {
      if (!rule.applies(path)) continue;
      if (!std::regex_search(line, rule.pattern)) continue;
      if (suppressed(rule.id)) continue;
      findings.push_back({rule.id, i + 1, rule.message});
    }
  }

  // Header hygiene: #pragma once present, and no legacy #ifndef guard.
  if (is_header(path)) {
    static const std::regex pragma_once(R"(^\s*#\s*pragma\s+once\b)");
    static const std::regex ifndef_guard(R"(^\s*#\s*ifndef\s+\w*_(HPP|H)_?\b)");
    bool has_pragma = false;
    for (const auto& line : src.code) {
      if (std::regex_search(line, pragma_once)) {
        has_pragma = true;
        break;
      }
    }
    if (!has_pragma && !suppressed(kGuardRule)) {
      findings.push_back(
          {kGuardRule, 1,
           "header has no #pragma once (the project's one guard style)"});
    }
    for (std::size_t i = 0; i < src.code.size(); ++i) {
      if (std::regex_search(src.code[i], ifndef_guard)) {
        if (!suppressed(kGuardRule)) {
          findings.push_back(
              {kGuardRule, i + 1,
               "legacy #ifndef include guard; the project convention is "
               "#pragma once"});
        }
        break;
      }
    }
  }

  // A suppression that silenced nothing is itself a finding: stale
  // directives rot into blanket licenses to reintroduce the bug.
  for (const auto& s : suppressions) {
    if (!s.used) {
      meta.push_back({"unused-suppression", s.line,
                      "suppression of '" + s.rule +
                          "' matched no finding; delete the stale directive"});
    }
  }

  findings.insert(findings.end(), meta.begin(), meta.end());
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return a.line != b.line ? a.line < b.line : a.rule < b.rule;
            });
  return findings;
}

}  // namespace lcsf::lint
