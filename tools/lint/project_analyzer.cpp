#include "project_analyzer.hpp"

#include <algorithm>
#include <functional>
#include <set>
#include <sstream>

namespace lcsf::lint {

namespace {

const char* const kLayerRule = "layering-violation";
const char* const kCycleRule = "include-cycle";
const char* const kOrphanRule = "orphan-header";

bool starts_with(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool ends_with(const std::string& s, const char* suffix) {
  const std::string suf(suffix);
  return s.size() >= suf.size() &&
         s.compare(s.size() - suf.size(), suf.size(), suf) == 0;
}

std::string dirname_of(const std::string& path) {
  const std::size_t slash = path.rfind('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash);
}

/// Resolved include edge between two scanned files.
struct Edge {
  std::size_t from = 0;  ///< index into scans
  std::size_t to = 0;
  std::size_t line = 0;  ///< line of the #include in `from`
};

/// Resolve one include target against the scanned set, mirroring the
/// build's include directories: the src/ root, the includer's own
/// directory, the repo root -- then a unique-suffix fallback for
/// targets reached through per-target include paths (tests include
/// "lint_engine.hpp" via the lcsf_lint_engine PUBLIC include dir).
/// Returns scans.size() when the target is not a scanned file (system
/// and third-party headers).
std::size_t resolve_include(const std::map<std::string, std::size_t>& index,
                            const std::vector<FileScan>& scans,
                            const std::string& includer,
                            const std::string& target) {
  const std::string dir = dirname_of(includer);
  const std::string candidates[] = {
      "src/" + target,
      dir.empty() ? target : dir + "/" + target,
      target,
  };
  for (const std::string& c : candidates) {
    const auto it = index.find(c);
    if (it != index.end()) return it->second;
  }
  // Unique-suffix fallback, deterministic by construction: the index is
  // an ordered map, so the first match is the lexicographically
  // smallest path.
  const std::string suffix = "/" + target;
  for (const auto& [path, idx] : index) {
    if (ends_with(path, suffix.c_str())) return idx;
  }
  return scans.size();
}

std::string join_path(const std::vector<std::string>& parts) {
  std::string out;
  for (const std::string& p : parts) {
    if (!out.empty()) out += " -> ";
    out += p;
  }
  return out;
}

/// Iterative DFS cycle finder over an adjacency list. Calls `emit` with
/// each distinct elementary cycle found via a back edge (node indices,
/// first == last). Visit order is ascending node index, so the report
/// is deterministic.
void find_cycles(
    std::size_t n,
    const std::vector<std::vector<std::size_t>>& adj,
    const std::function<void(const std::vector<std::size_t>&)>& emit) {
  enum class Color { kWhite, kGray, kBlack };
  std::vector<Color> color(n, Color::kWhite);
  std::vector<std::size_t> stack;
  std::set<std::string> seen;  // canonicalized cycles already emitted

  // Recursive lambda via explicit stack of (node, next-child) frames.
  for (std::size_t root = 0; root < n; ++root) {
    if (color[root] != Color::kWhite) continue;
    std::vector<std::pair<std::size_t, std::size_t>> frames{{root, 0}};
    color[root] = Color::kGray;
    stack.push_back(root);
    while (!frames.empty()) {
      auto& [node, child] = frames.back();
      if (child < adj[node].size()) {
        const std::size_t next = adj[node][child++];
        if (color[next] == Color::kWhite) {
          color[next] = Color::kGray;
          stack.push_back(next);
          frames.push_back({next, 0});
        } else if (color[next] == Color::kGray) {
          // Back edge: the cycle is the stack suffix from `next`.
          const auto begin =
              std::find(stack.begin(), stack.end(), next);
          std::vector<std::size_t> cycle(begin, stack.end());
          cycle.push_back(next);
          // Canonical key: rotate so the smallest node leads, so the
          // same cycle entered elsewhere is not re-reported.
          std::vector<std::size_t> body(cycle.begin(), cycle.end() - 1);
          const auto min_it = std::min_element(body.begin(), body.end());
          std::rotate(body.begin(), min_it, body.end());
          std::string key;
          for (const std::size_t v : body) key += std::to_string(v) + ",";
          if (seen.insert(key).second) emit(cycle);
        }
      } else {
        color[node] = Color::kBlack;
        stack.pop_back();
        frames.pop_back();
      }
    }
  }
}

}  // namespace

LayerManifest parse_layers(const std::string& text) {
  LayerManifest m;
  int layer = 0;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream words(line);
    std::string word;
    bool any = false;
    while (words >> word) {
      any = true;
      if (!m.layer.emplace(word, layer).second) {
        m.error = "module '" + word + "' listed twice in the manifest";
        return m;
      }
    }
    if (any) ++layer;
  }
  if (m.layer.empty()) m.error = "manifest declares no layers";
  return m;
}

std::string module_of(const std::string& path) {
  if (starts_with(path, "src/")) {
    const std::size_t slash = path.find('/', 4);
    return slash == std::string::npos ? "src" : path.substr(4, slash - 4);
  }
  const std::size_t slash = path.find('/');
  return slash == std::string::npos ? path : path.substr(0, slash);
}

void analyze_project(std::vector<FileScan>& scans,
                     const LayerManifest& manifest) {
  std::map<std::string, std::size_t> index;
  for (std::size_t i = 0; i < scans.size(); ++i) index[scans[i].path] = i;

  // ------------------------------------------------------------------
  // Resolve the include edges once; every rule below walks this list.
  // ------------------------------------------------------------------
  std::vector<Edge> edges;
  std::vector<char> included(scans.size(), 0);
  for (std::size_t i = 0; i < scans.size(); ++i) {
    for (const Include& inc : scans[i].includes) {
      const std::size_t to =
          resolve_include(index, scans, scans[i].path, inc.target);
      if (to >= scans.size() || to == i) continue;
      edges.push_back({i, to, inc.line});
      included[to] = 1;
    }
  }

  // ------------------------------------------------------------------
  // layering-violation: every edge must point sideways or down.
  // ------------------------------------------------------------------
  std::set<std::string> unknown_reported;
  auto report_unknown_module = [&](const std::string& mod, const Edge& e) {
    if (!unknown_reported.insert(mod).second) return;
    attach_finding(scans[e.from],
                   {kLayerRule, e.line,
                    "module '" + mod +
                        "' is not in the layering manifest "
                        "(tools/lint/layers.txt); add it to a layer",
                    scans[e.from].path,
                    {scans[e.from].path, scans[e.to].path},
                    false});
  };
  for (const Edge& e : edges) {
    const std::string from_mod = module_of(scans[e.from].path);
    const std::string to_mod = module_of(scans[e.to].path);
    const auto from_it = manifest.layer.find(from_mod);
    const auto to_it = manifest.layer.find(to_mod);
    if (from_it == manifest.layer.end()) report_unknown_module(from_mod, e);
    if (to_it == manifest.layer.end()) report_unknown_module(to_mod, e);
    if (from_it == manifest.layer.end() || to_it == manifest.layer.end()) {
      continue;
    }
    if (to_it->second > from_it->second) {
      attach_finding(
          scans[e.from],
          {kLayerRule, e.line,
           "layering violation: module '" + from_mod + "' (layer " +
               std::to_string(from_it->second) + ") includes module '" +
               to_mod + "' (layer " + std::to_string(to_it->second) +
               "): " + scans[e.from].path + " -> " + scans[e.to].path +
               "; dependencies must point down the manifest "
               "(tools/lint/layers.txt)",
           scans[e.from].path,
           {scans[e.from].path, scans[e.to].path},
           false});
    }
  }

  // ------------------------------------------------------------------
  // include-cycle, file level.
  // ------------------------------------------------------------------
  std::vector<std::vector<std::size_t>> adj(scans.size());
  std::map<std::pair<std::size_t, std::size_t>, std::size_t> edge_line;
  for (const Edge& e : edges) {
    adj[e.from].push_back(e.to);
    edge_line.emplace(std::make_pair(e.from, e.to), e.line);
  }
  for (auto& a : adj) std::sort(a.begin(), a.end());
  find_cycles(scans.size(), adj, [&](const std::vector<std::size_t>& cycle) {
    std::vector<std::string> path;
    for (const std::size_t v : cycle) path.push_back(scans[v].path);
    const std::size_t from = cycle[cycle.size() - 2];
    const std::size_t to = cycle.back();
    attach_finding(scans[from],
                   {kCycleRule, edge_line[{from, to}],
                    "include cycle: " + join_path(path) +
                        "; break the cycle by splitting the shared "
                        "declarations into a lower header",
                    scans[from].path, path, false});
  });

  // ------------------------------------------------------------------
  // include-cycle, module level (collapsed graph, self-edges dropped).
  // Same-layer modules may include each other pairwise-acyclically;
  // this catches the mutual case the layering rule cannot.
  // ------------------------------------------------------------------
  std::vector<std::string> modules;
  std::map<std::string, std::size_t> module_index;
  for (const FileScan& s : scans) {
    const std::string mod = module_of(s.path);
    if (module_index.emplace(mod, modules.size()).second) {
      modules.push_back(mod);
    }
  }
  std::vector<std::set<std::size_t>> module_adj_set(modules.size());
  // Representative file edge for each module edge, for the report.
  std::map<std::pair<std::size_t, std::size_t>, Edge> module_edge_rep;
  for (const Edge& e : edges) {
    const std::size_t a = module_index[module_of(scans[e.from].path)];
    const std::size_t b = module_index[module_of(scans[e.to].path)];
    if (a == b) continue;
    if (module_adj_set[a].insert(b).second) {
      module_edge_rep.emplace(std::make_pair(a, b), e);
    }
  }
  std::vector<std::vector<std::size_t>> module_adj(modules.size());
  for (std::size_t i = 0; i < modules.size(); ++i) {
    module_adj[i].assign(module_adj_set[i].begin(), module_adj_set[i].end());
  }
  find_cycles(modules.size(), module_adj,
              [&](const std::vector<std::size_t>& cycle) {
                std::vector<std::string> path;
                for (const std::size_t v : cycle) path.push_back(modules[v]);
                const Edge& rep = module_edge_rep[{cycle[cycle.size() - 2],
                                                   cycle.back()}];
                attach_finding(
                    scans[rep.from],
                    {kCycleRule, rep.line,
                     "module-level include cycle: " + join_path(path) +
                         " (witness edge " + scans[rep.from].path + " -> " +
                         scans[rep.to].path +
                         "); modules must form a DAG even within one layer",
                     scans[rep.from].path, path, false});
              });

  // ------------------------------------------------------------------
  // orphan-header: src/ and tools/ headers nothing includes.
  // ------------------------------------------------------------------
  for (std::size_t i = 0; i < scans.size(); ++i) {
    const std::string& path = scans[i].path;
    if (!ends_with(path, ".hpp")) continue;
    if (!starts_with(path, "src/") && !starts_with(path, "tools/")) continue;
    if (included[i]) continue;
    attach_finding(scans[i],
                   {kOrphanRule, 1,
                    "orphan header: no scanned file includes '" + path +
                        "'; delete it or wire it into the build",
                    path,
                    {},
                    false});
  }
}

}  // namespace lcsf::lint
