// Pass 2 of lcsf_lint: project-wide include-graph analysis.
//
// Pass 1 (lint_engine.hpp) sees one file at a time; this pass sees the
// whole scanned tree. It resolves every quoted `#include` to a scanned
// file, collapses files to modules (src/<dir>, tools, bench, tests),
// and enforces:
//   * layering-violation -- the explicit layering manifest
//     tools/lint/layers.txt assigns each module a layer; an include
//     edge may only point into the same or a lower layer. This is what
//     keeps `stats` reusable without dragging the analyzers in, and the
//     engine modules ignorant of the drivers above them.
//   * include-cycle -- the file-level include graph and the collapsed
//     module graph must both be acyclic; the finding carries the whole
//     offending cycle as an edge path.
//   * orphan-header -- a src/ or tools/ header no scanned file includes
//     is dead surface area (or a build-system wiring bug).
//
// Findings are attached to the owning FileScan through
// attach_finding(), so the file-scope suppression mechanism applies to
// these rules exactly as it does to the per-file ones.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "lint_engine.hpp"

namespace lcsf::lint {

/// Parsed layering manifest: module -> layer index (0 = foundation).
/// Manifest syntax: one layer per line, lowest first, modules separated
/// by spaces; '#' starts a comment. Modules sharing a line share a
/// layer and may include each other (the cycle rules still apply).
struct LayerManifest {
  std::map<std::string, int> layer;
  std::string error;  ///< non-empty when the manifest failed to parse
};
LayerManifest parse_layers(const std::string& text);

/// The module a repo-relative path belongs to: "src/mor/pact.hpp" ->
/// "mor", "tools/lint/lint_engine.cpp" -> "tools", "bench/x.cpp" ->
/// "bench", "tests/x.cpp" -> "tests".
std::string module_of(const std::string& path);

/// Run the cross-file passes over all scans, appending findings to the
/// owning scans. Scans must come from pass 1 (scan_file) and must not
/// yet be finalized -- this pass consumes suppressions too.
void analyze_project(std::vector<FileScan>& scans,
                     const LayerManifest& manifest);

}  // namespace lcsf::lint
