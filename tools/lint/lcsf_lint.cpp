// lcsf_lint: project-invariant static analysis driver.
//
// Scans src/, tools/, bench/ and tests/ for violations of the
// invariants the compiler cannot see (deterministic RNG streams,
// classified failure paths, exact float comparisons, pooled
// parallelism, header hygiene) and exits non-zero on any finding.
// Registered as the `lcsf_lint` ctest (label: lint), so the invariants
// are enforced on every `ctest` run; see docs/static_analysis.md.
//
// Usage:
//   lcsf_lint [--root <repo-root>] [--list-rules] [paths...]
//
// `paths` (repo-relative files or directories) restrict the scan; the
// default is the four standard trees.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint_engine.hpp"

namespace fs = std::filesystem;

namespace {

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp";
}

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void collect(const fs::path& root, const fs::path& arg,
             std::vector<fs::path>& files) {
  const fs::path full = root / arg;
  if (fs::is_regular_file(full)) {
    if (lintable(full)) files.push_back(arg);
    return;
  }
  if (!fs::is_directory(full)) return;
  for (const auto& entry : fs::recursive_directory_iterator(full)) {
    if (!entry.is_regular_file() || !lintable(entry.path())) continue;
    files.push_back(fs::relative(entry.path(), root));
  }
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = ".";
  std::vector<fs::path> args;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (a == "--list-rules") {
      for (const auto& r : lcsf::lint::rules()) {
        std::printf("%-24s %s\n", r.id, r.summary);
      }
      return 0;
    } else if (a == "--help" || a == "-h") {
      std::printf("usage: lcsf_lint [--root <dir>] [--list-rules] "
                  "[paths...]\n");
      return 0;
    } else {
      args.emplace_back(a);
    }
  }
  if (args.empty()) {
    args = {"src", "tools", "bench", "tests"};
  }

  std::vector<fs::path> files;
  for (const auto& a : args) collect(root, a, files);
  std::sort(files.begin(), files.end());

  std::size_t total = 0;
  for (const auto& rel : files) {
    const std::string path = rel.generic_string();
    const auto findings = lcsf::lint::lint_source(path, read_file(root / rel));
    for (const auto& f : findings) {
      std::printf("%s:%zu: [%s] %s\n", path.c_str(), f.line, f.rule.c_str(),
                  f.message.c_str());
    }
    total += findings.size();
  }
  if (total > 0) {
    std::printf("lcsf_lint: %zu finding(s) in %zu file(s) scanned\n", total,
                files.size());
    return 1;
  }
  std::printf("lcsf_lint: clean (%zu files scanned)\n", files.size());
  return 0;
}
