// lcsf_lint: project-invariant static analysis driver (v2, multi-pass).
//
// Pass 1 scans src/, tools/, bench/ and tests/ file by file for
// violations of the invariants the compiler cannot see (deterministic
// RNG streams, classified failure paths, exact float comparisons,
// pooled parallelism, hash-order iteration, wall-clock reads, header
// hygiene). Pass 2 analyzes the project include graph: the module
// layering manifest (tools/lint/layers.txt), include cycles, and
// orphan headers. Registered as the `lcsf_lint` ctest (label: lint),
// so the invariants are enforced on every `ctest` run; see
// docs/static_analysis.md.
//
// Usage:
//   lcsf_lint [--root <repo-root>] [--list-rules] [--json] [paths...]
//
// `paths` (repo-relative files or directories) restrict the scan to
// pass 1 only -- the include-graph rules need the whole tree, so they
// run exclusively on the default full scan. `--json` emits the
// versioned lcsf-lint-v2 findings document (suppressed findings
// included, status flagged) and always exits 0 on a successful scan:
// the baseline comparison (tools/lint_compare.py) owns the verdict in
// that mode.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint_engine.hpp"
#include "project_analyzer.hpp"

namespace fs = std::filesystem;

namespace {

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp";
}

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void collect(const fs::path& root, const fs::path& arg,
             std::vector<fs::path>& files) {
  const fs::path full = root / arg;
  if (fs::is_regular_file(full)) {
    if (lintable(full)) files.push_back(arg);
    return;
  }
  if (!fs::is_directory(full)) return;
  for (const auto& entry : fs::recursive_directory_iterator(full)) {
    if (!entry.is_regular_file() || !lintable(entry.path())) continue;
    files.push_back(fs::relative(entry.path(), root));
  }
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = ".";
  bool json = false;
  std::vector<fs::path> args;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (a == "--list-rules") {
      for (const auto& r : lcsf::lint::rules()) {
        std::printf("%-28s %s\n", r.id, r.summary);
      }
      return 0;
    } else if (a == "--json") {
      json = true;
    } else if (a == "--help" || a == "-h") {
      std::printf(
          "usage: lcsf_lint [--root <dir>] [--list-rules] [--json] "
          "[paths...]\n"
          "  --json emits the lcsf-lint-v2 findings document on stdout\n"
          "  explicit paths restrict the scan to the per-file rules\n");
      return 0;
    } else {
      args.emplace_back(a);
    }
  }
  const bool full_scan = args.empty();
  if (full_scan) {
    args = {"src", "tools", "bench", "tests"};
  }

  std::vector<fs::path> files;
  for (const auto& a : args) collect(root, a, files);
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  std::vector<lcsf::lint::FileScan> scans;
  scans.reserve(files.size());
  for (const auto& rel : files) {
    const std::string path = rel.generic_string();
    scans.push_back(lcsf::lint::scan_file(path, read_file(root / rel)));
  }

  // Pass 2 needs every include edge in the tree; a restricted scan
  // would misreport orphans and miss cross-file edges, so it only runs
  // on the full default scan.
  if (full_scan) {
    const fs::path manifest_path = root / "tools" / "lint" / "layers.txt";
    const lcsf::lint::LayerManifest manifest =
        lcsf::lint::parse_layers(read_file(manifest_path));
    if (!manifest.error.empty()) {
      std::fprintf(stderr, "lcsf_lint: %s: %s\n",
                   manifest_path.generic_string().c_str(),
                   manifest.error.c_str());
      return 2;
    }
    lcsf::lint::analyze_project(scans, manifest);
  }

  for (auto& scan : scans) lcsf::lint::finalize_scan(scan);

  if (json) {
    const std::string doc = lcsf::lint::findings_to_json(scans);
    std::fwrite(doc.data(), 1, doc.size(), stdout);
    return 0;
  }

  std::size_t active = 0;
  for (const auto& scan : scans) {
    for (const auto& f : scan.findings) {
      if (f.suppressed) continue;
      ++active;
      std::printf("%s:%zu: [%s] %s\n", f.file.c_str(), f.line,
                  f.rule.c_str(), f.message.c_str());
    }
  }
  if (active > 0) {
    std::printf("lcsf_lint: %zu finding(s) in %zu file(s) scanned\n", active,
                scans.size());
    return 1;
  }
  std::printf("lcsf_lint: clean (%zu files scanned)\n", scans.size());
  return 0;
}
