#!/usr/bin/env bash
# Static-analysis runner: the custom lcsf_lint pass plus (when the
# binary exists on PATH) clang-tidy over the compilation database.
# Degrades gracefully: a machine without clang-tidy still runs the
# project-invariant rules and exits by their verdict alone.
#
# Usage: tools/lint.sh [build-dir]           (default: build)
#        LCSF_CLANG_TIDY=/path/to/clang-tidy tools/lint.sh
#
# See docs/static_analysis.md for the rule catalogue.
set -u
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
FAILED=0

# ---- configure (once) -----------------------------------------------
if [ ! -f "$BUILD_DIR/CMakeCache.txt" ]; then
  echo "lint.sh: configuring $BUILD_DIR"
  cmake -B "$BUILD_DIR" -S . > /dev/null || exit 1
fi

# ---- custom project-invariant pass ----------------------------------
echo "lint.sh: building lcsf_lint"
cmake --build "$BUILD_DIR" --target lcsf_lint -j > /dev/null || exit 1
if "$BUILD_DIR/tools/lint/lcsf_lint" --root .; then
  echo "lint.sh: lcsf_lint OK"
else
  FAILED=1
fi

# ---- machine-readable findings gate ---------------------------------
# Schema-validates the lcsf-lint-v2 document and diffs it against the
# checked-in baseline: new (rule, file) findings and suppression-budget
# growth both fail, even when the finding itself is suppressed.
if tools/lint_gate.sh "$BUILD_DIR/tools/lint/lcsf_lint" .; then
  echo "lint.sh: findings baseline OK (tools/lint_baseline.json)"
else
  FAILED=1
fi

# ---- clang-tidy (optional) ------------------------------------------
TIDY="${LCSF_CLANG_TIDY:-clang-tidy}"
if command -v "$TIDY" > /dev/null 2>&1; then
  DB="$BUILD_DIR/compile_commands.json"
  if [ ! -f "$DB" ]; then
    echo "lint.sh: no compile_commands.json in $BUILD_DIR; reconfigure" >&2
    exit 1
  fi
  echo "lint.sh: running $TIDY over the compilation database"
  # First-party TUs only: the database also holds example/bench targets
  # whose third-party headers are not ours to fix.
  FILES=$(find src tools bench tests -name '*.cpp' | sort)
  if "$TIDY" -p "$BUILD_DIR" --quiet $FILES; then
    echo "lint.sh: clang-tidy OK"
  else
    FAILED=1
  fi
else
  echo "lint.sh: clang-tidy not installed; skipping the clang-tidy pass" \
       "(the lcsf_lint verdict above still gates)"
fi

exit $FAILED
