#!/usr/bin/env bash
# One-command sanitizer run: configure a dedicated build tree with
# LCSF_SANITIZE, build everything, and run the full ctest suite under the
# instrumented binaries.
#
#   tools/sanitize.sh                 # address,undefined (the default)
#   tools/sanitize.sh thread          # TSan instead
#   tools/sanitize.sh address         # a single sanitizer
#
# The build tree is build-san-<sanitizers> next to the regular build/, so
# sanitizer runs never dirty the primary configuration. Any additional
# arguments are forwarded to ctest (e.g. tools/sanitize.sh '' -R FailSoft).
set -eu
cd "$(dirname "$0")/.."

san="${1:-address,undefined}"
[ -z "$san" ] && san="address,undefined"
shift $(( $# > 0 ? 1 : 0 ))

builddir="build-san-$(printf '%s' "$san" | tr ',' '-')"

cmake -B "$builddir" -S . -DLCSF_SANITIZE="$san" \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$builddir" -j"$(nproc 2>/dev/null || echo 4)"

# Make sanitizer findings fatal and loud.
export ASAN_OPTIONS="${ASAN_OPTIONS:-abort_on_error=1:detect_leaks=0}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}"

ctest --test-dir "$builddir" --output-on-failure "$@"
echo "sanitize.sh: ctest clean under -fsanitize=$san"
