#!/usr/bin/env bash
# Documentation lint, runnable standalone or as the `doc_lint` ctest:
#   1. every relative markdown link in README.md and docs/*.md resolves;
#   2. the required docs/ guides exist and are linked from README.md;
#   3. every `--flag` a doc mentions exists in the tools/ sources (so a
#      renamed CLI flag cannot leave stale instructions behind);
#   4. every docs/*.md file is reachable from README.md by following
#      relative markdown links (no orphaned guides);
#   5. if doxygen is installed, the Doxyfile builds warning-free.
# Exits non-zero on the first failure class, printing every offender.
set -u
cd "$(dirname "$0")/.."

fail=0

required_docs="docs/architecture.md docs/monte_carlo.md docs/stabilization.md docs/robustness.md docs/yield_estimation.md"
for doc in $required_docs; do
  if [ ! -f "$doc" ]; then
    echo "doc-lint: missing required guide: $doc"
    fail=1
  fi
  if ! grep -q "$doc" README.md; then
    echo "doc-lint: README.md does not link $doc"
    fail=1
  fi
done

# Relative markdown links: [text](target). Skips http(s), mailto and
# pure-anchor links; strips #fragments before the existence check.
check_links() {
  file="$1"
  dir=$(dirname "$file")
  grep -o '](\([^)]*\))' "$file" | sed 's/^](//; s/)$//' |
    while IFS= read -r target; do
      case "$target" in
        http://*|https://*|mailto:*|\#*) continue ;;
      esac
      path="${target%%#*}"
      [ -z "$path" ] && continue
      if [ ! -e "$dir/$path" ] && [ ! -e "$path" ]; then
        echo "doc-lint: $file -> broken link: $target"
      fi
    done
}

broken=$( { check_links README.md
            for f in docs/*.md; do check_links "$f"; done; } )
if [ -n "$broken" ]; then
  echo "$broken"
  fail=1
fi

# CLI-flag existence: every --flag token the docs mention must appear in
# a tools/ source (C++ CLI, shell, or python). Flags owned by external
# programs (ctest, cmake, gtest binaries) are allowlisted.
external_flags="--gtest_filter --test-dir --output-on-failure --build --target"
doc_flags=$(grep -rhoE -- '--[a-z][a-z0-9_-]*' README.md docs/*.md | sort -u)
for flag in $doc_flags; do
  case " $external_flags " in
    *" $flag "*) continue ;;
  esac
  if ! grep -rqF -- "$flag" tools/; then
    echo "doc-lint: flag $flag mentioned in docs but absent from tools/"
    fail=1
  fi
done

# Reachability: walk relative markdown links from README.md to a fixpoint
# and require every docs/*.md to be visited.
reachable="README.md"
frontier="README.md"
while [ -n "$frontier" ]; do
  next=""
  for file in $frontier; do
    dir=$(dirname "$file")
    targets=$(grep -o '](\([^)]*\))' "$file" 2> /dev/null |
                sed 's/^](//; s/)$//; s/#.*$//')
    for target in $targets; do
      case "$target" in
        http://*|https://*|mailto:*|"") continue ;;
      esac
      if [ -f "$dir/$target" ]; then
        resolved="$dir/$target"
      elif [ -f "$target" ]; then
        resolved="$target"
      else
        continue  # broken links already reported above
      fi
      resolved=$(realpath --relative-to=. "$resolved")
      case " $reachable " in
        *" $resolved "*) ;;
        *) reachable="$reachable $resolved"; next="$next $resolved" ;;
      esac
    done
  done
  frontier="$next"
done
for doc in docs/*.md; do
  case " $reachable " in
    *" $doc "*) ;;
    *)
      echo "doc-lint: $doc is not reachable from README.md"
      fail=1
      ;;
  esac
done

if command -v doxygen > /dev/null 2>&1; then
  out=$(doxygen Doxyfile 2>&1)
  status=$?
  warnings=$(printf '%s\n' "$out" | grep -i 'warning' || true)
  if [ $status -ne 0 ] || [ -n "$warnings" ]; then
    echo "doc-lint: doxygen failed or warned:"
    printf '%s\n' "$out" | tail -30
    fail=1
  else
    echo "doc-lint: doxygen build clean"
  fi
else
  echo "doc-lint: doxygen not installed, skipping API-reference build"
fi

if [ $fail -eq 0 ]; then
  echo "doc-lint: OK"
fi
exit $fail
