#!/usr/bin/env bash
# Full local CI matrix: everything the tree gates on, in one command.
#
#   release   : plain optimized build + full ctest suite
#   asan-ubsan: LCSF_SANITIZE=address,undefined build + full ctest suite
#   tsan      : LCSF_SANITIZE=thread build + full ctest suite (includes
#               the dedicated test_tsan_stress workload)
#   obs       : observability smoke -- lcsf_sta/lcsf_sim --metrics on the
#               example workloads, schema-validated by
#               tools/check_metrics.py, plus the CLI-level witness that
#               the deterministic metrics are thread-count invariant
#   serve     : analysis-server conformance -- a live lcsf_serve driven
#               through the lcsf-serve-v1 battery of tools/check_serve.py
#               (byte-identical cold/warm responses, thread-count
#               invariance, classified errors), metrics export validated
#   doc-lint  : documentation link/anchor checker
#   lcsf-lint : project-invariant static analysis via tools/lint.sh --
#               the per-file rules, the include-graph pass (layering
#               manifest, cycles, orphan headers), the lcsf-lint-v2
#               JSON document gated by schema + baseline + suppression
#               budget (tools/lint_compare.py), and clang-tidy when
#               installed
#
# Each stage runs to completion even after earlier failures so one pass
# reports everything; the summary table at the end and the exit status
# give the verdict. Build trees: build-ci-<stage>/.
#
# Usage: tools/ci.sh [-j N]
set -u
cd "$(dirname "$0")/.."

JOBS=$(nproc 2> /dev/null || echo 4)
while getopts "j:" opt; do
  case "$opt" in
    j) JOBS="$OPTARG" ;;
    *) echo "usage: tools/ci.sh [-j N]" >&2; exit 2 ;;
  esac
done

STAGES=()
RESULTS=()

record() { # name status
  STAGES+=("$1")
  RESULTS+=("$2")
}

# run_build_stage <name> <build-dir> <cmake-extra...>
run_build_stage() {
  local name="$1" dir="$2"
  shift 2
  echo
  echo "==== stage: $name ===="
  if cmake -B "$dir" -S . "$@" \
      && cmake --build "$dir" -j "$JOBS" \
      && ctest --test-dir "$dir" -j "$JOBS" --output-on-failure; then
    record "$name" PASS
  else
    record "$name" FAIL
  fi
}

run_build_stage release build-ci-release
run_build_stage asan-ubsan build-ci-asan -DLCSF_SANITIZE=address,undefined
run_build_stage tsan build-ci-tsan -DLCSF_SANITIZE=thread

echo
echo "==== stage: bench-quick ===="
# Hot-path perf gate: run the pooled-vs-baseline-vs-batched Monte-Carlo
# bench in quick mode (few samples, noisy) and require both the pooled
# engine and the batched SoA engine to stay comfortably ahead. Full-mode
# acceptance floors are 1.5x (pooled vs baseline) and 1.3x (batched vs
# pooled), held against the checked-in BENCH_hotpath.json; quick mode
# uses 1.2x / 1.15x to absorb short-run jitter. Quick mode runs half the
# transient steps per sample (the fixed per-sample setup cost weighs
# differently), so quick ratios are not comparable to the full-mode
# ratios within a tight tolerance -- quick holds floors only, and the
# checked-in full-mode file holds the acceptance floors. See
# docs/performance.md.
BENCH_JSON=build-ci-release/BENCH_hotpath.json
BENCH_IS_JSON=build-ci-release/BENCH_yield_is.json
# Importance-sampling estimator gate: even the quick run must beat plain
# Monte Carlo by >= 5x effective samples at matched variance and land
# inside the MC reference's 95% band (docs/yield_estimation.md). The
# same floors hold for the checked-in full-mode BENCH_yield_is.json.
BENCH_GRAPH_JSON=build-ci-release/BENCH_sta_graph.json
# Multi-path graph engine gate: memoizing shared stages must beat the
# per-path re-simulation baseline by >= 1.5x (docs/timing_graph.md). The
# ratio is dominated by the stage-simulation count, not timer jitter, so
# quick mode holds the full acceptance floor.
BENCH_SERVE_JSON=build-ci-release/BENCH_serve.json
# Analysis-server cache gate (docs/serving.md): a warm `load` (a
# DesignCache hit) must beat the cold characterizing load by >= 5x on
# the checked-in full-mode BENCH_serve.json; the quick run holds a 3x
# floor because its cold load is sub-millisecond and jittery. The bench
# itself exits nonzero if any response byte differs cold-vs-warm or
# across the client fleet.
if cmake --build build-ci-release -j "$JOBS" --target bench_hotpath \
    && cmake --build build-ci-release -j "$JOBS" --target bench_yield_is \
    && cmake --build build-ci-release -j "$JOBS" --target bench_sta_graph \
    && cmake --build build-ci-release -j "$JOBS" --target bench_serve \
    && LCSF_BENCH_QUICK=1 build-ci-release/bench/bench_hotpath "$BENCH_JSON" \
    && python3 tools/bench_compare.py --check "$BENCH_JSON" \
         --min speedup=1.2 --min batched_speedup_vs_pooled=1.15 \
    && python3 tools/bench_compare.py --check BENCH_hotpath.json \
         --min speedup=1.5 --min batched_speedup_vs_pooled=1.3 \
    && LCSF_BENCH_QUICK=1 build-ci-release/bench/bench_yield_is \
         "$BENCH_IS_JSON" \
    && python3 tools/bench_compare.py --check "$BENCH_IS_JSON" \
         --min ess_speedup=5 --min is_within_mc_ci=1 \
    && python3 tools/bench_compare.py --check BENCH_yield_is.json \
         --min ess_speedup=5 --min is_within_mc_ci=1 \
    && LCSF_BENCH_QUICK=1 build-ci-release/bench/bench_sta_graph \
         "$BENCH_GRAPH_JSON" \
    && python3 tools/bench_compare.py --check "$BENCH_GRAPH_JSON" \
         --min speedup=1.5 \
    && python3 tools/bench_compare.py --check BENCH_sta_graph.json \
         --min speedup=1.5 \
    && LCSF_BENCH_QUICK=1 build-ci-release/bench/bench_serve \
         "$BENCH_SERVE_JSON" \
    && python3 tools/bench_compare.py --check "$BENCH_SERVE_JSON" \
         --min warm_speedup=3 \
    && python3 tools/bench_compare.py --check BENCH_serve.json \
         --min warm_speedup=5; then
  record bench-quick PASS
else
  record bench-quick FAIL
fi

echo
echo "==== stage: obs ===="
# Observability smoke: the CLIs must emit schema-valid metrics with the
# engine counters populated, and the deterministic projection must be
# bitwise identical across thread counts (docs/observability.md). The
# batched Monte-Carlo runs use --samples 11 --batch 4 so the dispatch
# has both full blocks and a scalar remainder (2 batches + 3 singleton
# samples), and must stay deterministic across 1/2/8 worker threads at
# that fixed batch width (docs/performance.md).
OBS_DIR=build-ci-release/obs-ci
STA=build-ci-release/tools/lcsf_sta
SIM=build-ci-release/tools/lcsf_sim
if mkdir -p "$OBS_DIR" \
    && "$STA" --circuit s27 --samples 16 --seed 3 --threads 1 \
         --metrics "$OBS_DIR/sta_t1.json" > /dev/null \
    && "$STA" --circuit s27 --samples 16 --seed 3 --threads 8 \
         --metrics "$OBS_DIR/sta_t8.json" > /dev/null \
    && "$STA" --circuit s27 --samples 11 --seed 3 --threads 1 --batch 4 \
         --metrics "$OBS_DIR/sta_b4_t1.json" > /dev/null \
    && "$STA" --circuit s27 --samples 11 --seed 3 --threads 2 --batch 4 \
         --metrics "$OBS_DIR/sta_b4_t2.json" > /dev/null \
    && "$STA" --circuit s27 --samples 11 --seed 3 --threads 8 --batch 4 \
         --metrics "$OBS_DIR/sta_b4_t8.json" > /dev/null \
    && "$STA" --circuit s27 --samples 16 --seed 3 --threads 1 \
         --yield-estimator is --is-pilot 8 \
         --metrics "$OBS_DIR/sta_is_t1.json" > /dev/null \
    && "$STA" --circuit s27 --samples 16 --seed 3 --threads 8 \
         --yield-estimator is --is-pilot 8 \
         --metrics "$OBS_DIR/sta_is_t8.json" > /dev/null \
    && "$STA" --circuit s27 --graph --top-k 8 --samples 8 --seed 3 \
         --threads 1 --metrics "$OBS_DIR/sta_graph_t1.json" > /dev/null \
    && "$STA" --circuit s27 --graph --top-k 8 --samples 8 --seed 3 \
         --threads 8 --metrics "$OBS_DIR/sta_graph_t8.json" > /dev/null \
    && "$SIM" examples/decks/inverter_chain.sp --tstop 1n --dt 2p \
         --points 2 --metrics "$OBS_DIR/sim.json" > /dev/null \
    && python3 tools/check_metrics.py --schema tools/metrics_schema.json \
         "$OBS_DIR/sta_t1.json" "$OBS_DIR/sta_t8.json" \
         --require stats.mc.samples --require teta.transients \
         --require mor.rom_evaluations \
    && python3 tools/check_metrics.py --schema tools/metrics_schema.json \
         "$OBS_DIR/sta_b4_t1.json" "$OBS_DIR/sta_b4_t2.json" \
         "$OBS_DIR/sta_b4_t8.json" \
         --require stats.mc.batches \
         --require stats.mc.batch_remainder_samples \
    && python3 tools/check_metrics.py --schema tools/metrics_schema.json \
         "$OBS_DIR/sta_is_t1.json" "$OBS_DIR/sta_is_t8.json" \
         --require stats.yield_is.samples \
         --require stats.yield_is.pilot_samples \
    && python3 tools/check_metrics.py --schema tools/metrics_schema.json \
         "$OBS_DIR/sta_graph_t1.json" "$OBS_DIR/sta_graph_t8.json" \
         --require stats.graph.paths \
         --require stats.graph.stages_simulated \
         --require stats.graph.stage_cache_hits \
         --require stats.graph.merges \
    && python3 tools/check_metrics.py --schema tools/metrics_schema.json \
         "$OBS_DIR/sim.json" \
         --require spice.newton_iterations --require parser.devices \
    && python3 tools/check_metrics.py --diff-deterministic \
         "$OBS_DIR/sta_t1.json" "$OBS_DIR/sta_t8.json" \
    && python3 tools/check_metrics.py --diff-deterministic \
         "$OBS_DIR/sta_b4_t1.json" "$OBS_DIR/sta_b4_t2.json" \
    && python3 tools/check_metrics.py --diff-deterministic \
         "$OBS_DIR/sta_b4_t1.json" "$OBS_DIR/sta_b4_t8.json" \
    && python3 tools/check_metrics.py --diff-deterministic \
         "$OBS_DIR/sta_is_t1.json" "$OBS_DIR/sta_is_t8.json" \
    && python3 tools/check_metrics.py --diff-deterministic \
         "$OBS_DIR/sta_graph_t1.json" "$OBS_DIR/sta_graph_t8.json"; then
  record obs PASS
else
  record obs FAIL
fi

echo
echo "==== stage: serve ===="
# Analysis-server conformance (docs/serving.md): start lcsf_serve on an
# ephemeral port, run the lcsf-serve-v1 battery from check_serve.py
# (cold/warm byte-identity, thread-count invariance of analysis
# payloads, classified error responses, live metrics), then validate
# the --metrics export against the metrics schema with the serve.*
# counters populated.
SERVE=build-ci-release/tools/lcsf_serve
SERVE_DIR=build-ci-release/serve-ci
serve_stage() {
  mkdir -p "$SERVE_DIR" || return 1
  : > "$SERVE_DIR/server.out"
  "$SERVE" --port 0 --workers 4 --cache-mb 64 \
      --metrics "$SERVE_DIR/metrics.json" > "$SERVE_DIR/server.out" 2>&1 &
  local pid=$! port="" i
  for i in $(seq 1 100); do
    port=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9][0-9]*\)$/\1/p' \
        "$SERVE_DIR/server.out")
    [ -n "$port" ] && break
    sleep 0.1
  done
  if [ -z "$port" ]; then
    echo "serve: server never announced its port" >&2
    kill "$pid" 2> /dev/null
    return 1
  fi
  if ! python3 tools/check_serve.py --port "$port" --battery --shutdown; then
    kill "$pid" 2> /dev/null
    return 1
  fi
  wait "$pid" || return 1
  python3 tools/check_metrics.py --schema tools/metrics_schema.json \
      "$SERVE_DIR/metrics.json" \
      --require serve.requests --require serve.cache.hits \
      --require serve.cache.misses
}
if serve_stage; then
  record serve PASS
else
  record serve FAIL
fi

echo
echo "==== stage: doc-lint ===="
if ctest --test-dir build-ci-release -R '^doc_lint$' --output-on-failure; then
  record doc-lint PASS
else
  record doc-lint FAIL
fi

echo
echo "==== stage: lcsf-lint ===="
if tools/lint.sh build-ci-release; then
  record lcsf-lint PASS
else
  record lcsf-lint FAIL
fi

echo
echo "==== summary ===="
FAILED=0
for i in "${!STAGES[@]}"; do
  printf '  %-12s %s\n' "${STAGES[$i]}" "${RESULTS[$i]}"
  [ "${RESULTS[$i]}" = FAIL ] && FAILED=1
done
exit $FAILED
