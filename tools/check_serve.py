#!/usr/bin/env python3
"""Protocol checker / client for the lcsf-serve-v1 analysis server.

Stdlib-only. Connects to a running lcsf_serve instance, sends NDJSON
requests, and validates every response line against the machine-readable
contract in tools/serve_schema.json (docs/serving.md).

Modes (combinable; all requests go over one connection, in order):

  --request JSON     send one ad-hoc request line, validate + print the
                     response (repeatable)
  --battery          run the built-in conformance battery against
                     --circuit: cold/warm byte-identity of `load`,
                     thread-count invariance of `monte_carlo` payloads,
                     classified error responses, and a schema-valid
                     `metrics` response with populated cache counters
  --shutdown         finish by sending {"type":"shutdown"}

Exit status: 0 when every response validates (and the battery, if
requested, holds), 1 otherwise.

Usage:
  tools/check_serve.py --port 4100 --battery --shutdown
  tools/check_serve.py --port 4100 --request '{"id":1,"type":"load","circuit":"s27"}'
"""

import argparse
import json
import os
import socket
import sys

FAILED = False


def fail(msg):
    global FAILED
    FAILED = True
    print(f"check_serve: FAIL: {msg}", file=sys.stderr)


class Connection:
    """One NDJSON connection: send a line, read one response line."""

    def __init__(self, host, port):
        self.sock = socket.create_connection((host, port), timeout=300)
        self.buf = b""

    def request(self, line):
        self.sock.sendall(line.encode() + b"\n")
        while b"\n" not in self.buf:
            chunk = self.sock.recv(65536)
            if not chunk:
                raise ConnectionError("server closed the connection")
            self.buf += chunk
        resp, self.buf = self.buf.split(b"\n", 1)
        return resp.decode()


def type_ok(value, kind):
    if kind == "scalar":
        return isinstance(value, (str, int)) and not isinstance(value, bool)
    if kind == "string":
        return isinstance(value, str)
    if kind == "boolean":
        return isinstance(value, bool)
    if kind == "integer":
        return isinstance(value, int) and not isinstance(value, bool)
    if kind == "number":
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    if kind == "object":
        return isinstance(value, dict)
    if kind == "array":
        return isinstance(value, list)
    return False


def check_fields(obj, spec, where):
    """Validate one object against a {required, optional} field spec."""
    for name, kind in spec.get("required", {}).items():
        if name not in obj:
            fail(f"{where}: missing required field '{name}'")
        elif not type_ok(obj[name], kind):
            fail(f"{where}: field '{name}' is not a {kind}: {obj[name]!r}")
    allowed = set(spec.get("required", {})) | set(spec.get("optional", {}))
    for name, kind in spec.get("optional", {}).items():
        if name in obj and not type_ok(obj[name], kind):
            fail(f"{where}: field '{name}' is not a {kind}: {obj[name]!r}")
    return allowed


def validate_response(raw, schema, expect_type=None, expect_ok=None):
    """Validate one response line; returns the parsed object (or None)."""
    try:
        resp = json.loads(raw)
    except json.JSONDecodeError as e:
        fail(f"response is not valid JSON ({e}): {raw[:200]}")
        return None
    if not isinstance(resp, dict):
        fail(f"response is not an object: {raw[:200]}")
        return None

    rtype = resp.get("type", "?")
    where = f"{rtype} response"
    base_allowed = check_fields(resp, schema["base"], where)
    if resp.get("protocol") != schema["protocol"]:
        fail(f"{where}: protocol is {resp.get('protocol')!r}, "
             f"expected {schema['protocol']!r}")
    if expect_type is not None and rtype != expect_type:
        fail(f"expected a {expect_type} response, got {rtype}: {raw[:200]}")
    if expect_ok is not None and resp.get("ok") is not expect_ok:
        fail(f"{where}: expected ok={expect_ok}: {raw[:300]}")

    if resp.get("ok") is False:
        err = resp.get("error")
        if not isinstance(err, dict):
            fail(f"{where}: ok:false without an error object")
            return resp
        check_fields(err, schema["error"], f"{where} error")
        if err.get("kind") not in schema["error"]["kinds"]:
            fail(f"{where}: unclassified error kind {err.get('kind')!r}")
        return resp

    spec = schema["responses"].get(rtype)
    if spec is None:
        fail(f"{where}: unknown response type {rtype!r}")
        return resp
    allowed = base_allowed | check_fields(resp, spec, where)
    for name in resp:
        if name not in allowed:
            fail(f"{where}: unexpected field '{name}'")
    for field in ("monte_carlo",):
        if isinstance(resp.get(field), dict):
            check_fields(resp[field], schema["monte_carlo_object"],
                         f"{where}.{field}")
    if rtype == "metrics" and isinstance(resp.get("cache"), dict):
        check_fields(resp["cache"], schema["cache_object"], f"{where}.cache")
    return resp


def payload_after_design(raw):
    """The response bytes from the design hash on: the id and any
    request-echo fields before it may legitimately differ between
    requests that must agree numerically."""
    idx = raw.find('"design"')
    return raw[idx:] if idx >= 0 else raw


def run_battery(conn, schema, circuit):
    load = json.dumps(
        {"id": "b-load", "type": "load", "circuit": circuit})
    cold = conn.request(load)
    validate_response(cold, schema, expect_type="load", expect_ok=True)
    warm = conn.request(load)
    validate_response(warm, schema, expect_type="load", expect_ok=True)
    if cold != warm:
        fail("cold and warm load responses differ:\n"
             f"  cold: {cold}\n  warm: {warm}")

    mc_payloads = {}
    for threads in (1, 2, 8):
        req = json.dumps({
            "id": f"b-mc-t{threads}", "type": "monte_carlo",
            "circuit": circuit, "samples": 12, "seed": 3,
            "threads": threads,
        })
        raw = conn.request(req)
        validate_response(raw, schema, expect_type="monte_carlo",
                          expect_ok=True)
        mc_payloads[threads] = payload_after_design(raw)
    for threads in (2, 8):
        if mc_payloads[threads] != mc_payloads[1]:
            fail(f"monte_carlo payload differs between threads=1 and "
                 f"threads={threads}:\n  t1: {mc_payloads[1]}\n  "
                 f"t{threads}: {mc_payloads[threads]}")

    for bad, kind in [
        ("this is not json", "invalid-input"),
        (json.dumps({"id": "b-e1", "type": "frobnicate"}), "invalid-input"),
        (json.dumps({"id": "b-e2", "type": "load", "circuit": "bogus"}),
         "invalid-input"),
        (json.dumps({"id": "b-e3", "type": "monte_carlo",
                     "circuit": circuit, "samples": 0}), "invalid-input"),
    ]:
        resp = validate_response(conn.request(bad), schema, expect_ok=False)
        got = (resp or {}).get("error", {}).get("kind")
        if got != kind:
            fail(f"expected error kind {kind!r} for {bad[:80]!r}, got "
                 f"{got!r}")

    raw = conn.request(json.dumps({"id": "b-metrics", "type": "metrics"}))
    resp = validate_response(raw, schema, expect_type="metrics",
                             expect_ok=True)
    if resp is not None:
        cache = resp.get("cache", {})
        if cache.get("misses", 0) < 1:
            fail("metrics response reports no cache misses after a load")
        if cache.get("hits", 0) < 1:
            fail("metrics response reports no cache hits after a warm load")
        counters = resp.get("metrics", {}).get("counters", {})
        for c in ("serve.requests", "serve.cache.hits", "serve.cache.misses"):
            if c not in counters:
                fail(f"metrics counters missing '{c}'")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--host", default="127.0.0.1")
    ap.add_argument("--port", type=int, required=True)
    ap.add_argument("--schema",
                    default=os.path.join(os.path.dirname(__file__),
                                         "serve_schema.json"))
    ap.add_argument("--request", action="append", default=[],
                    metavar="JSON", help="ad-hoc request line (repeatable)")
    ap.add_argument("--battery", action="store_true")
    ap.add_argument("--circuit", default="s27")
    ap.add_argument("--shutdown", action="store_true")
    args = ap.parse_args()

    with open(args.schema) as f:
        schema = json.load(f)

    conn = Connection(args.host, args.port)
    for line in args.request:
        raw = conn.request(line)
        validate_response(raw, schema)
        print(raw)
    if args.battery:
        run_battery(conn, schema, args.circuit)
    if args.shutdown:
        raw = conn.request(json.dumps({"id": "bye", "type": "shutdown"}))
        validate_response(raw, schema, expect_type="shutdown",
                          expect_ok=True)

    if FAILED:
        return 1
    checked = len(args.request) + (1 if args.shutdown else 0)
    battery = " + battery" if args.battery else ""
    print(f"check_serve: OK ({checked} ad-hoc request(s){battery})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
