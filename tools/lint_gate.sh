#!/usr/bin/env bash
# Machine-readable lint gate: emit the lcsf-lint-v2 findings document,
# schema-validate it, and diff it against the checked-in baseline
# (new-finding + suppression-budget gates). Registered as the
# `lcsf_lint_json` ctest (label: lint) and run by tools/lint.sh / ci.sh.
#
# Usage: tools/lint_gate.sh <lcsf_lint-binary> [repo-root]
set -eu
BIN="$1"
ROOT="${2:-.}"
cd "$ROOT"

OUT="$(mktemp)"
trap 'rm -f "$OUT"' EXIT
"$BIN" --root . --json > "$OUT"
python3 tools/lint_compare.py "$OUT" \
  --schema tools/lint_schema.json \
  --baseline tools/lint_baseline.json
