// Flat transistor/RC netlist with named nodes.
//
// Node 0 is ground. Only five element kinds exist because that is all the
// paper's experiments need: R, C (including coupling C, which is just a C
// between two signal nodes), independent V and I sources, and level-1
// MOSFETs.
#pragma once

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "circuit/mosfet.hpp"
#include "circuit/source_waveform.hpp"

namespace lcsf::circuit {

using NodeId = int;
inline constexpr NodeId kGround = 0;

struct Resistor {
  NodeId a = kGround;
  NodeId b = kGround;
  double ohms = 0.0;
};

struct Capacitor {
  NodeId a = kGround;
  NodeId b = kGround;
  double farads = 0.0;
};

struct Inductor {
  NodeId a = kGround;
  NodeId b = kGround;
  double henries = 0.0;
};

/// Ideal voltage source from neg to pos.
struct VoltageSource {
  NodeId pos = kGround;
  NodeId neg = kGround;
  SourceWaveform wave;
};

/// Current injected into `into` and drawn out of `from`.
struct CurrentSource {
  NodeId from = kGround;
  NodeId into = kGround;
  SourceWaveform wave;
};

class Netlist {
 public:
  /// Create a fresh node; name is optional and purely diagnostic.
  NodeId add_node(std::string name = {});
  /// Get-or-create a node by name ("0" and "gnd" map to ground).
  NodeId node(const std::string& name);
  /// Lookup-only variant for frozen netlists: the node id, or -1 if no
  /// node of that name exists.
  NodeId find_node(const std::string& name) const {
    const auto it = by_name_.find(name);
    return it == by_name_.end() ? NodeId{-1} : it->second;
  }
  /// Number of nodes including ground.
  std::size_t node_count() const { return names_.size(); }
  const std::string& node_name(NodeId n) const { return names_.at(n); }

  void add_resistor(NodeId a, NodeId b, double ohms);
  void add_capacitor(NodeId a, NodeId b, double farads);
  void add_inductor(NodeId a, NodeId b, double henries);
  void add_vsource(NodeId pos, NodeId neg, SourceWaveform wave);
  void add_isource(NodeId from, NodeId into, SourceWaveform wave);
  void add_mosfet(Mosfet m);

  const std::vector<Resistor>& resistors() const { return resistors_; }
  const std::vector<Capacitor>& capacitors() const { return capacitors_; }
  const std::vector<Inductor>& inductors() const { return inductors_; }
  const std::vector<VoltageSource>& vsources() const { return vsources_; }
  const std::vector<CurrentSource>& isources() const { return isources_; }
  const std::vector<Mosfet>& mosfets() const { return mosfets_; }
  std::vector<Mosfet>& mosfets() { return mosfets_; }

  /// Total linear element count (the paper's "number of linear circuit
  /// elements" metric in Fig. 5 / Table 4).
  std::size_t linear_element_count() const {
    return resistors_.size() + capacitors_.size() + inductors_.size();
  }

  /// Stamp the MOSFETs' constant capacitances (cgs, cgd, cdb) as linear
  /// capacitors. Call once after the netlist is complete; the simulators
  /// treat device caps as part of the linear load (linear-centric split).
  void freeze_device_capacitances();
  bool device_capacitances_frozen() const { return caps_frozen_; }

 private:
  void check_node(NodeId n) const;

  std::vector<std::string> names_{std::string{"gnd"}};
  // Lookup-only index (never iterated): element order cannot reach any
  // result, so the unordered map is safe here -- node identity and
  // ordering come from the insertion-ordered `names_` vector alone.
  std::unordered_map<std::string, NodeId> by_name_{{"gnd", kGround},
                                                   {"0", kGround}};
  std::vector<Resistor> resistors_;
  std::vector<Capacitor> capacitors_;
  std::vector<Inductor> inductors_;
  std::vector<VoltageSource> vsources_;
  std::vector<CurrentSource> isources_;
  std::vector<Mosfet> mosfets_;
  bool caps_frozen_ = false;
};

}  // namespace lcsf::circuit
