#include "circuit/mosfet.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace lcsf::circuit {

double Mosfet::leff() const {
  const double le = l - delta_l;
  if (le <= 0.0) {
    throw std::runtime_error("Mosfet: non-positive effective length");
  }
  return le;
}

double Mosfet::cgs() const { return 0.5 * model.cox * w * leff(); }
double Mosfet::cgd() const { return 0.5 * model.cox * w * leff(); }
double Mosfet::cdb() const { return model.cj * w * leff(); }

namespace {

// Core level-1 equations for an NMOS-normalized device with vds >= 0.
MosOperatingPoint level1_forward(double beta, double lambda, double vgst,
                                 double vds) {
  MosOperatingPoint op;
  if (vgst <= 0.0) {
    return op;  // cutoff: ids = gm = gds = 0
  }
  if (vds < vgst) {
    // Triode region.
    const double clm = 1.0 + lambda * vds;
    op.ids = beta * (vgst * vds - 0.5 * vds * vds) * clm;
    op.gm = beta * vds * clm;
    op.gds = beta * ((vgst - vds) * clm +
                     lambda * (vgst * vds - 0.5 * vds * vds));
  } else {
    // Saturation.
    const double clm = 1.0 + lambda * vds;
    op.ids = 0.5 * beta * vgst * vgst * clm;
    op.gm = beta * vgst * clm;
    op.gds = 0.5 * beta * vgst * vgst * lambda;
  }
  return op;
}

}  // namespace

MosOperatingPoint mosfet_eval(const Mosfet& m, double vg, double vd,
                              double vs) {
  const double sign = (m.type == MosType::kNmos) ? 1.0 : -1.0;
  // Normalize to NMOS polarity.
  double nvg = sign * vg;
  double nvd = sign * vd;
  double nvs = sign * vs;

  // The level-1 device is symmetric: if vds < 0 the roles of drain and
  // source swap. Track the swap so the returned derivatives stay with
  // respect to the *original* (vgs, vds) pair.
  bool swapped = false;
  if (nvd < nvs) {
    std::swap(nvd, nvs);
    swapped = true;
  }
  const double vgst = nvg - nvs - (m.model.vt0 + m.delta_vt);
  const double vds = nvd - nvs;
  const double beta = m.model.kp * m.w / m.leff();
  MosOperatingPoint op = level1_forward(beta, m.model.lambda, vgst, vds);

  if (swapped) {
    // Reverse conduction: by device symmetry i(vgs, vds) = -i_f(vgd, -vds)
    // with vgd = vgs - vds, and level1_forward above was evaluated exactly
    // at (vgd, -vds). Chain rule:
    //   d i / d vgs = -gm_f
    //   d i / d vds = -(gm_f * (-1) + gds_f * (-1)) = gm_f + gds_f
    const double gm_f = op.gm;
    const double gds_f = op.gds;
    op.ids = -op.ids;
    op.gm = -gm_f;
    op.gds = gm_f + gds_f;
  }

  // PMOS mirror: currents and derivative signs.
  if (m.type == MosType::kPmos) {
    op.ids = -op.ids;
    // gm, gds are second derivatives of sign flips twice -> unchanged.
  }
  return op;
}

double mosfet_idsat(const Mosfet& m, double vdd) {
  const double vgst = vdd - (m.model.vt0 + m.delta_vt);
  if (vgst <= 0.0) return 0.0;
  const double beta = m.model.kp * m.w / m.leff();
  return 0.5 * beta * vgst * vgst * (1.0 + m.model.lambda * vdd);
}

std::string to_string(MosType t) {
  return t == MosType::kNmos ? "nmos" : "pmos";
}

}  // namespace lcsf::circuit
