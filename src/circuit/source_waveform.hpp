// Time-domain stimulus descriptions for independent sources.
#pragma once

#include <utility>
#include <vector>

namespace lcsf::circuit {

/// Piecewise-linear stimulus with convenience factories for the waveforms
/// used throughout the experiments (DC levels, saturated ramps, pulses).
class SourceWaveform {
 public:
  SourceWaveform() = default;

  static SourceWaveform dc(double value);
  /// Hold v0 until t_start, ramp linearly to v1 over t_rise, then hold v1.
  static SourceWaveform ramp(double v0, double v1, double t_start,
                             double t_rise);
  /// Rise at t_start over t_rise, stay high for t_high, fall over t_fall.
  static SourceWaveform pulse(double v0, double v1, double t_start,
                              double t_rise, double t_high, double t_fall);
  /// Arbitrary (time, value) breakpoints; must be time-sorted.
  static SourceWaveform pwl(std::vector<std::pair<double, double>> points);

  /// Value at time t (clamped to the first/last breakpoint outside range).
  double value(double t) const;

  /// True if the waveform never changes (pure DC).
  bool is_dc() const { return points_.size() <= 1; }

  const std::vector<std::pair<double, double>>& points() const {
    return points_;
  }

 private:
  std::vector<std::pair<double, double>> points_;  // sorted by time
};

}  // namespace lcsf::circuit
