#include "circuit/mna.hpp"

#include <stdexcept>

namespace lcsf::circuit {

void stamp_two_terminal(numeric::Matrix& m, NodeId a, NodeId b, double value) {
  const std::size_t ia = MnaSystem::node_index(a);
  const std::size_t ib = MnaSystem::node_index(b);
  if (a != kGround) m(ia, ia) += value;
  if (b != kGround) m(ib, ib) += value;
  if (a != kGround && b != kGround) {
    m(ia, ib) -= value;
    m(ib, ia) -= value;
  }
}

MnaSystem build_mna(const Netlist& nl) {
  MnaSystem sys;
  sys.num_nodes = nl.node_count() - 1;
  sys.num_vsrc = nl.vsources().size();
  sys.num_inductors = nl.inductors().size();
  const std::size_t dim = sys.dimension();
  sys.g = numeric::Matrix(dim, dim);
  sys.c = numeric::Matrix(dim, dim);

  for (const Resistor& r : nl.resistors()) {
    stamp_two_terminal(sys.g, r.a, r.b, 1.0 / r.ohms);
  }
  for (const Capacitor& c : nl.capacitors()) {
    stamp_two_terminal(sys.c, c.a, c.b, c.farads);
  }
  for (std::size_t k = 0; k < nl.vsources().size(); ++k) {
    const VoltageSource& v = nl.vsources()[k];
    const std::size_t row = sys.vsource_index(k);
    if (v.pos != kGround) {
      sys.g(row, MnaSystem::node_index(v.pos)) += 1.0;
      sys.g(MnaSystem::node_index(v.pos), row) += 1.0;
    }
    if (v.neg != kGround) {
      sys.g(row, MnaSystem::node_index(v.neg)) -= 1.0;
      sys.g(MnaSystem::node_index(v.neg), row) -= 1.0;
    }
  }
  // Inductor branch rows: v_a - v_b - s L i = 0 and KCL gets +/- i.
  for (std::size_t k = 0; k < nl.inductors().size(); ++k) {
    const Inductor& l = nl.inductors()[k];
    const std::size_t row = sys.inductor_index(k);
    if (l.a != kGround) {
      sys.g(row, MnaSystem::node_index(l.a)) += 1.0;
      sys.g(MnaSystem::node_index(l.a), row) += 1.0;
    }
    if (l.b != kGround) {
      sys.g(row, MnaSystem::node_index(l.b)) -= 1.0;
      sys.g(MnaSystem::node_index(l.b), row) -= 1.0;
    }
    sys.c(row, row) -= l.henries;
  }
  return sys;
}

numeric::Vector source_vector(const Netlist& nl, const MnaSystem& sys,
                              double t) {
  numeric::Vector b(sys.dimension(), 0.0);
  for (const CurrentSource& i : nl.isources()) {
    if (i.into != kGround) b[MnaSystem::node_index(i.into)] += i.wave.value(t);
    if (i.from != kGround) b[MnaSystem::node_index(i.from)] -= i.wave.value(t);
  }
  for (std::size_t k = 0; k < nl.vsources().size(); ++k) {
    b[sys.vsource_index(k)] = nl.vsources()[k].wave.value(t);
  }
  return b;
}

NodePencil build_node_pencil(const Netlist& nl) {
  if (!nl.vsources().empty() || !nl.mosfets().empty() ||
      !nl.inductors().empty()) {
    throw std::invalid_argument(
        "build_node_pencil: netlist must contain only R/C (and I sources)");
  }
  const std::size_t n = nl.node_count() - 1;
  NodePencil p{numeric::Matrix(n, n), numeric::Matrix(n, n)};
  for (const Resistor& r : nl.resistors()) {
    stamp_two_terminal(p.g, r.a, r.b, 1.0 / r.ohms);
  }
  for (const Capacitor& c : nl.capacitors()) {
    stamp_two_terminal(p.c, c.a, c.b, c.farads);
  }
  return p;
}

}  // namespace lcsf::circuit
