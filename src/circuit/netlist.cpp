#include "circuit/netlist.hpp"

#include <stdexcept>

namespace lcsf::circuit {

NodeId Netlist::add_node(std::string name) {
  const NodeId id = static_cast<NodeId>(names_.size());
  if (name.empty()) name = "n" + std::to_string(id);
  if (by_name_.count(name) != 0) {
    throw std::invalid_argument("Netlist: duplicate node name " + name);
  }
  by_name_.emplace(name, id);
  names_.push_back(std::move(name));
  return id;
}

NodeId Netlist::node(const std::string& name) {
  auto it = by_name_.find(name);
  if (it != by_name_.end()) return it->second;
  return add_node(name);
}

void Netlist::check_node(NodeId n) const {
  if (n < 0 || static_cast<std::size_t>(n) >= names_.size()) {
    throw std::out_of_range("Netlist: unknown node id " + std::to_string(n));
  }
}

void Netlist::add_resistor(NodeId a, NodeId b, double ohms) {
  check_node(a);
  check_node(b);
  if (ohms <= 0.0) throw std::invalid_argument("Netlist: R must be > 0");
  if (a == b) throw std::invalid_argument("Netlist: R shorted to itself");
  resistors_.push_back({a, b, ohms});
}

void Netlist::add_capacitor(NodeId a, NodeId b, double farads) {
  check_node(a);
  check_node(b);
  if (farads < 0.0) throw std::invalid_argument("Netlist: C must be >= 0");
  if (a == b) throw std::invalid_argument("Netlist: C shorted to itself");
  capacitors_.push_back({a, b, farads});
}

void Netlist::add_inductor(NodeId a, NodeId b, double henries) {
  check_node(a);
  check_node(b);
  if (henries <= 0.0) throw std::invalid_argument("Netlist: L must be > 0");
  if (a == b) throw std::invalid_argument("Netlist: L shorted to itself");
  inductors_.push_back({a, b, henries});
}

void Netlist::add_vsource(NodeId pos, NodeId neg, SourceWaveform wave) {
  check_node(pos);
  check_node(neg);
  vsources_.push_back({pos, neg, std::move(wave)});
}

void Netlist::add_isource(NodeId from, NodeId into, SourceWaveform wave) {
  check_node(from);
  check_node(into);
  isources_.push_back({from, into, std::move(wave)});
}

void Netlist::add_mosfet(Mosfet m) {
  check_node(m.drain);
  check_node(m.gate);
  check_node(m.source);
  if (caps_frozen_) {
    throw std::logic_error(
        "Netlist: cannot add devices after freeze_device_capacitances()");
  }
  mosfets_.push_back(std::move(m));
}

void Netlist::freeze_device_capacitances() {
  if (caps_frozen_) return;
  for (const Mosfet& m : mosfets_) {
    if (m.gate != m.source) add_capacitor(m.gate, m.source, m.cgs());
    if (m.gate != m.drain) add_capacitor(m.gate, m.drain, m.cgd());
    if (m.drain != kGround) add_capacitor(m.drain, kGround, m.cdb());
  }
  caps_frozen_ = true;
}

}  // namespace lcsf::circuit
