// Shichman-Hodges level-1 MOSFET model (SPICE level 1), the device model the
// paper uses for all transistor-level experiments ("the analytical level-1
// model from [10]", Sec. 5.3).
//
// The model is deliberately split linear-centric: the drain current is the
// only nonlinearity (a voltage-controlled current source), while the gate
// and junction capacitances are constant (Meyer caps frozen at their
// region-averaged values) and therefore stamped into the *linear* part of
// the stage. This split is what makes the Successive Chords engine exact
// for the capacitive part.
#pragma once

#include <string>

namespace lcsf::circuit {

enum class MosType { kNmos, kPmos };

/// Process-level model card (per technology, per device polarity).
struct MosfetModel {
  double vt0 = 0.5;        ///< zero-bias threshold [V] (positive for both
                           ///< polarities; sign handled by evaluation)
  double kp = 200e-6;      ///< transconductance mu*Cox [A/V^2]
  double lambda = 0.05;    ///< channel-length modulation [1/V]
  double cox = 8e-3;       ///< gate oxide capacitance [F/m^2]
  double cj = 1e-3;        ///< junction capacitance [F/m^2]
};

/// A device instance: geometry plus its private fluctuation terms.
struct Mosfet {
  int drain = 0;
  int gate = 0;
  int source = 0;
  MosType type = MosType::kNmos;
  double w = 1e-6;  ///< drawn width [m]
  double l = 1e-6;  ///< drawn length [m]
  MosfetModel model;

  // Manufacturing fluctuations (paper Sec. 5.3: DL = channel length
  // reduction, VT = threshold shift). Zero at nominal.
  double delta_l = 0.0;   ///< channel-length reduction [m]; Leff = l - delta_l
  double delta_vt = 0.0;  ///< threshold shift [V]

  double leff() const;
  /// Gate-source / gate-drain Meyer capacitance (constant approximation).
  double cgs() const;
  double cgd() const;
  /// Drain-bulk junction capacitance to ground.
  double cdb() const;
};

/// Drain current and its partial derivatives at a bias point.
struct MosOperatingPoint {
  double ids = 0.0;  ///< drain-to-source current (positive into drain for
                     ///< NMOS conduction)
  double gm = 0.0;   ///< d ids / d vgs
  double gds = 0.0;  ///< d ids / d vds
};

/// Evaluate the level-1 equations at terminal voltages (vg, vd, vs).
/// Handles source/drain swap for reverse conduction and the PMOS mirror.
MosOperatingPoint mosfet_eval(const Mosfet& m, double vg, double vd,
                              double vs);

/// Saturation current at |vgs| = vdd, the natural scale for chord selection.
double mosfet_idsat(const Mosfet& m, double vdd);

std::string to_string(MosType t);

}  // namespace lcsf::circuit
