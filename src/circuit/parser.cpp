#include "circuit/parser.hpp"
#include "numeric/fp_compare.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>
#include <vector>

namespace lcsf::circuit {

ParseError::ParseError(std::size_t line, const std::string& what)
    : std::runtime_error("netlist line " + std::to_string(line) + ": " +
                         what),
      line_(line),
      detail_(what) {}

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

/// Split a (joined) card into whitespace/comma/paren-separated tokens;
/// "(" and ")" are dropped so "PWL(0 0 1n 1)" tokenizes uniformly.
std::vector<std::string> tokenize(const std::string& text) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : text) {
    if (std::isspace(static_cast<unsigned char>(c)) || c == ',' ||
        c == '(' || c == ')' || c == '=') {
      if (c == '=') {
        // keep key=value visible as "key" "=" "value"
        if (!cur.empty()) out.push_back(cur);
        out.push_back("=");
        cur.clear();
        continue;
      }
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

}  // namespace

double parse_value(const std::string& token) {
  if (token.empty()) throw ParseError(0, "empty value");
  std::size_t pos = 0;
  double v = 0.0;
  try {
    v = std::stod(token, &pos);
  } catch (const std::exception&) {
    throw ParseError(0, "bad numeric value '" + token + "'");
  }
  const std::string suffix = lower(token.substr(pos));
  if (suffix.empty()) return v;
  if (suffix == "f") return v * 1e-15;
  if (suffix == "p") return v * 1e-12;
  if (suffix == "n") return v * 1e-9;
  if (suffix == "u") return v * 1e-6;
  if (suffix == "m") return v * 1e-3;
  if (suffix == "k") return v * 1e3;
  if (suffix == "meg") return v * 1e6;
  if (suffix == "g") return v * 1e9;
  if (suffix == "t") return v * 1e12;
  // SPICE ignores trailing unit letters after a recognized suffix
  // ("2.5pF", "10kohm"); accept a letter tail.
  static const std::pair<const char*, double> prefixes[] = {
      {"meg", 1e6}, {"f", 1e-15}, {"p", 1e-12}, {"n", 1e-9}, {"u", 1e-6},
      {"m", 1e-3},  {"k", 1e3},   {"g", 1e9},   {"t", 1e12}};
  for (const auto& [pre, scale] : prefixes) {
    const std::size_t len = std::string(pre).size();
    if (suffix.rfind(pre, 0) == 0 &&
        std::all_of(suffix.begin() + static_cast<long>(len), suffix.end(),
                    [](unsigned char c) { return std::isalpha(c); })) {
      return v * scale;
    }
  }
  if (std::all_of(suffix.begin(), suffix.end(),
                  [](unsigned char c) { return std::isalpha(c); })) {
    return v;  // bare unit like "5V"
  }
  throw ParseError(0, "bad value suffix '" + token + "'");
}

namespace {

SourceWaveform parse_source(const std::vector<std::string>& tok,
                            std::size_t start, std::size_t lineno) {
  if (start >= tok.size()) {
    throw ParseError(lineno, "source needs a value");
  }
  const std::string kind = lower(tok[start]);
  auto val = [&](std::size_t i) {
    if (i >= tok.size()) throw ParseError(lineno, "truncated source spec");
    try {
      return parse_value(tok[i]);
    } catch (const ParseError& e) {
      // Re-wrap the bare detail so the message carries the real deck line
      // exactly once (never "line 7: netlist line 0: ...").
      throw ParseError(lineno, e.detail());
    }
  };
  if (kind == "dc") return SourceWaveform::dc(val(start + 1));
  if (kind == "pwl") {
    std::vector<std::pair<double, double>> pts;
    for (std::size_t i = start + 1; i < tok.size(); i += 2) {
      if (i + 1 >= tok.size()) {
        throw ParseError(lineno, "PWL needs (time, value) pairs");
      }
      pts.emplace_back(val(i), val(i + 1));
    }
    if (pts.empty()) throw ParseError(lineno, "PWL needs points");
    try {
      return SourceWaveform::pwl(std::move(pts));
    } catch (const std::invalid_argument& e) {
      throw ParseError(lineno, e.what());
    }
  }
  if (kind == "pulse") {
    // PULSE(v0 v1 tdelay trise thigh tfall)
    return SourceWaveform::pulse(val(start + 1), val(start + 2),
                                 val(start + 3), val(start + 4),
                                 val(start + 5), val(start + 6));
  }
  // Bare value = DC.
  try {
    return SourceWaveform::dc(parse_value(tok[start]));
  } catch (const ParseError&) {
    throw ParseError(lineno, "unknown source kind '" + tok[start] + "'");
  }
}

}  // namespace

Netlist parse_netlist(std::istream& in, const Technology& tech) {
  obs::ScopedSpan span("parse");
  Netlist nl;
  std::string raw;
  std::vector<std::pair<std::size_t, std::string>> cards;
  std::size_t lineno = 0;
  // Join continuation lines first.
  while (std::getline(in, raw)) {
    ++lineno;
    const auto semi = raw.find(';');
    if (semi != std::string::npos) raw.erase(semi);
    // Trim, THEN strip comments -- indented "  * note" lines are comments
    // too, not unknown cards.
    const auto first = raw.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    const auto last = raw.find_last_not_of(" \t\r");
    std::string body = raw.substr(first, last - first + 1);
    if (body[0] == '*') continue;
    if (body[0] == '+') {
      if (cards.empty()) throw ParseError(lineno, "continuation first");
      cards.back().second += " " + body.substr(1);
    } else {
      cards.emplace_back(lineno, std::move(body));
    }
  }

  for (const auto& [ln, card] : cards) {
    const auto tok = tokenize(card);
    if (tok.empty()) continue;
    const std::string head = lower(tok[0]);
    if (head[0] == '.') {
      if (head == ".end" || head == ".ends") break;
      continue;  // other dot-cards ignored (.tran etc. are runner options)
    }
    auto need = [&](std::size_t n) {
      if (tok.size() < n) throw ParseError(ln, "too few fields: " + card);
    };
    auto value_at = [&](std::size_t i) {
      try {
        return parse_value(tok[i]);
      } catch (const ParseError& e) {
        throw ParseError(ln, e.detail());
      }
    };
    switch (head[0]) {
      case 'r': {
        need(4);
        nl.add_resistor(nl.node(tok[1]), nl.node(tok[2]), value_at(3));
        break;
      }
      case 'c': {
        need(4);
        nl.add_capacitor(nl.node(tok[1]), nl.node(tok[2]), value_at(3));
        break;
      }
      case 'l': {
        need(4);
        nl.add_inductor(nl.node(tok[1]), nl.node(tok[2]), value_at(3));
        break;
      }
      case 'v': {
        need(4);
        nl.add_vsource(nl.node(tok[1]), nl.node(tok[2]),
                       parse_source(tok, 3, ln));
        break;
      }
      case 'i': {
        need(4);
        nl.add_isource(nl.node(tok[1]), nl.node(tok[2]),
                       parse_source(tok, 3, ln));
        break;
      }
      case 'm': {
        // Mname d g s NMOS|PMOS [W= v] [L= v] [DVT= v] [DL= v]
        need(5);
        const std::string model = lower(tok[4]);
        Mosfet m;
        if (model == "nmos") {
          m = tech.make_nmos(nl.node(tok[1]), nl.node(tok[2]),
                             nl.node(tok[3]));
        } else if (model == "pmos") {
          m = tech.make_pmos(nl.node(tok[1]), nl.node(tok[2]),
                             nl.node(tok[3]));
        } else {
          throw ParseError(ln, "unknown MOS model '" + tok[4] + "'");
        }
        for (std::size_t i = 5; i < tok.size(); i += 3) {
          if (i + 2 >= tok.size()) {
            throw ParseError(ln, "truncated key=value near '" + tok[i] + "'");
          }
          if (tok[i + 1] != "=") {
            throw ParseError(ln, "expected key=value near '" + tok[i] + "'");
          }
          const std::string key = lower(tok[i]);
          const double v = value_at(i + 2);
          if (key == "w") {
            m.w = v;
          } else if (key == "l") {
            m.l = v;
          } else if (key == "dvt") {
            m.delta_vt = v;
          } else if (key == "dl") {
            m.delta_l = v;
          } else {
            throw ParseError(ln, "unknown MOS parameter '" + tok[i] + "'");
          }
        }
        nl.add_mosfet(std::move(m));
        break;
      }
      default:
        throw ParseError(ln, "unknown card '" + card + "'");
    }
  }
  obs::add_counter("parser.cards", static_cast<std::uint64_t>(cards.size()));
  obs::add_counter("parser.devices",
                   static_cast<std::uint64_t>(nl.linear_element_count() +
                                              nl.mosfets().size() +
                                              nl.vsources().size() +
                                              nl.isources().size()));
  return nl;
}

Netlist parse_netlist(const std::string& text, const Technology& tech) {
  std::istringstream in(text);
  return parse_netlist(in, tech);
}

namespace {

void append_source(std::ostringstream& os, const SourceWaveform& w) {
  if (w.is_dc()) {
    os << " DC " << w.value(0.0);
    return;
  }
  os << " PWL(";
  bool first = true;
  for (const auto& [t, v] : w.points()) {
    if (!first) os << " ";
    first = false;
    os << t << " " << v;
  }
  os << ")";
}

}  // namespace

std::string to_spice_deck(const Netlist& nl, const std::string& title) {
  std::ostringstream os;
  os.precision(12);
  os << "* " << title << "\n";
  const auto name = [&nl](NodeId n) -> std::string {
    return n == kGround ? "0" : nl.node_name(n);
  };
  std::size_t k = 0;
  for (const auto& r : nl.resistors()) {
    os << "R" << k++ << " " << name(r.a) << " " << name(r.b) << " "
       << r.ohms << "\n";
  }
  k = 0;
  for (const auto& c : nl.capacitors()) {
    os << "C" << k++ << " " << name(c.a) << " " << name(c.b) << " "
       << c.farads << "\n";
  }
  k = 0;
  for (const auto& l : nl.inductors()) {
    os << "L" << k++ << " " << name(l.a) << " " << name(l.b) << " "
       << l.henries << "\n";
  }
  k = 0;
  for (const auto& v : nl.vsources()) {
    os << "V" << k++ << " " << name(v.pos) << " " << name(v.neg);
    append_source(os, v.wave);
    os << "\n";
  }
  k = 0;
  for (const auto& i : nl.isources()) {
    os << "I" << k++ << " " << name(i.from) << " " << name(i.into);
    append_source(os, i.wave);
    os << "\n";
  }
  k = 0;
  for (const auto& m : nl.mosfets()) {
    os << "M" << k++ << " " << name(m.drain) << " " << name(m.gate) << " "
       << name(m.source) << " "
       << (m.type == MosType::kNmos ? "NMOS" : "PMOS") << " W=" << m.w
       << " L=" << m.l;
    if (!numeric::exact_zero(m.delta_vt)) os << " DVT=" << m.delta_vt;
    if (!numeric::exact_zero(m.delta_l)) os << " DL=" << m.delta_l;
    os << "\n";
  }
  os << ".end\n";
  return os.str();
}

}  // namespace lcsf::circuit
