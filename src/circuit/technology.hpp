// Technology cards: device model parameters, supply, interconnect geometry
// and the 3-sigma manufacturing tolerances the statistical experiments
// sample from.
//
// The paper takes the 0.18um values and tolerances from Nassif, CICC 2001
// [14], which is proprietary; the values below are representative public
// numbers for the same nodes (see DESIGN.md "Substitutions"). Experiments
// only depend on tolerance *ratios*.
#pragma once

#include <string>

#include "circuit/mosfet.hpp"

namespace lcsf::circuit {

/// Nominal interconnect geometry for a minimum-width wire on an
/// intermediate metal layer.
struct WireGeometry {
  double width = 0.28e-6;        ///< W [m]
  double thickness = 0.45e-6;    ///< T [m]
  double spacing = 0.28e-6;      ///< S [m]
  double ild_thickness = 0.65e-6;///< H, inter-layer-dielectric [m]
  double resistivity = 2.2e-8;   ///< rho [ohm m] (Al/Cu alloy)
  double eps_rel = 3.9;          ///< SiO2 relative permittivity
};

/// Relative 3-sigma tolerances for the geometry parameters (fraction of
/// nominal). Example 2 samples these with uniform distributions, Example 3
/// with normals.
struct WireTolerances {
  double width = 0.25;
  double thickness = 0.20;
  double spacing = 0.25;
  double ild_thickness = 0.20;
  double resistivity = 0.15;
};

/// A full technology card.
struct Technology {
  std::string name;
  double vdd = 1.8;       ///< supply [V]
  double lmin = 0.18e-6;  ///< minimum channel length [m]
  MosfetModel nmos;
  MosfetModel pmos;
  WireGeometry wire;
  WireTolerances wire_tol;

  // Device-parameter 3-sigma tolerances (fractions of nominal) for the
  // statistical experiments: channel-length reduction and threshold shift.
  double sigma3_dl_frac = 0.10;  ///< 3-sigma of delta_L relative to lmin
  double sigma3_vt_frac = 0.10;  ///< 3-sigma of delta_VT relative to vt0

  /// NMOS/PMOS device factory at given width multiple of lmin.
  Mosfet make_nmos(int d, int g, int s, double w_over_l = 2.0) const;
  Mosfet make_pmos(int d, int g, int s, double w_over_l = 4.0) const;
};

/// 0.18 um card used by Examples 2 and 3.
Technology technology_180nm();
/// 0.6 um card used by Example 1's "large inverter".
Technology technology_600nm();

}  // namespace lcsf::circuit
