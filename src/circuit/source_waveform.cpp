#include "circuit/source_waveform.hpp"

#include <algorithm>
#include <stdexcept>

namespace lcsf::circuit {

SourceWaveform SourceWaveform::dc(double value) {
  SourceWaveform w;
  w.points_ = {{0.0, value}};
  return w;
}

SourceWaveform SourceWaveform::ramp(double v0, double v1, double t_start,
                                    double t_rise) {
  if (t_rise <= 0.0) throw std::invalid_argument("ramp: t_rise must be > 0");
  SourceWaveform w;
  w.points_ = {{t_start, v0}, {t_start + t_rise, v1}};
  return w;
}

SourceWaveform SourceWaveform::pulse(double v0, double v1, double t_start,
                                     double t_rise, double t_high,
                                     double t_fall) {
  if (t_rise <= 0.0 || t_fall <= 0.0) {
    throw std::invalid_argument("pulse: edges must be > 0");
  }
  SourceWaveform w;
  w.points_ = {{t_start, v0},
               {t_start + t_rise, v1},
               {t_start + t_rise + t_high, v1},
               {t_start + t_rise + t_high + t_fall, v0}};
  return w;
}

SourceWaveform SourceWaveform::pwl(
    std::vector<std::pair<double, double>> points) {
  if (points.empty()) throw std::invalid_argument("pwl: empty point list");
  if (!std::is_sorted(points.begin(), points.end(),
                      [](const auto& a, const auto& b) {
                        return a.first < b.first;
                      })) {
    throw std::invalid_argument("pwl: breakpoints must be time-sorted");
  }
  SourceWaveform w;
  w.points_ = std::move(points);
  return w;
}

double SourceWaveform::value(double t) const {
  if (points_.empty()) return 0.0;
  if (t <= points_.front().first) return points_.front().second;
  if (t >= points_.back().first) return points_.back().second;
  // Find the segment containing t and interpolate.
  auto hi = std::upper_bound(
      points_.begin(), points_.end(), t,
      [](double tt, const auto& p) { return tt < p.first; });
  auto lo = hi - 1;
  const double dt = hi->first - lo->first;
  if (dt <= 0.0) return hi->second;
  const double frac = (t - lo->first) / dt;
  return lo->second + frac * (hi->second - lo->second);
}

}  // namespace lcsf::circuit
