// Modified Nodal Analysis assembly.
//
// Builds the (G, C) matrix pencil of paper Eq. (1) from a netlist. Ground is
// eliminated; ideal voltage sources contribute branch-current unknowns. The
// MOSFETs are *not* stamped here -- they are the nonlinear part that the
// simulators (spice::TransientSimulator, teta::StageEngine) linearize
// themselves, each in its own way. That split is the core of the
// linear-centric methodology.
#pragma once

#include <cstddef>

#include "circuit/netlist.hpp"
#include "numeric/matrix.hpp"

namespace lcsf::circuit {

/// Assembled MNA pencil: (G + sC) x = b(t). Unknowns are the non-ground
/// node voltages followed by one branch current per voltage source.
struct MnaSystem {
  numeric::Matrix g;
  numeric::Matrix c;
  std::size_t num_nodes = 0;  ///< non-ground nodes
  std::size_t num_vsrc = 0;
  std::size_t num_inductors = 0;

  std::size_t dimension() const {
    return num_nodes + num_vsrc + num_inductors;
  }

  /// MNA row/column of a node; ground has no row (returns SIZE_MAX).
  static std::size_t node_index(NodeId n) {
    return n == kGround ? static_cast<std::size_t>(-1)
                        : static_cast<std::size_t>(n - 1);
  }
  std::size_t vsource_index(std::size_t k) const { return num_nodes + k; }
  std::size_t inductor_index(std::size_t k) const {
    return num_nodes + num_vsrc + k;
  }
};

/// Assemble the linear part (R, C, source topology) of a netlist.
MnaSystem build_mna(const Netlist& nl);

/// Evaluate the source vector b(t) (I sources into node rows, V source
/// values into branch rows).
numeric::Vector source_vector(const Netlist& nl, const MnaSystem& sys,
                              double t);

/// Node-only (G, C) pencil for interconnect macromodeling: requires the
/// netlist to contain only R and C elements. Row i corresponds to node i+1.
struct NodePencil {
  numeric::Matrix g;
  numeric::Matrix c;
};
NodePencil build_node_pencil(const Netlist& nl);

/// Symmetric two-terminal conductance stamp into any square matrix indexed
/// like MnaSystem (ground rows skipped).
void stamp_two_terminal(numeric::Matrix& m, NodeId a, NodeId b, double value);

}  // namespace lcsf::circuit
