// SPICE-format netlist parser.
//
// Decks are the lingua franca of the domain; the parser accepts the subset
// every experiment here needs:
//
//   * comment, blank lines, leading + continuation lines
//   Rname n1 n2 value
//   Cname n1 n2 value
//   Lname n1 n2 value            (accepted so RC(L) decks load; see mna)
//   Vname n+ n- DC v
//   Vname n+ n- PWL(t1 v1 t2 v2 ...)
//   Vname n+ n- PULSE(v0 v1 tdelay trise thigh tfall)
//   Iname n+ n- <same source forms>
//   Mname d g s NMOS|PMOS [W=v] [L=v] [DVT=v] [DL=v]
//   .end
//
// Values take engineering suffixes (f p n u m k meg g t, case
// insensitive). MOSFET model parameters come from the Technology card
// passed in; W/L default to the technology minimums. Node "0" and "gnd"
// are ground; all other names allocate nodes on first use.
#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "circuit/netlist.hpp"
#include "circuit/technology.hpp"

namespace lcsf::circuit {

/// Thrown with a message containing the line number and the offending
/// text. `detail()` carries the bare message without the "netlist line
/// N:" prefix so re-throw sites can attach the real deck line exactly
/// once (line 0 means "no line context", e.g. a bare parse_value call).
class ParseError : public std::runtime_error {
 public:
  ParseError(std::size_t line, const std::string& what);
  std::size_t line() const { return line_; }
  const std::string& detail() const { return detail_; }

 private:
  std::size_t line_;
  std::string detail_;
};

/// Parse a full deck. Throws ParseError on malformed input.
Netlist parse_netlist(std::istream& in, const Technology& tech);
Netlist parse_netlist(const std::string& text, const Technology& tech);

/// Parse one engineering-notation value ("2.5p", "1MEG", "100").
/// Throws ParseError (line 0) on garbage.
double parse_value(const std::string& token);

/// Serialize a netlist as a deck the parser round-trips. Sources emit as
/// PWL cards (or DC when constant); MOSFETs carry W/L/DVT/DL explicitly.
/// `title` becomes the leading comment line.
std::string to_spice_deck(const Netlist& nl,
                          const std::string& title = "lcsf netlist");

}  // namespace lcsf::circuit
