#include "circuit/technology.hpp"

namespace lcsf::circuit {

Mosfet Technology::make_nmos(int d, int g, int s, double w_over_l) const {
  Mosfet m;
  m.drain = d;
  m.gate = g;
  m.source = s;
  m.type = MosType::kNmos;
  m.l = lmin;
  m.w = w_over_l * lmin;
  m.model = nmos;
  return m;
}

Mosfet Technology::make_pmos(int d, int g, int s, double w_over_l) const {
  Mosfet m;
  m.drain = d;
  m.gate = g;
  m.source = s;
  m.type = MosType::kPmos;
  m.l = lmin;
  m.w = w_over_l * lmin;
  m.model = pmos;
  return m;
}

Technology technology_180nm() {
  Technology t;
  t.name = "0.18um";
  t.vdd = 1.8;
  t.lmin = 0.18e-6;
  t.nmos = MosfetModel{/*vt0=*/0.45, /*kp=*/260e-6, /*lambda=*/0.08,
                       /*cox=*/8.5e-3, /*cj=*/1.0e-3};
  t.pmos = MosfetModel{/*vt0=*/0.45, /*kp=*/100e-6, /*lambda=*/0.10,
                       /*cox=*/8.5e-3, /*cj=*/1.1e-3};
  t.wire = WireGeometry{0.28e-6, 0.45e-6, 0.28e-6, 0.65e-6, 2.2e-8, 3.9};
  t.wire_tol = WireTolerances{0.25, 0.20, 0.25, 0.20, 0.15};
  t.sigma3_dl_frac = 0.10;
  t.sigma3_vt_frac = 0.10;
  return t;
}

Technology technology_600nm() {
  Technology t;
  t.name = "0.6um";
  t.vdd = 5.0;
  t.lmin = 0.6e-6;
  t.nmos = MosfetModel{/*vt0=*/0.75, /*kp=*/120e-6, /*lambda=*/0.03,
                       /*cox=*/2.9e-3, /*cj=*/0.6e-3};
  t.pmos = MosfetModel{/*vt0=*/0.85, /*kp=*/40e-6, /*lambda=*/0.05,
                       /*cox=*/2.9e-3, /*cj=*/0.7e-3};
  t.wire = WireGeometry{0.9e-6, 0.9e-6, 0.9e-6, 1.0e-6, 3.0e-8, 3.9};
  t.wire_tol = WireTolerances{0.15, 0.15, 0.15, 0.15, 0.10};
  t.sigma3_dl_frac = 0.08;
  t.sigma3_vt_frac = 0.08;
  return t;
}

}  // namespace lcsf::circuit
