// Structured simulation diagnostics shared by every engine and driver.
//
// The paper's central negative result is that conventional simulation of a
// non-passive variational macromodel *diverges* (Example 1, Table 3); a
// statistical driver therefore has to treat divergence as data, not as a
// fatal error. This header defines the taxonomy every engine reports in
// (FailureKind + SimDiagnostics), the exception type that carries a
// diagnostic through a call chain (SimulationError), and the bounded
// recovery policy knobs (RecoveryOptions) honored by the SPICE and TETA
// engines. It is deliberately header-only and dependency-free (std only)
// so that spice/, teta/, stats/ and core/ can all include it without a
// library cycle. See docs/robustness.md for the full story.
#pragma once

#include <array>
#include <cstddef>
#include <stdexcept>
#include <string>

namespace lcsf::sim {

/// Why a simulation (or one timestep of it) died. Kinds are ordered for
/// stable iteration; kCount is a sentinel for counting arrays.
enum class FailureKind {
  kNone = 0,             ///< no failure (diagnostics of a converged run)
  kDcFailure,            ///< no DC operating point even with homotopy
  kNewtonNonConvergence, ///< Newton/SC iteration limit hit inside a step
  kBlowUp,               ///< solution exceeded the blow-up bound
  kUnstableMacromodel,   ///< load model rejected as unstable/non-passive
  kSingularSystem,       ///< LU hit a zero pivot / singular impedance
  kInvalidInput,         ///< precondition violated: bad options/topology
  kOther,                ///< anything else (wrapped foreign exception)
  kCount,                ///< sentinel: number of kinds above
};

constexpr std::size_t kNumFailureKinds =
    static_cast<std::size_t>(FailureKind::kCount);

/// Short stable identifier, suitable for report tables and test baselines.
constexpr const char* failure_kind_name(FailureKind k) {
  switch (k) {
    case FailureKind::kNone:
      return "none";
    case FailureKind::kDcFailure:
      return "dc-failure";
    case FailureKind::kNewtonNonConvergence:
      return "newton-nonconvergence";
    case FailureKind::kBlowUp:
      return "blow-up";
    case FailureKind::kUnstableMacromodel:
      return "unstable-macromodel";
    case FailureKind::kSingularSystem:
      return "singular-system";
    case FailureKind::kInvalidInput:
      return "invalid-input";
    case FailureKind::kOther:
      return "other";
    case FailureKind::kCount:
      break;
  }
  return "invalid";
}

/// Structured record of how a simulation ended. Replaces the stringly-typed
/// `failure` members the engines used to carry: callers can branch on
/// `kind` (the statistical drivers classify and count) while `message()`
/// keeps the human-readable story.
struct SimDiagnostics {
  FailureKind kind = FailureKind::kNone;
  std::string detail;        ///< engine-specific context (free text)
  double failure_time = 0.0; ///< simulated time of death [s]
  long iterations = 0;       ///< Newton/SC iterations spent in total
  int retries_used = 0;      ///< recovery retries consumed before the end
  double max_abs_v = 0.0;    ///< max |v| over the unknowns at the end

  bool failed() const { return kind != FailureKind::kNone; }

  /// "newton-nonconvergence at t = 1.2e-10 s: <detail> (3 retries)"
  std::string message() const {
    if (!failed()) return "converged";
    std::string m = failure_kind_name(kind);
    if (failure_time > 0.0) {
      m += " at t = " + std::to_string(failure_time) + " s";
    }
    if (!detail.empty()) m += ": " + detail;
    if (retries_used > 0) {
      m += " (after " + std::to_string(retries_used) + " retries)";
    }
    return m;
  }
};

/// Bounded recovery policy applied when one timestep refuses to converge:
/// halve the timestep and escalate (tighten) the damping, up to the budget,
/// before declaring the step dead. Both engines honor it; see
/// docs/robustness.md for the exact semantics per engine.
struct RecoveryOptions {
  /// Timestep-halving retries allowed (0 disables recovery entirely).
  int max_dt_retries = 0;
  /// Damping multiplier applied per escalation (each retry clamps the
  /// per-iteration update harder; must be in (0, 1]).
  double damping_factor = 0.5;
};

/// Exception that carries a SimDiagnostics through a call chain, so that
/// fail-soft drivers (stats::monte_carlo and friends) can classify a failed
/// sample without string matching. Engines return diagnostics in their
/// result structs; *facades* that must throw (e.g. core::PathAnalyzer's
/// per-sample evaluation) throw this.
class SimulationError : public std::runtime_error {
 public:
  explicit SimulationError(SimDiagnostics diag)
      : std::runtime_error(diag.message()), diag_(std::move(diag)) {}
  SimulationError(FailureKind kind, const std::string& detail)
      : SimulationError(SimDiagnostics{kind, detail, 0.0, 0, 0, 0.0}) {}

  const SimDiagnostics& diagnostics() const { return diag_; }
  FailureKind kind() const { return diag_.kind; }

 private:
  SimDiagnostics diag_;
};

/// Precondition failure in engine code (bad options, inconsistent
/// topology, out-of-domain argument). Engine code under src/{spice,teta,
/// stats} must not throw naked std::invalid_argument/runtime_error -- the
/// lcsf_lint rule `raw-engine-throw` enforces it -- because the fail-soft
/// drivers classify exceptions by FailureKind and a naked throw would be
/// lumped into kOther. This shorthand keeps the one-line throw sites
/// readable.
[[noreturn]] inline void throw_invalid_input(const std::string& detail) {
  throw SimulationError(FailureKind::kInvalidInput, detail);
}

}  // namespace lcsf::sim
