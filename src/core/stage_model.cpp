#include "core/stage_model.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "runtime/thread_pool.hpp"
#include "interconnect/coupled_lines.hpp"

namespace lcsf::core {

using circuit::kGround;
using circuit::SourceWaveform;
using numeric::Vector;
using timing::RampParams;
using timing::Samples;

double input_pin_cap(const timing::CellTemplate& cell,
                     const circuit::Technology& tech) {
  double cap = 0.0;
  for (const auto& t : cell.transistors) {
    if (t.gate.kind == timing::CellNode::Kind::kInput &&
        t.gate.index == 0) {
      const circuit::Mosfet m =
          t.type == circuit::MosType::kNmos
              ? tech.make_nmos(0, 0, 0, t.w_over_l)
              : tech.make_pmos(0, 0, 0, t.w_over_l);
      // Miller factor on the receiver's gate-drain cap (it sees part of
      // the opposing output swing while the receiver switches).
      cap += m.cgs() + 1.5 * m.cgd();
    }
  }
  return cap;
}

namespace {

/// Chord conductances of one driver cell (port 0 = its output).
Vector driver_chords(const timing::CellTemplate& cell,
                     const circuit::Technology& tech) {
  teta::StageCircuit probe;
  const std::size_t out = probe.add_port();
  const std::size_t in = probe.add_input(SourceWaveform::dc(0.0));
  const std::size_t vdd = probe.add_rail(tech.vdd);
  const std::size_t gnd = probe.add_rail(0.0);
  timing::instantiate_cell(cell, tech, probe, out, in, vdd, gnd);
  return probe.port_chord_conductances(tech.vdd);
}

/// Build the stage's wire as a ports-first pencil: near end (driver) and
/// far end (receiver) are the two ports; the receiver pin cap loads the
/// far end.
interconnect::PortedPencil stage_wire_pencil(
    const circuit::WireGeometry& geom, std::size_t segments,
    double receiver_cap) {
  interconnect::CoupledLineSpec spec;
  spec.num_lines = 1;
  spec.segment_length = 1e-6;
  spec.length = static_cast<double>(segments) * 1e-6;
  spec.geometry = geom;
  auto bundle = interconnect::build_coupled_lines(spec);
  bundle.netlist.add_capacitor(bundle.far_ends[0], kGround, receiver_cap);
  return interconnect::build_ported_pencil(
      bundle.netlist, {bundle.near_ends[0], bundle.far_ends[0]});
}

}  // namespace

mor::VariationalRom characterize_stage_load(const timing::CellTemplate& cell,
                                            const circuit::Technology& tech,
                                            std::size_t segments,
                                            double receiver_cap,
                                            std::size_t rom_internal_modes) {
  // Effective-load pre-characterization (Table 1): chords folded in,
  // variational over the global wire parameters (W, H) in normalized
  // 3-sigma-tolerance units.
  const Vector chords = driver_chords(cell, tech);
  const Vector gout{chords[0], 0.0};
  const circuit::Technology tech_copy = tech;
  const double rc = receiver_cap;
  const std::size_t segs = segments;
  mor::PencilFamily family = [tech_copy, rc, segs, gout](const Vector& w) {
    interconnect::WireVariation wv;
    wv.width = w[0] * tech_copy.wire_tol.width;
    wv.ild_thickness = w[1] * tech_copy.wire_tol.ild_thickness;
    const circuit::WireGeometry geom =
        interconnect::apply_variation(tech_copy.wire, wv);
    return mor::with_port_conductance(stage_wire_pencil(geom, segs, rc),
                                      gout);
  };
  mor::VariationalOptions vopt;
  vopt.method = mor::ReductionMethod::kPact;
  vopt.library = mor::LibraryMode::kFullReduction;
  vopt.pact.internal_modes = rom_internal_modes;
  vopt.fd_step = 0.2;
  return mor::build_variational_rom(family, 2, vopt);
}

Samples simulate_stage_model(const StageModel& st,
                             const circuit::Technology& tech,
                             const StageSimOptions& opt,
                             const SourceWaveform& input,
                             const timing::DeviceVariation& dev,
                             const interconnect::WireVariation& wire,
                             double window_scale, SampleWorkspace* ws) {
  // Normalized wire sample for the ROM library.
  const Vector w{tech.wire_tol.width > 0.0
                     ? wire.width / tech.wire_tol.width
                     : 0.0,
                 tech.wire_tol.ild_thickness > 0.0
                     ? wire.ild_thickness / tech.wire_tol.ild_thickness
                     : 0.0};
  mor::PoleResidueModel z;
  if (ws != nullptr) {
    // Pooled path: evaluate the variational ROM and extract poles through
    // the per-lane workspace -- bitwise identical to the plain path.
    st.load.evaluate_into(w, ws->rom);
    z = mor::stabilize(mor::extract_pole_residue(ws->rom, ws->poleres),
                       nullptr, mor::StabilizePolicy::kDirectCompensation);
  } else {
    mor::ReducedModel rom = st.load.evaluate(w);
    z = mor::stabilize(mor::extract_pole_residue(rom), nullptr,
                       mor::StabilizePolicy::kDirectCompensation);
  }

  teta::StageCircuit stage;
  const std::size_t out = stage.add_port();
  (void)stage.add_port();  // far port (receiver side), observed
  const std::size_t in = stage.add_input(input);
  const std::size_t vdd = stage.add_rail(tech.vdd);
  const std::size_t gnd = stage.add_rail(0.0);
  timing::instantiate_cell(*st.cell, tech, stage, out, in, vdd, gnd, dev);
  stage.freeze_device_capacitances();

  teta::TetaOptions topt;
  topt.dt = opt.dt;
  topt.tstop = opt.stage_window * window_scale;
  topt.vdd = tech.vdd;
  topt.recovery = opt.recovery;
  if (ws != nullptr) {
    teta::simulate_stage(stage, z, topt, ws->teta, ws->teta_result);
    const teta::TetaResult& res = ws->teta_result;
    if (!res.converged) {
      throw sim::SimulationError(res.diag);
    }
    return res.waveform(1);  // far port
  }
  teta::TetaResult res = teta::simulate_stage(stage, z, topt);
  if (!res.converged) {
    throw sim::SimulationError(res.diag);
  }
  return res.waveform(1);  // far port
}

RampParams measure_stage_with_retry(
    const StageModel& st, const circuit::Technology& tech,
    const StageSimOptions& opt, std::size_t label,
    const SourceWaveform& input, double shift,
    const timing::DeviceVariation& dev,
    const interconnect::WireVariation& wire, bool out_rising,
    Samples* out_samples, SampleWorkspace* ws) {
  // The stage window is a heuristic; if the output transition does not
  // complete inside it, re-simulate with a doubled window (bounded).
  sim::SimDiagnostics last;
  for (double scale : {1.0, 2.0, 4.0}) {
    try {
      Samples out =
          simulate_stage_model(st, tech, opt, input, dev, wire, scale, ws);
      RampParams p = timing::measure_ramp(out, tech.vdd, out_rising);
      p.m += shift;
      if (out_samples != nullptr) *out_samples = shifted_samples(out, shift);
      return p;
    } catch (const sim::SimulationError& e) {
      last = e.diagnostics();
    } catch (const std::runtime_error& e) {
      // measure_ramp: the transition never completed in the window.
      last = {};
      last.kind = sim::FailureKind::kOther;
      last.detail = e.what();
    }
  }
  last.detail = "stage " + std::to_string(label) +
                " did not complete: " + last.detail;
  throw sim::SimulationError(std::move(last));
}

Samples shifted_samples(const Samples& w, double dt0) {
  Samples out;
  out.reserve(w.size());
  for (const auto& [t, v] : w) out.emplace_back(t + dt0, v);
  return out;
}

SampleWorkspace& BatchWorkspace::lane(std::size_t k) {
  while (lanes.size() <= k) {
    lanes.push_back(std::make_unique<SampleWorkspace>());
  }
  return *lanes[k];
}

void measure_stage_batch(const StageModel& st,
                         const circuit::Technology& tech,
                         const StageSimOptions& opt, std::size_t label,
                         const std::vector<const SourceWaveform*>& inputs,
                         const std::vector<double>& shifts,
                         const std::vector<const timing::DeviceVariation*>& devs,
                         const std::vector<const interconnect::WireVariation*>& wires,
                         bool out_rising, std::vector<Samples>* out_samples,
                         std::vector<StageMeasurement>& out,
                         BatchWorkspace& bws) {
  const std::size_t nl = inputs.size();
  out.assign(nl, StageMeasurement{});
  if (out_samples != nullptr) out_samples->resize(nl);
  bws.fallback.assign(nl, 0);

  // Normalized wire samples, then one streamed ROM evaluation for the
  // whole block (per-lane bitwise identical to evaluate_into).
  bws.w.resize(nl);
  bws.wptr.clear();
  bws.romptr.clear();
  for (std::size_t l = 0; l < nl; ++l) {
    bws.w[l] = Vector{tech.wire_tol.width > 0.0
                          ? wires[l]->width / tech.wire_tol.width
                          : 0.0,
                      tech.wire_tol.ild_thickness > 0.0
                          ? wires[l]->ild_thickness /
                                tech.wire_tol.ild_thickness
                          : 0.0};
    bws.wptr.push_back(&bws.w[l]);
    bws.romptr.push_back(&bws.lane(l).rom);
  }
  st.load.evaluate_into_batch(bws.wptr, bws.romptr);

  // Pole/residue extraction stays per-lane (dense eigensolves do not gain
  // from lockstep); a lane whose load fails to extract falls back -- the
  // scalar rerun repeats the failure with the ladder's diagnostics.
  bws.z.resize(nl);
  for (std::size_t l = 0; l < nl; ++l) {
    SampleWorkspace& ws = bws.lane(l);
    try {
      bws.z[l] =
          mor::stabilize(mor::extract_pole_residue(ws.rom, ws.poleres),
                         nullptr, mor::StabilizePolicy::kDirectCompensation);
    } catch (const std::runtime_error&) {
      bws.fallback[l] = 1;
    }
  }

  // Per-lane stage circuits, built exactly as simulate_stage_model does.
  bws.stages.clear();
  bws.stages.resize(nl);
  for (std::size_t l = 0; l < nl; ++l) {
    if (bws.fallback[l] != 0) continue;
    teta::StageCircuit& stage = bws.stages[l];
    const std::size_t sout = stage.add_port();
    (void)stage.add_port();  // far port (receiver side), observed
    const std::size_t in = stage.add_input(*inputs[l]);
    const std::size_t vdd = stage.add_rail(tech.vdd);
    const std::size_t gnd = stage.add_rail(0.0);
    timing::instantiate_cell(*st.cell, tech, stage, sout, in, vdd, gnd,
                             *devs[l]);
    stage.freeze_device_capacitances();
  }

  // Lockstep leg at window scale 1.0 (the retry ladder's first rung).
  teta::TetaOptions topt;
  topt.dt = opt.dt;
  topt.tstop = opt.stage_window;
  topt.vdd = tech.vdd;
  topt.recovery = opt.recovery;
  bws.teta_lanes.clear();
  bws.slot.clear();
  for (std::size_t l = 0; l < nl; ++l) {
    if (bws.fallback[l] != 0) continue;
    SampleWorkspace& ws = bws.lane(l);
    bws.teta_lanes.push_back(
        {&bws.stages[l], &bws.z[l], &ws.teta, &ws.teta_result});
    bws.slot.push_back(l);
  }
  if (!bws.teta_lanes.empty()) {
    teta::simulate_stage_batch(bws.teta_lanes, topt, bws.teta);
  }
  for (std::size_t s = 0; s < bws.slot.size(); ++s) {
    const std::size_t l = bws.slot[s];
    const teta::TetaResult& res = bws.lane(l).teta_result;
    if (!res.converged) {
      bws.fallback[l] = 1;
      continue;
    }
    try {
      Samples so = res.waveform(1);  // far port
      RampParams p = timing::measure_ramp(so, tech.vdd, out_rising);
      p.m += shifts[l];
      out[l].params = p;
      if (out_samples != nullptr) {
        (*out_samples)[l] = shifted_samples(so, shifts[l]);
      }
    } catch (const std::runtime_error&) {
      // Transition incomplete at scale 1.0: the ladder widens the window.
      bws.fallback[l] = 1;
    }
  }

  // Fallback lanes rerun the full scalar retry ladder, whose first rung
  // repeats the failed lockstep attempt bitwise and then widens the
  // window -- so per-lane values and diagnostics match a scalar call.
  for (std::size_t l = 0; l < nl; ++l) {
    if (bws.fallback[l] == 0) continue;
    Samples* osp = out_samples != nullptr ? &(*out_samples)[l] : nullptr;
    try {
      out[l].params = measure_stage_with_retry(
          st, tech, opt, label, *inputs[l], shifts[l], *devs[l], *wires[l],
          out_rising, osp, &bws.lane(l));
    } catch (const sim::SimulationError& e) {
      out[l].failed = true;
      out[l].diag = e.diagnostics();
    }
  }
}

LaneWorkspaces::LaneWorkspaces(std::size_t threads)
    : lanes_(std::max<std::size_t>(
          1, threads == 0 ? runtime::ThreadPool::default_threads() : threads)) {}

SampleWorkspace& LaneWorkspaces::lane(std::size_t k) {
  if (!lanes_[k]) {
    lanes_[k] = std::make_unique<SampleWorkspace>();
  }
  return *lanes_[k];
}

LaneBatchWorkspaces::LaneBatchWorkspaces(std::size_t threads)
    : lanes_(std::max<std::size_t>(
          1, threads == 0 ? runtime::ThreadPool::default_threads() : threads)) {}

BatchWorkspace& LaneBatchWorkspaces::lane(std::size_t k) {
  if (!lanes_[k]) {
    lanes_[k] = std::make_unique<BatchWorkspace>();
  }
  return *lanes_[k];
}

}  // namespace lcsf::core
