// Multi-path statistical timing engine over a gate netlist (the tentpole
// of docs/timing_graph.md).
//
// GraphAnalyzer builds the timing DAG (timing::TimingGraph), enumerates
// the K most-critical latch-to-latch paths, characterizes each distinct
// (driver cell, effective load) block ONCE -- the compact variational
// block models of hierarchical SSTA -- and evaluates parameter samples
// with a per-sample engine in which stages shared between paths are
// transistor-level-simulated once per sample: results are memoized in the
// pooled core::SampleWorkspace keyed by (gate id, input-ramp bucket), and
// a statistical max (the per-sample max arrival, carrying the winner's
// waveform) is taken where paths merge. Monte Carlo rides on
// stats::Runner's counter-based RNG streams, so graph-level results are
// bitwise thread-count-invariant.
#pragma once

#include <cstddef>
#include <vector>

#include "circuit/technology.hpp"
#include "core/path.hpp"
#include "core/stage_model.hpp"
#include "stats/runner.hpp"
#include "timing/graph.hpp"
#include "timing/ssta.hpp"
#include "timing/sta.hpp"

namespace lcsf::core {

struct GraphSpec {
  circuit::Technology tech;
  timing::GateNetlist netlist;
  /// How many most-critical latch-to-latch paths to carry.
  std::size_t top_k = 8;
  /// Per-stage wire size knob, as in PathSpec.
  std::size_t linear_elements_per_stage = 10;
  /// Stimulus applied at every path start net.
  timing::RampParams input{0.2e-9, 0.1e-9, true};
  double dt = 2e-12;
  double stage_window = 2.0e-9;
  std::size_t rom_internal_modes = 6;
  sim::RecoveryOptions recovery;
  /// Quantum of the stage-memo input-ramp bucket [s]: two arrivals at the
  /// same gate whose (M, S) agree within one quantum share a simulation.
  double ramp_bucket_quantum = 1e-12;
};

/// One parameter sample of the graph: device variation per subgraph gate
/// (in subgraph_gates() order) plus the global wire variation.
struct GraphSample {
  std::vector<timing::DeviceVariation> device;
  interconnect::WireVariation wire;
};

class GraphAnalyzer {
 public:
  explicit GraphAnalyzer(GraphSpec spec);
  GraphAnalyzer(const GraphAnalyzer&) = delete;
  GraphAnalyzer& operator=(const GraphAnalyzer&) = delete;

  const GraphSpec& spec() const { return spec_; }
  const timing::TimingGraph& graph() const { return graph_; }
  /// The enumerated paths, most critical first.
  const std::vector<timing::TimingPath>& paths() const { return paths_; }
  /// Gates appearing on at least one enumerated path, ascending id; this
  /// is the device-variation layout of GraphSample and sources().
  const std::vector<std::size_t>& subgraph_gates() const {
    return subgraph_;
  }
  /// Endpoint (latch-input) nets covered by the paths, ascending.
  const std::vector<std::size_t>& endpoint_nets() const {
    return endpoints_;
  }
  /// Number of distinct characterized (cell, load) blocks.
  std::size_t num_blocks() const { return blocks_.size(); }

  /// Resident heap footprint of the characterized artifacts (per-slot
  /// stage models + enumerated paths) -- what a design cache pays to keep
  /// this analyzer warm. See serve::DesignCache.
  std::size_t memory_bytes() const;

  using Workspace = SampleWorkspace;

  struct EndpointDelay {
    std::size_t net = 0;
    double delay = 0.0;  ///< 50% input to 50% arrival at the net [s]
    double slew = 0.0;
  };
  struct SampleResult {
    std::vector<EndpointDelay> endpoints;  ///< endpoint_nets() order
    double max_delay = 0.0;                ///< worst endpoint delay
    std::size_t stages_simulated = 0;
    std::size_t stage_cache_hits = 0;
    std::size_t merges = 0;
  };

  /// Evaluate one parameter sample over the whole path set: paths in
  /// descending criticality, per-stage memoization, statistical max at
  /// merge nets. Throws sim::SimulationError when a stage fails.
  SampleResult evaluate(const GraphSample& sample, Workspace& ws) const;

  /// Path-by-path baseline: every path re-simulated independently with no
  /// memoization or merging -- the brute-force reference the bench and
  /// the distribution tests compare against. Returns one delay per path
  /// (paths() order).
  std::vector<double> per_path_delays(const GraphSample& sample,
                                      Workspace& ws) const;

  /// Map a normalized source vector (layout: per subgraph gate [dl, vt]
  /// as enabled by the model, then [wire_w, wire_h]) to a sample.
  GraphSample sample_from_sources(const PathVariationModel& model,
                                  const numeric::Vector& w) const;
  std::vector<stats::VariationSource> sources(
      const PathVariationModel& model) const;

  /// Graph-level Monte Carlo; the per-sample metric is the worst endpoint
  /// delay. Bitwise thread-count-invariant (counter-based streams).
  stats::MonteCarloResult monte_carlo(const PathVariationModel& model,
                                      const stats::RunOptions& opt) const;

  /// Compact per-block variational delay models: one per distinct
  /// (cell, load) block, extracted by central differences around the
  /// nominal input ramp and reusable across every instantiation of the
  /// block (and across designs sharing the technology).
  std::vector<timing::ssta::BlockDelayModel> block_models(
      const PathVariationModel& model) const;

  struct AnalyticEndpoint {
    std::size_t net = 0;
    timing::ssta::CanonicalForm arrival;  ///< basis: sources(model), then
                                          ///< the independent residual
  };
  /// Analytic SSTA: compose the block models over the subgraph with
  /// canonical sums along edges and Clark's statistical max at merge
  /// nets. First-order (slew propagation not modeled); the per-sample
  /// engine is the reference.
  std::vector<AnalyticEndpoint> analytic_endpoints(
      const PathVariationModel& model) const;

 private:
  struct GateStage {
    StageModel model;
    std::size_t block = 0;  ///< index into blocks_
  };
  /// A distinct characterized (cell, load) combination.
  struct Block {
    std::size_t cell = 0;
    double receiver_cap = 0.0;
    std::size_t stage_slot = 0;  ///< representative subgraph slot
  };

  StageSimOptions sim_options() const;
  std::size_t slot_of(std::size_t gate) const;
  StageCacheKey cache_key(std::size_t gate,
                          const timing::RampParams& in) const;
  /// Simulate the stage of subgraph slot `slot` driven by `in`; returns
  /// the output waveform in absolute time.
  StageWaveform simulate_slot(std::size_t slot, const StageWaveform& in,
                              const timing::DeviceVariation& dev,
                              const interconnect::WireVariation& wire,
                              Workspace* ws) const;

  GraphSpec spec_;
  timing::TimingGraph graph_;
  std::vector<timing::TimingPath> paths_;
  std::vector<std::size_t> subgraph_;   ///< sorted gate ids
  std::vector<std::size_t> endpoints_;  ///< sorted endpoint nets
  std::vector<GateStage> stages_;       ///< parallel to subgraph_
  std::vector<Block> blocks_;
  std::size_t segments_per_stage_ = 1;
};

}  // namespace lcsf::core
