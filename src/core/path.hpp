// The framework facade: statistical path-delay analysis (paper Sec. 4).
//
// A path is a chain of logic stages; between consecutive stages lies an RC
// wire (segmented per micron, parasitics from Sakurai's formulas). The
// analyzer pre-characterizes each stage's effective load ONCE -- driver
// chord conductances folded in (Table 1), variational over the global wire
// parameters -- and then evaluates:
//   * framework_delay(): stage-by-stage TETA simulation propagating a
//     fine-resolution piecewise-linear waveform (Sec. 4.3.1), and
//   * spice_delay(): the conventional whole-path Newton simulation the
//     paper benchmarks against.
// On top sit monte_carlo() and gradient_analysis() (Secs. 4.1/4.3).
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "circuit/technology.hpp"
#include "core/stage_model.hpp"
#include "interconnect/sakurai.hpp"
#include "sim/diagnostics.hpp"
#include "mor/poleres.hpp"
#include "mor/variational.hpp"
#include "stats/analysis.hpp"
#include "stats/pca.hpp"
#include "stats/runner.hpp"
#include "stats/descriptive.hpp"
#include "teta/stage.hpp"
#include "timing/cells.hpp"
#include "timing/sta.hpp"
#include "timing/waveform.hpp"

namespace lcsf::core {

struct PathSpec {
  circuit::Technology tech;
  /// Cell of each stage (indices into timing::cell_library()).
  std::vector<std::size_t> cells;
  /// Target "number of linear circuit elements between stages" (the
  /// Table 4 knob); converted to a wire length at 1 um RC segmentation.
  std::size_t linear_elements_per_stage = 10;
  /// Input stimulus of the first stage.
  timing::RampParams input{0.2e-9, 0.1e-9, true};
  double dt = 2e-12;              ///< timestep for both engines
  double stage_window = 2.0e-9;   ///< simulated window per stage [s]
  std::size_t rom_internal_modes = 6;  ///< PACT order per stage load
  /// Bounded per-step (SPICE) / per-run (TETA) dt-halving retry budget,
  /// forwarded to both engines. Defaults to no retries; statistical
  /// drivers typically enable it together with
  /// stats::FailurePolicy::kSkip (see docs/robustness.md).
  sim::RecoveryOptions recovery;

  /// Convenience: build from a generated benchmark's longest path.
  static PathSpec from_benchmark(const circuit::Technology& tech,
                                 const timing::GateNetlist& nl,
                                 const timing::TimingPath& path,
                                 std::size_t linear_elements);
};

/// One parameter sample: per-stage device fluctuations plus global wire
/// variation.
struct PathSample {
  std::vector<timing::DeviceVariation> device;  ///< size = #stages
  interconnect::WireVariation wire;
};

/// Which variation sources a statistical analysis sweeps, in the
/// normalized units of PathVariationModel (w = 1 means "at the 3-sigma
/// tolerance" of the technology card).
struct PathVariationModel {
  double std_dl = 0.0;  ///< per-stage channel-length reduction (Table 5 DL)
  double std_vt = 0.0;  ///< per-stage threshold shift (Table 5 VT)
  double std_wire_w = 0.0;  ///< global wire width
  double std_wire_h = 0.0;  ///< global ILD thickness

  std::size_t sources_per_stage() const {
    return (std_dl > 0.0 ? 1 : 0) + (std_vt > 0.0 ? 1 : 0);
  }
  std::size_t global_sources() const {
    return (std_wire_w > 0.0 ? 1 : 0) + (std_wire_h > 0.0 ? 1 : 0);
  }
};

struct PathDelayResult {
  double delay = 0.0;        ///< 50% input to 50% final output [s]
  double output_slew = 0.0;  ///< full-swing-equivalent slew [s]
};

class PathAnalyzer {
 public:
  explicit PathAnalyzer(PathSpec spec);

  std::size_t num_stages() const { return spec_.cells.size(); }
  const PathSpec& spec() const { return spec_; }

  /// Reusable per-worker scratch covering the whole per-sample pipeline
  /// (ROM evaluation -> pole/residue extraction -> TETA transient). One
  /// workspace per Monte-Carlo lane makes repeated framework_delay calls
  /// allocation-free after the first sample; see docs/performance.md.
  /// Shared with the multi-path graph engine (core::GraphAnalyzer), which
  /// additionally keeps its per-sample stage memo in it -- the definition
  /// lives in core/stage_model.hpp.
  using SampleWorkspace = core::SampleWorkspace;

  /// Stage-by-stage TETA evaluation at one parameter sample. Throws
  /// sim::SimulationError (with classified diagnostics) when a stage does
  /// not converge within spec().recovery's retry budget.
  PathDelayResult framework_delay(const PathSample& sample) const;

  /// Workspace-pooled overload: numerically identical, but draws every
  /// engine intermediate from `ws`. The caller guarantees `ws` is not used
  /// concurrently from two threads (the statistical drivers hand each
  /// thread lane its own workspace).
  PathDelayResult framework_delay(const PathSample& sample,
                                  SampleWorkspace& ws) const;

  /// Conventional whole-path transient (the SPICE baseline). Throws
  /// sim::SimulationError on divergence -- the paper-predicted outcome for
  /// non-passive loads; statistical drivers record it instead of dying
  /// when run with stats::FailurePolicy::kSkip.
  PathDelayResult spice_delay(const PathSample& sample) const;

  /// Map a normalized source vector w (layout: [dl_0, vt_0, dl_1, vt_1,
  /// ..., wire_w, wire_h], entries present per the model) to a sample.
  PathSample sample_from_sources(const PathVariationModel& model,
                                 const numeric::Vector& w) const;
  std::vector<stats::VariationSource> sources(
      const PathVariationModel& model) const;

  /// Monte-Carlo path statistics (Sec. 4.3.1) using the framework engine.
  /// The RunOptions overload is the primary one (it also carries the
  /// observability registry); the MonteCarloOptions overload delegates.
  stats::MonteCarloResult monte_carlo(const PathVariationModel& model,
                                      const stats::RunOptions& opt) const;
  stats::MonteCarloResult monte_carlo(const PathVariationModel& model,
                                      const stats::MonteCarloOptions& opt)
      const;

  struct CorrelatedMcResult {
    stats::MonteCarloResult mc;
    std::size_t total_sources = 0;
    std::size_t factors_used = 0;  ///< PCA factors explaining >= 95%
  };
  /// Monte-Carlo with spatially-correlated per-stage device parameters
  /// (correlation `rho` between any two stages, the common-factor model of
  /// Sec. 4.1.1). PCA turns the correlated sources into a smaller set of
  /// independent factors which are then sampled.
  CorrelatedMcResult monte_carlo_correlated(
      const PathVariationModel& model, double rho,
      const stats::RunOptions& opt) const;
  CorrelatedMcResult monte_carlo_correlated(
      const PathVariationModel& model, double rho,
      const stats::MonteCarloOptions& opt) const;

  /// Importance-sampled timing yield P(delay <= clock_period) of the
  /// path (stats::Runner::run_yield_is): the proposal is centered on the
  /// failure boundary of the linear surrogate built from the framework's
  /// own gradient analysis, so rare timing failures are resolved with far
  /// fewer transient simulations than plain Monte Carlo (see
  /// docs/yield_estimation.md). IS knobs ride in `opt.importance`.
  stats::IsYieldEstimate yield_importance(const PathVariationModel& model,
                                          double clock_period,
                                          const stats::RunOptions& opt)
      const;

  struct GaResult {
    double nominal_delay = 0.0;
    double stddev = 0.0;
    std::size_t simulations = 0;
    /// dD/dw per normalized source (layout of sample_from_sources).
    numeric::Vector gradient;
  };
  /// Gradient Analysis (Sec. 4.3.2): per-stage waveform-parameter
  /// sensitivity propagation, Eq. 30-32 + Eq. 24.
  GaResult gradient_analysis(const PathVariationModel& model) const;

  struct CornerResult {
    double delay = 0.0;
    numeric::Vector corner;  ///< the normalized source vector used
  };
  /// Classic worst-case corner: every source at +/- k_sigma, oriented in
  /// its delay-increasing direction by the GA gradient (the "true worst
  /// case" of the paper's ref [3]). The introduction argues this is overly
  /// pessimistic; bench_yield quantifies by how much.
  CornerResult worst_case_corner(const PathVariationModel& model,
                                 double k_sigma) const;

  /// Total linear-element count of the full path netlist (Fig. 5 x-axis).
  std::size_t total_linear_elements() const;

  /// Resident heap footprint of the characterized artifacts (the stage
  /// load ROMs) -- the cost a design cache pays to keep this analyzer
  /// warm. See serve::DesignCache.
  std::size_t memory_bytes() const;

 private:
  struct Stage {
    /// Characterized driver cell + variational effective load (see
    /// core/stage_model.hpp).
    StageModel model;
    bool output_rising_if_input_rising = false;
  };

  /// Simulate one stage with TETA: input waveform (local time), device
  /// variation, wire parameters; returns far-port samples (local time).
  /// `ws` (optional) supplies the pooled engine scratch.
  timing::Samples simulate_stage(std::size_t k,
                                 const circuit::SourceWaveform& input,
                                 const timing::DeviceVariation& dev,
                                 const interconnect::WireVariation& wire,
                                 double window_scale = 1.0,
                                 SampleWorkspace* ws = nullptr) const;

  /// framework_delay() plus optional capture of each stage's input ramp
  /// parameters (consumed by gradient_analysis).
  PathDelayResult run_chain(const PathSample& sample,
                            std::vector<timing::RampParams>* stage_inputs,
                            SampleWorkspace* ws = nullptr) const;

  /// Lockstep block sibling of run_chain, backing the batched Monte-Carlo
  /// dispatch: marches all samples down the path one stage at a time
  /// through measure_stage_batch, propagating per-lane waveform / arrival
  /// state. A lane whose stage fails is recorded in `out` with the
  /// classified diagnostics (exactly what run_chain would have thrown) and
  /// dropped from the remaining stages; survivors' delays are bitwise
  /// identical to scalar run_chain. `out` must be pre-sized to
  /// samples.size() (the stats driver's BatchSlot contract).
  void run_chain_batch(const std::vector<PathSample>& samples,
                       BatchWorkspace& bws,
                       std::vector<stats::BatchSlot>& out) const;

  /// Engine knobs forwarded to the shared stage simulation helpers.
  StageSimOptions sim_options() const;

  /// Run a stage and extract the output ramp parameters, doubling the
  /// simulation window (up to 4x) if the transition does not complete.
  /// `shift` is added back to the measured arrival.
  timing::RampParams measure_with_retry(
      std::size_t k, const circuit::SourceWaveform& input, double shift,
      const timing::DeviceVariation& dev,
      const interconnect::WireVariation& wire, bool out_rising,
      timing::Samples* out_samples, SampleWorkspace* ws = nullptr) const;

  PathSpec spec_;
  std::size_t segments_per_stage_ = 1;
  std::vector<Stage> stages_;
};

}  // namespace lcsf::core
