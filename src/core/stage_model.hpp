// One characterized logic stage and the pooled per-sample engine scratch
// shared by the single-path (PathAnalyzer) and multi-path (GraphAnalyzer)
// analyzers.
//
// A stage is a driver cell plus its variational effective load: the RC
// wire (segmented per micron), the receiver pin capacitance, and the
// driver's chord conductances folded in (paper Table 1), reduced with
// PACT over the global wire parameters (W, H). Characterization happens
// once per distinct (cell, load) "block"; per-sample evaluation is a TETA
// transient through the pooled workspace below.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <tuple>
#include <vector>

#include "circuit/source_waveform.hpp"
#include "circuit/technology.hpp"
#include "interconnect/sakurai.hpp"
#include "mor/poleres.hpp"
#include "mor/variational.hpp"
#include "sim/diagnostics.hpp"
#include "teta/stage.hpp"
#include "timing/cells.hpp"
#include "timing/waveform.hpp"

namespace lcsf::core {

/// A stage output carried between gates: ramp parameters plus the
/// propagated waveform (adaptively compressed PWL) in absolute time.
struct StageWaveform {
  timing::RampParams params;
  circuit::SourceWaveform wave;
};

/// Memo key of the graph engine's per-sample stage cache: (gate id,
/// quantized input-ramp M bucket, quantized S bucket, rising).
using StageCacheKey =
    std::tuple<std::size_t, std::int64_t, std::int64_t, bool>;

/// Reusable per-worker scratch covering the whole per-sample pipeline
/// (ROM evaluation -> pole/residue extraction -> TETA transient). One
/// workspace per Monte-Carlo lane makes repeated per-sample evaluations
/// allocation-free after the first sample; see docs/performance.md.
struct SampleWorkspace {
  mor::ReducedModel rom;
  mor::PoleResidueWorkspace poleres;
  teta::TetaWorkspace teta;
  /// Reused TETA result: the waveform storage (time axis + per-step port
  /// vectors) is recycled across samples by the pooled simulate_stage
  /// overload.
  teta::TetaResult teta_result;

  /// Per-sample state of the multi-path graph engine (GraphAnalyzer),
  /// pooled here alongside the engine scratch: memoized stage outputs
  /// keyed by (gate id, input-ramp bucket) -- so stages shared between
  /// paths simulate once per sample -- and the per-net arrival front (the
  /// statistical-max winner seen so far at each net). Cleared at the
  /// start of every sample.
  std::map<StageCacheKey, StageWaveform> stage_cache;
  std::map<std::size_t, StageWaveform> net_arrival;
};

/// One characterized stage: driver cell + variational effective load.
struct StageModel {
  const timing::CellTemplate* cell = nullptr;
  /// Variational ROM of the effective load (wire + receiver gate cap +
  /// driver chords), over the global wire parameters (W, H).
  mor::VariationalRom load;
  double receiver_cap = 0.0;
};

/// Engine knobs shared by every stage simulation of one analyzer.
struct StageSimOptions {
  double dt = 2e-12;             ///< TETA timestep [s]
  double stage_window = 2.0e-9;  ///< simulated window per stage [s]
  sim::RecoveryOptions recovery;
};

/// Gate capacitance presented by a cell's switching input pin (input 0),
/// with a Miller factor on the gate-drain overlap.
double input_pin_cap(const timing::CellTemplate& cell,
                     const circuit::Technology& tech);

/// Variational ROM of a stage's effective load: `segments` 1-um RC wire
/// segments loaded by `receiver_cap` at the far end, with the driver
/// cell's chord conductance folded into the near port.
mor::VariationalRom characterize_stage_load(const timing::CellTemplate& cell,
                                            const circuit::Technology& tech,
                                            std::size_t segments,
                                            double receiver_cap,
                                            std::size_t rom_internal_modes);

/// Simulate one stage with TETA: input waveform (local time), device
/// variation, wire parameters; returns far-port samples (local time).
/// `ws` (optional) supplies the pooled engine scratch. Throws
/// sim::SimulationError when the transient does not converge.
timing::Samples simulate_stage_model(const StageModel& st,
                                     const circuit::Technology& tech,
                                     const StageSimOptions& opt,
                                     const circuit::SourceWaveform& input,
                                     const timing::DeviceVariation& dev,
                                     const interconnect::WireVariation& wire,
                                     double window_scale,
                                     SampleWorkspace* ws);

/// Run a stage and extract the output ramp parameters, doubling the
/// simulation window (up to 4x) if the transition does not complete.
/// `shift` is added back to the measured arrival; `label` names the stage
/// in failure diagnostics. When `out_samples` is non-null it receives the
/// raw output samples shifted back to absolute time.
timing::RampParams measure_stage_with_retry(
    const StageModel& st, const circuit::Technology& tech,
    const StageSimOptions& opt, std::size_t label,
    const circuit::SourceWaveform& input, double shift,
    const timing::DeviceVariation& dev,
    const interconnect::WireVariation& wire, bool out_rising,
    timing::Samples* out_samples, SampleWorkspace* ws);

/// Shift a sampled waveform in time.
timing::Samples shifted_samples(const timing::Samples& w, double dt0);

/// Per-lane workspace pool for the laned statistical drivers: one
/// SampleWorkspace per thread lane, created on first touch. A lane is
/// only ever used by one thread at a time (runtime::ThreadPool contract),
/// so no locking is needed.
class LaneWorkspaces {
 public:
  explicit LaneWorkspaces(std::size_t threads);
  SampleWorkspace& lane(std::size_t k);

 private:
  std::vector<std::unique_ptr<SampleWorkspace>> lanes_;
};

}  // namespace lcsf::core
