// One characterized logic stage and the pooled per-sample engine scratch
// shared by the single-path (PathAnalyzer) and multi-path (GraphAnalyzer)
// analyzers.
//
// A stage is a driver cell plus its variational effective load: the RC
// wire (segmented per micron), the receiver pin capacitance, and the
// driver's chord conductances folded in (paper Table 1), reduced with
// PACT over the global wire parameters (W, H). Characterization happens
// once per distinct (cell, load) "block"; per-sample evaluation is a TETA
// transient through the pooled workspace below.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <tuple>
#include <vector>

#include "circuit/source_waveform.hpp"
#include "circuit/technology.hpp"
#include "interconnect/sakurai.hpp"
#include "mor/poleres.hpp"
#include "mor/variational.hpp"
#include "sim/diagnostics.hpp"
#include "teta/batch.hpp"
#include "teta/stage.hpp"
#include "timing/cells.hpp"
#include "timing/waveform.hpp"

namespace lcsf::core {

/// A stage output carried between gates: ramp parameters plus the
/// propagated waveform (adaptively compressed PWL) in absolute time.
struct StageWaveform {
  timing::RampParams params;
  circuit::SourceWaveform wave;
};

/// Memo key of the graph engine's per-sample stage cache: (gate id,
/// quantized input-ramp M bucket, quantized S bucket, rising).
using StageCacheKey =
    std::tuple<std::size_t, std::int64_t, std::int64_t, bool>;

/// Reusable per-worker scratch covering the whole per-sample pipeline
/// (ROM evaluation -> pole/residue extraction -> TETA transient). One
/// workspace per Monte-Carlo lane makes repeated per-sample evaluations
/// allocation-free after the first sample; see docs/performance.md.
struct SampleWorkspace {
  mor::ReducedModel rom;
  mor::PoleResidueWorkspace poleres;
  teta::TetaWorkspace teta;
  /// Reused TETA result: the waveform storage (time axis + per-step port
  /// vectors) is recycled across samples by the pooled simulate_stage
  /// overload.
  teta::TetaResult teta_result;

  /// Per-sample state of the multi-path graph engine (GraphAnalyzer),
  /// pooled here alongside the engine scratch: memoized stage outputs
  /// keyed by (gate id, input-ramp bucket) -- so stages shared between
  /// paths simulate once per sample -- and the per-net arrival front (the
  /// statistical-max winner seen so far at each net). Cleared at the
  /// start of every sample.
  std::map<StageCacheKey, StageWaveform> stage_cache;
  std::map<std::size_t, StageWaveform> net_arrival;
};

/// One characterized stage: driver cell + variational effective load.
struct StageModel {
  const timing::CellTemplate* cell = nullptr;
  /// Variational ROM of the effective load (wire + receiver gate cap +
  /// driver chords), over the global wire parameters (W, H).
  mor::VariationalRom load;
  double receiver_cap = 0.0;

  /// Resident heap footprint of the characterized load (cache accounting).
  std::size_t memory_bytes() const {
    return sizeof(*this) + load.memory_bytes();
  }
};

/// Engine knobs shared by every stage simulation of one analyzer.
struct StageSimOptions {
  double dt = 2e-12;             ///< TETA timestep [s]
  double stage_window = 2.0e-9;  ///< simulated window per stage [s]
  sim::RecoveryOptions recovery;
};

/// Gate capacitance presented by a cell's switching input pin (input 0),
/// with a Miller factor on the gate-drain overlap.
double input_pin_cap(const timing::CellTemplate& cell,
                     const circuit::Technology& tech);

/// Variational ROM of a stage's effective load: `segments` 1-um RC wire
/// segments loaded by `receiver_cap` at the far end, with the driver
/// cell's chord conductance folded into the near port.
mor::VariationalRom characterize_stage_load(const timing::CellTemplate& cell,
                                            const circuit::Technology& tech,
                                            std::size_t segments,
                                            double receiver_cap,
                                            std::size_t rom_internal_modes);

/// Simulate one stage with TETA: input waveform (local time), device
/// variation, wire parameters; returns far-port samples (local time).
/// `ws` (optional) supplies the pooled engine scratch. Throws
/// sim::SimulationError when the transient does not converge.
timing::Samples simulate_stage_model(const StageModel& st,
                                     const circuit::Technology& tech,
                                     const StageSimOptions& opt,
                                     const circuit::SourceWaveform& input,
                                     const timing::DeviceVariation& dev,
                                     const interconnect::WireVariation& wire,
                                     double window_scale,
                                     SampleWorkspace* ws);

/// Run a stage and extract the output ramp parameters, doubling the
/// simulation window (up to 4x) if the transition does not complete.
/// `shift` is added back to the measured arrival; `label` names the stage
/// in failure diagnostics. When `out_samples` is non-null it receives the
/// raw output samples shifted back to absolute time.
timing::RampParams measure_stage_with_retry(
    const StageModel& st, const circuit::Technology& tech,
    const StageSimOptions& opt, std::size_t label,
    const circuit::SourceWaveform& input, double shift,
    const timing::DeviceVariation& dev,
    const interconnect::WireVariation& wire, bool out_rising,
    timing::Samples* out_samples, SampleWorkspace* ws);

/// Shift a sampled waveform in time.
timing::Samples shifted_samples(const timing::Samples& w, double dt0);

/// Per-lane outcome of measure_stage_batch. On failure `diag` carries the
/// classified diagnostics the scalar measure_stage_with_retry would have
/// thrown as sim::SimulationError (same kind, same message).
struct StageMeasurement {
  timing::RampParams params;
  bool failed = false;
  sim::SimDiagnostics diag;
};

/// Reusable scratch of the batched per-sample pipeline: one scalar
/// SampleWorkspace per block slot (created on first touch, so the block
/// width can grow), the TETA lockstep SoA buffers, and the ROM / circuit /
/// dispatch staging used by measure_stage_batch. One BatchWorkspace per
/// Monte-Carlo lane; see LaneBatchWorkspaces and docs/performance.md.
struct BatchWorkspace {
  /// Ensure slot `k` exists and return its scalar workspace.
  SampleWorkspace& lane(std::size_t k);

  std::vector<std::unique_ptr<SampleWorkspace>> lanes;
  teta::BatchTetaWorkspace teta;

  // measure_stage_batch staging (opaque engine internals).
  std::vector<numeric::Vector> w;         ///< normalized wire sample per lane
  std::vector<mor::PoleResidueModel> z;   ///< stabilized load per lane
  std::vector<teta::StageCircuit> stages; ///< per-lane stage circuit
  std::vector<unsigned char> fallback;    ///< lanes rerun under the scalar path
  std::vector<const numeric::Vector*> wptr;
  std::vector<mor::ReducedModel*> romptr;
  std::vector<teta::BatchLane> teta_lanes;
  std::vector<std::size_t> slot;          ///< lane index per TETA batch slot
};

/// Lockstep-batched sibling of measure_stage_with_retry: measure the same
/// characterized stage at `inputs.size()` parameter samples (per-lane input
/// waveform, arrival shift, device and wire variation; `shifts`, `devs`,
/// `wires` must match `inputs` in size). The batch leg runs every lane at
/// window scale 1.0 through the SoA TETA engine; any lane that cannot stay
/// in lockstep -- ROM extraction failure, non-convergence, or an output
/// transition that does not complete in the window -- is transparently
/// rerun through the full scalar retry ladder, so per-lane results (values
/// bitwise, diagnostics verbatim) match a scalar measure_stage_with_retry
/// call. A lane that exhausts the ladder reports failed=true in `out`
/// instead of throwing, so one diverging sample never perturbs its block
/// neighbours (the stats::BatchPerformanceFn fail-soft contract). When
/// `out_samples` is non-null it is resized to the lane count and each
/// successful lane's raw output samples are stored shifted to absolute
/// time.
void measure_stage_batch(const StageModel& st,
                         const circuit::Technology& tech,
                         const StageSimOptions& opt, std::size_t label,
                         const std::vector<const circuit::SourceWaveform*>& inputs,
                         const std::vector<double>& shifts,
                         const std::vector<const timing::DeviceVariation*>& devs,
                         const std::vector<const interconnect::WireVariation*>& wires,
                         bool out_rising,
                         std::vector<timing::Samples>* out_samples,
                         std::vector<StageMeasurement>& out,
                         BatchWorkspace& bws);

/// Per-lane workspace pool for the laned statistical drivers: one
/// SampleWorkspace per thread lane, created on first touch. A lane is
/// only ever used by one thread at a time (runtime::ThreadPool contract),
/// so no locking is needed.
class LaneWorkspaces {
 public:
  explicit LaneWorkspaces(std::size_t threads);
  SampleWorkspace& lane(std::size_t k);

 private:
  std::vector<std::unique_ptr<SampleWorkspace>> lanes_;
};

/// Per-lane BatchWorkspace pool for the batch-dispatched statistical
/// drivers (same lane-exclusivity contract as LaneWorkspaces).
class LaneBatchWorkspaces {
 public:
  explicit LaneBatchWorkspaces(std::size_t threads);
  BatchWorkspace& lane(std::size_t k);

 private:
  std::vector<std::unique_ptr<BatchWorkspace>> lanes_;
};

}  // namespace lcsf::core
