#include "core/graph_analyzer.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>
#include <string>
#include <utility>

#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "teta/stage.hpp"

namespace lcsf::core {

using circuit::SourceWaveform;
using numeric::Vector;
using timing::RampParams;
using timing::Samples;
using timing::ssta::CanonicalForm;

GraphAnalyzer::GraphAnalyzer(GraphSpec spec)
    : spec_(std::move(spec)), graph_(spec_.netlist) {
  obs::ScopedSpan span("graph_characterize");
  if (spec_.top_k == 0) {
    throw std::invalid_argument("GraphAnalyzer: top_k must be positive");
  }
  segments_per_stage_ = std::max<std::size_t>(
      1, (spec_.linear_elements_per_stage > 2
              ? (spec_.linear_elements_per_stage - 2) / 2
              : 1));

  paths_ = graph_.k_most_critical_paths(spec_.top_k);
  if (paths_.empty()) {
    throw std::invalid_argument(
        "GraphAnalyzer: netlist has no latch-to-latch paths");
  }
  for (const auto& p : paths_) {
    subgraph_.insert(subgraph_.end(), p.gates.begin(), p.gates.end());
    endpoints_.push_back(p.end_net);
  }
  std::sort(subgraph_.begin(), subgraph_.end());
  subgraph_.erase(std::unique(subgraph_.begin(), subgraph_.end()),
                  subgraph_.end());
  std::sort(endpoints_.begin(), endpoints_.end());
  endpoints_.erase(std::unique(endpoints_.begin(), endpoints_.end()),
                   endpoints_.end());

  // Characterize each distinct (cell, effective load) block once; gates
  // instantiate the shared block ROM. The load of a gate is its wire plus
  // the input pin capacitance of every fanout gate (endpoint gates see a
  // latch D input, modeled as an INV pin).
  const auto& lib = timing::cell_library();
  const timing::GateNetlist& nl = spec_.netlist;
  const double latch_pin_cap =
      input_pin_cap(timing::find_cell("INV"), spec_.tech);
  std::map<std::pair<std::size_t, double>, std::size_t> block_index;
  stages_.resize(subgraph_.size());
  for (std::size_t slot = 0; slot < subgraph_.size(); ++slot) {
    const std::size_t g = subgraph_[slot];
    const timing::Gate& gate = nl.gates[g];
    double cap = 0.0;
    for (const timing::Gate& h : nl.gates) {
      for (std::size_t in : h.inputs) {
        if (in == gate.output) cap += input_pin_cap(lib.at(h.cell), spec_.tech);
      }
    }
    if (cap <= 0.0) cap = latch_pin_cap;

    GateStage& gs = stages_[slot];
    gs.model.cell = &lib.at(gate.cell);
    gs.model.receiver_cap = cap;
    const auto key = std::make_pair(gate.cell, cap);
    if (auto it = block_index.find(key); it != block_index.end()) {
      gs.block = it->second;
      gs.model.load = stages_[blocks_[gs.block].stage_slot].model.load;
      continue;
    }
    gs.model.load = characterize_stage_load(*gs.model.cell, spec_.tech,
                                            segments_per_stage_, cap,
                                            spec_.rom_internal_modes);
    gs.block = blocks_.size();
    blocks_.push_back({gate.cell, cap, slot});
    block_index.emplace(key, gs.block);
  }
}

StageSimOptions GraphAnalyzer::sim_options() const {
  StageSimOptions o;
  o.dt = spec_.dt;
  o.stage_window = spec_.stage_window;
  o.recovery = spec_.recovery;
  return o;
}

std::size_t GraphAnalyzer::memory_bytes() const {
  std::size_t total = sizeof(*this);
  total += stages_.capacity() * sizeof(GateStage);
  for (const GateStage& s : stages_) {
    total += s.model.memory_bytes() - sizeof(StageModel);
  }
  total += blocks_.capacity() * sizeof(Block);
  total += subgraph_.capacity() * sizeof(std::size_t);
  total += endpoints_.capacity() * sizeof(std::size_t);
  for (const timing::TimingPath& p : paths_) {
    total += sizeof(p) + p.gates.capacity() * sizeof(std::size_t) +
             p.switching_pin.capacity() * sizeof(std::size_t);
  }
  return total;
}

std::size_t GraphAnalyzer::slot_of(std::size_t gate) const {
  const auto it =
      std::lower_bound(subgraph_.begin(), subgraph_.end(), gate);
  return static_cast<std::size_t>(it - subgraph_.begin());
}

StageCacheKey GraphAnalyzer::cache_key(std::size_t gate,
                                       const RampParams& in) const {
  const double q = spec_.ramp_bucket_quantum > 0.0
                       ? spec_.ramp_bucket_quantum
                       : 1e-15;
  return {gate, std::llround(in.m / q), std::llround(in.s / q), in.rising};
}

StageWaveform GraphAnalyzer::simulate_slot(
    std::size_t slot, const StageWaveform& in,
    const timing::DeviceVariation& dev,
    const interconnect::WireVariation& wire, Workspace* ws) const {
  const GateStage& gs = stages_[slot];
  const double vdd = spec_.tech.vdd;
  // Localize time so the transition sits at ~1/4 of the stage window
  // (same recipe as PathAnalyzer::run_chain, bitwise included).
  const double shift =
      std::max(0.0, in.params.m - 0.25 * spec_.stage_window);
  const SourceWaveform local =
      shift > 0.0
          ? SourceWaveform::pwl(shifted_samples(in.wave.points(), -shift))
          : in.wave;
  const bool out_rising = in.params.rising != gs.model.cell->inverting;
  Samples out;
  StageWaveform res;
  res.params = measure_stage_with_retry(
      gs.model, spec_.tech, sim_options(), subgraph_[slot], local, shift,
      dev, wire, out_rising, &out, ws);
  // Propagate the fine-resolution PWL (adaptively compressed).
  res.wave = SourceWaveform::pwl(teta::compress_pwl(out, 1e-4 * vdd));
  return res;
}

GraphAnalyzer::SampleResult GraphAnalyzer::evaluate(
    const GraphSample& sample, Workspace& ws) const {
  if (sample.device.size() != subgraph_.size()) {
    throw std::invalid_argument("GraphAnalyzer: sample size mismatch");
  }
  SampleResult res;
  ws.stage_cache.clear();
  ws.net_arrival.clear();

  StageWaveform start;
  start.params = spec_.input;
  start.wave = spec_.input.to_source(spec_.tech.vdd);

  const timing::GateNetlist& nl = spec_.netlist;
  for (const timing::TimingPath& path : paths_) {
    for (std::size_t k = 0; k < path.gates.size(); ++k) {
      const std::size_t g = path.gates[k];
      const std::size_t in_net = nl.gates[g].inputs[path.switching_pin[k]];
      // The arrival front at the input net is the statistical-max winner
      // seen so far (paths run most-critical first); start nets carry the
      // shared stimulus.
      const StageWaveform* in = &start;
      if (auto it = ws.net_arrival.find(in_net);
          it != ws.net_arrival.end()) {
        in = &it->second;
      }
      const StageCacheKey key = cache_key(g, in->params);
      const StageWaveform* out = nullptr;
      if (auto it = ws.stage_cache.find(key); it != ws.stage_cache.end()) {
        out = &it->second;
        ++res.stage_cache_hits;
      } else {
        const std::size_t slot = slot_of(g);
        StageWaveform sw =
            simulate_slot(slot, *in, sample.device[slot], sample.wire, &ws);
        out = &ws.stage_cache.emplace(key, std::move(sw)).first->second;
        ++res.stages_simulated;
      }
      // Statistical max at the output net: keep the later 50% arrival
      // (its waveform propagates downstream).
      const auto [it, inserted] =
          ws.net_arrival.emplace(nl.gates[g].output, *out);
      if (!inserted) {
        ++res.merges;
        if (out->params.m > it->second.params.m) it->second = *out;
      }
    }
  }

  for (std::size_t net : endpoints_) {
    const StageWaveform& a = ws.net_arrival.at(net);
    EndpointDelay e;
    e.net = net;
    e.delay = a.params.m - spec_.input.m;
    e.slew = a.params.s;
    res.max_delay = std::max(res.max_delay, e.delay);
    res.endpoints.push_back(e);
  }

  obs::add_counter("stats.graph.paths", paths_.size());
  obs::add_counter("stats.graph.stages_simulated", res.stages_simulated);
  obs::add_counter("stats.graph.stage_cache_hits", res.stage_cache_hits);
  obs::add_counter("stats.graph.merges", res.merges);
  return res;
}

std::vector<double> GraphAnalyzer::per_path_delays(const GraphSample& sample,
                                                   Workspace& ws) const {
  if (sample.device.size() != subgraph_.size()) {
    throw std::invalid_argument("GraphAnalyzer: sample size mismatch");
  }
  StageWaveform start;
  start.params = spec_.input;
  start.wave = spec_.input.to_source(spec_.tech.vdd);

  std::vector<double> delays;
  delays.reserve(paths_.size());
  for (const timing::TimingPath& path : paths_) {
    StageWaveform cur = start;
    for (std::size_t g : path.gates) {
      const std::size_t slot = slot_of(g);
      cur = simulate_slot(slot, cur, sample.device[slot], sample.wire, &ws);
    }
    delays.push_back(cur.params.m - spec_.input.m);
  }
  return delays;
}

GraphSample GraphAnalyzer::sample_from_sources(
    const PathVariationModel& model, const Vector& w) const {
  const std::size_t per_stage = model.sources_per_stage();
  const std::size_t expected =
      per_stage * subgraph_.size() + model.global_sources();
  if (w.size() != expected) {
    throw std::invalid_argument(
        "GraphAnalyzer::sample_from_sources: wrong source count");
  }
  GraphSample s;
  s.device.resize(subgraph_.size());
  std::size_t idx = 0;
  for (std::size_t k = 0; k < subgraph_.size(); ++k) {
    if (model.std_dl > 0.0) {
      s.device[k].delta_l =
          w[idx++] * spec_.tech.sigma3_dl_frac * spec_.tech.lmin;
    }
    if (model.std_vt > 0.0) {
      s.device[k].delta_vt =
          w[idx++] * spec_.tech.sigma3_vt_frac * spec_.tech.nmos.vt0;
    }
  }
  if (model.std_wire_w > 0.0) {
    s.wire.width = w[idx++] * spec_.tech.wire_tol.width;
  }
  if (model.std_wire_h > 0.0) {
    s.wire.ild_thickness = w[idx++] * spec_.tech.wire_tol.ild_thickness;
  }
  return s;
}

std::vector<stats::VariationSource> GraphAnalyzer::sources(
    const PathVariationModel& model) const {
  std::vector<stats::VariationSource> src;
  for (std::size_t k = 0; k < subgraph_.size(); ++k) {
    if (model.std_dl > 0.0) src.push_back({.sigma = model.std_dl});
    if (model.std_vt > 0.0) src.push_back({.sigma = model.std_vt});
  }
  if (model.std_wire_w > 0.0) src.push_back({.sigma = model.std_wire_w});
  if (model.std_wire_h > 0.0) src.push_back({.sigma = model.std_wire_h});
  for (auto& s : src) s.kind = stats::VariationSource::Kind::kNormal;
  return src;
}

stats::MonteCarloResult GraphAnalyzer::monte_carlo(
    const PathVariationModel& model, const stats::RunOptions& opt) const {
  LaneWorkspaces pool(opt.exec.threads);
  stats::LanedPerformanceFn f = [this, &model, &pool](const Vector& w,
                                                      std::size_t lane) {
    return evaluate(sample_from_sources(model, w), pool.lane(lane))
        .max_delay;
  };
  return stats::Runner(opt).run_monte_carlo(f, sources(model));
}

std::vector<timing::ssta::BlockDelayModel> GraphAnalyzer::block_models(
    const PathVariationModel& model) const {
  obs::ScopedSpan span("graph_block_models");
  const double vdd = spec_.tech.vdd;
  const double m_local = 0.25 * spec_.stage_window;
  const double s_nom = spec_.input.s;

  std::vector<timing::ssta::BlockDelayModel> out;
  out.reserve(blocks_.size());
  for (const Block& b : blocks_) {
    const GateStage& gs = stages_[b.stage_slot];
    const bool out_rising = !gs.model.cell->inverting;  // rising input
    auto stage_delay_slew = [&](double s_in,
                                const timing::DeviceVariation& dev,
                                const interconnect::WireVariation& wire) {
      RampParams in{m_local, s_in, true};
      const RampParams o = measure_stage_with_retry(
          gs.model, spec_.tech, sim_options(), b.stage_slot,
          in.to_source(vdd), 0.0, dev, wire, out_rising, nullptr, nullptr);
      return std::make_pair(o.m - m_local, o.s);
    };

    const timing::DeviceVariation dev0{};
    const interconnect::WireVariation wire0{};
    const auto [d0, f0] = stage_delay_slew(s_nom, dev0, wire0);

    timing::ssta::BlockDelayModel m;
    m.cell = b.cell;
    m.load_cap = b.receiver_cap;
    m.input_slew = s_nom;
    m.nominal_delay = d0;
    m.nominal_slew = f0;

    // Central differences, normalized to one 3-sigma tolerance unit
    // (sample_from_sources applies the same scaling).
    const double h_w = 0.2;
    auto central = [&](auto&& plus, auto&& minus) {
      const auto [dp, fp] = plus();
      const auto [dm, fm] = minus();
      (void)fp;
      (void)fm;
      return (dp - dm) / (2.0 * h_w);
    };
    if (model.std_dl > 0.0) {
      const double step =
          h_w * spec_.tech.sigma3_dl_frac * spec_.tech.lmin;
      m.d_delay_dl = central(
          [&] {
            timing::DeviceVariation d{step, 0.0};
            return stage_delay_slew(s_nom, d, wire0);
          },
          [&] {
            timing::DeviceVariation d{-step, 0.0};
            return stage_delay_slew(s_nom, d, wire0);
          });
    }
    if (model.std_vt > 0.0) {
      const double step =
          h_w * spec_.tech.sigma3_vt_frac * spec_.tech.nmos.vt0;
      m.d_delay_vt = central(
          [&] {
            timing::DeviceVariation d{0.0, step};
            return stage_delay_slew(s_nom, d, wire0);
          },
          [&] {
            timing::DeviceVariation d{0.0, -step};
            return stage_delay_slew(s_nom, d, wire0);
          });
    }
    if (model.std_wire_w > 0.0) {
      m.d_delay_wire_w = central(
          [&] {
            interconnect::WireVariation wv;
            wv.width = h_w * spec_.tech.wire_tol.width;
            return stage_delay_slew(s_nom, dev0, wv);
          },
          [&] {
            interconnect::WireVariation wv;
            wv.width = -h_w * spec_.tech.wire_tol.width;
            return stage_delay_slew(s_nom, dev0, wv);
          });
    }
    if (model.std_wire_h > 0.0) {
      m.d_delay_wire_h = central(
          [&] {
            interconnect::WireVariation wv;
            wv.ild_thickness = h_w * spec_.tech.wire_tol.ild_thickness;
            return stage_delay_slew(s_nom, dev0, wv);
          },
          [&] {
            interconnect::WireVariation wv;
            wv.ild_thickness = -h_w * spec_.tech.wire_tol.ild_thickness;
            return stage_delay_slew(s_nom, dev0, wv);
          });
    }
    // Input-slew sensitivity (per second): available for slew-aware
    // refinements of the analytic composition.
    const double hs = 0.1 * std::max(s_nom, 10.0 * spec_.dt);
    {
      const auto [dp, fp] = stage_delay_slew(s_nom + hs, dev0, wire0);
      const auto [dm, fm] = stage_delay_slew(s_nom - hs, dev0, wire0);
      (void)fp;
      (void)fm;
      m.d_delay_slew = (dp - dm) / (2.0 * hs);
    }
    out.push_back(m);
  }
  return out;
}

std::vector<GraphAnalyzer::AnalyticEndpoint>
GraphAnalyzer::analytic_endpoints(const PathVariationModel& model) const {
  const auto blocks = block_models(model);
  const auto src = sources(model);
  const std::size_t nsrc = src.size();
  const std::size_t per_stage = model.sources_per_stage();

  // Subgraph fanin: the (gate -> switching input nets) edges the paths
  // actually use.
  std::map<std::size_t, std::vector<std::size_t>> fanin;
  for (const timing::TimingPath& path : paths_) {
    for (std::size_t k = 0; k < path.gates.size(); ++k) {
      const std::size_t g = path.gates[k];
      fanin[g].push_back(
          spec_.netlist.gates[g].inputs[path.switching_pin[k]]);
    }
  }
  for (auto& [g, nets] : fanin) {
    std::sort(nets.begin(), nets.end());
    nets.erase(std::unique(nets.begin(), nets.end()), nets.end());
  }

  // Canonical arrivals over the standard-normal source basis: sens[i] =
  // (delay per normalized unit) * sigma_i.
  std::map<std::size_t, CanonicalForm> arrival;
  for (std::size_t g : graph_.topo_order()) {
    const auto fit = fanin.find(g);
    if (fit == fanin.end()) continue;  // not on any enumerated path
    const std::size_t slot = slot_of(g);
    const timing::ssta::BlockDelayModel& bm = blocks[stages_[slot].block];

    CanonicalForm d = CanonicalForm::constant(bm.nominal_delay, nsrc);
    std::size_t idx = slot * per_stage;
    if (model.std_dl > 0.0) d.sens[idx++] = bm.d_delay_dl * model.std_dl;
    if (model.std_vt > 0.0) d.sens[idx++] = bm.d_delay_vt * model.std_vt;
    std::size_t gidx = per_stage * subgraph_.size();
    if (model.std_wire_w > 0.0) {
      d.sens[gidx++] = bm.d_delay_wire_w * model.std_wire_w;
    }
    if (model.std_wire_h > 0.0) {
      d.sens[gidx++] = bm.d_delay_wire_h * model.std_wire_h;
    }

    CanonicalForm merged;
    bool first = true;
    for (std::size_t in_net : fit->second) {
      const auto ait = arrival.find(in_net);
      const CanonicalForm a_in =
          ait != arrival.end()
              ? ait->second
              : CanonicalForm::constant(spec_.input.m, nsrc);
      const CanonicalForm cand = timing::ssta::sum(a_in, d);
      merged = first ? cand : timing::ssta::stat_max(merged, cand);
      first = false;
    }
    arrival[spec_.netlist.gates[g].output] = std::move(merged);
  }

  std::vector<AnalyticEndpoint> out;
  for (std::size_t net : endpoints_) {
    AnalyticEndpoint e;
    e.net = net;
    e.arrival = arrival.at(net);
    // Report the endpoint *delay* form (arrival minus the stimulus M).
    e.arrival.mean -= spec_.input.m;
    out.push_back(std::move(e));
  }
  return out;
}

}  // namespace lcsf::core
