#include "core/path.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <stdexcept>

#include "runtime/thread_pool.hpp"
#include "interconnect/coupled_lines.hpp"
#include "obs/span.hpp"
#include "spice/transient.hpp"
#include "teta/stage.hpp"

namespace lcsf::core {

using circuit::kGround;
using circuit::SourceWaveform;
using numeric::Vector;
using timing::RampParams;
using timing::Samples;

PathSpec PathSpec::from_benchmark(const circuit::Technology& tech,
                                  const timing::GateNetlist& nl,
                                  const timing::TimingPath& path,
                                  std::size_t linear_elements) {
  PathSpec spec;
  spec.tech = tech;
  spec.linear_elements_per_stage = linear_elements;
  for (std::size_t g : path.gates) {
    spec.cells.push_back(nl.gates[g].cell);
  }
  return spec;
}

PathAnalyzer::PathAnalyzer(PathSpec spec) : spec_(std::move(spec)) {
  obs::ScopedSpan span("characterize");
  if (spec_.cells.empty()) {
    throw std::invalid_argument("PathAnalyzer: empty path");
  }
  // linear elements per stage ~ segments (R) + segments + 1 (C) + receiver.
  segments_per_stage_ = std::max<std::size_t>(
      1, (spec_.linear_elements_per_stage > 2
              ? (spec_.linear_elements_per_stage - 2) / 2
              : 1));

  const auto& lib = timing::cell_library();
  bool rising = spec_.input.rising;
  // Stages with the same (driver cell, receiver cell) have identical
  // effective loads; characterize each combination once.
  std::map<std::pair<std::size_t, std::size_t>, mor::VariationalRom>
      rom_cache;
  for (std::size_t k = 0; k < spec_.cells.size(); ++k) {
    Stage st;
    st.model.cell = &lib.at(spec_.cells[k]);
    rising = st.model.cell->inverting ? !rising : rising;
    st.output_rising_if_input_rising = rising;

    const std::size_t receiver_idx =
        (k + 1 < spec_.cells.size())
            ? spec_.cells[k + 1]
            : static_cast<std::size_t>(
                  &timing::find_cell("INV") - lib.data());
    const timing::CellTemplate& receiver = lib.at(receiver_idx);
    st.model.receiver_cap = input_pin_cap(receiver, spec_.tech);

    const auto cache_key = std::make_pair(spec_.cells[k], receiver_idx);
    if (auto it = rom_cache.find(cache_key); it != rom_cache.end()) {
      st.model.load = it->second;
      stages_.push_back(std::move(st));
      continue;
    }

    st.model.load = characterize_stage_load(*st.model.cell, spec_.tech,
                                            segments_per_stage_,
                                            st.model.receiver_cap,
                                            spec_.rom_internal_modes);
    rom_cache.emplace(cache_key, st.model.load);
    stages_.push_back(std::move(st));
  }
}

StageSimOptions PathAnalyzer::sim_options() const {
  StageSimOptions o;
  o.dt = spec_.dt;
  o.stage_window = spec_.stage_window;
  o.recovery = spec_.recovery;
  return o;
}

Samples PathAnalyzer::simulate_stage(
    std::size_t k, const SourceWaveform& input,
    const timing::DeviceVariation& dev,
    const interconnect::WireVariation& wire, double window_scale,
    SampleWorkspace* ws) const {
  return simulate_stage_model(stages_[k].model, spec_.tech, sim_options(),
                              input, dev, wire, window_scale, ws);
}

RampParams PathAnalyzer::measure_with_retry(
    std::size_t k, const SourceWaveform& input, double shift,
    const timing::DeviceVariation& dev,
    const interconnect::WireVariation& wire, bool out_rising,
    Samples* out_samples, SampleWorkspace* ws) const {
  return measure_stage_with_retry(stages_[k].model, spec_.tech,
                                  sim_options(), k, input, shift, dev, wire,
                                  out_rising, out_samples, ws);
}

PathDelayResult PathAnalyzer::framework_delay(const PathSample& sample)
    const {
  return run_chain(sample, nullptr);
}

PathDelayResult PathAnalyzer::framework_delay(const PathSample& sample,
                                              SampleWorkspace& ws) const {
  return run_chain(sample, nullptr, &ws);
}

PathDelayResult PathAnalyzer::run_chain(
    const PathSample& sample,
    std::vector<timing::RampParams>* stage_inputs,
    SampleWorkspace* ws) const {
  if (sample.device.size() != stages_.size()) {
    throw std::invalid_argument("framework_delay: sample size mismatch");
  }
  const double vdd = spec_.tech.vdd;
  bool rising = spec_.input.rising;
  SourceWaveform wave = spec_.input.to_source(vdd);
  double m_current = spec_.input.m;

  RampParams out_params;
  for (std::size_t k = 0; k < stages_.size(); ++k) {
    // Localize time so the transition sits at ~1/4 of the stage window.
    const double shift =
        std::max(0.0, m_current - 0.25 * spec_.stage_window);
    SourceWaveform local =
        shift > 0.0
            ? SourceWaveform::pwl(shifted_samples(wave.points(), -shift))
            : wave;
    const bool out_rising = rising != stages_[k].model.cell->inverting;
    if (stage_inputs != nullptr) {
      // Ramp-equivalent parameters of this stage's input (for GA).
      stage_inputs->push_back(
          timing::measure_ramp(wave.points(), vdd, rising));
    }
    Samples out;
    out_params = measure_with_retry(k, local, shift, sample.device[k],
                                    sample.wire, out_rising, &out, ws);

    // Propagate the fine-resolution PWL (adaptively compressed).
    wave = SourceWaveform::pwl(teta::compress_pwl(out, 1e-4 * vdd));
    m_current = out_params.m;
    rising = out_rising;
  }
  PathDelayResult res;
  res.delay = out_params.m - spec_.input.m;
  res.output_slew = out_params.s;
  return res;
}

void PathAnalyzer::run_chain_batch(const std::vector<PathSample>& samples,
                                   BatchWorkspace& bws,
                                   std::vector<stats::BatchSlot>& out) const {
  const std::size_t nl = samples.size();
  const double vdd = spec_.tech.vdd;
  // Per-lane propagation state (what run_chain keeps in locals).
  std::vector<SourceWaveform> wave(nl, spec_.input.to_source(vdd));
  std::vector<double> m_current(nl, spec_.input.m);
  std::vector<RampParams> out_params(nl);
  std::vector<unsigned char> alive(nl, 1);
  // Staging for the per-stage block dispatch.
  std::vector<std::size_t> idx;
  std::vector<SourceWaveform> local;
  std::vector<const SourceWaveform*> inputs;
  std::vector<double> shifts;
  std::vector<const timing::DeviceVariation*> devs;
  std::vector<const interconnect::WireVariation*> wires;
  std::vector<Samples> souts;
  std::vector<StageMeasurement> meas;

  bool rising = spec_.input.rising;
  for (std::size_t k = 0; k < stages_.size(); ++k) {
    const bool out_rising = rising != stages_[k].model.cell->inverting;
    idx.clear();
    local.clear();
    shifts.clear();
    for (std::size_t l = 0; l < nl; ++l) {
      if (alive[l] == 0) continue;
      // Localize time so the transition sits at ~1/4 of the stage window
      // (same shift rule as run_chain).
      const double shift =
          std::max(0.0, m_current[l] - 0.25 * spec_.stage_window);
      local.push_back(shift > 0.0 ? SourceWaveform::pwl(shifted_samples(
                                        wave[l].points(), -shift))
                                  : wave[l]);
      idx.push_back(l);
      shifts.push_back(shift);
    }
    if (idx.empty()) break;
    inputs.clear();
    devs.clear();
    wires.clear();
    for (std::size_t s = 0; s < idx.size(); ++s) {
      inputs.push_back(&local[s]);
      devs.push_back(&samples[idx[s]].device[k]);
      wires.push_back(&samples[idx[s]].wire);
    }
    measure_stage_batch(stages_[k].model, spec_.tech, sim_options(), k,
                        inputs, shifts, devs, wires, out_rising, &souts,
                        meas, bws);
    for (std::size_t s = 0; s < idx.size(); ++s) {
      const std::size_t l = idx[s];
      if (meas[s].failed) {
        alive[l] = 0;
        out[l].failed = true;
        out[l].diag = meas[s].diag;
        continue;
      }
      // Propagate the fine-resolution PWL (adaptively compressed).
      wave[l] = SourceWaveform::pwl(teta::compress_pwl(souts[s], 1e-4 * vdd));
      m_current[l] = meas[s].params.m;
      out_params[l] = meas[s].params;
    }
    rising = out_rising;
  }
  for (std::size_t l = 0; l < nl; ++l) {
    if (alive[l] == 0) continue;
    out[l].value = out_params[l].m - spec_.input.m;
  }
}

PathDelayResult PathAnalyzer::spice_delay(const PathSample& sample) const {
  if (sample.device.size() != stages_.size()) {
    throw std::invalid_argument("spice_delay: sample size mismatch");
  }
  const double vdd_v = spec_.tech.vdd;
  const circuit::WireGeometry geom =
      interconnect::apply_variation(spec_.tech.wire, sample.wire);
  const auto pul = interconnect::sakurai_parasitics(geom);
  const double seg_r = pul.resistance * 1e-6;
  const double seg_c = pul.ground_capacitance * 1e-6;

  circuit::Netlist nl;
  const auto vdd = nl.add_node("vdd");
  nl.add_vsource(vdd, kGround, SourceWaveform::dc(vdd_v));
  const auto in0 = nl.add_node("in0");
  nl.add_vsource(in0, kGround, spec_.input.to_source(vdd_v));

  circuit::NodeId prev = in0;
  circuit::NodeId last_far = prev;
  for (std::size_t k = 0; k < stages_.size(); ++k) {
    const timing::CellTemplate& cell = *stages_[k].model.cell;
    const auto out = nl.add_node("s" + std::to_string(k) + "_out");
    // Side inputs tied to the sensitizing rails.
    std::vector<circuit::NodeId> ins(cell.num_inputs);
    ins[0] = prev;
    for (std::size_t pin = 1; pin < cell.num_inputs; ++pin) {
      ins[pin] = cell.side_values[pin] ? vdd : kGround;
    }
    timing::instantiate_cell(cell, spec_.tech, nl, out, ins, vdd,
                             sample.device[k]);
    // Wire ladder to the next stage.
    circuit::NodeId node = out;
    nl.add_capacitor(node, kGround, 0.5 * seg_c);
    for (std::size_t s = 0; s < segments_per_stage_; ++s) {
      const auto next = nl.add_node();
      nl.add_resistor(node, next, seg_r);
      nl.add_capacitor(next, kGround,
                       s + 1 == segments_per_stage_ ? 0.5 * seg_c : seg_c);
      node = next;
    }
    // Interior stages are loaded by the next cell's real gate caps (added
    // by freeze_device_capacitances); only the last stage's receiver needs
    // an explicit model.
    if (k + 1 == stages_.size()) {
      nl.add_capacitor(node, kGround, stages_[k].model.receiver_cap);
    }
    last_far = node;
    prev = node;
  }
  nl.freeze_device_capacitances();

  spice::TransientSimulator sim(nl);
  spice::TransientOptions opt;
  opt.dt = spec_.dt;
  opt.recovery = spec_.recovery;
  // The whole transition must march down the path inside one window.
  opt.tstop = spec_.input.m + 0.5 * spec_.input.s +
              static_cast<double>(stages_.size()) * spec_.stage_window;
  spice::TransientResult res = sim.run(opt);
  if (!res.converged) {
    sim::SimDiagnostics diag = res.diag;
    diag.detail = "whole-path SPICE: " + diag.detail;
    throw sim::SimulationError(std::move(diag));
  }
  bool rising = spec_.input.rising;
  for (const Stage& st : stages_) {
    rising = st.model.cell->inverting ? !rising : rising;
  }
  const RampParams out =
      timing::measure_ramp(res.waveform(last_far), vdd_v, rising);
  PathDelayResult r;
  r.delay = out.m - spec_.input.m;
  r.output_slew = out.s;
  return r;
}

PathSample PathAnalyzer::sample_from_sources(const PathVariationModel& model,
                                             const Vector& w) const {
  const std::size_t per_stage = model.sources_per_stage();
  const std::size_t expected =
      per_stage * stages_.size() + model.global_sources();
  if (w.size() != expected) {
    throw std::invalid_argument("sample_from_sources: wrong source count");
  }
  PathSample s;
  s.device.resize(stages_.size());
  std::size_t idx = 0;
  for (std::size_t k = 0; k < stages_.size(); ++k) {
    if (model.std_dl > 0.0) {
      s.device[k].delta_l =
          w[idx++] * spec_.tech.sigma3_dl_frac * spec_.tech.lmin;
    }
    if (model.std_vt > 0.0) {
      s.device[k].delta_vt =
          w[idx++] * spec_.tech.sigma3_vt_frac * spec_.tech.nmos.vt0;
    }
  }
  if (model.std_wire_w > 0.0) {
    s.wire.width = w[idx++] * spec_.tech.wire_tol.width;
  }
  if (model.std_wire_h > 0.0) {
    s.wire.ild_thickness = w[idx++] * spec_.tech.wire_tol.ild_thickness;
  }
  return s;
}

std::vector<stats::VariationSource> PathAnalyzer::sources(
    const PathVariationModel& model) const {
  std::vector<stats::VariationSource> src;
  for (std::size_t k = 0; k < stages_.size(); ++k) {
    if (model.std_dl > 0.0) src.push_back({.sigma = model.std_dl});
    if (model.std_vt > 0.0) src.push_back({.sigma = model.std_vt});
  }
  if (model.std_wire_w > 0.0) src.push_back({.sigma = model.std_wire_w});
  if (model.std_wire_h > 0.0) src.push_back({.sigma = model.std_wire_h});
  for (auto& s : src) s.kind = stats::VariationSource::Kind::kNormal;
  return src;
}

stats::MonteCarloResult PathAnalyzer::monte_carlo(
    const PathVariationModel& model,
    const stats::MonteCarloOptions& opt) const {
  return monte_carlo(model, stats::RunOptions::from(opt));
}

stats::MonteCarloResult PathAnalyzer::monte_carlo(
    const PathVariationModel& model, const stats::RunOptions& opt) const {
  LaneWorkspaces pool(opt.exec.threads);
  stats::LanedPerformanceFn f = [this, &model, &pool](const Vector& w,
                                                      std::size_t lane) {
    return framework_delay(sample_from_sources(model, w), pool.lane(lane))
        .delay;
  };
  LaneBatchWorkspaces bpool(opt.exec.threads);
  stats::BatchPerformanceFn fb =
      [this, &model, &bpool](const std::vector<Vector>& w, std::size_t lane,
                             std::vector<stats::BatchSlot>& out) {
        std::vector<PathSample> block;
        block.reserve(w.size());
        for (const Vector& wi : w) {
          block.push_back(sample_from_sources(model, wi));
        }
        run_chain_batch(block, bpool.lane(lane), out);
      };
  return stats::Runner(opt).run_monte_carlo(f, fb, sources(model));
}

stats::IsYieldEstimate PathAnalyzer::yield_importance(
    const PathVariationModel& model, double clock_period,
    const stats::RunOptions& opt) const {
  LaneWorkspaces pool(opt.exec.threads);
  stats::LanedPerformanceFn f = [this, &model, &pool](const Vector& w,
                                                      std::size_t lane) {
    return framework_delay(sample_from_sources(model, w), pool.lane(lane))
        .delay;
  };
  return stats::Runner(opt).run_yield_is(f, sources(model), clock_period);
}

PathAnalyzer::CorrelatedMcResult PathAnalyzer::monte_carlo_correlated(
    const PathVariationModel& model, double rho,
    const stats::MonteCarloOptions& opt) const {
  return monte_carlo_correlated(model, rho, stats::RunOptions::from(opt));
}

PathAnalyzer::CorrelatedMcResult PathAnalyzer::monte_carlo_correlated(
    const PathVariationModel& model, double rho,
    const stats::RunOptions& opt) const {
  const auto src = sources(model);
  const std::size_t nsrc = src.size();
  if (nsrc == 0) {
    throw std::invalid_argument("monte_carlo_correlated: no sources");
  }

  // Correlation structure: the per-stage device sources of the same kind
  // share a common factor with pairwise correlation rho (spatially
  // correlated manufacturing); different kinds and the global wire
  // sources stay independent. Build the block covariance and run PCA.
  const std::size_t per_stage = model.sources_per_stage();
  numeric::Matrix cov(nsrc, nsrc);
  for (std::size_t i = 0; i < nsrc; ++i) {
    for (std::size_t j = 0; j < nsrc; ++j) {
      double c = 0.0;
      if (i == j) {
        c = 1.0;
      } else if (per_stage > 0 && i < per_stage * stages_.size() &&
                 j < per_stage * stages_.size() &&
                 (i % per_stage) == (j % per_stage)) {
        c = rho;  // same parameter kind, different stage
      }
      cov(i, j) = c * src[i].sigma * src[j].sigma;
    }
  }
  stats::Pca pca(cov, Vector(nsrc, 0.0));
  const std::size_t nfactors = pca.factors_for(0.95);

  // Sample the leading independent factors; reverse-transform to the
  // physical sources (Sec. 4.1.1's "by-product reverse transformation").
  std::vector<stats::VariationSource> factor_src(nfactors);
  LaneWorkspaces pool(opt.exec.threads);
  stats::LanedPerformanceFn f = [this, &model, &pca, &pool](
                                    const Vector& z, std::size_t lane) {
    const Vector w = pca.from_factors(z);
    return framework_delay(sample_from_sources(model, w), pool.lane(lane))
        .delay;
  };
  LaneBatchWorkspaces bpool(opt.exec.threads);
  stats::BatchPerformanceFn fb =
      [this, &model, &pca, &bpool](const std::vector<Vector>& z,
                                   std::size_t lane,
                                   std::vector<stats::BatchSlot>& out) {
        std::vector<PathSample> block;
        block.reserve(z.size());
        for (const Vector& zi : z) {
          block.push_back(sample_from_sources(model, pca.from_factors(zi)));
        }
        run_chain_batch(block, bpool.lane(lane), out);
      };
  CorrelatedMcResult res;
  res.mc = stats::Runner(opt).run_monte_carlo(f, fb, factor_src);
  res.total_sources = nsrc;
  res.factors_used = nfactors;
  return res;
}

PathAnalyzer::GaResult PathAnalyzer::gradient_analysis(
    const PathVariationModel& model) const {
  const double vdd = spec_.tech.vdd;
  const double m_local = 0.25 * spec_.stage_window;
  std::size_t sims = 0;

  // Stage transfer at the saturated-ramp abstraction (Eq. 30): returns
  // (delay D, output slew F) for input slew s_in and stage-local sources.
  auto stage_dsf = [&](std::size_t k, double s_in, bool rising_in,
                       const timing::DeviceVariation& dev,
                       const interconnect::WireVariation& wire) {
    RampParams in{m_local, s_in, rising_in};
    ++sims;
    const bool out_rising = rising_in != stages_[k].model.cell->inverting;
    RampParams o = measure_with_retry(k, in.to_source(vdd), 0.0, dev, wire,
                                      out_rising, nullptr);
    return std::pair<double, double>{o.m - m_local, o.s};
  };

  // Source layout identical to sample_from_sources.
  const std::size_t per_stage = model.sources_per_stage();
  const std::size_t nsrc =
      per_stage * stages_.size() + model.global_sources();
  // Sensitivity state propagated along the path (Eq. 31).
  Vector dm(nsrc, 0.0);
  Vector ds(nsrc, 0.0);

  // Nominal chain with the true propagated waveform: gives the unbiased
  // nominal delay (the paper's GA means coincide with MC means) and the
  // per-stage nominal input slews about which the derivatives are taken.
  std::vector<RampParams> stage_in;
  PathSample nominal_sample;
  nominal_sample.device.resize(stages_.size());
  const PathDelayResult nominal_chain = run_chain(nominal_sample, &stage_in);
  sims += stages_.size();
  bool rising = spec_.input.rising;

  const double h_w = 0.2;   // normalized FD step for variation sources
  const double h_s = 0.1;   // relative FD step for the input slew

  for (std::size_t k = 0; k < stages_.size(); ++k) {
    const double s_in = stage_in[k].s;
    const timing::DeviceVariation dev0{};
    const interconnect::WireVariation wire0{};

    // dD/dS, dF/dS by central difference.
    const double hs = h_s * std::max(s_in, 10 * spec_.dt);
    const auto [dp, fp] = stage_dsf(k, s_in + hs, rising, dev0, wire0);
    const auto [dmn, fmn] = stage_dsf(k, s_in - hs, rising, dev0, wire0);
    const double dD_dS = (dp - dmn) / (2 * hs);
    const double dF_dS = (fp - fmn) / (2 * hs);

    // Local derivative of each source at this stage.
    Vector dD_dw(nsrc, 0.0), dF_dw(nsrc, 0.0);
    auto central = [&](auto&& make_plus, auto&& make_minus,
                       std::size_t src_idx) {
      const auto [dpl, fpl] = make_plus();
      const auto [dmi, fmi] = make_minus();
      dD_dw[src_idx] = (dpl - dmi) / (2 * h_w);
      dF_dw[src_idx] = (fpl - fmi) / (2 * h_w);
    };
    std::size_t idx = k * per_stage;
    if (model.std_dl > 0.0) {
      const double step = h_w * spec_.tech.sigma3_dl_frac * spec_.tech.lmin;
      central(
          [&] {
            timing::DeviceVariation d{step, 0.0};
            return stage_dsf(k, s_in, rising, d, wire0);
          },
          [&] {
            timing::DeviceVariation d{-step, 0.0};
            return stage_dsf(k, s_in, rising, d, wire0);
          },
          idx++);
    }
    if (model.std_vt > 0.0) {
      const double step =
          h_w * spec_.tech.sigma3_vt_frac * spec_.tech.nmos.vt0;
      central(
          [&] {
            timing::DeviceVariation d{0.0, step};
            return stage_dsf(k, s_in, rising, d, wire0);
          },
          [&] {
            timing::DeviceVariation d{0.0, -step};
            return stage_dsf(k, s_in, rising, d, wire0);
          },
          idx++);
    }
    std::size_t gidx = per_stage * stages_.size();
    if (model.std_wire_w > 0.0) {
      central(
          [&] {
            interconnect::WireVariation wv;
            wv.width = h_w * spec_.tech.wire_tol.width;
            return stage_dsf(k, s_in, rising, dev0, wv);
          },
          [&] {
            interconnect::WireVariation wv;
            wv.width = -h_w * spec_.tech.wire_tol.width;
            return stage_dsf(k, s_in, rising, dev0, wv);
          },
          gidx++);
    }
    if (model.std_wire_h > 0.0) {
      central(
          [&] {
            interconnect::WireVariation wv;
            wv.ild_thickness = h_w * spec_.tech.wire_tol.ild_thickness;
            return stage_dsf(k, s_in, rising, dev0, wv);
          },
          [&] {
            interconnect::WireVariation wv;
            wv.ild_thickness = -h_w * spec_.tech.wire_tol.ild_thickness;
            return stage_dsf(k, s_in, rising, dev0, wv);
          },
          gidx++);
    }

    // Recurrence of Eq. 31 with dM_out/dM_in = 1 (time invariance):
    //   dM_out/dw = dD/dw + dM_in/dw + dD/dS dS_in/dw
    //   dS_out/dw = dF/dw + dF/dS dS_in/dw.
    for (std::size_t l = 0; l < nsrc; ++l) {
      dm[l] = dm[l] + dD_dw[l] + dD_dS * ds[l];
      ds[l] = dF_dw[l] + dF_dS * ds[l];
    }
    rising = rising != stages_[k].model.cell->inverting;
  }

  // Eq. 24 over the normalized sources; the FD steps above were taken in
  // *physical* units scaled by h_w, so dD_dw is per normalized unit.
  const auto src = sources(model);
  double var = 0.0;
  for (std::size_t l = 0; l < nsrc; ++l) {
    var += src[l].sigma * src[l].sigma * dm[l] * dm[l];
  }

  GaResult res;
  res.nominal_delay = nominal_chain.delay;
  res.stddev = std::sqrt(var);
  res.simulations = sims;
  res.gradient = dm;
  return res;
}

PathAnalyzer::CornerResult PathAnalyzer::worst_case_corner(
    const PathVariationModel& model, double k_sigma) const {
  const auto ga = gradient_analysis(model);
  const auto src = sources(model);
  CornerResult res;
  res.corner.resize(src.size());
  for (std::size_t l = 0; l < src.size(); ++l) {
    const double direction = ga.gradient[l] >= 0.0 ? 1.0 : -1.0;
    res.corner[l] = direction * k_sigma * src[l].sigma;
  }
  res.delay =
      framework_delay(sample_from_sources(model, res.corner)).delay;
  return res;
}

std::size_t PathAnalyzer::total_linear_elements() const {
  // Per stage: wire R (segments) + wire C (segments + 1) + receiver cap.
  return stages_.size() * (2 * segments_per_stage_ + 2);
}

std::size_t PathAnalyzer::memory_bytes() const {
  std::size_t total = sizeof(*this) + stages_.capacity() * sizeof(Stage);
  for (const Stage& s : stages_) {
    total += s.model.memory_bytes() - sizeof(StageModel);
  }
  return total;
}

}  // namespace lcsf::core
