#include "timing/graph.hpp"

#include <algorithm>
#include <queue>
#include <string>

#include "sim/diagnostics.hpp"

namespace lcsf::timing {

TimingGraph::TimingGraph(const GateNetlist& nl) : nl_(&nl) {
  const std::size_t ngates = nl.gates.size();
  driver_.assign(nl.num_nets, kNone);
  for (std::size_t g = 0; g < ngates; ++g) {
    const Gate& gate = nl.gates[g];
    if (gate.output >= nl.num_nets) {
      sim::throw_invalid_input("TimingGraph: gate " + std::to_string(g) +
                               " output net out of range");
    }
    if (driver_[gate.output] != kNone) {
      sim::throw_invalid_input("TimingGraph: net " +
                               std::to_string(gate.output) +
                               " has two drivers");
    }
    driver_[gate.output] = g;
    for (std::size_t in : gate.inputs) {
      if (in >= nl.num_nets) {
        sim::throw_invalid_input("TimingGraph: gate " + std::to_string(g) +
                                 " input net out of range");
      }
    }
  }

  // Kahn levelization over gate-to-gate edges (driver gate of an input net
  // -> consumer gate). Inputs without a driver -- start nets and floating
  // nets -- contribute no edge, so their consumers are ready immediately;
  // a floating input later shows up as an unreachable arrival, not an
  // error (matching the single-path STA semantics).
  std::vector<std::vector<std::size_t>> fanout(ngates);
  std::vector<std::size_t> indegree(ngates, 0);
  for (std::size_t g = 0; g < ngates; ++g) {
    for (std::size_t in : nl.gates[g].inputs) {
      if (driver_[in] != kNone) {
        fanout[driver_[in]].push_back(g);
        ++indegree[g];
      }
    }
  }
  // Ready gates processed in ascending index order for a deterministic
  // topological order independent of the netlist's storage order.
  std::priority_queue<std::size_t, std::vector<std::size_t>,
                      std::greater<std::size_t>>
      ready;
  for (std::size_t g = 0; g < ngates; ++g) {
    if (indegree[g] == 0) ready.push(g);
  }
  topo_.reserve(ngates);
  while (!ready.empty()) {
    const std::size_t g = ready.top();
    ready.pop();
    topo_.push_back(g);
    for (std::size_t h : fanout[g]) {
      if (--indegree[h] == 0) ready.push(h);
    }
  }
  if (topo_.size() != ngates) {
    sim::throw_invalid_input(
        "TimingGraph: combinational cycle (" +
        std::to_string(ngates - topo_.size()) +
        " gates unreachable by levelization)");
  }

  // Unit-delay arrivals in levelized order.
  arrival_.assign(nl.num_nets, kNone);
  for (std::size_t n : nl.primary_inputs) arrival_[n] = 0;
  for (std::size_t n : nl.latch_outputs) arrival_[n] = 0;
  for (std::size_t g : topo_) {
    const Gate& gate = nl.gates[g];
    std::size_t worst = kNone;
    for (std::size_t in : gate.inputs) {
      if (arrival_[in] == kNone) continue;
      worst = (worst == kNone) ? arrival_[in] : std::max(worst, arrival_[in]);
    }
    if (worst != kNone) arrival_[gate.output] = worst + 1;
  }
}

namespace {

/// A partially enumerated path, built backward from its endpoint. `gates`
/// and `pins` are stored endpoint-first and reversed on completion.
struct Partial {
  std::size_t net = 0;      ///< current frontier net (start of the suffix)
  std::size_t end_net = 0;  ///< the latch-input endpoint
  std::size_t bound = 0;    ///< suffix length + arrival(net): exact best
                            ///< completion length (arrival is achievable)
  std::vector<std::size_t> gates;
  std::vector<std::size_t> pins;
};

/// Max-heap priority: longer bound first; ties broken deterministically
/// (smaller endpoint, then lexicographically smaller gate/pin suffix).
struct LowerPriority {
  bool operator()(const Partial& a, const Partial& b) const {
    if (a.bound != b.bound) return a.bound < b.bound;
    if (a.end_net != b.end_net) return a.end_net > b.end_net;
    if (a.gates != b.gates) return a.gates > b.gates;
    return a.pins > b.pins;
  }
};

}  // namespace

std::vector<TimingPath> TimingGraph::k_most_critical_paths(
    std::size_t k) const {
  std::vector<TimingPath> out;
  if (k == 0) return out;

  // Seed one partial per distinct reachable endpoint with at least one
  // gate on its path.
  std::vector<std::size_t> ends = nl_->latch_inputs;
  std::sort(ends.begin(), ends.end());
  ends.erase(std::unique(ends.begin(), ends.end()), ends.end());
  std::priority_queue<Partial, std::vector<Partial>, LowerPriority> heap;
  for (std::size_t e : ends) {
    if (arrival_[e] == kNone || arrival_[e] == 0) continue;
    Partial p;
    p.net = e;
    p.end_net = e;
    p.bound = arrival_[e];
    heap.push(std::move(p));
  }

  // Best-first expansion. The bound is exact (unit-delay arrival times are
  // attained by some prefix), so completed paths pop in descending length
  // order. A generous expansion cap guards against pathological graphs
  // with exponentially many equal-length paths.
  const std::size_t kMaxPops = 200000;
  std::size_t pops = 0;
  while (!heap.empty() && out.size() < k && pops++ < kMaxPops) {
    Partial p = heap.top();
    heap.pop();
    const std::size_t drv = driver_[p.net];
    if (drv == kNone) {
      // Reached a start net: the path is complete.
      TimingPath path;
      path.start_net = p.net;
      path.end_net = p.end_net;
      path.gates.assign(p.gates.rbegin(), p.gates.rend());
      path.switching_pin.assign(p.pins.rbegin(), p.pins.rend());
      out.push_back(std::move(path));
      continue;
    }
    const Gate& gate = nl_->gates[drv];
    for (std::size_t pin = 0; pin < gate.inputs.size(); ++pin) {
      const std::size_t in = gate.inputs[pin];
      if (arrival_[in] == kNone) continue;
      Partial q;
      q.net = in;
      q.end_net = p.end_net;
      q.bound = p.gates.size() + 1 + arrival_[in];
      q.gates = p.gates;
      q.gates.push_back(drv);
      q.pins = p.pins;
      q.pins.push_back(pin);
      heap.push(std::move(q));
    }
  }
  return out;
}

}  // namespace lcsf::timing
