// Gate-level netlist, unit-delay static timing analysis, and the ISCAS-89
// benchmark generator.
//
// The paper transforms gate-level ISCAS-89 benchmarks to transistor-level
// netlists, extracts latch-to-latch paths ordered by a unit-delay timing
// analyzer, and analyzes the longest one (Sec. 5.3). The original
// benchmark netlists are not shipped with the paper, so a seeded generator
// reproduces each circuit's *shape* -- its published longest-path stage
// count and an ISCAS-like gate count -- while the unit-delay STA and the
// path extraction are real (see DESIGN.md "Substitutions").
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "timing/cells.hpp"

namespace lcsf::timing {

struct Gate {
  std::size_t cell = 0;  ///< index into cell_library()
  std::vector<std::size_t> inputs;  ///< net ids
  std::size_t output = 0;           ///< net id
};

struct GateNetlist {
  std::string name;
  std::size_t num_nets = 0;
  std::vector<Gate> gates;  ///< topologically ordered
  std::vector<std::size_t> primary_inputs;  ///< path start nets
  std::vector<std::size_t> latch_outputs;   ///< path start nets
  std::vector<std::size_t> latch_inputs;    ///< path end nets
};

/// A combinational path: ordered gate indices from a start net to a latch
/// input. For each gate the *switching* input pin is recorded so the
/// transistor-level path can be sensitized.
struct TimingPath {
  std::vector<std::size_t> gates;
  std::vector<std::size_t> switching_pin;  ///< per gate, which input is on
                                           ///< the path
  std::size_t start_net = 0;
  std::size_t end_net = 0;
  std::size_t length() const { return gates.size(); }
};

/// Unit-delay STA: longest latch-to-latch (or PI-to-latch) path. Throws if
/// the netlist has no latch inputs or the path would be empty.
TimingPath longest_path(const GateNetlist& nl);

/// Arrival time of every net under unit gate delays (start nets at 0;
/// SIZE_MAX for unreachable nets).
std::vector<std::size_t> arrival_times(const GateNetlist& nl);

struct BenchmarkSpec {
  std::string name;
  std::size_t longest_path_stages = 5;  ///< published stage count
  std::size_t total_gates = 20;         ///< ISCAS-like circuit size
  std::size_t num_latches = 3;
  unsigned seed = 1;
};

/// The benchmark suite with the stage counts the paper reports. s1423
/// appears with 21 stages (Table 5); Table 4's row uses a deeper variant
/// (54) which is provided as "s1423d".
std::vector<BenchmarkSpec> iscas89_suite();
const BenchmarkSpec& find_benchmark(const std::string& name);

/// Deterministically generate a benchmark circuit whose unit-delay longest
/// path has exactly spec.longest_path_stages stages.
GateNetlist generate_benchmark(const BenchmarkSpec& spec);

}  // namespace lcsf::timing
