// Statistical STA algebra: first-order canonical delay forms, Clark's
// moment-matching statistical max, and the compact per-block variational
// delay model used for hierarchical reuse.
//
// Grounded in the hierarchical-SSTA / timing-model-extraction papers in
// PAPERS.md: an arrival time is carried as a canonical first-order form
//   A = mean + sum_i sens[i] * x_i + local * x_r
// over shared normalized N(0,1) sources x_i (per-gate device parameters,
// global wire parameters) plus an independent residual x_r. Sums along a
// path add means and sensitivities; at merge nets the max of two
// correlated Gaussians is moment-matched per Clark (1961), keeping the
// result in canonical form so downstream correlation is preserved.
#pragma once

#include <cstddef>

#include "numeric/matrix.hpp"

namespace lcsf::timing::ssta {

/// First-order canonical arrival/delay form over a fixed source basis.
struct CanonicalForm {
  double mean = 0.0;
  numeric::Vector sens;  ///< per-source sensitivity (basis fixed by caller)
  double local = 0.0;    ///< sigma of the independent residual term

  static CanonicalForm constant(double mean, std::size_t num_sources);
};

/// Var[A] = |sens|^2 + local^2.
double variance(const CanonicalForm& a);

/// Cov[A, B] over the shared sources (residuals are independent).
double covariance(const CanonicalForm& a, const CanonicalForm& b);

/// A + B for independent residuals: means and sensitivities add, the
/// residuals add in RSS.
CanonicalForm sum(const CanonicalForm& a, const CanonicalForm& b);

/// Clark's moment-matched max(A, B): the exact first two moments of the
/// max of two correlated Gaussians, re-expressed in canonical form with
/// tightness-weighted sensitivities (s_i = P*a_i + (1-P)*b_i where P is
/// the probability that A wins) and the residual sized so the total
/// variance matches the Clark variance exactly.
CanonicalForm stat_max(const CanonicalForm& a, const CanonicalForm& b);

/// Compact variational delay model of one characterized block -- a
/// (driver cell, effective load) combination. Extracted once per block by
/// core::GraphAnalyzer (central differences around the nominal input
/// ramp) and reused for every instantiation of the block in the graph;
/// sensitivities are per +1 *normalized* unit of each source, i.e. per
/// 3-sigma tolerance of the technology card.
struct BlockDelayModel {
  std::size_t cell = 0;       ///< driver cell (timing::cell_library index)
  double load_cap = 0.0;      ///< receiver pin cap identifying the block
  double input_slew = 0.0;    ///< slew the block was characterized at [s]
  double nominal_delay = 0.0; ///< 50%-in to 50%-out at nominal [s]
  double nominal_slew = 0.0;  ///< output slew at nominal [s]
  double d_delay_dl = 0.0;    ///< per normalized channel-length unit
  double d_delay_vt = 0.0;    ///< per normalized threshold unit
  double d_delay_wire_w = 0.0;  ///< per normalized wire-width unit
  double d_delay_wire_h = 0.0;  ///< per normalized ILD-thickness unit
  double d_delay_slew = 0.0;  ///< per second of input slew (dimensionless)
};

}  // namespace lcsf::timing::ssta
