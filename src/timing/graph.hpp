// Multi-path timing DAG over a gate netlist (ROADMAP "full-chip
// statistical timing graph", grounded in the hierarchical-SSTA papers in
// PAPERS.md).
//
// TimingGraph validates the netlist structure on construction -- at most
// one driver per net, no combinational cycles -- and computes a
// levelization that does NOT require GateNetlist::gates to be stored in
// topological order (the single-path STA in sta.cpp silently assumed
// that; see docs/timing_graph.md). On top of the levelization it provides
// unit-delay arrivals and the enumeration of the K most-critical
// latch-to-latch paths that core::GraphAnalyzer simulates at transistor
// level.
#pragma once

#include <cstddef>
#include <vector>

#include "timing/sta.hpp"

namespace lcsf::timing {

class TimingGraph {
 public:
  /// Sentinel for "no driver gate" / "unreachable net".
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  /// Builds the DAG. Throws sim::SimulationError (kInvalidInput) when a
  /// net has two drivers, a gate references an out-of-range net, or the
  /// gate graph is cyclic. Gate order in `nl` is irrelevant: the graph
  /// levelizes internally.
  explicit TimingGraph(const GateNetlist& nl);

  const GateNetlist& netlist() const { return *nl_; }

  /// Gate indices in a deterministic topological order (Kahn, ready gates
  /// processed in ascending index order).
  const std::vector<std::size_t>& topo_order() const { return topo_; }

  /// Driver gate of each net (kNone when the net is a primary input,
  /// latch output, or floating).
  const std::vector<std::size_t>& net_driver() const { return driver_; }

  /// Unit-delay arrival of each net. Start nets (primary inputs and latch
  /// outputs) arrive at 0; nets not reached from any start net -- e.g. a
  /// gate fed only by floating nets -- carry kNone.
  const std::vector<std::size_t>& arrival() const { return arrival_; }

  /// The K most-critical latch-to-latch (or PI-to-latch) paths, in
  /// descending unit-delay length. Ties are broken deterministically
  /// (smaller endpoint net first, then lexicographically smaller gate
  /// sequence). Returns fewer than `k` paths when the graph does not
  /// contain that many. Endpoints are GateNetlist::latch_inputs.
  std::vector<TimingPath> k_most_critical_paths(std::size_t k) const;

 private:
  const GateNetlist* nl_;
  std::vector<std::size_t> topo_;
  std::vector<std::size_t> driver_;
  std::vector<std::size_t> arrival_;
};

}  // namespace lcsf::timing
