// Transistor-level standard-cell library.
//
// The paper's Example 3 maps gate-level ISCAS-89 benchmarks onto "ten
// different logic cells" at transistor level; this is that library. Each
// cell is a template over symbolic nodes that can be instantiated either
// into a flat Netlist (for the SPICE baseline, which simulates the entire
// path) or into a teta::StageCircuit (for the framework's stage-by-stage
// evaluation).
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "circuit/netlist.hpp"
#include "circuit/technology.hpp"
#include "teta/stage.hpp"

namespace lcsf::timing {

/// Symbolic node of a cell template.
struct CellNode {
  enum class Kind { kOutput, kInput, kVdd, kGnd, kInternal };
  Kind kind = Kind::kOutput;
  std::size_t index = 0;

  static CellNode out() { return {Kind::kOutput, 0}; }
  static CellNode in(std::size_t i) { return {Kind::kInput, i}; }
  static CellNode vdd() { return {Kind::kVdd, 0}; }
  static CellNode gnd() { return {Kind::kGnd, 0}; }
  static CellNode internal(std::size_t i) { return {Kind::kInternal, i}; }
};

struct CellTransistor {
  circuit::MosType type;
  CellNode drain, gate, source;
  double w_over_l = 4.0;
};

/// Uniform per-instance manufacturing fluctuation applied to every device
/// of a cell instance (paper Example 3: channel-length reduction DL and
/// threshold shift VT).
struct DeviceVariation {
  double delta_l = 0.0;   ///< [m]
  double delta_vt = 0.0;  ///< [V]
};

struct CellTemplate {
  std::string name;
  std::size_t num_inputs = 1;
  std::size_t num_internals = 0;
  std::vector<CellTransistor> transistors;
  /// Output direction is opposite the switching input's when true. Input 0
  /// is always the switching (sensitized) input.
  bool inverting = true;
  /// Static values of the side inputs that sensitize input 0 (entry 0 is
  /// ignored).
  std::vector<bool> side_values;
  /// Boolean function, for the gate-level analyses.
  std::function<bool(const std::vector<bool>&)> eval;
};

/// The ten cells: INV, BUF, NAND2, NAND3, NOR2, NOR3, AOI21, OAI21, XOR2,
/// XNOR2.
const std::vector<CellTemplate>& cell_library();
const CellTemplate& find_cell(const std::string& name);

/// Instantiate into a flat netlist. `inputs` must have num_inputs entries;
/// internal nodes are created. Every device receives `var`.
void instantiate_cell(const CellTemplate& cell,
                      const circuit::Technology& tech, circuit::Netlist& nl,
                      circuit::NodeId out,
                      const std::vector<circuit::NodeId>& inputs,
                      circuit::NodeId vdd_node,
                      const DeviceVariation& var = {});

/// Instantiate into a TETA stage. The cell output is `out_node` (usually a
/// port); the switching input 0 is `in_node` (an input node); side inputs
/// are tied to rails per side_values.
void instantiate_cell(const CellTemplate& cell,
                      const circuit::Technology& tech,
                      teta::StageCircuit& stage, std::size_t out_node,
                      std::size_t in_node, std::size_t vdd_node,
                      std::size_t gnd_node, const DeviceVariation& var = {});

}  // namespace lcsf::timing
