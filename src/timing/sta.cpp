#include "timing/sta.hpp"

#include <algorithm>
#include <limits>
#include <random>
#include <stdexcept>

#include "timing/graph.hpp"

namespace lcsf::timing {

namespace {
constexpr std::size_t kUnreachable = std::numeric_limits<std::size_t>::max();
}

std::vector<std::size_t> arrival_times(const GateNetlist& nl) {
  // Delegates to the timing graph, which levelizes internally: a single
  // forward pass over nl.gates used to silently assume topological
  // storage order and returned garbage arrivals for gates stored before
  // their drivers. TimingGraph also rejects cyclic netlists with a
  // classified sim::SimulationError (kInvalidInput) instead of returning
  // wrong answers.
  return TimingGraph(nl).arrival();
}

TimingPath longest_path(const GateNetlist& nl) {
  if (nl.latch_inputs.empty()) {
    throw std::invalid_argument("longest_path: no latch inputs");
  }
  const auto arrival = arrival_times(nl);

  // Driver gate of each net.
  std::vector<std::size_t> driver(nl.num_nets, kUnreachable);
  for (std::size_t g = 0; g < nl.gates.size(); ++g) {
    driver[nl.gates[g].output] = g;
  }

  // Worst latch-input endpoint.
  std::size_t end_net = kUnreachable;
  for (std::size_t n : nl.latch_inputs) {
    if (arrival[n] == kUnreachable) continue;
    if (end_net == kUnreachable || arrival[n] > arrival[end_net]) {
      end_net = n;
    }
  }
  if (end_net == kUnreachable || arrival[end_net] == 0) {
    throw std::runtime_error("longest_path: no combinational path found");
  }

  // Backtrack through worst-arrival predecessors.
  TimingPath path;
  path.end_net = end_net;
  std::size_t net = end_net;
  while (driver[net] != kUnreachable) {
    const std::size_t g = driver[net];
    const Gate& gate = nl.gates[g];
    std::size_t worst_pin = 0;
    bool found = false;
    for (std::size_t pin = 0; pin < gate.inputs.size(); ++pin) {
      const std::size_t in = gate.inputs[pin];
      if (arrival[in] == kUnreachable) continue;
      if (!found || arrival[in] > arrival[gate.inputs[worst_pin]]) {
        worst_pin = pin;
        found = true;
      }
    }
    if (!found) throw std::logic_error("longest_path: dangling gate input");
    path.gates.push_back(g);
    path.switching_pin.push_back(worst_pin);
    net = gate.inputs[worst_pin];
  }
  path.start_net = net;
  std::reverse(path.gates.begin(), path.gates.end());
  std::reverse(path.switching_pin.begin(), path.switching_pin.end());
  return path;
}

std::vector<BenchmarkSpec> iscas89_suite() {
  // Stage counts from Tables 4/5; gate and latch counts shaped after the
  // real ISCAS-89 circuits.
  return {
      {"s27", 5, 13, 3, 27},        {"s208", 9, 96, 8, 208},
      {"s832", 9, 287, 5, 832},     {"s444", 12, 181, 21, 444},
      {"s1423", 21, 657, 74, 1423}, {"s1423d", 54, 657, 74, 1423},
      {"s9234", 58, 1000, 135, 9234},
  };
}

const BenchmarkSpec& find_benchmark(const std::string& name) {
  static const std::vector<BenchmarkSpec> suite = iscas89_suite();
  for (const auto& s : suite) {
    if (s.name == name) return s;
  }
  throw std::invalid_argument("find_benchmark: unknown circuit " + name);
}

GateNetlist generate_benchmark(const BenchmarkSpec& spec) {
  if (spec.longest_path_stages == 0 || spec.num_latches == 0) {
    throw std::invalid_argument("generate_benchmark: bad spec");
  }
  std::mt19937 rng(spec.seed);
  const auto& lib = cell_library();

  GateNetlist nl;
  nl.name = spec.name;

  auto new_net = [&nl]() { return nl.num_nets++; };

  // Primary inputs and latch outputs are the path start points.
  const std::size_t num_pi = 4;
  for (std::size_t k = 0; k < num_pi; ++k) {
    nl.primary_inputs.push_back(new_net());
  }
  for (std::size_t k = 0; k < spec.num_latches; ++k) {
    nl.latch_outputs.push_back(new_net());
  }

  // All nets created so far plus gate outputs; used for random side pins.
  std::vector<std::size_t> pool;
  for (std::size_t n = 0; n < nl.num_nets; ++n) pool.push_back(n);
  auto random_pool_net = [&]() {
    std::uniform_int_distribution<std::size_t> pick(0, pool.size() - 1);
    return pool[pick(rng)];
  };
  auto random_start_net = [&]() {
    std::uniform_int_distribution<std::size_t> pick(
        0, num_pi + spec.num_latches - 1);
    const std::size_t k = pick(rng);
    return k < num_pi ? nl.primary_inputs[k]
                      : nl.latch_outputs[k - num_pi];
  };
  std::uniform_int_distribution<std::size_t> pick_cell(0, lib.size() - 1);

  // The spine: a chain of exactly longest_path_stages gates from a latch
  // output to a latch input. Side pins connect to earlier nets only, so
  // the spine arrival grows by exactly one per gate.
  std::size_t prev = nl.latch_outputs[0];
  for (std::size_t s = 0; s < spec.longest_path_stages; ++s) {
    Gate g;
    g.cell = pick_cell(rng);
    const CellTemplate& cell = lib[g.cell];
    g.inputs.assign(cell.num_inputs, 0);
    g.inputs[0] = prev;
    for (std::size_t pin = 1; pin < cell.num_inputs; ++pin) {
      g.inputs[pin] = random_pool_net();
    }
    g.output = new_net();
    pool.push_back(g.output);
    prev = g.output;
    nl.gates.push_back(std::move(g));
  }
  nl.latch_inputs.push_back(prev);

  // Filler logic: shallow side chains ending at other latch inputs. Their
  // depth stays below the spine so the spine remains the longest path.
  const std::size_t filler =
      spec.total_gates > spec.longest_path_stages
          ? spec.total_gates - spec.longest_path_stages
          : 0;
  const std::size_t max_side_depth =
      spec.longest_path_stages > 2 ? spec.longest_path_stages - 2 : 1;
  std::uniform_int_distribution<std::size_t> pick_depth(1, max_side_depth);
  std::size_t emitted = 0;
  while (emitted < filler) {
    const std::size_t depth = std::min(pick_depth(rng), filler - emitted);
    // Chains start from PIs / latch outputs (arrival-0 nets).
    std::size_t chain_prev = random_start_net();
    for (std::size_t d = 0; d < depth; ++d) {
      Gate g;
      g.cell = pick_cell(rng);
      const CellTemplate& cell = lib[g.cell];
      g.inputs.assign(cell.num_inputs, 0);
      g.inputs[0] = chain_prev;
      for (std::size_t pin = 1; pin < cell.num_inputs; ++pin) {
        // Side pins restricted to arrival-0 nets to bound chain depth.
        g.inputs[pin] = random_start_net();
      }
      g.output = new_net();
      pool.push_back(g.output);
      chain_prev = g.output;
      nl.gates.push_back(std::move(g));
      ++emitted;
    }
    // Terminate the chain at a latch input. Once the circuit has more
    // chains than latches, latches are conceptually reused (multiple
    // combinational endpoints feeding the same latch through downstream
    // muxing): the endpoint is still registered so no generated logic is
    // invisible to STA. The old guard `if (latch_cursor < num_latches)`
    // silently dropped these endpoints, leaving dangling chains.
    nl.latch_inputs.push_back(chain_prev);
  }

  // Invariant: every gate either fans out to another gate or ends at a
  // registered latch input -- no dangling endpoints.
  std::vector<bool> consumed(nl.num_nets, false);
  for (const Gate& g : nl.gates) {
    for (std::size_t in : g.inputs) consumed[in] = true;
  }
  for (std::size_t n : nl.latch_inputs) consumed[n] = true;
  for (const Gate& g : nl.gates) {
    if (!consumed[g.output]) {
      throw std::logic_error("generate_benchmark: dangling gate output " +
                             std::to_string(g.output));
    }
  }
  return nl;
}

}  // namespace lcsf::timing
