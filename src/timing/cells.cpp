#include "timing/cells.hpp"

#include <stdexcept>

namespace lcsf::timing {

using circuit::MosType;

namespace {

using K = CellNode::Kind;
constexpr MosType N = MosType::kNmos;
constexpr MosType P = MosType::kPmos;

CellNode OUT() { return CellNode::out(); }
CellNode IN(std::size_t i) { return CellNode::in(i); }
CellNode VDD() { return CellNode::vdd(); }
CellNode GND() { return CellNode::gnd(); }
CellNode X(std::size_t i) { return CellNode::internal(i); }

std::vector<CellTemplate> build_library() {
  std::vector<CellTemplate> lib;

  {
    CellTemplate c;
    c.name = "INV";
    c.num_inputs = 1;
    c.transistors = {{P, OUT(), IN(0), VDD(), 8.0},
                     {N, OUT(), IN(0), GND(), 4.0}};
    c.inverting = true;
    c.side_values = {false};
    c.eval = [](const std::vector<bool>& a) { return !a[0]; };
    lib.push_back(std::move(c));
  }
  {
    CellTemplate c;
    c.name = "BUF";
    c.num_inputs = 1;
    c.num_internals = 1;
    c.transistors = {{P, X(0), IN(0), VDD(), 4.0},
                     {N, X(0), IN(0), GND(), 2.0},
                     {P, OUT(), X(0), VDD(), 12.0},
                     {N, OUT(), X(0), GND(), 6.0}};
    c.inverting = false;
    c.side_values = {false};
    c.eval = [](const std::vector<bool>& a) { return a[0]; };
    lib.push_back(std::move(c));
  }
  {
    CellTemplate c;
    c.name = "NAND2";
    c.num_inputs = 2;
    c.num_internals = 1;
    c.transistors = {{P, OUT(), IN(0), VDD(), 8.0},
                     {P, OUT(), IN(1), VDD(), 8.0},
                     {N, OUT(), IN(0), X(0), 8.0},
                     {N, X(0), IN(1), GND(), 8.0}};
    c.inverting = true;
    c.side_values = {false, true};
    c.eval = [](const std::vector<bool>& a) { return !(a[0] && a[1]); };
    lib.push_back(std::move(c));
  }
  {
    CellTemplate c;
    c.name = "NAND3";
    c.num_inputs = 3;
    c.num_internals = 2;
    c.transistors = {{P, OUT(), IN(0), VDD(), 8.0},
                     {P, OUT(), IN(1), VDD(), 8.0},
                     {P, OUT(), IN(2), VDD(), 8.0},
                     {N, OUT(), IN(0), X(0), 12.0},
                     {N, X(0), IN(1), X(1), 12.0},
                     {N, X(1), IN(2), GND(), 12.0}};
    c.inverting = true;
    c.side_values = {false, true, true};
    c.eval = [](const std::vector<bool>& a) {
      return !(a[0] && a[1] && a[2]);
    };
    lib.push_back(std::move(c));
  }
  {
    CellTemplate c;
    c.name = "NOR2";
    c.num_inputs = 2;
    c.num_internals = 1;
    c.transistors = {{P, X(0), IN(1), VDD(), 16.0},
                     {P, OUT(), IN(0), X(0), 16.0},
                     {N, OUT(), IN(0), GND(), 4.0},
                     {N, OUT(), IN(1), GND(), 4.0}};
    c.inverting = true;
    c.side_values = {false, false};
    c.eval = [](const std::vector<bool>& a) { return !(a[0] || a[1]); };
    lib.push_back(std::move(c));
  }
  {
    CellTemplate c;
    c.name = "NOR3";
    c.num_inputs = 3;
    c.num_internals = 2;
    c.transistors = {{P, X(0), IN(2), VDD(), 24.0},
                     {P, X(1), IN(1), X(0), 24.0},
                     {P, OUT(), IN(0), X(1), 24.0},
                     {N, OUT(), IN(0), GND(), 4.0},
                     {N, OUT(), IN(1), GND(), 4.0},
                     {N, OUT(), IN(2), GND(), 4.0}};
    c.inverting = true;
    c.side_values = {false, false, false};
    c.eval = [](const std::vector<bool>& a) {
      return !(a[0] || a[1] || a[2]);
    };
    lib.push_back(std::move(c));
  }
  {
    // AOI21: out = !(a b + c); a = in0 switches with b = 1, c = 0.
    CellTemplate c;
    c.name = "AOI21";
    c.num_inputs = 3;
    c.num_internals = 2;
    c.transistors = {{P, X(0), IN(0), VDD(), 16.0},
                     {P, X(0), IN(1), VDD(), 16.0},
                     {P, OUT(), IN(2), X(0), 16.0},
                     {N, OUT(), IN(0), X(1), 8.0},
                     {N, X(1), IN(1), GND(), 8.0},
                     {N, OUT(), IN(2), GND(), 4.0}};
    c.inverting = true;
    c.side_values = {false, true, false};
    c.eval = [](const std::vector<bool>& a) {
      return !((a[0] && a[1]) || a[2]);
    };
    lib.push_back(std::move(c));
  }
  {
    // OAI21: out = !((a + b) c); a = in0 switches with b = 0, c = 1.
    CellTemplate c;
    c.name = "OAI21";
    c.num_inputs = 3;
    c.num_internals = 2;
    c.transistors = {{P, X(0), IN(0), VDD(), 16.0},
                     {P, OUT(), IN(1), X(0), 16.0},
                     {P, OUT(), IN(2), VDD(), 8.0},
                     {N, OUT(), IN(0), X(1), 8.0},
                     {N, OUT(), IN(1), X(1), 8.0},
                     {N, X(1), IN(2), GND(), 8.0}};
    c.inverting = true;
    c.side_values = {false, false, true};
    c.eval = [](const std::vector<bool>& a) {
      return !((a[0] || a[1]) && a[2]);
    };
    lib.push_back(std::move(c));
  }
  {
    // Static CMOS XOR2 with local input inverters. Internal nodes:
    // 0 = a', 1 = b', 2/3 = PUN stack mids, 4/5 = PDN stack mids.
    CellTemplate c;
    c.name = "XOR2";
    c.num_inputs = 2;
    c.num_internals = 6;
    c.transistors = {// input inverters
                     {P, X(0), IN(0), VDD(), 8.0},
                     {N, X(0), IN(0), GND(), 4.0},
                     {P, X(1), IN(1), VDD(), 8.0},
                     {N, X(1), IN(1), GND(), 4.0},
                     // PUN: a' b  (gates a, b')
                     {P, X(2), IN(0), VDD(), 16.0},
                     {P, OUT(), X(1), X(2), 16.0},
                     // PUN: a b'  (gates a', b)
                     {P, X(3), X(0), VDD(), 16.0},
                     {P, OUT(), IN(1), X(3), 16.0},
                     // PDN: a b
                     {N, OUT(), IN(0), X(4), 8.0},
                     {N, X(4), IN(1), GND(), 8.0},
                     // PDN: a' b'
                     {N, OUT(), X(0), X(5), 8.0},
                     {N, X(5), X(1), GND(), 8.0}};
    // With the side input at 0, out = in0: non-inverting.
    c.inverting = false;
    c.side_values = {false, false};
    c.eval = [](const std::vector<bool>& a) { return a[0] != a[1]; };
    lib.push_back(std::move(c));
  }
  {
    // XNOR2: mirror of XOR2.
    CellTemplate c;
    c.name = "XNOR2";
    c.num_inputs = 2;
    c.num_internals = 6;
    c.transistors = {{P, X(0), IN(0), VDD(), 8.0},
                     {N, X(0), IN(0), GND(), 4.0},
                     {P, X(1), IN(1), VDD(), 8.0},
                     {N, X(1), IN(1), GND(), 4.0},
                     // PUN: a' b' (gates a, b)
                     {P, X(2), IN(0), VDD(), 16.0},
                     {P, OUT(), IN(1), X(2), 16.0},
                     // PUN: a b (gates a', b')
                     {P, X(3), X(0), VDD(), 16.0},
                     {P, OUT(), X(1), X(3), 16.0},
                     // PDN: a b' (gates a, b')
                     {N, OUT(), IN(0), X(4), 8.0},
                     {N, X(4), X(1), GND(), 8.0},
                     // PDN: a' b (gates a', b)
                     {N, OUT(), X(0), X(5), 8.0},
                     {N, X(5), IN(1), GND(), 8.0}};
    // With the side input at 0, out = !in0: inverting.
    c.inverting = true;
    c.side_values = {false, false};
    c.eval = [](const std::vector<bool>& a) { return a[0] == a[1]; };
    lib.push_back(std::move(c));
  }
  return lib;
}

}  // namespace

const std::vector<CellTemplate>& cell_library() {
  static const std::vector<CellTemplate> lib = build_library();
  return lib;
}

const CellTemplate& find_cell(const std::string& name) {
  for (const CellTemplate& c : cell_library()) {
    if (c.name == name) return c;
  }
  throw std::invalid_argument("find_cell: unknown cell " + name);
}

void instantiate_cell(const CellTemplate& cell,
                      const circuit::Technology& tech, circuit::Netlist& nl,
                      circuit::NodeId out,
                      const std::vector<circuit::NodeId>& inputs,
                      circuit::NodeId vdd_node, const DeviceVariation& var) {
  if (inputs.size() != cell.num_inputs) {
    throw std::invalid_argument("instantiate_cell: wrong input count");
  }
  std::vector<circuit::NodeId> internals(cell.num_internals);
  for (std::size_t k = 0; k < cell.num_internals; ++k) {
    internals[k] = nl.add_node();
  }
  auto resolve = [&](const CellNode& n) -> circuit::NodeId {
    switch (n.kind) {
      case K::kOutput:
        return out;
      case K::kInput:
        return inputs.at(n.index);
      case K::kVdd:
        return vdd_node;
      case K::kGnd:
        return circuit::kGround;
      case K::kInternal:
        return internals.at(n.index);
    }
    throw std::logic_error("instantiate_cell: bad node kind");
  };
  for (const CellTransistor& t : cell.transistors) {
    circuit::Mosfet m = (t.type == N)
                            ? tech.make_nmos(resolve(t.drain),
                                             resolve(t.gate),
                                             resolve(t.source), t.w_over_l)
                            : tech.make_pmos(resolve(t.drain),
                                             resolve(t.gate),
                                             resolve(t.source), t.w_over_l);
    m.delta_l = var.delta_l;
    m.delta_vt = var.delta_vt;
    nl.add_mosfet(std::move(m));
  }
}

void instantiate_cell(const CellTemplate& cell,
                      const circuit::Technology& tech,
                      teta::StageCircuit& stage, std::size_t out_node,
                      std::size_t in_node, std::size_t vdd_node,
                      std::size_t gnd_node, const DeviceVariation& var) {
  std::vector<std::size_t> internals(cell.num_internals);
  for (std::size_t k = 0; k < cell.num_internals; ++k) {
    internals[k] = stage.add_internal();
  }
  auto resolve = [&](const CellNode& n) -> std::size_t {
    switch (n.kind) {
      case K::kOutput:
        return out_node;
      case K::kInput:
        if (n.index == 0) return in_node;
        // Sensitizing side inputs tie to rails.
        return cell.side_values.at(n.index) ? vdd_node : gnd_node;
      case K::kVdd:
        return vdd_node;
      case K::kGnd:
        return gnd_node;
      case K::kInternal:
        return internals.at(n.index);
    }
    throw std::logic_error("instantiate_cell: bad node kind");
  };
  for (const CellTransistor& t : cell.transistors) {
    circuit::Mosfet m =
        (t.type == N)
            ? tech.make_nmos(static_cast<int>(resolve(t.drain)),
                             static_cast<int>(resolve(t.gate)),
                             static_cast<int>(resolve(t.source)),
                             t.w_over_l)
            : tech.make_pmos(static_cast<int>(resolve(t.drain)),
                             static_cast<int>(resolve(t.gate)),
                             static_cast<int>(resolve(t.source)),
                             t.w_over_l);
    m.delta_l = var.delta_l;
    m.delta_vt = var.delta_vt;
    stage.add_mosfet(std::move(m));
  }
}

}  // namespace lcsf::timing
