#include "timing/ssta.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace lcsf::timing::ssta {

namespace {

double phi_pdf(double x) {
  constexpr double kInvSqrt2Pi = 0.39894228040143267794;
  return kInvSqrt2Pi * std::exp(-0.5 * x * x);
}

double phi_cdf(double x) {
  constexpr double kInvSqrt2 = 0.70710678118654752440;
  return 0.5 * std::erfc(-x * kInvSqrt2);
}

void check_basis(const CanonicalForm& a, const CanonicalForm& b) {
  if (a.sens.size() != b.sens.size()) {
    throw std::invalid_argument("ssta: mismatched canonical source bases");
  }
}

}  // namespace

CanonicalForm CanonicalForm::constant(double mean, std::size_t num_sources) {
  CanonicalForm f;
  f.mean = mean;
  f.sens.assign(num_sources, 0.0);
  return f;
}

double variance(const CanonicalForm& a) {
  double v = a.local * a.local;
  for (double s : a.sens) v += s * s;
  return v;
}

double covariance(const CanonicalForm& a, const CanonicalForm& b) {
  check_basis(a, b);
  double c = 0.0;
  for (std::size_t i = 0; i < a.sens.size(); ++i) c += a.sens[i] * b.sens[i];
  return c;
}

CanonicalForm sum(const CanonicalForm& a, const CanonicalForm& b) {
  check_basis(a, b);
  CanonicalForm f;
  f.mean = a.mean + b.mean;
  f.sens.resize(a.sens.size());
  for (std::size_t i = 0; i < a.sens.size(); ++i) {
    f.sens[i] = a.sens[i] + b.sens[i];
  }
  f.local = std::sqrt(a.local * a.local + b.local * b.local);
  return f;
}

CanonicalForm stat_max(const CanonicalForm& a, const CanonicalForm& b) {
  check_basis(a, b);
  const double var_a = variance(a);
  const double var_b = variance(b);
  const double cov = covariance(a, b);
  const double theta2 = std::max(0.0, var_a + var_b - 2.0 * cov);
  const double theta = std::sqrt(theta2);

  // Degenerate spread: the two arrivals are (to first order) the same
  // random variable shifted by a constant -- the larger mean dominates.
  if (theta < 1e-300) return a.mean >= b.mean ? a : b;

  const double alpha = (a.mean - b.mean) / theta;
  const double p = phi_cdf(alpha);   // P(A >= B)
  const double q = 1.0 - p;
  const double dens = phi_pdf(alpha);

  CanonicalForm f;
  f.mean = a.mean * p + b.mean * q + theta * dens;
  // Clark's exact second moment of max(A, B).
  const double second = (a.mean * a.mean + var_a) * p +
                        (b.mean * b.mean + var_b) * q +
                        (a.mean + b.mean) * theta * dens;
  const double var_max = std::max(0.0, second - f.mean * f.mean);

  // Tightness-weighted sensitivities preserve downstream correlation.
  f.sens.resize(a.sens.size());
  double shared = 0.0;
  for (std::size_t i = 0; i < a.sens.size(); ++i) {
    f.sens[i] = p * a.sens[i] + q * b.sens[i];
    shared += f.sens[i] * f.sens[i];
  }
  // The residual absorbs the variance the shared terms cannot represent,
  // so Var[max] is matched exactly.
  f.local = std::sqrt(std::max(0.0, var_max - shared));
  return f;
}

}  // namespace lcsf::timing::ssta
