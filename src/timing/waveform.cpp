#include "timing/waveform.hpp"

#include <cmath>
#include <stdexcept>

namespace lcsf::timing {

circuit::SourceWaveform RampParams::to_source(double vdd) const {
  const double v0 = rising ? 0.0 : vdd;
  const double v1 = rising ? vdd : 0.0;
  const double start = m - 0.5 * s;
  return circuit::SourceWaveform::ramp(v0, v1, start, s);
}

double crossing_time(const Samples& w, double level, bool rising) {
  for (std::size_t k = 1; k < w.size(); ++k) {
    const auto [t0, v0] = w[k - 1];
    const auto [t1, v1] = w[k];
    const bool crossed = rising ? (v0 < level && v1 >= level)
                                : (v0 > level && v1 <= level);
    if (crossed) {
      if (v1 == v0) return t1;
      return t0 + (level - v0) / (v1 - v0) * (t1 - t0);
    }
  }
  return -1.0;
}

RampParams measure_ramp(const Samples& w, double vdd, bool rising) {
  RampParams p;
  p.rising = rising;
  p.m = crossing_time(w, 0.5 * vdd, rising);
  const double t20 = crossing_time(w, (rising ? 0.2 : 0.8) * vdd, rising);
  const double t80 = crossing_time(w, (rising ? 0.8 : 0.2) * vdd, rising);
  if (p.m < 0.0 || t20 < 0.0 || t80 < 0.0) {
    throw std::runtime_error(
        "measure_ramp: waveform does not complete the transition");
  }
  p.s = (t80 - t20) / 0.6;
  return p;
}

double stage_delay(const RampParams& in, const RampParams& out) {
  return out.m - in.m;
}

}  // namespace lcsf::timing
