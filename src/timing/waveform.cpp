#include "timing/waveform.hpp"

#include <cmath>
#include <stdexcept>

#include "numeric/fp_compare.hpp"

namespace lcsf::timing {

circuit::SourceWaveform RampParams::to_source(double vdd) const {
  const double v0 = rising ? 0.0 : vdd;
  const double v1 = rising ? vdd : 0.0;
  const double start = m - 0.5 * s;
  return circuit::SourceWaveform::ramp(v0, v1, start, s);
}

std::optional<double> crossing_time(const Samples& w, double level,
                                    bool rising) {
  // First segment that carries the waveform through `level` in the given
  // direction. The predicates are inclusive: a sample landing exactly on
  // the threshold is a crossing, and a waveform whose first sample sits
  // exactly at the threshold crosses at that sample's time (the strict
  // < / > predicates this replaces registered neither).
  for (std::size_t k = 1; k < w.size(); ++k) {
    const auto [t0, v0] = w[k - 1];
    const auto [t1, v1] = w[k];
    const bool crossed = rising ? (v0 <= level && v1 >= level)
                                : (v0 >= level && v1 <= level);
    if (!crossed) continue;
    // Flat segment pinned to the level (v0 == v1 == level given the
    // inclusive predicate): the level is first reached at the segment
    // start. Otherwise the denominator is nonzero and a v1 landing
    // exactly on `level` interpolates to exactly t1.
    if (numeric::exact_eq(v1, v0)) return t0;
    return t0 + (level - v0) / (v1 - v0) * (t1 - t0);
  }
  return std::nullopt;
}

RampParams measure_ramp(const Samples& w, double vdd, bool rising) {
  RampParams p;
  p.rising = rising;
  const auto m = crossing_time(w, 0.5 * vdd, rising);
  const auto t20 = crossing_time(w, (rising ? 0.2 : 0.8) * vdd, rising);
  const auto t80 = crossing_time(w, (rising ? 0.8 : 0.2) * vdd, rising);
  if (!m || !t20 || !t80) {
    throw std::runtime_error(
        "measure_ramp: waveform does not complete the transition");
  }
  p.m = *m;
  p.s = (*t80 - *t20) / 0.6;
  return p;
}

double stage_delay(const RampParams& in, const RampParams& out) {
  return out.m - in.m;
}

}  // namespace lcsf::timing
