// Cell library characterization: delay / output-slew lookup tables over
// (input slew, load capacitance), built by sweeping the TETA engine.
//
// This is the "library pre-characterization" usage the paper positions
// TETA for ("TETA: transistor-level engine for timing analysis"): once a
// cell's tables exist, gate-level timing queries are two bilinear
// interpolations -- and the tables themselves are produced by the same
// linear-centric stage evaluation used everywhere else in this library.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "circuit/technology.hpp"
#include "timing/cells.hpp"
#include "timing/waveform.hpp"

namespace lcsf::timing {

/// A (slew x load) grid of values with bilinear lookup.
class Table2d {
 public:
  Table2d() = default;
  Table2d(std::vector<double> slews, std::vector<double> loads);

  double& at(std::size_t si, std::size_t li);
  double at(std::size_t si, std::size_t li) const;

  /// Bilinear interpolation; clamps outside the grid (standard NLDM
  /// behaviour).
  double lookup(double slew, double load) const;

  const std::vector<double>& slews() const { return slews_; }
  const std::vector<double>& loads() const { return loads_; }

 private:
  std::vector<double> slews_;
  std::vector<double> loads_;
  std::vector<double> values_;  // slew-major
};

/// Characterized timing arcs of one cell for one input transition
/// direction (input 0 switching, side inputs sensitized).
struct CellTiming {
  std::string cell;
  bool input_rising = true;
  Table2d delay;        ///< 50% in -> 50% out [s]
  Table2d output_slew;  ///< full-swing-equivalent [s]
};

struct CharacterizeOptions {
  std::vector<double> slews{30e-12, 80e-12, 200e-12};
  std::vector<double> loads{2e-15, 10e-15, 40e-15};
  double dt = 1e-12;
  double window = 2.5e-9;
};

/// Sweep the TETA engine over the grid. The load is a lumped capacitor at
/// the cell output (the standard characterization load).
CellTiming characterize_cell(const CellTemplate& cell,
                             const circuit::Technology& tech,
                             bool input_rising,
                             const CharacterizeOptions& opt = {});

/// Single-point evaluation (used by the characterization sweep and the
/// interpolation-accuracy tests): returns {delay, output slew}.
std::pair<double, double> evaluate_cell_point(const CellTemplate& cell,
                                              const circuit::Technology& tech,
                                              bool input_rising, double slew,
                                              double load_cap,
                                              double dt = 1e-12,
                                              double window = 2.5e-9);

}  // namespace lcsf::timing
