#include "timing/characterize.hpp"

#include <algorithm>
#include <stdexcept>

#include "circuit/netlist.hpp"
#include "interconnect/coupled_lines.hpp"
#include "mor/pact.hpp"
#include "mor/poleres.hpp"
#include "mor/variational.hpp"
#include "teta/stage.hpp"

namespace lcsf::timing {

Table2d::Table2d(std::vector<double> slews, std::vector<double> loads)
    : slews_(std::move(slews)),
      loads_(std::move(loads)),
      values_(slews_.size() * loads_.size(), 0.0) {
  if (slews_.empty() || loads_.empty()) {
    throw std::invalid_argument("Table2d: empty axis");
  }
  if (!std::is_sorted(slews_.begin(), slews_.end()) ||
      !std::is_sorted(loads_.begin(), loads_.end())) {
    throw std::invalid_argument("Table2d: axes must be ascending");
  }
}

double& Table2d::at(std::size_t si, std::size_t li) {
  return values_.at(si * loads_.size() + li);
}

double Table2d::at(std::size_t si, std::size_t li) const {
  return values_.at(si * loads_.size() + li);
}

namespace {

/// Index of the interval containing x (clamped), plus the local fraction.
std::pair<std::size_t, double> bracket(const std::vector<double>& axis,
                                       double x) {
  if (axis.size() == 1) return {0, 0.0};
  if (x <= axis.front()) return {0, 0.0};
  if (x >= axis.back()) return {axis.size() - 2, 1.0};
  std::size_t lo = 0;
  while (lo + 2 < axis.size() && axis[lo + 1] <= x) ++lo;
  const double frac = (x - axis[lo]) / (axis[lo + 1] - axis[lo]);
  return {lo, frac};
}

}  // namespace

double Table2d::lookup(double slew, double load) const {
  const auto [si, sf] = bracket(slews_, slew);
  const auto [li, lf] = bracket(loads_, load);
  const std::size_t si1 = std::min(si + 1, slews_.size() - 1);
  const std::size_t li1 = std::min(li + 1, loads_.size() - 1);
  const double v00 = at(si, li);
  const double v01 = at(si, li1);
  const double v10 = at(si1, li);
  const double v11 = at(si1, li1);
  return (1 - sf) * ((1 - lf) * v00 + lf * v01) +
         sf * ((1 - lf) * v10 + lf * v11);
}

std::pair<double, double> evaluate_cell_point(
    const CellTemplate& cell, const circuit::Technology& tech,
    bool input_rising, double slew, double load_cap, double dt,
    double window) {
  // Input ramp positioned early in the window.
  RampParams in{0.25 * window, slew, input_rising};

  teta::StageCircuit stage;
  const std::size_t out = stage.add_port();
  const std::size_t in_node = stage.add_input(in.to_source(tech.vdd));
  const std::size_t vdd = stage.add_rail(tech.vdd);
  const std::size_t gnd = stage.add_rail(0.0);
  instantiate_cell(cell, tech, stage, out, in_node, vdd, gnd);
  stage.freeze_device_capacitances();

  // Lumped-cap characterization load.
  circuit::Netlist load;
  const auto port = load.add_node("port");
  load.add_capacitor(port, circuit::kGround, load_cap);
  auto pencil = interconnect::build_ported_pencil(load, {port});
  pencil = mor::with_port_conductance(
      std::move(pencil), stage.port_chord_conductances(tech.vdd));
  const auto z = mor::extract_pole_residue(
      mor::pact_reduce(pencil, mor::PactOptions{1}).model);

  teta::TetaOptions opt;
  opt.dt = dt;
  opt.tstop = window;
  opt.vdd = tech.vdd;
  const auto res = teta::simulate_stage(stage, z, opt);
  if (!res.converged) {
    throw std::runtime_error("evaluate_cell_point: " + res.failure());
  }
  const bool out_rising = input_rising != cell.inverting;
  const RampParams o = measure_ramp(res.waveform(0), tech.vdd, out_rising);
  return {o.m - in.m, o.s};
}

CellTiming characterize_cell(const CellTemplate& cell,
                             const circuit::Technology& tech,
                             bool input_rising,
                             const CharacterizeOptions& opt) {
  CellTiming t;
  t.cell = cell.name;
  t.input_rising = input_rising;
  t.delay = Table2d(opt.slews, opt.loads);
  t.output_slew = Table2d(opt.slews, opt.loads);
  for (std::size_t si = 0; si < opt.slews.size(); ++si) {
    for (std::size_t li = 0; li < opt.loads.size(); ++li) {
      const auto [d, s] =
          evaluate_cell_point(cell, tech, input_rising, opt.slews[si],
                              opt.loads[li], opt.dt, opt.window);
      t.delay.at(si, li) = d;
      t.output_slew.at(si, li) = s;
    }
  }
  return t;
}

}  // namespace lcsf::timing
