// Waveform-function abstraction (paper Sec. 4.2): the saturated-ramp model
// with parameters (M, S) -- 50% arrival time and slew -- plus measurement
// utilities that extract those parameters from simulated waveforms.
#pragma once

#include <optional>
#include <utility>
#include <vector>

#include "circuit/source_waveform.hpp"

namespace lcsf::timing {

/// Saturated-ramp waveform parameters P_w = (M, S) of paper Eq. 29.
struct RampParams {
  double m = 0.0;      ///< 50% crossing time [s]
  double s = 0.0;      ///< slew: 20%-80% transition time scaled to full
                       ///< swing [s]
  bool rising = true;  ///< transition direction

  /// Materialize as a stimulus: linear ramp centred on M with total
  /// transition time S between the rails 0 and vdd.
  circuit::SourceWaveform to_source(double vdd) const;
};

using Samples = std::vector<std::pair<double, double>>;

/// First time the waveform reaches `level` in the given direction
/// (linearly interpolated). A sample landing exactly on the threshold
/// counts as a crossing; a waveform whose first sample is already at (or
/// past) the threshold crosses at that sample's time. Returns
/// std::nullopt if the level is never reached -- crossing times
/// themselves may be legitimately negative (a ramp starting before t=0),
/// which is why the old -1.0 sentinel was retired.
std::optional<double> crossing_time(const Samples& w, double level,
                                    bool rising);

/// Extract (M, S) from a simulated transition between 0 and vdd.
/// S is measured 20%-80% and scaled by 1/0.6 to the full-swing equivalent.
/// Throws std::runtime_error if the waveform does not complete the
/// transition.
RampParams measure_ramp(const Samples& w, double vdd, bool rising);

/// Stage delay: 50% input crossing to 50% output crossing.
double stage_delay(const RampParams& in, const RampParams& out) ;

}  // namespace lcsf::timing
