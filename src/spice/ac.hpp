// Small-signal AC analysis.
//
// Linearizes the MOSFETs at the DC operating point and solves the complex
// MNA system (G_op + jw C) x = b at each frequency. Used to validate
// reduced-order macromodels against full netlists through the same
// simulator-level interface, and as a standard capability of the baseline
// engine.
#pragma once

#include <complex>
#include <vector>

#include "circuit/netlist.hpp"
#include "numeric/complex_matrix.hpp"

namespace lcsf::spice {

struct AcOptions {
  /// Index into netlist.vsources() of the source carrying the unit AC
  /// stimulus (all other sources are AC-grounded).
  std::size_t ac_source = 0;
  std::vector<double> frequencies;  ///< [Hz]
  double gmin = 1e-12;
};

struct AcResult {
  std::vector<double> frequencies;
  /// response[k][n] = complex node voltage phasor of node n at
  /// frequencies[k], normalized to the unit stimulus.
  std::vector<numeric::CVector> response;

  numeric::Complex at(std::size_t freq_index, circuit::NodeId node) const {
    return response.at(freq_index).at(static_cast<std::size_t>(node));
  }
};

/// Run the AC sweep. Grounded voltage sources only (as the transient
/// engine). Throws std::runtime_error if the DC operating point fails.
AcResult ac_analysis(const circuit::Netlist& nl, const AcOptions& opt);

/// Logarithmically spaced frequency grid [f_lo, f_hi], n points.
std::vector<double> log_frequencies(double f_lo, double f_hi,
                                    std::size_t n);

}  // namespace lcsf::spice
