#include "spice/ac.hpp"

#include <cmath>
#include <stdexcept>

#include "circuit/mosfet.hpp"
#include "sim/diagnostics.hpp"
#include "spice/transient.hpp"

namespace lcsf::spice {

using circuit::kGround;
using circuit::NodeId;
using numeric::Complex;
using numeric::ComplexMatrix;
using numeric::CVector;

std::vector<double> log_frequencies(double f_lo, double f_hi,
                                    std::size_t n) {
  if (f_lo <= 0.0 || f_hi <= f_lo || n < 2) {
    sim::throw_invalid_input("log_frequencies: bad grid");
  }
  std::vector<double> f(n);
  const double ratio = std::log(f_hi / f_lo);
  for (std::size_t k = 0; k < n; ++k) {
    f[k] = f_lo * std::exp(ratio * static_cast<double>(k) /
                           static_cast<double>(n - 1));
  }
  return f;
}

AcResult ac_analysis(const circuit::Netlist& nl, const AcOptions& opt) {
  if (opt.ac_source >= nl.vsources().size()) {
    sim::throw_invalid_input("ac_analysis: bad ac_source index");
  }
  // DC operating point via the transient engine (shared device handling).
  TransientSimulator dc_sim(nl);
  const numeric::Vector vop = dc_sim.dc_operating_point();

  // Unknown indexing: ground = -1, source nodes = -2-k, else sequential.
  std::vector<int> code(nl.node_count(), 0);
  code[kGround] = -1;
  for (std::size_t k = 0; k < nl.vsources().size(); ++k) {
    code[static_cast<std::size_t>(nl.vsources()[k].pos)] =
        -2 - static_cast<int>(k);
  }
  std::size_t nu = 0;
  for (std::size_t n = 1; n < nl.node_count(); ++n) {
    if (code[n] >= 0) code[n] = static_cast<int>(nu++);
  }

  // AC value of each known node: 1 for the stimulus, 0 otherwise.
  auto known_ac = [&](int c) -> Complex {
    const auto k = static_cast<std::size_t>(-2 - c);
    return k == opt.ac_source ? Complex{1.0, 0.0} : Complex{0.0, 0.0};
  };

  AcResult res;
  res.frequencies = opt.frequencies;
  for (double f : opt.frequencies) {
    const Complex s{0.0, 2.0 * M_PI * f};
    ComplexMatrix y(nu, nu);
    CVector rhs(nu, Complex{0.0, 0.0});

    auto stamp = [&](NodeId a, NodeId b, Complex val) {
      const int ca = code[static_cast<std::size_t>(a)];
      const int cb = code[static_cast<std::size_t>(b)];
      if (ca >= 0) {
        y(static_cast<std::size_t>(ca), static_cast<std::size_t>(ca)) += val;
        if (cb >= 0) {
          y(static_cast<std::size_t>(ca), static_cast<std::size_t>(cb)) -=
              val;
        } else if (cb <= -2) {
          rhs[static_cast<std::size_t>(ca)] += val * known_ac(cb);
        }
      }
      if (cb >= 0) {
        y(static_cast<std::size_t>(cb), static_cast<std::size_t>(cb)) += val;
        if (ca >= 0) {
          y(static_cast<std::size_t>(cb), static_cast<std::size_t>(ca)) -=
              val;
        } else if (ca <= -2) {
          rhs[static_cast<std::size_t>(cb)] += val * known_ac(ca);
        }
      }
    };

    for (const auto& r : nl.resistors()) stamp(r.a, r.b, 1.0 / r.ohms);
    for (const auto& c : nl.capacitors()) stamp(c.a, c.b, s * c.farads);
    for (const auto& l : nl.inductors()) {
      stamp(l.a, l.b, 1.0 / (s * l.henries + 1e-300));
    }
    for (std::size_t i = 0; i < nu; ++i) y(i, i) += opt.gmin;

    // Device small-signal stamps at the operating point.
    for (const auto& m : nl.mosfets()) {
      const auto op = circuit::mosfet_eval(
          m, vop[static_cast<std::size_t>(m.gate)],
          vop[static_cast<std::size_t>(m.drain)],
          vop[static_cast<std::size_t>(m.source)]);
      const struct {
        NodeId node;
        double coeff;
      } cols[3] = {{m.gate, op.gm},
                   {m.drain, op.gds},
                   {m.source, -(op.gm + op.gds)}};
      for (int sign : {+1, -1}) {
        const NodeId row_node = sign > 0 ? m.drain : m.source;
        const int row = code[static_cast<std::size_t>(row_node)];
        if (row < 0) continue;
        for (const auto& cc : cols) {
          const int col = code[static_cast<std::size_t>(cc.node)];
          const Complex val{sign * cc.coeff, 0.0};
          if (val == Complex{}) continue;
          if (col >= 0) {
            y(static_cast<std::size_t>(row),
              static_cast<std::size_t>(col)) += val;
          } else if (col <= -2) {
            rhs[static_cast<std::size_t>(row)] -= val * known_ac(col);
          }
        }
      }
    }

    const CVector x = numeric::ComplexLu(y).solve(rhs);
    CVector full(nl.node_count(), Complex{0.0, 0.0});
    for (std::size_t n = 0; n < nl.node_count(); ++n) {
      if (code[n] >= 0) {
        full[n] = x[static_cast<std::size_t>(code[n])];
      } else if (code[n] <= -2) {
        full[n] = known_ac(code[n]);
      }
    }
    res.response.push_back(std::move(full));
  }
  return res;
}

}  // namespace lcsf::spice
