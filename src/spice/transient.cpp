#include "spice/transient.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "circuit/mosfet.hpp"
#include "numeric/fp_compare.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"

namespace lcsf::spice {

using circuit::kGround;
using circuit::NodeId;
using numeric::SparseLu;
using numeric::SparseMatrix;
using numeric::Vector;

namespace {
constexpr int kGroundMark = -1;
// DC approximation of an inductor: a strong short [S].
constexpr double kInductorDcShort = 1e3;
}  // namespace

std::vector<std::pair<double, double>> TransientResult::waveform(
    NodeId n) const {
  // `time` is populated even when store_waveforms was off; indexing
  // node_voltages by time's length would read out of bounds then.
  if (node_voltages.size() != time.size()) {
    sim::throw_invalid_input("TransientResult: no stored waveforms");
  }
  std::vector<std::pair<double, double>> w;
  w.reserve(time.size());
  for (std::size_t k = 0; k < time.size(); ++k) {
    w.emplace_back(time[k], node_voltages[k][static_cast<std::size_t>(n)]);
  }
  return w;
}

double TransientResult::final_voltage(NodeId n) const {
  if (node_voltages.empty()) {
    sim::throw_invalid_input("TransientResult: no stored waveforms");
  }
  return node_voltages.back()[static_cast<std::size_t>(n)];
}

TransientSimulator::TransientSimulator(const circuit::Netlist& nl) : nl_(nl) {
  node_to_unknown_.assign(nl.node_count(), 0);
  node_to_unknown_[kGround] = kGroundMark;
  for (std::size_t k = 0; k < nl.vsources().size(); ++k) {
    const auto& v = nl.vsources()[k];
    if (v.neg != kGround) {
      sim::throw_invalid_input(
          "TransientSimulator: only grounded voltage sources supported");
    }
    if (v.pos == kGround) {
      sim::throw_invalid_input("TransientSimulator: source shorted");
    }
    if (node_to_unknown_[v.pos] < 0) {
      sim::throw_invalid_input(
          "TransientSimulator: node driven by two sources");
    }
    node_to_unknown_[v.pos] = -2 - static_cast<int>(k);
  }
  num_node_unknowns_ = 0;
  for (std::size_t n = 1; n < nl.node_count(); ++n) {
    if (node_to_unknown_[n] >= 0) {
      node_to_unknown_[n] = static_cast<int>(num_node_unknowns_++);
    }
  }
  num_unknowns_ = num_node_unknowns_;
}

void TransientSimulator::add_macromodel(MacromodelStamp stamp) {
  if (structure_built_) {
    throw std::logic_error("add_macromodel: simulation already started");
  }
  if (!stamp.g.square() || stamp.g.rows() != stamp.c.rows() ||
      stamp.ports.size() > stamp.g.rows()) {
    sim::throw_invalid_input("add_macromodel: inconsistent dimensions");
  }
  macromodels_.push_back(std::move(stamp));
}

void TransientSimulator::build_structure() {
  if (structure_built_) return;
  structure_built_ = true;

  num_unknowns_ = num_node_unknowns_;
  // Assign unknown indices to macromodel internal variables.
  std::vector<std::size_t> mm_base;
  for (const auto& mm : macromodels_) {
    mm_base.push_back(num_unknowns_);
    num_unknowns_ += mm.num_internal();
  }

  auto add_pair = [this](std::vector<Entry>& uu, std::vector<KnownEntry>& uk,
                         int row_code, int col_code, double val) {
    if (row_code < 0 || numeric::exact_zero(val)) return;  // ground or known row: no eqn
    const auto row = static_cast<std::size_t>(row_code);
    if (col_code >= 0) {
      uu.push_back({row, static_cast<std::size_t>(col_code), val});
    } else if (col_code <= -2) {
      uk.push_back({row, static_cast<std::size_t>(-2 - col_code), val});
    }
    // ground column: contributes nothing
  };

  auto stamp_two_terminal = [&](std::vector<Entry>& uu,
                                std::vector<KnownEntry>& uk, NodeId a,
                                NodeId b, double val) {
    const int ca = node_to_unknown_[a];
    const int cb = node_to_unknown_[b];
    add_pair(uu, uk, ca, ca, val);
    add_pair(uu, uk, cb, cb, val);
    add_pair(uu, uk, ca, cb, -val);
    add_pair(uu, uk, cb, ca, -val);
  };

  for (const auto& r : nl_.resistors()) {
    stamp_two_terminal(g_uu_, g_uk_, r.a, r.b, 1.0 / r.ohms);
  }
  for (const auto& c : nl_.capacitors()) {
    stamp_two_terminal(c_uu_, c_uk_, c.a, c.b, c.farads);
  }
  for (const auto& l : nl_.inductors()) {
    inductors_.push_back({l.a, l.b, l.henries});
  }

  for (std::size_t m = 0; m < macromodels_.size(); ++m) {
    const auto& mm = macromodels_[m];
    const std::size_t np = mm.ports.size();
    auto code_of = [&](std::size_t k) -> int {
      if (k < np) return node_to_unknown_[mm.ports[k]];
      return static_cast<int>(mm_base[m] + (k - np));
    };
    for (std::size_t i = 0; i < mm.g.rows(); ++i) {
      for (std::size_t j = 0; j < mm.g.cols(); ++j) {
        add_pair(g_uu_, g_uk_, code_of(i), code_of(j), mm.g(i, j));
        add_pair(c_uu_, c_uk_, code_of(i), code_of(j), mm.c(i, j));
      }
    }
  }
}

Vector TransientSimulator::known_voltages(double t, double scale) const {
  Vector vk(nl_.vsources().size());
  for (std::size_t k = 0; k < vk.size(); ++k) {
    vk[k] = scale * nl_.vsources()[k].wave.value(t);
  }
  return vk;
}

Vector TransientSimulator::isource_rhs(double t, double scale) const {
  Vector b(num_unknowns_, 0.0);
  for (const auto& i : nl_.isources()) {
    const double val = scale * i.wave.value(t);
    const int into = node_to_unknown_[i.into];
    const int from = node_to_unknown_[i.from];
    if (into >= 0) b[static_cast<std::size_t>(into)] += val;
    if (from >= 0) b[static_cast<std::size_t>(from)] -= val;
  }
  return b;
}

Vector TransientSimulator::assemble_node_voltages(const Vector& x,
                                                  const Vector& vk) const {
  Vector v(nl_.node_count(), 0.0);
  for (std::size_t n = 0; n < nl_.node_count(); ++n) {
    const int code = node_to_unknown_[n];
    if (code >= 0) {
      v[n] = x[static_cast<std::size_t>(code)];
    } else if (code <= -2) {
      v[n] = vk[static_cast<std::size_t>(-2 - code)];
    }
  }
  return v;
}

const Vector& TransientSimulator::scratch_node_voltages(const Vector& x,
                                                        const Vector& vk) {
  Vector& v = vnode_scratch_;
  v.assign(nl_.node_count(), 0.0);
  for (std::size_t n = 0; n < nl_.node_count(); ++n) {
    const int code = node_to_unknown_[n];
    if (code >= 0) {
      v[n] = x[static_cast<std::size_t>(code)];
    } else if (code <= -2) {
      v[n] = vk[static_cast<std::size_t>(-2 - code)];
    }
  }
  return v;
}

double TransientSimulator::newton_iteration(double ceff, const Vector& vk,
                                            const Vector& rhs_const,
                                            double src_scale,
                                            const TransientOptions& opt,
                                            Vector& x) {
  SparseMatrix& a = a_scratch_;
  if (a.size() != num_unknowns_) {
    a = SparseMatrix(num_unknowns_);
  } else {
    a.clear();
  }
  for (const auto& e : g_uu_) a.add(e.row, e.col, e.val);
  if (!numeric::exact_zero(ceff)) {
    for (const auto& e : c_uu_) a.add(e.row, e.col, ceff * e.val);
  }
  for (std::size_t i = 0; i < num_unknowns_; ++i) a.add(i, i, opt.gmin);

  Vector& b = b_scratch_;
  b = rhs_const;

  // Inductor companions: geq = dt/2L for trapezoidal steps; a strong short
  // at DC (conventional-simulator initial condition).
  for (const auto& l : inductors_) {
    const double geq =
        (!numeric::exact_zero(ceff)) ? 1.0 / (ceff * l.henries) : kInductorDcShort;
    const int ca = node_to_unknown_[l.a];
    const int cb = node_to_unknown_[l.b];
    if (ca >= 0) a.add(static_cast<std::size_t>(ca),
                       static_cast<std::size_t>(ca), geq);
    if (cb >= 0) a.add(static_cast<std::size_t>(cb),
                       static_cast<std::size_t>(cb), geq);
    if (ca >= 0 && cb >= 0) {
      a.add(static_cast<std::size_t>(ca), static_cast<std::size_t>(cb),
            -geq);
      a.add(static_cast<std::size_t>(cb), static_cast<std::size_t>(ca),
            -geq);
    }
    // Known-node columns move to the RHS.
    if (ca >= 0 && cb <= -2) {
      b[static_cast<std::size_t>(ca)] +=
          geq * vk[static_cast<std::size_t>(-2 - cb)];
    }
    if (cb >= 0 && ca <= -2) {
      b[static_cast<std::size_t>(cb)] +=
          geq * vk[static_cast<std::size_t>(-2 - ca)];
    }
  }

  // Nonlinear device stamps, re-linearized at the current iterate -- the
  // conventional Newton approach the paper contrasts with chord models.
  const Vector& vnode = scratch_node_voltages(x, vk);
  for (const auto& m : nl_.mosfets()) {
    const double vg = vnode[static_cast<std::size_t>(m.gate)];
    const double vd = vnode[static_cast<std::size_t>(m.drain)];
    const double vs = vnode[static_cast<std::size_t>(m.source)];
    const auto op = circuit::mosfet_eval(m, vg, vd, vs);
    const double ieq = op.ids - op.gm * (vg - vs) - op.gds * (vd - vs);

    const int rd = node_to_unknown_[m.drain];
    const int rs = node_to_unknown_[m.source];
    // Column contributions: +gm at gate, +gds at drain, -(gm+gds) at source.
    const struct {
      NodeId node;
      double coeff;
    } cols[3] = {{m.gate, op.gm}, {m.drain, op.gds},
                 {m.source, -(op.gm + op.gds)}};
    for (int sign : {+1, -1}) {
      const int row = (sign > 0) ? rd : rs;
      if (row < 0) continue;
      const auto r = static_cast<std::size_t>(row);
      for (const auto& cc : cols) {
        const int col = node_to_unknown_[cc.node];
        const double val = sign * cc.coeff;
        if (numeric::exact_zero(val)) continue;
        if (col >= 0) {
          a.add(r, static_cast<std::size_t>(col), val);
        } else if (col <= -2) {
          b[r] -= val * vk[static_cast<std::size_t>(-2 - col)];
        }
      }
      b[r] -= sign * ieq;
    }
  }

  // Linear coupling to known nodes (assembled fresh because vk is fixed
  // inside a timestep but the stamps above also write into b).
  (void)src_scale;

  obs::add_counter("spice.newton_iterations");
  if (lu_scratch_.refactor(a)) {
    obs::add_counter("spice.lu_refactors");
  } else {
    obs::add_counter("spice.lu_full_factors");
  }
  Vector& xn = xn_scratch_;
  lu_scratch_.solve_into(b, xn);

  double dmax = 0.0;
  for (std::size_t i = 0; i < num_unknowns_; ++i) {
    double d = xn[i] - x[i];
    dmax = std::max(dmax, std::abs(d));
    d = std::clamp(d, -opt.damping, opt.damping);
    x[i] += d;
  }
  return dmax;
}

bool TransientSimulator::newton_loop(double ceff, const Vector& vk,
                                     const Vector& rhs_const,
                                     double src_scale,
                                     const TransientOptions& opt, Vector& x,
                                     long* iter_accum) {
  for (int it = 0; it < opt.max_newton; ++it) {
    const double dmax = newton_iteration(ceff, vk, rhs_const, src_scale, opt,
                                         x);
    if (iter_accum != nullptr) ++(*iter_accum);
    if (!std::isfinite(dmax)) return false;
    if (dmax < opt.vtol) return true;
  }
  return false;
}

Vector TransientSimulator::dc_operating_point(const TransientOptions& opt) {
  obs::ScopedSpan span("spice.dc");
  obs::add_counter("spice.dc_solves");
  build_structure();
  Vector x(num_unknowns_, 0.0);

  auto try_solve = [&](double scale, Vector& xv) {
    const Vector vk = known_voltages(0.0, scale);
    Vector rhs = isource_rhs(0.0, scale);
    for (const auto& e : g_uk_) {
      rhs[e.row] -= e.val * vk[e.vsrc];
    }
    return newton_loop(0.0, vk, rhs, scale, opt, xv, nullptr);
  };

  if (try_solve(1.0, x)) {
    return assemble_node_voltages(x, known_voltages(0.0, 1.0));
  }
  // Source-stepping homotopy.
  x.assign(num_unknowns_, 0.0);
  bool ok = true;
  for (int step = 1; step <= 20 && ok; ++step) {
    ok = try_solve(step / 20.0, x);
  }
  if (!ok) {
    // Gmin-stepping homotopy: a strong conductance floor makes every node
    // well-determined; relax it gradually while carrying the solution.
    x.assign(num_unknowns_, 0.0);
    ok = true;
    TransientOptions gopt = opt;
    for (double gmin : {1e-2, 1e-4, 1e-6, 1e-8, 1e-10, opt.gmin}) {
      gopt.gmin = gmin;
      const Vector vk = known_voltages(0.0, 1.0);
      Vector rhs = isource_rhs(0.0, 1.0);
      for (const auto& e : g_uk_) rhs[e.row] -= e.val * vk[e.vsrc];
      ok = newton_loop(0.0, vk, rhs, 1.0, gopt, x, nullptr);
      if (!ok) break;
    }
  }
  if (!ok) {
    throw sim::SimulationError(
        sim::FailureKind::kDcFailure,
        "dc_operating_point: Newton failed even with source/gmin stepping");
  }
  return assemble_node_voltages(x, known_voltages(0.0, 1.0));
}

TransientResult TransientSimulator::run(const TransientOptions& opt) {
  obs::ScopedSpan span("spice.transient");
  build_structure();
  TransientResult res;

  // DC start point.
  Vector x(num_unknowns_, 0.0);
  {
    TransientOptions dcopt = opt;
    try {
      const Vector vfull = dc_operating_point(dcopt);
      for (std::size_t n = 0; n < nl_.node_count(); ++n) {
        const int code = node_to_unknown_[n];
        if (code >= 0) x[static_cast<std::size_t>(code)] = vfull[n];
      }
    } catch (const std::runtime_error& e) {
      res.diag.kind = sim::FailureKind::kDcFailure;
      res.diag.detail = e.what();
      return res;
    }
  }

  // Committed dynamic state. The capacitor companion currents and inductor
  // branch states are *physical* quantities (C dv/dt resp. i_L, u_L), so
  // a retried step may integrate from them with a different dt.
  struct DynState {
    Vector x;
    Vector ic;  ///< capacitor currents C dv/dt at the committed time
    std::vector<double> il, ul;
    Vector vk_prev;
  };
  DynState st;
  st.x = x;
  st.ic.assign(num_unknowns_, 0.0);
  st.vk_prev = known_voltages(0.0, 1.0);
  st.il.assign(inductors_.size(), 0.0);
  st.ul.assign(inductors_.size(), 0.0);
  {
    // Inductor branch states from the DC short approximation.
    const Vector v0 = assemble_node_voltages(st.x, st.vk_prev);
    for (std::size_t k = 0; k < inductors_.size(); ++k) {
      st.ul[k] = v0[static_cast<std::size_t>(inductors_[k].a)] -
                 v0[static_cast<std::size_t>(inductors_[k].b)];
      st.il[k] = kInductorDcShort * st.ul[k];
    }
  }

  // One trapezoidal step advancing `s` from its committed time to t1 with
  // local step h = t1 - t0; commits into `s` only on success.
  auto try_step = [&](DynState& s, double t0, double t1,
                      double damping) -> sim::SimDiagnostics {
    sim::SimDiagnostics d;
    const double ceff = 2.0 / (t1 - t0);
    const Vector vk = known_voltages(t1, 1.0);
    const Vector x_prev = s.x;

    // Constant part of the RHS for this timestep (trapezoidal companions).
    Vector rhs = isource_rhs(t1, 1.0);
    for (const auto& e : g_uk_) rhs[e.row] -= e.val * vk[e.vsrc];
    for (const auto& e : c_uk_) {
      rhs[e.row] -= ceff * e.val * (vk[e.vsrc] - s.vk_prev[e.vsrc]);
    }
    for (const auto& e : c_uu_) rhs[e.row] += ceff * e.val * x_prev[e.col];
    for (std::size_t i = 0; i < num_unknowns_; ++i) rhs[i] += s.ic[i];
    // Inductor history: i^{n+1} = geq u^{n+1} + (i^n + geq u^n).
    for (std::size_t k = 0; k < inductors_.size(); ++k) {
      const double geq = 1.0 / (ceff * inductors_[k].henries);
      const double hist = s.il[k] + geq * s.ul[k];
      const int ca = node_to_unknown_[inductors_[k].a];
      const int cb = node_to_unknown_[inductors_[k].b];
      if (ca >= 0) rhs[static_cast<std::size_t>(ca)] -= hist;
      if (cb >= 0) rhs[static_cast<std::size_t>(cb)] += hist;
    }

    TransientOptions sopt = opt;
    sopt.damping = damping;
    Vector xn = s.x;
    if (!newton_loop(ceff, vk, rhs, 1.0, sopt, xn,
                     &res.total_newton_iterations)) {
      d.kind = sim::FailureKind::kNewtonNonConvergence;
      d.failure_time = t1;
      d.detail = "iteration limit " + std::to_string(opt.max_newton) +
                 (macromodels_.empty()
                      ? " hit"
                      : " hit (nonpassive/unstable macromodel load?)");
      const double mv = numeric::max_abs(xn);
      d.max_abs_v = std::isfinite(mv) ? mv : opt.vblowup;
      return d;
    }
    const double mv = numeric::max_abs(xn);
    if (mv > opt.vblowup) {
      d.kind = sim::FailureKind::kBlowUp;
      d.failure_time = t1;
      d.max_abs_v = mv;
      d.detail = macromodels_.empty() ? "solution blew up"
                                      : "solution blew up "
                                        "(unstable macromodel)";
      return d;
    }

    // Commit: capacitor currents i' = ceff (C dx) - i, inductor states.
    Vector ic_new(num_unknowns_, 0.0);
    for (const auto& e : c_uu_) {
      ic_new[e.row] += ceff * e.val * (xn[e.col] - x_prev[e.col]);
    }
    for (const auto& e : c_uk_) {
      ic_new[e.row] += ceff * e.val * (vk[e.vsrc] - s.vk_prev[e.vsrc]);
    }
    for (std::size_t i = 0; i < num_unknowns_; ++i) ic_new[i] -= s.ic[i];
    s.ic = std::move(ic_new);
    s.x = xn;
    {
      const Vector vn = assemble_node_voltages(s.x, vk);
      for (std::size_t k = 0; k < inductors_.size(); ++k) {
        const double geq = 1.0 / (ceff * inductors_[k].henries);
        const double u_new = vn[static_cast<std::size_t>(inductors_[k].a)] -
                             vn[static_cast<std::size_t>(inductors_[k].b)];
        s.il[k] += geq * (u_new + s.ul[k]);
        s.ul[k] = u_new;
      }
    }
    s.vk_prev = vk;
    return d;  // kind == kNone
  };

  // Bounded recovery: advance across [t0, t1]; on failure, halve the
  // interval and retry both halves with tightened damping, recursing up to
  // the configured budget. The committed state is restored on failure so
  // an enclosing level retries from a consistent point.
  const auto recurse = [&](auto&& self, DynState& s, double t0, double t1,
                           double damping, int depth) -> sim::SimDiagnostics {
    sim::SimDiagnostics d = try_step(s, t0, t1, damping);
    if (!d.failed() || depth >= opt.recovery.max_dt_retries) return d;
    ++res.diag.retries_used;
    const double esc = damping * opt.recovery.damping_factor;
    const double mid = 0.5 * (t0 + t1);
    DynState backup = s;
    d = self(self, s, t0, mid, esc, depth + 1);
    if (!d.failed()) d = self(self, s, mid, t1, esc, depth + 1);
    if (d.failed()) s = std::move(backup);
    return d;
  };

  auto store = [&](double t) {
    res.time.push_back(t);
    if (opt.store_waveforms) {
      res.node_voltages.push_back(assemble_node_voltages(st.x, st.vk_prev));
    }
  };
  store(0.0);

  const auto nsteps = static_cast<std::size_t>(
      std::ceil(opt.tstop / opt.dt - 1e-9));
  for (std::size_t step = 1; step <= nsteps; ++step) {
    const double t0 = static_cast<double>(step - 1) * opt.dt;
    const double t = static_cast<double>(step) * opt.dt;
    const sim::SimDiagnostics d = recurse(recurse, st, t0, t, opt.damping, 0);
    if (d.failed()) {
      const int retries = res.diag.retries_used;
      res.diag = d;
      res.diag.retries_used = retries;
      res.diag.iterations = res.total_newton_iterations;
      obs::add_counter("spice.steps", static_cast<std::uint64_t>(step - 1));
      return res;
    }
    store(t);
  }

  res.converged = true;
  res.diag.iterations = res.total_newton_iterations;
  obs::add_counter("spice.steps", static_cast<std::uint64_t>(nsteps));
  return res;
}

}  // namespace lcsf::spice
