// SPICE3f5-substitute: a conventional Newton-Raphson MNA transient
// simulator with trapezoidal integration and a sparse natural-order LU.
//
// This is the *baseline comparator* of every experiment in the paper. It
// deliberately follows the textbook general-purpose simulator structure the
// paper critiques (Sec. 3.1): each nonlinear device is re-linearized at
// every Newton iteration, so the whole system is refactored per iteration
// and the effective load seen by the per-iteration Norton equivalents
// changes -- which is exactly why a non-passive macromodel makes it diverge
// (Example 1).
//
// Formulation note: all ideal voltage sources must be grounded (inputs and
// supplies are). Their nodes are eliminated as known voltages instead of
// adding branch-current rows, which keeps the sparse matrix free of zero
// diagonals so the natural-order LU needs no pivoting.
#pragma once

#include <string>
#include <vector>

#include "circuit/netlist.hpp"
#include "numeric/matrix.hpp"
#include "numeric/sparse.hpp"
#include "sim/diagnostics.hpp"

namespace lcsf::spice {

/// A reduced-order linear macromodel stamped directly into the MNA system:
/// ports attach to netlist nodes, internal unknowns are appended. This is
/// how Example 1 feeds the (possibly unstable) variational ROM to the
/// conventional simulator, mirroring the paper's SPICE-subcircuit flow.
struct MacromodelStamp {
  std::vector<circuit::NodeId> ports;  ///< port k of the model -> node
  numeric::Matrix g;  ///< (Np+Ni) x (Np+Ni), ports-first ordering
  numeric::Matrix c;  ///< same layout as g

  std::size_t num_internal() const { return g.rows() - ports.size(); }
};

struct TransientOptions {
  double tstop = 1e-9;
  double dt = 1e-12;
  int max_newton = 100;
  double vtol = 1e-6;        ///< Newton update tolerance [V]
  double gmin = 1e-12;       ///< node-to-ground conductance floor [S]
  double vblowup = 1e4;      ///< any |v| above this is declared divergence
  double damping = 1.0;      ///< max Newton voltage step [V]
  bool store_waveforms = true;
  /// Per-step recovery: on Newton failure, retry the step with halved dt
  /// and tightened damping up to `recovery.max_dt_retries` halvings before
  /// declaring the step dead (see docs/robustness.md).
  sim::RecoveryOptions recovery;
};

struct TransientResult {
  bool converged = false;
  /// Structured outcome record: kind/time/iterations of the failure when
  /// !converged (kind == kNone plus retry counts on a converged run).
  sim::SimDiagnostics diag;
  std::vector<double> time;
  /// node_voltages[k][n] is the voltage of netlist node n at time[k]
  /// (only filled when store_waveforms is set).
  std::vector<numeric::Vector> node_voltages;
  long total_newton_iterations = 0;

  /// Human-readable failure reason ("converged" when none).
  std::string failure() const { return diag.message(); }

  /// (t, v) samples of one node. Throws if the run did not store
  /// waveforms (store_waveforms = false).
  std::vector<std::pair<double, double>> waveform(circuit::NodeId n) const;
  /// Voltage of node n at the last stored timepoint.
  double final_voltage(circuit::NodeId n) const;
};

class TransientSimulator {
 public:
  /// The netlist must outlive the simulator. Grounded V sources only.
  explicit TransientSimulator(const circuit::Netlist& nl);

  /// Attach a linear macromodel before running.
  void add_macromodel(MacromodelStamp stamp);

  /// Newton DC solution at t = 0 (capacitors open), with source-stepping
  /// homotopy fallback. Returns full node-voltage vector (index = NodeId).
  /// Throws std::runtime_error if no DC point is found.
  numeric::Vector dc_operating_point(const TransientOptions& opt = {});

  /// Run a transient analysis from the DC operating point.
  TransientResult run(const TransientOptions& opt);

  std::size_t num_unknowns() const { return num_unknowns_; }

 private:
  void build_structure();

  /// Assemble Jacobian + RHS at unknown-vector x and solve one Newton
  /// update. Returns the max voltage change.
  double newton_iteration(double ceff, const numeric::Vector& vk,
                          const numeric::Vector& rhs_const, double src_scale,
                          const TransientOptions& opt, numeric::Vector& x);

  /// Newton loop; returns true on convergence.
  bool newton_loop(double ceff, const numeric::Vector& vk,
                   const numeric::Vector& rhs_const, double src_scale,
                   const TransientOptions& opt, numeric::Vector& x,
                   long* iter_accum);

  numeric::Vector known_voltages(double t, double scale) const;
  numeric::Vector isource_rhs(double t, double scale) const;

  /// Full node-space voltage vector from unknowns + knowns at time t.
  numeric::Vector assemble_node_voltages(const numeric::Vector& x,
                                         const numeric::Vector& vk) const;
  /// assemble_node_voltages into the reusable vnode_scratch_ buffer.
  const numeric::Vector& scratch_node_voltages(const numeric::Vector& x,
                                               const numeric::Vector& vk);

  const circuit::Netlist& nl_;
  std::vector<MacromodelStamp> macromodels_;

  // Unknown indexing: -1 = ground, -2-k = fixed by vsource k, else index.
  std::vector<int> node_to_unknown_;
  std::size_t num_unknowns_ = 0;       ///< incl. macromodel internals
  std::size_t num_node_unknowns_ = 0;  ///< netlist nodes only

  struct Entry {
    std::size_t row;
    std::size_t col;
    double val;
  };
  struct KnownEntry {
    std::size_t row;
    std::size_t vsrc;  ///< index into vsources
    double val;
  };
  std::vector<Entry> g_uu_, c_uu_;
  std::vector<KnownEntry> g_uk_, c_uk_;
  /// Inductors get a trapezoidal companion (geq = dt/2L) plus a branch
  /// current state; at DC they are approximated by a strong short.
  struct InductorInfo {
    circuit::NodeId a;
    circuit::NodeId b;
    double henries;
  };
  std::vector<InductorInfo> inductors_;
  bool structure_built_ = false;

  // Reusable Newton scratch. The MNA sparsity pattern is fixed once the
  // structure is built, so the sparse LU refactors numerically in place
  // across Newton iterations, timesteps, and the DC homotopy retries
  // instead of redoing the symbolic analysis each pass.
  numeric::SparseMatrix a_scratch_;
  numeric::SparseLu lu_scratch_;
  numeric::Vector b_scratch_, xn_scratch_, vnode_scratch_;
};

}  // namespace lcsf::spice
