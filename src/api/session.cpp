#include "api/session.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <utility>

#include "circuit/parser.hpp"
#include "sim/diagnostics.hpp"
#include "stats/yield.hpp"

namespace lcsf::api {

namespace {

// FNV-1a 64-bit over a byte string: stable, dependency-free content
// hash. Collisions would only merge cache entries of *identical
// analyses* wrongly, and 64 bits over a handful of designs makes that
// astronomically unlikely.
std::uint64_t fnv1a(const std::string& bytes) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

void append_number(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
  out += '|';
}

void append_size(std::string& out, std::size_t v) {
  out += std::to_string(v);
  out += '|';
}

// Canonical byte serialization of a gate netlist for hashing: the full
// connectivity, not just the benchmark name, so the key really is a
// content address (a regenerated benchmark with different connectivity
// would get a different key).
void append_netlist(std::string& out, const timing::GateNetlist& nl) {
  append_size(out, nl.num_nets);
  append_size(out, nl.gates.size());
  for (const timing::Gate& g : nl.gates) {
    append_size(out, g.cell);
    append_size(out, g.output);
    for (const std::size_t in : g.inputs) append_size(out, in);
    out += ';';
  }
  for (const std::size_t n : nl.primary_inputs) append_size(out, n);
  out += ';';
  for (const std::size_t n : nl.latch_outputs) append_size(out, n);
  out += ';';
  for (const std::size_t n : nl.latch_inputs) append_size(out, n);
}

const timing::BenchmarkSpec& find_benchmark_classified(
    const std::string& name) {
  try {
    return timing::find_benchmark(name);
  } catch (const std::invalid_argument& e) {
    sim::throw_invalid_input(e.what());
  }
}

std::string spec_content(const DesignSpec& spec,
                         const timing::GateNetlist* nl) {
  if (spec.circuit.empty() == spec.deck.empty()) {
    sim::throw_invalid_input(
        "design spec must set exactly one of circuit and deck");
  }
  std::string content = "lcsf-design-v1|";
  content += spec.tech;
  content += '|';
  append_size(content, spec.elements);
  content += spec.graph ? "graph|" : "path|";
  append_size(content, spec.top_k);
  append_number(content, spec.stage_window);
  content += spec.retry ? "retry|" : "noretry|";
  if (!spec.deck.empty()) {
    content += "deck|";
    content += spec.deck;
  } else {
    content += "circuit|";
    append_netlist(content, *nl);
  }
  return content;
}

std::size_t gate_netlist_bytes(const timing::GateNetlist& nl) {
  std::size_t total = sizeof(nl) + nl.name.size() +
                      nl.gates.capacity() * sizeof(timing::Gate);
  for (const timing::Gate& g : nl.gates) {
    total += g.inputs.capacity() * sizeof(std::size_t);
  }
  total += (nl.primary_inputs.capacity() + nl.latch_outputs.capacity() +
            nl.latch_inputs.capacity()) *
           sizeof(std::size_t);
  return total;
}

}  // namespace

circuit::Technology technology_by_name(const std::string& name) {
  if (name == "180nm") return circuit::technology_180nm();
  if (name == "600nm") return circuit::technology_600nm();
  sim::throw_invalid_input("unknown technology '" + name +
                           "' (expected 180nm or 600nm)");
}

std::string DesignSpec::cache_key() const {
  timing::GateNetlist nl;
  const timing::GateNetlist* nlp = nullptr;
  (void)technology_by_name(tech);  // classify a bogus tech up front
  if (!circuit.empty()) {
    nl = timing::generate_benchmark(find_benchmark_classified(circuit));
    nlp = &nl;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(
                    fnv1a(spec_content(*this, nlp))));
  return buf;
}

std::shared_ptr<Session> Session::load(const DesignSpec& spec) {
  std::shared_ptr<Session> s(new Session());
  s->spec_ = spec;
  s->tech_ = technology_by_name(spec.tech);

  if (!spec.deck.empty()) {
    if (!spec.circuit.empty()) {
      sim::throw_invalid_input(
          "design spec must set exactly one of circuit and deck");
    }
    auto nl = std::make_unique<circuit::Netlist>();
    try {
      *nl = circuit::parse_netlist(spec.deck, s->tech_);
    } catch (const circuit::ParseError& e) {
      sim::throw_invalid_input(e.what());
    }
    nl->freeze_device_capacitances();
    s->deck_nl_ = std::move(nl);
    s->key_ = spec.cache_key();
    return s;
  }
  if (spec.circuit.empty()) {
    sim::throw_invalid_input(
        "design spec must set exactly one of circuit and deck");
  }

  s->bspec_ = find_benchmark_classified(spec.circuit);
  s->netlist_ = timing::generate_benchmark(s->bspec_);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(fnv1a(
                    spec_content(spec, &s->netlist_))));
  s->key_ = buf;

  if (spec.graph) {
    core::GraphSpec gspec;
    gspec.tech = s->tech_;
    gspec.netlist = s->netlist_;
    gspec.top_k = spec.top_k;
    gspec.linear_elements_per_stage = spec.elements;
    gspec.stage_window = spec.stage_window;
    if (spec.retry) gspec.recovery.max_dt_retries = 3;
    s->graph_an_ = std::make_unique<core::GraphAnalyzer>(std::move(gspec));
  } else {
    s->path_ = timing::longest_path(s->netlist_);
    core::PathSpec pspec = core::PathSpec::from_benchmark(
        s->tech_, s->netlist_, s->path_, spec.elements);
    pspec.stage_window = spec.stage_window;
    if (spec.retry) pspec.recovery.max_dt_retries = 3;
    s->path_an_ = std::make_unique<core::PathAnalyzer>(pspec);
  }
  return s;
}

std::size_t Session::memory_bytes() const {
  std::size_t total = sizeof(*this) + gate_netlist_bytes(netlist_);
  if (path_an_) total += path_an_->memory_bytes();
  if (graph_an_) total += graph_an_->memory_bytes();
  if (deck_nl_) {
    // Parsed-deck footprint: the element tables dominate; approximate
    // with the deck text size plus a per-device constant.
    total += spec_.deck.size() +
             (deck_nl_->resistors().size() + deck_nl_->capacitors().size() +
              deck_nl_->mosfets().size() + deck_nl_->vsources().size()) *
                 64;
  }
  return total;
}

const timing::BenchmarkSpec& Session::benchmark() const {
  if (is_deck()) sim::throw_invalid_input("deck session has no benchmark");
  return bspec_;
}

const timing::GateNetlist& Session::netlist() const {
  if (is_deck()) {
    sim::throw_invalid_input("deck session has no gate netlist");
  }
  return netlist_;
}

const circuit::Netlist& Session::deck_netlist() const {
  if (deck_nl_ == nullptr) {
    sim::throw_invalid_input("not a deck session");
  }
  return *deck_nl_;
}

const timing::TimingPath& Session::longest_path() const {
  if (path_an_ == nullptr) {
    sim::throw_invalid_input(
        "longest_path requires a single-path circuit session");
  }
  return path_;
}

stats::MonteCarloResult Session::run_monte_carlo(
    const core::PathVariationModel& model,
    const stats::RunOptions& opt) const {
  if (graph_an_) return graph_an_->monte_carlo(model, opt);
  if (path_an_) return path_an_->monte_carlo(model, opt);
  sim::throw_invalid_input("monte_carlo requires a circuit session");
}

core::PathAnalyzer::CorrelatedMcResult Session::run_monte_carlo_correlated(
    const core::PathVariationModel& model, double rho,
    const stats::RunOptions& opt) const {
  if (path_an_ == nullptr) {
    sim::throw_invalid_input(
        "correlated monte_carlo requires a single-path session");
  }
  return path_an_->monte_carlo_correlated(model, rho, opt);
}

core::PathAnalyzer::GaResult Session::run_gradients(
    const core::PathVariationModel& model) const {
  if (path_an_ == nullptr) {
    sim::throw_invalid_input(
        "gradient analysis requires a single-path session");
  }
  return path_an_->gradient_analysis(model);
}

YieldResult Session::run_yield(const core::PathVariationModel& model,
                               double clock_period,
                               const std::string& estimator,
                               double yield_target,
                               const stats::RunOptions& opt) const {
  if (path_an_ == nullptr && graph_an_ == nullptr) {
    sim::throw_invalid_input("yield requires a circuit session");
  }
  if (estimator != "mc" && estimator != "is" && estimator != "is-cv") {
    sim::throw_invalid_input("unknown yield estimator '" + estimator +
                             "' (expected mc, is or is-cv)");
  }
  YieldResult res;
  res.estimator = estimator;
  double t_clk = clock_period;
  if (t_clk <= 0.0) {
    // Default to the Gradient-Analysis period for the target yield, so
    // the estimate probes exactly the tail the report quotes.
    const auto ga = run_gradients(model);  // single-path only; classifies
    t_clk = stats::gaussian_period_for_yield(ga.nominal_delay, ga.stddev,
                                             yield_target);
  }
  res.clock_period = t_clk;

  if (estimator == "mc") {
    const auto mc = run_monte_carlo(model, opt);
    if (mc.values.empty()) {
      sim::throw_invalid_input("every Monte-Carlo sample failed");
    }
    std::size_t pass = 0;
    for (const double d : mc.values) {
      if (d <= t_clk) ++pass;
    }
    const double n = static_cast<double>(mc.values.size());
    res.yield = static_cast<double>(pass) / n;
    res.yield_loss = 1.0 - res.yield;
    res.std_error = std::sqrt(res.yield * res.yield_loss / n);
    res.samples = mc.values.size();
    res.failures = mc.failures;
    return res;
  }

  if (path_an_ == nullptr) {
    sim::throw_invalid_input(
        "importance-sampled yield requires a single-path session");
  }
  stats::RunOptions is_opt = opt;
  is_opt.importance.control_variate = estimator == "is-cv";
  auto is = path_an_->yield_importance(model, t_clk, is_opt);
  res.yield = is.yield;
  res.yield_loss = is.yield_loss;
  res.std_error = is.std_error;
  res.samples = is.main_samples;
  res.failures = is.failures;
  res.is = std::move(is);
  return res;
}

GraphResult Session::run_graph(const core::PathVariationModel& model,
                               const stats::RunOptions& opt) const {
  if (graph_an_ == nullptr) {
    sim::throw_invalid_input("graph analysis requires a graph session");
  }
  GraphResult res;
  res.mc = graph_an_->monte_carlo(model, opt);
  core::GraphAnalyzer::Workspace ws;
  const numeric::Vector w0(graph_an_->sources(model).size(), 0.0);
  res.nominal =
      graph_an_->evaluate(graph_an_->sample_from_sources(model, w0), ws);
  res.analytic = graph_an_->analytic_endpoints(model);
  return res;
}

spice::TransientResult Session::run_transient(
    const spice::TransientOptions& opt) const {
  if (deck_nl_ == nullptr) {
    sim::throw_invalid_input("transient requires a deck session");
  }
  spice::TransientSimulator sim(*deck_nl_);
  return sim.run(opt);
}

}  // namespace lcsf::api
