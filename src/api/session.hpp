// The library's front door: one loaded design, many analyses.
//
// api::Session packages the load-once / analyze-many lifecycle every
// entry point shares: resolve the design (a generated benchmark circuit
// or a SPICE deck), pre-characterize the expensive variational artifacts
// exactly once, and expose the statistical analyses as methods taking
// stats::RunOptions. The CLI tools (lcsf_sta, lcsf_sim) and the analysis
// server (serve::Server, tools/lcsf_serve.cpp) are all thin clients of
// this facade, so a server response and a CLI run over the same design
// and options are computed by the same code path and agree bitwise.
//
// Sessions are immutable after load() and every analysis method is
// const and thread-safe (the analyzers underneath are), so one Session
// may serve concurrent requests -- the contract serve::DesignCache
// relies on when it hands one shared Session to parallel connections.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "circuit/netlist.hpp"
#include "circuit/technology.hpp"
#include "core/graph_analyzer.hpp"
#include "core/path.hpp"
#include "spice/transient.hpp"
#include "stats/runner.hpp"
#include "timing/sta.hpp"

namespace lcsf::api {

/// Everything that determines a characterized design. Exactly one of
/// `circuit` (benchmark name) or `deck` (SPICE deck text) must be set.
/// The fields below the divider are characterization knobs: they are
/// baked into the analyzers at load() time and therefore participate in
/// cache_key() -- two specs differing in any of them are distinct cache
/// entries.
struct DesignSpec {
  std::string circuit;  ///< benchmark name (timing::find_benchmark)
  std::string deck;     ///< SPICE deck text (transient-only session)

  std::string tech = "180nm";  ///< "180nm" or "600nm"
  /// Linear circuit elements per stage wire (the Table 4 knob).
  std::size_t elements = 10;
  /// false: single longest path (core::PathAnalyzer); true: the top_k
  /// most-critical paths (core::GraphAnalyzer, docs/timing_graph.md).
  bool graph = false;
  std::size_t top_k = 8;
  double stage_window = 1.0e-9;  ///< simulated window per stage [s]
  /// Grant the engines the 3-deep dt-halving retry budget of
  /// --on-failure retry (docs/robustness.md). Baked into the analyzer
  /// spec, hence part of the design identity.
  bool retry = false;

  /// Content-addressed identity: an FNV-1a hash over the *generated or
  /// parsed netlist content* plus every characterization knob above.
  /// Two specs with the same key load bitwise-identical sessions; the
  /// serve::DesignCache is keyed by this. Throws sim::SimulationError
  /// (kInvalidInput) for an unknown circuit or technology.
  std::string cache_key() const;
};

/// Outcome of a timing-yield estimate (Session::run_yield). Which
/// fields are populated depends on the estimator: "mc" fills the
/// binomial fields, "is"/"is-cv" additionally expose the full
/// importance-sampling detail in `is`.
struct YieldResult {
  std::string estimator;      ///< "mc", "is" or "is-cv"
  double clock_period = 0.0;  ///< period actually probed [s]
  double yield = 0.0;         ///< P(delay <= clock_period)
  double yield_loss = 0.0;
  double std_error = 0.0;     ///< standard error of yield_loss
  std::size_t samples = 0;    ///< surviving (mc) / main-phase (is) count
  stats::FailureSummary failures;
  std::optional<stats::IsYieldEstimate> is;  ///< is / is-cv detail
};

/// Outcome of a multi-path graph analysis (Session::run_graph).
struct GraphResult {
  stats::MonteCarloResult mc;  ///< worst-endpoint-delay Monte Carlo
  core::GraphAnalyzer::SampleResult nominal;  ///< all-nominal sample
  std::vector<core::GraphAnalyzer::AnalyticEndpoint> analytic;
};

class Session {
 public:
  /// Resolve, generate/parse and pre-characterize the design. Failures
  /// are classified sim::SimulationError: unknown circuit, unknown
  /// technology, deck parse errors and contradictory specs all carry
  /// kInvalidInput.
  static std::shared_ptr<Session> load(const DesignSpec& spec);

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  const DesignSpec& spec() const { return spec_; }
  /// The spec's cache_key(), computed once at load.
  const std::string& key() const { return key_; }
  const circuit::Technology& tech() const { return tech_; }

  bool is_deck() const { return deck_nl_ != nullptr; }
  bool is_graph() const { return graph_an_ != nullptr; }

  /// Resident heap footprint of the characterized artifacts (stage-load
  /// ROMs, enumerated paths, parsed netlist) -- the byte cost
  /// serve::DesignCache accounts against its budget.
  std::size_t memory_bytes() const;

  // -- circuit-session accessors (throw kInvalidInput on a deck session)
  const timing::BenchmarkSpec& benchmark() const;
  const timing::GateNetlist& netlist() const;
  /// The analyzed single path (throws on graph/deck sessions).
  const timing::TimingPath& longest_path() const;
  /// Mode-specific analyzer access for bespoke reporting; null when the
  /// session is in the other mode. Prefer the run_* methods.
  const core::PathAnalyzer* path_analyzer() const { return path_an_.get(); }
  const core::GraphAnalyzer* graph_analyzer() const {
    return graph_an_.get();
  }

  /// Parsed deck (deck sessions only; throws kInvalidInput otherwise).
  const circuit::Netlist& deck_netlist() const;

  // -- analyses (thread-safe, bitwise deterministic per RunOptions
  //    contract: identical results for every threads/batch value)

  /// Monte-Carlo delay statistics: per-sample path delay (single-path
  /// session) or worst endpoint delay (graph session).
  stats::MonteCarloResult run_monte_carlo(
      const core::PathVariationModel& model,
      const stats::RunOptions& opt) const;

  /// Spatially-correlated Monte Carlo (single-path sessions only).
  core::PathAnalyzer::CorrelatedMcResult run_monte_carlo_correlated(
      const core::PathVariationModel& model, double rho,
      const stats::RunOptions& opt) const;

  /// Gradient Analysis (single-path sessions only).
  core::PathAnalyzer::GaResult run_gradients(
      const core::PathVariationModel& model) const;

  /// Timing yield at `clock_period` by the chosen estimator ("mc",
  /// "is", "is-cv"; docs/yield_estimation.md). clock_period <= 0
  /// derives the Gradient-Analysis period for `yield_target` first
  /// (single-path sessions only -- a graph session needs an explicit
  /// period). The IS estimators are single-path only.
  YieldResult run_yield(const core::PathVariationModel& model,
                        double clock_period, const std::string& estimator,
                        double yield_target,
                        const stats::RunOptions& opt) const;

  /// Multi-path analysis bundle (graph sessions only): worst-endpoint
  /// Monte Carlo, the all-nominal sample report and the analytic SSTA
  /// endpoint forms.
  GraphResult run_graph(const core::PathVariationModel& model,
                        const stats::RunOptions& opt) const;

  /// Conventional transient of a deck session (throws kInvalidInput on
  /// circuit sessions). Constructs the engine per call; the parsed
  /// netlist is the cached artifact.
  spice::TransientResult run_transient(
      const spice::TransientOptions& opt) const;

 private:
  Session() = default;

  DesignSpec spec_;
  std::string key_;
  circuit::Technology tech_;
  timing::BenchmarkSpec bspec_;
  timing::GateNetlist netlist_;
  timing::TimingPath path_;
  std::unique_ptr<core::PathAnalyzer> path_an_;
  std::unique_ptr<core::GraphAnalyzer> graph_an_;
  std::unique_ptr<circuit::Netlist> deck_nl_;
};

/// Resolve a technology name ("180nm", "600nm"); throws kInvalidInput
/// otherwise. Shared by Session::load and the CLI flag parsers so a
/// bogus --tech is a classified error everywhere.
circuit::Technology technology_by_name(const std::string& name);

}  // namespace lcsf::api
