// Principal Component Analysis over a parameter covariance (paper
// Sec. 4.1.1): discovers the few uncorrelated factors that explain most of
// the correlated device/wire parameter variation, plus the reverse
// transform back to physical parameters.
#pragma once

#include <cstddef>

#include "numeric/matrix.hpp"

namespace lcsf::stats {

class Pca {
 public:
  /// Build from a covariance matrix (symmetric PSD) and parameter means.
  Pca(numeric::Matrix covariance, numeric::Vector means);

  std::size_t dimension() const { return means_.size(); }

  /// Eigenvalues (variances along each principal direction), descending.
  const numeric::Vector& variances() const { return variances_; }

  /// Number of leading factors needed to explain `fraction` of the total
  /// variance (the paper's example: 60 BSIM3 parameters -> 10 factors).
  std::size_t factors_for(double fraction) const;

  /// Map independent standard-normal factor scores z (first k entries
  /// used, rest assumed 0) to a physical parameter sample:
  ///   x = mean + sum_k sqrt(var_k) z_k v_k.   (reverse transform)
  numeric::Vector from_factors(const numeric::Vector& z) const;

  /// Project a physical sample onto factor scores (whitened).
  numeric::Vector to_factors(const numeric::Vector& x) const;

 private:
  numeric::Vector means_;
  numeric::Vector variances_;   ///< descending
  numeric::Matrix directions_;  ///< column k = unit eigenvector of var k
};

/// Covariance matrix for variables with given sigmas and a single common
/// pairwise correlation rho (handy builder for correlated-parameter tests
/// and examples).
numeric::Matrix equicorrelated_covariance(const numeric::Vector& sigmas,
                                          double rho);

}  // namespace lcsf::stats
