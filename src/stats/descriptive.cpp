#include "stats/descriptive.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "sim/diagnostics.hpp"

namespace lcsf::stats {

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void OnlineStats::merge(const OnlineStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  mean_ += delta * nb / (na + nb);
  m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double OnlineStats::stddev() const {
  if (n_ < 2) return 0.0;
  return std::sqrt(m2_ / static_cast<double>(n_ - 1));
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (bins == 0 || !(hi > lo)) {
    sim::throw_invalid_input("Histogram: bad range or bin count");
  }
}

Histogram Histogram::from_data(const std::vector<double>& data,
                               std::size_t bins) {
  if (data.empty()) sim::throw_invalid_input("Histogram: no data");
  auto [mn, mx] = std::minmax_element(data.begin(), data.end());
  double lo = *mn;
  double hi = *mx;
  // Pad the range; for degenerate (all-equal) data fall back to a pad
  // proportional to the magnitude so the range stays representable.
  const double pad = std::max((hi - lo) * 0.05,
                              std::abs(hi) * 1e-9 + 1e-30);
  Histogram h(lo - pad, hi + pad, bins);
  for (double x : data) h.add(x);
  return h;
}

void Histogram::add(double x) {
  if (x < lo_ || x >= hi_) {
    // Clamp into the edge bins so totals stay meaningful.
    x = std::clamp(x, lo_, std::nextafter(hi_, lo_));
  }
  const auto k = static_cast<std::size_t>(
      (x - lo_) / (hi_ - lo_) * static_cast<double>(counts_.size()));
  counts_[std::min(k, counts_.size() - 1)]++;
  ++total_;
}

double Histogram::bin_center(std::size_t k) const {
  const double w = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + (static_cast<double>(k) + 0.5) * w;
}

std::string Histogram::render(std::size_t max_width) const {
  std::size_t peak = 1;
  for (std::size_t c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t k = 0; k < counts_.size(); ++k) {
    os.setf(std::ios::scientific);
    os.precision(3);
    os << bin_center(k) << " | ";
    os.unsetf(std::ios::scientific);
    os.width(4);
    os << counts_[k] << " | ";
    const std::size_t bar = counts_[k] * max_width / peak;
    for (std::size_t b = 0; b < bar; ++b) os << '#';
    os << '\n';
  }
  return os.str();
}

OnlineStats summarize(const std::vector<double>& data) {
  OnlineStats s;
  for (double x : data) s.add(x);
  return s;
}

}  // namespace lcsf::stats
