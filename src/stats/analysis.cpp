#include "stats/analysis.hpp"

#include <cmath>
#include <stdexcept>

#include "core/thread_pool.hpp"

namespace lcsf::stats {

using numeric::Vector;

namespace {

// Stream tags separating the independent uses of one (seed, counter) pair.
constexpr std::uint64_t kLhsPermTag = 0x1a71;

}  // namespace

MonteCarloResult monte_carlo(const PerformanceFn& f,
                             const std::vector<VariationSource>& sources,
                             const MonteCarloOptions& opt) {
  if (sources.empty()) {
    throw std::invalid_argument(
        "monte_carlo: `sources` must contain at least one VariationSource");
  }
  if (opt.samples == 0) {
    throw std::invalid_argument(
        "monte_carlo: MonteCarloOptions::samples must be >= 1");
  }
  const std::size_t nw = sources.size();
  const std::size_t n = opt.samples;

  // Latin-Hypercube stratum assignment: one deterministic permutation per
  // dimension, derived from (seed, dimension) -- generation is O(n * nw)
  // and serial, negligible next to the f(w) evaluations. With n == 1 every
  // permutation is the identity and the single stratum spans (0, 1).
  std::vector<std::vector<std::size_t>> strata;
  if (opt.latin_hypercube) {
    strata.reserve(nw);
    for (std::size_t d = 0; d < nw; ++d) {
      SplitMix64 perm_stream = sample_stream(opt.seed, d, kLhsPermTag);
      strata.push_back(stream_permutation(n, perm_stream));
    }
  }

  MonteCarloResult res;
  res.values.resize(n);
  res.samples.resize(n);

  // Each sample draws every variate from its own counter-based stream, so
  // the partition of [0, n) across threads cannot change any value.
  core::parallel_for(opt.threads, n, [&](std::size_t begin, std::size_t end) {
    for (std::size_t s = begin; s < end; ++s) {
      SplitMix64 stream = sample_stream(opt.seed, s);
      Vector w(nw);
      for (std::size_t d = 0; d < nw; ++d) {
        const double jitter = stream.uniform_open();
        const double uu =
            opt.latin_hypercube
                ? (static_cast<double>(strata[d][s]) + jitter) /
                      static_cast<double>(n)
                : jitter;
        const VariationSource& src = sources[d];
        w[d] = (src.kind == VariationSource::Kind::kUniform)
                   ? to_uniform(uu, src.mean - src.sigma,
                                src.mean + src.sigma)
                   : to_normal(uu, src.mean, src.sigma);
      }
      res.values[s] = f(w);
      res.samples[s] = std::move(w);
    }
  });

  // Accumulate in sample order: identical to a serial run by construction.
  for (double v : res.values) res.stats.add(v);
  return res;
}

GradientAnalysisResult gradient_analysis(
    const PerformanceFn& f, const std::vector<VariationSource>& sources,
    const GradientAnalysisOptions& opt) {
  if (sources.empty()) {
    throw std::invalid_argument("gradient_analysis: no sources");
  }
  if (opt.step_fraction <= 0.0) {
    throw std::invalid_argument("gradient_analysis: bad step");
  }
  const std::size_t nw = sources.size();
  GradientAnalysisResult res;
  res.gradient.assign(nw, 0.0);

  Vector w0(nw);
  for (std::size_t d = 0; d < nw; ++d) w0[d] = sources[d].mean;
  res.nominal = f(w0);
  res.evaluations = 1;

  // The 2 * nw central-difference probes are independent; run them on the
  // pool and fold the Eq. 24 sum serially in source order afterwards.
  core::parallel_for(opt.threads, nw,
                     [&](std::size_t begin, std::size_t end) {
    for (std::size_t d = begin; d < end; ++d) {
      const double h = opt.step_fraction * sources[d].sigma;
      if (h <= 0.0) continue;
      Vector wp = w0, wm = w0;
      wp[d] += h;
      wm[d] -= h;
      res.gradient[d] = (f(wp) - f(wm)) / (2.0 * h);
    }
  });

  double var = 0.0;
  for (std::size_t d = 0; d < nw; ++d) {
    if (opt.step_fraction * sources[d].sigma <= 0.0) continue;
    res.evaluations += 2;
    const double g = res.gradient[d];
    // Uniform(+-sigma) has variance sigma^2/3; normal has sigma^2.
    const double s2 =
        sources[d].kind == VariationSource::Kind::kUniform
            ? sources[d].sigma * sources[d].sigma / 3.0
            : sources[d].sigma * sources[d].sigma;
    var += s2 * g * g;
  }
  res.stddev = std::sqrt(var);
  return res;
}

}  // namespace lcsf::stats
