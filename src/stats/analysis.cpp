#include "stats/analysis.hpp"

#include <cmath>
#include <stdexcept>

#include "core/thread_pool.hpp"

namespace lcsf::stats {

using numeric::Vector;

namespace {

// Stream tags separating the independent uses of one (seed, counter) pair.
constexpr std::uint64_t kLhsPermTag = 0x1a71;

/// Evaluate one sample under the kSkip policy: returns true and fills
/// `value` on success, false and fills `failure` on a classified failure.
/// std::logic_error (misuse) propagates.
bool eval_fail_soft(const LanedPerformanceFn& f, const Vector& w,
                    std::size_t lane, std::size_t index, double& value,
                    SampleFailure& failure) {
  try {
    value = f(w, lane);
    return true;
  } catch (const sim::SimulationError& e) {
    failure = {index, e.kind(), e.diagnostics().message()};
  } catch (const std::runtime_error& e) {
    // A foreign engine that does not speak SimulationError: still a
    // simulation outcome, classified as kOther.
    failure = {index, sim::FailureKind::kOther, e.what()};
  }
  return false;
}

/// Adapt a lane-blind f to the laned core the drivers run on.
LanedPerformanceFn ignore_lane(const PerformanceFn& f) {
  return [&f](const Vector& w, std::size_t) { return f(w); };
}

}  // namespace

std::string FailureSummary::table() const {
  if (!any()) return {};
  std::string out;
  for (std::size_t k = 0; k < sim::kNumFailureKinds; ++k) {
    if (counts[k] == 0) continue;
    const auto kind = static_cast<sim::FailureKind>(k);
    out += "  " + std::string(sim::failure_kind_name(kind)) + " : " +
           std::to_string(counts[k]);
    for (const SampleFailure& f : failures) {
      if (f.kind == kind) {
        out += "  (first sample " + std::to_string(f.index) + ": " +
               f.detail + ")";
        break;
      }
    }
    out += "\n";
  }
  return out;
}

MonteCarloResult monte_carlo(const PerformanceFn& f,
                             const std::vector<VariationSource>& sources,
                             const MonteCarloOptions& opt) {
  return monte_carlo(ignore_lane(f), sources, opt);
}

MonteCarloResult monte_carlo(const LanedPerformanceFn& f,
                             const std::vector<VariationSource>& sources,
                             const MonteCarloOptions& opt) {
  if (sources.empty()) {
    sim::throw_invalid_input(
        "monte_carlo: `sources` must contain at least one VariationSource");
  }
  if (opt.samples == 0) {
    sim::throw_invalid_input(
        "monte_carlo: MonteCarloOptions::samples must be >= 1");
  }
  const std::size_t nw = sources.size();
  const std::size_t n = opt.samples;

  // Latin-Hypercube stratum assignment: one deterministic permutation per
  // dimension, derived from (seed, dimension) -- generation is O(n * nw)
  // and serial, negligible next to the f(w) evaluations. With n == 1 every
  // permutation is the identity and the single stratum spans (0, 1).
  std::vector<std::vector<std::size_t>> strata;
  if (opt.latin_hypercube) {
    strata.reserve(nw);
    for (std::size_t d = 0; d < nw; ++d) {
      SplitMix64 perm_stream = sample_stream(opt.seed, d, kLhsPermTag);
      strata.push_back(stream_permutation(n, perm_stream));
    }
  }

  // Per-sample slots; compacted to survivors after the parallel loop.
  std::vector<double> values(n);
  std::vector<Vector> samples(n);
  std::vector<char> died(n, 0);
  std::vector<SampleFailure> deaths(n);
  const bool fail_soft = opt.on_failure == FailurePolicy::kSkip;

  // Each sample draws every variate from its own counter-based stream, so
  // the partition of [0, n) across threads cannot change any value; and
  // under kSkip, neither can the set of failed indices.
  core::parallel_for_lanes(
      opt.threads, n,
      [&](std::size_t begin, std::size_t end, std::size_t lane) {
    for (std::size_t s = begin; s < end; ++s) {
      SplitMix64 stream = sample_stream(opt.seed, s);
      Vector w(nw);
      for (std::size_t d = 0; d < nw; ++d) {
        const double jitter = stream.uniform_open();
        const double uu =
            opt.latin_hypercube
                ? (static_cast<double>(strata[d][s]) + jitter) /
                      static_cast<double>(n)
                : jitter;
        const VariationSource& src = sources[d];
        w[d] = (src.kind == VariationSource::Kind::kUniform)
                   ? to_uniform(uu, src.mean - src.sigma,
                                src.mean + src.sigma)
                   : to_normal(uu, src.mean, src.sigma);
      }
      if (fail_soft) {
        died[s] =
            eval_fail_soft(f, w, lane, s, values[s], deaths[s]) ? 0 : 1;
      } else {
        values[s] = f(w, lane);
      }
      samples[s] = std::move(w);
    }
  });

  // Compact + accumulate serially in sample order: identical to a serial
  // run (and to any other thread count) by construction.
  MonteCarloResult res;
  res.failures.attempted = n;
  res.values.reserve(n);
  res.samples.reserve(n);
  for (std::size_t s = 0; s < n; ++s) {
    if (died[s]) {
      ++res.failures.counts[static_cast<std::size_t>(deaths[s].kind)];
      res.failures.failures.push_back(std::move(deaths[s]));
      continue;
    }
    res.stats.add(values[s]);
    res.values.push_back(values[s]);
    res.samples.push_back(std::move(samples[s]));
  }
  res.failures.survived = res.values.size();
  return res;
}

GradientAnalysisResult gradient_analysis(
    const PerformanceFn& f, const std::vector<VariationSource>& sources,
    const GradientAnalysisOptions& opt) {
  return gradient_analysis(ignore_lane(f), sources, opt);
}

GradientAnalysisResult gradient_analysis(
    const LanedPerformanceFn& f, const std::vector<VariationSource>& sources,
    const GradientAnalysisOptions& opt) {
  if (sources.empty()) {
    sim::throw_invalid_input("gradient_analysis: no sources");
  }
  if (opt.step_fraction <= 0.0) {
    sim::throw_invalid_input("gradient_analysis: bad step");
  }
  const std::size_t nw = sources.size();
  GradientAnalysisResult res;
  res.gradient.assign(nw, 0.0);

  Vector w0(nw);
  for (std::size_t d = 0; d < nw; ++d) w0[d] = sources[d].mean;
  // A failed nominal always rethrows: there is no gradient about a point
  // that does not evaluate. The nominal runs on the calling thread's lane.
  res.nominal = f(w0, 0);
  res.evaluations = 1;

  const bool fail_soft = opt.on_failure == FailurePolicy::kSkip;
  std::vector<char> died(nw, 0);
  std::vector<SampleFailure> deaths(nw);

  // The 2 * nw central-difference probes are independent; run them on the
  // pool and fold the Eq. 24 sum serially in source order afterwards.
  core::parallel_for_lanes(
      opt.threads, nw,
      [&](std::size_t begin, std::size_t end, std::size_t lane) {
    for (std::size_t d = begin; d < end; ++d) {
      const double h = opt.step_fraction * sources[d].sigma;
      if (h <= 0.0) continue;
      Vector wp = w0, wm = w0;
      wp[d] += h;
      wm[d] -= h;
      if (fail_soft) {
        double fp = 0.0, fm = 0.0;
        if (eval_fail_soft(f, wp, lane, d, fp, deaths[d]) &&
            eval_fail_soft(f, wm, lane, d, fm, deaths[d])) {
          res.gradient[d] = (fp - fm) / (2.0 * h);
        } else {
          died[d] = 1;  // gradient entry stays 0 and leaves the RSS sum
        }
      } else {
        res.gradient[d] = (f(wp, lane) - f(wm, lane)) / (2.0 * h);
      }
    }
  });

  double var = 0.0;
  res.failures.attempted = nw;
  for (std::size_t d = 0; d < nw; ++d) {
    if (opt.step_fraction * sources[d].sigma <= 0.0) continue;
    if (died[d]) {
      ++res.failures.counts[static_cast<std::size_t>(deaths[d].kind)];
      res.failures.failures.push_back(std::move(deaths[d]));
      continue;
    }
    res.evaluations += 2;
    const double g = res.gradient[d];
    // Uniform(+-sigma) has variance sigma^2/3; normal has sigma^2.
    const double s2 =
        sources[d].kind == VariationSource::Kind::kUniform
            ? sources[d].sigma * sources[d].sigma / 3.0
            : sources[d].sigma * sources[d].sigma;
    var += s2 * g * g;
  }
  res.failures.survived = nw - res.failures.failures.size();
  res.stddev = std::sqrt(var);
  return res;
}

}  // namespace lcsf::stats
