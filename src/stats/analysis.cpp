// Thin delegating wrappers over the stats::Runner facade (the engine
// bodies live in runner.cpp). Kept so existing call sites compile
// unchanged; deprecation-ready, see docs/monte_carlo.md.
#include "stats/analysis.hpp"

#include "stats/runner.hpp"

namespace lcsf::stats {

std::string FailureSummary::table() const {
  if (!any()) return {};
  std::string out;
  for (std::size_t k = 0; k < sim::kNumFailureKinds; ++k) {
    if (counts[k] == 0) continue;
    const auto kind = static_cast<sim::FailureKind>(k);
    out += "  " + std::string(sim::failure_kind_name(kind)) + " : " +
           std::to_string(counts[k]);
    for (const SampleFailure& f : failures) {
      if (f.kind == kind) {
        out += "  (first sample " + std::to_string(f.index) + ": " +
               f.detail + ")";
        break;
      }
    }
    out += "\n";
  }
  return out;
}

MonteCarloResult monte_carlo(const PerformanceFn& f,
                             const std::vector<VariationSource>& sources,
                             const MonteCarloOptions& opt) {
  return Runner(RunOptions::from(opt)).run_monte_carlo(f, sources);
}

MonteCarloResult monte_carlo(const LanedPerformanceFn& f,
                             const std::vector<VariationSource>& sources,
                             const MonteCarloOptions& opt) {
  return Runner(RunOptions::from(opt)).run_monte_carlo(f, sources);
}

GradientAnalysisResult gradient_analysis(
    const PerformanceFn& f, const std::vector<VariationSource>& sources,
    const GradientAnalysisOptions& opt) {
  return Runner(RunOptions::from(opt)).run_gradients(f, sources);
}

GradientAnalysisResult gradient_analysis(
    const LanedPerformanceFn& f, const std::vector<VariationSource>& sources,
    const GradientAnalysisOptions& opt) {
  return Runner(RunOptions::from(opt)).run_gradients(f, sources);
}

}  // namespace lcsf::stats
