#include "stats/analysis.hpp"

#include <cmath>
#include <stdexcept>

namespace lcsf::stats {

using numeric::Vector;

MonteCarloResult monte_carlo(const PerformanceFn& f,
                             const std::vector<VariationSource>& sources,
                             const MonteCarloOptions& opt) {
  if (sources.empty() || opt.samples == 0) {
    throw std::invalid_argument("monte_carlo: empty design");
  }
  Rng rng(opt.seed);
  const std::size_t nw = sources.size();

  MonteCarloResult res;
  res.values.reserve(opt.samples);
  res.samples.reserve(opt.samples);

  numeric::Matrix u(0, 0);
  if (opt.latin_hypercube) u = latin_hypercube(opt.samples, nw, rng);

  for (std::size_t s = 0; s < opt.samples; ++s) {
    Vector w(nw);
    for (std::size_t d = 0; d < nw; ++d) {
      const double uu = opt.latin_hypercube ? u(s, d) : rng.uniform();
      const VariationSource& src = sources[d];
      w[d] = (src.kind == VariationSource::Kind::kUniform)
                 ? to_uniform(uu, src.mean - src.sigma, src.mean + src.sigma)
                 : to_normal(uu, src.mean, src.sigma);
    }
    const double v = f(w);
    res.stats.add(v);
    res.values.push_back(v);
    res.samples.push_back(std::move(w));
  }
  return res;
}

GradientAnalysisResult gradient_analysis(
    const PerformanceFn& f, const std::vector<VariationSource>& sources,
    const GradientAnalysisOptions& opt) {
  if (sources.empty()) {
    throw std::invalid_argument("gradient_analysis: no sources");
  }
  if (opt.step_fraction <= 0.0) {
    throw std::invalid_argument("gradient_analysis: bad step");
  }
  const std::size_t nw = sources.size();
  GradientAnalysisResult res;
  res.gradient.assign(nw, 0.0);

  Vector w0(nw);
  for (std::size_t d = 0; d < nw; ++d) w0[d] = sources[d].mean;
  res.nominal = f(w0);
  res.evaluations = 1;

  double var = 0.0;
  for (std::size_t d = 0; d < nw; ++d) {
    const double h = opt.step_fraction * sources[d].sigma;
    if (h <= 0.0) continue;
    Vector wp = w0, wm = w0;
    wp[d] += h;
    wm[d] -= h;
    const double g = (f(wp) - f(wm)) / (2.0 * h);
    res.evaluations += 2;
    res.gradient[d] = g;
    // Uniform(+-sigma) has variance sigma^2/3; normal has sigma^2.
    const double s2 =
        sources[d].kind == VariationSource::Kind::kUniform
            ? sources[d].sigma * sources[d].sigma / 3.0
            : sources[d].sigma * sources[d].sigma;
    var += s2 * g * g;
  }
  res.stddev = std::sqrt(var);
  return res;
}

}  // namespace lcsf::stats
