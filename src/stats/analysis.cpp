// Thin delegating wrappers over the stats::Runner facade (the engine
// bodies live in runner.cpp). Kept so existing call sites compile
// unchanged; deprecation-ready, see docs/monte_carlo.md.
#include "stats/analysis.hpp"

#include <atomic>
#include <cstdlib>

#include "stats/runner.hpp"

namespace lcsf::stats {

namespace {

// Process-wide batch override; 0 = unset. Lives here (not in a header)
// per the project's no-mutable-statics-in-headers rule.
std::atomic<std::size_t> g_default_batch_override{0};

}  // namespace

std::size_t parse_batch(const std::string& text, const char* what) {
  char* end = nullptr;
  const unsigned long v = std::strtoul(text.c_str(), &end, 10);
  if (text.empty() || end != text.c_str() + text.size() || v == 0 ||
      text.front() == '-' || text.front() == '+') {
    sim::throw_invalid_input(std::string(what) +
                             ": batch must be a positive integer, got `" +
                             text + "`");
  }
  return static_cast<std::size_t>(v);
}

std::size_t default_batch() {
  const std::size_t forced = g_default_batch_override.load();
  if (forced != 0) return forced;
  const char* env = std::getenv("LCSF_BATCH");
  if (env == nullptr || *env == '\0') return kDefaultBatch;
  return parse_batch(env, "LCSF_BATCH");
}

void set_default_batch(std::size_t k) { g_default_batch_override.store(k); }

std::string FailureSummary::table() const {
  if (!any()) return {};
  std::string out;
  for (std::size_t k = 0; k < sim::kNumFailureKinds; ++k) {
    if (counts[k] == 0) continue;
    const auto kind = static_cast<sim::FailureKind>(k);
    out += "  " + std::string(sim::failure_kind_name(kind)) + " : " +
           std::to_string(counts[k]);
    for (const SampleFailure& f : failures) {
      if (f.kind == kind) {
        out += "  (first sample " + std::to_string(f.index) + ": " +
               f.detail + ")";
        break;
      }
    }
    out += "\n";
  }
  return out;
}

MonteCarloResult monte_carlo(const PerformanceFn& f,
                             const std::vector<VariationSource>& sources,
                             const MonteCarloOptions& opt) {
  return Runner(RunOptions::from(opt)).run_monte_carlo(f, sources);
}

MonteCarloResult monte_carlo(const LanedPerformanceFn& f,
                             const std::vector<VariationSource>& sources,
                             const MonteCarloOptions& opt) {
  return Runner(RunOptions::from(opt)).run_monte_carlo(f, sources);
}

GradientAnalysisResult gradient_analysis(
    const PerformanceFn& f, const std::vector<VariationSource>& sources,
    const GradientAnalysisOptions& opt) {
  return Runner(RunOptions::from(opt)).run_gradients(f, sources);
}

GradientAnalysisResult gradient_analysis(
    const LanedPerformanceFn& f, const std::vector<VariationSource>& sources,
    const GradientAnalysisOptions& opt) {
  return Runner(RunOptions::from(opt)).run_gradients(f, sources);
}

}  // namespace lcsf::stats
