// The importance-sampled yield engine behind Runner::run_yield_is (see
// importance.hpp for the estimator overview and docs/yield_estimation.md
// for the full derivation).
//
// Structure mirrors the plain Monte-Carlo engine in runner.cpp: a
// parallel evaluation over per-sample counter-based streams fills
// index-addressed slots, and every statistic -- likelihood ratios, the
// yield-loss mean, control-variate moments, ESS, failure summaries, obs
// distributions -- is folded serially in sample order afterwards, so the
// result is bitwise identical for every thread count.
#include "stats/importance.hpp"

#include <cmath>
#include <utility>

#include "runtime/thread_pool.hpp"
#include "numeric/fp_compare.hpp"
#include "obs/span.hpp"
#include "stats/driver_detail.hpp"
#include "stats/runner.hpp"
#include "stats/yield.hpp"

namespace lcsf::stats {

using detail::DriverContext;
using detail::eval_fail_soft;
using detail::ignore_lane;
using numeric::Vector;

namespace {

/// Index-addressed per-sample slots of one IS phase (pilot or main),
/// filled by the parallel loop and folded serially afterwards.
struct PhaseSlots {
  std::vector<double> value;      ///< f(w) per sample (where survived)
  std::vector<double> weight;     ///< likelihood ratio p/q per sample
  std::vector<double> surrogate;  ///< linear-surrogate delay per sample
  std::vector<char> died;
  std::vector<SampleFailure> deaths;
  /// Standardized variates per sample (only when keep_u: the pilot needs
  /// them for the cross-entropy shift refinement).
  std::vector<Vector> u;
};

/// One importance-sampled phase: draw n samples from the mean-shifted
/// (optionally mixture) proposal, evaluate f, and record value + weight +
/// surrogate delay per sample index. `phase_tag`/`perm_tag` select the
/// counter-stream family (stream_tag::kIsPilot*/kIsMain*), keeping the
/// pilot and main draws independent of each other and of plain MC.
void run_is_phase(const RunOptions& opt, obs::Registry* reg,
                  const LanedPerformanceFn& f,
                  const std::vector<VariationSource>& sources,
                  const IsSurrogate& sur, std::size_t n,
                  std::uint64_t phase_tag, std::uint64_t perm_tag,
                  bool keep_u, PhaseSlots& out) {
  const std::size_t nw = sources.size();
  const double lambda = opt.importance.mixture_nominal;

  // |theta|^2 of the proposal shift; exact_zero() detects the degenerate
  // plain-MC case where every likelihood ratio must be exactly 1.0.
  double theta_sq = 0.0;
  for (std::size_t d = 0; d < nw; ++d) {
    theta_sq += sur.shift[d] * sur.shift[d];
  }
  const bool shifted = !numeric::exact_zero(theta_sq);

  // Latin-Hypercube stratum assignment, one permutation stream per
  // dimension (independent of the plain-MC permutations via perm_tag).
  std::vector<std::vector<std::size_t>> strata;
  if (opt.latin_hypercube) {
    strata.reserve(nw);
    for (std::size_t d = 0; d < nw; ++d) {
      SplitMix64 perm_stream = sample_stream(opt.seed, d, perm_tag);
      strata.push_back(stream_permutation(n, perm_stream));
    }
  }

  out.value.assign(n, 0.0);
  out.weight.assign(n, 1.0);
  out.surrogate.assign(n, 0.0);
  out.died.assign(n, 0);
  out.deaths.assign(n, SampleFailure{});
  out.u.clear();
  if (keep_u) out.u.resize(n);

  const bool fail_soft = opt.exec.on_failure == FailurePolicy::kSkip;

  runtime::parallel_for_lanes(
      opt.exec.threads, n,
      [&](std::size_t begin, std::size_t end, std::size_t lane) {
    obs::ScopedContext chunk_ctx(reg, lane);
    const bool timed = obs::enabled();
    for (std::size_t s = begin; s < end; ++s) {
      SplitMix64 stream = sample_stream(opt.seed, s, phase_tag);
      // Defensive mixture: with probability lambda this sample draws
      // from the nominal distribution. The coin comes first in the
      // stream so the per-dimension draws below stay aligned whether or
      // not it lands on the nominal branch.
      bool use_shift = shifted;
      if (shifted && lambda > 0.0) {
        use_shift = stream.uniform_open() >= lambda;
      }
      Vector w(nw);
      double score = 0.0;       // theta . u over the normal dimensions
      double sur_delta = 0.0;   // gradient . (w - mean)
      Vector uvec;
      if (keep_u) uvec.assign(nw, 0.0);
      for (std::size_t d = 0; d < nw; ++d) {
        const double jitter = stream.uniform_open();
        const double uu =
            opt.latin_hypercube
                ? (static_cast<double>(strata[d][s]) + jitter) /
                      static_cast<double>(n)
                : jitter;
        const VariationSource& src = sources[d];
        if (src.kind == VariationSource::Kind::kUniform) {
          // Uniform sources are never shifted (a mean shift would break
          // the absolute continuity the likelihood ratio needs); they
          // contribute a ratio factor of exactly 1.
          w[d] = to_uniform(uu, src.mean - src.sigma, src.mean + src.sigma);
        } else {
          const double u_d = inverse_normal_cdf(uu) +
                             (use_shift ? sur.shift[d] : 0.0);
          w[d] = src.mean + src.sigma * u_d;
          score += sur.shift[d] * u_d;
          if (keep_u) uvec[d] = u_d;
        }
        sur_delta += sur.gradient[d] * (w[d] - src.mean);
      }
      // Likelihood ratio p(u)/q(u). The degenerate zero-shift proposal
      // is the original distribution, so the ratio is pinned to exactly
      // 1.0 rather than round-tripped through exp().
      out.weight[s] =
          shifted ? mixture_likelihood_ratio(score - 0.5 * theta_sq, lambda)
                  : 1.0;
      out.surrogate[s] = sur.nominal + sur_delta;
      const std::uint64_t t0 = timed ? obs::now_ns() : 0;
      if (fail_soft) {
        out.died[s] =
            eval_fail_soft(f, w, lane, s, out.value[s], out.deaths[s]) ? 0
                                                                       : 1;
      } else {
        out.value[s] = f(w, lane);
      }
      if (timed) {
        obs::record_value(
            "stats.yield_is.sample_seconds",
            static_cast<double>(obs::now_ns() - t0) / 1e9);
      }
      if (keep_u) out.u[s] = std::move(uvec);
    }
  });
}

/// Serial sample-order fold of a phase's failure slots into a summary
/// (identical discipline to the plain Monte-Carlo engine).
void fold_failures(PhaseSlots& slots, std::size_t n, FailureSummary& out) {
  out.attempted = n;
  for (std::size_t s = 0; s < n; ++s) {
    if (!slots.died[s]) continue;
    ++out.counts[static_cast<std::size_t>(slots.deaths[s].kind)];
    out.failures.push_back(std::move(slots.deaths[s]));
  }
  out.survived = n - out.failures.size();
}

}  // namespace

IsYieldEstimate Runner::run_yield_is(
    const PerformanceFn& f, const std::vector<VariationSource>& sources,
    double clock_period) const {
  return run_yield_is(ignore_lane(f), sources, clock_period);
}

IsYieldEstimate Runner::run_yield_is(
    const LanedPerformanceFn& f, const std::vector<VariationSource>& sources,
    double clock_period) const {
  obs::Registry* reg =
      opt_.registry != nullptr ? opt_.registry : obs::ambient_registry();
  DriverContext obs_ctx(reg);
  obs::ScopedSpan span("stats.yield_is");
  if (sources.empty()) {
    sim::throw_invalid_input(
        "run_yield_is: `sources` must contain at least one VariationSource");
  }
  if (opt_.samples == 0) {
    sim::throw_invalid_input("run_yield_is: RunOptions::samples must be >= 1");
  }
  const ImportanceOptions& is_opt = opt_.importance;
  if (!(is_opt.shift_scale >= 0.0) || !std::isfinite(is_opt.shift_scale)) {
    sim::throw_invalid_input(
        "run_yield_is: ImportanceOptions::shift_scale must be finite and "
        ">= 0");
  }
  if (is_opt.mixture_nominal < 0.0 || is_opt.mixture_nominal >= 1.0) {
    sim::throw_invalid_input(
        "run_yield_is: ImportanceOptions::mixture_nominal must be in [0, 1)");
  }
  const std::size_t nw = sources.size();
  if (is_opt.control_variate) {
    for (const VariationSource& src : sources) {
      if (src.kind != VariationSource::Kind::kNormal) {
        sim::throw_invalid_input(
            "run_yield_is: the control variate needs the exact Gaussian "
            "surrogate tail probability, so every VariationSource must be "
            "kNormal (disable ImportanceOptions::control_variate or drop "
            "the uniform sources)");
      }
    }
  }

  // ---- Surrogate: linear delay model from the gradient sensitivities.
  // A failed nominal evaluation rethrows out of run_gradients (there is
  // no surrogate about a point that does not evaluate); under kSkip a
  // failed probe zeroes that source's gradient entry, which simply drops
  // the source from the shift.
  const GradientAnalysisResult ga = run_gradients(f, sources);

  IsYieldEstimate res;
  res.surrogate.nominal = ga.nominal;
  res.surrogate.gradient = ga.gradient;
  res.surrogate.sigma = ga.stddev;
  res.surrogate.shift.assign(nw, 0.0);
  res.main_samples = opt_.samples;

  // Most-probable failure point of the surrogate in standardized units:
  // minimize |u|^2 subject to sum_d a_d u_d = margin over the *normal*
  // dimensions (a_d = g_d sigma_d). Uniform sources cannot be shifted
  // and stay at zero.
  const double margin = clock_period - ga.nominal;
  res.surrogate.beta =
      res.surrogate.sigma > 0.0 ? margin / res.surrogate.sigma : 0.0;
  double a_norm_sq = 0.0;
  for (std::size_t d = 0; d < nw; ++d) {
    if (sources[d].kind != VariationSource::Kind::kNormal) continue;
    const double a_d = ga.gradient[d] * sources[d].sigma;
    a_norm_sq += a_d * a_d;
  }
  const bool degenerate = !(a_norm_sq > 0.0) || !(margin > 0.0);
  if (!degenerate) {
    for (std::size_t d = 0; d < nw; ++d) {
      if (sources[d].kind != VariationSource::Kind::kNormal) continue;
      const double a_d = ga.gradient[d] * sources[d].sigma;
      res.surrogate.shift[d] =
          is_opt.shift_scale * a_d * margin / a_norm_sq;
    }
  }

  // ---- Pilot phase (adaptive two-phase allocation): refine the
  // analytic shift with the cross-entropy update -- the
  // likelihood-weighted centroid of the failing pilot samples, which is
  // the closed-form CE-optimal mean for a Gaussian proposal family.
  PhaseSlots slots;
  if (is_opt.pilot_samples > 0 && !degenerate) {
    obs::ScopedSpan pilot_span("is_pilot");
    run_is_phase(opt_, reg, f, sources, res.surrogate,
                 is_opt.pilot_samples, stream_tag::kIsPilot,
                 stream_tag::kIsPilotPerm, /*keep_u=*/true, slots);
    fold_failures(slots, is_opt.pilot_samples, res.pilot_failures);
    res.pilot_used = is_opt.pilot_samples;
    double wsum = 0.0;
    Vector centroid(nw);
    centroid.assign(nw, 0.0);
    for (std::size_t s = 0; s < is_opt.pilot_samples; ++s) {
      if (slots.died[s] || !(slots.value[s] > clock_period)) continue;
      wsum += slots.weight[s];
      for (std::size_t d = 0; d < nw; ++d) {
        centroid[d] += slots.weight[s] * slots.u[s][d];
      }
    }
    if (wsum > 0.0) {
      for (std::size_t d = 0; d < nw; ++d) {
        if (sources[d].kind != VariationSource::Kind::kNormal) continue;
        res.surrogate.shift[d] = centroid[d] / wsum;
      }
    }
    // No failing pilot sample: the analytic shift stands unrefined.
  }

  // ---- Main phase.
  {
    obs::ScopedSpan main_span("is_main");
    run_is_phase(opt_, reg, f, sources, res.surrogate, opt_.samples,
                 stream_tag::kIsMain, stream_tag::kIsMainPerm,
                 /*keep_u=*/false, slots);
  }

  // ---- Serial sample-order fold: failure summary, estimator moments,
  // ESS, obs distributions. This ordering discipline is what makes the
  // result (and the merged obs counters) thread-count invariant.
  fold_failures(slots, opt_.samples, res.failures);
  const std::size_t n_surv = res.failures.survived;
  res.values.reserve(n_surv);
  res.weights.reserve(n_surv);
  std::uint64_t pass = 0;
  double sy = 0.0, syy = 0.0;        // y_i = L_i * 1{D_i > T}
  double sc = 0.0, scc = 0.0;        // c_i = L_i * 1{surrogate_i > T}
  double syc = 0.0;
  double sw = 0.0, sww = 0.0;        // raw weights, for ESS
  for (std::size_t s = 0; s < opt_.samples; ++s) {
    if (slots.died[s]) continue;
    const double lr = slots.weight[s];
    const double y = slots.value[s] > clock_period ? lr : 0.0;
    const double c = slots.surrogate[s] > clock_period ? lr : 0.0;
    if (!(slots.value[s] > clock_period)) ++pass;
    res.values.push_back(slots.value[s]);
    res.weights.push_back(lr);
    obs::record_value("stats.yield_is.likelihood_ratio", lr);
    sy += y;
    syy += y * y;
    sc += c;
    scc += c * c;
    syc += y * c;
    sw += lr;
    sww += lr * lr;
  }

  if (n_surv == 0) {
    // Every sample failed under kSkip: same ISLE-style convention as
    // McYieldEstimate -- a sample that diverges cannot meet timing.
    res.yield = 0.0;
    res.yield_loss = 1.0;
  } else {
    const double ns = static_cast<double>(n_surv);
    const double p = sy / ns;
    double variance = 0.0;  // per-sample variance of the fold
    if (n_surv > 1) {
      variance = (syy - ns * p * p) / (ns - 1.0);
    }
    res.yield_loss = p;
    if (is_opt.control_variate) {
      res.control_variate_used = true;
      res.control_expectation = normal_cdf(-res.surrogate.beta);
      const double cbar = sc / ns;
      if (n_surv > 1) {
        const double var_c = (scc - ns * cbar * cbar) / (ns - 1.0);
        const double cov = (syc - ns * p * cbar) / (ns - 1.0);
        if (var_c > 0.0) {
          res.control_coefficient = cov / var_c;
          res.yield_loss =
              p - res.control_coefficient * (cbar - res.control_expectation);
          variance -= cov * cov / var_c;  // residual variance at c*
          if (variance < 0.0) variance = 0.0;
        }
        // var_c == 0 (the surrogate never crossed T in-sample): the
        // control carries no information; fall through with c* = 0.
      }
    }
    if (n_surv > 1) {
      res.std_error = std::sqrt(variance / ns);
    }
    // The CV correction (and pathological weights) can push the point
    // estimate marginally outside [0, 1]; yield is reported clamped,
    // yield_loss is left raw so the bias behaviour stays visible.
    double y_clamped = 1.0 - res.yield_loss;
    if (y_clamped < 0.0) y_clamped = 0.0;
    if (y_clamped > 1.0) y_clamped = 1.0;
    res.yield = y_clamped;
  }
  res.ess = sww > 0.0 ? sw * sw / sww : 0.0;

  obs::add_counter("stats.yield_is.samples",
                   static_cast<std::uint64_t>(opt_.samples));
  obs::add_counter("stats.yield_is.pilot_samples",
                   static_cast<std::uint64_t>(res.pilot_used));
  obs::add_counter("stats.yield_is.skipped",
                   static_cast<std::uint64_t>(res.failures.failed() +
                                              res.pilot_failures.failed()));
  obs::add_counter("stats.yield_is.pass", pass);
  if (degenerate) obs::add_counter("stats.yield_is.degenerate_shift");
  obs::record_value("stats.yield_is.ess", res.ess);
  return res;
}

IsYieldEstimate importance_yield(const PerformanceFn& f,
                                 const std::vector<VariationSource>& sources,
                                 double clock_period,
                                 const MonteCarloOptions& opt,
                                 const ImportanceOptions& is) {
  RunOptions r = RunOptions::from(opt);
  r.importance = is;
  return Runner(std::move(r)).run_yield_is(f, sources, clock_period);
}

IsYieldEstimate importance_yield(const LanedPerformanceFn& f,
                                 const std::vector<VariationSource>& sources,
                                 double clock_period,
                                 const MonteCarloOptions& opt,
                                 const ImportanceOptions& is) {
  RunOptions r = RunOptions::from(opt);
  r.importance = is;
  return Runner(std::move(r)).run_yield_is(f, sources, clock_period);
}

}  // namespace lcsf::stats
