// Unified entry point for the statistical analyses (paper Sec. 4).
//
// stats::Runner replaces the grown-by-accretion free-function overload
// pairs (monte_carlo / gradient_analysis / monte_carlo_yield) with one
// facade sharing a single option struct, RunOptions: configure sampling,
// seeding, execution and observability once, then run any of the three
// analyses against it. The free functions remain as thin delegating
// wrappers (deprecation-ready; see docs/monte_carlo.md) so existing call
// sites keep compiling with identical results.
//
// Observability: every run_* method records phase spans, engine counters
// and a per-sample latency distribution into RunOptions::registry -- or,
// when that is null, into the registry ambient on the calling thread
// (obs::ScopedContext), so tools can install one registry around a whole
// analysis pipeline. With neither, recording is a no-op.
#pragma once

#include "obs/registry.hpp"
#include "stats/analysis.hpp"
#include "stats/importance.hpp"
#include "stats/yield.hpp"

namespace lcsf::stats {

/// Shared configuration for all Runner analyses. The sampling fields
/// mirror MonteCarloOptions, `step_fraction` mirrors
/// GradientAnalysisOptions, and the execution knobs live in `exec`
/// (one ExecutionOptions for all three analyses).
struct RunOptions {
  std::size_t samples = 100;    ///< MC/yield sample count; must be >= 1
  std::uint64_t seed = 1;       ///< base seed (counter-based streams)
  bool latin_hypercube = true;  ///< stratified vs plain sampling
  double step_fraction = 0.1;   ///< gradient finite-difference step
  ExecutionOptions exec;        ///< threads + failure policy

  /// Importance-sampled yield knobs (run_yield_is only): proposal shift
  /// scale, defensive-mixture weight, adaptive pilot budget and the
  /// control-variate switch. See stats/importance.hpp and
  /// docs/yield_estimation.md.
  ImportanceOptions importance;

  /// Metrics/trace destination. Null = inherit the calling thread's
  /// ambient registry (if any); recording is disabled when both are null.
  obs::Registry* registry = nullptr;

  /// Lossless lifts of the legacy per-analysis option structs (the
  /// delegating free functions use these).
  static RunOptions from(const MonteCarloOptions& opt);
  static RunOptions from(const GradientAnalysisOptions& opt);

  /// Projections back onto the legacy structs.
  MonteCarloOptions monte_carlo_options() const;
  GradientAnalysisOptions gradient_options() const;
};

/// Facade running the three statistical analyses under one RunOptions.
/// Stateless apart from the options (safe to reuse and copy); all
/// determinism contracts of the underlying engines hold unchanged --
/// results are bitwise identical for every exec.threads value, with or
/// without a registry installed.
class Runner {
 public:
  Runner() = default;
  explicit Runner(RunOptions opt) : opt_(std::move(opt)) {}

  const RunOptions& options() const { return opt_; }
  RunOptions& options() { return opt_; }

  /// Exhaustive sampling of f (contract of stats::monte_carlo).
  MonteCarloResult run_monte_carlo(
      const PerformanceFn& f,
      const std::vector<VariationSource>& sources) const;
  MonteCarloResult run_monte_carlo(
      const LanedPerformanceFn& f,
      const std::vector<VariationSource>& sources) const;

  /// Batch-dispatched Monte-Carlo: identical contract and (given a
  /// conforming BatchPerformanceFn) identical results to the laned
  /// overload. Samples are partitioned into floor(samples / K) full
  /// K-blocks evaluated through `fb` plus a scalar remainder loop through
  /// `f`, where K comes from options().exec.batch (see ExecutionOptions).
  /// Every sample still draws from its own counter-based stream, and full
  /// blocks and remainder samples are dispatched through one work queue,
  /// so results stay bitwise identical for every thread count AND every
  /// batch width. Under kAbort a failed batched sample surfaces as
  /// sim::SimulationError carrying its classified diagnostics; under
  /// kSkip it is recorded exactly like a scalar failure. Emits
  /// stats.mc.batches / stats.mc.batch_remainder_samples counters and the
  /// stats.mc.batch_fill distribution.
  MonteCarloResult run_monte_carlo(
      const LanedPerformanceFn& f, const BatchPerformanceFn& fb,
      const std::vector<VariationSource>& sources) const;

  /// Eq. 24 RSS spread estimate (contract of stats::gradient_analysis).
  GradientAnalysisResult run_gradients(
      const PerformanceFn& f,
      const std::vector<VariationSource>& sources) const;
  GradientAnalysisResult run_gradients(
      const LanedPerformanceFn& f,
      const std::vector<VariationSource>& sources) const;

  /// Monte-Carlo timing yield (contract of stats::monte_carlo_yield).
  McYieldEstimate run_yield(const PerformanceFn& f,
                            const std::vector<VariationSource>& sources,
                            double clock_period) const;
  McYieldEstimate run_yield(const LanedPerformanceFn& f,
                            const std::vector<VariationSource>& sources,
                            double clock_period) const;

  /// Importance-sampled timing yield (ISLE-style; stats/importance.hpp):
  /// builds a linear surrogate from run_gradients, shifts the sampling
  /// distribution onto the surrogate's failure boundary, and unbiases
  /// each sample with its likelihood ratio. Configured by
  /// options().importance (shift scale, defensive mixture, adaptive
  /// pilot, control variate). Same determinism contract as run_yield:
  /// the estimate, weights and failure summaries are bitwise identical
  /// for every exec.threads value. See docs/yield_estimation.md.
  IsYieldEstimate run_yield_is(const PerformanceFn& f,
                               const std::vector<VariationSource>& sources,
                               double clock_period) const;
  IsYieldEstimate run_yield_is(const LanedPerformanceFn& f,
                               const std::vector<VariationSource>& sources,
                               double clock_period) const;

 private:
  RunOptions opt_;
};

}  // namespace lcsf::stats
