// Internal helpers shared by the statistical driver engines (runner.cpp,
// importance.cpp). Not part of the public stats API -- everything here
// lives in lcsf::stats::detail and may change without notice.
#pragma once

#include <optional>
#include <stdexcept>

#include "obs/registry.hpp"
#include "sim/diagnostics.hpp"
#include "stats/analysis.hpp"

namespace lcsf::stats::detail {

/// Evaluate one sample under the kSkip policy: returns true and fills
/// `value` on success, false and fills `failure` on a classified failure.
/// std::logic_error (misuse) propagates.
inline bool eval_fail_soft(const LanedPerformanceFn& f,
                           const numeric::Vector& w, std::size_t lane,
                           std::size_t index, double& value,
                           SampleFailure& failure) {
  try {
    value = f(w, lane);
    return true;
  } catch (const sim::SimulationError& e) {
    failure = {index, e.kind(), e.diagnostics().message()};
  } catch (const std::runtime_error& e) {
    // A foreign engine that does not speak SimulationError: still a
    // simulation outcome, classified as kOther.
    failure = {index, sim::FailureKind::kOther, e.what()};
  }
  return false;
}

/// Adapt a lane-blind f to the laned core the drivers run on.
inline LanedPerformanceFn ignore_lane(const PerformanceFn& f) {
  return [&f](const numeric::Vector& w, std::size_t) { return f(w); };
}

/// Installs (registry, lane 0) on the driver thread -- unless that exact
/// registry is already ambient, in which case the existing context (and
/// its span path, e.g. an enclosing run_yield span) is left in place.
class DriverContext {
 public:
  explicit DriverContext(obs::Registry* reg) {
    if (reg != obs::ambient_registry()) ctx_.emplace(reg, 0);
  }

 private:
  std::optional<obs::ScopedContext> ctx_;
};

}  // namespace lcsf::stats::detail
