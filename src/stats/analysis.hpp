// Monte-Carlo and Gradient-Analysis drivers (paper Sec. 4.1.2-4.1.3).
//
// Both operate on an abstract performance function f(w) over independent
// variation sources w (use Pca::from_factors upstream if the physical
// parameters are correlated). Both evaluate f in parallel on the shared
// core::ThreadPool substrate; results are bitwise identical for every
// thread count because each sample draws from its own counter-based
// stream (see stats/random.hpp and docs/monte_carlo.md).
#pragma once

#include <functional>
#include <vector>

#include "numeric/matrix.hpp"
#include "stats/descriptive.hpp"
#include "stats/random.hpp"

namespace lcsf::stats {

/// Performance function under analysis: maps one realization of the
/// normalized variation sources w to a scalar metric (a delay, a skew...).
/// Must be safe to call concurrently from multiple threads.
using PerformanceFn = std::function<double(const numeric::Vector&)>;

/// Description of one independent variation source.
struct VariationSource {
  enum class Kind { kNormal, kUniform } kind = Kind::kNormal;
  double sigma = 1.0;      ///< std-dev (normal) or half-width (uniform)
  double mean = 0.0;
};

struct MonteCarloOptions {
  std::size_t samples = 100;  ///< sample count; must be >= 1
  /// Base seed. Sample s draws from stream (seed, s) regardless of how
  /// samples are partitioned across threads, so two runs with equal
  /// (samples, seed, latin_hypercube) agree bitwise whatever `threads` is.
  std::uint64_t seed = 1;
  bool latin_hypercube = true;  ///< stratified (paper Example 2) vs plain
  /// Worker threads for the f(w) evaluations. 0 = auto-detect via
  /// core::ThreadPool::default_threads() (LCSF_THREADS env, then hardware
  /// concurrency); 1 = serial.
  std::size_t threads = 0;
};

struct MonteCarloResult {
  OnlineStats stats;                       ///< accumulated in sample order
  std::vector<double> values;              ///< per-sample performance
  std::vector<numeric::Vector> samples;    ///< per-sample w
};

/// Exhaustive sampling of f over the variation sources.
///
/// Determinism contract: values[s] and samples[s] depend only on
/// (opt.seed, s, opt.samples if Latin-Hypercube, sources) -- never on
/// opt.threads or the machine's core count. `samples == 1` with
/// latin_hypercube is well-defined: the single stratum is the whole unit
/// interval, so it degenerates to one plain draw.
///
/// Throws std::invalid_argument naming the offending option if `sources`
/// is empty or `opt.samples == 0`; exceptions thrown by f propagate to the
/// caller (first one wins, remaining samples are abandoned).
MonteCarloResult monte_carlo(const PerformanceFn& f,
                             const std::vector<VariationSource>& sources,
                             const MonteCarloOptions& opt);

struct GradientAnalysisOptions {
  /// Relative finite-difference step, as a fraction of each source's
  /// sigma. The paper evaluates "five simulations per variation source";
  /// central differences use two plus the shared nominal run.
  double step_fraction = 0.1;
  /// Worker threads for the 2 x #sources probe evaluations (same semantics
  /// as MonteCarloOptions::threads). The result is thread-count invariant:
  /// each source's probes are independent and the Eq. 24 sum is
  /// accumulated in source order.
  std::size_t threads = 0;
};

struct GradientAnalysisResult {
  double nominal = 0.0;
  numeric::Vector gradient;  ///< dD/dw_l at nominal
  double stddev = 0.0;       ///< Eq. 24 RSS
  std::size_t evaluations = 0;
};

/// First-order (RSS) estimate of the performance spread, paper Eq. 24:
///   sigma_D = sqrt( sum_l sigma_l^2 (dD/dw_l)^2 ).
GradientAnalysisResult gradient_analysis(
    const PerformanceFn& f, const std::vector<VariationSource>& sources,
    const GradientAnalysisOptions& opt = {});

}  // namespace lcsf::stats
