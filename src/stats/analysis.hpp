// Monte-Carlo and Gradient-Analysis drivers (paper Sec. 4.1.2-4.1.3).
//
// Both operate on an abstract performance function f(w) over independent
// variation sources w (use Pca::from_factors upstream if the physical
// parameters are correlated).
#pragma once

#include <functional>
#include <vector>

#include "numeric/matrix.hpp"
#include "stats/descriptive.hpp"
#include "stats/random.hpp"

namespace lcsf::stats {

using PerformanceFn = std::function<double(const numeric::Vector&)>;

/// Description of one independent variation source.
struct VariationSource {
  enum class Kind { kNormal, kUniform } kind = Kind::kNormal;
  double sigma = 1.0;      ///< std-dev (normal) or half-width (uniform)
  double mean = 0.0;
};

struct MonteCarloOptions {
  std::size_t samples = 100;
  std::uint64_t seed = 1;
  bool latin_hypercube = true;  ///< stratified (paper Example 2) vs plain
};

struct MonteCarloResult {
  OnlineStats stats;
  std::vector<double> values;              ///< per-sample performance
  std::vector<numeric::Vector> samples;    ///< per-sample w
};

/// Exhaustive sampling of f over the variation sources.
MonteCarloResult monte_carlo(const PerformanceFn& f,
                             const std::vector<VariationSource>& sources,
                             const MonteCarloOptions& opt);

struct GradientAnalysisOptions {
  /// Relative finite-difference step, as a fraction of each source's
  /// sigma. The paper evaluates "five simulations per variation source";
  /// central differences use two plus the shared nominal run.
  double step_fraction = 0.1;
};

struct GradientAnalysisResult {
  double nominal = 0.0;
  numeric::Vector gradient;  ///< dD/dw_l at nominal
  double stddev = 0.0;       ///< Eq. 24 RSS
  std::size_t evaluations = 0;
};

/// First-order (RSS) estimate of the performance spread, paper Eq. 24:
///   sigma_D = sqrt( sum_l sigma_l^2 (dD/dw_l)^2 ).
GradientAnalysisResult gradient_analysis(
    const PerformanceFn& f, const std::vector<VariationSource>& sources,
    const GradientAnalysisOptions& opt = {});

}  // namespace lcsf::stats
