// Monte-Carlo and Gradient-Analysis drivers (paper Sec. 4.1.2-4.1.3).
//
// Both operate on an abstract performance function f(w) over independent
// variation sources w (use Pca::from_factors upstream if the physical
// parameters are correlated). Both evaluate f in parallel on the shared
// runtime::ThreadPool substrate; results are bitwise identical for every
// thread count because each sample draws from its own counter-based
// stream (see stats/random.hpp and docs/monte_carlo.md).
#pragma once

#include <array>
#include <functional>
#include <string>
#include <vector>

#include "numeric/matrix.hpp"
#include "sim/diagnostics.hpp"
#include "stats/descriptive.hpp"
#include "stats/random.hpp"

namespace lcsf::stats {

/// Performance function under analysis: maps one realization of the
/// normalized variation sources w to a scalar metric (a delay, a skew...).
/// Must be safe to call concurrently from multiple threads.
using PerformanceFn = std::function<double(const numeric::Vector&)>;

/// Lane-aware performance function: the driver passes the executing
/// thread's lane index (runtime::ThreadPool lane semantics: caller = 0,
/// worker k = k + 1, lane < max(1, resolved thread count)). Within one
/// driver call a lane is used by at most one thread at a time, so f may
/// keep mutable per-lane workspaces -- the allocation-free Monte-Carlo
/// hot path -- without locking. The value returned must not depend on the
/// lane, or the thread-count determinism contract is forfeit.
using LanedPerformanceFn =
    std::function<double(const numeric::Vector&, std::size_t)>;

/// Compiled-in default width of a lockstep sample block (see
/// ExecutionOptions::batch and docs/performance.md).
inline constexpr std::size_t kDefaultBatch = 8;

/// Per-sample outcome of one batched evaluation. On failure `diag` carries
/// the classified diagnostics (what the scalar path would have thrown as
/// sim::SimulationError); foreign std::runtime_error failures are
/// classified kOther with the exception message as detail.
struct BatchSlot {
  double value = 0.0;
  bool failed = false;
  sim::SimDiagnostics diag;
};

/// Batched performance function: evaluate a block of variation-source
/// samples in lockstep on one lane, filling one BatchSlot per input (the
/// driver sizes `out` to match). Contract: out[b] must equal what the
/// scalar PerformanceFn would produce for w[b] -- bitwise for values, same
/// classified diagnostics for failures -- regardless of the surrounding
/// block (fail-soft: one diverging sample must not perturb its
/// neighbours). Must be safe to call concurrently from multiple threads
/// with distinct lanes.
using BatchPerformanceFn = std::function<void(
    const std::vector<numeric::Vector>& w, std::size_t lane,
    std::vector<BatchSlot>& out)>;

/// Description of one independent variation source.
struct VariationSource {
  enum class Kind { kNormal, kUniform } kind = Kind::kNormal;
  double sigma = 1.0;      ///< std-dev (normal) or half-width (uniform)
  double mean = 0.0;
};

/// What a statistical driver does when one sample's evaluation fails
/// (throws sim::SimulationError or another std::runtime_error).
enum class FailurePolicy {
  kAbort,  ///< rethrow: one bad sample kills the whole run (legacy)
  kSkip,   ///< record + classify the failure, compute stats over survivors
};

/// One failed sample. `index` is the reproduction handle: rerunning with
/// the same (seed, samples, latin_hypercube, sources) makes sample `index`
/// draw the identical variate vector.
struct SampleFailure {
  std::size_t index = 0;
  sim::FailureKind kind = sim::FailureKind::kOther;
  std::string detail;  ///< diagnostics message of the failure
};

/// Deterministic aggregate of per-sample failures: built serially in
/// sample-index order after the parallel evaluation, so it is bitwise
/// identical for every thread count (same contract as the values).
struct FailureSummary {
  std::size_t attempted = 0;  ///< samples evaluated (or aborted mid-run)
  std::size_t survived = 0;   ///< samples that produced a value
  /// Failure count per sim::FailureKind (indexed by the enum's value).
  std::array<std::size_t, sim::kNumFailureKinds> counts{};
  /// Every failure, ordered by sample index (the first entry per kind is
  /// the cheapest reproduction case).
  std::vector<SampleFailure> failures;

  std::size_t failed() const { return attempted - survived; }
  bool any() const { return failed() > 0; }
  std::size_t count(sim::FailureKind k) const {
    return counts[static_cast<std::size_t>(k)];
  }
  /// Multi-line "kind : count (first sample i: detail)" report table;
  /// empty string when nothing failed.
  std::string table() const;
};

/// Execution knobs shared by every statistical driver (Monte-Carlo,
/// Gradient Analysis, yield). Both analysis option structs inherit from
/// this, so `opt.threads`/`opt.on_failure` read the same everywhere and
/// the semantics are documented exactly once.
struct ExecutionOptions {
  /// Worker threads for the parallel evaluations. 0 = auto-detect via
  /// runtime::ThreadPool::default_threads() (LCSF_THREADS env, then hardware
  /// concurrency); 1 = serial.
  std::size_t threads = 0;
  /// Fail-soft switch. With kSkip, an evaluation that throws
  /// sim::SimulationError (or std::runtime_error, classified kOther) is
  /// skipped, counted and classified in the result's FailureSummary;
  /// statistics cover the survivors. std::logic_error still propagates --
  /// misuse is not a simulation outcome. See each driver for what "one
  /// evaluation" means (a sample, resp. a probe pair).
  FailurePolicy on_failure = FailurePolicy::kAbort;
  /// Lockstep sample-block width for drivers given a BatchPerformanceFn.
  /// 0 = resolve the default (set_default_batch() override, then the
  /// LCSF_BATCH environment variable, then kDefaultBatch); 1 = force the
  /// scalar path; K >= 2 dispatches floor(samples / K) full blocks plus a
  /// scalar remainder loop. Values never change results -- sample draws
  /// and the thread-count determinism contract are batch-width invariant.
  std::size_t batch = 0;
};

/// Resolve the ambient batch width: the set_default_batch() override if
/// set, else the LCSF_BATCH environment variable (parsed strictly; an
/// invalid value throws sim::SimulationError, kInvalidInput), else
/// kDefaultBatch. Read per call, so environment changes take effect.
std::size_t default_batch();
/// Process-wide batch-width override (0 clears it). Mirrors
/// runtime::ThreadPool::set_default_threads; used by `--batch`.
void set_default_batch(std::size_t k);
/// Parse a batch width from command-line/environment text: a positive
/// decimal integer. Throws sim::SimulationError (kInvalidInput) naming
/// `what` otherwise.
std::size_t parse_batch(const std::string& text, const char* what);

struct MonteCarloOptions : ExecutionOptions {
  std::size_t samples = 100;  ///< sample count; must be >= 1
  /// Base seed. Sample s draws from stream (seed, s) regardless of how
  /// samples are partitioned across threads, so two runs with equal
  /// (samples, seed, latin_hypercube) agree bitwise whatever `threads` is.
  std::uint64_t seed = 1;
  bool latin_hypercube = true;  ///< stratified (paper Example 2) vs plain
};

struct MonteCarloResult {
  OnlineStats stats;                       ///< accumulated in sample order
  /// Per-sample performance / variates of the *survivors*, in sample-index
  /// order (== all samples when nothing failed).
  std::vector<double> values;
  std::vector<numeric::Vector> samples;
  FailureSummary failures;  ///< who died, and why (empty under kAbort)
};

/// Exhaustive sampling of f over the variation sources.
///
/// Thin wrapper over stats::Runner::run_monte_carlo (stats/runner.hpp) --
/// the Runner facade is the preferred entry point and this free function
/// is deprecation-ready (it will gain [[deprecated]] once downstream
/// callers migrate; see docs/monte_carlo.md).
///
/// Determinism contract: values[s] and samples[s] depend only on
/// (opt.seed, s, opt.samples if Latin-Hypercube, sources) -- never on
/// opt.threads or the machine's core count. `samples == 1` with
/// latin_hypercube is well-defined: the single stratum is the whole unit
/// interval, so it degenerates to one plain draw.
///
/// Throws sim::SimulationError (kInvalidInput) naming the offending
/// option if `sources`
/// is empty or `opt.samples == 0`. With the default kAbort policy,
/// exceptions thrown by f propagate to the caller (first one wins,
/// remaining samples are abandoned); with kSkip, simulation failures are
/// recorded in the result's FailureSummary instead.
MonteCarloResult monte_carlo(const PerformanceFn& f,
                             const std::vector<VariationSource>& sources,
                             const MonteCarloOptions& opt);

/// Lane-aware overload: identical contract, but f also receives the lane
/// index so it can reuse a per-lane sample workspace across evaluations.
MonteCarloResult monte_carlo(const LanedPerformanceFn& f,
                             const std::vector<VariationSource>& sources,
                             const MonteCarloOptions& opt);

/// Options for gradient_analysis. Execution knobs come from
/// ExecutionOptions; here `threads` spreads the 2 x #sources probe
/// evaluations (the result stays thread-count invariant: probes are
/// independent and the Eq. 24 sum is accumulated in source order), and
/// under kSkip a failed probe zeroes that source's gradient entry, drops
/// it from the Eq. 24 sum and records it (SampleFailure::index = source
/// index). A failed *nominal* evaluation always rethrows -- there is no
/// gradient about a point that does not evaluate.
struct GradientAnalysisOptions : ExecutionOptions {
  /// Relative finite-difference step, as a fraction of each source's
  /// sigma. The paper evaluates "five simulations per variation source";
  /// central differences use two plus the shared nominal run.
  double step_fraction = 0.1;
};

struct GradientAnalysisResult {
  double nominal = 0.0;
  numeric::Vector gradient;  ///< dD/dw_l at nominal
  double stddev = 0.0;       ///< Eq. 24 RSS
  std::size_t evaluations = 0;
  FailureSummary failures;   ///< failed probes by source index
};

/// First-order (RSS) estimate of the performance spread, paper Eq. 24:
///   sigma_D = sqrt( sum_l sigma_l^2 (dD/dw_l)^2 ).
/// Thin deprecation-ready wrapper over stats::Runner::run_gradients.
GradientAnalysisResult gradient_analysis(
    const PerformanceFn& f, const std::vector<VariationSource>& sources,
    const GradientAnalysisOptions& opt = {});

/// Lane-aware overload (LanedPerformanceFn semantics as in monte_carlo).
GradientAnalysisResult gradient_analysis(
    const LanedPerformanceFn& f, const std::vector<VariationSource>& sources,
    const GradientAnalysisOptions& opt = {});

}  // namespace lcsf::stats
