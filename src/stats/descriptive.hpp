// Online descriptive statistics and histograms for the experiment tables.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace lcsf::stats {

/// Welford online mean/variance accumulator.
class OnlineStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  /// Sample standard deviation (n-1 denominator); 0 for n < 2.
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

  /// Absorb another accumulator (Chan et al. pairwise update). Merging a
  /// fixed chunk decomposition in a fixed order is deterministic, which is
  /// how per-thread partials can be combined reproducibly; note the
  /// floating-point result differs from adding the same values serially.
  void merge(const OnlineStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-range histogram with an ASCII rendering used by the figure
/// benches (Figs. 6 and 7 are delay histograms).
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  /// From data, with range padded to the sample extremes.
  static Histogram from_data(const std::vector<double>& data,
                             std::size_t bins);

  void add(double x);
  std::size_t bin_count(std::size_t k) const { return counts_.at(k); }
  std::size_t bins() const { return counts_.size(); }
  std::size_t total() const { return total_; }
  double bin_center(std::size_t k) const;

  /// Rows of "center | count | bar" suitable for the bench output.
  std::string render(std::size_t max_width = 50) const;

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Mean/stddev of a vector in one pass (convenience for tests).
OnlineStats summarize(const std::vector<double>& data);

}  // namespace lcsf::stats
