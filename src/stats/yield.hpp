// Timing-yield estimation (the paper's Sec. 4 motivation: "To predict the
// timing yield of the critical path delay, a large number of simulations
// are required") and the worst-case-corner analysis the introduction
// argues against ("worst-case corner methods are known to create overly
// pessimistic results").
//
// Everything here is brute-force: the estimators average indicator
// functions over a plain Monte-Carlo sample. For *rare* failures (clock
// periods sigmas beyond nominal) the importance-sampled estimator in
// stats/importance.hpp resolves the same tail with orders of magnitude
// fewer simulations -- see the selection table in
// docs/yield_estimation.md.
#pragma once

#include <cstddef>
#include <vector>

#include "stats/analysis.hpp"

namespace lcsf::stats {

/// Standard normal CDF.
double normal_cdf(double x);

/// P(delay <= clock_period) from an empirical Monte-Carlo sample
/// (fraction of samples meeting the period).
double empirical_yield(const std::vector<double>& delays,
                       double clock_period);

/// empirical_yield over a grid of clock periods, evaluated on the shared
/// thread pool (`threads` has MonteCarloOptions::threads semantics). The
/// returned vector is ordered like `periods` regardless of thread count.
std::vector<double> empirical_yield_curve(const std::vector<double>& delays,
                                          const std::vector<double>& periods,
                                          std::size_t threads = 0);

/// A Monte-Carlo yield estimate plus the sample it was computed from.
/// (The sample member was renamed from the cryptic `mc` to the accessor
/// `samples()` -- see docs/monte_carlo.md for the migration note.)
class McYieldEstimate {
 public:
  McYieldEstimate() = default;
  /// Compute yield/std_error for `clock_period` over `samples`' survivor
  /// values. A run where *every* sample failed (kSkip) reports yield 0:
  /// by the ISLE-style convention a sample that diverges cannot meet
  /// timing (the summary in samples().failures tells the story).
  McYieldEstimate(MonteCarloResult samples, double clock_period);

  /// The underlying Monte-Carlo sample (reusable for yield curves etc.).
  const MonteCarloResult& samples() const { return samples_; }
  MonteCarloResult& samples() { return samples_; }

  double yield = 0.0;        ///< fraction of samples meeting the period
  double std_error = 0.0;    ///< binomial std error sqrt(y(1-y)/n)

 private:
  MonteCarloResult samples_;
};

/// End-to-end Monte-Carlo yield estimator: samples f over the variation
/// sources with the parallel monte_carlo() engine and counts the fraction
/// meeting `clock_period`. Inherits monte_carlo()'s determinism contract:
/// the estimate is bitwise identical for every opt.threads value. With
/// opt.on_failure == FailurePolicy::kSkip, failed samples are excluded
/// from the survivor fraction and classified in samples().failures;
/// importance-sampling-style tail estimation needs exactly this, since
/// the tail samples are the ones that misbehave.
/// Thin deprecation-ready wrapper over stats::Runner::run_yield.
McYieldEstimate monte_carlo_yield(const PerformanceFn& f,
                                  const std::vector<VariationSource>& sources,
                                  double clock_period,
                                  const MonteCarloOptions& opt);

/// Lane-aware overload (LanedPerformanceFn semantics as in monte_carlo):
/// lets the evaluator reuse per-lane workspaces across the yield samples.
McYieldEstimate monte_carlo_yield(const LanedPerformanceFn& f,
                                  const std::vector<VariationSource>& sources,
                                  double clock_period,
                                  const MonteCarloOptions& opt);

/// P(delay <= clock_period) under the Gaussian model implied by Gradient
/// Analysis (Eq. 24): N(nominal, sigma).
double gaussian_yield(double nominal, double sigma, double clock_period);

/// The smallest clock period achieving the target yield, from the
/// empirical sample (exact order statistic, linearly interpolated).
double period_for_yield(std::vector<double> delays, double target_yield);

/// Same under the Gaussian model.
double gaussian_period_for_yield(double nominal, double sigma,
                                 double target_yield);

/// Classic worst-case-corner estimate: every variation source pushed to
/// +k sigma simultaneously in its delay-increasing direction. `corner(k)`
/// must return the delay with all sources at +/-k chosen adversarially by
/// the caller. This helper just documents the comparison; the pessimism
/// ratio of a corner delay vs a statistical quantile is
/// corner_pessimism().
double corner_pessimism(double corner_delay, double statistical_quantile,
                        double nominal);

}  // namespace lcsf::stats
