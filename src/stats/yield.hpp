// Timing-yield estimation (the paper's Sec. 4 motivation: "To predict the
// timing yield of the critical path delay, a large number of simulations
// are required") and the worst-case-corner analysis the introduction
// argues against ("worst-case corner methods are known to create overly
// pessimistic results").
#pragma once

#include <cstddef>
#include <vector>

namespace lcsf::stats {

/// Standard normal CDF.
double normal_cdf(double x);

/// P(delay <= clock_period) from an empirical Monte-Carlo sample
/// (fraction of samples meeting the period).
double empirical_yield(const std::vector<double>& delays,
                       double clock_period);

/// P(delay <= clock_period) under the Gaussian model implied by Gradient
/// Analysis (Eq. 24): N(nominal, sigma).
double gaussian_yield(double nominal, double sigma, double clock_period);

/// The smallest clock period achieving the target yield, from the
/// empirical sample (exact order statistic, linearly interpolated).
double period_for_yield(std::vector<double> delays, double target_yield);

/// Same under the Gaussian model.
double gaussian_period_for_yield(double nominal, double sigma,
                                 double target_yield);

/// Classic worst-case-corner estimate: every variation source pushed to
/// +k sigma simultaneously in its delay-increasing direction. `corner(k)`
/// must return the delay with all sources at +/-k chosen adversarially by
/// the caller. This helper just documents the comparison; the pessimism
/// ratio of a corner delay vs a statistical quantile is
/// corner_pessimism().
double corner_pessimism(double corner_delay, double statistical_quantile,
                        double nominal);

}  // namespace lcsf::stats
