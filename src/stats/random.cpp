#include "stats/random.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "sim/diagnostics.hpp"

namespace lcsf::stats {

std::uint64_t SplitMix64::below(std::uint64_t bound) {
  if (bound <= 1) return 0;
  // Reject the top partial cycle so every value is equally likely.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % bound;
  std::uint64_t x;
  do {
    x = next();
  } while (x >= limit);
  return x % bound;
}

std::vector<std::size_t> stream_permutation(std::size_t n,
                                            SplitMix64& stream) {
  std::vector<std::size_t> p(n);
  std::iota(p.begin(), p.end(), std::size_t{0});
  for (std::size_t k = n; k > 1; --k) {
    std::swap(p[k - 1], p[stream.below(k)]);
  }
  return p;
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> p(n);
  std::iota(p.begin(), p.end(), std::size_t{0});
  std::shuffle(p.begin(), p.end(), engine_);
  return p;
}

double inverse_normal_cdf(double p) {
  if (p <= 0.0 || p >= 1.0) {
    sim::throw_invalid_input("inverse_normal_cdf: p must be in (0,1)");
  }
  // Acklam's algorithm: rational approximations in three regions.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double plow = 0.02425;
  double x;
  if (p < plow) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
         c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - plow) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
         a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
          c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  return x;
}

double mixture_likelihood_ratio(double score, double lambda) {
  if (lambda < 0.0 || lambda >= 1.0) {
    sim::throw_invalid_input(
        "mixture_likelihood_ratio: mixture weight must be in [0, 1)");
  }
  // q/p = lambda + (1 - lambda) * exp(score). exp() overflow to +inf is
  // benign (the ratio underflows to 0: a sample deep inside the proposal
  // bulk carries negligible weight); exp() underflow to 0 leaves the
  // mixture floor lambda, which is exactly the 1/lambda weight bound the
  // defensive mixture exists to provide.
  return 1.0 / (lambda + (1.0 - lambda) * std::exp(score));
}

numeric::Matrix latin_hypercube(std::size_t n_samples, std::size_t n_dims,
                                Rng& rng) {
  if (n_samples == 0 || n_dims == 0) {
    sim::throw_invalid_input("latin_hypercube: empty design");
  }
  numeric::Matrix u(n_samples, n_dims);
  for (std::size_t d = 0; d < n_dims; ++d) {
    const auto perm = rng.permutation(n_samples);
    for (std::size_t s = 0; s < n_samples; ++s) {
      // Stratum perm[s] with jitter inside it.
      u(s, d) = (static_cast<double>(perm[s]) + rng.uniform()) /
                static_cast<double>(n_samples);
    }
  }
  return u;
}

}  // namespace lcsf::stats
