// Reproducible random sampling utilities: every statistical experiment in
// the benches is seeded, so tables regenerate bit-identically.
//
// Two generator families live here:
//  * Rng -- a stateful mt19937_64 wrapper for inherently serial uses
//    (ad-hoc experiments, the legacy latin_hypercube() entry point).
//  * SplitMix64 + sample_stream() -- counter-based streams for the
//    parallel Monte-Carlo engine: every sample index owns an independent
//    stream derived from (seed, index), so a run partitioned across any
//    number of threads draws bitwise-identical variates. This is the
//    determinism contract documented in docs/monte_carlo.md.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "numeric/matrix.hpp"

namespace lcsf::stats {

/// SplitMix64 finalizer: a cheap, high-quality 64-bit mixing function
/// (Steele et al., "Fast splittable pseudorandom number generators").
/// Used both as the stream generator and to hash (seed, counter) pairs
/// into stream states.
constexpr std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Minimal counter-based generator. Unlike mt19937_64 it is trivially
/// seedable per sample (one multiply-add + finalizer per draw) and its
/// output is fully defined by this header -- no library-dependent
/// std::distribution behaviour -- so parallel Monte-Carlo results are
/// reproducible across platforms as well as thread counts.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t state) : state_(state) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    return mix64(z);
  }

  /// Uniform double strictly inside (0, 1): the 53-bit mantissa is offset
  /// by half an ulp, so 0.0 and 1.0 are unreachable and the result can be
  /// fed to inverse_normal_cdf() without a domain check.
  double uniform_open() {
    return (static_cast<double>(next() >> 11) + 0.5) * 0x1.0p-53;
  }

  double uniform(double lo, double hi) {
    return lo + (hi - lo) * uniform_open();
  }

  /// Unbiased integer in [0, bound) by rejection (no modulo bias).
  std::uint64_t below(std::uint64_t bound);

 private:
  std::uint64_t state_;
};

/// The per-sample stream of the parallel Monte-Carlo engine: a SplitMix64
/// whose state hashes (seed, index, tag) together. `tag` separates
/// independent uses of the same (seed, index) pair -- e.g. the
/// Latin-Hypercube permutation streams use one tag per dimension while the
/// jitters come from the plain per-sample stream.
inline SplitMix64 sample_stream(std::uint64_t seed, std::uint64_t index,
                                std::uint64_t tag = 0) {
  return SplitMix64(mix64(seed + 0x9e3779b97f4a7c15ULL * (index + 1)) ^
                    mix64(tag + 0x94d049bb133111ebULL));
}

/// Registry of the sample_stream() tags in use across the statistical
/// engines. Centralized so two engines can never collide on a
/// (seed, index) pair by accident, and so the values are visibly frozen:
/// changing any of them changes every recorded result downstream of that
/// engine (tag 0 is the plain per-sample Monte-Carlo stream).
namespace stream_tag {
/// Latin-Hypercube per-dimension permutation streams of the plain
/// Monte-Carlo engine (index = dimension). Frozen at the value the PR 1
/// engine shipped with.
inline constexpr std::uint64_t kLhsPerm = 0x1a71;
/// Importance-sampling pilot-phase per-sample streams (index = sample).
inline constexpr std::uint64_t kIsPilot = 0x15a1;
/// Importance-sampling main-phase per-sample streams (index = sample).
inline constexpr std::uint64_t kIsMain = 0x15a2;
/// LHS permutation streams of the IS pilot phase (index = dimension).
inline constexpr std::uint64_t kIsPilotPerm = 0x15a3;
/// LHS permutation streams of the IS main phase (index = dimension).
inline constexpr std::uint64_t kIsMainPerm = 0x15a4;
}  // namespace stream_tag

/// Deterministic Fisher-Yates permutation of 0..n-1 driven by a
/// counter-based stream (the thread-count-independent analogue of
/// Rng::permutation).
std::vector<std::size_t> stream_permutation(std::size_t n,
                                            SplitMix64& stream);

// lcsf-lint: allow(nondeterministic-rng) -- Rng's mt19937_64 member
// below is always constructed from the explicit ctor seed; the textual
// rule cannot see through the member-initializer list. SplitMix64
// streams above remain the only sanctioned parallel path.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  double uniform() { return unit_(engine_); }
  double uniform(double lo, double hi) {
    return lo + (hi - lo) * uniform();
  }
  double normal(double mean = 0.0, double sigma = 1.0) {
    return mean + sigma * normal_(engine_);
  }
  /// Random permutation of 0..n-1 (used by Latin Hypercube Sampling).
  std::vector<std::size_t> permutation(std::size_t n);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uniform_real_distribution<double> unit_{0.0, 1.0};
  std::normal_distribution<double> normal_{0.0, 1.0};
};

/// Inverse standard-normal CDF (Acklam's rational approximation, relative
/// error < 1.15e-9). Needed to map Latin Hypercube strata onto normal
/// variates.
double inverse_normal_cdf(double p);

/// Latin Hypercube Sampling: returns an n_samples x n_dims matrix of
/// stratified U(0,1) variates -- each column is a random permutation of the
/// n_samples strata with a uniform jitter inside each stratum (the paper
/// draws its 100 Example-2 samples this way).
numeric::Matrix latin_hypercube(std::size_t n_samples, std::size_t n_dims,
                                Rng& rng);

/// Map a U(0,1) value to uniform(lo, hi).
inline double to_uniform(double u, double lo, double hi) {
  return lo + (hi - lo) * u;
}
/// Map a U(0,1) value to N(mean, sigma).
inline double to_normal(double u, double mean, double sigma) {
  return mean + sigma * inverse_normal_cdf(u);
}
/// Map a U(0,1) value to the mean-shifted proposal N(mean + sigma*shift,
/// sigma): the standardized variate is offset by `shift` *before* the
/// affine map, so the importance-sampling engine can form likelihood
/// ratios in standardized units. shift == 0.0 reproduces to_normal()
/// bit for bit.
inline double to_normal_shifted(double u, double mean, double sigma,
                                double shift) {
  return mean + sigma * (inverse_normal_cdf(u) + shift);
}

/// Likelihood ratio p(u) / q(u) of one standardized sample under the
/// defensive-mixture proposal q = lambda p + (1 - lambda) p_shifted,
/// where p is standard normal and p_shifted is p mean-shifted by theta.
/// `score` is theta . u - |theta|^2 / 2 (the log density ratio
/// p_shifted / p at the realized u). With lambda == 0 this is the plain
/// exponential-tilt ratio; the mixture bounds it above by 1 / lambda.
/// A zero shift gives exactly 1.0 (score == 0) for any lambda -- the
/// degenerate-to-plain-MC identity the tests pin.
double mixture_likelihood_ratio(double score, double lambda);

}  // namespace lcsf::stats
