// Reproducible random sampling utilities: every statistical experiment in
// the benches is seeded, so tables regenerate bit-identically.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "numeric/matrix.hpp"

namespace lcsf::stats {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  double uniform() { return unit_(engine_); }
  double uniform(double lo, double hi) {
    return lo + (hi - lo) * uniform();
  }
  double normal(double mean = 0.0, double sigma = 1.0) {
    return mean + sigma * normal_(engine_);
  }
  /// Random permutation of 0..n-1 (used by Latin Hypercube Sampling).
  std::vector<std::size_t> permutation(std::size_t n);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uniform_real_distribution<double> unit_{0.0, 1.0};
  std::normal_distribution<double> normal_{0.0, 1.0};
};

/// Inverse standard-normal CDF (Acklam's rational approximation, relative
/// error < 1.15e-9). Needed to map Latin Hypercube strata onto normal
/// variates.
double inverse_normal_cdf(double p);

/// Latin Hypercube Sampling: returns an n_samples x n_dims matrix of
/// stratified U(0,1) variates -- each column is a random permutation of the
/// n_samples strata with a uniform jitter inside each stratum (the paper
/// draws its 100 Example-2 samples this way).
numeric::Matrix latin_hypercube(std::size_t n_samples, std::size_t n_dims,
                                Rng& rng);

/// Map a U(0,1) value to uniform(lo, hi).
inline double to_uniform(double u, double lo, double hi) {
  return lo + (hi - lo) * u;
}
/// Map a U(0,1) value to N(mean, sigma).
inline double to_normal(double u, double mean, double sigma) {
  return mean + sigma * inverse_normal_cdf(u);
}

}  // namespace lcsf::stats
