#include "stats/yield.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "runtime/thread_pool.hpp"
#include "numeric/fp_compare.hpp"
#include "sim/diagnostics.hpp"
#include "stats/random.hpp"
#include "stats/runner.hpp"

namespace lcsf::stats {

double normal_cdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

double empirical_yield(const std::vector<double>& delays,
                       double clock_period) {
  if (delays.empty()) sim::throw_invalid_input("empirical_yield: empty");
  std::size_t pass = 0;
  for (double d : delays) {
    if (d <= clock_period) ++pass;
  }
  return static_cast<double>(pass) / static_cast<double>(delays.size());
}

std::vector<double> empirical_yield_curve(const std::vector<double>& delays,
                                          const std::vector<double>& periods,
                                          std::size_t threads) {
  if (delays.empty()) {
    sim::throw_invalid_input("empirical_yield_curve: empty sample");
  }
  std::vector<double> out(periods.size());
  runtime::parallel_for(threads, periods.size(),
                     [&](std::size_t begin, std::size_t end) {
                       for (std::size_t k = begin; k < end; ++k) {
                         out[k] = empirical_yield(delays, periods[k]);
                       }
                     });
  return out;
}

McYieldEstimate::McYieldEstimate(MonteCarloResult sample_set,
                                 double clock_period)
    : samples_(std::move(sample_set)) {
  if (samples_.values.empty()) {
    // Every sample failed under FailurePolicy::kSkip: by the ISLE-style
    // convention a sample that diverges cannot meet timing, so the yield
    // estimate is 0 (the summary in samples().failures tells the story).
    return;
  }
  yield = empirical_yield(samples_.values, clock_period);
  std_error = std::sqrt(yield * (1.0 - yield) /
                        static_cast<double>(samples_.values.size()));
}

McYieldEstimate monte_carlo_yield(const PerformanceFn& f,
                                  const std::vector<VariationSource>& sources,
                                  double clock_period,
                                  const MonteCarloOptions& opt) {
  return Runner(RunOptions::from(opt)).run_yield(f, sources, clock_period);
}

McYieldEstimate monte_carlo_yield(const LanedPerformanceFn& f,
                                  const std::vector<VariationSource>& sources,
                                  double clock_period,
                                  const MonteCarloOptions& opt) {
  return Runner(RunOptions::from(opt)).run_yield(f, sources, clock_period);
}

double gaussian_yield(double nominal, double sigma, double clock_period) {
  if (sigma < 0.0) sim::throw_invalid_input("gaussian_yield: sigma < 0");
  if (numeric::exact_zero(sigma)) return clock_period >= nominal ? 1.0 : 0.0;
  return normal_cdf((clock_period - nominal) / sigma);
}

double period_for_yield(std::vector<double> delays, double target_yield) {
  if (delays.empty()) {
    sim::throw_invalid_input("period_for_yield: empty sample");
  }
  if (target_yield <= 0.0 || target_yield > 1.0) {
    sim::throw_invalid_input("period_for_yield: yield in (0,1]");
  }
  std::sort(delays.begin(), delays.end());
  const double pos =
      target_yield * static_cast<double>(delays.size()) - 1.0;
  if (pos <= 0.0) return delays.front();
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  if (lo + 1 >= delays.size()) return delays.back();
  const double frac = pos - std::floor(pos);
  return delays[lo] + frac * (delays[lo + 1] - delays[lo]);
}

double gaussian_period_for_yield(double nominal, double sigma,
                                 double target_yield) {
  if (target_yield <= 0.0 || target_yield >= 1.0) {
    sim::throw_invalid_input("gaussian_period_for_yield: yield in (0,1)");
  }
  return nominal + sigma * inverse_normal_cdf(target_yield);
}

double corner_pessimism(double corner_delay, double statistical_quantile,
                        double nominal) {
  const double corner_margin = corner_delay - nominal;
  const double stat_margin = statistical_quantile - nominal;
  if (stat_margin <= 0.0) {
    sim::throw_invalid_input("corner_pessimism: quantile <= nominal");
  }
  return corner_margin / stat_margin;
}

}  // namespace lcsf::stats
