#include "stats/pca.hpp"

#include <cmath>
#include <stdexcept>

#include "numeric/eigen_sym.hpp"
#include "numeric/fp_compare.hpp"
#include "sim/diagnostics.hpp"

namespace lcsf::stats {

using numeric::Matrix;
using numeric::Vector;

Pca::Pca(Matrix covariance, Vector means) : means_(std::move(means)) {
  if (!covariance.square() || covariance.rows() != means_.size()) {
    sim::throw_invalid_input("Pca: dimension mismatch");
  }
  const auto eig = numeric::eigen_symmetric(std::move(covariance));
  const std::size_t n = means_.size();
  variances_.resize(n);
  directions_ = Matrix(n, n);
  // eigen_symmetric returns ascending; store descending.
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t src = n - 1 - k;
    double v = eig.values[src];
    if (v < -1e-9 * std::abs(eig.values[n - 1])) {
      sim::throw_invalid_input("Pca: covariance not PSD");
    }
    variances_[k] = std::max(v, 0.0);
    directions_.set_col(k, eig.vectors.col(src));
  }
}

std::size_t Pca::factors_for(double fraction) const {
  if (fraction <= 0.0 || fraction > 1.0) {
    sim::throw_invalid_input("Pca::factors_for: fraction in (0,1]");
  }
  double total = 0.0;
  for (double v : variances_) total += v;
  if (total <= 0.0) return 0;
  double acc = 0.0;
  for (std::size_t k = 0; k < variances_.size(); ++k) {
    acc += variances_[k];
    if (acc >= fraction * total) return k + 1;
  }
  return variances_.size();
}

Vector Pca::from_factors(const Vector& z) const {
  if (z.size() > dimension()) {
    sim::throw_invalid_input("Pca::from_factors: too many factors");
  }
  Vector x = means_;
  for (std::size_t k = 0; k < z.size(); ++k) {
    const double scale = std::sqrt(variances_[k]) * z[k];
    if (numeric::exact_zero(scale)) continue;
    for (std::size_t i = 0; i < dimension(); ++i) {
      x[i] += scale * directions_(i, k);
    }
  }
  return x;
}

Vector Pca::to_factors(const Vector& x) const {
  if (x.size() != dimension()) {
    sim::throw_invalid_input("Pca::to_factors: dimension mismatch");
  }
  Vector z(dimension(), 0.0);
  for (std::size_t k = 0; k < dimension(); ++k) {
    if (variances_[k] <= 0.0) continue;
    double dot = 0.0;
    for (std::size_t i = 0; i < dimension(); ++i) {
      dot += directions_(i, k) * (x[i] - means_[i]);
    }
    z[k] = dot / std::sqrt(variances_[k]);
  }
  return z;
}

Matrix equicorrelated_covariance(const Vector& sigmas, double rho) {
  if (rho < -1.0 || rho > 1.0) {
    sim::throw_invalid_input("equicorrelated_covariance: bad rho");
  }
  const std::size_t n = sigmas.size();
  Matrix cov(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      cov(i, j) = (i == j ? 1.0 : rho) * sigmas[i] * sigmas[j];
    }
  }
  return cov;
}

}  // namespace lcsf::stats
