// The statistical engines behind stats::Runner (and, through their thin
// delegating wrappers, the legacy free functions in analysis.cpp /
// yield.cpp). The bodies moved here unchanged from analysis.cpp when the
// Runner facade was introduced; the observability hooks are additive and
// never touch the numerics, so every determinism contract is preserved.
#include "stats/runner.hpp"

#include <cmath>
#include <stdexcept>

#include "runtime/thread_pool.hpp"
#include "obs/span.hpp"
#include "stats/driver_detail.hpp"

namespace lcsf::stats {

using detail::DriverContext;
using detail::eval_fail_soft;
using detail::ignore_lane;
using numeric::Vector;

RunOptions RunOptions::from(const MonteCarloOptions& opt) {
  RunOptions r;
  r.samples = opt.samples;
  r.seed = opt.seed;
  r.latin_hypercube = opt.latin_hypercube;
  r.exec = static_cast<const ExecutionOptions&>(opt);
  return r;
}

RunOptions RunOptions::from(const GradientAnalysisOptions& opt) {
  RunOptions r;
  r.step_fraction = opt.step_fraction;
  r.exec = static_cast<const ExecutionOptions&>(opt);
  return r;
}

MonteCarloOptions RunOptions::monte_carlo_options() const {
  MonteCarloOptions o;
  static_cast<ExecutionOptions&>(o) = exec;
  o.samples = samples;
  o.seed = seed;
  o.latin_hypercube = latin_hypercube;
  return o;
}

GradientAnalysisOptions RunOptions::gradient_options() const {
  GradientAnalysisOptions o;
  static_cast<ExecutionOptions&>(o) = exec;
  o.step_fraction = step_fraction;
  return o;
}

MonteCarloResult Runner::run_monte_carlo(
    const PerformanceFn& f, const std::vector<VariationSource>& sources)
    const {
  return run_monte_carlo(ignore_lane(f), sources);
}

MonteCarloResult Runner::run_monte_carlo(
    const LanedPerformanceFn& f, const std::vector<VariationSource>& sources)
    const {
  obs::Registry* reg =
      opt_.registry != nullptr ? opt_.registry : obs::ambient_registry();
  DriverContext obs_ctx(reg);
  obs::ScopedSpan span("stats.monte_carlo");
  if (sources.empty()) {
    sim::throw_invalid_input(
        "monte_carlo: `sources` must contain at least one VariationSource");
  }
  if (opt_.samples == 0) {
    sim::throw_invalid_input(
        "monte_carlo: MonteCarloOptions::samples must be >= 1");
  }
  const std::size_t nw = sources.size();
  const std::size_t n = opt_.samples;

  // Latin-Hypercube stratum assignment: one deterministic permutation per
  // dimension, derived from (seed, dimension) -- generation is O(n * nw)
  // and serial, negligible next to the f(w) evaluations. With n == 1 every
  // permutation is the identity and the single stratum spans (0, 1).
  std::vector<std::vector<std::size_t>> strata;
  if (opt_.latin_hypercube) {
    strata.reserve(nw);
    for (std::size_t d = 0; d < nw; ++d) {
      SplitMix64 perm_stream =
          sample_stream(opt_.seed, d, stream_tag::kLhsPerm);
      strata.push_back(stream_permutation(n, perm_stream));
    }
  }

  // Per-sample slots; compacted to survivors after the parallel loop.
  std::vector<double> values(n);
  std::vector<Vector> samples(n);
  std::vector<char> died(n, 0);
  std::vector<SampleFailure> deaths(n);
  const bool fail_soft = opt_.exec.on_failure == FailurePolicy::kSkip;

  // Each sample draws every variate from its own counter-based stream, so
  // the partition of [0, n) across threads cannot change any value; and
  // under kSkip, neither can the set of failed indices.
  runtime::parallel_for_lanes(
      opt_.exec.threads, n,
      [&](std::size_t begin, std::size_t end, std::size_t lane) {
    // Route engine metrics recorded inside f to this chunk's lane sink.
    obs::ScopedContext chunk_ctx(reg, lane);
    const bool timed = obs::enabled();
    for (std::size_t s = begin; s < end; ++s) {
      SplitMix64 stream = sample_stream(opt_.seed, s);
      Vector w(nw);
      for (std::size_t d = 0; d < nw; ++d) {
        const double jitter = stream.uniform_open();
        const double uu =
            opt_.latin_hypercube
                ? (static_cast<double>(strata[d][s]) + jitter) /
                      static_cast<double>(n)
                : jitter;
        const VariationSource& src = sources[d];
        w[d] = (src.kind == VariationSource::Kind::kUniform)
                   ? to_uniform(uu, src.mean - src.sigma,
                                src.mean + src.sigma)
                   : to_normal(uu, src.mean, src.sigma);
      }
      const std::uint64_t t0 = timed ? obs::now_ns() : 0;
      if (fail_soft) {
        died[s] =
            eval_fail_soft(f, w, lane, s, values[s], deaths[s]) ? 0 : 1;
      } else {
        values[s] = f(w, lane);
      }
      if (timed) {
        obs::record_value(
            "stats.mc.sample_seconds",
            static_cast<double>(obs::now_ns() - t0) / 1e9);
      }
      samples[s] = std::move(w);
    }
  });

  // Compact + accumulate serially in sample order: identical to a serial
  // run (and to any other thread count) by construction.
  MonteCarloResult res;
  res.failures.attempted = n;
  res.values.reserve(n);
  res.samples.reserve(n);
  for (std::size_t s = 0; s < n; ++s) {
    if (died[s]) {
      ++res.failures.counts[static_cast<std::size_t>(deaths[s].kind)];
      res.failures.failures.push_back(std::move(deaths[s]));
      continue;
    }
    res.stats.add(values[s]);
    res.values.push_back(values[s]);
    res.samples.push_back(std::move(samples[s]));
  }
  res.failures.survived = res.values.size();
  obs::add_counter("stats.mc.samples", static_cast<std::uint64_t>(n));
  obs::add_counter("stats.mc.skipped",
                   static_cast<std::uint64_t>(res.failures.failed()));
  return res;
}

MonteCarloResult Runner::run_monte_carlo(
    const LanedPerformanceFn& f, const BatchPerformanceFn& fb,
    const std::vector<VariationSource>& sources) const {
  const std::size_t k =
      opt_.exec.batch == 0 ? default_batch() : opt_.exec.batch;
  if (k <= 1 || !fb) return run_monte_carlo(f, sources);

  obs::Registry* reg =
      opt_.registry != nullptr ? opt_.registry : obs::ambient_registry();
  DriverContext obs_ctx(reg);
  obs::ScopedSpan span("stats.monte_carlo");
  if (sources.empty()) {
    sim::throw_invalid_input(
        "monte_carlo: `sources` must contain at least one VariationSource");
  }
  if (opt_.samples == 0) {
    sim::throw_invalid_input(
        "monte_carlo: MonteCarloOptions::samples must be >= 1");
  }
  const std::size_t nw = sources.size();
  const std::size_t n = opt_.samples;

  std::vector<std::vector<std::size_t>> strata;
  if (opt_.latin_hypercube) {
    strata.reserve(nw);
    for (std::size_t d = 0; d < nw; ++d) {
      SplitMix64 perm_stream =
          sample_stream(opt_.seed, d, stream_tag::kLhsPerm);
      strata.push_back(stream_permutation(n, perm_stream));
    }
  }
  // Sample s draws the exact variate vector of the scalar overload: the
  // batch partition changes only which evaluator consumes it.
  auto draw = [&](std::size_t s) {
    SplitMix64 stream = sample_stream(opt_.seed, s);
    Vector w(nw);
    for (std::size_t d = 0; d < nw; ++d) {
      const double jitter = stream.uniform_open();
      const double uu =
          opt_.latin_hypercube
              ? (static_cast<double>(strata[d][s]) + jitter) /
                    static_cast<double>(n)
              : jitter;
      const VariationSource& src = sources[d];
      w[d] = (src.kind == VariationSource::Kind::kUniform)
                 ? to_uniform(uu, src.mean - src.sigma, src.mean + src.sigma)
                 : to_normal(uu, src.mean, src.sigma);
    }
    return w;
  };

  std::vector<double> values(n);
  std::vector<Vector> samples(n);
  std::vector<char> died(n, 0);
  std::vector<SampleFailure> deaths(n);
  const bool fail_soft = opt_.exec.on_failure == FailurePolicy::kSkip;

  // Work units: nb full K-blocks, then the remainder samples one by one.
  // All units share one queue (and each sample its own stream), so the
  // thread partition can change neither values nor the failed set.
  const std::size_t nb = n / k;
  const std::size_t rem = n - nb * k;
  runtime::parallel_for_lanes(
      opt_.exec.threads, nb + rem,
      [&](std::size_t begin, std::size_t end, std::size_t lane) {
    obs::ScopedContext chunk_ctx(reg, lane);
    const bool timed = obs::enabled();
    std::vector<Vector> block;
    std::vector<BatchSlot> slots;
    for (std::size_t u = begin; u < end; ++u) {
      if (u < nb) {
        const std::size_t s0 = u * k;
        block.resize(k);
        for (std::size_t b = 0; b < k; ++b) block[b] = draw(s0 + b);
        slots.assign(k, BatchSlot{});
        const std::uint64_t t0 = timed ? obs::now_ns() : 0;
        fb(block, lane, slots);
        if (timed) {
          obs::record_value(
              "stats.mc.batch_seconds",
              static_cast<double>(obs::now_ns() - t0) / 1e9);
        }
        for (std::size_t b = 0; b < k; ++b) {
          const std::size_t s = s0 + b;
          if (slots[b].failed) {
            if (!fail_soft) throw sim::SimulationError(slots[b].diag);
            died[s] = 1;
            deaths[s] = {s, slots[b].diag.kind, slots[b].diag.message()};
          } else {
            values[s] = slots[b].value;
          }
          samples[s] = std::move(block[b]);
        }
      } else {
        const std::size_t s = nb * k + (u - nb);
        Vector w = draw(s);
        const std::uint64_t t0 = timed ? obs::now_ns() : 0;
        if (fail_soft) {
          died[s] =
              eval_fail_soft(f, w, lane, s, values[s], deaths[s]) ? 0 : 1;
        } else {
          values[s] = f(w, lane);
        }
        if (timed) {
          obs::record_value(
              "stats.mc.sample_seconds",
              static_cast<double>(obs::now_ns() - t0) / 1e9);
        }
        samples[s] = std::move(w);
      }
    }
  });

  MonteCarloResult res;
  res.failures.attempted = n;
  res.values.reserve(n);
  res.samples.reserve(n);
  for (std::size_t s = 0; s < n; ++s) {
    if (died[s]) {
      ++res.failures.counts[static_cast<std::size_t>(deaths[s].kind)];
      res.failures.failures.push_back(std::move(deaths[s]));
      continue;
    }
    res.stats.add(values[s]);
    res.values.push_back(values[s]);
    res.samples.push_back(std::move(samples[s]));
  }
  res.failures.survived = res.values.size();
  obs::add_counter("stats.mc.samples", static_cast<std::uint64_t>(n));
  obs::add_counter("stats.mc.skipped",
                   static_cast<std::uint64_t>(res.failures.failed()));
  // Serial so the distribution merges identically for any thread count.
  obs::add_counter("stats.mc.batches", static_cast<std::uint64_t>(nb));
  obs::add_counter("stats.mc.batch_remainder_samples",
                   static_cast<std::uint64_t>(rem));
  for (std::size_t u = 0; u < nb; ++u) {
    obs::record_value("stats.mc.batch_fill", static_cast<double>(k));
  }
  for (std::size_t r = 0; r < rem; ++r) {
    obs::record_value("stats.mc.batch_fill", 1.0);
  }
  return res;
}

GradientAnalysisResult Runner::run_gradients(
    const PerformanceFn& f, const std::vector<VariationSource>& sources)
    const {
  return run_gradients(ignore_lane(f), sources);
}

GradientAnalysisResult Runner::run_gradients(
    const LanedPerformanceFn& f, const std::vector<VariationSource>& sources)
    const {
  obs::Registry* reg =
      opt_.registry != nullptr ? opt_.registry : obs::ambient_registry();
  DriverContext obs_ctx(reg);
  obs::ScopedSpan span("stats.gradient_analysis");
  if (sources.empty()) {
    sim::throw_invalid_input("gradient_analysis: no sources");
  }
  if (opt_.step_fraction <= 0.0) {
    sim::throw_invalid_input("gradient_analysis: bad step");
  }
  const std::size_t nw = sources.size();
  GradientAnalysisResult res;
  res.gradient.assign(nw, 0.0);

  Vector w0(nw);
  for (std::size_t d = 0; d < nw; ++d) w0[d] = sources[d].mean;
  // A failed nominal always rethrows: there is no gradient about a point
  // that does not evaluate. The nominal runs on the calling thread's lane.
  res.nominal = f(w0, 0);
  res.evaluations = 1;

  const bool fail_soft = opt_.exec.on_failure == FailurePolicy::kSkip;
  std::vector<char> died(nw, 0);
  std::vector<SampleFailure> deaths(nw);

  // The 2 * nw central-difference probes are independent; run them on the
  // pool and fold the Eq. 24 sum serially in source order afterwards.
  runtime::parallel_for_lanes(
      opt_.exec.threads, nw,
      [&](std::size_t begin, std::size_t end, std::size_t lane) {
    obs::ScopedContext chunk_ctx(reg, lane);
    const bool timed = obs::enabled();
    for (std::size_t d = begin; d < end; ++d) {
      const double h = opt_.step_fraction * sources[d].sigma;
      if (h <= 0.0) continue;
      Vector wp = w0, wm = w0;
      wp[d] += h;
      wm[d] -= h;
      const std::uint64_t t0 = timed ? obs::now_ns() : 0;
      if (fail_soft) {
        double fp = 0.0, fm = 0.0;
        if (eval_fail_soft(f, wp, lane, d, fp, deaths[d]) &&
            eval_fail_soft(f, wm, lane, d, fm, deaths[d])) {
          res.gradient[d] = (fp - fm) / (2.0 * h);
        } else {
          died[d] = 1;  // gradient entry stays 0 and leaves the RSS sum
        }
      } else {
        res.gradient[d] = (f(wp, lane) - f(wm, lane)) / (2.0 * h);
      }
      if (timed) {
        obs::record_value(
            "stats.ga.probe_seconds",
            static_cast<double>(obs::now_ns() - t0) / 1e9);
      }
    }
  });

  double var = 0.0;
  res.failures.attempted = nw;
  for (std::size_t d = 0; d < nw; ++d) {
    if (opt_.step_fraction * sources[d].sigma <= 0.0) continue;
    if (died[d]) {
      ++res.failures.counts[static_cast<std::size_t>(deaths[d].kind)];
      res.failures.failures.push_back(std::move(deaths[d]));
      continue;
    }
    res.evaluations += 2;
    const double g = res.gradient[d];
    // Uniform(+-sigma) has variance sigma^2/3; normal has sigma^2.
    const double s2 =
        sources[d].kind == VariationSource::Kind::kUniform
            ? sources[d].sigma * sources[d].sigma / 3.0
            : sources[d].sigma * sources[d].sigma;
    var += s2 * g * g;
  }
  res.failures.survived = nw - res.failures.failures.size();
  res.stddev = std::sqrt(var);
  obs::add_counter("stats.ga.probes",
                   static_cast<std::uint64_t>(res.evaluations));
  obs::add_counter("stats.ga.skipped",
                   static_cast<std::uint64_t>(res.failures.failed()));
  return res;
}

McYieldEstimate Runner::run_yield(const PerformanceFn& f,
                                  const std::vector<VariationSource>& sources,
                                  double clock_period) const {
  return run_yield(ignore_lane(f), sources, clock_period);
}

McYieldEstimate Runner::run_yield(const LanedPerformanceFn& f,
                                  const std::vector<VariationSource>& sources,
                                  double clock_period) const {
  obs::Registry* reg =
      opt_.registry != nullptr ? opt_.registry : obs::ambient_registry();
  DriverContext obs_ctx(reg);
  obs::ScopedSpan span("stats.yield");
  McYieldEstimate est(run_monte_carlo(f, sources), clock_period);
  std::uint64_t pass = 0;
  for (const double v : est.samples().values) {
    if (v <= clock_period) ++pass;
  }
  obs::add_counter("stats.yield.pass", pass);
  return est;
}

}  // namespace lcsf::stats
