// Importance-sampled timing-yield estimation (ISLE-style).
//
// Brute-force Monte Carlo resolves a tail probability P_f = P(D > T) with
// per-sample variance P_f(1 - P_f): estimating a 10^-3 failure rate to
// 10% relative error needs ~10^5-10^6 samples. Following Bayrakci, Demir
// and Tasiran ("Fast Monte Carlo Estimation of Timing Yield: Importance
// Sampling with Stochastic Logical Effort", see PAPERS.md), this engine
// instead samples from a *shifted* proposal distribution centered on the
// failure boundary of a cheap linear surrogate of the path delay -- built
// from the Eq. 24/30-31 gradient sensitivities already computed by
// stats::Runner::run_gradients -- and unbiases every sample with its
// likelihood ratio. Orders of magnitude fewer samples land the same
// estimator variance; bench_yield_is records the effective-sample-size
// speedup in BENCH_yield_is.json.
//
// The estimator preserves the bitwise thread-count-invariance contract of
// the plain Monte-Carlo engine: every sample draws from its own
// counter-based stream (stats/random.hpp stream_tag constants) and all
// floating-point accumulation -- likelihood ratios, failure summaries,
// control-variate moments, obs distributions -- is folded serially in
// sample-index order after the parallel evaluation joins.
//
// The full derivation (shift construction, likelihood-ratio unbiasing,
// control variates, ESS) and an estimator-selection guide live in
// docs/yield_estimation.md.
#pragma once

#include <cstddef>
#include <vector>

#include "numeric/matrix.hpp"
#include "stats/analysis.hpp"

namespace lcsf::stats {

/// Knobs of the importance-sampled yield estimator
/// (Runner::run_yield_is; carried by stats::RunOptions::importance).
struct ImportanceOptions {
  /// Scale on the analytic boundary shift. 1.0 centers the proposal on
  /// the most-probable failure point of the linear surrogate; 0.0
  /// degenerates to plain Monte Carlo with every likelihood ratio
  /// exactly 1.0 (the identity the tests pin).
  double shift_scale = 1.0;

  /// Defensive-mixture weight lambda in [0, 1): with probability lambda a
  /// sample is drawn from the *nominal* distribution instead of the
  /// shifted one, and the likelihood ratio uses the mixture density
  /// q = lambda p + (1 - lambda) p_shifted. A small lambda (e.g. 0.1)
  /// bounds the worst-case weight at 1/lambda, guarding against the
  /// heavy-weight hazard when the true delay is strongly nonlinear in w.
  double mixture_nominal = 0.0;

  /// Two-phase adaptive allocation: when > 0, a pilot run of this many
  /// samples (independent streams; the main run's seeds are untouched)
  /// refines the analytic shift with the cross-entropy update -- the
  /// likelihood-weighted centroid of the observed failing samples. 0
  /// disables the pilot (single-phase, analytic shift only).
  std::size_t pilot_samples = 0;

  /// Use the linear-surrogate failure indicator as a control variate:
  /// its expectation under the original distribution is exactly
  /// Phi(-beta), so the correlated part of the estimator noise cancels
  /// analytically. Requires every VariationSource to be kNormal (the
  /// exact control expectation is Gaussian); throws kInvalidInput
  /// otherwise.
  bool control_variate = false;
};

/// The linear delay surrogate and the proposal shift derived from it.
struct IsSurrogate {
  double nominal = 0.0;      ///< f at the source means (surrogate intercept)
  numeric::Vector gradient;  ///< dD/dw_l at nominal (Eq. 24 sensitivities)
  double sigma = 0.0;        ///< Eq. 24 RSS spread of the surrogate
  /// Proposal mean shift per source, in *standardized* units (theta_d is
  /// added to the standard-normal variate of source d; uniform sources
  /// are never shifted and keep a zero entry).
  numeric::Vector shift;
  /// Surrogate reliability index (T - nominal) / sigma: the number of
  /// RSS sigmas between the nominal delay and the clock period. The
  /// surrogate failure probability is Phi(-beta).
  double beta = 0.0;
};

/// Result of the importance-sampled yield estimator. The estimate,
/// per-sample values and weights, and both failure summaries are bitwise
/// identical for every exec.threads value.
struct IsYieldEstimate {
  double yield = 0.0;       ///< IS estimate of P(delay <= clock_period)
  double yield_loss = 0.0;  ///< IS estimate of P(delay > clock_period)
  double std_error = 0.0;   ///< standard error of yield_loss (and yield)

  /// Effective sample size of the main-phase weights,
  /// (sum w)^2 / (sum w^2): how many equally-weighted samples the run is
  /// worth. ESS near main_samples means the proposal is benign; a
  /// collapsed ESS flags weight degeneracy (see docs/yield_estimation.md).
  double ess = 0.0;

  std::size_t main_samples = 0;   ///< main-phase sample budget
  std::size_t pilot_used = 0;     ///< pilot samples actually run

  IsSurrogate surrogate;  ///< surrogate + final (possibly refined) shift

  bool control_variate_used = false;  ///< IS-CV path taken
  double control_coefficient = 0.0;   ///< fitted CV coefficient c*
  /// Exact E_p of the control (surrogate failure probability Phi(-beta)).
  double control_expectation = 0.0;

  /// Main-phase survivor delays and their likelihood ratios, in
  /// sample-index order (parallel MonteCarloResult::values).
  std::vector<double> values;
  std::vector<double> weights;

  FailureSummary failures;        ///< main-phase kSkip failures
  FailureSummary pilot_failures;  ///< pilot-phase kSkip failures
};

// The estimator itself is a stats::Runner method (run_yield_is /
// run_yield_is with a LanedPerformanceFn) so it shares RunOptions with
// the other analyses; see stats/runner.hpp. The free function below is
// the thin wrapper mirroring monte_carlo_yield() for callers still on
// the legacy option structs.

/// Importance-sampled yield from the legacy MonteCarloOptions plus the
/// IS knobs. Thin delegating wrapper over stats::Runner::run_yield_is.
IsYieldEstimate importance_yield(const PerformanceFn& f,
                                 const std::vector<VariationSource>& sources,
                                 double clock_period,
                                 const MonteCarloOptions& opt,
                                 const ImportanceOptions& is = {});

/// Lane-aware overload (LanedPerformanceFn semantics as in monte_carlo).
IsYieldEstimate importance_yield(const LanedPerformanceFn& f,
                                 const std::vector<VariationSource>& sources,
                                 double clock_period,
                                 const MonteCarloOptions& opt,
                                 const ImportanceOptions& is = {});

}  // namespace lcsf::stats
