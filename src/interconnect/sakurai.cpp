#include "interconnect/sakurai.hpp"

#include <cmath>
#include <stdexcept>

namespace lcsf::interconnect {

namespace {
constexpr double kEps0 = 8.854187817e-12;  // vacuum permittivity [F/m]
}

UnitLengthParasitics sakurai_parasitics(const circuit::WireGeometry& g) {
  if (g.width <= 0.0 || g.thickness <= 0.0 || g.spacing <= 0.0 ||
      g.ild_thickness <= 0.0 || g.resistivity <= 0.0 || g.eps_rel <= 0.0) {
    throw std::invalid_argument("sakurai_parasitics: non-physical geometry");
  }
  const double eps = kEps0 * g.eps_rel;
  const double woh = g.width / g.ild_thickness;
  const double toh = g.thickness / g.ild_thickness;
  const double soh = g.spacing / g.ild_thickness;

  UnitLengthParasitics p;
  p.resistance = g.resistivity / (g.width * g.thickness);
  p.ground_capacitance = eps * (1.15 * woh + 2.80 * std::pow(toh, 0.222));
  const double cc =
      eps * (0.03 * woh + 0.83 * toh - 0.07 * std::pow(toh, 0.222)) *
      std::pow(soh, -1.34);
  // The fitted expression can go slightly negative for extreme geometry
  // corners; clamp at zero (no coupling) rather than emit a negative cap.
  p.coupling_capacitance = std::max(cc, 0.0);
  return p;
}

circuit::WireGeometry apply_variation(const circuit::WireGeometry& nominal,
                                      const WireVariation& w) {
  circuit::WireGeometry g = nominal;
  g.width *= 1.0 + w.width;
  g.thickness *= 1.0 + w.thickness;
  g.spacing *= 1.0 + w.spacing;
  g.ild_thickness *= 1.0 + w.ild_thickness;
  g.resistivity *= 1.0 + w.resistivity;
  return g;
}

}  // namespace lcsf::interconnect
