// Builders for coupled parallel-wire interconnect structures.
//
// Example 2 (Fig. 4) uses an array of identical minimum-width parallel
// lines segmented "at each micron length"; Example 3 inserts such bundles
// between the logic stages of a path. The builder produces a pure-RC
// netlist plus the port bookkeeping the MOR and simulation layers need.
#pragma once

#include <cstddef>
#include <vector>

#include "circuit/mna.hpp"
#include "circuit/netlist.hpp"
#include "circuit/technology.hpp"
#include "interconnect/sakurai.hpp"

namespace lcsf::interconnect {

struct CoupledLineSpec {
  std::size_t num_lines = 4;
  double length = 100e-6;        ///< [m]
  double segment_length = 1e-6;  ///< [m] (paper: 1 um)
  circuit::WireGeometry geometry;
};

/// A built bundle: netlist contains only R/C elements. Near-end node k
/// drives line k; far-end node k is its receiver end.
struct CoupledLineBundle {
  circuit::Netlist netlist;
  std::vector<circuit::NodeId> near_ends;
  std::vector<circuit::NodeId> far_ends;
  std::size_t segments = 0;

  /// All ports in MOR order: near ends first, then far ends.
  std::vector<circuit::NodeId> ports() const;
};

/// Build the bundle. Each line is a ladder of `ceil(length/segment_length)`
/// RC segments; coupling capacitors connect laterally adjacent nodes of
/// neighbouring lines.
CoupledLineBundle build_coupled_lines(const CoupledLineSpec& spec);

/// Node-pencil (G, C) of a bundle with ports permuted to the first rows,
/// which is the ordering PACT and the effective-load construction expect.
struct PortedPencil {
  numeric::Matrix g;
  numeric::Matrix c;
  std::size_t num_ports = 0;
  /// original node (1-based netlist id) for each pencil row
  std::vector<circuit::NodeId> row_to_node;
};

PortedPencil build_ported_pencil(const circuit::Netlist& nl,
                                 const std::vector<circuit::NodeId>& ports);

}  // namespace lcsf::interconnect
