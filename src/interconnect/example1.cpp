#include "interconnect/example1.hpp"

namespace lcsf::interconnect {

using circuit::kGround;
using circuit::NodeId;

Example1Values example1_values(double p) {
  // Table 2 anchors: value(p) = v(0) + (v(0.1) - v(0)) * (p / 0.1).
  auto lerp = [p](double v0, double v1) { return v0 + (v1 - v0) * p / 0.1; };
  Example1Values v;
  v.r1 = lerp(10.0, 15.0);
  v.r2 = lerp(2.0, 2.0);
  v.r3 = lerp(30.0, 40.0);
  v.c1 = lerp(2e-12, 3e-12);
  v.c2 = lerp(2e-12, 2e-12);
  v.c3 = lerp(2e-12, 3e-12);
  v.cc1 = lerp(2e-12, 3e-12);
  v.cc2 = lerp(2e-12, 2e-12);
  v.cc3 = lerp(2e-12, 3e-12);
  return v;
}

Example1Circuit example1_circuit(double p, double shunt_ohms) {
  const Example1Values v = example1_values(p);
  Example1Circuit out;
  auto& nl = out.netlist;
  out.port1 = nl.add_node("port1");
  out.port2 = nl.add_node("port2");
  const NodeId a1 = nl.add_node("a1");
  const NodeId a2 = nl.add_node("a2");
  const NodeId a3 = nl.add_node("a3");
  const NodeId b1 = nl.add_node("b1");
  const NodeId b2 = nl.add_node("b2");
  const NodeId b3 = nl.add_node("b3");

  // Line A.
  nl.add_resistor(out.port1, a1, v.r1);
  nl.add_resistor(a1, a2, v.r2);
  nl.add_resistor(a2, a3, v.r3);
  nl.add_capacitor(a1, kGround, v.c1);
  nl.add_capacitor(a2, kGround, v.c2);
  nl.add_capacitor(a3, kGround, v.c3);
  // Line B (symmetric).
  nl.add_resistor(out.port2, b1, v.r1);
  nl.add_resistor(b1, b2, v.r2);
  nl.add_resistor(b2, b3, v.r3);
  nl.add_capacitor(b1, kGround, v.c1);
  nl.add_capacitor(b2, kGround, v.c2);
  nl.add_capacitor(b3, kGround, v.c3);
  // Coupling.
  nl.add_capacitor(a1, b1, v.cc1);
  nl.add_capacitor(a2, b2, v.cc2);
  nl.add_capacitor(a3, b3, v.cc3);
  // Shunt on the second port makes it a one-port load.
  nl.add_resistor(out.port2, kGround, shunt_ohms);
  return out;
}

std::function<PortedPencil(double)> example1_pencil_family(double shunt_ohms) {
  return [shunt_ohms](double p) {
    Example1Circuit c = example1_circuit(p, shunt_ohms);
    return build_ported_pencil(c.netlist, {c.port1});
  };
}

}  // namespace lcsf::interconnect
