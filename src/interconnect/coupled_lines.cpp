#include "interconnect/coupled_lines.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

namespace lcsf::interconnect {

using circuit::kGround;
using circuit::NodeId;

std::vector<NodeId> CoupledLineBundle::ports() const {
  std::vector<NodeId> p = near_ends;
  p.insert(p.end(), far_ends.begin(), far_ends.end());
  return p;
}

CoupledLineBundle build_coupled_lines(const CoupledLineSpec& spec) {
  if (spec.num_lines == 0) {
    throw std::invalid_argument("build_coupled_lines: need >= 1 line");
  }
  if (spec.length <= 0.0 || spec.segment_length <= 0.0) {
    throw std::invalid_argument("build_coupled_lines: bad lengths");
  }
  const auto nseg = static_cast<std::size_t>(
      std::ceil(spec.length / spec.segment_length - 1e-9));
  const double seg_len = spec.length / static_cast<double>(nseg);
  const UnitLengthParasitics pul = sakurai_parasitics(spec.geometry);
  const double rseg = pul.resistance * seg_len;
  const double cseg = pul.ground_capacitance * seg_len;
  const double ccseg = pul.coupling_capacitance * seg_len;

  CoupledLineBundle bundle;
  bundle.segments = nseg;
  auto& nl = bundle.netlist;

  // nodes[line][k]: k = 0 is the near end, k = nseg is the far end.
  // Node ids are allocated segment-major (all lines of segment k before
  // segment k+1) so the MNA matrix is banded with bandwidth ~num_lines --
  // the natural-order sparse LU then has minimal fill.
  std::vector<std::vector<NodeId>> nodes(spec.num_lines);
  for (std::size_t l = 0; l < spec.num_lines; ++l) nodes[l].resize(nseg + 1);
  for (std::size_t k = 0; k <= nseg; ++k) {
    for (std::size_t l = 0; l < spec.num_lines; ++l) {
      nodes[l][k] =
          nl.add_node("w" + std::to_string(l) + "_" + std::to_string(k));
    }
  }
  for (std::size_t l = 0; l < spec.num_lines; ++l) {
    bundle.near_ends.push_back(nodes[l][0]);
    bundle.far_ends.push_back(nodes[l][nseg]);
  }

  for (std::size_t l = 0; l < spec.num_lines; ++l) {
    for (std::size_t k = 0; k < nseg; ++k) {
      nl.add_resistor(nodes[l][k], nodes[l][k + 1], rseg);
      // Ground capacitance lumped at the downstream node; half segment at
      // the near end keeps the total charge exact.
      nl.add_capacitor(nodes[l][k + 1], kGround,
                       (k + 1 == nseg) ? 0.5 * cseg : cseg);
      if (k == 0) nl.add_capacitor(nodes[l][0], kGround, 0.5 * cseg);
    }
    // Lateral coupling to the next line.
    if (l + 1 < spec.num_lines && ccseg > 0.0) {
      for (std::size_t k = 0; k <= nseg; ++k) {
        const double cc =
            (k == 0 || k == nseg) ? 0.5 * ccseg : ccseg;
        nl.add_capacitor(nodes[l][k], nodes[l + 1][k], cc);
      }
    }
  }
  return bundle;
}

PortedPencil build_ported_pencil(const circuit::Netlist& nl,
                                 const std::vector<NodeId>& ports) {
  const circuit::NodePencil raw = circuit::build_node_pencil(nl);
  const std::size_t n = raw.g.rows();
  if (ports.empty() || ports.size() > n) {
    throw std::invalid_argument("build_ported_pencil: bad port list");
  }

  // Permutation: ports first (in the given order), then remaining nodes in
  // id order.
  std::vector<bool> is_port(n + 1, false);
  PortedPencil out;
  out.num_ports = ports.size();
  out.row_to_node.reserve(n);
  for (NodeId p : ports) {
    if (p <= 0 || static_cast<std::size_t>(p) > n) {
      throw std::invalid_argument("build_ported_pencil: port not a node");
    }
    if (is_port[static_cast<std::size_t>(p)]) {
      throw std::invalid_argument("build_ported_pencil: duplicate port");
    }
    is_port[static_cast<std::size_t>(p)] = true;
    out.row_to_node.push_back(p);
  }
  for (std::size_t id = 1; id <= n; ++id) {
    if (!is_port[id]) out.row_to_node.push_back(static_cast<NodeId>(id));
  }

  out.g = numeric::Matrix(n, n);
  out.c = numeric::Matrix(n, n);
  // row_to_node maps pencil row -> node id; raw row of node id is id-1.
  for (std::size_t i = 0; i < n; ++i) {
    const auto ri = static_cast<std::size_t>(out.row_to_node[i] - 1);
    for (std::size_t j = 0; j < n; ++j) {
      const auto rj = static_cast<std::size_t>(out.row_to_node[j] - 1);
      out.g(i, j) = raw.g(ri, rj);
      out.c(i, j) = raw.c(ri, rj);
    }
  }
  return out;
}

}  // namespace lcsf::interconnect
