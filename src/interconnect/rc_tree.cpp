#include "interconnect/rc_tree.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace lcsf::interconnect {

using circuit::kGround;
using circuit::NodeId;

RcTree build_rc_tree(const RcTreeSpec& spec) {
  if (spec.branches.empty()) {
    throw std::invalid_argument("build_rc_tree: no branches");
  }
  const UnitLengthParasitics pul = sakurai_parasitics(spec.geometry);

  RcTree tree;
  auto& nl = tree.netlist;
  tree.root = nl.add_node("root");
  tree.branch_ends.resize(spec.branches.size());

  std::vector<bool> has_children(spec.branches.size(), false);
  for (std::size_t b = 0; b < spec.branches.size(); ++b) {
    const TreeBranch& br = spec.branches[b];
    if (br.parent >= static_cast<int>(b)) {
      throw std::invalid_argument(
          "build_rc_tree: branches must be listed parent-first");
    }
    if (br.length <= 0.0 || spec.segment_length <= 0.0) {
      throw std::invalid_argument("build_rc_tree: bad lengths");
    }
    const NodeId start =
        br.parent < 0 ? tree.root
                      : tree.branch_ends[static_cast<std::size_t>(br.parent)];
    if (br.parent >= 0) has_children[static_cast<std::size_t>(br.parent)] =
        true;

    const auto nseg = static_cast<std::size_t>(
        std::ceil(br.length / spec.segment_length - 1e-9));
    const double seg_len = br.length / static_cast<double>(nseg);
    const double rseg = pul.resistance * seg_len;
    const double cseg = pul.ground_capacitance * seg_len;

    NodeId prev = start;
    nl.add_capacitor(prev, kGround, 0.5 * cseg);
    for (std::size_t s = 0; s < nseg; ++s) {
      const NodeId next = nl.add_node(
          "b" + std::to_string(b) + "_" + std::to_string(s));
      nl.add_resistor(prev, next, rseg);
      nl.add_capacitor(next, kGround,
                       s + 1 == nseg ? 0.5 * cseg : cseg);
      prev = next;
    }
    tree.branch_ends[b] = prev;
  }
  for (std::size_t b = 0; b < spec.branches.size(); ++b) {
    if (!has_children[b]) {
      tree.leaves.push_back(tree.branch_ends[b]);
      if (spec.leaf_cap > 0.0) {
        nl.add_capacitor(tree.branch_ends[b], kGround, spec.leaf_cap);
      }
    }
  }
  return tree;
}

double elmore_delay(const circuit::Netlist& nl, NodeId root, NodeId node) {
  const std::size_t n = nl.node_count();
  // Build the resistor adjacency and check tree-ness via BFS from root.
  struct Edge {
    NodeId to;
    double ohms;
  };
  std::vector<std::vector<Edge>> adj(n);
  for (const auto& r : nl.resistors()) {
    adj[static_cast<std::size_t>(r.a)].push_back({r.b, r.ohms});
    adj[static_cast<std::size_t>(r.b)].push_back({r.a, r.ohms});
  }

  // Parent pointers from BFS; any edge to an already-visited node other
  // than the BFS parent closes a cycle, so the graph is not a tree.
  std::vector<int> parent(n, -2);
  std::vector<double> parent_r(n, 0.0);
  std::vector<NodeId> queue{root};
  parent[static_cast<std::size_t>(root)] = -1;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const NodeId u = queue[head];
    for (const Edge& e : adj[static_cast<std::size_t>(u)]) {
      auto& p = parent[static_cast<std::size_t>(e.to)];
      if (p != -2) {
        if (parent[static_cast<std::size_t>(u)] != e.to) {
          throw std::invalid_argument(
              "elmore_delay: resistor graph is not a tree");
        }
        continue;
      }
      p = u;
      parent_r[static_cast<std::size_t>(e.to)] = e.ohms;
      queue.push_back(e.to);
    }
  }
  if (parent[static_cast<std::size_t>(node)] == -2) {
    throw std::invalid_argument("elmore_delay: node unreachable from root");
  }

  // Path from root to the observation node.
  auto path_of = [&](NodeId v) {
    std::vector<NodeId> path;
    while (v != root) {
      path.push_back(v);
      v = static_cast<NodeId>(parent[static_cast<std::size_t>(v)]);
    }
    path.push_back(root);
    std::reverse(path.begin(), path.end());
    return path;
  };
  const auto target_path = path_of(node);
  std::vector<int> depth_on_path(n, -1);
  for (std::size_t d = 0; d < target_path.size(); ++d) {
    depth_on_path[static_cast<std::size_t>(target_path[d])] =
        static_cast<int>(d);
  }

  // Shared-path resistance for every capacitor node: walk to the root,
  // recording the deepest ancestor on the target path, then sum the
  // target-path resistances up to that ancestor.
  std::vector<double> r_to_path_depth(target_path.size(), 0.0);
  for (std::size_t d = 1; d < target_path.size(); ++d) {
    r_to_path_depth[d] =
        r_to_path_depth[d - 1] +
        parent_r[static_cast<std::size_t>(target_path[d])];
  }
  auto shared_r = [&](NodeId v) {
    while (depth_on_path[static_cast<std::size_t>(v)] < 0) {
      v = static_cast<NodeId>(parent[static_cast<std::size_t>(v)]);
    }
    return r_to_path_depth[static_cast<std::size_t>(
        depth_on_path[static_cast<std::size_t>(v)])];
  };

  double delay = 0.0;
  for (const auto& c : nl.capacitors()) {
    // Only ground caps contribute to the classic Elmore form.
    NodeId v = kGround;
    if (c.a == kGround) {
      v = c.b;
    } else if (c.b == kGround) {
      v = c.a;
    } else {
      continue;
    }
    if (parent[static_cast<std::size_t>(v)] == -2) continue;  // detached
    delay += c.farads * shared_r(v);
  }
  return delay;
}

}  // namespace lcsf::interconnect
