// RC-tree interconnect builder and the Elmore delay metric.
//
// Real nets are branching trees, not single lines; the builder produces a
// tree netlist the MOR/TETA flow consumes unchanged. Elmore delay (the
// first moment of the impulse response) has a closed form on RC trees:
//   T_D(leaf) = sum_k R(path(root,k) \cap path(root,leaf)) * C_k,
// which makes it an independent cross-check of the MNA assembly, the
// moment computation, and the reductions.
#pragma once

#include <cstddef>
#include <vector>

#include "circuit/netlist.hpp"
#include "circuit/technology.hpp"
#include "interconnect/sakurai.hpp"

namespace lcsf::interconnect {

/// One branch of the tree: parent index (-1 = root attaches to the driver
/// port) and geometric length.
struct TreeBranch {
  int parent = -1;
  double length = 50e-6;
};

struct RcTreeSpec {
  std::vector<TreeBranch> branches;
  double segment_length = 1e-6;
  circuit::WireGeometry geometry;
  /// Extra capacitance at every leaf (receiver pins).
  double leaf_cap = 0.0;
};

struct RcTree {
  circuit::Netlist netlist;
  circuit::NodeId root = 0;                 ///< driver attachment node
  std::vector<circuit::NodeId> branch_ends; ///< far node of each branch
  std::vector<circuit::NodeId> leaves;      ///< ends with no children
};

/// Build the tree. Branch k starts at the end of branch `parent` (or at
/// the root) and runs `length` metres of segmented wire.
RcTree build_rc_tree(const RcTreeSpec& spec);

/// Elmore delay from `root` to `node` computed directly on the R/C
/// elements of a tree netlist (throws if the resistor graph is not a tree
/// rooted at `root`).
double elmore_delay(const circuit::Netlist& nl, circuit::NodeId root,
                    circuit::NodeId node);

}  // namespace lcsf::interconnect
