// The coupled RC line of the paper's Example 1 (Fig. 2 / Table 2).
//
// A symmetric two-port line modeled as three coupled RC segments whose
// element values depend linearly on a normalized spatial parameter p
// (p = 0 nominal, p = 0.1 extreme). For the experiments the second port is
// shunted with 100 ohms, turning the structure into a one-port load.
#pragma once

#include <functional>

#include "circuit/netlist.hpp"
#include "interconnect/coupled_lines.hpp"

namespace lcsf::interconnect {

/// Element values at parameter p (linear in p, anchored at Table 2's p=0
/// and p=0.1 rows).
struct Example1Values {
  double r1, r2, r3;     ///< [ohm]
  double c1, c2, c3;     ///< ground caps [F]
  double cc1, cc2, cc3;  ///< coupling caps [F]
};

Example1Values example1_values(double p);

/// Bundle with the two coupled 3-segment lines and the 100-ohm shunt on the
/// second port. Ports: {port1} (one-port form used throughout Example 1).
struct Example1Circuit {
  circuit::Netlist netlist;
  circuit::NodeId port1 = 0;
  circuit::NodeId port2 = 0;
};

Example1Circuit example1_circuit(double p, double shunt_ohms = 100.0);

/// Pencil factory for the variational MOR library: w is the scalar p.
/// Ports-first ordering with port1 as the single port.
std::function<PortedPencil(double)> example1_pencil_family(
    double shunt_ohms = 100.0);

}  // namespace lcsf::interconnect
