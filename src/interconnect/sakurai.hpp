// Sakurai's closed-form parasitic formulas (T. Sakurai, IEEE Trans. ED,
// Jan 1993), which the paper uses to turn wire geometry into electrical
// circuit elements in Examples 2 and 3.
//
// All values are per unit length; the wire builders multiply by the segment
// length (the paper segments "at each micron length").
#pragma once

#include "circuit/technology.hpp"

namespace lcsf::interconnect {

/// Per-unit-length electrical parameters of one wire in an array of
/// identical parallel wires.
struct UnitLengthParasitics {
  double resistance = 0.0;       ///< [ohm/m]
  double ground_capacitance = 0.0;  ///< to the plane below [F/m]
  double coupling_capacitance = 0.0;///< to each adjacent neighbour [F/m]
};

/// Evaluate Sakurai's formulas for the given geometry.
///   R    = rho / (W T)
///   Cg   = eps (1.15 (W/H) + 2.80 (T/H)^0.222)
///   Cc   = eps (0.03 (W/H) + 0.83 (T/H) - 0.07 (T/H)^0.222) (S/H)^-1.34
/// Throws std::invalid_argument on non-physical geometry.
UnitLengthParasitics sakurai_parasitics(const circuit::WireGeometry& g);

/// The five global wire parameters the paper varies in Example 2 (W, T, S,
/// H, rho), as multipliers applied to a nominal geometry. A value of w
/// means parameter = nominal * (1 + w).
struct WireVariation {
  double width = 0.0;
  double thickness = 0.0;
  double spacing = 0.0;
  double ild_thickness = 0.0;
  double resistivity = 0.0;
};

/// Apply a relative variation to a nominal geometry.
circuit::WireGeometry apply_variation(const circuit::WireGeometry& nominal,
                                      const WireVariation& w);

}  // namespace lcsf::interconnect
